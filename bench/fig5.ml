(* Fig 5: packet-level behaviour under population perturbation
   (gamma in {0.1, 0.3, 0.5}) across offered load, with shortest-path
   routing.  Also reports the latency penalty of the alternative
   routing schemes (the paper's ~10% remark). *)

open Cisp_design
module Sim = Cisp_sim

let sim_duration ctx = if ctx.Ctx.quick then 0.004 else 0.015

let run_one ctx inputs topo plan ~demands ~label =
  let eng = Sim.Engine.create () in
  let mw_gbps = Sim.Builder.provisioned_mw_gbps plan in
  let net = Sim.Builder.build eng inputs topo ~mw_gbps in
  let model =
    { Sim.Routing.inputs; topology = topo; mw_gbps; fiber_gbps = Sim.Builder.default_config.Sim.Builder.fiber_gbps }
  in
  let paths = Sim.Routing.paths model Sim.Routing.Shortest_path ~demands_gbps:demands in
  let stop = sim_duration ctx in
  Sim.Udp.poisson_commodities net ~paths ~demands_gbps:demands ~packet_bytes:500 ~start:0.0 ~stop;
  Sim.Engine.run eng ~until:(stop +. 0.2);
  Sim.Net.flush_telemetry net;
  ignore label;
  (Sim.Net.mean_delay_ms net, Sim.Net.loss_rate net)

let run ctx =
  Ctx.section "Fig 5: delay and loss under population perturbation (shortest-path routing)";
  let inputs = Ctx.us_inputs ctx in
  let topo = Ctx.us_topology ctx in
  let plan = Ctx.us_plan ctx in
  let loads = if ctx.Ctx.quick then [ 50; 90 ] else [ 30; 50; 70; 90; 100; 110; 120 ] in
  let gammas = [ 0.1; 0.3; 0.5 ] in
  Printf.printf "%-8s %-8s %-14s %-12s\n" "gamma" "load%" "mean delay ms" "loss rate";
  List.iter
    (fun gamma ->
      let perturbed =
        Cisp_traffic.Perturb.population inputs.Inputs.sites ~gamma ~seed:31
      in
      List.iter
        (fun load ->
          let demands =
            Cisp_traffic.Matrix.scale_to_gbps perturbed
              ~aggregate_gbps:(Ctx.aggregate_gbps *. float_of_int load /. 100.0)
          in
          let delay, loss = run_one ctx inputs topo plan ~demands ~label:(gamma, load) in
          Printf.printf "%-8.1f %-8d %-14.3f %-12.5f\n%!" gamma load delay loss)
        loads)
    gammas;
  Ctx.note
    "paper: delay moves < 0.1 ms and loss stays ~0 up to ~70%% load even at gamma = 0.5.";

  Ctx.section "Fig 5 (text): latency cost of alternative routing schemes";
  let demands = Cisp_traffic.Matrix.scale_to_gbps inputs.Inputs.traffic ~aggregate_gbps:Ctx.aggregate_gbps in
  let mw_gbps = Sim.Builder.provisioned_mw_gbps plan in
  let model =
    { Sim.Routing.inputs; topology = topo; mw_gbps; fiber_gbps = Sim.Builder.default_config.Sim.Builder.fiber_gbps }
  in
  let schemes =
    [
      ("shortest-path", Sim.Routing.Shortest_path);
      ("min-max-utilization", Sim.Routing.Min_max_utilization);
      ("throughput-optimal", Sim.Routing.Throughput_optimal);
    ]
  in
  let base = ref 0.0 in
  List.iter
    (fun (name, scheme) ->
      let paths, secs = Ctx.time (fun () -> Sim.Routing.paths model scheme ~demands_gbps:demands) in
      let lat = Sim.Routing.mean_route_latency_ms model paths ~demands_gbps:demands in
      if scheme = Sim.Routing.Shortest_path then base := lat;
      Printf.printf "%-22s mean route latency %.3f ms (%+.1f%%)  [%.1fs]\n%!" name lat
        (100.0 *. (lat -. !base) /. !base) secs)
    schemes;
  Ctx.note "paper: the alternative schemes pay ~10%% extra latency."
