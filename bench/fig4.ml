(* Fig 4: (a) stretch vs tower budget at 70/100 km max hop range;
   (b) successive tower-disjoint paths on the longest link;
   (c) cost per GB vs aggregate throughput. *)

open Cisp_design
module Hops = Cisp_towers.Hops

let run_a ctx =
  Ctx.section "Fig 4(a): network stretch vs tower budget";
  let budgets =
    if ctx.Ctx.quick then [ 300; 600; 900 ] else [ 500; 1000; 1500; 2000; 3000; 4500; 6000 ]
  in
  let ranges = if ctx.Ctx.quick then [ 100.0 ] else [ 70.0; 100.0 ] in
  Printf.printf "%-10s" "budget";
  List.iter (fun r -> Printf.printf "range=%-6.0fkm " r) ranges;
  Printf.printf "\n";
  let inputs_for range =
    if Float.equal range 100.0 then Ctx.us_inputs ctx
    else begin
      let config = { (Ctx.us_config ctx) with Scenario.max_range_km = range } in
      Scenario.population_inputs (Scenario.artifacts ~config ())
    end
  in
  let per_range = List.map (fun r -> (r, inputs_for r)) ranges in
  List.iter
    (fun budget ->
      Printf.printf "%-10d" budget;
      List.iter
        (fun (_, inputs) ->
          let topo = Scenario.design inputs ~budget in
          Printf.printf "%-13.4f " (Topology.stretch_of topo))
        per_range;
      Printf.printf "\n%!")
    budgets;
  Ctx.note "paper: stretch falls towards ~1.05 with budget; 70 and 100 km ranges are similar."

let run_b ctx =
  Ctx.section "Fig 4(b): tower-disjoint shortest paths on the longest link";
  let inputs = Ctx.us_inputs ctx in
  let topo = Ctx.us_topology ctx in
  let a = Ctx.us_artifacts ctx in
  let hops = a.Scenario.hops in
  match
    List.fold_left
      (fun acc (i, j) ->
        let d = inputs.Inputs.mw_km.(i).(j) in
        match acc with Some (_, _, d') when d' >= d -> acc | _ -> Some (i, j, d))
      None topo.Topology.built
  with
  | None -> Ctx.note "no MW links built"
  | Some (i, j, _) ->
    let geo = inputs.Inputs.geodesic_km.(i).(j) in
    let fiber_stretch = inputs.Inputs.fiber_km.(i).(j) /. geo in
    Printf.printf "link: %s <-> %s (%.0f km geodesic, fiber stretch %.2f)\n"
      inputs.Inputs.sites.(i).Cisp_data.City.name
      inputs.Inputs.sites.(j).Cisp_data.City.name geo fiber_stretch;
    let rounds = if ctx.Ctx.quick then 8 else 20 in
    let paths =
      Cisp_graph.Disjoint.successive hops.Hops.graph ~src:i ~dst:j ~rounds
        ~protected:(fun v -> not (Hops.is_tower_node hops v))
    in
    Printf.printf "%-8s %-12s %-10s\n" "round" "length km" "stretch";
    List.iteri
      (fun k (d, _) -> Printf.printf "%-8d %-12.0f %-10.3f\n" (k + 1) d (d /. geo))
      paths;
    Printf.printf "(paper: stretch grows 1.02 -> ~1.15 over 20 rounds, still below fiber 1.75)\n%!"

let run_c ctx =
  Ctx.section "Fig 4(c): cost per GB vs aggregate throughput (city-city model)";
  let inputs = Ctx.us_inputs ctx in
  let topo = Ctx.us_topology ctx in
  let a = Ctx.us_artifacts ctx in
  let spare = Capacity.spare_from_registry a.Scenario.hops in
  let rates =
    if ctx.Ctx.quick then [ 10.0; 100.0 ] else [ 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0 ]
  in
  Printf.printf "%-14s %-12s %-12s %-12s\n" "gbps" "cost/GB" "new towers" "radios";
  List.iter
    (fun gbps ->
      let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:gbps in
      Printf.printf "%-14.0f $%-11.2f %-12d %-12d\n%!" gbps
        (Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:gbps)
        plan.Capacity.new_towers plan.Capacity.radios)
    rates;
  Ctx.note "paper: cost/GB decreases with throughput (~$0.81 at 100 Gbps)."

let run ctx =
  run_a ctx;
  run_b ctx;
  run_c ctx
