(* Fig 11: traffic-mix mismatch.  The network is designed for a
   city-city : DC-edge : inter-DC mix of 4:3:3 and then driven with
   deviated mixes at increasing load. *)

open Cisp_design
module Matrix = Cisp_traffic.Matrix
module Sim = Cisp_sim

(* City-city population product, zero-padded over the DC indices. *)
let city_city_padded sites n_cities =
  let m = Matrix.population_product (Array.sub sites 0 n_cities) in
  let n = Array.length sites in
  let out = Array.make_matrix n n 0.0 in
  Array.iteri (fun i row -> Array.iteri (fun j v -> out.(i).(j) <- v) row) m;
  out

let mix_matrix sites n_cities (a, b, c) =
  Matrix.mix
    [
      (float_of_int a, city_city_padded sites n_cities);
      (float_of_int b, Fig9.dc_edge_traffic sites n_cities);
      (float_of_int c, Fig9.interdc_traffic sites n_cities);
    ]

let run ctx =
  Ctx.section "Fig 11: deviations from the designed-for traffic mix (design = 4:3:3)";
  let a, n_cities = Fig9.us_dc_artifacts ctx in
  let sites = a.Scenario.sites in
  let design_traffic = mix_matrix sites n_cities (4, 3, 3) in
  let inputs = Scenario.inputs a ~traffic:design_traffic in
  let topo =
    Ctx.memo_topo ctx "us+dc-mix" (fun () -> Scenario.design inputs ~budget:(Ctx.us_budget ctx))
  in
  let spare = Capacity.spare_from_registry a.Scenario.hops in
  let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:Ctx.aggregate_gbps in
  let mw_gbps = Sim.Builder.provisioned_mw_gbps plan in
  let mixes = [ (4, 3, 3); (5, 3, 3); (4, 3, 4); (4, 4, 3) ] in
  let loads = if ctx.Ctx.quick then [ 50; 90 ] else [ 30; 50; 70; 90; 100; 110; 120 ] in
  Printf.printf "%-10s %-8s %-14s %-12s\n" "mix" "load%" "mean delay ms" "loss rate";
  List.iter
    (fun mix ->
      let traffic = mix_matrix sites n_cities mix in
      List.iter
        (fun load ->
          let demands =
            Matrix.scale_to_gbps traffic
              ~aggregate_gbps:(Ctx.aggregate_gbps *. float_of_int load /. 100.0)
          in
          let eng = Sim.Engine.create () in
          let net = Sim.Builder.build eng inputs topo ~mw_gbps in
          let model =
            { Sim.Routing.inputs; topology = topo; mw_gbps;
              fiber_gbps = Sim.Builder.default_config.Sim.Builder.fiber_gbps }
          in
          let paths = Sim.Routing.paths model Sim.Routing.Shortest_path ~demands_gbps:demands in
          let stop = if ctx.Ctx.quick then 0.004 else 0.012 in
          Sim.Udp.poisson_commodities net ~paths ~demands_gbps:demands ~packet_bytes:500
            ~start:0.0 ~stop;
          Sim.Engine.run eng ~until:(stop +. 0.2);
          Sim.Net.flush_telemetry net;
          let x, y, z = mix in
          Printf.printf "%d:%d:%-6d %-8d %-14.3f %-12.5f\n%!" x y z load
            (Sim.Net.mean_delay_ms net) (Sim.Net.loss_rate net))
        loads)
    mixes;
  Ctx.note "paper: < 0.05 ms delay difference and ~0 loss up to ~70%% load across mixes."
