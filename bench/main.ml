(* cISP benchmark harness: regenerates every table and figure of the
   paper's evaluation.  Usage:

     dune exec bench/main.exe                 # everything, full scale
     dune exec bench/main.exe -- --quick      # trimmed sweeps
     dune exec bench/main.exe -- fig5 fig7    # selected experiments
     dune exec bench/main.exe -- --jobs 4 par # domain-pool width *)

let experiments : (string * (Ctx.t -> unit)) list =
  [
    ("sec2", Sec2.run);
    ("fig2", Fig2.run);
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("sec8", Sec8.run);
    ("ablation", Ablation.run);
    ("alt", Alt.run);
    ("micro", Micro.run);
    ("par", Par.run);
  ]

(* Consume "--jobs N" (pool width), "--trace FILE" and "--metrics"
   (telemetry sinks), returning the remaining args. *)
let rec extract_options = function
  | [] -> []
  | "--jobs" :: n :: rest ->
    (match int_of_string_opt n with
    | Some k when k >= 1 -> Cisp_util.Pool.set_default_jobs k
    | Some _ | None -> Printf.eprintf "ignoring invalid --jobs %S\n" n);
    extract_options rest
  | "--trace" :: file :: rest ->
    Cisp_util.Telemetry.enable_trace file;
    extract_options rest
  | "--metrics" :: rest ->
    Cisp_util.Telemetry.enable_metrics ();
    extract_options rest
  | a :: rest -> a :: extract_options rest

let () =
  Cisp_util.Telemetry.init_from_env ();
  let args = Array.to_list Sys.argv |> List.tl |> extract_options in
  let quick = List.mem "--quick" args in
  let selected = List.filter (fun a -> a <> "--quick") args in
  let ctx = Ctx.create ~quick in
  let to_run =
    if selected = [] then experiments
    else
      List.filter (fun (name, _) -> List.mem name selected) experiments
  in
  if to_run = [] then begin
    Printf.eprintf "unknown experiment(s); available: %s\n"
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  let t0 = Unix.gettimeofday () in
  Printf.printf "cISP evaluation harness%s — %d experiment group(s)\n%!"
    (if quick then " (quick mode)" else "")
    (List.length to_run);
  List.iter
    (fun (name, f) ->
      let (), secs = Ctx.time (fun () -> f ctx) in
      Printf.printf "[%s done in %.1fs]\n%!" name secs)
    to_run;
  Printf.printf "\ntotal: %.1fs\n%!" (Unix.gettimeofday () -. t0);
  Cisp_util.Telemetry.finish ~ppf:Format.std_formatter ()
