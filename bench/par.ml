(* Parallel-pipeline benchmark: wall-clock of the four pool-backed hot
   paths at 1 domain vs a curve of pool widths on the standard
   us-backbone scenario, with a bit-identity check between the
   sequential run and every parallel width.  Each run appends a JSON
   line per (kernel, width) to BENCH.json so the speedup trajectory
   accumulates across commits. *)

module Pool = Cisp_util.Pool
module Inputs = Cisp_design.Inputs
module Topology = Cisp_design.Topology
module Greedy = Cisp_design.Greedy
module Hops = Cisp_towers.Hops
module Year = Cisp_weather.Year
module Graph = Cisp_graph.Graph
module Dijkstra = Cisp_graph.Dijkstra
module Ch = Cisp_graph.Ch
module Query = Cisp_graph.Query

let bench_json_path = "BENCH.json"

(* Every record of one invocation shares a run id, so the per-width
   lines of a curve can be grouped when BENCH.json accumulates runs
   across commits and machines. *)
let run_id =
  Printf.sprintf "%.0f-%d" (Unix.gettimeofday () *. 1000.0) (Unix.getpid ())

(* Commit being measured: CI exports it; locally, chase HEAD through
   one level of symref.  Speedup regressions in the accumulated log are
   only attributable if each line names its code version. *)
let git_rev =
  let from_env =
    match Sys.getenv_opt "CISP_GIT_REV" with
    | Some r when String.trim r <> "" -> Some (String.trim r)
    | _ -> (
      match Sys.getenv_opt "GITHUB_SHA" with
      | Some r when String.trim r <> "" -> Some (String.trim r)
      | _ -> None)
  in
  let read_first_line path =
    try
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Some (String.trim (input_line ic)))
    with Sys_error _ | End_of_file -> None
  in
  let from_git () =
    match read_first_line ".git/HEAD" with
    | Some line when String.length line > 5 && String.sub line 0 5 = "ref: " ->
      read_first_line (Filename.concat ".git" (String.sub line 5 (String.length line - 5)))
    | Some line when line <> "" -> Some line
    | Some _ | None -> None
  in
  let rev = match from_env with Some r -> Some r | None -> from_git () in
  match rev with
  | Some r -> if String.length r > 12 then String.sub r 0 12 else r
  | None -> "unknown"

(* With CISP_BENCH_ENFORCE=1 (the CI bench-smoke job), kernels that
   declare a minimum speedup for a width fail the run when they miss
   it.  The gate needs real cores: with fewer cores than domains,
   parallel speedup is physically impossible (domains time-slice the
   CPUs), so enforcement at that width disarms itself rather than
   report scheduler noise. *)
let enforce_env =
  match Sys.getenv_opt "CISP_BENCH_ENFORCE" with Some "1" -> true | _ -> false

let enforcing_at jobs = enforce_env && Domain.recommended_domain_count () >= jobs

(* The widths measured on top of the sequential baseline.  An explicit
   --jobs/CISP_JOBS request bounds the curve (CI asks for 2 and gets
   exactly the 1-vs-2 gate); otherwise the full curve is measured. *)
let curve_widths () =
  let requested = Pool.default_jobs () in
  if requested > 1 then
    List.sort_uniq Int.compare
      (requested :: List.filter (fun w -> w < requested) [ 2; 4; 8 ])
  else [ 2; 4; 8 ]

let violations : string list ref = ref []
let mismatches : string list ref = ref []

(* (kernel, seq_s, [(jobs, speedup); ...]) per kernel, curve in
   measurement order, for the end-of-run summary line. *)
let curves : (string * float * (int * float) list) list ref = ref []

let note_curve ~kernel ~seq_s ~jobs ~speedup =
  match !curves with
  | (k, s, points) :: rest when String.equal k kernel ->
    curves := (k, s, (jobs, speedup) :: points) :: rest
  | _ -> curves := (kernel, seq_s, [ (jobs, speedup) ]) :: !curves

let record ~kernel ~jobs ~seq_s ~par_s ~min_speedup =
  let speedup = if par_s > 0.0 then seq_s /. par_s else 0.0 in
  note_curve ~kernel ~seq_s ~jobs ~speedup;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_json_path in
  Printf.fprintf oc
    {|{"bench":"par","run":"%s","rev":"%s","kernel":"%s","jobs":%d,"seq_s":%.6f,"par_s":%.6f,"speedup":%.3f|}
    run_id git_rev kernel jobs seq_s par_s speedup;
  (match min_speedup with
  | Some m -> Printf.fprintf oc {|,"min_speedup":%.3f}|} m
  | None -> output_string oc "}");
  output_char oc '\n';
  close_out oc;
  match min_speedup with
  | Some m when enforcing_at jobs && speedup < m ->
    violations :=
      Printf.sprintf "%s: speedup %.2fx at %d domains, required >= %.2fx" kernel speedup
        jobs m
      :: !violations
  | _ -> ()

(* One summary line per invocation: the whole jobs curve of every
   kernel in a single record, so a log reader gets the run's shape
   without joining the per-width lines back together. *)
let record_summary ~widths =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 bench_json_path in
  Printf.fprintf oc {|{"bench":"par","run":"%s","rev":"%s","summary":true,"widths":[%s]|}
    run_id git_rev
    (String.concat "," (List.map string_of_int widths));
  Printf.fprintf oc {|,"cores":%d,"enforced":%b|} (Domain.recommended_domain_count ())
    enforce_env;
  Printf.fprintf oc {|,"kernels":{%s}}|}
    (String.concat ","
       (List.rev_map
          (fun (kernel, seq_s, points) ->
            Printf.sprintf {|"%s":{"seq_s":%.6f,"speedup":{%s}}|} kernel seq_s
              (String.concat ","
                 (List.rev_map
                    (fun (jobs, speedup) -> Printf.sprintf {|"%d":%.3f|} jobs speedup)
                    points)))
          !curves));
  output_char oc '\n';
  close_out oc

(* Result of the first run, fastest wall-clock of [reps] runs. *)
let timed reps f =
  let r, s0 = Ctx.time f in
  let best = ref s0 in
  for _ = 2 to reps do
    let _, s = Ctx.time f in
    if s < !best then best := s
  done;
  (r, !best)

(* [min_speedup] maps a pool width to the minimum speedup the kernel
   must reach at that width under enforcement. *)
let kernel ?(min_speedup = []) ctx ~name ~widths ~equal run =
  (* Under enforcement, best-of-2 even in quick mode: a single noisy
     rep must not fail CI. *)
  let reps = if ctx.Ctx.quick && not enforce_env then 1 else 2 in
  let seq_r, seq_s = Pool.with_default_jobs 1 (fun () -> timed reps run) in
  List.iter
    (fun jobs ->
      let par_r, par_s = Pool.with_default_jobs jobs (fun () -> timed reps run) in
      let identical = equal seq_r par_r in
      if not identical then begin
        (* Determinism is the pool's contract (same chunking, same
           combination order at any width); a mismatch is a real bug,
           not measurement noise.  Report it on stderr and let the
           harness finish the curve so one diagnostic run shows every
           width that diverges. *)
        Printf.eprintf
          "par bench: BIT-IDENTITY VIOLATION in %s: results differ between 1 and %d \
           domains\n\
           %!"
          name jobs;
        mismatches :=
          Printf.sprintf "%s: 1 vs %d domains" name jobs :: !mismatches
      end;
      Ctx.note "%-24s seq %8.3fs   %d-domain %8.3fs   speedup %.2fx   (%s)" name seq_s
        jobs par_s
        (if par_s > 0.0 then seq_s /. par_s else 0.0)
        (if identical then "bit-identical" else "MISMATCH");
      record ~kernel:name ~jobs ~seq_s ~par_s
        ~min_speedup:(List.assoc_opt jobs min_speedup))
    widths

(* Engine-vs-baseline comparison.  Unlike [kernel] (sequential vs the
   width curve of the same function), both sides here run at the same
   pool width [jobs] — the question is the algorithm, not the pool.
   Recorded with the baseline in the [seq_s] slot and the engine in
   [par_s], so "speedup" in BENCH.json reads as engine-over-baseline;
   [min_speedup] gates that ratio under enforcement exactly like the
   width kernels', and bit-identity between the two sides is the
   correctness check. *)
let engine_kernel ctx ~name ~jobs ?min_speedup ~equal ~baseline ~engine () =
  let reps = if ctx.Ctx.quick && not enforce_env then 1 else 2 in
  let base_r, base_s = Pool.with_default_jobs jobs (fun () -> timed reps baseline) in
  let eng_r, eng_s = Pool.with_default_jobs jobs (fun () -> timed reps engine) in
  let identical = equal base_r eng_r in
  if not identical then begin
    Printf.eprintf
      "par bench: BIT-IDENTITY VIOLATION in %s: engine and baseline disagree at %d \
       domains\n\
       %!"
      name jobs;
    mismatches := Printf.sprintf "%s: engine vs baseline at %d domains" name jobs :: !mismatches
  end;
  Ctx.note "%-24s dijkstra %8.3fs   engine %8.3fs   speedup %.2fx   (%s)" name base_s
    eng_s
    (if eng_s > 0.0 then base_s /. eng_s else 0.0)
    (if identical then "bit-identical" else "MISMATCH");
  record ~kernel:name ~jobs ~seq_s:base_s ~par_s:eng_s ~min_speedup

let scores_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some (c1, b1), Some (c2, b2) -> c1 = c2 && Float.equal b1 b2
         | None, Some _ | Some _, None -> false)
       a b

let link_equal (l1 : Hops.link) (l2 : Hops.link) =
  l1.Hops.src = l2.Hops.src && l1.Hops.dst = l2.Hops.dst
  && Float.equal l1.Hops.distance_km l2.Hops.distance_km
  && Float.equal l1.Hops.geodesic_km l2.Hops.geodesic_km
  && l1.Hops.node_path = l2.Hops.node_path
  && l1.Hops.tower_count = l2.Hops.tower_count

let links_equal a b =
  Array.for_all2
    (fun r1 r2 ->
      Array.for_all2
        (fun x y ->
          match (x, y) with
          | None, None -> true
          | Some l1, Some l2 -> link_equal l1 l2
          | None, Some _ | Some _, None -> false)
        r1 r2)
    a b

let summary_equal (p : Year.pair_summary) (q : Year.pair_summary) =
  Float.equal p.Year.best q.Year.best
  && Float.equal p.Year.median q.Year.median
  && Float.equal p.Year.p99 q.Year.p99
  && Float.equal p.Year.worst q.Year.worst
  && Float.equal p.Year.fiber q.Year.fiber

let year_equal (x : Year.result) (y : Year.result) =
  Float.equal x.Year.mean_failed_links y.Year.mean_failed_links
  && Array.length x.Year.per_pair = Array.length y.Year.per_pair
  && Array.for_all2 summary_equal x.Year.per_pair y.Year.per_pair

let run ctx =
  let widths = curve_widths () in
  Ctx.section
    (Printf.sprintf "Parallel hot paths: 1 vs {%s} domains (us backbone%s)"
       (String.concat "," (List.map string_of_int widths))
       (if ctx.Ctx.quick then ", quick" else ""));
  let inputs = Ctx.us_inputs ctx in
  let a = Ctx.us_artifacts ctx in
  let budget = Ctx.us_budget ctx in
  let w = Greedy.weight_matrix inputs in
  let base = Topology.fiber_baseline inputs in
  let cands = Array.of_list (Greedy.candidates inputs) in
  Ctx.note "n=%d sites, %d candidate links" (Inputs.n_sites inputs) (Array.length cands);
  (* 1. Greedy candidate scoring — the per-round O(cands x n^2) loop. *)
  kernel ctx ~name:"greedy_scoring" ~widths ~equal:scores_equal (fun () ->
      Greedy.score_candidates inputs w base ~budget cands);
  (* 2. APSP: one Dijkstra per site over the full tower graph — the
     step-1-to-step-2 handoff that builds [Inputs.mw_km].  Modest
     per-source work over a shared graph: parity at 2 domains, a real
     win from 4 up. *)
  kernel ctx ~name:"apsp_mw_links" ~widths
    ~min_speedup:[ (2, 1.0); (4, 1.1); (8, 1.1) ]
    ~equal:links_equal
    (fun () -> Hops.all_links a.Cisp_design.Scenario.hops);
  (* 3. LOS + Fresnel hop-feasibility sweep (tower graph build), on a
     cold DEM cache each run so domains share the miss work.  The hit
     path is lock-free and the sweep is tile-scheduled, so 4 domains
     must deliver a real speedup, not just parity. *)
  kernel ctx ~name:"los_sweep" ~widths
    ~min_speedup:[ (2, 1.0); (4, 1.3); (8, 1.3) ]
    ~equal:(fun (x : int) y -> x = y)
    (fun () ->
      let cache = Cisp_terrain.Dem_cache.create a.Cisp_design.Scenario.dem in
      let hops =
        Hops.build ~config:a.Cisp_design.Scenario.hops.Hops.config ~cache
          ~sites:(Array.to_list a.Cisp_design.Scenario.sites)
          ~towers:(Array.to_list a.Cisp_design.Scenario.hops.Hops.towers)
          ()
      in
      hops.Hops.feasible_hops);
  (* 4. Monte Carlo weather year over the designed topology.  Trials
     are batched per chunk and the sample matrix is interval-major, so
     the historical 0.56x pessimization must stay fixed: real speedup
     required from 4 domains. *)
  let topo = Ctx.us_topology ctx in
  let intervals = if ctx.Ctx.quick then 24 else 96 in
  kernel ctx ~name:"weather_year" ~widths
    ~min_speedup:[ (2, 1.0); (4, 1.3); (8, 1.3) ]
    ~equal:year_equal
    (fun () ->
      Year.run ~intervals ~climate:Cisp_weather.Rainfield.us_climate
        ~hops:a.Cisp_design.Scenario.hops inputs topo);
  (* 5. CH preprocessing of the full tower graph.  The contraction
     loop is inherently sequential (only the winner's witness rows fan
     out on the pool), so no speedup floor; what the harness's equal
     check buys is the pool contract at bench scale — contraction
     ranks and shortcut count bit-identical at every width.  Measured
     at the top width only: the rest of the curve adds wall-clock
     without information. *)
  let g = a.Cisp_design.Scenario.hops.Hops.graph in
  let gn = Graph.node_count g in
  let top_width = List.fold_left max 1 widths in
  kernel ctx ~name:"ch_build" ~widths:[ top_width ]
    ~equal:(fun (x : int array * int) y -> x = y)
    (fun () ->
      let ch = Ch.build g in
      (Array.init gn (Ch.rank ch), Ch.shortcut_count ch));
  (* 6-7. The hierarchical engine against the per-source Dijkstras the
     call sites ran before it existed, on the same tower graph.  Forced
     to CH so the kernel keeps measuring the hierarchy even if the Auto
     density policy later re-classifies this graph; the (amortized)
     preprocessing is paid outside the timed region, matching how
     [Hops] caches its engine across calls. *)
  let q = Query.prepare ~mode:Query.Force_ch g in
  let rng = Cisp_util.Rng.create 1215 in
  let pairs =
    Array.init 64 (fun _ -> (Cisp_util.Rng.int rng gn, Cisp_util.Rng.int rng gn))
  in
  let floats_equal x y =
    Array.length x = Array.length y && Array.for_all2 Float.equal x y
  in
  engine_kernel ctx ~name:"ch_query" ~jobs:top_width ~min_speedup:3.0
    ~equal:floats_equal
    ~baseline:(fun () ->
      Array.map (fun (s, t) -> (Dijkstra.run g ~src:s).Dijkstra.dist.(t)) pairs)
    ~engine:(fun () ->
      Array.map
        (fun (s, t) ->
          match Query.distance q ~src:s ~dst:t with Some d -> d | None -> infinity)
        pairs)
    ();
  (* The paper's APSP shape: site-to-site distances over the tower
     graph (the [Inputs.mw_km] build).  The >= 5x floor is the PR's
     headline gate: bucket-based many-to-many on the prepared
     hierarchy must beat the pool-parallel per-source Dijkstra sweep
     by at least that much, bit-identically. *)
  let sites = Array.init a.Cisp_design.Scenario.hops.Hops.n_sites Fun.id in
  engine_kernel ctx ~name:"many_to_many" ~jobs:top_width ~min_speedup:5.0
    ~equal:(fun x y -> Array.length x = Array.length y && Array.for_all2 floats_equal x y)
    ~baseline:(fun () ->
      Array.map
        (fun (r : Dijkstra.result) -> Array.map (fun t -> r.Dijkstra.dist.(t)) sites)
        (Dijkstra.all_pairs_results g ~sources:sites))
    ~engine:(fun () -> Query.many_to_many q ~sources:sites ~targets:sites)
    ();
  record_summary ~widths;
  Ctx.note "wall-clock records appended to %s (run %s, rev %s)" bench_json_path run_id
    git_rev;
  if !mismatches <> [] || !violations <> [] then begin
    if !mismatches <> [] then
      Printf.eprintf "par bench: bit-identity violations:\n  %s\n"
        (String.concat "\n  " (List.rev !mismatches));
    if !violations <> [] then
      Printf.eprintf "par bench: speedup thresholds violated:\n  %s\n"
        (String.concat "\n  " (List.rev !violations));
    Printf.eprintf "%!";
    exit 1
  end
