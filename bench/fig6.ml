(* Fig 6: the edge/core speed mismatch.  Ten senders feed 100 KB TCP
   flows through node M into a 100 Mbps link; sender access links are
   100 Mbps (control) or 10 Gbps (mismatch); pacing on/off. *)

module Sim = Cisp_sim

let n_sources = 10
let bottleneck_gbps = 0.1
let flow_bytes = 100_000

type outcome = { q50_bytes : float; q95_bytes : float; fct50_ms : float }

let run_one ~src_gbps ~pacing ~seed ~duration =
  let eng = Sim.Engine.create () in
  let m = n_sources and d = n_sources + 1 in
  let net = Sim.Net.create eng ~n_nodes:(n_sources + 2) in
  for s = 0 to n_sources - 1 do
    Sim.Net.add_duplex net s m ~gbps:src_gbps ~delay_ms:5.0 ~buffer_bytes:max_int
  done;
  (* M has an unbounded queue, as in the paper. *)
  Sim.Net.add_duplex net m d ~gbps:bottleneck_gbps ~delay_ms:5.0 ~buffer_bytes:max_int;
  let rng = Cisp_util.Rng.create seed in
  (* Poisson flow arrivals at 70% of the bottleneck. *)
  let arrival_rate = 0.7 *. bottleneck_gbps *. 1e9 /. (float_of_int flow_bytes *. 8.0) in
  let fcts = ref [] in
  let flow_counter = ref 0 in
  let rec arrivals t =
    if t < duration then begin
      Sim.Engine.schedule eng ~at:t (fun () ->
          let s = Cisp_util.Rng.int rng n_sources in
          incr flow_counter;
          let id = 1000 + !flow_counter in
          let start = Sim.Engine.now eng in
          let cfg = { (Sim.Tcp.default_config ~ack_delay_s:0.010) with Sim.Tcp.pacing } in
          Sim.Tcp.start_flow net cfg ~flow_id:id ~route:[| s; m; d |] ~size_bytes:flow_bytes
            ~at:start ~on_complete:(fun finish -> fcts := (finish -. start) :: !fcts));
      arrivals (t +. Cisp_util.Rng.exponential rng arrival_rate)
    end
  in
  arrivals (Cisp_util.Rng.exponential rng arrival_rate);
  (* Sample the bottleneck queue every millisecond. *)
  let samples = ref [] in
  let rec sampler t =
    if t < duration then
      Sim.Engine.schedule eng ~at:t (fun () ->
          samples := float_of_int (Sim.Net.queue_bytes net ~src:m ~dst:d) :: !samples;
          sampler (t +. 0.001))
  in
  sampler 0.001;
  Sim.Engine.run eng ~until:(duration +. 2.0);
  Sim.Net.flush_telemetry net;
  let qs = Array.of_list !samples in
  let fct = Array.of_list (List.map (fun x -> x *. 1000.0) !fcts) in
  {
    q50_bytes = (if Array.length qs = 0 then 0.0 else Cisp_util.Stats.percentile qs 50.0);
    q95_bytes = (if Array.length qs = 0 then 0.0 else Cisp_util.Stats.percentile qs 95.0);
    fct50_ms = (if Array.length fct = 0 then 0.0 else Cisp_util.Stats.percentile fct 50.0);
  }

let run ctx =
  Ctx.section "Fig 6: TCP pacing vs the edge/core speed mismatch";
  let runs = if ctx.Ctx.quick then 3 else 20 in
  let duration = if ctx.Ctx.quick then 2.0 else 5.0 in
  Printf.printf "%-12s %-8s %-16s %-16s %-12s\n" "src rate" "pacing" "queue p50 (B)" "queue p95 (B)" "FCT p50 ms";
  List.iter
    (fun src_gbps ->
      List.iter
        (fun pacing ->
          let acc50 = ref [] and acc95 = ref [] and accf = ref [] in
          for seed = 1 to runs do
            let o = run_one ~src_gbps ~pacing ~seed:(seed * 977) ~duration in
            acc50 := o.q50_bytes :: !acc50;
            acc95 := o.q95_bytes :: !acc95;
            accf := o.fct50_ms :: !accf
          done;
          let avg l = Cisp_util.Stats.mean (Array.of_list l) in
          Printf.printf "%-12s %-8b %-16.0f %-16.0f %-12.1f\n%!"
            (if src_gbps >= 1.0 then Printf.sprintf "%.0f Gbps" src_gbps
             else Printf.sprintf "%.0f Mbps" (src_gbps *. 1000.0))
            pacing (avg !acc50) (avg !acc95) (avg !accf))
        [ false; true ])
    [ 0.1; 10.0 ];
  Ctx.note
    "paper: without pacing the mismatched (10 Gbps) senders inflate the p95 queue;\n\
     with pacing queues match the control and FCTs are unaffected."
