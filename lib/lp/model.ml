type var = int

type var_info = { name : string; ub : float; integer : bool }

type op = Le | Ge | Eq

type t = {
  mutable vars : var_info list;       (* reversed *)
  mutable n : int;
  mutable constraints : Simplex.row list; (* reversed *)
  mutable objective : (int * float) list;
}

let create () = { vars = []; n = 0; constraints = []; objective = [] }

let add_var t ?(lb = 0.0) ?(ub = infinity) ?(integer = false) name =
  if not (Float.equal lb 0.0) then invalid_arg "Model.add_var: only lb = 0 supported";
  if ub < 0.0 then invalid_arg "Model.add_var: negative ub";
  let v = t.n in
  t.vars <- { name; ub; integer } :: t.vars;
  t.n <- t.n + 1;
  v

let binary t name = add_var t ~ub:1.0 ~integer:true name

let info t v =
  match List.nth_opt t.vars (t.n - 1 - v) with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Model.info: unknown variable %d" v)
let var_name t v = (info t v).name
let var_index v = v
let n_vars t = t.n

let op_to_simplex = function Le -> Simplex.Le | Ge -> Simplex.Ge | Eq -> Simplex.Eq

let add_constraint t terms op rhs =
  let coeffs = List.map (fun (c, v) -> (v, c)) terms in
  t.constraints <- { Simplex.coeffs; op = op_to_simplex op; rhs } :: t.constraints

let set_objective t terms = t.objective <- List.map (fun (c, v) -> (v, c)) terms

let objective_value t x =
  List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 t.objective

let to_lp t ~extra =
  let objective = Array.make t.n 0.0 in
  List.iter (fun (v, c) -> objective.(v) <- objective.(v) +. c) t.objective;
  let rows = ref (List.rev t.constraints) in
  (* Upper bounds as explicit rows. *)
  let vars = Array.of_list (List.rev t.vars) in
  Array.iteri
    (fun v vi ->
      if vi.ub < infinity then
        rows := { Simplex.coeffs = [ (v, 1.0) ]; op = Simplex.Le; rhs = vi.ub } :: !rows)
    vars;
  { Simplex.n_vars = t.n; objective; rows = List.rev_append extra !rows }

let integer_vars t =
  let vars = Array.of_list (List.rev t.vars) in
  let acc = ref [] in
  Array.iteri (fun v vi -> if vi.integer then acc := v :: !acc) vars;
  List.rev !acc

let value x v = x.(v)
