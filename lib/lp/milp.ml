type limits = { max_nodes : int; max_seconds : float; gap_tolerance : float }

let default_limits = { max_nodes = 200_000; max_seconds = 120.0; gap_tolerance = 1e-6 }

type outcome = {
  status : [ `Optimal | `Feasible_gap of float | `Infeasible | `Unbounded | `No_solution ];
  x : float array option;
  objective : float option;
  nodes_explored : int;
  lp_solves : int;
}

let int_tol = 1e-6

let fractional_var ivars x =
  (* Most fractional integer variable, or None if all integral. *)
  let best = ref None in
  let best_frac = ref int_tol in
  List.iter
    (fun v ->
      let xv = x.(v) in
      let frac = Float.abs (xv -. Float.round xv) in
      if frac > !best_frac then begin
        best := Some v;
        best_frac := frac
      end)
    ivars;
  !best

let solve_relaxation model = Simplex.solve (Model.to_lp model ~extra:[])

let solve ?(limits = default_limits) model =
  let ivars = List.map Model.var_index (Model.integer_vars model) in
  let start = Sys.time () in
  let nodes_explored = ref 0 in
  let lp_solves = ref 0 in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  (* Frontier: min-heap on LP bound (best-bound search). Each node is
     the list of branching rows accumulated so far. *)
  let frontier = Cisp_graph.Heap.create () in
  let solve_node extra =
    incr lp_solves;
    Simplex.solve (Model.to_lp model ~extra)
  in
  let push_children extra x v =
    let xv = x.(v) in
    let lo = Float.floor xv and hi = Float.ceil xv in
    let left = { Simplex.coeffs = [ (v, 1.0) ]; op = Simplex.Le; rhs = lo } :: extra in
    let right = { Simplex.coeffs = [ (v, 1.0) ]; op = Simplex.Ge; rhs = hi } :: extra in
    List.iter
      (fun branch ->
        match solve_node branch with
        | Simplex.Infeasible -> ()
        | Simplex.Unbounded ->
          (* A bounded-below parent cannot have an unbounded child in a
             minimization with added constraints; treat as numerical
             trouble and drop. *)
          ()
        | Simplex.Optimal sol ->
          if sol.objective < !incumbent_obj -. 1e-12 then
            Cisp_graph.Heap.push frontier sol.objective (branch, sol))
      [ left; right ]
  in
  let time_left () = Sys.time () -. start < limits.max_seconds in
  match solve_node [] with
  | Simplex.Infeasible ->
    { status = `Infeasible; x = None; objective = None; nodes_explored = 0; lp_solves = !lp_solves }
  | Simplex.Unbounded ->
    { status = `Unbounded; x = None; objective = None; nodes_explored = 0; lp_solves = !lp_solves }
  | Simplex.Optimal root ->
    (* Rounding dive: fix fractional integers one at a time towards
       their LP values to plant an early incumbent, so budget-limited
       runs report a feasible solution and best-bound search prunes. *)
    let rec dive2 extra sol depth =
      if depth <= 200 then begin
        match fractional_var ivars sol.Simplex.x with
        | None ->
          if sol.Simplex.objective < !incumbent_obj then begin
            incumbent := Some sol.Simplex.x;
            incumbent_obj := sol.Simplex.objective
          end
        | Some v ->
          let xv = sol.Simplex.x.(v) in
          let try_fix value k =
            let rows =
              { Simplex.coeffs = [ (v, 1.0) ]; op = Simplex.Eq; rhs = value } :: extra
            in
            match solve_node rows with
            | Simplex.Optimal s when s.Simplex.objective < !incumbent_obj -. 1e-12 ->
              dive2 rows s (depth + 1)
            | Simplex.Optimal _ | Simplex.Infeasible | Simplex.Unbounded -> k ()
          in
          let near = Float.round xv in
          let far = if Float.equal near 0.0 then 1.0 else near -. 1.0 in
          try_fix near (fun () -> try_fix far (fun () -> ()))
      end
    in
    dive2 [] root 0;
    Cisp_graph.Heap.push frontier root.objective ([], root);
    let best_bound = ref root.objective in
    let rec loop () =
      if
        Cisp_graph.Heap.is_empty frontier
        || !nodes_explored >= limits.max_nodes
        || not (time_left ())
      then ()
      else begin
        match Cisp_graph.Heap.pop frontier with
        | None -> ()
        | Some (bound, (extra, sol)) ->
          best_bound := bound;
          if bound >= !incumbent_obj -. 1e-12 then
            (* Everything left is dominated: best-bound order means we
               can stop. *)
            ()
          else begin
            incr nodes_explored;
            (match fractional_var ivars sol.Simplex.x with
            | None ->
              if sol.objective < !incumbent_obj then begin
                incumbent := Some sol.Simplex.x;
                incumbent_obj := sol.objective
              end
            | Some v -> push_children extra sol.Simplex.x v);
            (* Gap check. *)
            let gap =
              if Float.equal !incumbent_obj infinity then infinity
              else
                Float.abs (!incumbent_obj -. !best_bound)
                /. Float.max 1e-9 (Float.abs !incumbent_obj)
            in
            if gap > limits.gap_tolerance then loop ()
          end
      end
    in
    loop ();
    (match !incumbent with
    | Some x ->
      let exhausted = Cisp_graph.Heap.is_empty frontier in
      let gap =
        Float.abs (!incumbent_obj -. !best_bound)
        /. Float.max 1e-9 (Float.abs !incumbent_obj)
      in
      let status =
        if exhausted || gap <= limits.gap_tolerance || !best_bound >= !incumbent_obj -. 1e-12
        then `Optimal
        else `Feasible_gap gap
      in
      {
        status;
        x = Some x;
        objective = Some !incumbent_obj;
        nodes_explored = !nodes_explored;
        lp_solves = !lp_solves;
      }
    | None ->
      {
        status = `No_solution;
        x = None;
        objective = None;
        nodes_explored = !nodes_explored;
        lp_solves = !lp_solves;
      })
