(** Per-domain scratch slots (see also the re-export [Pool.Scratch]).

    Hot paths that need reusable mutable state per worker (profile
    sample buffers, L1 caches, telemetry buffers) allocate it through
    a {!t} instead of capturing shared state in a task closure: each
    domain lazily builds its own instance on first use, so tasks touch
    only domain-private memory.  The contract is on the user: scratch
    contents must never feed results — only the work computed {e into}
    them may. *)

type 'a t
(** A per-domain slot: one lazily-created ['a] per domain. *)

val create : (unit -> 'a) -> 'a t
(** [create init] makes a new slot; [init] runs once per domain, on
    that domain's first {!get}.  Call it at module level — each call
    claims a fresh slot in every domain's local storage. *)

val get : 'a t -> 'a
(** This domain's instance (created on first use).  The returned
    value is domain-private: using it requires no synchronization,
    and it must never escape to another domain. *)
