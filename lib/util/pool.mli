(** Work-stealing-free domain pool for the embarrassingly parallel
    hot paths (APSP, greedy candidate scoring, LOS sweeps, Monte
    Carlo trials).

    Design contract: parallelism only changes {e when} work runs,
    never {e what} is computed.  Every combinator here is
    deterministic — results are bit-identical whatever the pool size,
    including [jobs = 1], which degrades to plain sequential loops
    with no domains spawned.  {!reduce} guarantees this for float
    accumulation by merging partial results in a fixed binary-tree
    order that depends only on the input length, never on worker
    scheduling.

    A pool is a fixed set of long-lived worker domains fed from a
    shared chunk counter (no work stealing, no per-worker deques).
    Nested or concurrent submissions are safe: a [parallel_for] issued
    from inside a worker task, or while another job is in flight, runs
    sequentially on the calling domain instead of deadlocking. *)

type t
(** A pool of worker domains. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (the submitting
    thread is the remaining worker).  [jobs] is clamped to at least 1;
    at 1 no domains are spawned and every combinator runs inline. *)

val jobs : t -> int
(** Parallel width of the pool (>= 1). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent.  Using the pool afterwards
    degrades to sequential execution. *)

(** {2 Per-domain scratch}

    Hot paths that need reusable mutable state per worker (profile
    sample buffers, L1 caches) allocate it through a {!Scratch.t}
    instead of capturing shared state in the task closure: each domain
    lazily builds its own instance on first use, so tasks touch only
    domain-private memory and stay within the pool's determinism
    contract (rule L7).  The contract is on the user: scratch contents
    must never feed results — only the work computed {e into} them
    may. *)

module Scratch = Scratch
(** Re-export of {!Scratch} (its own compilation unit so that modules
    below the pool in the dependency order — [Telemetry] — can use it
    too). *)

(** {2 Default pool}

    Library hot paths share one process-wide pool sized by (in
    priority order) {!set_default_jobs} / a [--jobs] CLI flag, the
    [CISP_JOBS] environment variable, then
    [Domain.recommended_domain_count].  It is created lazily on first
    use and recycled automatically when the requested width changes. *)

val default_jobs : unit -> int
(** The width the default pool has (or would be created with). *)

val set_default_jobs : int -> unit
(** Override the default width ([--jobs]); clamped to at least 1.
    Takes effect at the next {!get}. *)

val with_default_jobs : int -> (unit -> 'a) -> 'a
(** [with_default_jobs k f] runs [f] with the default width forced to
    [k], restoring the previous setting afterwards (exception-safe).
    The workhorse of the determinism tests. *)

val get : unit -> t
(** The shared default pool (created or resized on demand). *)

(** {2 Deterministic parallel combinators} *)

val parallel_for : ?min_chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f 0 .. f (n-1)], each index exactly
    once, in parallel.  The body must only write state owned by its
    own index.  An exception raised by any [f i] cancels the remaining
    chunks and is re-raised (with its backtrace) in the caller.

    [min_chunk] (default 1, clamped to at least 1) is a cost hint: the
    smallest number of indices worth one claim of the shared chunk
    counter.  Give cheap bodies a large [min_chunk] so workers do not
    spin on the atomic; leave it at 1 for bodies whose per-index cost
    dwarfs a claim (an APSP source, a weather trial batch).  When the
    whole range fits in one chunk ([n <= min_chunk] on small [n]) the
    loop short-circuits to the calling domain without waking any
    worker — the submitter would otherwise claim every chunk before
    the workers stir, paying wake-up cost for zero parallelism.
    Chunking affects scheduling only, never results. *)

val parallel_for_default : ?min_chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for_default ~n f] is [parallel_for (get ()) ~n f],
    except that a nested call (from inside a pool body) falls back to
    the calling domain {e before} consulting the pool registry — a
    worker never acquires [default_lock].  Use it from code that may
    run either at top level or inside another parallel loop (e.g.
    [Topology.distances_incremental] under a weather sweep). *)

val parallel_map_array : ?min_chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map_array pool f arr] is [Array.map f arr] with the
    elements evaluated in parallel.  [f] must be pure (or at least
    per-element independent).  [min_chunk] as in {!parallel_for}. *)

val reduce : t -> map:('a -> 'b) -> merge:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [reduce pool ~map ~merge ~init arr] maps every element in
    parallel, then combines the results pairwise in a fixed
    left-to-right binary tree whose shape depends only on
    [Array.length arr]; the final tree value is merged onto [init] as
    [merge init total].  For non-associative operations (float sums)
    the result is therefore identical for every pool width.  Returns
    [init] on the empty array. *)

val fold_range :
  ?min_chunk:int ->
  t ->
  n:int ->
  map:(lo:int -> hi:int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** Per-chunk accumulate, deterministic reduce: the index range
    [0, n) is cut into fixed chunks of [min_chunk] indices (default 1;
    the last chunk may be short), [map ~lo ~hi] builds each chunk's
    accumulator over \[lo, hi), and the partials are combined in the
    same fixed binary tree as {!reduce}, finishing with
    [merge init total].  Chunk boundaries are a pure function of
    [(n, min_chunk)] — never of the pool width or of which domain
    claimed which chunk — so the result is bit-identical at any width
    even for non-associative merges.  This is the required idiom for
    parallel accumulation (rule L7): accumulate into chunk-private
    state inside [map] (per-domain buffers via {!Scratch} are fine for
    workspace), never into state shared across chunks.  Returns [init]
    when [n <= 0]. *)
