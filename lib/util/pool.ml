(* A job is one parallel_for: workers (and the submitter) pull
   fixed-size chunks of the index range from a shared atomic counter.
   Chunk boundaries affect only scheduling, never results, because
   each index owns its output slot. *)

type job = {
  fn : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;
  cancelled : bool Atomic.t;
  mutable active : int; (* workers currently inside the job; pool mutex *)
  mutable failure : (exn * Printexc.raw_backtrace) option; (* pool mutex *)
}

type t = {
  width : int;
  mutex : Mutex.t;
  work : Condition.t; (* new job published, or shutdown *)
  finished : Condition.t; (* a worker left the job *)
  mutable current : job option;
  mutable generation : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.width

(* True while the current domain is executing a job body: nested
   submissions from inside a task run sequentially instead of
   deadlocking on the (busy) pool. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential_for n fn =
  for i = 0 to n - 1 do
    fn i
  done

let run_slice pool job =
  let saved = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  (* Telemetry observes scheduling only (chunks claimed, time this
     domain spent inside the job); it never affects which indices run
     where, so results stay bit-identical with it on or off. *)
  let tel = Telemetry.enabled () in
  let t0 = if tel then Unix.gettimeofday () else 0.0 in
  let chunks = ref 0 in
  let rec loop () =
    if not (Atomic.get job.cancelled) then begin
      let start = Atomic.fetch_and_add job.next job.chunk in
      if start < job.n then begin
        incr chunks;
        let stop = min job.n (start + job.chunk) in
        (try
           for i = start to stop - 1 do
             job.fn i
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Atomic.set job.cancelled true;
           Mutex.lock pool.mutex;
           (match job.failure with
           | None -> job.failure <- Some (e, bt)
           | Some _ -> ());
           Mutex.unlock pool.mutex);
        loop ()
      end
    end
  in
  loop ();
  if tel then begin
    let busy = Unix.gettimeofday () -. t0 in
    Telemetry.add "pool.chunks" !chunks;
    Telemetry.observe "pool.slice_busy_s" busy;
    Telemetry.add
      (Printf.sprintf "pool.domain%d.busy_us" (Domain.self () :> int))
      (int_of_float (busy *. 1e6))
  end;
  Domain.DLS.set in_task saved

let rec worker_loop pool seen_generation =
  Mutex.lock pool.mutex;
  while (not pool.stopped) && pool.generation = seen_generation do
    Condition.wait pool.work pool.mutex
  done;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    let generation = pool.generation in
    match pool.current with
    | None ->
      Mutex.unlock pool.mutex;
      worker_loop pool generation
    | Some job ->
      job.active <- job.active + 1;
      Mutex.unlock pool.mutex;
      run_slice pool job;
      Mutex.lock pool.mutex;
      job.active <- job.active - 1;
      if job.active = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.mutex;
      worker_loop pool generation
  end

let create ~jobs:requested =
  let width = max 1 requested in
  let pool =
    {
      width;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      stopped = false;
      workers = [];
    }
  in
  if width > 1 then
    pool.workers <- List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let parallel_for pool ~n fn =
  if n <= 0 then ()
  else if pool.width = 1 || n = 1 || Domain.DLS.get in_task then sequential_for n fn
  else begin
    Mutex.lock pool.mutex;
    if pool.stopped || Option.is_some pool.current then begin
      (* Pool busy (submission from another domain mid-job) or already
         torn down: run on the caller.  Same results, just sequential. *)
      Mutex.unlock pool.mutex;
      sequential_for n fn
    end
    else begin
      (* Over-decompose ~8 chunks per worker so a slow chunk cannot
         serialize the tail of the range. *)
      let chunk = max 1 (n / (pool.width * 8)) in
      let job =
        {
          fn;
          n;
          chunk;
          next = Atomic.make 0;
          cancelled = Atomic.make false;
          active = 0;
          failure = None;
        }
      in
      if Telemetry.enabled () then Telemetry.incr "pool.jobs";
      pool.current <- Some job;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work;
      Mutex.unlock pool.mutex;
      run_slice pool job;
      Mutex.lock pool.mutex;
      while job.active > 0 do
        Condition.wait pool.finished pool.mutex
      done;
      pool.current <- None;
      Mutex.unlock pool.mutex;
      match job.failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let parallel_map_array pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for pool ~n:(n - 1) (fun i -> out.(i + 1) <- f arr.(i + 1));
    out
  end

let reduce pool ~map ~merge ~init arr =
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let mapped = parallel_map_array pool map arr in
    (* Pairwise collapse, ping-ponging between two buffers so no task
       reads a slot another task writes.  The pairing depends only on
       the live length, so the merge tree is a pure function of [n]. *)
    let src = ref mapped in
    let dst = ref (Array.make ((n + 1) / 2) mapped.(0)) in
    let len = ref n in
    while !len > 1 do
      let s = !src and d = !dst in
      let half = !len / 2 in
      let odd = !len land 1 in
      parallel_for pool ~n:half (fun i -> d.(i) <- merge s.(2 * i) s.((2 * i) + 1));
      if odd = 1 then d.(half) <- s.(!len - 1);
      src := d;
      dst := s;
      len := half + odd
    done;
    merge init !src.(0)
  end

(* ---------- per-domain scratch ---------- *)

module Scratch = struct
  type 'a t = 'a Domain.DLS.key

  let create init = Domain.DLS.new_key init
  let get t = Domain.DLS.get t
end

(* ---------- default pool ---------- *)

let env_jobs () =
  match Sys.getenv_opt "CISP_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some k when k >= 1 -> Some k
    | Some _ | None -> None)

(* The default pool is process-global state, and [get] is reachable
   from inside worker closures (nested parallelism, e.g.
   [Topology.distances_incremental]), so creation/resize must not race
   a concurrent [get] in another domain. *)
let default_lock = Mutex.create ()
let override = ref None
let instance = ref None

let default_jobs () =
  match !override with
  | Some k -> k
  | None -> (
    match env_jobs () with
    | Some k -> k
    | None -> max 1 (Domain.recommended_domain_count ()))

let set_default_jobs k =
  Mutex.protect default_lock (fun () -> override := Some (max 1 k))

let get () =
  Mutex.protect default_lock (fun () ->
      let want = default_jobs () in
      match !instance with
      | Some pool when pool.width = want && not pool.stopped -> pool
      | Some pool ->
        shutdown pool;
        let fresh = create ~jobs:want in
        instance := Some fresh;
        fresh
      | None ->
        let fresh = create ~jobs:want in
        instance := Some fresh;
        fresh)

let with_default_jobs k f =
  let saved = Mutex.protect default_lock (fun () -> !override) in
  set_default_jobs k;
  Fun.protect ~finally:(fun () ->
      Mutex.protect default_lock (fun () -> override := saved)) f

(* Worker domains block on [work] between jobs; join them at exit so
   the runtime shuts down cleanly. *)
let () =
  at_exit (fun () ->
      match !instance with
      | Some pool -> shutdown pool
      | None -> ())
