(* A job is one parallel_for: workers (and the submitter) pull
   fixed-size chunks of the index range from a shared atomic counter.
   Chunk boundaries affect only scheduling, never results, because
   each index owns its output slot. *)

type job = {
  fn : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;
  cancelled : bool Atomic.t;
  (* Scheduling telemetry, accumulated lock-free by each domain at
     slice end and flushed to [Telemetry] once per job by the
     submitter: workers never touch the telemetry tables (whose name
     lookup serializes on a shared structure) from inside a job. *)
  tel_chunks : int Atomic.t;
  tel_busy_us : int Atomic.t;
  mutable active : int; (* workers currently inside the job; pool mutex *)
  mutable failure : (exn * Printexc.raw_backtrace) option; (* pool mutex *)
}

type t = {
  width : int;
  mutex : Mutex.t;
  work : Condition.t; (* new job published, or shutdown *)
  finished : Condition.t; (* a worker left the job *)
  mutable current : job option;
  mutable generation : int;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.width

(* True while the current domain is executing a job body: nested
   submissions from inside a task run sequentially instead of
   deadlocking on the (busy) pool. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential_for n fn =
  for i = 0 to n - 1 do
    fn i
  done

(* Sequential execution of a whole range (width-1 pools, nested
   submissions, and the small-[n] short-circuit) records the same
   counter family as a parallel job — one job, one chunk spanning the
   range — so the scheduling telemetry stays coherent whichever path a
   loop takes. *)
let sequential_job n fn =
  if Telemetry.enabled () then begin
    Telemetry.incr "pool.jobs.seq";
    Telemetry.add "pool.chunks" 1
  end;
  sequential_for n fn

let run_slice pool job =
  let saved = Domain.DLS.get in_task in
  Domain.DLS.set in_task true;
  (* Telemetry observes scheduling only (chunks claimed, time this
     domain spent inside the job); it never affects which indices run
     where, so results stay bit-identical with it on or off. *)
  let tel = Telemetry.enabled () in
  let t0 = if tel then Unix.gettimeofday () else 0.0 in
  let chunks = ref 0 in
  let rec loop () =
    if not (Atomic.get job.cancelled) then begin
      let start = Atomic.fetch_and_add job.next job.chunk in
      if start < job.n then begin
        incr chunks;
        let stop = min job.n (start + job.chunk) in
        (try
           for i = start to stop - 1 do
             job.fn i
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Atomic.set job.cancelled true;
           Mutex.lock pool.mutex;
           (match job.failure with
           | None -> job.failure <- Some (e, bt)
           | Some _ -> ());
           Mutex.unlock pool.mutex);
        loop ()
      end
    end
  in
  loop ();
  if tel then begin
    let busy = Unix.gettimeofday () -. t0 in
    ignore (Atomic.fetch_and_add job.tel_chunks !chunks);
    ignore (Atomic.fetch_and_add job.tel_busy_us (int_of_float (busy *. 1e6)))
  end;
  Domain.DLS.set in_task saved

let rec worker_loop pool seen_generation =
  Mutex.lock pool.mutex;
  while (not pool.stopped) && pool.generation = seen_generation do
    Condition.wait pool.work pool.mutex
  done;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    let generation = pool.generation in
    match pool.current with
    | None ->
      Mutex.unlock pool.mutex;
      worker_loop pool generation
    | Some job ->
      job.active <- job.active + 1;
      Mutex.unlock pool.mutex;
      run_slice pool job;
      Mutex.lock pool.mutex;
      job.active <- job.active - 1;
      if job.active = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.mutex;
      worker_loop pool generation
  end

let create ~jobs:requested =
  let width = max 1 requested in
  let pool =
    {
      width;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      stopped = false;
      workers = [];
    }
  in
  if width > 1 then
    pool.workers <- List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool 0));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let parallel_for ?(min_chunk = 1) pool ~n fn =
  let min_chunk = max 1 min_chunk in
  if n <= 0 then ()
  else begin
    (* Over-decompose ~8 chunks per worker so a slow chunk cannot
       serialize the tail of the range, but never below [min_chunk]:
       the caller's cost hint for how many indices it takes before one
       claim of the shared counter is worth its cache-line bounce.
       With [n <= chunk] only one chunk exists, so waking workers buys
       zero parallelism — the submitter would claim the whole range
       before they stir — and the loop short-circuits to the caller's
       domain without touching the pool mutex. *)
    let chunk = max min_chunk (n / (pool.width * 8)) in
    if pool.width = 1 || n <= chunk || Domain.DLS.get in_task then sequential_job n fn
    else begin
      Mutex.lock pool.mutex;
      if pool.stopped || Option.is_some pool.current then begin
        (* Pool busy (submission from another domain mid-job) or already
           torn down: run on the caller.  Same results, just sequential. *)
        Mutex.unlock pool.mutex;
        sequential_job n fn
      end
      else begin
        let job =
          {
            fn;
            n;
            chunk;
            next = Atomic.make 0;
            cancelled = Atomic.make false;
            tel_chunks = Atomic.make 0;
            tel_busy_us = Atomic.make 0;
            active = 0;
            failure = None;
          }
        in
        let tel = Telemetry.enabled () in
        if tel then Telemetry.incr "pool.jobs";
        pool.current <- Some job;
        pool.generation <- pool.generation + 1;
        Condition.broadcast pool.work;
        Mutex.unlock pool.mutex;
        run_slice pool job;
        Mutex.lock pool.mutex;
        while job.active > 0 do
          Condition.wait pool.finished pool.mutex
        done;
        pool.current <- None;
        Mutex.unlock pool.mutex;
        (* One flush per job (not per domain per job): the workers only
           touched the job-local atomics above. *)
        if tel then begin
          Telemetry.add "pool.chunks" (Atomic.get job.tel_chunks);
          Telemetry.observe "pool.job_busy_s"
            (float_of_int (Atomic.get job.tel_busy_us) /. 1e6)
        end;
        match job.failure with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end
  end

let parallel_map_array ?min_chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    parallel_for ?min_chunk pool ~n:(n - 1) (fun i -> out.(i + 1) <- f arr.(i + 1));
    out
  end

(* Pairwise collapse, ping-ponging between two buffers so no task
   reads a slot another task writes.  The pairing depends only on the
   live length, so the merge tree is a pure function of
   [Array.length arr].  Owns (and scribbles over) [arr]. *)
let collapse pool ~merge ~init arr =
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let src = ref arr in
    let dst = ref (Array.make ((n + 1) / 2) arr.(0)) in
    let len = ref n in
    while !len > 1 do
      let s = !src and d = !dst in
      let half = !len / 2 in
      let odd = !len land 1 in
      parallel_for pool ~n:half (fun i -> d.(i) <- merge s.(2 * i) s.((2 * i) + 1));
      if odd = 1 then d.(half) <- s.(!len - 1);
      src := d;
      dst := s;
      len := half + odd
    done;
    merge init !src.(0)
  end

let reduce pool ~map ~merge ~init arr =
  if Array.length arr = 0 then init
  else collapse pool ~merge ~init (parallel_map_array pool map arr)

let fold_range ?(min_chunk = 1) pool ~n ~map ~merge ~init =
  let grain = max 1 min_chunk in
  if n <= 0 then init
  else begin
    (* The accumulator grain is a pure function of (n, min_chunk) —
       never of the pool width — so the partial results, and the fixed
       collapse tree over them, are bit-identical at any width even
       for non-associative merges (float sums).  Parallelism only
       decides which domain fills which slot. *)
    let chunks = ((n - 1) / grain) + 1 in
    if chunks = 1 then merge init (map ~lo:0 ~hi:n)
    else begin
      let parts = Array.make chunks (map ~lo:0 ~hi:grain) in
      parallel_for pool ~n:(chunks - 1) (fun c ->
          let lo = (c + 1) * grain in
          parts.(c + 1) <- map ~lo ~hi:(min n (lo + grain)));
      collapse pool ~merge ~init parts
    end
  end

(* ---------- per-domain scratch ---------- *)

module Scratch = Scratch

(* ---------- default pool ---------- *)

let env_jobs () =
  match Sys.getenv_opt "CISP_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some k when k >= 1 -> Some k
    | Some _ | None -> None)

(* The default pool is process-global state, and [get] is reachable
   from inside worker closures (nested parallelism, e.g.
   [Topology.distances_incremental]), so creation/resize must not race
   a concurrent [get] in another domain. *)
let default_lock = Mutex.create ()
let override = ref None
let instance = ref None

let default_jobs () =
  match !override with
  | Some k -> k
  | None -> (
    match env_jobs () with
    | Some k -> k
    | None -> max 1 (Domain.recommended_domain_count ()))

let set_default_jobs k =
  Mutex.protect default_lock (fun () -> override := Some (max 1 k))

let get () =
  Mutex.protect default_lock (fun () ->
      let want = default_jobs () in
      match !instance with
      | Some pool when pool.width = want && not pool.stopped -> pool
      | Some pool ->
        shutdown pool;
        let fresh = create ~jobs:want in
        instance := Some fresh;
        fresh
      | None ->
        let fresh = create ~jobs:want in
        instance := Some fresh;
        fresh)

(* Default-pool submission that never consults the registry from a
   worker: a nested call would run sequentially anyway (the [in_task]
   guard in [parallel_for]), so short-circuiting before [get ()] is
   behaviour-preserving and keeps pool bodies free of [default_lock]. *)
let parallel_for_default ?min_chunk ~n fn =
  if Domain.DLS.get in_task then sequential_job n fn
  else parallel_for ?min_chunk (get ()) ~n fn

let with_default_jobs k f =
  let saved = Mutex.protect default_lock (fun () -> !override) in
  set_default_jobs k;
  Fun.protect ~finally:(fun () ->
      Mutex.protect default_lock (fun () -> override := saved)) f

(* Worker domains block on [work] between jobs; join them at exit so
   the runtime shuts down cleanly. *)
let () =
  at_exit (fun () ->
      match !instance with
      | Some pool -> shutdown pool
      | None -> ())
