(** Small statistics toolkit used by the evaluation harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val weighted_mean : (float * float) array -> float
(** [weighted_mean [| (w, x); ... |]] = sum w*x / sum w; 0 if all
    weights are 0. *)

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for p in \[0,100\], linear interpolation between
    order statistics.  Does not mutate [xs].  Raises
    [Invalid_argument] on the empty array. *)

val median : float array -> float

val cdf : float array -> (float * float) array
(** Empirical CDF as (value, cumulative fraction) sorted points. *)

val histogram : float array -> bins:int -> (float * int) array
(** [histogram xs ~bins] returns (bin lower edge, count).  Raises
    [Invalid_argument] if [bins <= 0]. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summarize : float array -> summary
(** One-shot descriptive summary (returns all-zero summary on empty). *)

val pp_summary : Format.formatter -> summary -> unit
