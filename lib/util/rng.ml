type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix (next_seed t)

let split t =
  let s = bits64 t in
  { state = s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep 62 bits so the value fits OCaml's 63-bit nonnegative range. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits -> [0,1) *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec u () =
    let x = float t 1.0 in
    if x <= 0.0 then u () else x
  in
  let u1 = u () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let exponential t rate =
  let rec u () =
    let x = float t 1.0 in
    if x <= 0.0 then u () else x
  in
  -.log (u ()) /. rate

let poisson t mean =
  if mean < 0.0 then invalid_arg "Rng.poisson: mean < 0";
  if Float.equal mean 0.0 then 0
  else if mean > 50.0 then
    (* Normal approximation, adequate for synthetic workload generation. *)
    let x = mean +. (sqrt mean *. gaussian t) in
    max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. float t 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0

let lognormal t mu sigma = exp (mu +. (sigma *. gaussian t))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t arr k =
  if k > Array.length arr then invalid_arg "Rng.sample: k exceeds array length";
  let idx = Array.init (Array.length arr) (fun i -> i) in
  shuffle t idx;
  Array.init k (fun i -> arr.(idx.(i)))
