(* Deterministic views of hash tables.

   [Hashtbl] iteration order is a function of hashing and insertion
   history, not of the data — it shifts whenever a table resizes or an
   insertion is reordered, and the lint's L9 rule forbids it from
   reaching pipeline results.  This module is the one sanctioned
   traversal: the raw fold below is order-erased by the sort before
   anything escapes (see lint.allowlist). *)

let sorted_bindings ?(compare = Stdlib.compare) tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.stable_sort (fun (a, _) (b, _) -> compare a b)

let sorted_keys ?compare tbl = List.map fst (sorted_bindings ?compare tbl)

let iter_sorted ?compare f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare tbl)

let fold_sorted ?compare f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ?compare tbl)
