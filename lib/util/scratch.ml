(* Per-domain lazily-created slots, a thin veneer over [Domain.DLS].

   Lives outside [Pool] so that modules underneath the pool in the
   dependency order (notably [Telemetry], which the pool itself calls)
   can keep per-domain state without creating a cycle; [Pool.Scratch]
   re-exports this module for the existing call sites. *)

type 'a t = 'a Domain.DLS.key

let create init = Domain.DLS.new_key init
let get t = Domain.DLS.get t
