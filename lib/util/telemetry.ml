(* Pipeline-wide structured observability: named counters, float
   series, and nested timed spans, with a human-readable summary sink
   and a Chrome-trace-compatible JSONL sink.

   Contract (see DESIGN.md §7b):
   - observation only: nothing recorded here may feed back into what
     the pipeline computes, so enabling telemetry is bit-identical in
     its effect on every output;
   - domain-safe: counters are atomics, distribution samples buffer in
     domain-private scratch (merged at read-out), spans and trace
     events mutate under one mutex, and all read-out orders are
     canonicalized (names sorted, samples sorted) so merged results do
     not depend on worker scheduling;
   - near-free when disabled: every recording entry point bails on a
     single [!on] branch before touching any shared state. *)

type span_agg = { mutable calls : int; mutable total_s : float }

(* One trace line.  [ph] follows the Chrome trace event format:
   'X' = complete span (ts + dur), 'C' = counter sample. *)
type event = {
  name : string;
  ph : char;
  ts_us : float;
  dur_us : float;
  tid : int;
  value : int;
}

type state = {
  mutex : Mutex.t;
  mutable dbufs : (string * float) list ref list;
      (* every domain's sample buffer, registered (under [mutex]) the
         first time that domain observes; the list itself only grows *)
  spans : (string, span_agg) Hashtbl.t;
  mutable events : event list;
  mutable epoch : float;
  mutable trace_file : string option;
  mutable metrics : bool;
  mutable finished : bool;
}

let state =
  {
    mutex = Mutex.create ();
    dbufs = [];
    spans = Hashtbl.create 64;
    events = [];
    epoch = 0.0;
    trace_file = None;
    metrics = false;
    finished = false;
  }

module SMap = Map.Make (String)

(* Counters live outside the mutex: an immutable name->cell map swapped
   by CAS.  Recording on a hot path (per LOS pair, per pool job — from
   every domain at once) is then one [Atomic.get] of the map, a lock-
   free functional lookup, and one [fetch_and_add]; the mutex-guarded
   table used to serialize all domains on every single increment. *)
let counters : int Atomic.t SMap.t Atomic.t = Atomic.make SMap.empty

(* The single branch guarding every hot-path call site. *)
let on = ref false

let enabled () = !on

let locked f =
  Mutex.lock state.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.mutex) f

let turn_on () =
  if not !on then begin
    state.epoch <- Unix.gettimeofday ();
    state.finished <- false;
    on := true
  end

let enable_trace file =
  locked (fun () ->
      state.trace_file <- Some file;
      turn_on ())

let enable_metrics () =
  locked (fun () ->
      state.metrics <- true;
      turn_on ())

let metrics_enabled () = state.metrics

let init_from_env () =
  match Sys.getenv_opt "CISP_TRACE" with
  | Some file when not (String.equal (String.trim file) "") -> enable_trace file
  | Some _ | None -> ()

let reset () =
  locked (fun () ->
      on := false;
      Atomic.set counters SMap.empty;
      (* buffers stay registered (their domains will reuse them); only
         their contents go.  Emptying a ref the owner may be consing
         onto is a single word store either way. *)
      List.iter (fun buf -> buf := []) state.dbufs;
      Hashtbl.reset state.spans;
      state.events <- [];
      state.epoch <- 0.0;
      state.trace_file <- None;
      state.metrics <- false;
      state.finished <- false)

(* ---------------- counters ---------------- *)

(* Lock-free: readers never block, and a name's first use installs its
   cell with a CAS retry loop.  A raced insert of the same name is
   harmless — the loser re-reads the map and finds the winner's cell,
   so every domain accumulates into one cell per name. *)
let rec counter_cell name =
  let m = Atomic.get counters in
  match SMap.find_opt name m with
  | Some c -> c
  | None ->
    let c = Atomic.make 0 in
    if Atomic.compare_and_set counters m (SMap.add name c m) then c
    else counter_cell name

let add name k = if !on then ignore (Atomic.fetch_and_add (counter_cell name) k)
let incr name = add name 1

let counter name =
  match SMap.find_opt name (Atomic.get counters) with
  | Some c -> Atomic.get c
  | None -> 0

(* ---------------- float series ---------------- *)

(* Distributions buffer per domain (L14: recording must not funnel
   every worker through [state.mutex]).  A domain's buffer is one ref
   holding an immutable (name, value) cons list, so the owner's store
   is a single word write and never structurally races a merging
   reader; [state.mutex] is only taken once per domain, to register
   the buffer.  Read-out merges every buffer and sorts, so summaries
   stay a pure function of the observed multiset — bit-identical
   whatever the pool width.  Read-outs are coherent for samples
   recorded before the recording domains were joined (or otherwise
   synchronized with the reader), the same quiesce-then-read contract
   the span table has. *)
let series_buf : (string * float) list ref Scratch.t =
  Scratch.create (fun () ->
      let buf = ref [] in
      locked (fun () -> state.dbufs <- buf :: state.dbufs);
      buf)

let observe name x =
  if !on then begin
    let buf = Scratch.get series_buf in
    buf := (name, x) :: !buf
  end

(* Sorted, so the distribution read out is a pure function of the
   observed multiset whatever order domains recorded in. *)
let samples name =
  let xs =
    locked (fun () ->
        List.concat_map
          (fun buf ->
            List.filter_map
              (fun (n, x) -> if String.equal n name then Some x else None)
              !buf)
          state.dbufs)
  in
  let xs = Array.of_list xs in
  Array.sort Float.compare xs;
  xs

let series_names () =
  locked (fun () ->
      List.concat_map (fun buf -> List.rev_map fst !buf) state.dbufs)
  |> List.sort_uniq String.compare

let series_summary name = Stats.summarize (samples name)

(* ---------------- spans ---------------- *)

let record_span name ~tid ~t0 ~t1 =
  locked (fun () ->
      (match Hashtbl.find_opt state.spans name with
      | Some agg ->
        agg.calls <- agg.calls + 1;
        agg.total_s <- agg.total_s +. (t1 -. t0)
      | None -> Hashtbl.add state.spans name { calls = 1; total_s = t1 -. t0 });
      if Option.is_some state.trace_file then
        state.events <-
          {
            name;
            ph = 'X';
            ts_us = (t0 -. state.epoch) *. 1e6;
            dur_us = (t1 -. t0) *. 1e6;
            tid;
            value = 0;
          }
          :: state.events)

let with_span name f =
  if not !on then f ()
  else begin
    let tid = (Domain.self () :> int) in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record_span name ~tid ~t0 ~t1:(Unix.gettimeofday ()))
      f
  end

let span_calls name =
  locked (fun () ->
      match Hashtbl.find_opt state.spans name with Some a -> a.calls | None -> 0)

let span_total_s name =
  locked (fun () ->
      match Hashtbl.find_opt state.spans name with Some a -> a.total_s | None -> 0.0)

(* ---------------- summary sink ---------------- *)

let sorted_keys tbl =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
  List.sort String.compare keys

(* SMap folds in key order already. *)
let counter_names () =
  List.rev (SMap.fold (fun k _ acc -> k :: acc) (Atomic.get counters) [])

let pp_summary ppf () =
  let span_names = locked (fun () -> sorted_keys state.spans) in
  let counter_names = counter_names () in
  let series_names = series_names () in
  Format.fprintf ppf "@[<v>-- telemetry --@,";
  if span_names <> [] then begin
    Format.fprintf ppf "spans:@,";
    List.iter
      (fun name ->
        let calls = span_calls name and total = span_total_s name in
        Format.fprintf ppf "  %-32s %6d call(s)  %10.3f ms@," name calls (total *. 1000.0))
      span_names
  end;
  if counter_names <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter
      (fun name -> Format.fprintf ppf "  %-32s %d@," name (counter name))
      counter_names
  end;
  if series_names <> [] then begin
    Format.fprintf ppf "distributions:@,";
    List.iter
      (fun name ->
        let xs = samples name in
        let sum = Array.fold_left ( +. ) 0.0 xs in
        Format.fprintf ppf "  %-32s %a sum=%.4f@," name Stats.pp_summary
          (Stats.summarize xs) sum)
      series_names
  end;
  Format.fprintf ppf "@]"

(* ---------------- JSONL trace sink ---------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_line e =
  match e.ph with
  | 'C' ->
    Printf.sprintf
      {|{"name":"%s","ph":"C","ts":%.1f,"pid":1,"tid":%d,"args":{"value":%d}}|}
      (json_escape e.name) e.ts_us e.tid e.value
  | _ ->
    Printf.sprintf
      {|{"name":"%s","ph":"X","ts":%.1f,"dur":%.1f,"pid":1,"tid":%d}|}
      (json_escape e.name) e.ts_us e.dur_us e.tid

(* Final counter values and distribution summaries become 'C' events
   stamped at write-out time, so the trace alone carries the totals. *)
let closing_events now_us =
  let counter_names = counter_names () in
  let series_names = series_names () in
  List.map
    (fun name -> { name; ph = 'C'; ts_us = now_us; dur_us = 0.0; tid = 0; value = counter name })
    counter_names
  @ List.map
      (fun name ->
        { name = name ^ ".count"; ph = 'C'; ts_us = now_us; dur_us = 0.0; tid = 0;
          value = Array.length (samples name) })
      series_names

let write_trace () =
  match locked (fun () -> state.trace_file) with
  | None -> ()
  | Some file ->
    let events = locked (fun () -> state.events) in
    let events =
      List.sort
        (fun a b ->
          let c = Float.compare a.ts_us b.ts_us in
          if c <> 0 then c
          else
            let c = Int.compare a.tid b.tid in
            if c <> 0 then c else String.compare a.name b.name)
        events
    in
    let now_us = (Unix.gettimeofday () -. state.epoch) *. 1e6 in
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter
          (fun e ->
            output_string oc (event_line e);
            output_char oc '\n')
          (events @ closing_events now_us))

let finish ?(ppf = Format.err_formatter) () =
  let first = locked (fun () ->
      if state.finished then false
      else begin
        state.finished <- true;
        true
      end)
  in
  if first then begin
    write_trace ();
    if state.metrics then Format.fprintf ppf "%a@." pp_summary ()
  end
