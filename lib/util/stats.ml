let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let weighted_mean pairs =
  let wsum = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 pairs in
  if Float.equal wsum 0.0 then 0.0
  else Array.fold_left (fun acc (w, x) -> acc +. (w *. x)) 0.0 pairs /. wsum

let variance xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let percentile_sorted ys p =
  let n = Array.length ys in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p <= 0.0 then ys.(0)
  else if p >= 100.0 then ys.(n - 1)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let percentile xs p = percentile_sorted (sorted_copy xs) p

let median xs = percentile xs 50.0

let cdf xs =
  let ys = sorted_copy xs in
  let n = Array.length ys in
  Array.mapi (fun i y -> (y, float_of_int (i + 1) /. float_of_int n)) ys

let histogram xs ~bins =
  (* invalid_arg, not assert: asserts vanish under -noassert and this
     guards caller data, not an internal invariant (lint rule L6). *)
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  let place x =
    let b = int_of_float ((x -. lo) /. width) in
    let b = if b >= bins then bins - 1 else b in
    counts.(b) <- counts.(b) + 1
  in
  Array.iter place xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then
    { n = 0; mean = 0.; stddev = 0.; min = 0.; p50 = 0.; p95 = 0.; p99 = 0.; max = 0. }
  else begin
    let ys = sorted_copy xs in
    {
      n;
      mean = mean xs;
      stddev = stddev xs;
      min = ys.(0);
      p50 = percentile_sorted ys 50.0;
      p95 = percentile_sorted ys 95.0;
      p99 = percentile_sorted ys 99.0;
      max = ys.(n - 1);
    }
  end

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p95=%.4f p99=%.4f max=%.4f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
