(** Pipeline-wide structured observability: named counters, float
    distributions (via {!Stats}), and nested timed spans, with two
    sinks — a human-readable end-of-run summary and a JSONL trace file
    whose lines are Chrome-trace-compatible events ([ph]/[ts]/[dur]).

    The layer {e only observes}: nothing it records feeds back into
    pipeline results, so outputs are bit-identical with telemetry on
    or off, at any pool width.  It is domain-safe (atomic counters;
    other state under one mutex; read-outs canonicalized by sorting)
    and near-free when disabled — every recording call bails on a
    single branch.

    Globally scoped, like {!Pool}: binaries enable it from [--trace] /
    [--metrics] flags or the [CISP_TRACE] environment variable, and
    library code records unconditionally (the disabled path is a
    no-op). *)

(** {2 Enablement} *)

val enabled : unit -> bool
(** True once a sink is configured; instrumentation guards on this. *)

val enable_trace : string -> unit
(** Send a JSONL trace to the given file when {!finish} runs. *)

val enable_metrics : unit -> unit
(** Print a summary (to {!finish}'s formatter) at the end of the run. *)

val metrics_enabled : unit -> bool

val init_from_env : unit -> unit
(** [CISP_TRACE=FILE] fallback for binaries without a [--trace] flag. *)

val reset : unit -> unit
(** Drop every recording and disable all sinks (tests). *)

(** {2 Recording} *)

val incr : string -> unit
(** Add 1 to a named counter (atomic; safe from any domain). *)

val add : string -> int -> unit

val observe : string -> float -> unit
(** Record one sample of a named distribution.  Lock-free: samples
    buffer in the recording domain's private scratch (one cons), so
    workers never serialize on the telemetry mutex; read-outs merge
    the buffers and sort, giving the same summary at any pool
    width. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named timed span.  Spans nest; each
    completion is aggregated per name and, when tracing, emitted as a
    Chrome-trace ['X'] event with the recording domain's id as [tid].
    The span is recorded even if the thunk raises. *)

(** {2 Read-out (summary sink and tests)} *)

val counter : string -> int
(** Current value; 0 for a name never incremented. *)

val samples : string -> float array
(** All recorded samples of a distribution, sorted ascending (so the
    result is independent of domain scheduling); [[||]] if none.
    Coherent for samples recorded by domains that have since been
    joined (or otherwise synchronized with the caller) — quiesce, then
    read. *)

val series_names : unit -> string list
(** Every distribution with at least one recorded sample, sorted. *)

val series_summary : string -> Stats.summary

val span_calls : string -> int
val span_total_s : string -> float

val pp_summary : Format.formatter -> unit -> unit
(** The human-readable sink: spans, counters and distributions, each
    sorted by name. *)

(** {2 Sinks} *)

val write_trace : unit -> unit
(** Write the JSONL trace now (no-op unless {!enable_trace} was
    called).  One event per line; span events carry
    [ph:"X"]/[ts]/[dur] in microseconds since enablement, counters are
    appended as [ph:"C"] samples holding their final values. *)

val finish : ?ppf:Format.formatter -> unit -> unit
(** End-of-run hook for binaries: writes the trace and, if metrics are
    enabled, prints the summary to [ppf] (default
    [Format.err_formatter]).  Idempotent until the next {!reset}. *)
