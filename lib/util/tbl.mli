(** Deterministic views of hash tables.

    [Hashtbl]'s own iteration order depends on hashing and insertion
    history, so it may not feed pipeline results (lint rule L9).
    These traversals visit bindings in ascending key order instead;
    they are the sanctioned way to walk a table whose contents
    escape.

    [compare] defaults to the polymorphic {!Stdlib.compare} — pass an
    explicit comparison for keys where that is wrong (floats, cyclic
    or functional keys).

    With duplicate keys (tables built with [Hashtbl.add] rather than
    [replace]) all bindings are visited; duplicates of a key keep
    their most-recent-first [Hashtbl] order. *)

val sorted_bindings :
  ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list

val sorted_keys : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list

val iter_sorted :
  ?compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit

val fold_sorted :
  ?compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
