(** Physical constants and unit conversions shared across the system. *)

val c_vacuum_km_s : float
(** Speed of light in vacuum, km/s (299,792.458). *)

val c_fiber_km_s : float
(** Effective speed of light in optical fiber, ~2/3 c. *)

val fiber_latency_factor : float
(** Paper §3.2: fiber distances are multiplied by 1.5 so that distance
    at [c_vacuum] models latency over fiber at 2/3 c. *)

val earth_radius_km : float
(** Mean Earth radius, km. *)

val km_per_deg_lat : float
(** Kilometres per degree of latitude (and per degree of longitude at
    the equator): the great-circle span of one degree, ~111.19 km.
    Slightly below the exact [pi *. earth_radius_km /. 180.] so that
    spans derived from it over-estimate degree windows (safe for
    bounding-box style searches). *)

val towers_per_100k : float
(** Paper §4 tower-density prior: synthesized city clusters hold 1.5
    towers per 100,000 inhabitants.  Lives here (not in the tower
    synthesizer) so the 1.5 literal has exactly one home and the L3
    lint rule can police every other occurrence. *)

val ms_of_km_at_c : float -> float
(** One-way propagation delay in milliseconds over [d] km at c. *)

val km_of_ms_at_c : float -> float

val gb_of_gbps_over : float -> seconds:float -> float
(** [gb_of_gbps_over rate ~seconds] is the gigabytes transferred at
    [rate] Gbps for [seconds] seconds. *)

val seconds_per_year : float

val deg_to_rad : float -> float
val rad_to_deg : float -> float
