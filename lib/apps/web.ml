module Rng = Cisp_util.Rng

type obj = { size_bytes : int; level : int; origin : int }

type page = {
  objects : obj list;
  base_rtt_ms : float;
  server_ms : float;
  render_ms : float;
}

type scaling = { c2s : float; s2c : float }

let baseline = { c2s = 1.0; s2c = 1.0 }
let cisp = { c2s = 0.33; s2c = 0.33 }
let cisp_selective = { c2s = 0.33; s2c = 1.0 }

let small_object_threshold_bytes = 1460

let level_weights = [| 0.10; 0.40; 0.28; 0.15; 0.07 |]

let sample_level rng =
  let r = Rng.float rng 1.0 in
  let rec pick i acc =
    if i >= Array.length level_weights - 1 then i
    else begin
      let acc = acc +. level_weights.(i) in
      if r < acc then i else pick (i + 1) acc
    end
  in
  pick 0 0.0

let generate ?(seed = 2024) ~count () =
  let rng = Rng.create seed in
  List.init count (fun _ ->
      let n_objects = max 5 (int_of_float (Rng.lognormal rng (log 55.0) 0.7)) in
      let n_objects = min n_objects 400 in
      let origins = max 1 (min 30 (n_objects / 6)) in
      let objects =
        List.init n_objects (fun idx ->
            let level = if idx = 0 then 0 else max 1 (sample_level rng) in
            {
              size_bytes = max 200 (int_of_float (Rng.lognormal rng (log 7_000.0) 1.0));
              level;
              origin = (if idx = 0 then 0 else Rng.int rng origins);
            })
      in
      {
        objects;
        base_rtt_ms = Float.max 15.0 (Float.min 300.0 (Rng.lognormal rng (log 55.0) 0.5));
        server_ms = Rng.uniform rng 15.0 35.0;
        render_ms = Rng.uniform rng 70.0 140.0;
      })

let rtt page scaling = page.base_rtt_ms *. ((0.5 *. scaling.c2s) +. (0.5 *. scaling.s2c))

(* Extra round trips a response needs under slow-start windowing
   (initial window ~ 10 * 1460 B, doubling per RTT). *)
let window_rtts size_bytes =
  let iw = 14_600.0 in
  if float_of_int size_bytes <= iw then 0
  else int_of_float (Float.ceil (log (float_of_int size_bytes /. iw) /. log 2.0))

let parallel_conns = 8

let plt_ms page scaling =
  let r = rtt page scaling in
  let max_level =
    List.fold_left (fun acc o -> max acc o.level) 0 page.objects
  in
  let seen_origin = Hashtbl.create 8 in
  let total = ref 0.0 in
  for level = 0 to max_level do
    let at_level = List.filter (fun o -> o.level = level) page.objects in
    if at_level <> [] then begin
      (* Group by origin; each origin serves its objects over
         [parallel_conns] connections, one request-response per round. *)
      let by_origin = Hashtbl.create 8 in
      List.iter
        (fun o ->
          Hashtbl.replace by_origin o.origin (o :: Option.value (Hashtbl.find_opt by_origin o.origin) ~default:[]))
        at_level;
      let level_time =
        Hashtbl.fold
          (fun origin objs acc ->
            let setup =
              if Hashtbl.mem seen_origin origin then 0.0
              else begin
                Hashtbl.replace seen_origin origin ();
                (* DNS + TCP + TLS *)
                3.0 *. r
              end
            in
            let rounds = (List.length objs + parallel_conns - 1) / parallel_conns in
            let biggest = List.fold_left (fun m o -> max m o.size_bytes) 0 objs in
            let t =
              setup
              +. (float_of_int rounds *. (r +. page.server_ms))
              +. (float_of_int (window_rtts biggest) *. r)
              +. (float_of_int biggest /. 1.0e5 *. 40.0)
            in
            Float.max acc t)
          by_origin 0.0
      in
      total := !total +. level_time +. page.render_ms
    end
  done;
  !total

let object_load_times_ms page scaling =
  let r = rtt page scaling in
  let per_origin_count = Hashtbl.create 8 in
  List.map
    (fun o ->
      let k = Option.value (Hashtbl.find_opt per_origin_count o.origin) ~default:0 in
      Hashtbl.replace per_origin_count o.origin (k + 1);
      (* The first objects on an origin pay connection setup. *)
      let setup = if k < parallel_conns then 3.0 *. r else 0.0 in
      setup +. r
      +. (float_of_int (window_rtts o.size_bytes) *. r)
      +. page.server_ms
      +. (float_of_int o.size_bytes /. 1.0e5 *. 40.0))
    page.objects

let c2s_byte_fraction pages =
  let req = ref 0.0 and total = ref 0.0 in
  List.iter
    (fun page ->
      List.iter
        (fun o ->
          (* request headers + cookies *)
          let request = 1000.0 in
          req := !req +. request;
          total := !total +. request +. float_of_int o.size_bytes)
        page.objects)
    pages;
  if Float.equal !total 0.0 then 0.0 else !req /. !total
