type range = { low : float; high : float }

let gb_per_year_of_gbps gbps = gbps /. 8.0 *. Cisp_util.Units.seconds_per_year

(* ---------- Web search ---------- *)

type search_params = {
  us_search_traffic_gbps : float;
  profit_gain_200ms_usd : float;
  profit_gain_400ms_usd : float;
}

let default_search =
  {
    us_search_traffic_gbps = 12.0;
    profit_gain_200ms_usd = 87e6;
    profit_gain_400ms_usd = 177e6;
  }

let search_value_per_gb ?(params = default_search) ~speedup_ms () =
  if speedup_ms < 0.0 then invalid_arg "Econ.search_value_per_gb: negative speedup_ms";
  let gain =
    if speedup_ms <= 200.0 then params.profit_gain_200ms_usd *. speedup_ms /. 200.0
    else begin
      let slope = (params.profit_gain_400ms_usd -. params.profit_gain_200ms_usd) /. 200.0 in
      params.profit_gain_200ms_usd +. (slope *. (speedup_ms -. 200.0))
    end
  in
  gain /. gb_per_year_of_gbps params.us_search_traffic_gbps

(* ---------- E-commerce ---------- *)

type ecommerce_params = {
  yearly_traffic_pb : float;
  yearly_profit_usd : float;
  conversion_per_100ms : range;
  cisp_byte_fraction : float;
}

let default_ecommerce =
  {
    yearly_traffic_pb = 483.0;
    yearly_profit_usd = 7.9e9;
    conversion_per_100ms = { low = 0.01; high = 0.07 };
    cisp_byte_fraction = 0.10;
  }

let ecommerce_value_per_gb ?(params = default_ecommerce) ~speedup_ms () =
  let cisp_gb = params.yearly_traffic_pb *. 1e6 *. params.cisp_byte_fraction in
  let value sens = params.yearly_profit_usd *. sens *. (speedup_ms /. 100.0) /. cisp_gb in
  { low = value params.conversion_per_100ms.low; high = value params.conversion_per_100ms.high }

(* ---------- Gaming ---------- *)

type gaming_params = {
  vpn_usd_per_month : float;
  hours_per_day : float;
  kbps_per_player : float;
}

let default_gaming = { vpn_usd_per_month = 4.0; hours_per_day = 8.0; kbps_per_player = 10.0 }

let gaming_value_per_gb ?(params = default_gaming) () =
  (* GB consumed per month at the given duty cycle. *)
  let seconds = params.hours_per_day *. 3600.0 *. 30.0 in
  let gb = params.kbps_per_player *. 1e3 /. 8.0 *. seconds /. 1e9 in
  params.vpn_usd_per_month /. gb

let steam_us_aggregate_gbps ~players ~us_share ~kbps_per_player =
  float_of_int players *. us_share *. kbps_per_player *. 1e3 /. 1e9

(* ---------- Summary ---------- *)

type verdict = { application : string; value_per_gb : range; exceeds_cost : bool }

let summary ~cost_per_gb =
  let search200 = search_value_per_gb ~speedup_ms:200.0 () in
  let search400 = search_value_per_gb ~speedup_ms:400.0 () in
  let ecommerce = ecommerce_value_per_gb ~speedup_ms:200.0 () in
  let gaming = gaming_value_per_gb () in
  let v application value_per_gb =
    { application; value_per_gb; exceeds_cost = value_per_gb.low > cost_per_gb }
  in
  [
    v "web search" { low = search200; high = search400 };
    v "e-commerce" ecommerce;
    v "gaming" { low = gaming; high = gaming };
  ]
