module Hops = Cisp_towers.Hops
module Inputs = Cisp_design.Inputs
module Topology = Cisp_design.Topology

type pair_summary = { best : float; median : float; p99 : float; worst : float; fiber : float }

type result = {
  intervals : int;
  mean_failed_links : float;
  per_pair : pair_summary array;
}

let node_position (hops : Hops.t) node =
  if node < hops.Hops.n_sites then hops.Hops.sites.(node).Cisp_data.City.coord
  else hops.Hops.towers.(node - hops.Hops.n_sites).Cisp_towers.Tower.position

let run ?(seed = 99) ?(intervals = 365) ~climate ~hops (inputs : Inputs.t) (topo : Topology.t) =
  Cisp_util.Telemetry.with_span "weather.year" (fun () ->
  let n = Inputs.n_sites inputs in
  let base = Topology.fiber_baseline inputs in
  let built = Array.of_list topo.Topology.built in
  let links =
    Array.map
      (fun (i, j) ->
        match inputs.Inputs.mw_links.(i).(j) with
        | Some l -> ((i, j), Some l)
        | None -> ((i, j), None))
      built
  in
  let pairs = ref [] in
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      if inputs.traffic.(s).(t) +. inputs.traffic.(t).(s) > 0.0 && inputs.geodesic_km.(s).(t) > 0.0
      then pairs := (s, t) :: !pairs
    done
  done;
  let pairs = Array.of_list (List.rev !pairs) in
  let np = Array.length pairs in
  (* Interval-major storage: each trial allocates and owns a whole
     row.  The old pair-major matrix had parallel trials writing
     adjacent floats of every row (column [interval] of each pair),
     false-sharing each row's cache lines across all domains for the
     length of the run. *)
  let samples = Array.make intervals [||] in
  let failed_per_interval = Array.make intervals 0 in
  let pos = node_position hops in
  (* A single trial costs roughly a rain-field sample plus one O(n^2)
     metric relaxation per surviving link — batch a few per claim of
     the pool's chunk counter. *)
  let trial_chunk = 4 in
  (* Each interval is an independent trial: its rain field is a pure
     function of (seed, day) — its own RNG stream — and it writes only
     its own row of [samples], so the trials run in parallel with
     bit-identical results at any pool width.  The failed-link counts
     accumulate per chunk and reduce over fixed chunk boundaries
     (width-independent), keeping the total exact and deterministic. *)
  let failed_total =
    Cisp_util.Pool.fold_range (Cisp_util.Pool.get ()) ~n:intervals ~min_chunk:trial_chunk
      ~init:0 ~merge:( + )
      ~map:(fun ~lo ~hi ->
        let failed_in_chunk = ref 0 in
        for interval = lo to hi - 1 do
          let day = interval * 365 / intervals in
          let field = Rainfield.sample ~seed climate ~day in
          (* Distances over surviving links. *)
          let d = ref base in
          let failed_here = ref 0 in
          Array.iter
            (fun ((i, j), link) ->
              let failed =
                match link with
                | Some l -> Failure.link_failed ~node_position:pos field l
                | None ->
                  (* Synthetic instance: approximate with a single hop at the
                     link midpoint. *)
                  let rain =
                    Rainfield.rain_at field
                      (Cisp_geo.Geodesy.midpoint inputs.sites.(i).Cisp_data.City.coord
                         inputs.sites.(j).Cisp_data.City.coord)
                  in
                  Failure.hop_failed ~rain_mm_h:rain ~d_km:60.0 ()
              in
              if failed then incr failed_here
              else d := Topology.distances_incremental inputs !d (i, j))
            links;
          failed_per_interval.(interval) <- !failed_here;
          failed_in_chunk := !failed_in_chunk + !failed_here;
          let dm = !d in
          let row = Array.make np 0.0 in
          Array.iteri
            (fun k (s, t) -> row.(k) <- dm.(s).(t) /. inputs.geodesic_km.(s).(t))
            pairs;
          samples.(interval) <- row
        done;
        !failed_in_chunk)
  in
  if Cisp_util.Telemetry.enabled () then begin
    Cisp_util.Telemetry.add "weather.intervals" intervals;
    Array.iter
      (fun c -> Cisp_util.Telemetry.observe "weather.failed_links" (float_of_int c))
      failed_per_interval
  end;
  let per_pair =
    Array.mapi
      (fun k (s, t) ->
        (* Gather pair [k]'s samples in interval order — the same
           multiset, in the same order, the pair-major layout held. *)
        let xs = Array.init intervals (fun interval -> samples.(interval).(k)) in
        let sorted = Array.copy xs in
        Array.sort Float.compare sorted;
        {
          best = sorted.(0);
          median = Cisp_util.Stats.percentile xs 50.0;
          p99 = Cisp_util.Stats.percentile xs 99.0;
          worst = sorted.(intervals - 1);
          fiber = base.(s).(t) /. inputs.geodesic_km.(s).(t);
        })
      pairs
  in
  {
    intervals;
    mean_failed_links = float_of_int failed_total /. float_of_int intervals;
    per_pair;
  })

let stretch_cdfs r =
  let cdf f = Cisp_util.Stats.cdf (Array.map f r.per_pair) in
  [
    ("best", cdf (fun p -> p.best));
    ("median", cdf (fun p -> p.median));
    ("p99", cdf (fun p -> p.p99));
    ("worst", cdf (fun p -> p.worst));
    ("fiber", cdf (fun p -> p.fiber));
  ]
