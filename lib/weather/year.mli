(** Year-long weather sweep (paper §6.1, Fig 7).

    "For each day over a period of a year, we select a 30-minute
    interval uniformly at random, and identify the links that would
    fail during it.  We then evaluate the latency for each pair of
    cities end-to-end for each interval."  Failed links are removed
    and traffic reroutes over surviving MW links and fiber. *)

val node_position : Cisp_towers.Hops.t -> int -> Cisp_geo.Coord.t
(** Position of a hop-graph node: site coordinate for [node < n_sites],
    tower position otherwise.  Shared with {!Scenarios}. *)

type pair_summary = {
  best : float;      (** fair-weather stretch *)
  median : float;
  p99 : float;
  worst : float;
  fiber : float;     (** fiber-only stretch for the pair *)
}

type result = {
  intervals : int;
  mean_failed_links : float;
  per_pair : pair_summary array;   (** over all site pairs s < t with traffic *)
}

val run :
  ?seed:int ->
  ?intervals:int ->
  climate:Rainfield.climate ->
  hops:Cisp_towers.Hops.t ->
  Cisp_design.Inputs.t ->
  Cisp_design.Topology.t ->
  result
(** [intervals] defaults to 365 (one per day). *)

val stretch_cdfs : result -> (string * (float * float) array) list
(** Fig 7's curves: CDFs across city pairs of best / median / 99th /
    worst stretch, plus the fiber-only curve. *)
