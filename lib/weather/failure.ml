module Attenuation = Cisp_rf.Attenuation
module Link_budget = Cisp_rf.Link_budget
module Hops = Cisp_towers.Hops

type params = {
  f_ghz : float;
  polarization : Attenuation.polarization;
  margin_floor_db : float;
  margin_cap_db : float;
}

let default_params =
  { f_ghz = 11.0; polarization = Attenuation.Horizontal; margin_floor_db = 10.0; margin_cap_db = 38.0 }

let hop_margin_db ?(params = default_params) ~d_km () =
  let m = Link_budget.fade_margin_db ~f_ghz:params.f_ghz ~d_km:(Float.max 1.0 d_km) () in
  Float.min params.margin_cap_db (Float.max params.margin_floor_db m)

let attenuation ?(params = default_params) ~rain_mm_h ~d_km () =
  Attenuation.path_attenuation_db ~f_ghz:params.f_ghz params.polarization ~rain_mm_h ~d_km

let hop_failed ?(params = default_params) ~rain_mm_h ~d_km () =
  attenuation ~params ~rain_mm_h ~d_km () > hop_margin_db ~params ~d_km ()

let link_failed ?(params = default_params) ~node_position field (link : Hops.link) =
  List.exists
    (fun (u, v) ->
      let pu = node_position u and pv = node_position v in
      let d = Cisp_geo.Geodesy.distance_km pu pv in
      (* A zero-length hop (degenerate co-located endpoints) has no
         path for rain to attenuate and no well-defined midpoint to
         sample — it can never fail. *)
      d > 0.0
      &&
      let mid = Cisp_geo.Geodesy.midpoint pu pv in
      let rain = Rainfield.rain_at field mid in
      rain > 0.05 && hop_failed ~params ~rain_mm_h:rain ~d_km:d ())
    (Hops.hops_of_link link)

let hop_loss_probability ?(params = default_params) ~rain_mm_h ~d_km () =
  let margin = hop_margin_db ~params ~d_km () in
  let att = attenuation ~params ~rain_mm_h ~d_km () in
  let deficit = att -. margin in
  (* Fading floor ~0.1%; a logistic ramp turns a margin deficit into
     rising loss, saturating at full outage. *)
  let floor = 0.0007 in
  let ramp = 1.0 /. (1.0 +. exp (-.deficit /. 2.5)) in
  Float.min 1.0 (floor +. (ramp *. (1.0 -. floor)))
