module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy

type result = {
  minutes : int;
  mean_loss : float;
  median_loss : float;
  loss_series : float array;
}

let chicago = Coord.make ~lat:41.88 ~lon:(-87.62)
let carteret = Coord.make ~lat:40.58 ~lon:(-74.23)

(* The paper notes this relay was "designed to absolutely minimize
   latency" with little or no FEC - i.e. engineered with far slimmer
   fade margins than a cISP link would be.  Model that with an
   aggressive margin profile. *)
let hft_params =
  {
    Failure.default_params with
    Failure.margin_floor_db = 8.0;
    margin_cap_db = 22.0;
  }

let run ?(seed = 7) ?(hops = 20) ?(minutes = 2743) () =
  let hop_ends = Geodesy.sample_path chicago carteret ~step_km:(Geodesy.distance_km chicago carteret /. float_of_int hops) in
  let nh = Array.length hop_ends - 1 in
  let hop_mid k = Geodesy.midpoint hop_ends.(k) hop_ends.(k + 1) in
  let hop_len k = Geodesy.distance_km hop_ends.(k) hop_ends.(k + 1) in
  (* The trading window spans ~11 days; map each minute onto a day and
     refresh the weather field hourly. *)
  let minutes_per_day = 390 (* 9:30-16:00 *) in
  let climate = Rainfield.us_climate in
  let field_for minute =
    let day = minute / minutes_per_day in
    let hour = minute / 60 in
    let base = Rainfield.sample ~seed:(seed + hour) climate ~day:(100 + day) in
    (* Sandy-style: the system spends the last ~4 trading days of the
       window approaching and then sitting over the NJ end. *)
    if day >= 4 then begin
      let drift = Float.min 1.0 (float_of_int (day - 4) /. 2.0) in
      let center =
        Geodesy.interpolate (Coord.make ~lat:36.5 ~lon:(-70.0)) carteret ~frac:drift
      in
      let h = Rainfield.hurricane ~center in
      { base with Rainfield.storms = h.Rainfield.storms @ base.Rainfield.storms }
    end
    else base
  in
  let loss_series =
    Array.init minutes (fun minute ->
        let field = field_for minute in
        let survive = ref 1.0 in
        for k = 0 to nh - 1 do
          let rain = Rainfield.rain_at field (hop_mid k) in
          let p = Failure.hop_loss_probability ~params:hft_params ~rain_mm_h:rain ~d_km:(hop_len k) () in
          survive := !survive *. (1.0 -. p)
        done;
        1.0 -. !survive)
  in
  {
    minutes;
    mean_loss = Cisp_util.Stats.mean loss_series;
    median_loss = Cisp_util.Stats.median loss_series;
    loss_series;
  }
