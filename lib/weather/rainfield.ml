module Rng = Cisp_util.Rng
module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy

type storm = { center : Coord.t; radius_km : float; peak_mm_h : float }
type t = { day : int; storms : storm list }

type climate = {
  bbox : Coord.bbox;
  mean_storms_per_interval : float;
  wetness : Coord.t -> float;
}

let us_bbox = { Coord.min_lat = 25.0; max_lat = 49.0; min_lon = -125.0; max_lon = -66.0 }
let eu_bbox = { Coord.min_lat = 36.0; max_lat = 62.0; min_lon = -10.0; max_lon = 30.0 }

(* Wetter towards the gulf coast and southeast; drier in the interior
   west — a coarse but recognizable US precipitation map. *)
let us_wetness p =
  let lat = Coord.lat p and lon = Coord.lon p in
  let southeast = exp (-.(((lat -. 31.0) /. 8.0) ** 2.0) -. (((lon +. 88.0) /. 14.0) ** 2.0)) in
  let pacific_nw = exp (-.(((lat -. 46.5) /. 4.0) ** 2.0) -. (((lon +. 122.5) /. 5.0) ** 2.0)) in
  let desert = exp (-.(((lat -. 36.0) /. 7.0) ** 2.0) -. (((lon +. 112.0) /. 8.0) ** 2.0)) in
  Float.max 0.15 (0.6 +. (1.8 *. southeast) +. (1.2 *. pacific_nw) -. (0.5 *. desert))

let eu_wetness p =
  let lat = Coord.lat p and lon = Coord.lon p in
  (* Atlantic fringe is wet; the continental east is drier. *)
  let atlantic = exp (-.((lon +. 5.0) /. 12.0) ** 2.0) in
  Float.max 0.2 (0.7 +. (1.0 *. atlantic) +. (0.3 *. exp (-.(((lat -. 46.0) /. 8.0) ** 2.0))))

let us_climate = { bbox = us_bbox; mean_storms_per_interval = 14.0; wetness = us_wetness }
let eu_climate = { bbox = eu_bbox; mean_storms_per_interval = 11.0; wetness = eu_wetness }
let uniform_climate bbox = { bbox; mean_storms_per_interval = 6.0; wetness = (fun _ -> 1.0) }

(* Seasonal modulation: day 0 = July 1.  Summer (day ~0 and ~365) has
   more, smaller, more intense convective cells; winter (day ~180)
   fewer but wider systems. *)
let season_factor day =
  let phase = 2.0 *. Float.pi *. float_of_int day /. 365.0 in
  1.0 +. (0.35 *. cos phase)

let sample ?(seed = 1234) climate ~day =
  if not (day >= 0 && day < 366) then invalid_arg "Rainfield.sample: day outside [0, 366)";
  let rng = Rng.create (seed + (day * 7919)) in
  let summer = season_factor day in
  let mean = climate.mean_storms_per_interval *. summer in
  let count = Rng.poisson rng mean in
  let rec draw_center tries =
    let lat = Rng.uniform rng climate.bbox.Coord.min_lat climate.bbox.Coord.max_lat in
    let lon = Rng.uniform rng climate.bbox.Coord.min_lon climate.bbox.Coord.max_lon in
    let p = Coord.make ~lat ~lon in
    (* rejection-sample against the wetness map *)
    if tries > 8 || Rng.float rng 3.0 < climate.wetness p then p else draw_center (tries + 1)
  in
  let storms =
    List.init count (fun _ ->
        let center = draw_center 0 in
        (* Convective (small, intense) vs stratiform (wide, weak). *)
        let convective = Rng.float rng 1.0 < 0.35 +. (0.25 *. (summer -. 1.0) /. 0.35) in
        if convective then
          {
            center;
            radius_km = Rng.uniform rng 15.0 60.0;
            peak_mm_h = Rng.lognormal rng (log 45.0) 0.7;
          }
        else
          {
            center;
            radius_km = Rng.uniform rng 60.0 250.0;
            peak_mm_h = Rng.lognormal rng (log 7.0) 0.5;
          })
  in
  { day; storms }

let rain_at t p =
  List.fold_left
    (fun acc s ->
      let d = Geodesy.distance_km s.center p in
      let x = d /. s.radius_km in
      Float.max acc (s.peak_mm_h *. exp (-.(x *. x))))
    0.0 t.storms

let hurricane ~center =
  {
    day = 120;
    storms =
      [
        { center; radius_km = 450.0; peak_mm_h = 28.0 };
        { center; radius_km = 180.0; peak_mm_h = 65.0 };
        { center; radius_km = 60.0; peak_mm_h = 120.0 };
      ];
  }
