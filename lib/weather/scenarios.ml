module Hops = Cisp_towers.Hops
module Inputs = Cisp_design.Inputs
module Topology = Cisp_design.Topology
module Routing = Cisp_sim.Routing
module Geodesy = Cisp_geo.Geodesy

type spec =
  | Uniform_rain of { mm_h : float }
  | Rain_replay of { climate : Rainfield.climate; intervals : int }
  | Hurricane of {
      center : Cisp_geo.Coord.t;
      track_bearing_deg : float;
      step_km : float;
      intervals : int;
    }
  | Correlated_towers of { blobs : int; radius_km : float; intervals : int }

let spec_name = function
  | Uniform_rain _ -> "uniform-rain"
  | Rain_replay _ -> "rain-replay"
  | Hurricane _ -> "hurricane"
  | Correlated_towers _ -> "correlated-towers"

let spec_intervals = function
  | Uniform_rain _ -> 1
  | Rain_replay { intervals; _ } | Hurricane { intervals; _ }
  | Correlated_towers { intervals; _ } ->
    intervals

type scheme_summary = {
  scheme : string;
  availability : float;
  mean_stretch : float;
  p99_stretch : float;
  worst_stretch : float;
}

type result = {
  name : string;
  intervals : int;
  mean_failed_links : float;
  schemes : scheme_summary list;
}

let default_schemes ~k =
  [
    ("shortest-recompute", Routing.Shortest_path);
    (Printf.sprintf "failover-k%d" k, Routing.K_disjoint_failover k);
    (Printf.sprintf "split-k%d" k, Routing.K_disjoint_split k);
  ]

let standard_suite ?(intervals = 8) ~climate ~hurricane_center () =
  [
    Uniform_rain { mm_h = 110.0 };
    Rain_replay { climate; intervals };
    Hurricane { center = hurricane_center; track_bearing_deg = 40.0; step_km = 60.0; intervals };
    Correlated_towers { blobs = 2; radius_km = 150.0; intervals };
  ]

(* Does one built link fail under a given rain field?  Mirrors
   [Year.run]: links without hop data (synthetic instances) are a
   single 60 km hop sampled at the site-to-site midpoint. *)
let link_fails_in_field ~params ~pos (inputs : Inputs.t) field ((i, j), link) =
  match link with
  | Some l -> Failure.link_failed ~params ~node_position:pos field l
  | None ->
    let rain =
      Rainfield.rain_at field
        (Geodesy.midpoint inputs.Inputs.sites.(i).Cisp_data.City.coord
           inputs.Inputs.sites.(j).Cisp_data.City.coord)
    in
    Failure.hop_failed ~params ~rain_mm_h:rain ~d_km:60.0 ()

(* The per-interval outage set, a pure function of (spec, seed,
   interval): writes [fails.(b)] for every built-link index [b]. *)
let interval_failures ~seed ~params ~pos ~hops (inputs : Inputs.t) ~links spec iv fails =
  match spec with
  | Uniform_rain { mm_h } ->
    Array.iteri
      (fun b (_, link) ->
        fails.(b) <-
          (match link with
          | Some l ->
            List.exists
              (fun (u, v) ->
                let d = Geodesy.distance_km (pos u) (pos v) in
                d > 0.0 && Failure.hop_failed ~params ~rain_mm_h:mm_h ~d_km:d ())
              (Hops.hops_of_link l)
          | None -> Failure.hop_failed ~params ~rain_mm_h:mm_h ~d_km:60.0 ()))
      links
  | Rain_replay { climate; intervals } ->
    let day = iv * 365 / intervals in
    let field = Rainfield.sample ~seed climate ~day in
    Array.iteri (fun b l -> fails.(b) <- link_fails_in_field ~params ~pos inputs field l) links
  | Hurricane { center; track_bearing_deg; step_km; _ } ->
    let eye =
      Geodesy.destination center ~bearing_deg:track_bearing_deg
        ~distance_km:(step_km *. float_of_int iv)
    in
    let field = Rainfield.hurricane ~center:eye in
    Array.iteri (fun b l -> fails.(b) <- link_fails_in_field ~params ~pos inputs field l) links
  | Correlated_towers { blobs; radius_km; _ } ->
    let rng = Cisp_util.Rng.create (seed + (iv * 7919)) in
    let n_towers = Array.length hops.Hops.towers in
    let centers =
      Array.init blobs (fun _ ->
          if n_towers > 0 then
            hops.Hops.towers.(Cisp_util.Rng.int rng n_towers).Cisp_towers.Tower.position
          else
            inputs.Inputs.sites.(Cisp_util.Rng.int rng (Array.length inputs.Inputs.sites))
              .Cisp_data.City.coord)
    in
    let hit p = Array.exists (fun c -> Geodesy.distance_km c p <= radius_km) centers in
    Array.iteri
      (fun b ((i, j), link) ->
        fails.(b) <-
          (match link with
          | Some l ->
            (* A regional outage takes down the towers inside the blob;
               a link dies when any of its relay towers does. *)
            List.exists (fun node -> node >= hops.Hops.n_sites && hit (pos node)) l.Hops.node_path
          | None ->
            hit
              (Geodesy.midpoint inputs.Inputs.sites.(i).Cisp_data.City.coord
                 inputs.Inputs.sites.(j).Cisp_data.City.coord)))
      links

let run ?(seed = 99) ?(params = Failure.default_params) ~schemes ~hops
    ~(model : Routing.network_model) ~demands_gbps spec =
  let intervals = spec_intervals spec in
  if intervals <= 0 then invalid_arg "Scenarios.run: intervals <= 0";
  (match schemes with [] -> invalid_arg "Scenarios.run: no schemes" | _ :: _ -> ());
  Cisp_util.Telemetry.with_span "scenarios.run" (fun () ->
      let inputs = model.Routing.inputs in
      let n = Inputs.n_sites inputs in
      let built = Array.of_list model.Routing.topology.Topology.built in
      let links =
        Array.map (fun (i, j) -> ((i, j), inputs.Inputs.mw_links.(i).(j))) built
      in
      let built_idx = Hashtbl.create (2 * Array.length built) in
      Array.iteri
        (fun b (i, j) ->
          Hashtbl.replace built_idx (i, j) b;
          Hashtbl.replace built_idx (j, i) b)
        built;
      (* Ordered commodities, matching the routing tables' keys. *)
      let commodities = ref [] in
      for s = n - 1 downto 0 do
        for t = n - 1 downto 0 do
          if s <> t && demands_gbps.(s).(t) > 0.0 && inputs.Inputs.geodesic_km.(s).(t) > 0.0 then
            commodities := (s, t) :: !commodities
        done
      done;
      let commodities = Array.of_list !commodities in
      let nc = Array.length commodities in
      let n_schemes = List.length schemes in
      (* Precompute the fair-weather multipath tables once; single-path
         schemes instead model global recompute and re-route inside
         each interval.  The tables are read-only in the workers. *)
      let tables =
        Array.of_list
          (List.map
             (fun (_, sch) ->
               match sch with
               | Routing.K_disjoint_split _ | Routing.K_disjoint_failover _ ->
                 Some (Routing.multipath_table model sch ~demands_gbps)
               | Routing.Shortest_path | Routing.Min_max_utilization
               | Routing.Throughput_optimal | Routing.Bounded_stretch _ ->
                 None)
             schemes)
      in
      let scheme_list = Array.of_list (List.map snd schemes) in
      (* Interval-major storage: samples.(iv).((si * nc) + c) is the
         stretch of commodity [c] under scheme [si] in interval [iv];
         nan = unavailable.  Each interval's task allocates and owns
         its whole row — the old scheme-major matrix had parallel
         intervals writing adjacent floats of every (scheme, commodity)
         row, false-sharing each row's cache lines across all
         domains. *)
      let samples = Array.make intervals [||] in
      let failed_per_interval = Array.make intervals 0 in
      let pos = Year.node_position hops in
      (* Intervals are independent trials: each derives its outage set
         purely from (seed, interval) and writes only its own row of
         [samples] and slot of [failed_per_interval], so the loop is
         bit-identical at any pool width. *)
      Cisp_util.Pool.parallel_for (Cisp_util.Pool.get ()) ~n:intervals (fun iv ->
          let row = Array.make (n_schemes * nc) Float.nan in
          let fails = Array.make (Array.length built) false in
          interval_failures ~seed ~params ~pos ~hops inputs ~links spec iv fails;
          let failed_here = ref 0 in
          Array.iter (fun f -> if f then incr failed_here) fails;
          failed_per_interval.(iv) <- !failed_here;
          let mw_ok i j =
            match Hashtbl.find_opt built_idx (i, j) with
            | Some b -> not fails.(b)
            | None -> true
          in
          Array.iteri
            (fun si sch ->
              match tables.(si) with
              | Some table ->
                Array.iteri
                  (fun c (s, t) ->
                    row.((si * nc) + c) <-
                      (match Hashtbl.find_opt table (s, t) with
                      | None -> Float.nan
                      | Some mp ->
                        let survivors = Routing.select_routes mp ~mw_ok in
                        if Array.length survivors = 0 then Float.nan
                        else
                          let lat =
                            Array.fold_left
                              (fun acc (r, w) -> acc +. (w *. r.Routing.latency_km))
                              0.0 survivors
                          in
                          lat /. inputs.Inputs.geodesic_km.(s).(t)))
                  commodities
              | None ->
                let table = Routing.paths ~mw_ok model sch ~demands_gbps in
                Array.iteri
                  (fun c (s, t) ->
                    row.((si * nc) + c) <-
                      (match Hashtbl.find_opt table (s, t) with
                      | None -> Float.nan
                      | Some route ->
                        Routing.route_latency_km model ~mw_ok route
                        /. inputs.Inputs.geodesic_km.(s).(t)))
                  commodities)
            scheme_list;
          samples.(iv) <- row);
      let failed_total = ref 0 in
      Array.iter (fun c -> failed_total := !failed_total + c) failed_per_interval;
      if Cisp_util.Telemetry.enabled () then begin
        Cisp_util.Telemetry.add "scenarios.intervals" intervals;
        Cisp_util.Telemetry.add "scenarios.commodities" nc;
        Array.iter
          (fun c -> Cisp_util.Telemetry.observe "scenarios.failed_links" (float_of_int c))
          failed_per_interval
      end;
      let weights = Array.map (fun (s, t) -> demands_gbps.(s).(t)) commodities in
      let summaries =
        List.mapi
          (fun si (label, _) ->
            let avail_w = ref 0.0 and total_w = ref 0.0 in
            let stretch_w = ref 0.0 in
            let observed = ref [] in
            for c = 0 to nc - 1 do
              for iv = 0 to intervals - 1 do
                let w = weights.(c) in
                total_w := !total_w +. w;
                let x = samples.(iv).((si * nc) + c) in
                if not (Float.is_nan x) then begin
                  avail_w := !avail_w +. w;
                  stretch_w := !stretch_w +. (w *. x);
                  observed := x :: !observed
                end
              done
            done;
            let observed = Array.of_list !observed in
            let availability = if !total_w > 0.0 then !avail_w /. !total_w else 0.0 in
            let mean_stretch = if !avail_w > 0.0 then !stretch_w /. !avail_w else Float.nan in
            let p99_stretch =
              if Array.length observed = 0 then Float.nan
              else Cisp_util.Stats.percentile observed 99.0
            in
            let worst_stretch =
              if Array.length observed = 0 then Float.nan
              else snd (Cisp_util.Stats.min_max observed)
            in
            { scheme = label; availability; mean_stretch; p99_stretch; worst_stretch })
          schemes
      in
      {
        name = spec_name spec;
        intervals;
        mean_failed_links = float_of_int !failed_total /. float_of_int intervals;
        schemes = summaries;
      })

let frontier_csv results =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "scenario,scheme,availability,mean_stretch,p99_stretch,worst_stretch,mean_failed_links\n";
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%s,%.6f,%.6f,%.6f,%.6f,%.4f\n" r.name s.scheme s.availability
               s.mean_stretch s.p99_stretch s.worst_stretch r.mean_failed_links))
        r.schemes)
    results;
  Buffer.contents buf
