(** Deterministic failure-scenario engine (paper §6.1 extended).

    Replays a family of failure processes — uniform rain, a year-style
    storm replay, a hurricane window marching along a track, and
    synthetic correlated tower outages — against a designed topology,
    and evaluates each routing scheme's stretch/availability trade-off
    per interval: the frontier that motivates fast local failover and
    multipath load-splitting over whole-recompute reroute.

    Semantics per scheme (see {!Cisp_sim.Routing}):
    - single-path schemes ([Shortest_path], ...) model the global
      recompute baseline: routes are recomputed from scratch on the
      surviving MW+fiber graph each interval, so availability is
      bounded only by fiber connectivity;
    - [K_disjoint_failover k] activates the first surviving
      precomputed backup, with no recompute — a commodity whose whole
      precomputed set is down is counted unavailable;
    - [K_disjoint_split k] keeps load on all surviving precomputed
      paths with renormalized split weights.

    Every run is a pure function of (spec, seed): intervals are
    independent trials parallelized over the domain pool, bit-identical
    at any [CISP_JOBS] width. *)

type spec =
  | Uniform_rain of { mm_h : float }
      (** every hop sees the same rain rate; a single interval *)
  | Rain_replay of { climate : Rainfield.climate; intervals : int }
      (** the {!Year}-style storm-field replay *)
  | Hurricane of {
      center : Cisp_geo.Coord.t;
      track_bearing_deg : float;
      step_km : float;      (** eye displacement per interval *)
      intervals : int;
    }
  | Correlated_towers of { blobs : int; radius_km : float; intervals : int }
      (** per interval, [blobs] regional outages centered on randomly
          chosen towers take down every link passing within
          [radius_km] *)

val spec_name : spec -> string
(** Stable slug ("uniform-rain", "rain-replay", "hurricane",
    "correlated-towers") used in CSV output and test labels. *)

type scheme_summary = {
  scheme : string;
  availability : float;
      (** demand-weighted fraction of commodity-intervals with a
          surviving route *)
  mean_stretch : float;
      (** demand-weighted mean stretch (route latency / geodesic) over
          available commodity-intervals; [nan] when nothing was
          available *)
  p99_stretch : float;
  worst_stretch : float;
}

type result = {
  name : string;                 (** {!spec_name} of the spec *)
  intervals : int;
  mean_failed_links : float;     (** built MW links down per interval *)
  schemes : scheme_summary list; (** one per requested scheme, in order *)
}

val default_schemes : k:int -> (string * Cisp_sim.Routing.scheme) list
(** The frontier's standard contenders: global-recompute shortest
    path, [K_disjoint_failover k], and [K_disjoint_split k]. *)

val standard_suite :
  ?intervals:int ->
  climate:Rainfield.climate ->
  hurricane_center:Cisp_geo.Coord.t ->
  unit -> spec list
(** Uniform rain at a convective-core 110 mm/h (heavy enough to take
    out the longest hops but not short ones), storm replay, hurricane
    window, and two correlated tower outages ([intervals] defaults to
    8 per multi-interval spec). *)

val run :
  ?seed:int ->
  ?params:Failure.params ->
  schemes:(string * Cisp_sim.Routing.scheme) list ->
  hops:Cisp_towers.Hops.t ->
  model:Cisp_sim.Routing.network_model ->
  demands_gbps:Cisp_traffic.Matrix.t ->
  spec ->
  result
(** Replay one spec.  [hops] supplies node positions for the physical
    tower paths of built links (links without hop data are
    approximated by a single 60 km hop at the link midpoint, exactly
    like {!Year.run}).  Raises [Invalid_argument] on a non-positive
    interval count or an empty scheme list. *)

val frontier_csv : result list -> string
(** The stretch/availability frontier as CSV
    ([scenario,scheme,availability,mean_stretch,p99_stretch,
    worst_stretch,mean_failed_links]; one row per (scenario, scheme)). *)
