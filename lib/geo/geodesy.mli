(** Great-circle geodesy on a spherical Earth.

    The paper's "c-latency" between two points is their geodesic
    distance divided by the speed of light in vacuum; every distance in
    the system comes from this module. *)

val distance_km : Coord.t -> Coord.t -> float
(** Haversine great-circle distance in kilometres. *)

val c_latency_ms : Coord.t -> Coord.t -> float
(** One-way speed-of-light travel time along the geodesic, ms. *)

val initial_bearing_deg : Coord.t -> Coord.t -> float
(** Forward azimuth at the start point, degrees in \[0, 360). *)

val destination : Coord.t -> bearing_deg:float -> distance_km:float -> Coord.t
(** Point reached travelling [distance_km] along [bearing_deg]. *)

val interpolate : Coord.t -> Coord.t -> frac:float -> Coord.t
(** [interpolate a b ~frac] is the point a fraction [frac] in \[0,1\]
    along the great circle from [a] to [b] (slerp). *)

val sample_path : Coord.t -> Coord.t -> step_km:float -> Coord.t array
(** Points along the great circle every [step_km] (inclusive of both
    endpoints, at least 2 points). *)

val midpoint : Coord.t -> Coord.t -> Coord.t

val path_length_km : Coord.t array -> float
(** Sum of consecutive great-circle distances along a polyline. *)

val cross_track_km : Coord.t -> path_start:Coord.t -> path_end:Coord.t -> float
(** Unsigned cross-track distance from a point to the great circle
    through [path_start]-[path_end]. *)
