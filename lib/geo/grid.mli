(** Spatial hash index over geographic points.

    Buckets points into fixed-size degree cells so that
    "all points within [radius] km of here" queries — the inner loop of
    tower-pair feasibility testing — run in time proportional to the
    local density instead of the registry size.  Query windows wrap
    across the +/-180 antimeridian, so clusters straddling it see each
    other.  Cell keys are packed ints (no per-probe allocation), and a
    built index can be {!freeze}-d into flat per-cell arrays for the
    read-only query phase. *)

type 'a t

val create : cell_deg:float -> 'a t
(** [create ~cell_deg] makes an empty index with square cells of
    [cell_deg] degrees on a side.  Raises [Invalid_argument] if
    [cell_deg < 0.001] (packed cell keys need bounded indices). *)

val add : 'a t -> Coord.t -> 'a -> unit
(** Adding to a frozen grid is allowed; it drops the frozen view
    (re-{!freeze} when the build phase is over). *)

val freeze : 'a t -> unit
(** Snapshot every bucket into a flat array: queries then probe an
    int-keyed table of arrays instead of walking cons lists.  Purely a
    representation change — frozen and unfrozen grids visit the same
    points in the same order.  Idempotent. *)

val of_list : cell_deg:float -> (Coord.t * 'a) list -> 'a t

val length : 'a t -> int

val nearby : 'a t -> Coord.t -> radius_km:float -> (Coord.t * 'a) list
(** All stored points within [radius_km] great-circle distance of the
    query point. *)

val iter_nearby : 'a t -> Coord.t -> radius_km:float -> (Coord.t -> 'a -> unit) -> unit
(** Allocation-light variant of [nearby]. *)

val fold : 'a t -> init:'b -> f:('b -> Coord.t -> 'a -> 'b) -> 'b
(** Folds over every point in ascending cell-key order (within a cell,
    most-recently-added first): the traversal is a pure function of the
    grid's contents, independent of insertion order across cells. *)

val cell_population : 'a t -> (int * int, int) Hashtbl.t
(** Count of points per cell, keyed by integer cell coordinates — used
    by the paper's per-grid-cell tower culling (§4). *)

val cell_of : 'a t -> Coord.t -> int * int
