(* Cell keys pack the two signed cell indices into one immediate int:
   no tuple allocation per probe, and the frozen fast path below can
   hash ints instead of pairs.  23-bit fields hold any index reachable
   with cell_deg >= 0.001 (|ci| <= 90/cell_deg, plus clamped query
   windows). *)
let pack ci cj = ((ci + 0x400000) lsl 23) lor ((cj + 0x400000) land 0x7FFFFF)

let unpack key = ((key asr 23) - 0x400000, (key land 0x7FFFFF) - 0x400000)

type 'a t = {
  cell_deg : float;
  cells : (int, (Coord.t * 'a) list ref) Hashtbl.t;
  mutable count : int;
  (* Flat per-cell arrays in the buckets' iteration order, built by
     [freeze]; probed instead of [cells] once present.  [add]
     invalidates it. *)
  mutable frozen : (int, (Coord.t * 'a) array) Hashtbl.t option;
}

let create ~cell_deg =
  if cell_deg < 0.001 then invalid_arg "Grid.create: cell_deg < 0.001";
  { cell_deg; cells = Hashtbl.create 4096; count = 0; frozen = None }

let cell_of t p =
  ( int_of_float (Float.floor (Coord.lat p /. t.cell_deg)),
    int_of_float (Float.floor (Coord.lon p /. t.cell_deg)) )

let add t p v =
  let ci, cj = cell_of t p in
  let key = pack ci cj in
  (match Hashtbl.find_opt t.cells key with
  | Some bucket -> bucket := (p, v) :: !bucket
  | None -> Hashtbl.add t.cells key (ref [ (p, v) ]));
  t.count <- t.count + 1;
  t.frozen <- None

let of_list ~cell_deg pairs =
  let t = create ~cell_deg in
  List.iter (fun (p, v) -> add t p v) pairs;
  t

let length t = t.count

let freeze t =
  match t.frozen with
  | Some _ -> ()
  | None ->
    let packed = Hashtbl.create (max 16 (Hashtbl.length t.cells)) in
    (* Arrays keep each bucket's most-recent-first list order, so
       frozen and unfrozen grids visit points identically; sorted
       traversal keeps the build itself order-independent (L9). *)
    Cisp_util.Tbl.iter_sorted
      (fun key bucket -> Hashtbl.add packed key (Array.of_list !bucket))
      t.cells;
    t.frozen <- Some packed

(* Degrees of longitude spanned by [radius_km] at latitude [lat]. *)
let lon_span_deg ~radius_km ~lat =
  let km_per_deg =
    Cisp_util.Units.km_per_deg_lat *. Float.max 0.05 (cos (Cisp_util.Units.deg_to_rad lat))
  in
  radius_km /. km_per_deg

(* Column index of coordinate [x] under cell size [cd].  Top-level
   with [cd] as an argument — the old capturing local was one closure
   per query, inside the hop sweeps' per-iteration allocation budget
   (L11). *)
let[@inline] col cd x = int_of_float (Float.floor (x /. cd))

(* The query path below is deliberately closure- and allocation-free
   ([@cisp.zero_alloc] on [iter_nearby]): the LOS sweeps call it once
   per tower from pool workers.  Column ranges travel as four scalars
   (an empty second range is [lo > hi]), buckets are walked by
   top-level recursion, and the candidate filter is inlined at both
   probe sites.  [Hashtbl.find]-with-[Not_found] rather than
   [find_opt]: the option would allocate per probed cell (L2 allowlist
   entry). *)
let scan_cols_frozen packed f p radius_km ci cj_lo cj_hi =
  for cj = cj_lo to cj_hi do
    match Hashtbl.find packed (pack ci cj) with
    | exception Not_found -> ()
    | arr ->
      for k = 0 to Array.length arr - 1 do
        let q, v = Array.unsafe_get arr k in
        if Geodesy.distance_km p q <= radius_km then f q v
      done
  done

let rec visit_bucket f p radius_km = function
  | [] -> ()
  | (q, v) :: rest ->
    if Geodesy.distance_km p q <= radius_km then f q v;
    visit_bucket f p radius_km rest

let scan_cols_live cells f p radius_km ci cj_lo cj_hi =
  for cj = cj_lo to cj_hi do
    match Hashtbl.find cells (pack ci cj) with
    | exception Not_found -> ()
    | bucket -> visit_bucket f p radius_km !bucket
  done

let scan_ranges t f p radius_km ~ci_lo ~ci_hi ~r1_lo ~r1_hi ~r2_lo ~r2_hi =
  match t.frozen with
  | Some packed ->
    for ci = ci_lo to ci_hi do
      scan_cols_frozen packed f p radius_km ci r1_lo r1_hi;
      scan_cols_frozen packed f p radius_km ci r2_lo r2_hi
    done
  | None ->
    for ci = ci_lo to ci_hi do
      scan_cols_live t.cells f p radius_km ci r1_lo r1_hi;
      scan_cols_live t.cells f p radius_km ci r2_lo r2_hi
    done

let[@cisp.zero_alloc] iter_nearby t p ~radius_km f =
  let cd = t.cell_deg in
  let lat_span = radius_km /. Cisp_util.Units.km_per_deg_lat in
  let lon_span = lon_span_deg ~radius_km ~lat:(Coord.lat p) in
  (* Rows cannot wrap; clamp to the populated band so every scanned
     key stays inside the packed-field range. *)
  let ci_min = col cd (-90.0) and ci_max = col cd 90.0 in
  let ci_lo = max ci_min (col cd (Coord.lat p -. lat_span)) in
  let ci_hi = min ci_max (col cd (Coord.lat p +. lat_span)) in
  (* Columns wrap at the antimeridian.  Stored longitudes lie in
     [-180, 180), i.e. columns [cj_min, cj_max]; a window crossing
     +/-180 is scanned as two column ranges, its overflow wrapped by
     360 degrees.  If the wrapped range would meet the main one (the
     window nearly circles the globe) fall back to one full scan so no
     cell is visited twice. *)
  let cj_min = col cd (-180.0) in
  let cj_max = int_of_float (Float.ceil (180.0 /. cd)) - 1 in
  let lon_lo = Coord.lon p -. lon_span and lon_hi = Coord.lon p +. lon_span in
  (* Fully applied at every branch: binding a partially applied
     [scan_ranges] would allocate the very closure this path exists to
     avoid. *)
  if lon_hi -. lon_lo >= 360.0 then
    scan_ranges t f p radius_km ~ci_lo ~ci_hi ~r1_lo:cj_min ~r1_hi:cj_max
      ~r2_lo:0 ~r2_hi:(-1)
  else if lon_lo < -180.0 then begin
    let wrapped_lo = col cd (lon_lo +. 360.0) in
    let main_hi = col cd lon_hi in
    if wrapped_lo <= main_hi then
      scan_ranges t f p radius_km ~ci_lo ~ci_hi ~r1_lo:cj_min ~r1_hi:cj_max
        ~r2_lo:0 ~r2_hi:(-1)
    else
      scan_ranges t f p radius_km ~ci_lo ~ci_hi ~r1_lo:cj_min
        ~r1_hi:(min main_hi cj_max) ~r2_lo:(max wrapped_lo cj_min) ~r2_hi:cj_max
  end
  else if lon_hi >= 180.0 then begin
    let wrapped_hi = col cd (lon_hi -. 360.0) in
    let main_lo = col cd lon_lo in
    if wrapped_hi >= main_lo then
      scan_ranges t f p radius_km ~ci_lo ~ci_hi ~r1_lo:cj_min ~r1_hi:cj_max
        ~r2_lo:0 ~r2_hi:(-1)
    else
      scan_ranges t f p radius_km ~ci_lo ~ci_hi ~r1_lo:(max main_lo cj_min)
        ~r1_hi:cj_max ~r2_lo:cj_min ~r2_hi:(min wrapped_hi cj_max)
  end
  else
    scan_ranges t f p radius_km ~ci_lo ~ci_hi ~r1_lo:(max (col cd lon_lo) cj_min)
      ~r1_hi:(min (col cd lon_hi) cj_max) ~r2_lo:0 ~r2_hi:(-1)

let nearby t p ~radius_km =
  let acc = ref [] in
  iter_nearby t p ~radius_km (fun q v -> acc := (q, v) :: !acc);
  !acc

(* Sorted cell traversal (L9): [Hashtbl.fold]'s order depends on
   hashing and insertion history, which would leak into any
   accumulator this feeds.  Ascending packed-key order makes the fold
   a pure function of the grid's contents; within a cell, points keep
   their most-recent-first bucket order. *)
let fold t ~init ~f =
  Cisp_util.Tbl.fold_sorted ~compare:Int.compare
    (fun _ bucket acc -> List.fold_left (fun acc (p, v) -> f acc p v) acc !bucket)
    t.cells init

let cell_population t =
  let pop = Hashtbl.create (Hashtbl.length t.cells) in
  Hashtbl.iter
    (fun key bucket -> Hashtbl.replace pop (unpack key) (List.length !bucket))
    t.cells;
  pop
