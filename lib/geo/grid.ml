type 'a t = {
  cell_deg : float;
  cells : (int * int, (Coord.t * 'a) list ref) Hashtbl.t;
  mutable count : int;
}

let create ~cell_deg =
  if cell_deg <= 0.0 then invalid_arg "Grid.create: cell_deg <= 0";
  { cell_deg; cells = Hashtbl.create 4096; count = 0 }

let cell_of t p =
  ( int_of_float (Float.floor (Coord.lat p /. t.cell_deg)),
    int_of_float (Float.floor (Coord.lon p /. t.cell_deg)) )

let add t p v =
  let key = cell_of t p in
  (match Hashtbl.find_opt t.cells key with
  | Some bucket -> bucket := (p, v) :: !bucket
  | None -> Hashtbl.add t.cells key (ref [ (p, v) ]));
  t.count <- t.count + 1

let of_list ~cell_deg pairs =
  let t = create ~cell_deg in
  List.iter (fun (p, v) -> add t p v) pairs;
  t

let length t = t.count

(* Degrees of longitude spanned by [radius_km] at latitude [lat]. *)
let lon_span_deg ~radius_km ~lat =
  let km_per_deg = 111.19 *. Float.max 0.05 (cos (Cisp_util.Units.deg_to_rad lat)) in
  radius_km /. km_per_deg

let iter_nearby t p ~radius_km f =
  let lat_span = radius_km /. 111.19 in
  let lon_span = lon_span_deg ~radius_km ~lat:(Coord.lat p) in
  let ci_lo = int_of_float (Float.floor ((Coord.lat p -. lat_span) /. t.cell_deg)) in
  let ci_hi = int_of_float (Float.floor ((Coord.lat p +. lat_span) /. t.cell_deg)) in
  let cj_lo = int_of_float (Float.floor ((Coord.lon p -. lon_span) /. t.cell_deg)) in
  let cj_hi = int_of_float (Float.floor ((Coord.lon p +. lon_span) /. t.cell_deg)) in
  for ci = ci_lo to ci_hi do
    for cj = cj_lo to cj_hi do
      match Hashtbl.find_opt t.cells (ci, cj) with
      | None -> ()
      | Some bucket ->
        List.iter
          (fun (q, v) -> if Geodesy.distance_km p q <= radius_km then f q v)
          !bucket
    done
  done

let nearby t p ~radius_km =
  let acc = ref [] in
  iter_nearby t p ~radius_km (fun q v -> acc := (q, v) :: !acc);
  !acc

let fold t ~init ~f =
  Hashtbl.fold
    (fun _ bucket acc -> List.fold_left (fun acc (p, v) -> f acc p v) acc !bucket)
    t.cells init

let cell_population t =
  let pop = Hashtbl.create (Hashtbl.length t.cells) in
  Hashtbl.iter (fun key bucket -> Hashtbl.replace pop key (List.length !bucket)) t.cells;
  pop
