(* Cell keys pack the two signed cell indices into one immediate int:
   no tuple allocation per probe, and the frozen fast path below can
   hash ints instead of pairs.  23-bit fields hold any index reachable
   with cell_deg >= 0.001 (|ci| <= 90/cell_deg, plus clamped query
   windows). *)
let pack ci cj = ((ci + 0x400000) lsl 23) lor ((cj + 0x400000) land 0x7FFFFF)

let unpack key = ((key asr 23) - 0x400000, (key land 0x7FFFFF) - 0x400000)

type 'a t = {
  cell_deg : float;
  cells : (int, (Coord.t * 'a) list ref) Hashtbl.t;
  mutable count : int;
  (* Flat per-cell arrays in the buckets' iteration order, built by
     [freeze]; probed instead of [cells] once present.  [add]
     invalidates it. *)
  mutable frozen : (int, (Coord.t * 'a) array) Hashtbl.t option;
}

let create ~cell_deg =
  if cell_deg < 0.001 then invalid_arg "Grid.create: cell_deg < 0.001";
  { cell_deg; cells = Hashtbl.create 4096; count = 0; frozen = None }

let cell_of t p =
  ( int_of_float (Float.floor (Coord.lat p /. t.cell_deg)),
    int_of_float (Float.floor (Coord.lon p /. t.cell_deg)) )

let add t p v =
  let ci, cj = cell_of t p in
  let key = pack ci cj in
  (match Hashtbl.find_opt t.cells key with
  | Some bucket -> bucket := (p, v) :: !bucket
  | None -> Hashtbl.add t.cells key (ref [ (p, v) ]));
  t.count <- t.count + 1;
  t.frozen <- None

let of_list ~cell_deg pairs =
  let t = create ~cell_deg in
  List.iter (fun (p, v) -> add t p v) pairs;
  t

let length t = t.count

let freeze t =
  match t.frozen with
  | Some _ -> ()
  | None ->
    let packed = Hashtbl.create (max 16 (Hashtbl.length t.cells)) in
    (* Arrays keep each bucket's most-recent-first list order, so
       frozen and unfrozen grids visit points identically; sorted
       traversal keeps the build itself order-independent (L9). *)
    Cisp_util.Tbl.iter_sorted
      (fun key bucket -> Hashtbl.add packed key (Array.of_list !bucket))
      t.cells;
    t.frozen <- Some packed

(* Degrees of longitude spanned by [radius_km] at latitude [lat]. *)
let lon_span_deg ~radius_km ~lat =
  let km_per_deg =
    Cisp_util.Units.km_per_deg_lat *. Float.max 0.05 (cos (Cisp_util.Units.deg_to_rad lat))
  in
  radius_km /. km_per_deg

let iter_nearby t p ~radius_km f =
  let cd = t.cell_deg in
  let lat_span = radius_km /. Cisp_util.Units.km_per_deg_lat in
  let lon_span = lon_span_deg ~radius_km ~lat:(Coord.lat p) in
  let col x = int_of_float (Float.floor (x /. cd)) in
  (* Rows cannot wrap; clamp to the populated band so every scanned
     key stays inside the packed-field range. *)
  let ci_min = col (-90.0) and ci_max = col 90.0 in
  let ci_lo = max ci_min (col (Coord.lat p -. lat_span)) in
  let ci_hi = min ci_max (col (Coord.lat p +. lat_span)) in
  (* Columns wrap at the antimeridian.  Stored longitudes lie in
     [-180, 180), i.e. columns [cj_min, cj_max]; a window crossing
     +/-180 is scanned as two column ranges, its overflow wrapped by
     360 degrees.  If the wrapped range would meet the main one (the
     window nearly circles the globe) fall back to one full scan so no
     cell is visited twice. *)
  let cj_min = col (-180.0) in
  let cj_max = int_of_float (Float.ceil (180.0 /. cd)) - 1 in
  let lon_lo = Coord.lon p -. lon_span and lon_hi = Coord.lon p +. lon_span in
  let clamp (a, b) = (max a cj_min, min b cj_max) in
  let col_ranges =
    if lon_hi -. lon_lo >= 360.0 then [ (cj_min, cj_max) ]
    else if lon_lo < -180.0 then begin
      let wrapped_lo = col (lon_lo +. 360.0) in
      let main_hi = col lon_hi in
      if wrapped_lo <= main_hi then [ (cj_min, cj_max) ]
      else [ clamp (cj_min, main_hi); clamp (wrapped_lo, cj_max) ]
    end
    else if lon_hi >= 180.0 then begin
      let wrapped_hi = col (lon_hi -. 360.0) in
      let main_lo = col lon_lo in
      if wrapped_hi >= main_lo then [ (cj_min, cj_max) ]
      else [ clamp (main_lo, cj_max); clamp (cj_min, wrapped_hi) ]
    end
    else [ clamp (col lon_lo, col lon_hi) ]
  in
  let visit_filtered q v = if Geodesy.distance_km p q <= radius_km then f q v in
  match t.frozen with
  | Some packed ->
    for ci = ci_lo to ci_hi do
      List.iter
        (fun (cj_lo, cj_hi) ->
          for cj = cj_lo to cj_hi do
            match Hashtbl.find_opt packed (pack ci cj) with
            | None -> ()
            | Some arr ->
              for k = 0 to Array.length arr - 1 do
                let q, v = Array.unsafe_get arr k in
                visit_filtered q v
              done
          done)
        col_ranges
    done
  | None ->
    for ci = ci_lo to ci_hi do
      List.iter
        (fun (cj_lo, cj_hi) ->
          for cj = cj_lo to cj_hi do
            match Hashtbl.find_opt t.cells (pack ci cj) with
            | None -> ()
            | Some bucket -> List.iter (fun (q, v) -> visit_filtered q v) !bucket
          done)
        col_ranges
    done

let nearby t p ~radius_km =
  let acc = ref [] in
  iter_nearby t p ~radius_km (fun q v -> acc := (q, v) :: !acc);
  !acc

let fold t ~init ~f =
  Hashtbl.fold
    (fun _ bucket acc -> List.fold_left (fun acc (p, v) -> f acc p v) acc !bucket)
    t.cells init

let cell_population t =
  let pop = Hashtbl.create (Hashtbl.length t.cells) in
  Hashtbl.iter
    (fun key bucket -> Hashtbl.replace pop (unpack key) (List.length !bucket))
    t.cells;
  pop
