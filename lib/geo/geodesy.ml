let r = Cisp_util.Units.earth_radius_km

(* Eta-expanded so calls compile as direct (inlinable) applications,
   not calls through a closure value: a closure call would box its
   float argument and result, and [distance_km] runs per probed point
   inside the zero-alloc LOS and grid walks. *)
let[@inline] rad d = Cisp_util.Units.deg_to_rad d
let[@inline] deg r = Cisp_util.Units.rad_to_deg r

let[@inline] [@cisp.zero_alloc] distance_km (a : Coord.t) (b : Coord.t) =
  let phi1 = rad (Coord.lat a) and phi2 = rad (Coord.lat b) in
  let dphi = rad (Coord.lat b -. Coord.lat a) in
  let dlam = rad (Coord.lon b -. Coord.lon a) in
  let s1 = sin (dphi /. 2.0) and s2 = sin (dlam /. 2.0) in
  let h = (s1 *. s1) +. (cos phi1 *. cos phi2 *. s2 *. s2) in
  (* [if]-form of [Float.min 1.0 s]: same value for the s >= 0 the
     haversine produces, and no out-of-line stdlib call to box the
     result. *)
  let s = sqrt h in
  2.0 *. r *. asin (if s > 1.0 then 1.0 else s)

let c_latency_ms a b = Cisp_util.Units.ms_of_km_at_c (distance_km a b)

let initial_bearing_deg (a : Coord.t) (b : Coord.t) =
  let phi1 = rad (Coord.lat a) and phi2 = rad (Coord.lat b) in
  let dlam = rad (Coord.lon b -. Coord.lon a) in
  let y = sin dlam *. cos phi2 in
  let x = (cos phi1 *. sin phi2) -. (sin phi1 *. cos phi2 *. cos dlam) in
  let theta = deg (atan2 y x) in
  Float.rem (theta +. 360.0) 360.0

let destination (a : Coord.t) ~bearing_deg ~distance_km =
  let phi1 = rad (Coord.lat a) in
  let lam1 = rad (Coord.lon a) in
  let theta = rad bearing_deg in
  let delta = distance_km /. r in
  let phi2 =
    asin ((sin phi1 *. cos delta) +. (cos phi1 *. sin delta *. cos theta))
  in
  let lam2 =
    lam1
    +. atan2
         (sin theta *. sin delta *. cos phi1)
         (cos delta -. (sin phi1 *. sin phi2))
  in
  Coord.make ~lat:(deg phi2) ~lon:(deg lam2)

(* Spherical linear interpolation along the great circle. *)
let interpolate (a : Coord.t) (b : Coord.t) ~frac:t =
  if t <= 0.0 then a
  else if t >= 1.0 then b
  else begin
    let d = distance_km a b /. r in
    if d < 1e-12 then a
    else begin
      let phi1 = rad (Coord.lat a) and lam1 = rad (Coord.lon a) in
      let phi2 = rad (Coord.lat b) and lam2 = rad (Coord.lon b) in
      let sa = sin ((1.0 -. t) *. d) /. sin d in
      let sb = sin (t *. d) /. sin d in
      let x = (sa *. cos phi1 *. cos lam1) +. (sb *. cos phi2 *. cos lam2) in
      let y = (sa *. cos phi1 *. sin lam1) +. (sb *. cos phi2 *. sin lam2) in
      let z = (sa *. sin phi1) +. (sb *. sin phi2) in
      let phi = atan2 z (sqrt ((x *. x) +. (y *. y))) in
      let lam = atan2 y x in
      Coord.make ~lat:(deg phi) ~lon:(deg lam)
    end
  end

let sample_path a b ~step_km =
  if step_km <= 0.0 then invalid_arg "Geodesy.sample_path: step_km <= 0";
  let d = distance_km a b in
  let n = max 1 (int_of_float (Float.ceil (d /. step_km))) in
  Array.init (n + 1) (fun i -> interpolate a b ~frac:(float_of_int i /. float_of_int n))

let midpoint a b = interpolate a b ~frac:0.5

let path_length_km pts =
  let total = ref 0.0 in
  for i = 0 to Array.length pts - 2 do
    total := !total +. distance_km pts.(i) pts.(i + 1)
  done;
  !total

let cross_track_km p ~path_start ~path_end =
  let d13 = distance_km path_start p /. r in
  let theta13 = rad (initial_bearing_deg path_start p) in
  let theta12 = rad (initial_bearing_deg path_start path_end) in
  Float.abs (asin (sin d13 *. sin (theta13 -. theta12)) *. r)
