(** Geographic coordinates (WGS-84 style lat/lon, degrees). *)

type t = { lat : float; lon : float }

val make : lat:float -> lon:float -> t
(** [make ~lat ~lon] validates lat in \[-90, 90\] and normalizes lon to
    (-180, 180\].  Raises [Invalid_argument] on out-of-range latitude. *)

val normalize_lon : float -> float
(** The longitude normalization [make] applies, exposed for callers
    that work on raw scalar lat/lon (profile sampling, grid cell
    wrapping) and must agree bit-for-bit with [make]. *)

val lat : t -> float
val lon : t -> float

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

type bbox = { min_lat : float; max_lat : float; min_lon : float; max_lon : float }

val bbox_of_points : t list -> bbox
(** Smallest bounding box containing all points (no antimeridian
    handling; fine for the contiguous US / Europe).  Raises
    [Invalid_argument] on the empty list. *)

val in_bbox : bbox -> t -> bool

val expand_bbox : bbox -> margin_deg:float -> bbox
