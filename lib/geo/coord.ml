type t = { lat : float; lon : float }

(* [@inline] on the float-returning accessors below: without flambda a
   cross-module call boxes its float result, and these run per sample
   inside the zero-alloc LOS walk. *)
let[@inline] [@cisp.zero_alloc] normalize_lon lon =
  let l = Float.rem (lon +. 180.0) 360.0 in
  let l = if l < 0.0 then l +. 360.0 else l in
  l -. 180.0

let make ~lat ~lon =
  if lat < -90.0 || lat > 90.0 then
    invalid_arg (Printf.sprintf "Coord.make: latitude %f out of range" lat);
  { lat; lon = normalize_lon lon }

let[@inline] lat t = t.lat
let[@inline] lon t = t.lon
let equal a b = Float.equal a.lat b.lat && Float.equal a.lon b.lon

let compare a b =
  match Float.compare a.lat b.lat with
  | 0 -> Float.compare a.lon b.lon
  | c -> c

let pp ppf t = Format.fprintf ppf "(%.4f, %.4f)" t.lat t.lon
let to_string t = Format.asprintf "%a" pp t

type bbox = { min_lat : float; max_lat : float; min_lon : float; max_lon : float }

let bbox_of_points = function
  | [] -> invalid_arg "Coord.bbox_of_points: empty"
  | p :: ps ->
    List.fold_left
      (fun b q ->
        {
          min_lat = Float.min b.min_lat q.lat;
          max_lat = Float.max b.max_lat q.lat;
          min_lon = Float.min b.min_lon q.lon;
          max_lon = Float.max b.max_lon q.lon;
        })
      { min_lat = p.lat; max_lat = p.lat; min_lon = p.lon; max_lon = p.lon }
      ps

let in_bbox b p =
  p.lat >= b.min_lat && p.lat <= b.max_lat && p.lon >= b.min_lon
  && p.lon <= b.max_lon

let expand_bbox b ~margin_deg =
  {
    min_lat = Float.max (-90.0) (b.min_lat -. margin_deg);
    max_lat = Float.min 90.0 (b.max_lat +. margin_deg);
    min_lon = b.min_lon -. margin_deg;
    max_lon = b.max_lon +. margin_deg;
  }
