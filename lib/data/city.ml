type t = { name : string; coord : Cisp_geo.Coord.t; population : int }

let make name ~lat ~lon ~population =
  if population < 0 then invalid_arg "City.make: negative population";
  { name; coord = Cisp_geo.Coord.make ~lat ~lon; population }

let pp ppf c =
  Format.fprintf ppf "%s %a pop=%d" c.name Cisp_geo.Coord.pp c.coord c.population

let compare_population_desc a b = Int.compare b.population a.population
