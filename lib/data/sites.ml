module Geodesy = Cisp_geo.Geodesy
module Coord = Cisp_geo.Coord

(* Union-find with path compression. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then parent.(ri) <- rj

let coalesce ?(radius_km = 50.0) cities =
  let arr = Array.of_list cities in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Geodesy.distance_km arr.(i).City.coord arr.(j).City.coord <= radius_km then
        union parent i j
    done
  done;
  let groups = Hashtbl.create n in
  for i = 0 to n - 1 do
    let root = find parent i in
    let members = Option.value (Hashtbl.find_opt groups root) ~default:[] in
    Hashtbl.replace groups root (arr.(i) :: members)
  done;
  (* Walk groups by root index, not hash order: population ties in the
     final sort would otherwise keep table order. *)
  let centers =
    Cisp_util.Tbl.fold_sorted ~compare:Int.compare
      (fun _ members acc ->
        match members with
        | [] -> acc
        | first :: _ ->
        let total = List.fold_left (fun s c -> s + c.City.population) 0 members in
        let weight c =
          (* Guard against all-zero populations (e.g. data centers). *)
          if total = 0 then 1.0 else float_of_int c.City.population
        in
        let wsum = List.fold_left (fun s c -> s +. weight c) 0.0 members in
        let lat = List.fold_left (fun s c -> s +. (weight c *. Coord.lat c.City.coord)) 0.0 members /. wsum in
        let lon = List.fold_left (fun s c -> s +. (weight c *. Coord.lon c.City.coord)) 0.0 members /. wsum in
        let biggest =
          List.fold_left
            (fun best c -> if c.City.population > best.City.population then c else best)
            first members
        in
        City.make biggest.City.name ~lat ~lon ~population:total :: acc)
      groups []
  in
  List.sort City.compare_population_desc centers

let us_population_centers () = coalesce ~radius_km:50.0 Us_cities.all
let eu_population_centers () = coalesce ~radius_km:50.0 Eu_cities.all
