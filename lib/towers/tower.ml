type source = Fcc | Rental | City

type t = {
  id : int;
  position : Cisp_geo.Coord.t;
  height_m : float;
  source : source;
}

let make ~id ~position ~height_m ~source =
  if height_m <= 0.0 then invalid_arg "Tower.make: height_m <= 0";
  { id; position; height_m; source }

let pp ppf t =
  let src = match t.source with Fcc -> "fcc" | Rental -> "rental" | City -> "city" in
  Format.fprintf ppf "tower#%d %a h=%.0fm %s" t.id Cisp_geo.Coord.pp t.position t.height_m src

let usable_height_m t ~fraction =
  if not (fraction > 0.0 && fraction <= 1.0) then
    invalid_arg "Tower.usable_height_m: fraction outside (0,1]";
  t.height_m *. fraction
