module Rng = Cisp_util.Rng
module Units = Cisp_util.Units
module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy
module Dem = Cisp_terrain.Dem
module City = Cisp_data.City

type config = {
  seed : int;
  city_towers_per_100k : float;
  city_radius_km : float;
  corridor_spacing_km : float;
  corridor_max_km : float;
  corridor_jitter_km : float;
  background_count : int;
  min_height_m : float;
  max_height_m : float;
}

let default_config =
  {
    seed = 7;
    city_towers_per_100k = Units.towers_per_100k;
    city_radius_km = 30.0;
    corridor_spacing_km = 20.0;
    corridor_max_km = 1200.0;
    corridor_jitter_km = 3.0;
    background_count = 7000;
    min_height_m = 50.0;
    max_height_m = 350.0;
  }

(* Heights: lognormal body with a clamp; taller structures are rarer.
   Mountainous ground reduces achievable height a bit (harder siting)
   but high ground elevation compensates in line-of-sight terms. *)
let sample_height ?(median = 120.0) ?(tall_frac = 0.12) cfg rng =
  (* Mixture: ordinary towers around the median, plus the tall
     broadcast-mast tail visible in the FCC registry (250 m+). *)
  let h =
    if Rng.float rng 1.0 < tall_frac then Rng.uniform rng 250.0 cfg.max_height_m
    else Rng.lognormal rng (log median) 0.5
  in
  Float.max cfg.min_height_m (Float.min cfg.max_height_m h)

let random_point_near rng center ~radius_km =
  let bearing = Rng.float rng 360.0 in
  (* sqrt for uniform density over the disk, biased slightly inward. *)
  let dist = radius_km *. sqrt (Rng.float rng 1.0) in
  Geodesy.destination center ~bearing_deg:bearing ~distance_km:dist

(* Real towers are sited on local high ground; emulate by sampling a
   few candidate positions and keeping the highest. *)
let high_point dem rng sample_fn =
  let best = ref (sample_fn rng) in
  for _ = 2 to 3 do
    let p = sample_fn rng in
    if Dem.elevation_m dem p > Dem.elevation_m dem !best then best := p
  done;
  !best

let city_cluster cfg rng dem (city : City.t) =
  let count =
    let base = float_of_int city.population /. 100_000.0 *. cfg.city_towers_per_100k in
    max 6 (int_of_float (Float.ceil base))
  in
  (* Cap the very largest metros: the paper randomly subsamples dense
     cells anyway, so extra towers there only burn compute. *)
  let count = min count 80 in
  List.init count (fun _ ->
      let p = high_point dem rng (fun rng -> random_point_near rng city.coord ~radius_km:cfg.city_radius_km) in
      let rugged = Dem.ruggedness dem p in
      let h = sample_height cfg rng *. (if rugged > 600.0 then 0.8 else 1.0) in
      (p, h, Tower.City))

let corridor_towers cfg rng dem (a : City.t) (b : City.t) =
  let d = Geodesy.distance_km a.coord b.coord in
  if d > cfg.corridor_max_km || d < 60.0 then []
  else begin
    let n = int_of_float (d /. cfg.corridor_spacing_km) in
    List.concat
      (List.init n (fun i ->
           let t = float_of_int (i + 1) /. float_of_int (n + 1) in
           let on_path = Geodesy.interpolate a.coord b.coord ~frac:t in
           let p =
             high_point dem rng (fun rng ->
                 let bearing = Rng.float rng 360.0 in
                 let off = Rng.float rng cfg.corridor_jitter_km in
                 Geodesy.destination on_path ~bearing_deg:bearing ~distance_km:off)
           in
           (* Rugged terrain thins corridors out. *)
           let rugged = Dem.ruggedness dem p in
           let keep_prob = if rugged > 900.0 then 0.55 else 0.95 in
           if Rng.float rng 1.0 < keep_prob then
             [ (p, sample_height ~median:160.0 ~tall_frac:0.18 cfg rng, Tower.Fcc) ]
           else []))
  end

let background cfg dem rng (bbox : Coord.bbox) =
  List.init cfg.background_count (fun _ ->
      let p =
        high_point dem rng (fun rng ->
            let lat = Rng.uniform rng bbox.min_lat bbox.max_lat in
            let lon = Rng.uniform rng bbox.min_lon bbox.max_lon in
            Coord.make ~lat ~lon)
      in
      (p, sample_height cfg rng, Tower.Rental))

let generate ?(config = default_config) ~dem ~sites () =
  let rng = Rng.create config.seed in
  let cities = Array.of_list sites in
  let clusters =
    Array.to_list cities |> List.concat_map (fun c -> city_cluster config rng dem c)
  in
  (* Corridors follow a highway-like graph: each city is joined to its
     nearest neighbours, not to every other city. *)
  let corridors =
    let n = Array.length cities in
    let knn = 8 in
    let wanted = Hashtbl.create (n * knn) in
    for i = 0 to n - 1 do
      let dists =
        Array.init n (fun j ->
            (Geodesy.distance_km cities.(i).City.coord cities.(j).City.coord, j))
      in
      Array.sort
        (fun (da, ja) (db, jb) ->
          match Float.compare da db with 0 -> Int.compare ja jb | c -> c)
        dists;
      let count = min knn (n - 1) in
      for r = 1 to count do
        let _, j = dists.(r) in
        let key = (min i j, max i j) in
        Hashtbl.replace wanted key ()
      done
    done;
    (* [rng] is consumed per corridor, so corridors must come in a
       fixed order — hash order would tie tower placement to the
       table's insertion history. *)
    Cisp_util.Tbl.fold_sorted
      ~compare:(fun (ai, aj) (bi, bj) ->
        match Int.compare ai bi with 0 -> Int.compare aj bj | c -> c)
      (fun (i, j) () acc -> corridor_towers config rng dem cities.(i) cities.(j) :: acc)
      wanted []
    |> List.concat
  in
  let bbox =
    Coord.expand_bbox
      (Coord.bbox_of_points (List.map (fun (c : City.t) -> c.coord) sites))
      ~margin_deg:1.0
  in
  let rural = background config dem rng bbox in
  List.mapi
    (fun id (position, height_m, source) -> Tower.make ~id ~position ~height_m ~source)
    (clusters @ corridors @ rural)
