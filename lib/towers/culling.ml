module Rng = Cisp_util.Rng

type config = {
  fcc_min_height_m : float;
  cell_deg : float;
  max_per_cell : int;
  sample_seed : int;
}

let default_config =
  { fcc_min_height_m = 100.0; cell_deg = 0.5; max_per_cell = 50; sample_seed = 11 }

let apply ?(config = default_config) towers =
  Cisp_util.Telemetry.with_span "towers.culling" (fun () ->
  let eligible =
    List.filter
      (fun (t : Tower.t) ->
        match t.source with
        | Tower.Rental | Tower.City -> true
        | Tower.Fcc -> t.height_m >= config.fcc_min_height_m)
      towers
  in
  (* Group by 0.5-degree cell and subsample over-dense cells. *)
  let cells : (int * int, Tower.t list ref) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (t : Tower.t) ->
      let ci = int_of_float (Float.floor (Cisp_geo.Coord.lat t.position /. config.cell_deg)) in
      let cj = int_of_float (Float.floor (Cisp_geo.Coord.lon t.position /. config.cell_deg)) in
      match Hashtbl.find_opt cells (ci, cj) with
      | Some bucket -> bucket := t :: !bucket
      | None -> Hashtbl.add cells (ci, cj) (ref [ t ]))
    eligible;
  let rng = Rng.create config.sample_seed in
  (* Cells must be visited in a fixed order: [rng] is consumed as we
     go, so hash-order iteration would tie the surviving towers to the
     table's insertion history. *)
  let out =
    Cisp_util.Tbl.fold_sorted
      ~compare:(fun (ai, aj) (bi, bj) ->
        match Int.compare ai bi with 0 -> Int.compare aj bj | c -> c)
      (fun _ bucket acc ->
        let ts = Array.of_list !bucket in
        if Array.length ts <= config.max_per_cell then Array.to_list ts @ acc
        else Array.to_list (Rng.sample rng ts config.max_per_cell) @ acc)
      cells []
  in
  (* Stable order for reproducibility downstream. *)
  let kept = List.sort (fun (a : Tower.t) (b : Tower.t) -> Int.compare a.id b.id) out in
  if Cisp_util.Telemetry.enabled () then begin
    Cisp_util.Telemetry.add "culling.towers_in" (List.length towers);
    Cisp_util.Telemetry.add "culling.towers_kept" (List.length kept)
  end;
  kept)
