module Rng = Cisp_util.Rng
module Geodesy = Cisp_geo.Geodesy
module Graph = Cisp_graph.Graph
module Dijkstra = Cisp_graph.Dijkstra

type knowledge = Unknown | Acquired of float | Rejected

type model = {
  acquisition_prob : Tower.t -> float;
  height_lo : float;
  height_hi : float;
  seed : int;
}

let default_model =
  {
    acquisition_prob =
      (fun (t : Tower.t) ->
        match t.source with Tower.Rental -> 0.85 | Tower.City -> 0.7 | Tower.Fcc -> 0.6);
    height_lo = 0.4;
    height_hi = 1.0;
    seed = 17;
  }

type t = {
  hops : Hops.t;
  model : model;
  knowledge : knowledge array;         (* per registry tower *)
  (* Swathe subgraph: nodes are [0] = src site, [1] = dst site,
     [2..] = towers; [sub_tower.(k)] is the registry index of subgraph
     node k + 2. *)
  sub_tower : int array;
  edges : (int * int * float) list;    (* subgraph edges *)
  n_sub : int;
}

let swathe_km = 60.0

let create ~hops ~src ~dst ~model =
  let sites = hops.Hops.sites in
  let a = sites.(src).Cisp_data.City.coord and b = sites.(dst).Cisp_data.City.coord in
  let d_ab = Geodesy.distance_km a b in
  let in_swathe p =
    Geodesy.distance_km a p <= d_ab +. 80.0
    && Geodesy.distance_km b p <= d_ab +. 80.0
    && Geodesy.cross_track_km p ~path_start:a ~path_end:b <= swathe_km
  in
  (* Select towers in the swathe and index them. *)
  let towers = hops.Hops.towers in
  let selected = ref [] in
  Array.iteri (fun k (tw : Tower.t) -> if in_swathe tw.position then selected := k :: !selected) towers;
  let sub_tower = Array.of_list (List.rev !selected) in
  let node_of = Hashtbl.create (Array.length sub_tower) in
  (* subgraph node ids: 0 = src, 1 = dst, 2.. towers *)
  Hashtbl.replace node_of src 0;
  Hashtbl.replace node_of dst 1;
  Array.iteri (fun k reg -> Hashtbl.replace node_of (Hops.tower_node hops reg) (k + 2)) sub_tower;
  (* Pull the relevant edges out of the full hop graph once. *)
  let edges = ref [] in
  (* fixed node order so the subgraph's edge order (and any
     equal-length tie-breaks downstream) is reproducible *)
  Cisp_util.Tbl.iter_sorted ~compare:Int.compare
    (fun old_node sub_node ->
      Graph.iter_succ hops.Hops.graph old_node (fun e ->
          match Hashtbl.find_opt node_of e.Graph.dst with
          | Some sub_dst when sub_node < sub_dst ->
            edges := (sub_node, sub_dst, e.Graph.weight) :: !edges
          | Some _ | None -> ()))
    node_of;
  {
    hops;
    model;
    knowledge = Array.make (Array.length towers) Unknown;
    sub_tower;
    edges = !edges;
    n_sub = Array.length sub_tower + 2;
  }

let confirm t ~tower k = t.knowledge.(tower) <- k

(* Height fraction a hop of length [d] requires of both towers. *)
let required_fraction t d =
  let range = t.hops.Hops.config.Hops.los_params.Cisp_rf.Los.max_range_km in
  Float.min 0.8 (0.25 +. (0.5 *. d /. range))

(* Shortest path in the subgraph keeping only usable towers.
   [usable k] decides for subgraph tower node k+2; sites always pass.
   Heights: [height k] gives the tower's available fraction. *)
let shortest t ~usable ~height =
  let g = Graph.create t.n_sub in
  List.iter
    (fun (u, v, w) ->
      let ok node =
        if node < 2 then true
        else begin
          let k = node - 2 in
          usable k && height k >= required_fraction t w
        end
      in
      if ok u && ok v then Graph.add_undirected g u v w)
    t.edges;
  match Dijkstra.shortest_path g ~src:0 ~dst:1 with
  | None -> None
  | Some (d, path) ->
    (* Translate back to registry tower indices (sites as -1 / -2). *)
    let translate = function
      | 0 -> -1
      | 1 -> -2
      | n -> t.sub_tower.(n - 2)
    in
    Some (d, List.map translate path)

let sample_paths ?(samples = 200) t =
  let rng = Rng.create t.model.seed in
  let found : (int list, float) Hashtbl.t = Hashtbl.create 32 in
  for _ = 1 to samples do
    let drawn_height = Array.make (Array.length t.sub_tower) 0.0 in
    let drawn_ok = Array.make (Array.length t.sub_tower) false in
    Array.iteri
      (fun k reg ->
        match t.knowledge.(reg) with
        | Rejected -> ()
        | Acquired h ->
          drawn_ok.(k) <- true;
          drawn_height.(k) <- h
        | Unknown ->
          let tw = t.hops.Hops.towers.(reg) in
          if Rng.float rng 1.0 < t.model.acquisition_prob tw then begin
            drawn_ok.(k) <- true;
            drawn_height.(k) <- Rng.uniform rng t.model.height_lo t.model.height_hi
          end)
      t.sub_tower;
    match shortest t ~usable:(fun k -> drawn_ok.(k)) ~height:(fun k -> drawn_height.(k)) with
    | None -> ()
    | Some (d, path) ->
      (match Hashtbl.find_opt found path with
      | Some d' when d' <= d -> ()
      | _ -> Hashtbl.replace found path d)
  done;
  (* equal-length paths tie-break on the path itself, not table order *)
  Cisp_util.Tbl.sorted_bindings found
  |> List.map (fun (path, d) -> (d, path))
  |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)

type stats = {
  viability : float;
  length_p50_km : float;
  length_p95_km : float;
  distinct_paths : int;
}

let stats ?(samples = 200) t =
  let rng = Rng.create (t.model.seed + 1) in
  let lengths = ref [] in
  let hits = ref 0 in
  let paths : (int list, unit) Hashtbl.t = Hashtbl.create 32 in
  for _ = 1 to samples do
    let n = Array.length t.sub_tower in
    let ok = Array.make n false and h = Array.make n 0.0 in
    Array.iteri
      (fun k reg ->
        match t.knowledge.(reg) with
        | Rejected -> ()
        | Acquired hf ->
          ok.(k) <- true;
          h.(k) <- hf
        | Unknown ->
          let tw = t.hops.Hops.towers.(reg) in
          if Rng.float rng 1.0 < t.model.acquisition_prob tw then begin
            ok.(k) <- true;
            h.(k) <- Rng.uniform rng t.model.height_lo t.model.height_hi
          end)
      t.sub_tower;
    match shortest t ~usable:(fun k -> ok.(k)) ~height:(fun k -> h.(k)) with
    | None -> ()
    | Some (d, path) ->
      incr hits;
      lengths := d :: !lengths;
      Hashtbl.replace paths path ()
  done;
  let ls = Array.of_list !lengths in
  {
    viability = float_of_int !hits /. float_of_int samples;
    length_p50_km = (if Array.length ls = 0 then nan else Cisp_util.Stats.percentile ls 50.0);
    length_p95_km = (if Array.length ls = 0 then nan else Cisp_util.Stats.percentile ls 95.0);
    distinct_paths = Hashtbl.length paths;
  }

let committed_path t =
  let usable k =
    match t.knowledge.(t.sub_tower.(k)) with Acquired _ -> true | Unknown | Rejected -> false
  in
  let height k =
    match t.knowledge.(t.sub_tower.(k)) with Acquired h -> h | Unknown | Rejected -> 0.0
  in
  shortest t ~usable ~height
