(** Step 1 of the cISP design (paper §3.1, §4): feasible tower-tower
    hops and shortest city-city microwave links.

    Builds a graph whose nodes are the sites (population centers)
    followed by the culled towers, with an edge for every pair that
    passes the line-of-sight + range test, then extracts for each pair
    of sites the shortest "link": its length [m_ij] (latency input to
    step 2) and its tower count (cost input [c_ij]). *)

type config = {
  los_params : Cisp_rf.Los.params;
  height_fraction : float;      (** usable fraction of tower height (§6.5) *)
  site_antenna_m : float;       (** antenna height at the site itself *)
  site_attach_radius_km : float;(** how far a site reaches for its first tower *)
}

val default_config : config

type t = {
  config : config;
  sites : Cisp_data.City.t array;
  towers : Tower.t array;
  graph : Cisp_graph.Graph.t;
      (** node ids: [0 .. n_sites-1] are sites, [n_sites + k] is tower [k] *)
  n_sites : int;
  feasible_hops : int;          (** tower-tower edges that passed the check *)
  mutable engine : Cisp_graph.Query.t option;
      (** lazily-built query engine over the tower graph (a contraction
          hierarchy on realistic instances, per-source Dijkstra on tiny
          or degenerately dense ones — {!Cisp_graph.Query.prepare}'s
          Auto policy); built by the first {!all_links} (or
          {!shortest_link} after it) and reused for every later
          distance query *)
}

val build :
  ?config:config ->
  cache:Cisp_terrain.Dem_cache.t ->
  sites:Cisp_data.City.t list ->
  towers:Tower.t list ->
  unit -> t

val tower_node : t -> int -> int
(** Graph node id of tower index [k]. *)

val is_tower_node : t -> int -> bool

type link = {
  src : int;                    (** site index *)
  dst : int;                    (** site index *)
  distance_km : float;          (** MW path length, the paper's m_ij *)
  geodesic_km : float;          (** site-to-site great-circle distance *)
  node_path : int list;         (** graph nodes from src site to dst site *)
  tower_count : int;            (** interior tower nodes = cost c_ij in towers *)
}

val link_stretch : link -> float
(** distance_km / geodesic_km. *)

val hops_of_link : link -> (int * int) list
(** Consecutive node pairs along the path (physical hops). *)

val shortest_link : t -> src:int -> dst:int -> link option
(** Single-pair shortest MW link, if the tower graph connects them.
    Served by the prepared engine once one exists (same bits as
    Dijkstra); plain Dijkstra before that. *)

val all_links : t -> link option array array
(** [all_links t].(i).(j) for all site pairs (symmetric up to path
    direction, diagonal [None]).  Runs the query engine's many-to-many
    over the site nodes (building the engine on first call — CH's
    bucket algorithm on realistic tower graphs); distances and paths
    are bit-identical to the one-Dijkstra-per-site sweep it
    replaces. *)
