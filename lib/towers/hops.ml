module Geodesy = Cisp_geo.Geodesy
module Grid = Cisp_geo.Grid
module Dem_cache = Cisp_terrain.Dem_cache
module Los = Cisp_rf.Los
module Graph = Cisp_graph.Graph
module Query = Cisp_graph.Query
module City = Cisp_data.City

type config = {
  los_params : Los.params;
  height_fraction : float;
  site_antenna_m : float;
  site_attach_radius_km : float;
}

let default_config =
  {
    los_params = Los.default_params;
    height_fraction = 1.0;
    site_antenna_m = 80.0;
    site_attach_radius_km = 40.0;
  }

type t = {
  config : config;
  sites : City.t array;
  towers : Tower.t array;
  graph : Graph.t;
  n_sites : int;
  feasible_hops : int;
  mutable engine : Query.t option;
}

let tower_node t k = t.n_sites + k
let is_tower_node t v = v >= t.n_sites

let build ?(config = default_config) ~cache ~sites ~towers () =
  Cisp_util.Telemetry.with_span "hops.build" (fun () ->
  let sites = Array.of_list sites in
  let towers = Array.of_list towers in
  let n_sites = Array.length sites in
  let n = n_sites + Array.length towers in
  let graph = Graph.create n in
  let endpoint_of_tower (tw : Tower.t) =
    {
      Los.position = tw.position;
      ground_m = Dem_cache.elevation_m cache tw.position;
      antenna_m = Tower.usable_height_m tw ~fraction:config.height_fraction;
    }
  in
  let endpoint_of_site (c : City.t) =
    {
      Los.position = c.coord;
      ground_m = Dem_cache.elevation_m cache c.coord;
      antenna_m = config.site_antenna_m;
    }
  in
  (* Index towers spatially for range queries; freeze once built so
     the sweeps probe flat arrays. *)
  let grid = Grid.create ~cell_deg:0.5 in
  Array.iteri (fun k (tw : Tower.t) -> Grid.add grid tw.position k) towers;
  Grid.freeze grid;
  (* Endpoints are pair-invariant: build them once per tower, O(towers),
     instead of once per tested pair, O(pairs). *)
  let tower_eps = Array.map endpoint_of_tower towers in
  let pool = Cisp_util.Pool.get () in
  (* Tower-tower hops: each unordered pair within range tested once.
     The LOS + Fresnel walks are pure (the DEM cache is domain-safe),
     so feasibility is decided in parallel per source tower; edges are
     then inserted sequentially in the same (k, nearby-iteration)
     order a sequential sweep would produce, keeping adjacency-list
     order — and hence any downstream shortest-path tie-break —
     bit-identical. *)
  let n_towers = Array.length towers in
  let tower_edges = Array.make n_towers [] in
  (* Tile-granular scheduling: the sweep visits towers in Z-curve
     (Morton) order of their grid cell, so each contiguous chunk of
     the parallel range works one compact patch of terrain.  In
     registry order a chunk interleaves towers from all over the map
     and its DEM working set is the union of every profile it walks —
     the per-domain L1 cache thrashes and every domain falls through
     to the shared L2 at once.  Tile order keeps a chunk's profile
     cells L1/L2-resident across its towers.  Results are keyed by the
     original tower index, so traversal order never reaches the
     output. *)
  let sweep_order =
    let spread16 x =
      let x = x land 0xFFFF in
      let x = (x lor (x lsl 8)) land 0x00FF00FF in
      let x = (x lor (x lsl 4)) land 0x0F0F0F0F in
      let x = (x lor (x lsl 2)) land 0x33333333 in
      (x lor (x lsl 1)) land 0x55555555
    in
    let morton (tw : Tower.t) =
      let ci, cj = Grid.cell_of grid tw.position in
      (* cell indices are bounded by +/-90/cell_deg and +/-180/cell_deg;
         the 0x8000 bias keeps both coordinates in 16 unsigned bits for
         any cell_deg >= 0.01. *)
      (spread16 (ci + 0x8000) lsl 1) lor spread16 (cj + 0x8000)
    in
    let keys = Array.map morton towers in
    let order = Array.init n_towers Fun.id in
    Array.sort
      (fun a b ->
        let c = Int.compare keys.(a) keys.(b) in
        if c <> 0 then c else Int.compare a b)
      order;
    order
  in
  Cisp_util.Telemetry.with_span "hops.tower_los" (fun () ->
      Cisp_util.Pool.parallel_for pool ~n:n_towers (fun idx ->
          let k = sweep_order.(idx) in
          let tw = towers.(k) in
          let ep_k = tower_eps.(k) in
          let acc = ref [] in
          Grid.iter_nearby grid tw.position ~radius_km:config.los_params.Los.max_range_km
            (fun _ k' ->
              if k' > k then begin
                if Cisp_util.Telemetry.enabled () then
                  Cisp_util.Telemetry.incr "hops.los_tests";
                if Los.feasible_cached ~params:config.los_params ~cache ep_k tower_eps.(k')
                then begin
                  let d = Geodesy.distance_km tw.position towers.(k').position in
                  acc := (k', d) :: !acc
                end
              end);
          tower_edges.(k) <- List.rev !acc));
  let feasible_hops = ref 0 in
  Array.iteri
    (fun k edges ->
      List.iter
        (fun (k', d) ->
          Graph.add_undirected graph (n_sites + k) (n_sites + k') d;
          incr feasible_hops)
        edges)
    tower_edges;
  (* Site-tower attachment: a site reaches nearby towers directly.  The
     paper observes each site hosts plenty of towers; the attachment
     radius stands in for intra-city connectivity whose latency is
     still counted via the edge length.  Same parallel-test /
     sequential-insert split as above. *)
  let site_edges = Array.make n_sites [] in
  let relaxed = { config.los_params with Los.min_range_km = 0.05 } in
  Cisp_util.Telemetry.with_span "hops.site_attach" (fun () ->
      Cisp_util.Pool.parallel_for pool ~n:n_sites (fun i ->
          let c = sites.(i) in
          let ep_site = endpoint_of_site c in
          let acc = ref [] in
          Grid.iter_nearby grid c.coord ~radius_km:config.site_attach_radius_km
            (fun _ k ->
              if Cisp_util.Telemetry.enabled () then
                Cisp_util.Telemetry.incr "hops.los_tests";
              if Los.feasible_cached ~params:relaxed ~cache ep_site tower_eps.(k) then begin
                let d = Geodesy.distance_km c.coord towers.(k).position in
                acc := (k, d) :: !acc
              end);
          site_edges.(i) <- List.rev !acc));
  Array.iteri
    (fun i edges ->
      List.iter (fun (k, d) -> Graph.add_undirected graph i (n_sites + k) d) edges)
    site_edges;
  if Cisp_util.Telemetry.enabled () then begin
    Cisp_util.Telemetry.add "hops.towers" n_towers;
    Cisp_util.Telemetry.add "hops.feasible_hops" !feasible_hops
  end;
  { config; sites; towers; graph; n_sites; feasible_hops = !feasible_hops; engine = None })

type link = {
  src : int;
  dst : int;
  distance_km : float;
  geodesic_km : float;
  node_path : int list;
  tower_count : int;
}

let link_stretch l = if l.geodesic_km > 0.0 then l.distance_km /. l.geodesic_km else 1.0

let hops_of_link l =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  pairs l.node_path

let link_of_path t ~src ~dst = function
  | None -> None
  | Some (distance_km, node_path) ->
    let tower_count = List.length (List.filter (fun v -> is_tower_node t v) node_path) in
    Some
      {
        src;
        dst;
        distance_km;
        geodesic_km = Geodesy.distance_km t.sites.(src).coord t.sites.(dst).coord;
        node_path;
        tower_count;
      }

(* The query engine over the tower graph, built on first demand (an
   all-pairs link extraction; the build amortizes across it and every
   later query).  Auto mode: realistic tower graphs (tens of thousands
   of nodes, average degree in the tens) get the contraction
   hierarchy; tiny or pathologically dense ones keep per-source
   Dijkstra, which genuinely wins there. *)
let engine t =
  match t.engine with
  | Some q -> q
  | None ->
    let q = Query.prepare t.graph in
    t.engine <- Some q;
    q

let shortest_link t ~src ~dst =
  match t.engine with
  | Some q -> link_of_path t ~src ~dst (Query.shortest_path q ~src ~dst)
  | None ->
    (* No engine yet: a lone pair is cheaper as one bounded Dijkstra
       than as a full CH build. *)
    link_of_path t ~src ~dst (Query.shortest_path_graph t.graph ~src ~dst)

let all_links t =
  Cisp_util.Telemetry.with_span "hops.all_links" (fun () ->
      let n = t.n_sites in
      (* Many-to-many on the query engine (CH buckets or pool-parallel
         per-source Dijkstra, per the Auto policy); either way the
         distances and paths match a per-site Dijkstra sweep
         bit-for-bit. *)
      let ids = Array.init n Fun.id in
      let routes = Query.many_to_many_paths (engine t) ~sources:ids ~targets:ids in
      let out = Array.make_matrix n n None in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if dst <> src then out.(src).(dst) <- link_of_path t ~src ~dst routes.(src).(dst)
        done
      done;
      out)
