(** k-disjoint shortest paths for multipath routing and fast failover.

    Generalizes the remove-and-repeat greedy of {!Disjoint.successive}
    to a pluggable removal policy: after each shortest-path round a
    caller-chosen piece of the found path is deleted from a working
    copy and the search repeats.  Edge- and node-disjoint modes cover
    the two classic notions; {!k_paths} tops the disjoint set up with
    Yen's ranked paths when the graph cannot supply [k] fully disjoint
    routes, so a failover table always has [k] candidates where the
    graph allows [k] distinct simple paths at all.

    Every function leaves the input graph unmodified and is
    deterministic (pure function of the graph and arguments).  Each
    accepts an optional prepared {!Query.t}: when it was prepared from
    the input graph itself, the first round (the only one that sees
    the unmutated graph) is answered by the engine; later rounds
    always run plain Dijkstra on the working copy.  Results are
    bit-identical with or without the engine. *)

type disjointness =
  | Edge_disjoint
      (** successive paths share no undirected node pair (all parallel
          edges between a used pair are consumed at once) *)
  | Node_disjoint
      (** successive paths additionally share no interior node *)

val successive :
  ?query:Query.t ->
  Graph.t -> src:int -> dst:int -> k:int ->
  remove:(Graph.t -> float * int list -> unit) ->
  (float * int list) list
(** [successive g ~src ~dst ~k ~remove] finds up to [k] (length, node
    path) results: each round runs Dijkstra on a private working copy,
    reports the path, then applies [remove] to the working copy.
    Stops early when [dst] becomes unreachable.  [remove] must delete
    at least one edge of the reported path per round or the same path
    is reported again (bounded by [k]).  Raises [Invalid_argument] if
    [k < 0]. *)

val k_disjoint :
  ?disjointness:disjointness ->
  ?query:Query.t ->
  Graph.t -> src:int -> dst:int -> k:int ->
  (float * int list) list
(** Up to [k] pairwise disjoint shortest paths, greedily shortest
    first (lengths are monotone nondecreasing).  [disjointness]
    defaults to [Edge_disjoint].  [Node_disjoint] removes every
    interior node of each found path (its edges with it) and also the
    path's own edges, so a degenerate direct [src]-[dst] edge is
    consumed too. *)

val k_paths :
  ?disjointness:disjointness ->
  ?query:Query.t ->
  Graph.t -> src:int -> dst:int -> k:int ->
  (float * int list) list
(** {!k_disjoint} results first (the disjoint prefix is the failover
    priority order), then — if fewer than [k] disjoint routes exist —
    additional distinct simple paths from {!Kshortest.yen}, cheapest
    first, up to [k] total.  The combined list is therefore sorted by
    priority, not necessarily by length. *)
