(* Unified shortest-path facade over the three engines.

   [prepare] picks the engine once per graph: plain Dijkstra below the
   size threshold (preprocessing would cost more than it saves) and on
   dense graphs (contraction of a near-clique drowns in witness work
   and shortcuts — per-source Dijkstra is genuinely cheaper there),
   the contraction hierarchy above it; ALT is an explicit opt-in for
   point-to-point workloads that want preprocessing lighter than CH.
   Every engine returns distances bit-identical to {!Dijkstra.run}, so
   callers may switch engines (or thresholds) without perturbing a
   single downstream float.

   Working copies that mutate their graph (Yen spur searches, disjoint
   path removal, failure replays) must not reuse a prepared engine —
   they route through {!shortest_path_graph}, the plain-Dijkstra
   fallback on the current graph state. *)

module Telemetry = Cisp_util.Telemetry

type mode = Auto | Force_plain | Force_ch | Force_alt

type engine = Plain | Ch_engine of Ch.t | Alt_engine of Landmarks.t

type t = { g : Graph.t; engine : engine }

let default_threshold = 512

(* Above this average degree Auto refuses the hierarchy: CH
   preprocessing on a near-clique (the dense tower graphs reach
   average degree in the hundreds) costs far more than the per-source
   Dijkstra sweeps it would replace. *)
let default_max_avg_degree = 64.0

let dense g =
  let n = Graph.node_count g in
  n > 0
  && float_of_int (Graph.edge_count g) /. float_of_int n > default_max_avg_degree

let prepare ?(mode = Auto) ?(threshold = default_threshold) g =
  let engine =
    match mode with
    | Force_plain -> Plain
    | Force_ch -> Ch_engine (Ch.build g)
    | Force_alt -> Alt_engine (Landmarks.build g)
    | Auto ->
      if Graph.node_count g < threshold || dense g then Plain else Ch_engine (Ch.build g)
  in
  if Telemetry.enabled () then
    Telemetry.incr
      (match engine with
      | Plain -> "query.prepare.plain"
      | Ch_engine _ -> "query.prepare.ch"
      | Alt_engine _ -> "query.prepare.alt");
  { g; engine }

let graph t = t.g

let shortest_path_graph g ~src ~dst = Dijkstra.shortest_path g ~src ~dst

let shortest_path t ~src ~dst =
  match t.engine with
  | Plain -> Dijkstra.shortest_path t.g ~src ~dst
  | Ch_engine ch -> Ch.shortest_path ch ~src ~dst
  | Alt_engine alt -> Landmarks.shortest_path alt ~src ~dst

let distance t ~src ~dst =
  match t.engine with
  | Plain -> Dijkstra.distance t.g ~src ~dst
  | Ch_engine ch -> Ch.distance ch ~src ~dst
  | Alt_engine alt -> Landmarks.distance alt ~src ~dst

(* Plain-engine many-to-many: one Dijkstra per source (parallel on the
   pool via all_pairs_results), rows sliced to the target set. *)
let plain_rows g ~sources = Dijkstra.all_pairs_results g ~sources

let many_to_many t ~sources ~targets =
  match t.engine with
  | Ch_engine ch -> Ch.many_to_many ch ~sources ~targets
  | Plain | Alt_engine _ ->
    (* ALT has no bucket structure; per-source Dijkstra is the honest
       baseline for matrix workloads on a point-to-point engine. *)
    let rows = plain_rows t.g ~sources in
    Array.map
      (fun (r : Dijkstra.result) -> Array.map (fun dst -> r.Dijkstra.dist.(dst)) targets)
      rows

let many_to_many_paths t ~sources ~targets =
  match t.engine with
  | Ch_engine ch -> Ch.many_to_many_paths ch ~sources ~targets
  | Plain | Alt_engine _ ->
    let rows = plain_rows t.g ~sources in
    Array.map
      (fun (r : Dijkstra.result) ->
        Array.map
          (fun dst ->
            if Float.equal r.Dijkstra.dist.(dst) infinity then None
            else Some (r.Dijkstra.dist.(dst), Dijkstra.path r ~dst))
          targets)
      rows

let all_pairs t =
  let n = Graph.node_count t.g in
  let ids = Array.init n Fun.id in
  many_to_many t ~sources:ids ~targets:ids
