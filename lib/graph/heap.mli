(** Binary min-heap keyed by float priority.

    The workhorse behind Dijkstra and the discrete-event simulator's
    event queue. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h priority v]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val min_key : 'a t -> float
(** Priority of the minimum element.  Raises [Invalid_argument] on an
    empty heap. *)

val pop_min : 'a t -> 'a
(** Remove the minimum element and return its payload alone.  Combined
    with {!min_key} this is the allocation-free form of {!pop}: no
    option, no key/payload pair.  Raises [Invalid_argument] on an
    empty heap. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
