(* Monomorphic min-heap over (float key, int payload).  Same sift
   logic as {!Heap} — pop order for any key sequence is identical —
   but both columns are flat unboxed arrays, so push/pop touch no heap
   blocks at all.  This is the priority queue of the shortest-path
   inner loops (Dijkstra relaxation, CH witness searches and upward
   queries), which run under the zero-alloc contract (L10). *)

type t = {
  mutable keys : float array;
  mutable vals : int array;
  mutable size : int;
}

(* [?capacity] without default sugar: a `?(capacity = 64)` default is
   desugared to a let binding between the parameter lambdas, so every
   call would allocate a closure for the remaining `()` parameter. *)
let create ?capacity () =
  let capacity = match capacity with Some c -> max 1 c | None -> 64 in
  { keys = Array.make capacity 0.0; vals = Array.make capacity 0; size = 0 }

let length h = h.size
let is_empty h = h.size = 0
let clear h = h.size <- 0

let[@cisp.alloc_ok "amortized: doubling growth of the preallocated key/payload columns"] grow
    h =
  let cap = Array.length h.keys in
  let keys = Array.make (cap * 2) 0.0 in
  let vals = Array.make (cap * 2) 0 in
  Array.blit h.keys 0 keys 0 cap;
  Array.blit h.vals 0 vals 0 cap;
  h.keys <- keys;
  h.vals <- vals

let[@inline] swap h i j =
  let k = h.keys.(i) in
  h.keys.(i) <- h.keys.(j);
  h.keys.(j) <- k;
  let v = h.vals.(i) in
  h.vals.(i) <- h.vals.(j);
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && h.keys.(l) < h.keys.(i) then l else i in
  let smallest =
    if r < h.size && h.keys.(r) < h.keys.(smallest) then r else smallest
  in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let push h key v =
  if h.size = Array.length h.keys then grow h;
  h.keys.(h.size) <- key;
  h.vals.(h.size) <- v;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let[@inline] min_key h =
  if h.size = 0 then invalid_arg "Iheap.min_key: empty heap";
  h.keys.(0)

let pop_min h =
  if h.size = 0 then invalid_arg "Iheap.pop_min: empty heap";
  let v = h.vals.(0) in
  h.size <- h.size - 1;
  h.keys.(0) <- h.keys.(h.size);
  h.vals.(0) <- h.vals.(h.size);
  if h.size > 0 then sift_down h 0;
  v
