type edge = { dst : int; weight : float; tag : int }
type t = { adj : edge list array; mutable edges : int }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative node count";
  { adj = Array.make n []; edges = 0 }

let node_count g = Array.length g.adj
let edge_count g = g.edges

let add_edge ?(tag = -1) g u v w =
  if w < 0.0 then invalid_arg "Graph.add_edge: negative weight";
  if not (u >= 0 && u < node_count g && v >= 0 && v < node_count g) then
    invalid_arg (Printf.sprintf "Graph.add_edge: node out of range %d-%d" u v);
  g.adj.(u) <- { dst = v; weight = w; tag } :: g.adj.(u);
  g.edges <- g.edges + 1

let add_undirected ?tag g u v w =
  add_edge ?tag g u v w;
  add_edge ?tag g v u w

let succ g u = g.adj.(u)
let iter_succ g u f = List.iter f g.adj.(u)

let remove_edges g keep =
  for u = 0 to node_count g - 1 do
    let before = List.length g.adj.(u) in
    g.adj.(u) <- List.filter (keep u) g.adj.(u);
    g.edges <- g.edges - (before - List.length g.adj.(u))
  done

let copy g = { adj = Array.copy g.adj; edges = g.edges }

let of_edges n edges =
  let g = create n in
  List.iter (fun (u, v, w) -> add_undirected g u v w) edges;
  g
