(** Successive node-disjoint shortest paths (paper Fig 4b).

    The paper evaluates bandwidth headroom on a long link by repeatedly
    finding the shortest tower path, deleting the interior towers it
    uses, and repeating.  This module implements exactly that greedy
    process on an arbitrary graph. *)

val successive :
  ?query:Query.t ->
  Graph.t -> src:int -> dst:int -> rounds:int ->
  protected:(int -> bool) ->
  (float * int list) list
(** [successive g ~src ~dst ~rounds ~protected] returns up to [rounds]
    (length, node path) results.  After each round every interior node
    of the found path with [protected v = false] is removed (all its
    edges dropped).  Stops early when [dst] becomes unreachable.
    [src] and [dst] are always kept.  The input graph is not
    modified.  [query] (if prepared from [g] itself) answers the first
    round; pruned rounds always run plain Dijkstra on the working
    copy.  Results are bit-identical with or without it. *)
