type result = { dist : float array; prev : int array }

let run_internal g ~src ~stop_at =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if settled.(u) then loop ()
      else begin
        settled.(u) <- true;
        if Some u <> stop_at then begin
          Graph.iter_succ g u (fun e ->
              let nd = d +. e.Graph.weight in
              if nd < dist.(e.Graph.dst) then begin
                dist.(e.Graph.dst) <- nd;
                prev.(e.Graph.dst) <- u;
                Heap.push heap nd e.Graph.dst
              end);
          loop ()
        end
      end
  in
  loop ();
  { dist; prev }

let run g ~src = run_internal g ~src ~stop_at:None
let run_to g ~src ~dst = run_internal g ~src ~stop_at:(Some dst)

let path r ~dst =
  if Float.equal r.dist.(dst) infinity then []
  else begin
    let rec build acc v = if v = -1 then acc else build (v :: acc) r.prev.(v) in
    build [] dst
  end

let distance g ~src ~dst =
  let r = run_to g ~src ~dst in
  if Float.equal r.dist.(dst) infinity then None else Some r.dist.(dst)

let shortest_path g ~src ~dst =
  let r = run_to g ~src ~dst in
  if Float.equal r.dist.(dst) infinity then None else Some (r.dist.(dst), path r ~dst)

(* Each source's Dijkstra is independent and only reads the graph, so
   the rows compute in parallel; every row is bit-identical to the
   sequential run. *)
let all_pairs_results g ~sources =
  Cisp_util.Telemetry.with_span "apsp" (fun () ->
      let n = Array.length sources in
      Cisp_util.Telemetry.add "apsp.sources" n;
      let out = Array.make n { dist = [||]; prev = [||] } in
      Cisp_util.Pool.parallel_for (Cisp_util.Pool.get ()) ~n (fun k ->
          out.(k) <- run g ~src:sources.(k));
      out)

let all_pairs g =
  let n = Graph.node_count g in
  let rs = all_pairs_results g ~sources:(Array.init n Fun.id) in
  Array.map (fun r -> r.dist) rs
