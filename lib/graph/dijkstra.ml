type result = { dist : float array; prev : int array }

(* Relax every edge out of the settled node [u] at distance [d]:
   structural recursion over the adjacency list rather than
   [Graph.iter_succ], so the relaxation sweep builds no closure — the
   APSP rows run inside pool workers under a per-iteration allocation
   budget (L11). *)
let rec relax heap dist prev d u = function
  | [] -> ()
  | (e : Graph.edge) :: rest ->
    let nd = d +. e.Graph.weight in
    if nd < dist.(e.Graph.dst) then begin
      dist.(e.Graph.dst) <- nd;
      prev.(e.Graph.dst) <- u;
      Iheap.push heap nd e.Graph.dst
    end;
    relax heap dist prev d u rest

(* [stop_at] is a node index, or -1 for a full single-source run: the
   option wrapper the loop used to re-test per pop is gone along with
   the allocating [Heap.pop].  The queue is an {!Iheap} — same pop
   order as {!Heap} for any key sequence, but pushes box nothing. *)
let run_internal g ~src ~stop_at =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Iheap.create () in
  dist.(src) <- 0.0;
  Iheap.push heap 0.0 src;
  let finished = ref false in
  while (not !finished) && Iheap.length heap > 0 do
    let d = Iheap.min_key heap in
    let u = Iheap.pop_min heap in
    if not settled.(u) then begin
      settled.(u) <- true;
      if u = stop_at then finished := true
      else relax heap dist prev d u (Graph.succ g u)
    end
  done;
  { dist; prev }

let run g ~src = run_internal g ~src ~stop_at:(-1)
let run_to g ~src ~dst = run_internal g ~src ~stop_at:dst

let path r ~dst =
  if Float.equal r.dist.(dst) infinity then []
  else begin
    let rec build acc v = if v = -1 then acc else build (v :: acc) r.prev.(v) in
    build [] dst
  end

let distance g ~src ~dst =
  let r = run_to g ~src ~dst in
  if Float.equal r.dist.(dst) infinity then None else Some r.dist.(dst)

let shortest_path g ~src ~dst =
  let r = run_to g ~src ~dst in
  if Float.equal r.dist.(dst) infinity then None else Some (r.dist.(dst), path r ~dst)

(* Each source's Dijkstra is independent and only reads the graph, so
   the rows compute in parallel; every row is bit-identical to the
   sequential run. *)
let all_pairs_results g ~sources =
  Cisp_util.Telemetry.with_span "apsp" (fun () ->
      let n = Array.length sources in
      Cisp_util.Telemetry.add "apsp.sources" n;
      let out = Array.make n { dist = [||]; prev = [||] } in
      (* One source is a whole Dijkstra — thousands of heap operations
         — so the finest chunk wins: a claim of the shared counter is
         noise next to the work it buys, and coarser chunks would only
         worsen load balance across sources of uneven degree. *)
      Cisp_util.Pool.parallel_for ~min_chunk:1 (Cisp_util.Pool.get ()) ~n (fun k ->
          out.(k) <- run g ~src:sources.(k));
      out)

let all_pairs g =
  let n = Graph.node_count g in
  let rs = all_pairs_results g ~sources:(Array.init n Fun.id) in
  Array.map (fun r -> r.dist) rs
