(** Contraction hierarchies for undirected graphs.

    {!build} contracts nodes in deterministic edge-difference order
    (lazy-update priority queue, ties by node id), inserting a
    shortcut between two neighbours of the contracted node unless a
    bounded witness search proves a no-longer path around it.  Witness
    searches run on the domain pool but each writes only its own
    decision row, so the hierarchy — and therefore every query result
    — is bit-identical at any [CISP_JOBS].

    Queries never report a sum of shortcut weights: the meeting path
    is unpacked to original edges and resummed left-to-right from the
    source, the exact accumulation order of {!Dijkstra.run}, so
    distances are bit-identical to Dijkstra's whenever the shortest
    path's node sequence is unique (for the geodesic weights used
    here, ties between distinct node sequences have measure zero). *)

type t

val build : ?witness_budget:int -> Graph.t -> t
(** Preprocess the graph.  The multigraph is collapsed to its
    min-weight simple form first (distances are unchanged).
    [witness_budget] (default 64) bounds the nodes settled per witness
    search; a smaller budget only ever adds redundant shortcuts, never
    wrong distances.  Raises [Invalid_argument] if the graph is not
    symmetric (directed graphs are not supported) or
    [witness_budget < 1]. *)

val node_count : t -> int

val rank : t -> int -> int
(** Contraction order of a node (0 = contracted first).  A pure
    function of the graph — the determinism tests compare it across
    pool widths. *)

val shortcut_count : t -> int
(** Upward edges that are shortcuts (not original edges). *)

val distance : t -> src:int -> dst:int -> float option
(** Shortest-path distance, [None] if unreachable.  Bit-identical to
    [Dijkstra.distance] (see module preamble for the tie caveat). *)

val shortest_path : t -> src:int -> dst:int -> (float * int list) option
(** Distance and node path [src; ...; dst]. *)

val many_to_many : t -> sources:int array -> targets:int array -> float array array
(** Distance matrix [m.(i).(j)] = d(sources.(i), targets.(j)),
    [infinity] if unreachable.  Bucket-based: one backward upward
    search per target, one forward upward search per source, both
    parallel on the pool; every finite entry is still re-derived by
    unpacking its meeting path, so the matrix matches per-source
    Dijkstra bit-for-bit. *)

val many_to_many_paths :
  t -> sources:int array -> targets:int array -> (float * int list) option array array
(** As {!many_to_many} but each reachable pair also carries its node
    path [src; ...; dst]. *)
