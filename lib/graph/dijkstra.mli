(** Shortest paths. *)

type result = {
  dist : float array;    (** infinity where unreachable *)
  prev : int array;      (** -1 at sources / unreachable *)
}

val run : Graph.t -> src:int -> result
(** Single-source Dijkstra. *)

val run_to : Graph.t -> src:int -> dst:int -> result
(** Early-exit variant: distances beyond [dst] may be missing. *)

val path : result -> dst:int -> int list
(** Node sequence from the source to [dst]; [] if unreachable. *)

val distance : Graph.t -> src:int -> dst:int -> float option

val shortest_path : Graph.t -> src:int -> dst:int -> (float * int list) option
(** Distance and node list, or [None] if unreachable. *)

val all_pairs_results : Graph.t -> sources:int array -> result array
(** Dijkstra from each listed source, in parallel on the domain pool;
    entry [k] is the full {!result} for [sources.(k)].  This is the
    pipeline's APSP primitive (telemetry span ["apsp"]). *)

val all_pairs : Graph.t -> float array array
(** Dijkstra from every node; suited to sparse graphs.  Result is
    [dist.(u).(v)]. *)
