(** ALT engine: A* with landmark (triangle-inequality) lower bounds.

    {!build} picks landmarks by farthest-point selection over an
    {!Cisp_util.Rng}-seeded candidate sample and stores their
    single-source distance rows in an off-heap [Bigarray] float64
    table.  {!distance}/{!shortest_path} run A* with the consistent
    bound [max_L |d(L,v) - d(L,dst)|], so distances are bit-identical
    to {!Dijkstra} whenever the shortest path is unique.

    The engine keeps a reference to the graph it was built from;
    mutating that graph afterwards invalidates the landmark table
    (results become lower-bound-unsafe).  Build a fresh engine — or
    fall back to plain Dijkstra via {!Query} — for working copies. *)

type t

val build : ?count:int -> ?seed:int -> Graph.t -> t
(** [build g] preprocesses [g] with [count] landmarks (default 8;
    clamped to the candidate-sample size).  Deterministic for fixed
    [(g, count, seed)] at any pool width.  Raises [Invalid_argument]
    if [count < 1]. *)

val count : t -> int
(** Number of landmarks actually chosen. *)

val nodes : t -> int array
(** The landmark nodes (a copy; for tests and diagnostics). *)

val distance : t -> src:int -> dst:int -> float option

val shortest_path : t -> src:int -> dst:int -> (float * int list) option
(** Distance and node path [src; ...; dst]; [None] if unreachable. *)
