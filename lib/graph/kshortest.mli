(** Yen's k-shortest loopless paths.

    Used by the alternative routing schemes (§5) to generate path
    choices per commodity beyond the shortest path. *)

val yen : ?query:Query.t -> Graph.t -> src:int -> dst:int -> k:int -> (float * int list) list
(** Up to [k] loopless paths in nondecreasing length order.  Returns
    fewer when the graph has fewer distinct paths.  [query] (if
    prepared from this very graph) accelerates the opening
    shortest-path query; spur searches always run plain Dijkstra on
    their constrained working copies.  Results are bit-identical with
    or without [query]. *)
