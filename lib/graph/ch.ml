(* Contraction hierarchies over an undirected {!Graph.t}.

   Preprocessing contracts nodes in deterministic edge-difference
   order (lazy-update priority queue, ties broken by node id, key
   encoded as priority * n + id so the order is a pure function of the
   graph).  Contracting [v] inserts a shortcut between neighbours
   (a, b) unless a witness search in the remaining core — excluding
   [v] — proves a path no longer than w(a,v) + w(v,b).  Witness
   searches are independent per source neighbour, so they run on the
   domain pool; each writes only its own decision row, and the
   shortcut insertions replay those rows sequentially in pair order,
   so the hierarchy is bit-identical at any [CISP_JOBS].

   Queries run the standard bidirectional upward search and then
   re-derive the distance by unpacking the meeting path into original
   edges and summing them left-to-right from the source — the exact
   accumulation order of {!Dijkstra.run} — so reported distances are
   bit-identical to Dijkstra's whenever the shortest path is unique
   (ties between distinct equal-length node sequences have measure
   zero for geometric weights). *)

module Pool = Cisp_util.Pool
module Telemetry = Cisp_util.Telemetry

type t = {
  n : int;
  rank : int array;        (* node -> contraction order (0 = first) *)
  up_first : int array;    (* CSR offsets, length n + 1 *)
  up_dst : int array;      (* all of a node's upward edges, sorted by dst *)
  up_weight : float array;
  up_middle : int array;   (* contracted middle node, -1 = original edge *)
}

let node_count t = t.n
let rank t v = t.rank.(v)
let shortcut_count t =
  let c = ref 0 in
  Array.iter (fun m -> if m >= 0 then incr c) t.up_middle;
  !c

(* ---------- preprocessing: dynamic core adjacency ---------- *)

(* Per-node neighbour rows, sorted by neighbour id, one entry per
   neighbour (the multigraph is collapsed to min weight on entry —
   parallel edges never change distances or node paths).  The
   invariant during contraction is that rows mention only
   uncontracted nodes. *)
type dyn = {
  mutable nbr : int array;
  mutable wt : float array;
  mutable mid : int array;
  mutable len : int;
}

let dyn_create () = { nbr = [||]; wt = [||]; mid = [||]; len = 0 }

let dyn_reserve d cap =
  if Array.length d.nbr < cap then begin
    let cap = max cap (max 4 (2 * Array.length d.nbr)) in
    let nbr = Array.make cap 0 and wt = Array.make cap 0.0 and mid = Array.make cap 0 in
    Array.blit d.nbr 0 nbr 0 d.len;
    Array.blit d.wt 0 wt 0 d.len;
    Array.blit d.mid 0 mid 0 d.len;
    d.nbr <- nbr;
    d.wt <- wt;
    d.mid <- mid
  end

(* Index of [x] in the sorted prefix, or [-(insertion point) - 1]. *)
let dyn_find d x =
  let lo = ref 0 and hi = ref (d.len - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let m = (!lo + !hi) / 2 in
    let y = d.nbr.(m) in
    if y = x then found := m else if y < x then lo := m + 1 else hi := m - 1
  done;
  if !found >= 0 then !found else -(!lo) - 1

let dyn_insert_at d idx x w m =
  dyn_reserve d (d.len + 1);
  Array.blit d.nbr idx d.nbr (idx + 1) (d.len - idx);
  Array.blit d.wt idx d.wt (idx + 1) (d.len - idx);
  Array.blit d.mid idx d.mid (idx + 1) (d.len - idx);
  d.nbr.(idx) <- x;
  d.wt.(idx) <- w;
  d.mid.(idx) <- m;
  d.len <- d.len + 1

let dyn_remove d x =
  let idx = dyn_find d x in
  if idx >= 0 then begin
    Array.blit d.nbr (idx + 1) d.nbr idx (d.len - idx - 1);
    Array.blit d.wt (idx + 1) d.wt idx (d.len - idx - 1);
    Array.blit d.mid (idx + 1) d.mid idx (d.len - idx - 1);
    d.len <- d.len - 1
  end

(* Keep the lighter of the existing and offered edge. *)
let dyn_upsert_min d x w m =
  let idx = dyn_find d x in
  if idx >= 0 then begin
    if w < d.wt.(idx) then begin
      d.wt.(idx) <- w;
      d.mid.(idx) <- m
    end
  end
  else dyn_insert_at d (-idx - 1) x w m

(* ---------- per-domain search workspace ---------- *)

(* Stamped scratch: results of a search depend only on the graph and
   the search arguments, never on what a previous search left behind
   (rule L7's scratch contract). *)
type side = {
  mutable snodes : int array;    (* settled nodes, in settle order *)
  mutable sdist : float array;
  mutable spar_slot : int array; (* settle-order slot of the parent, -1 at root *)
  mutable spar_edge : int array; (* CSR edge index used to reach the node *)
  mutable scount : int;
}

let side_create () =
  { snodes = [||]; sdist = [||]; spar_slot = [||]; spar_edge = [||]; scount = 0 }

let[@cisp.alloc_ok "amortized: doubling growth of the settled-list columns"] side_reserve
    s cap =
  if Array.length s.snodes < cap then begin
    let cap = max cap (max 16 (2 * Array.length s.snodes)) in
    let snodes = Array.make cap 0
    and sdist = Array.make cap 0.0
    and spar_slot = Array.make cap 0
    and spar_edge = Array.make cap 0 in
    Array.blit s.snodes 0 snodes 0 s.scount;
    Array.blit s.sdist 0 sdist 0 s.scount;
    Array.blit s.spar_slot 0 spar_slot 0 s.scount;
    Array.blit s.spar_edge 0 spar_edge 0 s.scount;
    s.snodes <- snodes;
    s.sdist <- sdist;
    s.spar_slot <- spar_slot;
    s.spar_edge <- spar_edge
  end

let side_snapshot s =
  {
    snodes = Array.sub s.snodes 0 s.scount;
    sdist = Array.sub s.sdist 0 s.scount;
    spar_slot = Array.sub s.spar_slot 0 s.scount;
    spar_edge = Array.sub s.spar_edge 0 s.scount;
    scount = s.scount;
  }

type ws = {
  mutable dist : float array;
  mutable stamp : int array;
  mutable version : int;
  mutable tpar_slot : int array;  (* tentative parent data, stamped with dist *)
  mutable tpar_edge : int array;
  mutable slot_of : int array;    (* forward settle-order slot, own stamp *)
  mutable slot_stamp : int array;
  mutable slot_version : int;
  heap : Iheap.t;
  fwd : side;
  bwd : side;
  (* unpacked-path buffers: nodes after the source, original edge
     weight of each step *)
  mutable pnodes : int array;
  mutable pwts : float array;
  mutable plen : int;
  mutable chain : int array;      (* slot scratch for parent walks *)
  mutable chain_len : int;
  mutable pend : int array;       (* witness search: uncovered pair indices *)
  flim : float array;             (* 1 slot: largest pending through-cost
                                     (unboxed float store — a ref would box
                                     per witness row, L11) *)
}

let ws_slot =
  Pool.Scratch.create (fun () ->
      {
        dist = [||];
        stamp = [||];
        version = 0;
        tpar_slot = [||];
        tpar_edge = [||];
        slot_of = [||];
        slot_stamp = [||];
        slot_version = 0;
        heap = Iheap.create ();
        fwd = side_create ();
        bwd = side_create ();
        pnodes = [||];
        pwts = [||];
        plen = 0;
        chain = [||];
        chain_len = 0;
        pend = [||];
        flim = Array.make 1 0.0;
      })

let ws_ensure ws n =
  if Array.length ws.dist < n then begin
    ws.dist <- Array.make n 0.0;
    ws.stamp <- Array.make n 0;
    ws.version <- 0;
    ws.tpar_slot <- Array.make n 0;
    ws.tpar_edge <- Array.make n 0;
    ws.slot_of <- Array.make n 0;
    ws.slot_stamp <- Array.make n 0;
    ws.slot_version <- 0;
    ws.pend <- Array.make n 0
  end

let[@cisp.alloc_ok "amortized: doubling growth of the unpack buffers"] path_reserve ws cap
    =
  if Array.length ws.pnodes < cap then begin
    let cap = max cap (max 16 (2 * Array.length ws.pnodes)) in
    let pnodes = Array.make cap 0 and pwts = Array.make cap 0.0 in
    Array.blit ws.pnodes 0 pnodes 0 ws.plen;
    Array.blit ws.pwts 0 pwts 0 ws.plen;
    ws.pnodes <- pnodes;
    ws.pwts <- pwts
  end

let[@cisp.alloc_ok "amortized: doubling growth of the parent-walk scratch"] chain_reserve
    ws cap =
  if Array.length ws.chain < cap then begin
    let cap = max cap (max 16 (2 * Array.length ws.chain)) in
    let chain = Array.make cap 0 in
    Array.blit ws.chain 0 chain 0 ws.chain_len;
    ws.chain <- chain
  end

(* ---------- witness searches (preprocessing) ---------- *)

(* Shortcut decisions for contracting [v]: row [i] of [decisions]
   holds, for every neighbour index j > i, whether pair (i, j) needs a
   shortcut.  One witness search per source neighbour; rows are
   independent, so [par] runs them on the pool (bit-identical at any
   width — each row is a pure function of the core graph).

   A row runs in two phases.  First a 1-hop marking pass walks the
   source's adjacency once — exactly the state a Dijkstra from it
   reaches after settling the source — and classifies every pair by
   its direct edge.  In metric graphs (geometric test graphs, the
   tower graphs) that single walk witnesses almost every pair, so most
   rows finish in O(deg) flat array work with no heap at all.  The
   pairs it leaves uncovered go to a compact pending list, and only
   then does a bounded Dijkstra continue from the marked frontier,
   pruning the pending list after each settle and stopping when it
   empties, the settle budget runs out, or the heap minimum passes the
   largest pending through-cost.

   The settle budget itself is capped so a row's relaxation work
   (settles x degree) stays bounded on the dense tower graphs (average
   degree in the hundreds): witness searches there get a couple of
   settles past the marking pass and no more.  Exhausting the budget
   leaves the uncovered pairs as shortcuts: deterministic, and erring
   only towards redundant shortcuts, never wrong distances. *)
let witness_work_cap = 4096

(* Settles allowed per row, the marking pass counting as the first. *)
let row_budget ~budget deg = min budget (max 2 (witness_work_cap / max 1 deg))

(* Compact the pending pair list in place: covered pairs flip their
   decision to '\000' and drop out; the largest surviving through-cost
   lands in [ws.flim.(0)].  Returns the surviving count.  Top level
   and fully applied — a local closure (and a float ref for the limit)
   would allocate on every settle of every witness row. *)
let prune_covered ws (row : dyn) (decisions : Bytes.t) ~i ~deg ~wi ~version ~pending =
  let kept = ref 0 in
  ws.flim.(0) <- 0.0;
  for p = 0 to pending - 1 do
    let j = ws.pend.(p) in
    let b = row.nbr.(j) in
    let through = wi +. row.wt.(j) in
    if ws.stamp.(b) = version && ws.dist.(b) <= through then
      Bytes.unsafe_set decisions ((i * deg) + j) '\000'
    else begin
      ws.pend.(!kept) <- j;
      incr kept;
      if through > ws.flim.(0) then ws.flim.(0) <- through
    end
  done;
  !kept

(* One witness row: classify the pairs (i, j > i) for the contraction
   of [v].  Top level so the pool bodies that reach it (the priority
   pass in [build] runs estimates per node) allocate nothing per
   call. *)
let witness_row (adj : dyn array) v (decisions : Bytes.t) ~eff_budget i =
  let row = adj.(v) in
  let deg = row.len in
  let ws = Pool.Scratch.get ws_slot in
  ws_ensure ws (Array.length adj);
  let wi = row.wt.(i) in
  let src = row.nbr.(i) in
  let version = ws.version + 1 in
  ws.version <- version;
  (* 1-hop marking pass: [dist] over src's direct neighbours. *)
  let srow = adj.(src) in
  for e = 0 to srow.len - 1 do
    let x = srow.nbr.(e) in
    if x <> v then begin
      ws.dist.(x) <- srow.wt.(e);
      ws.stamp.(x) <- version
    end
  done;
  (* Classify the pairs; uncovered ones go to the pending list. *)
  let pending = ref 0 in
  ws.flim.(0) <- 0.0;
  for j = i + 1 to deg - 1 do
    let b = row.nbr.(j) in
    let through = wi +. row.wt.(j) in
    if ws.stamp.(b) = version && ws.dist.(b) <= through then
      Bytes.unsafe_set decisions ((i * deg) + j) '\000'
    else begin
      Bytes.unsafe_set decisions ((i * deg) + j) '\001';
      ws.pend.(!pending) <- j;
      incr pending;
      if through > ws.flim.(0) then ws.flim.(0) <- through
    end
  done;
  if !pending > 0 && eff_budget > 1 then begin
    (* Continue the Dijkstra the marking pass started: seed the heap
       with the marked frontier and keep settling. *)
    let heap = ws.heap in
    Iheap.clear heap;
    ws.dist.(src) <- 0.0;
    ws.stamp.(src) <- version;
    for e = 0 to srow.len - 1 do
      let x = srow.nbr.(e) in
      if x <> v then Iheap.push heap ws.dist.(x) x
    done;
    let settled = ref 1 in
    while !pending > 0 && !settled < eff_budget && Iheap.length heap > 0 do
      let d = Iheap.min_key heap in
      if d > ws.flim.(0) then pending := 0 (* nothing reachable can improve a target *)
      else begin
        let u = Iheap.pop_min heap in
        (* A strictly larger key than the recorded distance is a stale
           duplicate; pushes happen only on strict improvement, so the
           live entry is popped exactly once. *)
        if not (d > ws.dist.(u)) then begin
          incr settled;
          let urow = adj.(u) in
          for e = 0 to urow.len - 1 do
            let w = urow.nbr.(e) in
            if w <> v then begin
              let nd = d +. urow.wt.(e) in
              if ws.stamp.(w) <> version || nd < ws.dist.(w) then begin
                ws.dist.(w) <- nd;
                ws.stamp.(w) <- version;
                Iheap.push heap nd w
              end
            end
          done;
          pending := prune_covered ws row decisions ~i ~deg ~wi ~version ~pending:!pending
        end
      end
    done
  end

(* Sequential row sweep.  The estimate path calls this directly, so
   the pool bodies running estimates never reference the pool (no
   nested submission, no registry lock on their static call graph). *)
let decide_shortcuts_seq ~budget (adj : dyn array) v (decisions : Bytes.t) =
  let deg = adj.(v).len in
  let eff_budget = row_budget ~budget deg in
  for i = 0 to deg - 2 do
    witness_row adj v decisions ~eff_budget i
  done

let decide_shortcuts ~par ~budget (adj : dyn array) v (decisions : Bytes.t) =
  let deg = adj.(v).len in
  if par && deg > 1 then begin
    let eff_budget = row_budget ~budget deg in
    (* Short rows short-circuit to the caller via the pool's
       [min_chunk] hint; the dense end-game rows spread out. *)
    Pool.parallel_for ~min_chunk:8 (Pool.get ()) ~n:(deg - 1) (fun i ->
        witness_row adj v decisions ~eff_budget i)
  end
  else decide_shortcuts_seq ~budget adj v decisions

let count_decisions (decisions : Bytes.t) deg =
  let c = ref 0 in
  for i = 0 to (deg * deg) - 1 do
    if Bytes.unsafe_get decisions i = '\001' then incr c
  done;
  !c

(* Shortcut estimate for the priority keys: the same witness search on
   a much tighter settle budget.  Priorities are a heuristic, so a
   deterministic overestimate is fine — the ordering loop (initial
   pass plus every lazy recompute) runs many times per contraction,
   and only the winner pays for the full-budget searches. *)
let estimate_budget = 4

let estimate_shortcuts (adj : dyn array) v =
  let deg = adj.(v).len in
  let decisions = Bytes.make (deg * deg) '\000' in
  decide_shortcuts_seq ~budget:estimate_budget adj v decisions;
  count_decisions decisions deg

(* Edge difference plus deleted-neighbour term: the classic balanced
   ordering heuristic.  Encoded as priority * n + id so equal
   priorities contract in node-id order whatever the heap history. *)
let priority_key ~n ~shortcuts ~deg ~deleted v =
  float_of_int (((shortcuts - deg + deleted) * n) + v)

(* ---------- build ---------- *)

let default_witness_budget = 64

let build ?(witness_budget = default_witness_budget) g =
  Telemetry.with_span "ch.build" (fun () ->
      let n = Graph.node_count g in
      if witness_budget < 1 then invalid_arg "Ch.build: witness_budget < 1";
      (* Collapse the multigraph: min weight per neighbour, self-loops
         dropped.  Distances and shortest node sequences are
         unchanged. *)
      let adj = Array.init n (fun _ -> dyn_create ()) in
      for u = 0 to n - 1 do
        List.iter
          (fun (e : Graph.edge) ->
            if e.Graph.dst <> u then dyn_upsert_min adj.(u) e.Graph.dst e.Graph.weight (-1))
          (Graph.succ g u)
      done;
      for u = 0 to n - 1 do
        let row = adj.(u) in
        for i = 0 to row.len - 1 do
          let v = row.nbr.(i) in
          let back = dyn_find adj.(v) u in
          if back < 0 || not (Float.equal adj.(v).wt.(back) row.wt.(i)) then
            invalid_arg "Ch.build: graph is not symmetric (undirected graphs only)"
        done
      done;
      (* Initial priorities: one 1-hop shortcut estimate per node, all
         independent, in parallel.  A node's whole estimate runs on
         one domain (the per-row pool split is reserved for the
         sequential main loop), so nested submission never occurs. *)
      let keys = Array.make n 0.0 in
      if n > 0 then
        Pool.parallel_for ~min_chunk:1 (Pool.get ()) ~n (fun v ->
            keys.(v) <-
              priority_key ~n ~shortcuts:(estimate_shortcuts adj v) ~deg:adj.(v).len
                ~deleted:0 v);
      let heap = Iheap.create ~capacity:(max 16 n) () in
      for v = 0 to n - 1 do
        Iheap.push heap keys.(v) v
      done;
      let contracted = Array.make n false in
      let deleted = Array.make n 0 in
      let rank = Array.make n 0 in
      let up_nbr = Array.make n [||] in
      let up_wt = Array.make n [||] in
      let up_mid = Array.make n [||] in
      let order = ref 0 in
      let shortcuts_total = ref 0 in
      let witness_rounds = ref 0 in
      while Iheap.length heap > 0 do
        let v = Iheap.pop_min heap in
        if not contracted.(v) then begin
          (* Lazy update: re-derive the priority from the cheap 1-hop
             estimate.  If the node no longer wins, push it back with
             the fresh key; only the winner pays for the real
             (pool-parallel) witness searches. *)
          let row = adj.(v) in
          let deg = row.len in
          let key =
            priority_key ~n ~shortcuts:(estimate_shortcuts adj v) ~deg
              ~deleted:deleted.(v) v
          in
          if Iheap.length heap > 0 && key > Iheap.min_key heap then
            Iheap.push heap key v
          else begin
            let decisions = Bytes.make (deg * deg) '\000' in
            decide_shortcuts ~par:true ~budget:witness_budget adj v decisions;
            incr witness_rounds;
            (* Contract: snapshot the upward edges (every remaining
               neighbour outranks [v] by construction), insert the
               decided shortcuts in pair order, detach [v]. *)
            contracted.(v) <- true;
            rank.(v) <- !order;
            incr order;
            up_nbr.(v) <- Array.sub row.nbr 0 deg;
            up_wt.(v) <- Array.sub row.wt 0 deg;
            up_mid.(v) <- Array.sub row.mid 0 deg;
            for i = 0 to deg - 1 do
              for j = i + 1 to deg - 1 do
                if Bytes.unsafe_get decisions ((i * deg) + j) = '\001' then begin
                  let a = row.nbr.(i) and b = row.nbr.(j) in
                  let w = row.wt.(i) +. row.wt.(j) in
                  dyn_upsert_min adj.(a) b w v;
                  dyn_upsert_min adj.(b) a w v;
                  incr shortcuts_total
                end
              done
            done;
            for i = 0 to deg - 1 do
              let u = row.nbr.(i) in
              dyn_remove adj.(u) v;
              deleted.(u) <- deleted.(u) + 1
            done;
            row.len <- 0
          end
        end
      done;
      (* Flatten the per-node snapshots into CSR. *)
      let up_first = Array.make (n + 1) 0 in
      for v = 0 to n - 1 do
        up_first.(v + 1) <- up_first.(v) + Array.length up_nbr.(v)
      done;
      let m = up_first.(n) in
      let up_dst = Array.make m 0 in
      let up_weight = Array.make m 0.0 in
      let up_middle = Array.make m 0 in
      for v = 0 to n - 1 do
        let base = up_first.(v) in
        Array.iteri (fun i x -> up_dst.(base + i) <- x) up_nbr.(v);
        Array.iteri (fun i x -> up_weight.(base + i) <- x) up_wt.(v);
        Array.iteri (fun i x -> up_middle.(base + i) <- x) up_mid.(v)
      done;
      if Telemetry.enabled () then begin
        Telemetry.add "ch.nodes" n;
        Telemetry.add "ch.shortcuts" !shortcuts_total;
        Telemetry.add "ch.witness_rounds" !witness_rounds
      end;
      { n; rank; up_first; up_dst; up_weight; up_middle })

(* ---------- queries ---------- *)

(* Relax every upward edge of the settled node in CSR order.  Flat
   array walk, no closure, no boxing: this is the query inner loop the
   allocation lint polices (registered in lint.hotpaths). *)
let[@cisp.zero_alloc] relax_up t ws ~du ~slot ~first ~last =
  for e = first to last - 1 do
    let w = Array.unsafe_get t.up_dst e in
    let nd = du +. Array.unsafe_get t.up_weight e in
    if ws.stamp.(w) <> ws.version || nd < ws.dist.(w) then begin
      ws.dist.(w) <- nd;
      ws.stamp.(w) <- ws.version;
      ws.tpar_slot.(w) <- slot;
      ws.tpar_edge.(w) <- e;
      Iheap.push ws.heap nd w
    end
  done

(* Is [u] (about to settle at distance [d]) dominated by a path through
   an already-settled higher neighbour?  Stall-on-demand: such a node
   cannot lie on a shortest up-down path, so the search neither records
   nor relaxes it.  (A neighbour with a smaller tentative distance than
   the current heap minimum is necessarily settled, so one stamped
   distance comparison is the whole test.) *)
let[@cisp.zero_alloc] rec stalled t ws ~d ~first ~last =
  first < last
  && (let w = Array.unsafe_get t.up_dst first in
      (ws.stamp.(w) = ws.version
      && ws.dist.(w) +. Array.unsafe_get t.up_weight first < d)
      || stalled t ws ~d ~first:(first + 1) ~last)

(* Exhaustive upward Dijkstra from [src]; fills [out] with the settled
   list in settle order (stalled nodes excluded). *)
let run_upward t ws (out : side) ~src =
  ws_ensure ws t.n;
  let version = ws.version + 1 in
  ws.version <- version;
  out.scount <- 0;
  let heap = ws.heap in
  Iheap.clear heap;
  ws.dist.(src) <- 0.0;
  ws.stamp.(src) <- version;
  ws.tpar_slot.(src) <- -1;
  ws.tpar_edge.(src) <- -1;
  Iheap.push heap 0.0 src;
  while Iheap.length heap > 0 do
    let d = Iheap.min_key heap in
    let u = Iheap.pop_min heap in
    if not (d > ws.dist.(u)) then begin
      let first = t.up_first.(u) and last = t.up_first.(u + 1) in
      if not (stalled t ws ~d ~first ~last) then begin
        let slot = out.scount in
        side_reserve out (slot + 1);
        out.snodes.(slot) <- u;
        out.sdist.(slot) <- d;
        out.spar_slot.(slot) <- ws.tpar_slot.(u);
        out.spar_edge.(slot) <- ws.tpar_edge.(u);
        out.scount <- slot + 1;
        relax_up t ws ~du:d ~slot ~first ~last
      end
    end
  done

(* CSR edge index connecting [v] (lower rank) to [dst]; segments are
   sorted by destination. *)
let find_up_edge t v dst =
  let lo = ref t.up_first.(v) and hi = ref (t.up_first.(v + 1) - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let m = (!lo + !hi) / 2 in
    let y = t.up_dst.(m) in
    if y = dst then found := m else if y < dst then lo := m + 1 else hi := m - 1
  done;
  if !found < 0 then invalid_arg "Ch: corrupt hierarchy (missing shortcut half)";
  !found

let[@cisp.zero_alloc] push_step ws node w =
  let i = ws.plen in
  path_reserve ws (i + 1);
  ws.pnodes.(i) <- node;
  ws.pwts.(i) <- w;
  ws.plen <- i + 1

(* Append the travel steps a -> b (excluding a itself) to the path
   buffers, expanding shortcuts through their recorded middles.  The
   halves of a shortcut created when [mid] was contracted are exactly
   [mid]'s upward edges to the two endpoints. *)
let rec emit_steps t ws a b eidx =
  let mid = t.up_middle.(eidx) in
  if mid < 0 then push_step ws b t.up_weight.(eidx)
  else begin
    emit_steps t ws a mid (find_up_edge t mid a);
    emit_steps t ws mid b (find_up_edge t mid b)
  end

(* Walk the parent slots from [slot] to the root, emitting the travel
   steps root -> node(slot) (forward side: the walk is reversed
   through the chain scratch first). *)
let emit_from_root t ws (s : side) slot =
  ws.chain_len <- 0;
  let cur = ref slot in
  while !cur >= 0 do
    chain_reserve ws (ws.chain_len + 1);
    ws.chain.(ws.chain_len) <- !cur;
    ws.chain_len <- ws.chain_len + 1;
    cur := s.spar_slot.(!cur)
  done;
  for i = ws.chain_len - 2 downto 0 do
    let child = ws.chain.(i) in
    let parent = s.spar_slot.(child) in
    emit_steps t ws s.snodes.(parent) s.snodes.(child) s.spar_edge.(child)
  done

(* Emit the travel steps node(slot) -> root (backward side: parent
   order is already the direction of travel). *)
let emit_to_root t ws (s : side) slot =
  let cur = ref slot in
  while s.spar_slot.(!cur) >= 0 do
    let parent = s.spar_slot.(!cur) in
    emit_steps t ws s.snodes.(!cur) s.snodes.(parent) s.spar_edge.(!cur);
    cur := parent
  done

(* Left-to-right re-summation of the unpacked original edges: the
   accumulation order of a sequential Dijkstra along the same node
   sequence, hence bit-identical distances.  Structural recursion with
   a float accumulator — the per-pair unpacks inside the many-to-many
   pool body must not box a float per call (L11). *)
let rec resum_from ws i acc =
  if i >= ws.plen then acc else resum_from ws (i + 1) (acc +. ws.pwts.(i))

let resum ws = resum_from ws 0 0.0

let path_list ws ~src =
  let rec build i acc = if i < 0 then src :: acc else build (i - 1) (ws.pnodes.(i) :: acc) in
  build (ws.plen - 1) []

(* Reconstruct the unpacked path for a meeting pair of slots; returns
   the resummed distance (path steps stay in the workspace). *)
let unpack_meeting t ws ~fwd ~bwd ~fslot ~bslot =
  ws.plen <- 0;
  emit_from_root t ws fwd fslot;
  emit_to_root t ws bwd bslot;
  resum ws

let check_node t name v =
  if v < 0 || v >= t.n then invalid_arg (Printf.sprintf "Ch.%s: node out of range" name)

(* Bidirectional upward query; [Some (fslot, bslot)] of the best
   meeting node.  Both searches run to exhaustion (upward search
   spaces are small); the meeting scan visits backward slots in settle
   order, keeping ties deterministic. *)
let meet t ws ~src ~dst =
  run_upward t ws ws.fwd ~src;
  let sv = ws.slot_version + 1 in
  ws.slot_version <- sv;
  for i = 0 to ws.fwd.scount - 1 do
    ws.slot_of.(ws.fwd.snodes.(i)) <- i;
    ws.slot_stamp.(ws.fwd.snodes.(i)) <- sv
  done;
  run_upward t ws ws.bwd ~src:dst;
  let best = ref infinity and bestf = ref (-1) and bestb = ref (-1) in
  for i = 0 to ws.bwd.scount - 1 do
    let u = ws.bwd.snodes.(i) in
    if ws.slot_stamp.(u) = sv then begin
      let f = ws.slot_of.(u) in
      let cand = ws.fwd.sdist.(f) +. ws.bwd.sdist.(i) in
      if cand < !best then begin
        best := cand;
        bestf := f;
        bestb := i
      end
    end
  done;
  if !bestf < 0 then None else Some (!bestf, !bestb)

let shortest_path t ~src ~dst =
  check_node t "shortest_path" src;
  check_node t "shortest_path" dst;
  if src = dst then Some (0.0, [ src ])
  else begin
    let ws = Pool.Scratch.get ws_slot in
    ws_ensure ws t.n;
    match meet t ws ~src ~dst with
    | None -> None
    | Some (fslot, bslot) ->
      let d = unpack_meeting t ws ~fwd:ws.fwd ~bwd:ws.bwd ~fslot ~bslot in
      Some (d, path_list ws ~src)
  end

let distance t ~src ~dst =
  check_node t "distance" src;
  check_node t "distance" dst;
  if src = dst then Some 0.0
  else begin
    let ws = Pool.Scratch.get ws_slot in
    ws_ensure ws t.n;
    match meet t ws ~src ~dst with
    | None -> None
    | Some (fslot, bslot) ->
      Some (unpack_meeting t ws ~fwd:ws.fwd ~bwd:ws.bwd ~fslot ~bslot)
  end

(* ---------- bucket-based many-to-many ---------- *)

(* One backward upward search per target feeds per-node buckets; one
   forward upward search per source then scans the buckets of its
   settled nodes.  Every pair's final distance is still re-derived by
   unpacking its meeting path, so the matrix is bit-identical to
   per-source Dijkstra.  Backward searches and forward rows both
   parallelize on the pool: each writes only its own slots. *)
let many_to_many_gen t ~sources ~targets ~(emit : int -> int -> float -> ws -> unit) =
  Array.iter (fun v -> check_node t "many_to_many" v) sources;
  Array.iter (fun v -> check_node t "many_to_many" v) targets;
  Telemetry.with_span "ch.many_to_many" (fun () ->
      let nt = Array.length targets in
      let pool = Pool.get () in
      let bsearches =
        Pool.parallel_map_array ~min_chunk:1 pool
          (fun tgt ->
            let ws = Pool.Scratch.get ws_slot in
            run_upward t ws ws.bwd ~src:tgt;
            side_snapshot ws.bwd)
          targets
      in
      (* Bucket CSR over nodes, filled in target order. *)
      let bucket_first = Array.make (t.n + 1) 0 in
      Array.iter
        (fun (b : side) ->
          for i = 0 to b.scount - 1 do
            let u = b.snodes.(i) in
            bucket_first.(u + 1) <- bucket_first.(u + 1) + 1
          done)
        bsearches;
      for u = 0 to t.n - 1 do
        bucket_first.(u + 1) <- bucket_first.(u + 1) + bucket_first.(u)
      done;
      let nb = bucket_first.(t.n) in
      let bucket_t = Array.make nb 0 in
      let bucket_slot = Array.make nb 0 in
      let bucket_dist = Array.make nb 0.0 in
      let cursor = Array.copy bucket_first in
      Array.iteri
        (fun ti (b : side) ->
          for i = 0 to b.scount - 1 do
            let u = b.snodes.(i) in
            let c = cursor.(u) in
            bucket_t.(c) <- ti;
            bucket_slot.(c) <- i;
            bucket_dist.(c) <- b.sdist.(i);
            cursor.(u) <- c + 1
          done)
        bsearches;
      if Telemetry.enabled () then Telemetry.add "ch.bucket_entries" nb;
      Pool.parallel_for ~min_chunk:1 pool ~n:(Array.length sources) (fun si ->
          let ws = Pool.Scratch.get ws_slot in
          run_upward t ws ws.fwd ~src:sources.(si);
          let best = Array.make nt infinity in
          let meetf = Array.make nt (-1) in
          let meetb = Array.make nt (-1) in
          for fs = 0 to ws.fwd.scount - 1 do
            let u = ws.fwd.snodes.(fs) in
            let du = ws.fwd.sdist.(fs) in
            for bi = bucket_first.(u) to bucket_first.(u + 1) - 1 do
              let ti = bucket_t.(bi) in
              let cand = du +. bucket_dist.(bi) in
              if cand < best.(ti) then begin
                best.(ti) <- cand;
                meetf.(ti) <- fs;
                meetb.(ti) <- bucket_slot.(bi)
              end
            done
          done;
          for ti = 0 to nt - 1 do
            if meetf.(ti) >= 0 then begin
              let d =
                unpack_meeting t ws ~fwd:ws.fwd ~bwd:bsearches.(ti) ~fslot:meetf.(ti)
                  ~bslot:meetb.(ti)
              in
              emit si ti d ws
            end
          done))

let many_to_many t ~sources ~targets =
  let out =
    Array.init (Array.length sources) (fun _ -> Array.make (Array.length targets) infinity)
  in
  many_to_many_gen t ~sources ~targets ~emit:(fun si ti d _ws -> out.(si).(ti) <- d);
  out

let many_to_many_paths t ~sources ~targets =
  let out = Array.make_matrix (Array.length sources) (Array.length targets) None in
  many_to_many_gen t ~sources ~targets ~emit:(fun si ti d ws ->
      out.(si).(ti) <- Some (d, path_list ws ~src:sources.(si)));
  out
