(** Unified shortest-path query facade.

    {!prepare} binds a graph to an engine: plain Dijkstra below the
    node-count threshold, a contraction hierarchy ({!Ch}) above it,
    with landmark A* ({!Landmarks}) as an explicit opt-in.  All
    engines return distances bit-identical to {!Dijkstra.run} (unique
    shortest paths assumed — see the engine modules), so the selection
    is purely a performance decision.

    A prepared engine snapshots the graph's current edges; callers
    that mutate working copies (spur searches, failure replays) use
    {!shortest_path_graph} on the mutated graph instead. *)

type t

(** Engine selection policy for {!prepare}. *)
type mode =
  | Auto
      (** plain below the node-count threshold or above the density
          cutoff, CH otherwise *)
  | Force_plain
  | Force_ch
  | Force_alt

val default_threshold : int
(** Node count at which [Auto] switches to the preprocessed engine
    (512: below this a full CH build costs more than the Dijkstras it
    replaces on every workload we run). *)

val default_max_avg_degree : float
(** Average degree above which [Auto] keeps plain Dijkstra regardless
    of size: contracting a near-clique (dense tower graphs run to
    average degree in the hundreds) drowns in witness searches and
    shortcut insertions, while a per-source Dijkstra sweep over the
    same graph is cheap. *)

val prepare : ?mode:mode -> ?threshold:int -> Graph.t -> t
(** Build the engine for [g].  Preprocessing (if any) parallelizes on
    the domain pool and is bit-identical at any [CISP_JOBS]. *)

val graph : t -> Graph.t
(** The graph the engine was prepared from. *)

val shortest_path : t -> src:int -> dst:int -> (float * int list) option
val distance : t -> src:int -> dst:int -> float option

val shortest_path_graph : Graph.t -> src:int -> dst:int -> (float * int list) option
(** Plain-Dijkstra fallback for mutated working graphs (no engine,
    always current state). *)

val many_to_many : t -> sources:int array -> targets:int array -> float array array
(** [m.(i).(j)] = d(sources.(i), targets.(j)), [infinity] when
    unreachable.  CH engines use the bucket algorithm; others run one
    (pool-parallel) Dijkstra per source. *)

val many_to_many_paths :
  t -> sources:int array -> targets:int array -> (float * int list) option array array

val all_pairs : t -> float array array
(** [many_to_many] over all nodes as both sources and targets — the
    drop-in replacement for [Dijkstra.all_pairs]. *)
