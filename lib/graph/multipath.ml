type disjointness = Edge_disjoint | Node_disjoint

let successive ?query g ~src ~dst ~k ~remove =
  if k < 0 then invalid_arg "Multipath.successive: k < 0";
  let work = Graph.copy g in
  (* Only the first round sees the unmutated graph, so only it may be
     answered by a caller-prepared engine (and only one prepared from
     [g] itself); later rounds query the working copy directly. *)
  let round_query remaining =
    match query with
    | Some q when remaining = k && Query.graph q == g -> Query.shortest_path q ~src ~dst
    | _ -> Query.shortest_path_graph work ~src ~dst
  in
  let rec loop remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      match round_query remaining with
      | None -> List.rev acc
      | Some found ->
        remove work found;
        loop (remaining - 1) (found :: acc)
    end
  in
  loop k []

let rec consecutive_pairs acc = function
  | u :: (v :: _ as rest) -> consecutive_pairs ((u, v) :: acc) rest
  | _ -> acc

let remove_for_mode mode ~src ~dst work (_, path) =
  let banned_pairs = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace banned_pairs (u, v) ();
      Hashtbl.replace banned_pairs (v, u) ())
    (consecutive_pairs [] path);
  let dead_nodes = Hashtbl.create 16 in
  (match mode with
  | Edge_disjoint -> ()
  | Node_disjoint ->
    List.iter (fun v -> if v <> src && v <> dst then Hashtbl.replace dead_nodes v ()) path);
  Graph.remove_edges work (fun u e ->
      (not (Hashtbl.mem banned_pairs (u, e.Graph.dst)))
      && (not (Hashtbl.mem dead_nodes u))
      && not (Hashtbl.mem dead_nodes e.Graph.dst))

let k_disjoint ?(disjointness = Edge_disjoint) ?query g ~src ~dst ~k =
  successive ?query g ~src ~dst ~k ~remove:(remove_for_mode disjointness ~src ~dst)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let k_paths ?(disjointness = Edge_disjoint) ?query g ~src ~dst ~k =
  let disjoint = k_disjoint ~disjointness ?query g ~src ~dst ~k in
  let have = List.length disjoint in
  if have >= k then disjoint
  else begin
    let seen = List.map snd disjoint in
    let fresh (_, p) = not (List.exists (fun q -> List.equal Int.equal p q) seen) in
    let extra = List.filter fresh (Kshortest.yen ?query g ~src ~dst ~k) in
    disjoint @ take (k - have) extra
  end
