let successive ?query g ~src ~dst ~rounds ~protected =
  let n = Graph.node_count g in
  let alive = Array.make n true in
  (* Work on a mutable copy so the caller's graph survives. *)
  let work = ref (Graph.copy g) in
  let kill_interior path =
    List.iter
      (fun v -> if v <> src && v <> dst && not (protected v) then alive.(v) <- false)
      path;
    let g' = Graph.copy g in
    Graph.remove_edges g' (fun u e -> alive.(u) && alive.(e.Graph.dst));
    work := g'
  in
  let removable path =
    List.exists (fun v -> v <> src && v <> dst && not (protected v)) path
  in
  (* Round one runs on an untouched copy of [g], so a caller-prepared
     engine (for [g] itself) may answer it; every later round queries
     the pruned working copy with plain Dijkstra. *)
  let round_query k =
    match query with
    | Some q when k = rounds && Query.graph q == g -> Query.shortest_path q ~src ~dst
    | _ -> Query.shortest_path_graph !work ~src ~dst
  in
  let rec loop k acc =
    if k = 0 then List.rev acc
    else begin
      match round_query k with
      | None -> List.rev acc
      | Some (d, path) ->
        if removable path || List.exists protected path then begin
          kill_interior path;
          loop (k - 1) ((d, path) :: acc)
        end
        else
          (* Nothing left to remove: report the surviving path once. *)
          List.rev ((d, path) :: acc)
    end
  in
  loop rounds []
