(* ALT (A*, landmarks, triangle inequality) engine.

   Preprocessing picks landmarks by farthest-point selection over a
   deterministic {!Cisp_util.Rng}-sampled candidate set and stores
   each landmark's full single-source distance row in one flat
   [Bigarray] float64 table (count x n, C layout — row-major so a
   query's column walk strides by n, and the table lives outside the
   OCaml heap where the allocation lint can see the queries touch
   nothing).

   Queries run A* with the landmark lower bound
   pi(v) = max_L |d(L, v) - d(L, dst)| (infinite rows contribute 0).
   The bound is consistent (two triangle inequalities), so every node
   settles once with its exact distance, and the g-values accumulate
   [g(u) +. w] along the chosen path — the same left-to-right float
   fold as {!Dijkstra.run} — so reported distances are bit-identical
   to Dijkstra's whenever the shortest path is unique. *)

module Pool = Cisp_util.Pool
module Telemetry = Cisp_util.Telemetry

type t = {
  g : Graph.t;
  nodes : int array;  (* chosen landmark nodes *)
  table : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array2.t;
}

let count t = Array.length t.nodes
let nodes t = Array.copy t.nodes

let default_count = 8

let build ?(count = default_count) ?(seed = 0x415454) g =
  Telemetry.with_span "alt.build" (fun () ->
      if count < 1 then invalid_arg "Landmarks.build: count < 1";
      let n = Graph.node_count g in
      if n = 0 then
        { g; nodes = [||]; table = Bigarray.Array2.create Float64 C_layout 0 0 }
      else begin
        (* Candidate pool: an Rng-sampled subset (all nodes when small).
           Sampling, selection, and the parallel candidate Dijkstras are
           all pure functions of (graph, seed, count) — bit-identical at
           any pool width. *)
        let rng = Cisp_util.Rng.create seed in
        let want = min n (max count (4 * count)) in
        let candidates = Cisp_util.Rng.sample rng (Array.init n Fun.id) want in
        Array.sort Int.compare candidates;
        let rows = Dijkstra.all_pairs_results g ~sources:candidates in
        let nc = Array.length candidates in
        let count = min count nc in
        (* Farthest-point selection among the candidates: start from
           the candidate farthest from candidate 0, then repeatedly
           take the candidate maximizing its min distance to the
           chosen set.  Unreachable reads as infinity, so every new
           component wins a landmark before refinement continues; ties
           break to the smaller node id (strict >). *)
        let chosen = Array.make count 0 in
        let picked = Array.make nc false in
        let pick_best score =
          let best = ref (-1) and best_score = ref neg_infinity in
          for c = 0 to nc - 1 do
            if not picked.(c) then begin
              let s = score c in
              if s > !best_score then begin
                best_score := s;
                best := c
              end
            end
          done;
          !best
        in
        let root_row = rows.(0).Dijkstra.dist in
        let first = pick_best (fun c -> root_row.(candidates.(c))) in
        picked.(first) <- true;
        chosen.(0) <- first;
        let min_dist = Array.make nc infinity in
        for k = 1 to count - 1 do
          let prev_row = rows.(chosen.(k - 1)).Dijkstra.dist in
          for c = 0 to nc - 1 do
            let d = prev_row.(candidates.(c)) in
            if d < min_dist.(c) then min_dist.(c) <- d
          done;
          let next = pick_best (fun c -> min_dist.(c)) in
          picked.(next) <- true;
          chosen.(k) <- next
        done;
        let table = Bigarray.Array2.create Float64 C_layout count n in
        let nodes =
          Array.mapi
            (fun l c ->
              let row = rows.(c).Dijkstra.dist in
              for v = 0 to n - 1 do
                Bigarray.Array2.unsafe_set table l v row.(v)
              done;
              candidates.(c))
            chosen
        in
        if Telemetry.enabled () then Telemetry.add "alt.landmarks" count;
        { g; nodes; table }
      end)

(* ---------- query ---------- *)

type ws = {
  mutable dist : float array;   (* exact g-values, stamped *)
  mutable stamp : int array;
  mutable prev : int array;
  mutable settled : int array;  (* settle stamp, same version counter *)
  mutable version : int;
  mutable pdst : float array;   (* d(L, dst) per landmark, loaded per query *)
  heap : Iheap.t;
}

let ws_slot =
  Pool.Scratch.create (fun () ->
      {
        dist = [||];
        stamp = [||];
        prev = [||];
        settled = [||];
        version = 0;
        pdst = [||];
        heap = Iheap.create ();
      })

let ws_ensure ws n k =
  if Array.length ws.dist < n then begin
    ws.dist <- Array.make n 0.0;
    ws.stamp <- Array.make n 0;
    ws.prev <- Array.make n 0;
    ws.settled <- Array.make n 0;
    ws.version <- 0
  end;
  if Array.length ws.pdst < k then ws.pdst <- Array.make k 0.0

(* max_L |d(L, v) - d(L, dst)|; rows where either side is infinite
   contribute nothing (the difference is then no lower bound).
   Structural recursion with a float accumulator — this runs once per
   heap push of the A* inner loop, where a float ref would box (L10). *)
let[@cisp.zero_alloc] rec potential_from t ws v l k best =
  if l >= k then best
  else begin
    let dv = Bigarray.Array2.unsafe_get t.table l v in
    let dt = Array.unsafe_get ws.pdst l in
    let b = if dv < infinity && dt < infinity then Float.abs (dv -. dt) else 0.0 in
    potential_from t ws v (l + 1) k (if b > best then b else best)
  end

let[@cisp.zero_alloc] potential t ws v = potential_from t ws v 0 (Array.length t.nodes) 0.0

(* Relax the adjacency of the settled node [u]: structural recursion,
   no closure (same shape as Dijkstra.relax), keys carry g + pi. *)
let[@cisp.zero_alloc] rec relax t ws d u = function
  | [] -> ()
  | (e : Graph.edge) :: rest ->
    let v = e.Graph.dst in
    let nd = d +. e.Graph.weight in
    if ws.stamp.(v) <> ws.version || nd < ws.dist.(v) then begin
      ws.dist.(v) <- nd;
      ws.stamp.(v) <- ws.version;
      ws.prev.(v) <- u;
      Iheap.push ws.heap (nd +. potential t ws v) v
    end;
    relax t ws d u rest

let check_node t name v =
  if v < 0 || v >= Graph.node_count t.g then
    invalid_arg (Printf.sprintf "Landmarks.%s: node out of range" name)

(* A* from src until dst settles; true iff reached.  Exact distances
   and prev pointers stay readable in the workspace. *)
let search t ws ~src ~dst =
  let n = Graph.node_count t.g in
  ws_ensure ws n (Array.length t.nodes);
  let version = ws.version + 1 in
  ws.version <- version;
  let k = Array.length t.nodes in
  for l = 0 to k - 1 do
    ws.pdst.(l) <- Bigarray.Array2.unsafe_get t.table l dst
  done;
  let heap = ws.heap in
  Iheap.clear heap;
  ws.dist.(src) <- 0.0;
  ws.stamp.(src) <- version;
  ws.prev.(src) <- -1;
  Iheap.push heap (potential t ws src) src;
  let found = ref false and running = ref true in
  while !running && Iheap.length heap > 0 do
    let u = Iheap.pop_min heap in
    if ws.settled.(u) <> version then begin
      ws.settled.(u) <- version;
      if u = dst then begin
        found := true;
        running := false
      end
      else relax t ws ws.dist.(u) u (Graph.succ t.g u)
    end
  done;
  !found

let distance t ~src ~dst =
  check_node t "distance" src;
  check_node t "distance" dst;
  if src = dst then Some 0.0
  else begin
    let ws = Pool.Scratch.get ws_slot in
    if search t ws ~src ~dst then Some ws.dist.(dst) else None
  end

let shortest_path t ~src ~dst =
  check_node t "shortest_path" src;
  check_node t "shortest_path" dst;
  if src = dst then Some (0.0, [ src ])
  else begin
    let ws = Pool.Scratch.get ws_slot in
    if search t ws ~src ~dst then begin
      let rec walk acc v = if v = -1 then acc else walk (v :: acc) ws.prev.(v) in
      Some (ws.dist.(dst), walk [] dst)
    end
    else None
  end
