(** Monomorphic min-heap: float keys, int payloads, flat unboxed
    columns.  Pop order for any key sequence is bit-identical to
    {!Heap} (same sift logic); unlike {!Heap} every operation except
    amortized growth is allocation-free, so it is the priority queue
    of the zero-alloc shortest-path inner loops (Dijkstra, CH). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Forget all entries (O(1); the columns are retained for reuse). *)

val push : t -> float -> int -> unit

val min_key : t -> float
(** Smallest key.  Raises [Invalid_argument] on an empty heap. *)

val pop_min : t -> int
(** Remove and return the payload of the smallest key.  Raises
    [Invalid_argument] on an empty heap.  Read {!min_key} first when
    the key is needed — no pair is ever built. *)
