let path_equal a b = List.equal Int.equal a b

(* Shortest path in [g] avoiding a set of removed nodes and removed
   root edges. *)
let constrained_shortest g ~src ~dst ~banned_nodes ~banned_edges =
  let g' = Graph.copy g in
  Graph.remove_edges g' (fun u e ->
      (not (Hashtbl.mem banned_nodes u))
      && (not (Hashtbl.mem banned_nodes e.Graph.dst))
      && not (Hashtbl.mem banned_edges (u, e.Graph.dst)));
  Query.shortest_path_graph g' ~src ~dst

let prefix_length g path =
  (* Sum of edge weights along a node list. *)
  let rec loop acc = function
    | u :: (v :: _ as rest) ->
      let w =
        List.fold_left
          (fun best (e : Graph.edge) ->
            if e.dst = v then Float.min best e.weight else best)
          infinity (Graph.succ g u)
      in
      loop (acc +. w) rest
    | _ -> acc
  in
  loop 0.0 path

(* The spur searches always run plain Dijkstra on constrained working
   copies (an engine prepared for [g] would answer for edges the spur
   just banned); only the opening query may use a caller-prepared
   engine, and only when it was prepared from this very graph. *)
let initial_query query g ~src ~dst =
  match query with
  | Some q when Query.graph q == g -> Query.shortest_path q ~src ~dst
  | Some _ | None -> Query.shortest_path_graph g ~src ~dst

let yen ?query g ~src ~dst ~k =
  match initial_query query g ~src ~dst with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let candidates : (float * int list) list ref = ref [] in
    let add_candidate (d, p) =
      if
        (not (List.exists (fun (_, q) -> path_equal p q) !candidates))
        && not (List.exists (fun (_, q) -> path_equal p q) !accepted)
      then candidates := (d, p) :: !candidates
    in
    let rec take_prefix n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take_prefix (n - 1) rest
    in
    let rec rounds i prev_path =
      if i >= k then ()
      else begin
        let prev = Array.of_list prev_path in
        let len = Array.length prev in
        (* Spur from every node except the last. *)
        for spur_idx = 0 to len - 2 do
          let root = take_prefix (spur_idx + 1) prev_path in
          let spur_node = prev.(spur_idx) in
          let banned_edges = Hashtbl.create 8 in
          List.iter
            (fun (_, p) ->
              match (List.nth_opt p spur_idx, List.nth_opt p (spur_idx + 1)) with
              | Some u, Some v when path_equal (take_prefix (spur_idx + 1) p) root ->
                  Hashtbl.replace banned_edges (u, v) ()
              | _ -> ())
            !accepted;
          let banned_nodes = Hashtbl.create 8 in
          List.iteri
            (fun j v -> if j < spur_idx then Hashtbl.replace banned_nodes v ())
            prev_path;
          match constrained_shortest g ~src:spur_node ~dst ~banned_nodes ~banned_edges with
          | None -> ()
          | Some (_, spur_path) ->
            let root_without_spur = take_prefix spur_idx prev_path in
            let total_path = root_without_spur @ spur_path in
            (* Price the whole spliced path in one pass — cheaper to
               get exactly right than summing the root and spur parts. *)
            let exact = prefix_length g total_path in
            if exact < infinity then add_candidate (exact, total_path)
        done;
        match List.sort (fun (a, _) (b, _) -> Float.compare a b) !candidates with
        | [] -> ()
        | best :: rest ->
          candidates := rest;
          accepted := !accepted @ [ best ];
          rounds (i + 1) (snd best)
      end
    in
    rounds 1 (snd first);
    !accepted
