module Rng = Cisp_util.Rng
module Geodesy = Cisp_geo.Geodesy
module Graph = Cisp_graph.Graph
module Query = Cisp_graph.Query
module City = Cisp_data.City

type mode =
  | Synthetic of { seed : int; circuitousness_lo : float; circuitousness_hi : float }
  | Assumed of float

let default_mode = Synthetic { seed = 13; circuitousness_lo = 1.08; circuitousness_hi = 1.35 }

type t = {
  n : int;
  geodesic : float array array;
  route : float array array;    (* shortest fiber route, km *)
  edge_list : (int * int * float) list;
}

let geodesic_matrix sites =
  let n = Array.length sites in
  let d = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let g = Geodesy.distance_km sites.(i).City.coord sites.(j).City.coord in
      d.(i).(j) <- g;
      d.(j).(i) <- g
    done
  done;
  d

(* Monomorphic lexicographic order on candidate edges: same order as
   the polymorphic [compare] it replaces, without the runtime
   structural walk (L12). *)
let compare_edge (a, b) (c, d) =
  let c0 = Int.compare a c in
  if c0 <> 0 then c0 else Int.compare b d

(* Gabriel graph: edge (i,j) iff no third site lies inside the circle
   with diameter ij.  On geographic points we use the distance-based
   characterization d_ik^2 + d_jk^2 >= d_ij^2 for all k. *)
let gabriel_edges geodesic n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dij2 = geodesic.(i).(j) *. geodesic.(i).(j) in
      let blocked = ref false in
      for k = 0 to n - 1 do
        if k <> i && k <> j then begin
          let dik = geodesic.(i).(k) and djk = geodesic.(j).(k) in
          if (dik *. dik) +. (djk *. djk) < dij2 then blocked := true
        end
      done;
      if not !blocked then edges := (i, j) :: !edges
    done
  done;
  !edges

(* A few extra nearest-neighbour edges guard against degenerate
   configurations and give the network realistic redundancy. *)
let knn_edges geodesic n ~k =
  let edges = ref [] in
  for i = 0 to n - 1 do
    let order = Array.init n (fun j -> j) in
    Array.sort (fun a b -> Float.compare geodesic.(i).(a) geodesic.(i).(b)) order;
    let count = min k (n - 1) in
    for r = 1 to count do
      let j = order.(r) in
      edges := (min i j, max i j) :: !edges
    done
  done;
  List.sort_uniq compare_edge !edges

let build ?(mode = default_mode) ~sites () =
  let sites = Array.of_list sites in
  let n = Array.length sites in
  let geodesic = geodesic_matrix sites in
  match mode with
  | Assumed factor ->
    (* Route such that route * 1.5 = factor * geodesic. *)
    let route_factor = factor /. Cisp_util.Units.fiber_latency_factor in
    let route = Array.map (Array.map (fun g -> g *. route_factor)) geodesic in
    { n; geodesic; route; edge_list = [] }
  | Synthetic { seed; circuitousness_lo; circuitousness_hi } ->
    let rng = Rng.create seed in
    let pairs =
      List.sort_uniq compare_edge (gabriel_edges geodesic n @ knn_edges geodesic n ~k:3)
    in
    let edge_list =
      List.map
        (fun (i, j) ->
          let c = Rng.uniform rng circuitousness_lo circuitousness_hi in
          (i, j, geodesic.(i).(j) *. c))
        pairs
    in
    let g = Graph.create n in
    List.iter (fun (i, j, w) -> Graph.add_undirected g i j w) edge_list;
    let route = Query.all_pairs (Query.prepare g) in
    { n; geodesic; route; edge_list }

let route_km t i j = t.route.(i).(j)

let latency_km t i j = t.route.(i).(j) *. Cisp_util.Units.fiber_latency_factor

let latency_matrix t =
  Array.map (Array.map (fun r -> r *. Cisp_util.Units.fiber_latency_factor)) t.route

let mean_latency_inflation t =
  let acc = ref 0.0 and count = ref 0 in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      if t.geodesic.(i).(j) > 0.0 && t.route.(i).(j) < infinity then begin
        acc := !acc +. (latency_km t i j /. t.geodesic.(i).(j));
        incr count
      end
    done
  done;
  if !count = 0 then 0.0 else !acc /. float_of_int !count

let edges t = t.edge_list
