type t = float array array

let size (m : t) = Array.length m

let total (m : t) =
  Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 m

let normalize (m : t) =
  let s = total m in
  if s <= 0.0 then Array.map Array.copy m
  else Array.map (Array.map (fun v -> v /. s)) m

let scale_to_gbps m ~aggregate_gbps =
  let n = normalize m in
  Array.map (Array.map (fun v -> v *. aggregate_gbps)) n

let map_populations cities ~f =
  let n = Array.length cities in
  let w = Array.init n (fun i -> float_of_int cities.(i).Cisp_data.City.population *. f i) in
  let m = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then m.(i).(j) <- w.(i) *. w.(j)
    done
  done;
  normalize m

let population_product cities = map_populations cities ~f:(fun _ -> 1.0)

let uniform_pairs n =
  let m = Array.make_matrix n n 1.0 in
  for i = 0 to n - 1 do
    m.(i).(i) <- 0.0
  done;
  normalize m

let dc_edge ~cities ~n_total ~dc_of =
  let m = Array.make_matrix n_total n_total 0.0 in
  Array.iteri
    (fun i (c : Cisp_data.City.t) ->
      match dc_of i with
      | Some d when d <> i ->
        let v = float_of_int c.population in
        m.(i).(d) <- m.(i).(d) +. v;
        m.(d).(i) <- m.(d).(i) +. v
      | Some _ | None -> ())
    cities;
  normalize m

let mix components =
  match components with
  | [] -> invalid_arg "Matrix.mix: empty"
  | (_, first) :: _ ->
    let n = size first in
    let out = Array.make_matrix n n 0.0 in
    List.iter
      (fun (w, m) ->
        if size m <> n then invalid_arg "Matrix.mix: size mismatch";
        let nm = normalize m in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            out.(i).(j) <- out.(i).(j) +. (w *. nm.(i).(j))
          done
        done)
      components;
    normalize out
