let factors ~n ~gamma ~seed =
  if not (gamma >= 0.0 && gamma <= 1.0) then invalid_arg "Perturb.factors: gamma outside [0,1]";
  let rng = Cisp_util.Rng.create seed in
  Array.init n (fun _ -> Cisp_util.Rng.uniform rng (1.0 -. gamma) (1.0 +. gamma))

let population cities ~gamma ~seed =
  let f = factors ~n:(Array.length cities) ~gamma ~seed in
  Matrix.map_populations cities ~f:(fun i -> f.(i))
