(** Routing schemes over a designed topology (paper §5, §6.1).

    Besides default shortest-path routing, the paper implements
    "throughput optimal routing, and routing that minimizes the
    maximum link utilization, a scheme commonly employed by ISPs".
    Both alternatives spread load at the cost of ~10% extra latency.

    Paths are source routes (node arrays) per commodity, computed
    sequentially in descending demand with congestion-aware edge
    costs — the standard greedy realization of these schemes for
    unsplittable flows.

    On top of the single-path schemes sits a multipath layer for the
    availability story (§6.1): per-commodity sets of medium-aware
    (MW vs fiber) edge-disjoint paths, used either as a precomputed
    fast-local-failover table (primary + backups, the first surviving
    route is activated without any global recompute) or for
    load-splitting across all surviving routes. *)

type scheme =
  | Shortest_path
  | Min_max_utilization    (** sharp penalty on hot links *)
  | Throughput_optimal     (** congestion-proportional latency inflation *)
  | Bounded_stretch of float
      (** spread load like [Min_max_utilization] but never accept a
          route longer than the bound x the commodity's shortest
          latency — the direction the paper points to (Gvozdiev et
          al. [33]) for cutting over-provisioning at a modest,
          bounded latency cost *)
  | K_disjoint_split of int
      (** split each commodity over up to k medium-aware edge-disjoint
          paths, weighted inversely to path latency; under failures the
          surviving paths keep carrying (renormalized) load *)
  | K_disjoint_failover of int
      (** single path at a time: the shortest path as primary plus up
          to k-1 precomputed edge-disjoint backups, activated in
          priority order when the routes ahead of them fail — local
          failover with no global recompute *)

type network_model = {
  inputs : Cisp_design.Inputs.t;
  topology : Cisp_design.Topology.t;
  mw_gbps : (int * int) -> float;   (** capacity of a built link *)
  fiber_gbps : float;               (** capacity of each fiber edge *)
}

val paths :
  ?mw_ok:(int -> int -> bool) ->
  network_model -> scheme -> demands_gbps:Cisp_traffic.Matrix.t ->
  ((int * int), int array) Hashtbl.t
(** Source route for every commodity with positive demand (key (s,t)
    with s <> t, both directions present).  [K_disjoint_split] and
    [K_disjoint_failover] yield their primary (= shortest) route here;
    use {!multipath_table} for the full path sets.

    [mw_ok i j] (default: all alive) filters built MW links: a failed
    link's edge is dropped and its direct fiber edge (when the fiber
    pair exists) takes over — this is the whole-recompute reroute
    baseline the failure-scenario engine compares against. *)

val mean_route_latency_ms :
  network_model -> ((int * int), int array) Hashtbl.t ->
  demands_gbps:Cisp_traffic.Matrix.t -> float
(** Demand-weighted mean propagation latency of the chosen routes —
    used to show the alternatives' latency penalty without running
    packets. *)

(** {2 Multipath and fast local failover} *)

type medium = Mw | Fiber

type mp_path = {
  nodes : int array;           (** site sequence from s to t *)
  media : medium array;        (** per hop; length = hops *)
  latency_km : float;          (** latency-equivalent length over [media] *)
}

type multipath = {
  routes : mp_path array;      (** priority order; index 0 = primary *)
  split : float array;         (** load fractions, same length, sum 1 *)
}

val multipath_table :
  network_model -> scheme -> demands_gbps:Cisp_traffic.Matrix.t ->
  ((int * int), multipath) Hashtbl.t
(** Per-commodity route sets, precomputed under fair weather.  For
    [K_disjoint_split k] / [K_disjoint_failover k]: up to [k]
    medium-aware edge-disjoint paths (successive shortest-path removal
    over the combined MW+fiber multigraph, so a backup may take the
    fiber pair under a consumed MW edge); raises [Invalid_argument] if
    [k <= 0].  Any other scheme wraps its single {!paths} route.  The
    split weights are 1/latency-normalized for [K_disjoint_split], all
    mass on the primary otherwise. *)

val select_routes :
  multipath -> mw_ok:(int -> int -> bool) -> (mp_path * float) array
(** Fast local failover: the routes whose every MW hop survives
    [mw_ok] (fiber hops never fail), with split weights renormalized
    over the survivors.  When all surviving routes had zero weight
    (pure-failover backups), the first survivor gets the full load.
    [[||]] when no precomputed route survives — the commodity is
    unavailable until a global recompute. *)

val route_latency_km :
  network_model -> mw_ok:(int -> int -> bool) -> int array -> float
(** Latency-equivalent length of a node route where each hop uses its
    surviving fastest medium: the built MW link when alive and faster,
    else the direct fiber edge. *)

val multipath_mean_latency_ms :
  ((int * int), multipath) Hashtbl.t ->
  demands_gbps:Cisp_traffic.Matrix.t -> float
(** Demand-weighted mean of the split-weighted route latencies — the
    multipath analogue of {!mean_route_latency_ms}. *)
