type packet = {
  flow_id : int;
  size_bytes : int;
  route : int array;
  mutable hop : int;
  mutable injected_at : float;
  payload : int;
}

type link = {
  rate_bps : float;
  delay_s : float;
  buffer_bytes : int;
  mutable queue_bytes : int;
  mutable busy_until : float;
  mutable bytes_sent : int;
  mutable drops : int;
  mutable queue_peak : int;
  mutable busy_s : float;
}

type mutable_flow_stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable delay_sum : float;
  mutable delay_max : float;
}

type t = {
  eng : Engine.t;
  n : int;
  links : (int, link) Hashtbl.t;  (* key = src * n + dst *)
  flows : (int, mutable_flow_stats) Hashtbl.t;
  mutable delivery_cbs : (packet -> float -> unit) list;
}

let create eng ~n_nodes =
  { eng; n = n_nodes; links = Hashtbl.create 256; flows = Hashtbl.create 64; delivery_cbs = [] }

let engine t = t.eng

let key t src dst = (src * t.n) + dst

let add_link t ~src ~dst ~gbps ~delay_ms ~buffer_bytes =
  if not (src >= 0 && src < t.n && dst >= 0 && dst < t.n && src <> dst) then
    invalid_arg (Printf.sprintf "Net.add_link: bad endpoints %d-%d" src dst);
  if Hashtbl.mem t.links (key t src dst) then
    invalid_arg (Printf.sprintf "Net.add_link: duplicate link %d-%d" src dst);
  Hashtbl.replace t.links (key t src dst)
    {
      rate_bps = gbps *. 1e9;
      delay_s = delay_ms /. 1000.0;
      buffer_bytes;
      queue_bytes = 0;
      busy_until = 0.0;
      bytes_sent = 0;
      drops = 0;
      queue_peak = 0;
      busy_s = 0.0;
    }

let add_duplex t a b ~gbps ~delay_ms ~buffer_bytes =
  add_link t ~src:a ~dst:b ~gbps ~delay_ms ~buffer_bytes;
  add_link t ~src:b ~dst:a ~gbps ~delay_ms ~buffer_bytes

let on_delivery t f = t.delivery_cbs <- f :: t.delivery_cbs

(* Write path: the record is created on first use.  Only the traffic
   paths (inject / deliver / drop accounting) may call this — stats
   queries go through the read-only lookup below, so reading an
   unknown flow id never pollutes [all_flow_stats]. *)
let flow t id =
  match Hashtbl.find_opt t.flows id with
  | Some f -> f
  | None ->
    let f = { sent = 0; delivered = 0; dropped = 0; delay_sum = 0.0; delay_max = 0.0 } in
    Hashtbl.add t.flows id f;
    f

let find_flow t id = Hashtbl.find_opt t.flows id

let deliver t pkt =
  let now = Engine.now t.eng in
  let f = flow t pkt.flow_id in
  f.delivered <- f.delivered + 1;
  let d = now -. pkt.injected_at in
  f.delay_sum <- f.delay_sum +. d;
  if d > f.delay_max then f.delay_max <- d;
  List.iter (fun cb -> cb pkt now) t.delivery_cbs

(* Forward [pkt] from the node at route.(hop) towards route.(hop+1). *)
let rec forward t pkt =
  if pkt.hop >= Array.length pkt.route - 1 then deliver t pkt
  else begin
    let src = pkt.route.(pkt.hop) and dst = pkt.route.(pkt.hop + 1) in
    match Hashtbl.find_opt t.links (key t src dst) with
    | None ->
      (* Broken route: count as a drop. *)
      let f = flow t pkt.flow_id in
      f.dropped <- f.dropped + 1
    | Some link ->
      if link.queue_bytes + pkt.size_bytes > link.buffer_bytes then begin
        link.drops <- link.drops + 1;
        let f = flow t pkt.flow_id in
        f.dropped <- f.dropped + 1
      end
      else begin
        let now = Engine.now t.eng in
        link.queue_bytes <- link.queue_bytes + pkt.size_bytes;
        if link.queue_bytes > link.queue_peak then link.queue_peak <- link.queue_bytes;
        let tx_time = float_of_int pkt.size_bytes *. 8.0 /. link.rate_bps in
        let start = Float.max now link.busy_until in
        let tx_done = start +. tx_time in
        link.busy_until <- tx_done;
        link.busy_s <- link.busy_s +. tx_time;
        Engine.schedule t.eng ~at:tx_done (fun () ->
            link.queue_bytes <- link.queue_bytes - pkt.size_bytes;
            link.bytes_sent <- link.bytes_sent + pkt.size_bytes);
        Engine.schedule t.eng ~at:(tx_done +. link.delay_s) (fun () ->
            pkt.hop <- pkt.hop + 1;
            forward t pkt)
      end
  end

let inject t pkt =
  if Array.length pkt.route < 1 then invalid_arg "Net.inject: empty route";
  pkt.injected_at <- Engine.now t.eng;
  let f = flow t pkt.flow_id in
  f.sent <- f.sent + 1;
  forward t pkt

type flow_stats = {
  sent : int;
  delivered : int;
  dropped : int;
  delay_sum_s : float;
  delay_max_s : float;
}

let freeze (f : mutable_flow_stats) =
  {
    sent = f.sent;
    delivered = f.delivered;
    dropped = f.dropped;
    delay_sum_s = f.delay_sum;
    delay_max_s = f.delay_max;
  }

let zero_stats =
  { sent = 0; delivered = 0; dropped = 0; delay_sum_s = 0.0; delay_max_s = 0.0 }

let flow_stats_opt t id = Option.map freeze (find_flow t id)

let flow_stats t id =
  match find_flow t id with Some f -> freeze f | None -> zero_stats

let all_flow_stats t = Hashtbl.fold (fun id f acc -> (id, freeze f) :: acc) t.flows []

let mean_delay_ms t =
  let sum = ref 0.0 and count = ref 0 in
  Hashtbl.iter
    (fun _ (f : mutable_flow_stats) ->
      sum := !sum +. f.delay_sum;
      count := !count + f.delivered)
    t.flows;
  if !count = 0 then 0.0 else !sum /. float_of_int !count *. 1000.0

let loss_rate t =
  let sent = ref 0 and dropped = ref 0 in
  Hashtbl.iter
    (fun _ (f : mutable_flow_stats) ->
      sent := !sent + f.sent;
      dropped := !dropped + f.dropped)
    t.flows;
  if !sent = 0 then 0.0 else float_of_int !dropped /. float_of_int !sent

type link_stats = { bytes_sent : int; drops : int; queue_peak_bytes : int; busy_s : float }

let link_stats t ~src ~dst =
  Option.map
    (fun (l : link) ->
      { bytes_sent = l.bytes_sent; drops = l.drops; queue_peak_bytes = l.queue_peak; busy_s = l.busy_s })
    (Hashtbl.find_opt t.links (key t src dst))

let utilization t ~src ~dst ~duration_s =
  if duration_s <= 0.0 then invalid_arg "Net.utilization: duration_s <= 0";
  match Hashtbl.find_opt t.links (key t src dst) with
  | None -> 0.0
  | Some l -> l.busy_s /. duration_s

let max_utilization t ~duration_s =
  if duration_s <= 0.0 then invalid_arg "Net.max_utilization: duration_s <= 0";
  Hashtbl.fold (fun _ (l : link) acc -> Float.max acc (l.busy_s /. duration_s)) t.links 0.0

let queue_bytes t ~src ~dst =
  match Hashtbl.find_opt t.links (key t src dst) with None -> 0 | Some l -> l.queue_bytes

(* Per-link and per-flow counters flushed into telemetry at teardown —
   the FlowMonitor read-out of §5.  Totals are sums and samples are
   sorted on read-out, so hashtable iteration order does not show. *)
let flush_telemetry t =
  if Cisp_util.Telemetry.enabled () then begin
    Cisp_util.Telemetry.add "sim.links" (Hashtbl.length t.links);
    Hashtbl.iter
      (fun _ (l : link) ->
        Cisp_util.Telemetry.add "sim.link_drops" l.drops;
        Cisp_util.Telemetry.add "sim.link_bytes_sent" l.bytes_sent;
        Cisp_util.Telemetry.observe "sim.queue_peak_bytes" (float_of_int l.queue_peak);
        Cisp_util.Telemetry.observe "sim.link_busy_s" l.busy_s)
      t.links;
    Hashtbl.iter
      (fun _ (f : mutable_flow_stats) ->
        Cisp_util.Telemetry.add "sim.flow_sent" f.sent;
        Cisp_util.Telemetry.add "sim.flow_delivered" f.delivered;
        Cisp_util.Telemetry.add "sim.flow_dropped" f.dropped)
      t.flows
  end
