module Inputs = Cisp_design.Inputs
module Topology = Cisp_design.Topology
module Graph = Cisp_graph.Graph
module Dijkstra = Cisp_graph.Dijkstra

type scheme = Shortest_path | Min_max_utilization | Throughput_optimal | Bounded_stretch of float

type network_model = {
  inputs : Inputs.t;
  topology : Topology.t;
  mw_gbps : (int * int) -> float;
  fiber_gbps : float;
}

type edge_info = {
  u : int;
  v : int;
  latency_km : float;
  capacity_gbps : float;
  mutable load_gbps : float;
}

let norm (i, j) = if i < j then (i, j) else (j, i)

(* One edge per site pair: the built MW link when it is the faster
   medium, else the fiber edge — consistent with {!Builder.build}. *)
let edges_of_model m =
  let n = Inputs.n_sites m.inputs in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let mw = m.inputs.mw_km.(i).(j) and fib = m.inputs.fiber_km.(i).(j) in
      if Topology.is_built m.topology i j && mw < fib then
        edges :=
          { u = i; v = j; latency_km = mw; capacity_gbps = m.mw_gbps (i, j); load_gbps = 0.0 }
          :: !edges
      else if fib < infinity then
        edges :=
          { u = i; v = j; latency_km = fib; capacity_gbps = m.fiber_gbps; load_gbps = 0.0 }
          :: !edges
    done
  done;
  Array.of_list !edges

let build_graph n edges cost =
  let g = Graph.create n in
  Array.iteri
    (fun idx e ->
      let w = cost e in
      Graph.add_edge ~tag:idx g e.u e.v w;
      Graph.add_edge ~tag:idx g e.v e.u w)
    edges;
  g

let edge_cost scheme e =
  let rho = Float.min 0.999 (e.load_gbps /. Float.max 1e-9 e.capacity_gbps) in
  match scheme with
  | Shortest_path -> e.latency_km
  | Bounded_stretch _ | Min_max_utilization ->
    (* Latency-aware but sharply congestion-averse. *)
    e.latency_km *. (1.0 +. (8.0 *. (rho ** 4.0))) +. (1e4 *. Float.max 0.0 (rho -. 0.95))
  | Throughput_optimal ->
    (* Congestion-proportional inflation of the latency metric: keeps
       paths short when idle, spills to parallel routes as links load
       up (maximizing admissible throughput). *)
    e.latency_km *. (1.0 +. (1.2 *. rho /. (1.0 -. rho)))

let paths m scheme ~demands_gbps =
  let n = Inputs.n_sites m.inputs in
  let edges = edges_of_model m in
  let table : (int * int, int array) Hashtbl.t = Hashtbl.create 1024 in
  (match scheme with
  | Shortest_path ->
    (* One Dijkstra per source over static latency costs. *)
    let g = build_graph n edges (fun e -> e.latency_km) in
    for s = 0 to n - 1 do
      let r = Dijkstra.run g ~src:s in
      for t = 0 to n - 1 do
        if t <> s && demands_gbps.(s).(t) > 0.0 then begin
          match Dijkstra.path r ~dst:t with
          | [] -> ()
          | p -> Hashtbl.replace table (s, t) (Array.of_list p)
        end
      done
    done
  | Min_max_utilization | Throughput_optimal | Bounded_stretch _ ->
    (* Sequential congestion-aware assignment, big demands first. *)
    let commodities = ref [] in
    for s = 0 to n - 1 do
      for t = 0 to n - 1 do
        if t <> s && demands_gbps.(s).(t) > 0.0 then
          commodities := (demands_gbps.(s).(t), s, t) :: !commodities
      done
    done;
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a) !commodities in
    (* Cheapest-capacity edge per node pair, for charging loads. *)
    let by_pair : (int * int, edge_info) Hashtbl.t = Hashtbl.create 1024 in
    Array.iter
      (fun e ->
        let k = norm (e.u, e.v) in
        match Hashtbl.find_opt by_pair k with
        | Some prev when prev.latency_km <= e.latency_km -> ()
        | _ -> Hashtbl.replace by_pair k e)
      edges;
    (* Rebuilding the cost graph per commodity is wasteful; costs only
       drift as load accumulates, so refresh periodically. *)
    let g = ref (build_graph n edges (edge_cost scheme)) in
    let static_g = lazy (build_graph n edges (fun e -> e.latency_km)) in
    let since_refresh = ref 0 in
    List.iter
      (fun (demand, s, t) ->
        incr since_refresh;
        if !since_refresh >= 32 then begin
          g := build_graph n edges (edge_cost scheme);
          since_refresh := 0
        end;
        let latency_of arr =
          let acc = ref 0.0 in
          for k = 0 to Array.length arr - 2 do
            match Hashtbl.find_opt by_pair (norm (arr.(k), arr.(k + 1))) with
            | Some e -> acc := !acc +. e.latency_km
            | None -> ()
          done;
          !acc
        in
        match Dijkstra.shortest_path !g ~src:s ~dst:t with
        | None -> ()
        | Some (_, p) ->
          let arr = Array.of_list p in
          let arr =
            match scheme with
            | Bounded_stretch bound -> begin
              (* Fall back to the pure shortest path when the spread
                 route violates the commodity's latency budget. *)
              match Dijkstra.shortest_path (Lazy.force static_g) ~src:s ~dst:t with
              | Some (l0, p0) when latency_of arr > bound *. l0 -> Array.of_list p0
              | Some _ | None -> arr
            end
            | Shortest_path | Min_max_utilization | Throughput_optimal -> arr
          in
          Hashtbl.replace table (s, t) arr;
          for k = 0 to Array.length arr - 2 do
            match Hashtbl.find_opt by_pair (norm (arr.(k), arr.(k + 1))) with
            | Some e -> e.load_gbps <- e.load_gbps +. demand
            | None -> ()
          done)
      sorted);
  table

let mean_route_latency_ms m table ~demands_gbps =
  let num = ref 0.0 and den = ref 0.0 in
  Hashtbl.iter
    (fun (s, t) route ->
      let d = demands_gbps.(s).(t) in
      let lat = ref 0.0 in
      for k = 0 to Array.length route - 2 do
        let a = route.(k) and b = route.(k + 1) in
        let mw = m.inputs.mw_km.(a).(b) in
        let via_mw = Topology.is_built m.topology a b && mw < m.inputs.fiber_km.(a).(b) in
        lat := !lat +. (if via_mw then mw else m.inputs.fiber_km.(a).(b))
      done;
      num := !num +. (d *. Cisp_util.Units.ms_of_km_at_c !lat);
      den := !den +. d)
    table;
  if Float.equal !den 0.0 then 0.0 else !num /. !den
