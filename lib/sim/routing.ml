module Inputs = Cisp_design.Inputs
module Topology = Cisp_design.Topology
module Graph = Cisp_graph.Graph
module Query = Cisp_graph.Query
module Multipath = Cisp_graph.Multipath

type scheme =
  | Shortest_path
  | Min_max_utilization
  | Throughput_optimal
  | Bounded_stretch of float
  | K_disjoint_split of int
  | K_disjoint_failover of int

type network_model = {
  inputs : Inputs.t;
  topology : Topology.t;
  mw_gbps : (int * int) -> float;
  fiber_gbps : float;
}

type edge_info = {
  u : int;
  v : int;
  latency_km : float;
  capacity_gbps : float;
  mutable load_gbps : float;
}

let norm (i, j) = if i < j then (i, j) else (j, i)

let all_alive _ _ = true

(* One edge per site pair: the built MW link when it is the faster
   (and surviving) medium, else the fiber edge — consistent with
   {!Builder.build}.  [mw_ok] models failed links: their pair falls
   back to fiber when the fiber pair exists. *)
let edges_of_model ?(mw_ok = all_alive) m =
  let n = Inputs.n_sites m.inputs in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let mw = m.inputs.mw_km.(i).(j) and fib = m.inputs.fiber_km.(i).(j) in
      if Topology.is_built m.topology i j && mw < fib && mw_ok i j then
        edges :=
          { u = i; v = j; latency_km = mw; capacity_gbps = m.mw_gbps (i, j); load_gbps = 0.0 }
          :: !edges
      else if fib < infinity then
        edges :=
          { u = i; v = j; latency_km = fib; capacity_gbps = m.fiber_gbps; load_gbps = 0.0 }
          :: !edges
    done
  done;
  Array.of_list !edges

let build_graph n edges cost =
  let g = Graph.create n in
  Array.iteri
    (fun idx e ->
      let w = cost e in
      Graph.add_edge ~tag:idx g e.u e.v w;
      Graph.add_edge ~tag:idx g e.v e.u w)
    edges;
  g

let edge_cost scheme e =
  let rho = Float.min 0.999 (e.load_gbps /. Float.max 1e-9 e.capacity_gbps) in
  match scheme with
  | Shortest_path | K_disjoint_split _ | K_disjoint_failover _ -> e.latency_km
  | Bounded_stretch _ | Min_max_utilization ->
    (* Latency-aware but sharply congestion-averse. *)
    e.latency_km *. (1.0 +. (8.0 *. (rho ** 4.0))) +. (1e4 *. Float.max 0.0 (rho -. 0.95))
  | Throughput_optimal ->
    (* Congestion-proportional inflation of the latency metric: keeps
       paths short when idle, spills to parallel routes as links load
       up (maximizing admissible throughput). *)
    e.latency_km *. (1.0 +. (1.2 *. rho /. (1.0 -. rho)))

let paths ?(mw_ok = all_alive) m scheme ~demands_gbps =
  let n = Inputs.n_sites m.inputs in
  let edges = edges_of_model ~mw_ok m in
  let table : (int * int, int array) Hashtbl.t = Hashtbl.create 1024 in
  (match scheme with
  | Shortest_path | K_disjoint_split _ | K_disjoint_failover _ ->
    (* Static latency costs: a many-to-many workload over the demand
       support, routed through the query facade (plain Dijkstra rows
       below the engine threshold, CH buckets above it — identical
       paths either way).  The multipath schemes route their primary
       (= shortest) path here; the full precomputed path sets live in
       {!multipath_table}. *)
    let g = build_graph n edges (fun e -> e.latency_km) in
    let has_out = Array.make n false and has_in = Array.make n false in
    for s = 0 to n - 1 do
      for t = 0 to n - 1 do
        if t <> s && demands_gbps.(s).(t) > 0.0 then begin
          has_out.(s) <- true;
          has_in.(t) <- true
        end
      done
    done;
    let collect flags =
      Array.of_list (List.filter (Array.get flags) (List.init n Fun.id))
    in
    let sources = collect has_out and targets = collect has_in in
    let q = Query.prepare g in
    let routes = Query.many_to_many_paths q ~sources ~targets in
    Array.iteri
      (fun si s ->
        Array.iteri
          (fun ti t ->
            if t <> s && demands_gbps.(s).(t) > 0.0 then begin
              match routes.(si).(ti) with
              | None -> ()
              | Some (_, p) -> Hashtbl.replace table (s, t) (Array.of_list p)
            end)
          targets)
      sources
  | Min_max_utilization | Throughput_optimal | Bounded_stretch _ ->
    (* Sequential congestion-aware assignment, big demands first. *)
    let commodities = ref [] in
    for s = 0 to n - 1 do
      for t = 0 to n - 1 do
        if t <> s && demands_gbps.(s).(t) > 0.0 then
          commodities := (demands_gbps.(s).(t), s, t) :: !commodities
      done
    done;
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a) !commodities in
    (* Cheapest-capacity edge per node pair, for charging loads. *)
    let by_pair : (int * int, edge_info) Hashtbl.t = Hashtbl.create 1024 in
    Array.iter
      (fun e ->
        let k = norm (e.u, e.v) in
        match Hashtbl.find_opt by_pair k with
        | Some prev when prev.latency_km <= e.latency_km -> ()
        | _ -> Hashtbl.replace by_pair k e)
      edges;
    (* Rebuilding the cost graph per commodity is wasteful; costs only
       drift as load accumulates, so refresh periodically. *)
    let g = ref (build_graph n edges (edge_cost scheme)) in
    (* The static graph never mutates, so it gets a prepared engine;
       the drifting cost graph goes through the plain fallback. *)
    let static_q = lazy (Query.prepare (build_graph n edges (fun e -> e.latency_km))) in
    let since_refresh = ref 0 in
    List.iter
      (fun (demand, s, t) ->
        incr since_refresh;
        if !since_refresh >= 32 then begin
          g := build_graph n edges (edge_cost scheme);
          since_refresh := 0
        end;
        let latency_of arr =
          let acc = ref 0.0 in
          for k = 0 to Array.length arr - 2 do
            match Hashtbl.find_opt by_pair (norm (arr.(k), arr.(k + 1))) with
            | Some e -> acc := !acc +. e.latency_km
            | None -> ()
          done;
          !acc
        in
        match Query.shortest_path_graph !g ~src:s ~dst:t with
        | None -> ()
        | Some (_, p) ->
          let arr = Array.of_list p in
          let arr =
            match scheme with
            | Bounded_stretch bound -> begin
              (* Fall back to the pure shortest path when the spread
                 route violates the commodity's latency budget. *)
              match Query.shortest_path (Lazy.force static_q) ~src:s ~dst:t with
              | Some (l0, p0) when latency_of arr > bound *. l0 -> Array.of_list p0
              | Some _ | None -> arr
            end
            | Shortest_path | Min_max_utilization | Throughput_optimal
            | K_disjoint_split _ | K_disjoint_failover _ -> arr
          in
          Hashtbl.replace table (s, t) arr;
          for k = 0 to Array.length arr - 2 do
            match Hashtbl.find_opt by_pair (norm (arr.(k), arr.(k + 1))) with
            | Some e -> e.load_gbps <- e.load_gbps +. demand
            | None -> ()
          done)
      sorted);
  table

let mean_route_latency_ms m table ~demands_gbps =
  let num = ref 0.0 and den = ref 0.0 in
  Hashtbl.iter
    (fun (s, t) route ->
      let d = demands_gbps.(s).(t) in
      let lat = ref 0.0 in
      for k = 0 to Array.length route - 2 do
        let a = route.(k) and b = route.(k + 1) in
        let mw = m.inputs.mw_km.(a).(b) in
        let via_mw = Topology.is_built m.topology a b && mw < m.inputs.fiber_km.(a).(b) in
        lat := !lat +. (if via_mw then mw else m.inputs.fiber_km.(a).(b))
      done;
      num := !num +. (d *. Cisp_util.Units.ms_of_km_at_c !lat);
      den := !den +. d)
    table;
  if Float.equal !den 0.0 then 0.0 else !num /. !den

(* ---------- multipath & fast local failover ---------- *)

type medium = Mw | Fiber

type mp_path = {
  nodes : int array;
  media : medium array;
  latency_km : float;
}

type multipath = { routes : mp_path array; split : float array }

(* Latency per unordered pair and medium, [infinity] where absent.
   MW entries exist only where the built link is the faster medium,
   consistent with {!edges_of_model}. *)
let medium_tables m =
  let n = Inputs.n_sites m.inputs in
  let mw = Array.make_matrix n n infinity in
  let fib = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let mk = m.inputs.mw_km.(i).(j) and fk = m.inputs.fiber_km.(i).(j) in
      if Topology.is_built m.topology i j && mk < fk then begin
        mw.(i).(j) <- mk;
        mw.(j).(i) <- mk
      end;
      if fk < infinity then begin
        fib.(i).(j) <- fk;
        fib.(j).(i) <- fk
      end
    done
  done;
  (mw, fib)

(* The combined MW+fiber multigraph: parallel edges per pair where
   both media exist, tagged 2*pid (MW) / 2*pid+1 (fiber) so the
   disjoint rounds can consume one medium at a time. *)
let multigraph n ~mw ~fib =
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let pid = (i * n) + j in
      if mw.(i).(j) < infinity then Graph.add_undirected ~tag:(2 * pid) g i j mw.(i).(j);
      if fib.(i).(j) < infinity then Graph.add_undirected ~tag:((2 * pid) + 1) g i j fib.(i).(j)
    done
  done;
  g

(* Media of a node path given which tagged parallel edges are still
   alive: each hop uses MW when its MW edge exists and is un-consumed
   (MW is only present where it is the lighter medium, so Dijkstra
   used it), else fiber. *)
let mp_of_nodes ~mw ~fib ~killed n nodes =
  let hops = max 0 (Array.length nodes - 1) in
  let media = Array.make hops Fiber in
  let lat = ref 0.0 in
  for h = 0 to hops - 1 do
    let a = nodes.(h) and b = nodes.(h + 1) in
    let i = min a b and j = max a b in
    let pid = (i * n) + j in
    if mw.(i).(j) < infinity && not (Hashtbl.mem killed (2 * pid)) then begin
      media.(h) <- Mw;
      lat := !lat +. mw.(i).(j)
    end
    else lat := !lat +. fib.(i).(j)
  done;
  { nodes; media; latency_km = !lat }

(* Successive medium-aware edge-disjoint shortest paths for one
   commodity: each round reports the shortest surviving route, then
   consumes exactly the parallel edges (pair, medium) it used — a
   backup may take the fiber pair under a consumed MW edge. *)
let disjoint_routes ?query ~k ~src ~dst base n ~mw ~fib =
  let killed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let acc = ref [] in
  let remove work (_, path) =
    let nodes = Array.of_list path in
    let mp = mp_of_nodes ~mw ~fib ~killed n nodes in
    acc := mp :: !acc;
    Array.iteri
      (fun h medium ->
        let a = nodes.(h) and b = nodes.(h + 1) in
        let pid = (min a b * n) + max a b in
        let tag = match medium with Mw -> 2 * pid | Fiber -> (2 * pid) + 1 in
        Hashtbl.replace killed tag ())
      mp.media;
    Graph.remove_edges work (fun _ e -> not (Hashtbl.mem killed e.Graph.tag))
  in
  ignore (Multipath.successive ?query base ~src ~dst ~k ~remove);
  Array.of_list (List.rev !acc)

let multipath_table m scheme ~demands_gbps =
  let n = Inputs.n_sites m.inputs in
  let mw, fib = medium_tables m in
  let table : (int * int, multipath) Hashtbl.t = Hashtbl.create 1024 in
  (match scheme with
  | K_disjoint_split k | K_disjoint_failover k ->
    if k <= 0 then invalid_arg "Routing.multipath_table: k <= 0";
    let base = multigraph n ~mw ~fib in
    (* Every commodity's first round queries the same static
       multigraph: one prepared engine serves them all. *)
    let query = Query.prepare base in
    for s = 0 to n - 1 do
      for t = 0 to n - 1 do
        if t <> s && demands_gbps.(s).(t) > 0.0 then begin
          let routes = disjoint_routes ~query ~k ~src:s ~dst:t base n ~mw ~fib in
          if Array.length routes > 0 then begin
            let split =
              match scheme with
              | K_disjoint_split _ ->
                let inv = Array.map (fun p -> 1.0 /. Float.max 1e-9 p.latency_km) routes in
                let total = Array.fold_left ( +. ) 0.0 inv in
                Array.map (fun w -> w /. total) inv
              | _ -> Array.init (Array.length routes) (fun i -> if i = 0 then 1.0 else 0.0)
            in
            Hashtbl.replace table (s, t) { routes; split }
          end
        end
      done
    done
  | Shortest_path | Min_max_utilization | Throughput_optimal | Bounded_stretch _ ->
    let no_kills : (int, unit) Hashtbl.t = Hashtbl.create 1 in
    Cisp_util.Tbl.iter_sorted
      (fun key nodes ->
        let mp = mp_of_nodes ~mw ~fib ~killed:no_kills n nodes in
        Hashtbl.replace table key { routes = [| mp |]; split = [| 1.0 |] })
      (paths m scheme ~demands_gbps));
  table

let route_alive ~mw_ok p =
  let ok = ref true in
  Array.iteri
    (fun h medium ->
      match medium with
      | Mw -> if not (mw_ok p.nodes.(h) p.nodes.(h + 1)) then ok := false
      | Fiber -> ())
    p.media;
  !ok

let select_routes mp ~mw_ok =
  let alive = ref [] in
  Array.iteri (fun i p -> if route_alive ~mw_ok p then alive := (i, p) :: !alive) mp.routes;
  let alive = Array.of_list (List.rev !alive) in
  if Array.length alive = 0 then [||]
  else begin
    let total = Array.fold_left (fun acc (i, _) -> acc +. mp.split.(i)) 0.0 alive in
    if total > 0.0 then Array.map (fun (i, p) -> (p, mp.split.(i) /. total)) alive
    else Array.mapi (fun j (_, p) -> (p, if j = 0 then 1.0 else 0.0)) alive
  end

let route_latency_km m ~mw_ok nodes =
  let acc = ref 0.0 in
  for h = 0 to Array.length nodes - 2 do
    let a = nodes.(h) and b = nodes.(h + 1) in
    let mk = m.inputs.mw_km.(a).(b) and fk = m.inputs.fiber_km.(a).(b) in
    let via_mw = Topology.is_built m.topology a b && mk < fk && mw_ok a b in
    acc := !acc +. (if via_mw then mk else fk)
  done;
  !acc

let multipath_mean_latency_ms table ~demands_gbps =
  let num = ref 0.0 and den = ref 0.0 in
  Cisp_util.Tbl.iter_sorted
    (fun (s, t) mp ->
      let d = demands_gbps.(s).(t) in
      let lat = ref 0.0 in
      Array.iteri (fun i p -> lat := !lat +. (mp.split.(i) *. p.latency_km)) mp.routes;
      num := !num +. (d *. Cisp_util.Units.ms_of_km_at_c !lat);
      den := !den +. d)
    table;
  if Float.equal !den 0.0 then 0.0 else !num /. !den
