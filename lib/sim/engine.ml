type t = {
  queue : (unit -> unit) Cisp_graph.Heap.t;
  mutable clock : float;
  mutable count : int;
}

let create () = { queue = Cisp_graph.Heap.create ~capacity:4096 (); clock = 0.0; count = 0 }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then invalid_arg "Engine.schedule: at is in the past";
  Cisp_graph.Heap.push t.queue at f

let schedule_in t ~after f = schedule t ~at:(t.clock +. after) f

let run t ~until =
  let count_before = t.count in
  let rec loop () =
    match Cisp_graph.Heap.peek t.queue with
    | None -> ()
    | Some (at, _) when at > until -> ()
    | Some _ ->
      (match Cisp_graph.Heap.pop t.queue with
      | Some (at, f) ->
        t.clock <- at;
        t.count <- t.count + 1;
        f ();
        loop ()
      | None -> ())
  in
  loop ();
  if t.clock < until then t.clock <- until;
  if Cisp_util.Telemetry.enabled () then
    Cisp_util.Telemetry.add "sim.events" (t.count - count_before)

let events_processed t = t.count
