(** Packet-level network: nodes, links with FIFO drop-tail queues,
    source-routed packets, and built-in measurement (the paper's
    FlowMonitor plus the custom link-utilization module of §5). *)

type packet = {
  flow_id : int;
  size_bytes : int;
  route : int array;        (** node sequence, route.(0) = source *)
  mutable hop : int;        (** index of the node currently holding it *)
  mutable injected_at : float;
  payload : int;            (** opaque, used by TCP for sequence numbers *)
}

type t

val create : Engine.t -> n_nodes:int -> t

val engine : t -> Engine.t

val add_link :
  t -> src:int -> dst:int -> gbps:float -> delay_ms:float -> buffer_bytes:int -> unit
(** Directed link.  At most one link per (src, dst). *)

val add_duplex :
  t -> int -> int -> gbps:float -> delay_ms:float -> buffer_bytes:int -> unit

val inject : t -> packet -> unit
(** Start forwarding at [route.(hop)]; [injected_at] is stamped. *)

val on_delivery : t -> (packet -> float -> unit) -> unit
(** Callback invoked when a packet reaches the end of its route, with
    the delivery time (use with [injected_at] for one-way delay).
    TCP registers here. *)

(** {2 Measurements} *)

type flow_stats = {
  sent : int;
  delivered : int;
  dropped : int;
  delay_sum_s : float;
  delay_max_s : float;
}

val flow_stats : t -> int -> flow_stats
(** Read-only: an id no packet ever used reports all-zero stats and
    leaves the flow table untouched (it will not appear in
    {!all_flow_stats}). *)

val flow_stats_opt : t -> int -> flow_stats option
(** As {!flow_stats} but [None] for an unknown flow id. *)

val all_flow_stats : t -> (int * flow_stats) list

val mean_delay_ms : t -> float
(** Delivery-weighted mean one-way delay across all flows. *)

val loss_rate : t -> float
(** Dropped / sent across all flows. *)

type link_stats = {
  bytes_sent : int;
  drops : int;
  queue_peak_bytes : int;
  busy_s : float;           (** cumulative transmission time *)
}

val link_stats : t -> src:int -> dst:int -> link_stats option

val utilization : t -> src:int -> dst:int -> duration_s:float -> float
(** Busy fraction of the link over [duration_s].  Raises
    [Invalid_argument] if [duration_s <= 0] (a zero-length run has no
    well-defined utilization). *)

val max_utilization : t -> duration_s:float -> float
(** Maximum {!utilization} over every link; raises [Invalid_argument]
    if [duration_s <= 0]. *)

val queue_bytes : t -> src:int -> dst:int -> int
(** Instantaneous queue occupancy (for the Fig 6 pacing experiment). *)

val flush_telemetry : t -> unit
(** Flush per-link counters (drops, bytes, queue peaks, busy time) and
    per-flow totals into {!Cisp_util.Telemetry} at teardown.  No-op
    when telemetry is disabled. *)
