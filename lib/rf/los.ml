module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy
module Dem = Cisp_terrain.Dem
module Dem_cache = Cisp_terrain.Dem_cache
module Units = Cisp_util.Units

type params = {
  max_range_km : float;
  f_ghz : float;
  k_factor : float;
  step_km : float;
  min_range_km : float;
}

let default_params =
  { max_range_km = 100.0; f_ghz = 11.0; k_factor = 1.3; step_km = 1.0; min_range_km = 1.0 }

type endpoint = { position : Coord.t; ground_m : float; antenna_m : float }

type verdict =
  | Clear of float
  | Out_of_range
  | Blocked of { at_km : float; deficit_m : float }

let endpoint_of_tower ~dem position ~antenna_m =
  { position; ground_m = Dem.elevation_m dem position; antenna_m }

(* Per-domain profile buffers: sample positions as scalar lat/lon, the
   sampled surface heights, plus two small fixed floatarrays — the
   per-pair constants ([pair], see the p_* slots) and the walk results
   ([acc], see the a_* slots).  Keeping every per-pair float in
   unboxed domain-local storage (instead of function arguments or
   captured locals) is what lets the whole cached engine below run
   closure-free and allocation-free: floats handed across a
   non-flambda call boundary are boxed, floats read out of a
   floatarray stay in registers.  Domain-private (Pool.Scratch), and
   only ever an input to the computation — contents are overwritten
   for the sample range before each read — so reuse cannot leak state
   between pairs or domains. *)
type scratch = {
  mutable lats : Float.Array.t;
  mutable lons : Float.Array.t;
  mutable surf : Float.Array.t;
  pair : Float.Array.t;
  acc : Float.Array.t;
}

(* Slots in [scratch.pair].  0/1 are written by
   {!Fresnel.pair_coeffs_into}; 6..15 hoist the pair-constant slerp
   trigonometry out of the fill loop; 16/17 carry the degenerate
   (near-zero angular distance) endpoint. *)
let p_bulge = 0
let p_fres = 1
let p_total = 2
let p_fn = 3
let p_ha = 4
let p_dh = 5
let p_d = 6
let p_sind = 7
let p_cp1 = 8
let p_sp1 = 9
let p_cl1 = 10
let p_sl1 = 11
let p_cp2 = 12
let p_sp2 = 13
let p_cl2 = 14
let p_sl2 = 15
let p_lat1 = 16
let p_lon1 = 17

(* Slots in [scratch.acc]: the running clearance minimum, and the
   first blockage's position/deficit guarded by a 0/1 flag. *)
let a_margin = 0
let a_at = 1
let a_deficit = 2
let a_blocked = 3

let scratch_key =
  Cisp_util.Pool.Scratch.create (fun () ->
      {
        lats = Float.Array.create 256;
        lons = Float.Array.create 256;
        surf = Float.Array.create 256;
        pair = Float.Array.create 18;
        acc = Float.Array.create 4;
      })

let[@cisp.alloc_ok "amortized: grow-once domain-local sample buffers"] ensure sc n =
  if Float.Array.length sc.lats < n then begin
    let cap = max n (2 * Float.Array.length sc.lats) in
    sc.lats <- Float.Array.create cap;
    sc.lons <- Float.Array.create cap;
    sc.surf <- Float.Array.create cap
  end

(* Fill [lats]/[lons] for sample indices [lo..hi] of the prepared
   pair's walk: the great-circle slerp of [Geodesy.interpolate], with
   the pair-constant trigonometry read back out of [sc.pair] (hoisted
   there once per pair by [begin_profile]) and the per-sample [Coord.t]
   flattened into the two scalar buffers.  The per-sample expressions
   keep the exact operation order of [Geodesy.interpolate], so the
   positions are bit-identical to what the closure-based sampler
   saw. *)
let[@cisp.zero_alloc] fill_positions sc ~lo ~hi =
  let lats = sc.lats and lons = sc.lons and pair = sc.pair in
  let d = Float.Array.get pair p_d in
  if d < 1e-12 then begin
    let lat1 = Float.Array.get pair p_lat1 and lon1 = Float.Array.get pair p_lon1 in
    for i = lo to hi do
      Float.Array.set lats i lat1;
      Float.Array.set lons i lon1
    done
  end
  else begin
    let cp1 = Float.Array.get pair p_cp1
    and sp1 = Float.Array.get pair p_sp1
    and cl1 = Float.Array.get pair p_cl1
    and sl1 = Float.Array.get pair p_sl1 in
    let cp2 = Float.Array.get pair p_cp2
    and sp2 = Float.Array.get pair p_sp2
    and cl2 = Float.Array.get pair p_cl2
    and sl2 = Float.Array.get pair p_sl2 in
    let sind = Float.Array.get pair p_sind in
    let fn = Float.Array.get pair p_fn in
    for i = lo to hi do
      let t = float_of_int i /. fn in
      let sa = sin ((1.0 -. t) *. d) /. sind in
      let sb = sin (t *. d) /. sind in
      let x = (sa *. cp1 *. cl1) +. (sb *. cp2 *. cl2) in
      let y = (sa *. cp1 *. sl1) +. (sb *. cp2 *. sl2) in
      let z = (sa *. sp1) +. (sb *. sp2) in
      Float.Array.set lats i (atan2 z (sqrt ((x *. x) +. (y *. y))) *. 180.0 /. Float.pi);
      Float.Array.set lons i (Coord.normalize_lon (atan2 y x *. 180.0 /. Float.pi))
    done
  end

(* Price samples [lo..hi] of a filled, sampled chunk against the
   hoisted clearance coefficients ({!Fresnel.pair_coeffs}): with
   [u = t (1 - t)] each sample costs one multiply-add and one sqrt.
   Returns true iff the profile is blocked so far; the first
   blockage's position/deficit and the running clearance minimum
   accumulate in [sc.acc].  Samples after the first blockage still
   fold into the minimum, which is harmless: the margin is only read
   on fully-clear profiles. *)
let[@cisp.zero_alloc] walk_chunk sc ~lo ~hi =
  let pair = sc.pair and surf = sc.surf and acc = sc.acc in
  let bulge_c = Float.Array.get pair p_bulge
  and fres_c = Float.Array.get pair p_fres in
  let total = Float.Array.get pair p_total
  and fn = Float.Array.get pair p_fn in
  let ha = Float.Array.get pair p_ha
  and dh = Float.Array.get pair p_dh in
  for i = lo to hi do
    let t = float_of_int i /. fn in
    let u = t *. (1.0 -. t) in
    let m =
      ha +. (t *. dh)
      -. (Float.Array.get surf i +. ((bulge_c *. u) +. (fres_c *. sqrt u)))
    in
    if m < 0.0 then begin
      (* The blocked flag is exactly 0.0 or 1.0; ordering comparisons
         stay monomorphic and unboxed where `=` would be polymorphic
         equality at float (L1). *)
      if Float.Array.get acc a_blocked < 0.5 then begin
        Float.Array.set acc a_at (total *. t);
        Float.Array.set acc a_deficit (-.m);
        Float.Array.set acc a_blocked 1.0
      end
    end
    else if m < Float.Array.get acc a_margin then Float.Array.set acc a_margin m
  done;
  Float.Array.get acc a_blocked > 0.5

(* Compute and store every per-pair constant in [sc.pair], reset
   [sc.acc], and size the sample buffers.  Returns the step count [n],
   or 0 when the pair is out of range.  [@inline] keeps the float
   intermediates in registers across the (non-flambda) call
   boundary. *)
let[@inline] [@cisp.zero_alloc] begin_profile sc ~params a b =
  let total = Geodesy.distance_km a.position b.position in
  if total > params.max_range_km || total < params.min_range_km then 0
  else begin
    let n = max 2 (int_of_float (Float.ceil (total /. params.step_km))) in
    ensure sc (n + 1);
    let pair = sc.pair in
    Fresnel.pair_coeffs_into ~k:params.k_factor ~f_ghz:params.f_ghz ~d_km:total
      ~out:pair;
    let ha = a.ground_m +. a.antenna_m in
    let hb = b.ground_m +. b.antenna_m in
    Float.Array.set pair p_total total;
    Float.Array.set pair p_fn (float_of_int n);
    Float.Array.set pair p_ha ha;
    Float.Array.set pair p_dh (hb -. ha);
    let d = total /. Units.earth_radius_km in
    Float.Array.set pair p_d d;
    Float.Array.set pair p_sind (sin d);
    let phi1 = Units.deg_to_rad (Coord.lat a.position)
    and lam1 = Units.deg_to_rad (Coord.lon a.position)
    and phi2 = Units.deg_to_rad (Coord.lat b.position)
    and lam2 = Units.deg_to_rad (Coord.lon b.position) in
    Float.Array.set pair p_cp1 (cos phi1);
    Float.Array.set pair p_sp1 (sin phi1);
    Float.Array.set pair p_cl1 (cos lam1);
    Float.Array.set pair p_sl1 (sin lam1);
    Float.Array.set pair p_cp2 (cos phi2);
    Float.Array.set pair p_sp2 (sin phi2);
    Float.Array.set pair p_cl2 (cos lam2);
    Float.Array.set pair p_sl2 (sin lam2);
    Float.Array.set pair p_lat1 (Coord.lat a.position);
    Float.Array.set pair p_lon1 (Coord.lon a.position);
    Float.Array.set sc.acc a_margin infinity;
    Float.Array.set sc.acc a_blocked 0.0;
    n
  end

(* The closure-free cached profile walk: position and sample in chunks
   so a blockage early in the walk stops the sweep before paying for
   the rest of the path — most of a sweep's terrain evaluations are on
   paths that fail within a few samples.  Chunking changes no result
   (every computed value is a pure function of its index).  A
   top-level recursive function, not a local one: a local [rec scan]
   would capture its environment and allocate a closure per check. *)
let rec scan_cached cache sc ~n ~lo =
  if lo >= n then 0
  else begin
    let hi = min (n - 1) (lo + 7) in
    fill_positions sc ~lo ~hi;
    Dem_cache.surface_samples cache ~lats:sc.lats ~lons:sc.lons ~out:sc.surf ~lo ~hi;
    if walk_chunk sc ~lo ~hi then 2 else scan_cached cache sc ~n ~lo:(hi + 1)
  end

(* Status-int engine behind [check_cached]/[feasible_cached]: 0 =
   clear, 1 = out of range, 2 = blocked, details in the domain
   scratch's [acc].  This is the zero-allocation core the hop sweeps
   drive from pool workers; the verdict-shaped wrapper below allocates
   its constructor, the engine itself allocates nothing once the
   scratch buffers have grown.  The cheap rejection: the midpoint has
   the deepest curvature bulge and is the likeliest blockage, so it is
   positioned and sampled alone before paying for the full profile. *)
let[@cisp.zero_alloc] profile_status_cached ~params ~cache a b =
  let sc = Cisp_util.Pool.Scratch.get scratch_key in
  let n = begin_profile sc ~params a b in
  if n = 0 then 1
  else begin
    let mid = n / 2 in
    fill_positions sc ~lo:mid ~hi:mid;
    Dem_cache.surface_samples cache ~lats:sc.lats ~lons:sc.lons ~out:sc.surf
      ~lo:mid ~hi:mid;
    if walk_chunk sc ~lo:mid ~hi:mid then 2 else scan_cached cache sc ~n ~lo:1
  end

(* The generic engine for closure-sampled profiles ([check],
   [check_dem]): the same prepared-pair chunked walk, with the
   obstruction heights supplied by [sample sc ~lo ~hi] filling
   [sc.surf.(lo..hi)] at the positions in [sc.lats]/[sc.lons]. *)
let profile_verdict ~params ~sample a b =
  let sc = Cisp_util.Pool.Scratch.get scratch_key in
  let n = begin_profile sc ~params a b in
  if n = 0 then Out_of_range
  else begin
    let acc = sc.acc in
    let blocked () =
      Blocked
        {
          at_km = Float.Array.get acc a_at;
          deficit_m = Float.Array.get acc a_deficit;
        }
    in
    let mid = n / 2 in
    fill_positions sc ~lo:mid ~hi:mid;
    sample sc ~lo:mid ~hi:mid;
    if walk_chunk sc ~lo:mid ~hi:mid then blocked ()
    else begin
      let rec scan lo =
        if lo >= n then Clear (Float.Array.get acc a_margin)
        else begin
          let hi = min (n - 1) (lo + 7) in
          fill_positions sc ~lo ~hi;
          sample sc ~lo ~hi;
          if walk_chunk sc ~lo ~hi then blocked () else scan (hi + 1)
        end
      in
      scan 1
    end
  end

let check ?(params = default_params) ~surface a b =
  profile_verdict ~params a b ~sample:(fun sc ~lo ~hi ->
      for i = lo to hi do
        Float.Array.set sc.surf i
          (surface
             (Coord.make ~lat:(Float.Array.get sc.lats i) ~lon:(Float.Array.get sc.lons i)))
      done)

let feasible ?params ~surface a b =
  match check ?params ~surface a b with
  | Clear _ -> true
  | Out_of_range | Blocked _ -> false

let check_dem ?params ~dem a b = check ?params ~surface:(Dem.surface_m dem) a b

let check_cached ?(params = default_params) ~cache a b =
  match profile_status_cached ~params ~cache a b with
  | 1 -> Out_of_range
  | 2 ->
    let sc = Cisp_util.Pool.Scratch.get scratch_key in
    Blocked
      {
        at_km = Float.Array.get sc.acc a_at;
        deficit_m = Float.Array.get sc.acc a_deficit;
      }
  | _ ->
    let sc = Cisp_util.Pool.Scratch.get scratch_key in
    Clear (Float.Array.get sc.acc a_margin)

(* [?params] without default sugar: `?(params = default_params)`
   desugars to a let binding between the parameter lambdas, turning
   the rest of the function into a runtime closure allocated on every
   call — the explicit match keeps the parameter chain intact. *)
let[@cisp.zero_alloc] feasible_cached ?params ~cache a b =
  let params = match params with Some p -> p | None -> default_params in
  profile_status_cached ~params ~cache a b = 0
