module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy
module Dem = Cisp_terrain.Dem
module Dem_cache = Cisp_terrain.Dem_cache
module Units = Cisp_util.Units

type params = {
  max_range_km : float;
  f_ghz : float;
  k_factor : float;
  step_km : float;
  min_range_km : float;
}

let default_params =
  { max_range_km = 100.0; f_ghz = 11.0; k_factor = 1.3; step_km = 1.0; min_range_km = 1.0 }

type endpoint = { position : Coord.t; ground_m : float; antenna_m : float }

type verdict =
  | Clear of float
  | Out_of_range
  | Blocked of { at_km : float; deficit_m : float }

let endpoint_of_tower ~dem position ~antenna_m =
  { position; ground_m = Dem.elevation_m dem position; antenna_m }

(* Per-domain profile buffers: sample positions as scalar lat/lon and
   the sampled surface heights, reused across every pair the domain
   checks, plus a one-float accumulator so the margin walk never has
   to box a running minimum.  Domain-private (Pool.Scratch), and only
   ever an input to the computation — contents are overwritten for the
   sample range before each read — so reuse cannot leak state between
   pairs or domains. *)
type scratch = {
  mutable lats : Float.Array.t;
  mutable lons : Float.Array.t;
  mutable surf : Float.Array.t;
  acc : Float.Array.t;
}

let scratch_key =
  Cisp_util.Pool.Scratch.create (fun () ->
      {
        lats = Float.Array.create 256;
        lons = Float.Array.create 256;
        surf = Float.Array.create 256;
        acc = Float.Array.create 1;
      })

let ensure sc n =
  if Float.Array.length sc.lats < n then begin
    let cap = max n (2 * Float.Array.length sc.lats) in
    sc.lats <- Float.Array.create cap;
    sc.lons <- Float.Array.create cap;
    sc.surf <- Float.Array.create cap
  end

(* Fill [lats]/[lons] for sample indices [lo..hi] of an [n]-step walk
   from [pa] to [pb]: the great-circle slerp of [Geodesy.interpolate]
   with the pair-constant trigonometry hoisted out of the loop and the
   per-sample [Coord.t] flattened into the two scalar buffers.  The
   per-sample expressions keep the exact operation order of
   [Geodesy.interpolate], so the positions are bit-identical to what
   the closure-based sampler saw. *)
let fill_positions sc pa pb ~total ~n ~lo ~hi =
  let lats = sc.lats and lons = sc.lons in
  let d = total /. Units.earth_radius_km in
  if d < 1e-12 then
    for i = lo to hi do
      Float.Array.set lats i (Coord.lat pa);
      Float.Array.set lons i (Coord.lon pa)
    done
  else begin
    let phi1 = Units.deg_to_rad (Coord.lat pa)
    and lam1 = Units.deg_to_rad (Coord.lon pa)
    and phi2 = Units.deg_to_rad (Coord.lat pb)
    and lam2 = Units.deg_to_rad (Coord.lon pb) in
    let cp1 = cos phi1 and sp1 = sin phi1 and cl1 = cos lam1 and sl1 = sin lam1 in
    let cp2 = cos phi2 and sp2 = sin phi2 and cl2 = cos lam2 and sl2 = sin lam2 in
    let sind = sin d in
    let fn = float_of_int n in
    for i = lo to hi do
      let t = float_of_int i /. fn in
      let sa = sin ((1.0 -. t) *. d) /. sind in
      let sb = sin (t *. d) /. sind in
      let x = (sa *. cp1 *. cl1) +. (sb *. cp2 *. cl2) in
      let y = (sa *. cp1 *. sl1) +. (sb *. cp2 *. sl2) in
      let z = (sa *. sp1) +. (sb *. sp2) in
      Float.Array.set lats i (atan2 z (sqrt ((x *. x) +. (y *. y))) *. 180.0 /. Float.pi);
      Float.Array.set lons i (Coord.normalize_lon (atan2 y x *. 180.0 /. Float.pi))
    done
  end

(* The common profile engine.  [sample sc ~lo ~hi] must fill
   [sc.surf.(lo..hi)] with the obstruction heights at the positions in
   [sc.lats]/[sc.lons]; the two entry points below differ only in that
   callback.  The clearance requirement uses the hoisted pair
   coefficients ({!Fresnel.pair_coeffs}): with [u = t (1 - t)] the per
   sample cost is one multiply-add and one sqrt, no allocation. *)
let profile_verdict ~params ~sample a b =
  let total = Geodesy.distance_km a.position b.position in
  if total > params.max_range_km || total < params.min_range_km then Out_of_range
  else begin
    let ha = a.ground_m +. a.antenna_m in
    let hb = b.ground_m +. b.antenna_m in
    let n = max 2 (int_of_float (Float.ceil (total /. params.step_km))) in
    let sc = Cisp_util.Pool.Scratch.get scratch_key in
    ensure sc (n + 1);
    let bulge_c, fres_c =
      Fresnel.pair_coeffs ~k:params.k_factor ~f_ghz:params.f_ghz ~d_km:total ()
    in
    let fn = float_of_int n and dh = hb -. ha in
    (* Cheap rejection: the midpoint has the deepest curvature bulge
       and is the likeliest blockage; position and sample it alone
       before paying for the full profile. *)
    let mid = n / 2 in
    fill_positions sc a.position b.position ~total ~n ~lo:mid ~hi:mid;
    sample sc ~lo:mid ~hi:mid;
    let surf = sc.surf in
    let tm = float_of_int mid /. fn in
    let um = tm *. (1.0 -. tm) in
    let mid_m =
      ha +. (tm *. dh)
      -. (Float.Array.get surf mid +. ((bulge_c *. um) +. (fres_c *. sqrt um)))
    in
    if mid_m < 0.0 then Blocked { at_km = total *. tm; deficit_m = -.mid_m }
    else begin
      (* Position and sample the profile in chunks so a blockage early
         in the walk stops the sweep before paying for the rest of the
         path — most of the sweep's terrain evaluations are on paths
         that fail within a few samples.  Chunking changes no result
         (every computed value is a pure function of its index). *)
      let acc = sc.acc in
      Float.Array.set acc 0 infinity;
      let chunk = 8 in
      let rec scan lo =
        if lo >= n then Clear (Float.Array.get acc 0)
        else begin
          let hi = min (n - 1) (lo + chunk - 1) in
          fill_positions sc a.position b.position ~total ~n ~lo ~hi;
          sample sc ~lo ~hi;
          let rec walk i =
            if i > hi then scan (hi + 1)
            else begin
              let t = float_of_int i /. fn in
              let u = t *. (1.0 -. t) in
              let m =
                ha +. (t *. dh)
                -. (Float.Array.get surf i +. ((bulge_c *. u) +. (fres_c *. sqrt u)))
              in
              if m < 0.0 then Blocked { at_km = total *. t; deficit_m = -.m }
              else begin
                Float.Array.set acc 0 (Float.min (Float.Array.get acc 0) m);
                walk (i + 1)
              end
            end
          in
          walk lo
        end
      in
      scan 1
    end
  end

let check ?(params = default_params) ~surface a b =
  profile_verdict ~params a b ~sample:(fun sc ~lo ~hi ->
      for i = lo to hi do
        Float.Array.set sc.surf i
          (surface
             (Coord.make ~lat:(Float.Array.get sc.lats i) ~lon:(Float.Array.get sc.lons i)))
      done)

let feasible ?params ~surface a b =
  match check ?params ~surface a b with
  | Clear _ -> true
  | Out_of_range | Blocked _ -> false

let check_dem ?params ~dem a b = check ?params ~surface:(Dem.surface_m dem) a b

let check_cached ?(params = default_params) ~cache a b =
  profile_verdict ~params a b ~sample:(fun sc ~lo ~hi ->
      Dem_cache.surface_samples cache ~lats:sc.lats ~lons:sc.lons ~out:sc.surf ~lo ~hi)

let feasible_cached ?params ~cache a b =
  match check_cached ?params ~cache a b with
  | Clear _ -> true
  | Out_of_range | Blocked _ -> false
