module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy
module Dem = Cisp_terrain.Dem

type params = {
  max_range_km : float;
  f_ghz : float;
  k_factor : float;
  step_km : float;
  min_range_km : float;
}

let default_params =
  { max_range_km = 100.0; f_ghz = 11.0; k_factor = 1.3; step_km = 1.0; min_range_km = 1.0 }

type endpoint = { position : Coord.t; ground_m : float; antenna_m : float }

type verdict =
  | Clear of float
  | Out_of_range
  | Blocked of { at_km : float; deficit_m : float }

let endpoint_of_tower ~dem position ~antenna_m =
  { position; ground_m = Dem.elevation_m dem position; antenna_m }

let check ?(params = default_params) ~surface a b =
  let total = Geodesy.distance_km a.position b.position in
  if total > params.max_range_km || total < params.min_range_km then Out_of_range
  else begin
    let ha = a.ground_m +. a.antenna_m in
    let hb = b.ground_m +. b.antenna_m in
    let n = max 2 (int_of_float (Float.ceil (total /. params.step_km))) in
    let margin_at i =
      let t = float_of_int i /. float_of_int n in
      let p = Geodesy.interpolate a.position b.position ~frac:t in
      let d1 = total *. t and d2 = total *. (1.0 -. t) in
      let ray = ha +. (t *. (hb -. ha)) in
      let need =
        Fresnel.required_clearance_m ~k:params.k_factor ~f_ghz:params.f_ghz
          ~d1_km:d1 ~d2_km:d2 ()
      in
      (d1, ray -. (surface p +. need))
    in
    (* Cheap rejection: the midpoint has the deepest curvature bulge
       and is the likeliest blockage; test it before the full walk. *)
    let _, mid_margin = margin_at (n / 2) in
    if mid_margin < 0.0 then begin
      let at_km, m = margin_at (n / 2) in
      Blocked { at_km; deficit_m = -.m }
    end
    else begin
      let rec walk i best =
        if i >= n then Clear best
        else begin
          let at_km, m = margin_at i in
          if m < 0.0 then Blocked { at_km; deficit_m = -.m }
          else walk (i + 1) (Float.min best m)
        end
      in
      walk 1 infinity
    end
  end

let feasible ?params ~surface a b =
  match check ?params ~surface a b with
  | Clear _ -> true
  | Out_of_range | Blocked _ -> false

let check_dem ?params ~dem a b = check ?params ~surface:(Dem.surface_m dem) a b
