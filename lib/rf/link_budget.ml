type t = {
  tx_power_dbm : float;
  antenna_gain_dbi : float;
  rx_threshold_dbm : float;
  misc_losses_db : float;
}

let default =
  { tx_power_dbm = 30.0; antenna_gain_dbi = 43.0; rx_threshold_dbm = -72.0; misc_losses_db = 3.0 }

let fspl_db ~f_ghz ~d_km =
  if not (f_ghz > 0.0 && d_km > 0.0) then
    invalid_arg "Link_budget.fspl_db: f_ghz and d_km must be positive";
  92.45 +. (20.0 *. log10 f_ghz) +. (20.0 *. log10 d_km)

let fade_margin_db ?(budget = default) ~f_ghz ~d_km () =
  let rx =
    budget.tx_power_dbm +. (2.0 *. budget.antenna_gain_dbi)
    -. fspl_db ~f_ghz ~d_km -. budget.misc_losses_db
  in
  rx -. budget.rx_threshold_dbm

let max_range_km ?(budget = default) ~f_ghz ~min_margin_db () =
  (* fade_margin is monotone decreasing in distance: solve in closed form.
     rx_margin(d) = P + 2G - L - threshold - 92.45 - 20log f - 20 log d *)
  let headroom =
    budget.tx_power_dbm +. (2.0 *. budget.antenna_gain_dbi) -. budget.misc_losses_db
    -. budget.rx_threshold_dbm -. 92.45 -. (20.0 *. log10 f_ghz) -. min_margin_db
  in
  10.0 ** (headroom /. 20.0)
