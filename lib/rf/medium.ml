type technology = Microwave | Millimeter_wave | Free_space_optics

type t = {
  technology : technology;
  name : string;
  max_range_km : float;
  hop_gbps : float;
  f_ghz : float;
  radio_usd : float;
  max_parallel_chains : int option;
}

let microwave =
  {
    technology = Microwave;
    name = "microwave 11GHz";
    max_range_km = 100.0;
    hop_gbps = Capacity.hop_gbps;
    f_ghz = 11.0;
    radio_usd = 150_000.0;
    max_parallel_chains = Some 8;
  }

let millimeter_wave =
  {
    technology = Millimeter_wave;
    name = "mmw e-band";
    max_range_km = 15.0;
    hop_gbps = 10.0;
    f_ghz = 80.0;
    radio_usd = 60_000.0;
    max_parallel_chains = None;
  }

let free_space_optics =
  {
    technology = Free_space_optics;
    name = "free-space optics";
    max_range_km = 3.0;
    hop_gbps = 40.0;
    f_ghz = 193_000.0;
    radio_usd = 40_000.0;
    max_parallel_chains = None;
  }

type weather = { rain_mm_h : float; fog_visibility_km : float }

let clear_weather = { rain_mm_h = 0.0; fog_visibility_km = 20.0 }

(* Kruse model: fog attenuation ~ 17 / V dB/km at 1550 nm for
   visibility V in km (q-exponent folded into the constant for the
   visibility range of interest). *)
let fso_fog_db_per_km visibility_km = 17.0 /. Float.max 0.05 visibility_km

let hop_attenuation_db m w ~d_km =
  match m.technology with
  | Microwave | Millimeter_wave ->
    (* P.838 tops out at our table's 20 GHz anchor; for MMW the
       coefficients are clamped there, which understates attenuation a
       little — MMW hops are short, so the margin test still behaves. *)
    Attenuation.path_attenuation_db ~f_ghz:(Float.min 20.0 m.f_ghz) Attenuation.Horizontal
      ~rain_mm_h:w.rain_mm_h ~d_km
  | Free_space_optics -> fso_fog_db_per_km w.fog_visibility_km *. d_km

let hop_available m w ~d_km ~margin_db = hop_attenuation_db m w ~d_km <= margin_db

type chain_cost = {
  medium : t;
  hops : int;
  chains : int;
  towers : int;
  radios : int;
  capex_usd : float;
}

let chain_for m ~link_km ~target_gbps ~tower_usd =
  if not (link_km > 0.0 && target_gbps > 0.0) then
    invalid_arg "Medium.chain_for: link_km and target_gbps must be positive";
  let hops = max 1 (int_of_float (Float.ceil (link_km /. m.max_range_km))) in
  let chains =
    match m.technology with
    | Microwave ->
      (* the paper's k-squared parallel-series trick *)
      Capacity.series_for_gbps target_gbps
    | Millimeter_wave | Free_space_optics ->
      max 1 (int_of_float (Float.ceil (target_gbps /. m.hop_gbps)))
  in
  let feasible =
    match m.max_parallel_chains with None -> true | Some cap -> chains <= cap
  in
  let towers = chains * (hops + 1) in
  let radios = chains * hops in
  {
    medium = m;
    hops;
    chains;
    towers;
    radios;
    capex_usd =
      (if feasible then (float_of_int radios *. m.radio_usd) +. (float_of_int towers *. tower_usd)
       else infinity);
  }

let cheapest_for ~link_km ~target_gbps ~tower_usd =
  let mw = chain_for microwave ~link_km ~target_gbps ~tower_usd in
  let mmw = chain_for millimeter_wave ~link_km ~target_gbps ~tower_usd in
  let fso = chain_for free_space_optics ~link_km ~target_gbps ~tower_usd in
  List.fold_left
    (fun best o -> if o.capex_usd < best.capex_usd then o else best)
    mw [ mmw; fso ]
