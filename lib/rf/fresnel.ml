let default_k = 1.3
let default_f_ghz = 11.0

let earth_bulge_m ?(k = default_k) ~d1_km ~d2_km () =
  let r = Cisp_util.Units.earth_radius_km in
  (* d1*d2 / (2 k R) in km, converted to metres. *)
  d1_km *. d2_km /. (2.0 *. k *. r) *. 1000.0

let fresnel_radius_m ?(f_ghz = default_f_ghz) ~d1_km ~d2_km () =
  let d = d1_km +. d2_km in
  if d <= 0.0 then 0.0
  else begin
    let lambda_m = 299.792458 /. (f_ghz *. 1000.0) in
    sqrt (lambda_m *. (d1_km *. 1000.0) *. (d2_km *. 1000.0) /. (d *. 1000.0))
  end

let midpoint_bulge_m ?(k = default_k) ~d_km () =
  earth_bulge_m ~k ~d1_km:(d_km /. 2.0) ~d2_km:(d_km /. 2.0) ()

let midpoint_fresnel_m ?(f_ghz = default_f_ghz) ~d_km () =
  fresnel_radius_m ~f_ghz ~d1_km:(d_km /. 2.0) ~d2_km:(d_km /. 2.0) ()

let required_clearance_m ?(k = default_k) ?(f_ghz = default_f_ghz) ~d1_km ~d2_km () =
  earth_bulge_m ~k ~d1_km ~d2_km () +. fresnel_radius_m ~f_ghz ~d1_km ~d2_km ()

(* With d1 = t·D and d2 = (1−t)·D, both clearance terms factor through
   u = t(1−t): bulge = (D² 1000 / 2kR)·u and the Fresnel radius =
   sqrt(lambda·1000·D)·sqrt(u).  Hoisting the pair-constant factors
   out lets a profile walk price each sample with one multiply-add and
   one sqrt. *)
let pair_coeffs ?(k = default_k) ?(f_ghz = default_f_ghz) ~d_km () =
  let bulge_c =
    d_km *. d_km *. 1000.0 /. (2.0 *. k *. Cisp_util.Units.earth_radius_km)
  in
  let lambda_m = Cisp_util.Units.c_vacuum_km_s /. (f_ghz *. 1e6) in
  let fresnel_c = if d_km <= 0.0 then 0.0 else sqrt (lambda_m *. 1000.0 *. d_km) in
  (bulge_c, fresnel_c)

(* The allocation-free form of [pair_coeffs] for contracted callers:
   the coefficients land in [out.(0)]/[out.(1)] instead of a tuple of
   boxed floats, and every label is required so no call site pays the
   [Some]-wrapping of the optional-argument form.  [@inline] so the
   float arguments stay in registers at the (non-flambda) call
   boundary. *)
let[@inline] [@cisp.zero_alloc] pair_coeffs_into ~k ~f_ghz ~d_km ~out =
  Float.Array.set out 0
    (d_km *. d_km *. 1000.0 /. (2.0 *. k *. Cisp_util.Units.earth_radius_km));
  let lambda_m = Cisp_util.Units.c_vacuum_km_s /. (f_ghz *. 1e6) in
  Float.Array.set out 1
    (if d_km <= 0.0 then 0.0 else sqrt (lambda_m *. 1000.0 *. d_km))
