(** Microwave path-clearance geometry (paper §3.1).

    A MW hop must clear the Earth's curvature "bulge" and keep the
    first Fresnel zone free of obstructions.  With atmospheric
    refraction folded into an effective Earth radius factor [k]
    (paper: K = 1.3), the bulge at a point d1 km from one end and d2 km
    from the other is d1*d2 / (2 k R); the first Fresnel-zone radius is
    sqrt(lambda d1 d2 / (d1 + d2)).  At the midpoint these reduce to
    the paper's closed forms (8.7 m sqrt(D/f) and D^2/(50 K) m). *)

val default_k : float
(** Effective Earth radius factor, 1.3 (paper §3.1). *)

val default_f_ghz : float
(** Carrier frequency, 11 GHz (paper §3.1). *)

val earth_bulge_m : ?k:float -> d1_km:float -> d2_km:float -> unit -> float
(** Curvature bulge height at a point [d1_km] from one endpoint and
    [d2_km] from the other. *)

val fresnel_radius_m : ?f_ghz:float -> d1_km:float -> d2_km:float -> unit -> float
(** First Fresnel-zone radius at the same point. *)

val midpoint_bulge_m : ?k:float -> d_km:float -> unit -> float
(** Paper's midpoint formula: (1/50K)(D/1km)^2 metres. *)

val midpoint_fresnel_m : ?f_ghz:float -> d_km:float -> unit -> float
(** Paper's midpoint formula: ~8.7 m (D/1km)^(1/2) (f/1GHz)^(-1/2). *)

val required_clearance_m :
  ?k:float -> ?f_ghz:float -> d1_km:float -> d2_km:float -> unit -> float
(** Bulge plus full first-Fresnel radius: the height above the terrain
    surface that the direct ray must attain at this point. *)

val pair_coeffs : ?k:float -> ?f_ghz:float -> d_km:float -> unit -> float * float
(** [(bulge_c, fresnel_c)] for a hop of length [d_km]: at the point a
    fraction [t] along the path, with [u = t *. (1. -. t)],
    [required_clearance_m] equals [bulge_c *. u +. fresnel_c *. sqrt u]
    (same algebra, hoisted so a profile walk pays one multiply-add and
    one sqrt per sample). *)

val pair_coeffs_into : k:float -> f_ghz:float -> d_km:float -> out:Float.Array.t -> unit
(** [pair_coeffs] without the result tuple: writes [bulge_c] to
    [out.(0)] and [fresnel_c] to [out.(1)].  The zero-allocation form
    for the LOS profile engine ([@cisp.zero_alloc]); all labels are
    required so no call site pays optional-argument wrapping. *)
