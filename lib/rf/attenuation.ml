type polarization = Horizontal | Vertical

(* ITU-R P.838-3 regression coefficients at anchor frequencies (GHz).
   (k_H, alpha_H, k_V, alpha_V). *)
let table =
  [|
    (4.0, 0.0001071, 1.6009, 0.0002461, 1.2476);
    (5.0, 0.0002162, 1.6969, 0.0002428, 1.5317);
    (6.0, 0.0007056, 1.5900, 0.0004878, 1.5728);
    (7.0, 0.001915, 1.4810, 0.001425, 1.4745);
    (8.0, 0.004115, 1.3905, 0.003450, 1.3797);
    (10.0, 0.01217, 1.2571, 0.01129, 1.2156);
    (12.0, 0.02386, 1.1825, 0.02455, 1.1216);
    (15.0, 0.04481, 1.1233, 0.05008, 1.0440);
    (18.0, 0.07078, 1.0818, 0.07708, 1.0025);
    (20.0, 0.09164, 1.0568, 0.09611, 0.9847);
  |]

let coefficients ~f_ghz pol =
  let n = Array.length table in
  let pick (_, kh, ah, kv, av) =
    match pol with Horizontal -> (kh, ah) | Vertical -> (kv, av)
  in
  let f0, _, _, _, _ = table.(0) in
  let fn, _, _, _, _ = table.(n - 1) in
  if f_ghz <= f0 then pick table.(0)
  else if f_ghz >= fn then pick table.(n - 1)
  else begin
    (* Locate bracketing anchors and interpolate k in log-log,
       alpha linearly in log frequency (P.838 recommendation). *)
    let rec find i = if
      (let f_next, _, _, _, _ = table.(i + 1) in f_ghz <= f_next)
      then i else find (i + 1)
    in
    let i = find 0 in
    let f1, _, _, _, _ = table.(i) in
    let f2, _, _, _, _ = table.(i + 1) in
    let k1, a1 = pick table.(i) in
    let k2, a2 = pick table.(i + 1) in
    let w = (log f_ghz -. log f1) /. (log f2 -. log f1) in
    let k = exp (log k1 +. (w *. (log k2 -. log k1))) in
    let a = a1 +. (w *. (a2 -. a1)) in
    (k, a)
  end

let specific_attenuation_db_per_km ~f_ghz pol ~rain_mm_h =
  if rain_mm_h <= 0.0 then 0.0
  else begin
    let k, alpha = coefficients ~f_ghz pol in
    k *. (rain_mm_h ** alpha)
  end

let effective_path_km ~d_km ~rain_mm_h =
  let r = Float.min rain_mm_h 100.0 in
  let d0 = 35.0 *. exp (-0.015 *. r) in
  d_km /. (1.0 +. (d_km /. d0))

let path_attenuation_db ~f_ghz pol ~rain_mm_h ~d_km =
  specific_attenuation_db_per_km ~f_ghz pol ~rain_mm_h
  *. effective_path_km ~d_km ~rain_mm_h

let rain_rate_for_outage ~f_ghz pol ~d_km ~margin_db =
  if not (margin_db > 0.0 && d_km > 0.0) then
    invalid_arg "Attenuation.rain_rate_for_outage: margin_db and d_km must be positive";
  let att r = path_attenuation_db ~f_ghz pol ~rain_mm_h:r ~d_km in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if att mid >= margin_db then bisect lo mid (n - 1) else bisect mid hi (n - 1)
    end
  in
  if att 1000.0 < margin_db then infinity else bisect 0.0 1000.0 60
