type polarization = Horizontal | Vertical

(* ITU-R P.838-3 regression coefficients at anchor frequencies (GHz).
   (k_H, alpha_H, k_V, alpha_V). *)
let table =
  [|
    (4.0, 0.0001071, 1.6009, 0.0002461, 1.2476);
    (5.0, 0.0002162, 1.6969, 0.0002428, 1.5317);
    (6.0, 0.0007056, 1.5900, 0.0004878, 1.5728);
    (7.0, 0.001915, 1.4810, 0.001425, 1.4745);
    (8.0, 0.004115, 1.3905, 0.003450, 1.3797);
    (10.0, 0.01217, 1.2571, 0.01129, 1.2156);
    (12.0, 0.02386, 1.1825, 0.02455, 1.1216);
    (15.0, 0.04481, 1.1233, 0.05008, 1.0440);
    (18.0, 0.07078, 1.0818, 0.07708, 1.0025);
    (20.0, 0.09164, 1.0568, 0.09611, 0.9847);
  |]

(* Scalar anchor accessors and a top-level bracket search:
   [specific_attenuation_db_per_km] runs per hop per weather interval
   inside pool workers, and the old tuple-returning [coefficients]
   (plus its capturing [rec find]) allocated on every call (L11). *)
let[@inline] anchor_f i =
  let f, _, _, _, _ = table.(i) in
  f

let[@inline] anchor_k pol i =
  match pol with
  | Horizontal ->
    let _, k, _, _, _ = table.(i) in
    k
  | Vertical ->
    let _, _, _, k, _ = table.(i) in
    k

let[@inline] anchor_a pol i =
  match pol with
  | Horizontal ->
    let _, _, a, _, _ = table.(i) in
    a
  | Vertical ->
    let _, _, _, _, a = table.(i) in
    a

let rec bracket f_ghz i = if f_ghz <= anchor_f (i + 1) then i else bracket f_ghz (i + 1)

(* Interpolate between bracketing anchors [i] and [i + 1]: k in
   log-log, alpha linearly in log frequency (P.838 recommendation). *)
let[@inline] interp_k ~f_ghz pol i =
  let f1 = anchor_f i and f2 = anchor_f (i + 1) in
  let w = (log f_ghz -. log f1) /. (log f2 -. log f1) in
  let k1 = anchor_k pol i and k2 = anchor_k pol (i + 1) in
  exp (log k1 +. (w *. (log k2 -. log k1)))

let[@inline] interp_a ~f_ghz pol i =
  let f1 = anchor_f i and f2 = anchor_f (i + 1) in
  let w = (log f_ghz -. log f1) /. (log f2 -. log f1) in
  let a1 = anchor_a pol i and a2 = anchor_a pol (i + 1) in
  a1 +. (w *. (a2 -. a1))

let coefficients ~f_ghz pol =
  let n = Array.length table in
  if f_ghz <= anchor_f 0 then (anchor_k pol 0, anchor_a pol 0)
  else if f_ghz >= anchor_f (n - 1) then (anchor_k pol (n - 1), anchor_a pol (n - 1))
  else begin
    let i = bracket f_ghz 0 in
    (interp_k ~f_ghz pol i, interp_a ~f_ghz pol i)
  end

let[@cisp.zero_alloc] specific_attenuation_db_per_km ~f_ghz pol ~rain_mm_h =
  if rain_mm_h <= 0.0 then 0.0
  else begin
    let n = Array.length table in
    if f_ghz <= anchor_f 0 then anchor_k pol 0 *. (rain_mm_h ** anchor_a pol 0)
    else if f_ghz >= anchor_f (n - 1) then
      anchor_k pol (n - 1) *. (rain_mm_h ** anchor_a pol (n - 1))
    else begin
      let i = bracket f_ghz 0 in
      interp_k ~f_ghz pol i *. (rain_mm_h ** interp_a ~f_ghz pol i)
    end
  end

let effective_path_km ~d_km ~rain_mm_h =
  let r = Float.min rain_mm_h 100.0 in
  let d0 = 35.0 *. exp (-0.015 *. r) in
  d_km /. (1.0 +. (d_km /. d0))

let path_attenuation_db ~f_ghz pol ~rain_mm_h ~d_km =
  specific_attenuation_db_per_km ~f_ghz pol ~rain_mm_h
  *. effective_path_km ~d_km ~rain_mm_h

let rain_rate_for_outage ~f_ghz pol ~d_km ~margin_db =
  if not (margin_db > 0.0 && d_km > 0.0) then
    invalid_arg "Attenuation.rain_rate_for_outage: margin_db and d_km must be positive";
  let att r = path_attenuation_db ~f_ghz pol ~rain_mm_h:r ~d_km in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if att mid >= margin_db then bisect lo mid (n - 1) else bisect mid hi (n - 1)
    end
  in
  if att 1000.0 < margin_db then infinity else bisect 0.0 1000.0 60
