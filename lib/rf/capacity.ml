let hop_gbps = 1.0

let shannon_gbps ~bandwidth_mhz ~snr_db =
  let snr = 10.0 ** (snr_db /. 10.0) in
  bandwidth_mhz *. 1e6 *. (log (1.0 +. snr) /. log 2.0) /. 1e9

let qam_bits_per_symbol m =
  if m < 4 then invalid_arg "qam_bits_per_symbol: m < 4";
  let rec log2 acc n =
    if n = 1 then acc
    else if n land 1 <> 0 then invalid_arg "qam_bits_per_symbol: not a power of two"
    else log2 (acc + 1) (n lsr 1)
  in
  log2 0 m

let qam_gbps ~bandwidth_mhz ~qam ~coding_rate ~channels =
  if not (coding_rate > 0.0 && coding_rate <= 1.0 && channels > 0) then
    invalid_arg "Capacity.qam_gbps: coding_rate in (0,1] and channels > 0 required";
  let bits = float_of_int (qam_bits_per_symbol qam) in
  bandwidth_mhz *. 1e6 *. bits *. coding_rate *. float_of_int channels /. 1e9

let series_for_gbps gbps =
  if gbps <= 0.0 then 0
  else begin
    let k = int_of_float (Float.ceil (sqrt (gbps /. hop_gbps))) in
    max 1 k
  end

let gbps_of_series k =
  if k < 0 then invalid_arg "Capacity.gbps_of_series: negative series count";
  float_of_int (k * k) *. hop_gbps
