(** Line-of-sight feasibility engine (paper §3.1).

    Decides whether a MW hop between two antennae is viable: the direct
    ray, sampled along the great circle, must clear the terrain surface
    (elevation + clutter) plus the Earth bulge plus the full first
    Fresnel zone at every sample point, and the hop must be within
    range.

    The terrain is abstracted as a surface function so callers can
    plug in a raw {!Cisp_terrain.Dem}, a memoizing
    {!Cisp_terrain.Dem_cache}, or a test fixture.  The sweep hot path
    should use {!check_cached}/{!feasible_cached}, which sample the
    profile into per-domain scratch buffers in bulk — no per-sample
    closure call, coordinate allocation, or lock.

    All entry points share one profile engine: great-circle positions
    are interpolated with pair-constant trigonometry hoisted out of
    the sample loop, the Fresnel + bulge clearance requirement is
    priced per sample from two hoisted pair coefficients
    ({!Fresnel.pair_coeffs}), and the midpoint — the likeliest
    blockage — is tested before the full profile is sampled.
    [check ~surface:f] and [check_cached ~cache] agree bit-for-bit
    when [f] is that cache's [surface_m]. *)

type params = {
  max_range_km : float;   (** paper: 100 km baseline, 60-100 swept in Fig 10 *)
  f_ghz : float;          (** carrier frequency, 11 GHz *)
  k_factor : float;       (** effective Earth radius factor, 1.3 *)
  step_km : float;        (** profile sampling step *)
  min_range_km : float;   (** hops shorter than this are pointless *)
}

val default_params : params

type endpoint = {
  position : Cisp_geo.Coord.t;
  ground_m : float;       (** terrain elevation at the base *)
  antenna_m : float;      (** antenna height above ground *)
}

type verdict =
  | Clear of float        (** minimum clearance margin over requirement, m *)
  | Out_of_range
  | Blocked of { at_km : float; deficit_m : float }
      (** first sample that violates clearance, and by how much *)

val check :
  ?params:params -> surface:(Cisp_geo.Coord.t -> float) ->
  endpoint -> endpoint -> verdict
(** Full profile check between two endpoints; [surface] returns the
    obstruction height (ground + clutter) in metres. *)

val feasible :
  ?params:params -> surface:(Cisp_geo.Coord.t -> float) ->
  endpoint -> endpoint -> bool
(** [true] iff [check] returns [Clear _]. *)

val check_dem :
  ?params:params -> dem:Cisp_terrain.Dem.t -> endpoint -> endpoint -> verdict
(** Convenience wrapper querying the DEM directly (uncached). *)

val check_cached :
  ?params:params -> cache:Cisp_terrain.Dem_cache.t -> endpoint -> endpoint -> verdict
(** [check] with the profile sampled in bulk through
    {!Cisp_terrain.Dem_cache.surface_samples}: the allocation-free,
    lock-free-on-hit entry used by the tower LOS sweep.  Verdicts are
    bit-identical to [check ~surface:(Dem_cache.surface_m cache)]. *)

val feasible_cached :
  ?params:params -> cache:Cisp_terrain.Dem_cache.t -> endpoint -> endpoint -> bool
(** [true] iff [check_cached] returns [Clear _]. *)

val endpoint_of_tower :
  dem:Cisp_terrain.Dem.t -> Cisp_geo.Coord.t -> antenna_m:float -> endpoint
(** Convenience constructor reading ground elevation from the DEM. *)
