(* Phase 1b: propagate direct effects over the call graph to a
   fixpoint.

   The lattice ({!Effects.t}) is finite and every transfer below is
   monotone (sets grow, witnesses shrink towards the smallest site),
   so round-robin sweeps in node-id order terminate on any graph,
   cyclic call chains included, and the result is independent of
   iteration order.

   Two deliberate damping rules keep the repo's locking idioms out of
   the L7 noise floor; both are conventions, not proofs, and both are
   documented in DESIGN.md §7c:

   - {e lock-owner damping}: a node that takes a mutex DIRECTLY
     ([Mutex.lock]/[protect]) is assumed to protect every mutation it
     performs or inherits, so its summary drops them.  This covers
     [Dem_cache.lookup] and [Telemetry]'s [locked] wrapper.
   - {e guard damping}: a lambda handed to a lock-taking callee
     ([Telemetry.locked (fun () -> ...)], [Mutex.protect]) does not
     leak its mutations into the function that merely creates it;
     the edge was marked [damp_mut] at link time. *)

type result = { summaries : Effects.t array; rounds : int }

(* Effects a caller inherits through one edge. *)
let propagate (caller : Callgraph.node) (edge : Callgraph.edge)
    (s : Effects.t) =
  let base =
    {
      Effects.bottom with
      Effects.raises = Effects.mask_raises edge.Callgraph.e_mask s.Effects.raises;
      nondet = s.Effects.nondet;
      io = s.Effects.io;
      (* [locks] means "takes a mutex directly" and never propagates *)
      allocs = s.Effects.allocs;
      poly_cmp = s.Effects.poly_cmp;
      float_merges = s.Effects.float_merges;
      (* what blocks a pool worker or spawned domain does not block
         the submitter, and locks it takes are ordered on ITS domain:
         neither crosses a scheduling boundary *)
      acquires =
        (if edge.Callgraph.boundary then Effects.SM.empty
         else s.Effects.acquires);
      blocks =
        (if edge.Callgraph.boundary then Effects.SM.empty else s.Effects.blocks);
    }
  in
  if edge.Callgraph.damp_mut then base
  else
    let acc = { base with Effects.mut_global = s.Effects.mut_global } in
    (* the callee mutates its i-th parameter: translate through what
       the caller passed in that position *)
    let acc =
      Effects.IM.fold
        (fun i site acc ->
          if i >= Array.length edge.Callgraph.args then acc
          else
            match edge.Callgraph.args.(i) with
            | Callgraph.AGlobal g ->
                {
                  acc with
                  Effects.mut_global =
                    Effects.SM.update g
                      (function
                        | None -> Some site
                        | Some s0 -> Some (Effects.min_site s0 site))
                      acc.Effects.mut_global;
                }
            | Callgraph.AParam j ->
                {
                  acc with
                  Effects.mut_param =
                    Effects.IM.update j
                      (function
                        | None -> Some site
                        | Some s0 -> Some (Effects.min_site s0 site))
                      acc.Effects.mut_param;
                }
            | Callgraph.AFreeLocal (k, n) ->
                {
                  acc with
                  Effects.mut_free =
                    Effects.SM.update k
                      (function
                        | None -> Some (n, site)
                        | Some (n0, s0) -> Some (n0, Effects.min_site s0 site))
                      acc.Effects.mut_free;
                }
            | Callgraph.ALocal | Callgraph.AOther -> acc)
        s.Effects.mut_param acc
    in
    (* the callee mutates a captured local: private if the caller is
       the scope that owns it, its own parameter if the capture was a
       parameter, still shared otherwise *)
    let acc =
      Effects.SM.fold
        (fun k (n, site) acc ->
          match Effects.SM.find_opt k caller.Callgraph.params_idx with
          | Some j ->
              {
                acc with
                Effects.mut_param =
                  Effects.IM.update j
                    (function
                      | None -> Some site
                      | Some s0 -> Some (Effects.min_site s0 site))
                    acc.Effects.mut_param;
              }
          | None ->
              if Effects.SS.mem k caller.Callgraph.binders then acc
              else
                {
                  acc with
                  Effects.mut_free =
                    Effects.SM.update k
                      (function
                        | None -> Some (n, site)
                        | Some (n0, s0) -> Some (n0, Effects.min_site s0 site))
                      acc.Effects.mut_free;
                })
        s.Effects.mut_free acc
    in
    acc

(* Lock-owner damping ([locks] is a direct-only bit, so checking the
   accumulated summary is the same as checking the node), plus
   allocation damping at [@cisp.alloc_ok] nodes: a justified cold path
   stops the allocation evidence there instead of poisoning every
   transitive caller's zero-alloc contract. *)
let finalize (node : Callgraph.node) s =
  let s = if s.Effects.locks then Effects.drop_mut s else s in
  if node.Callgraph.alloc_ok then Effects.drop_allocs s else s

let compute (g : Callgraph.t) =
  let n = Array.length g.Callgraph.nodes in
  let summaries =
    Array.init n (fun i ->
        let node = g.Callgraph.nodes.(i) in
        finalize node node.Callgraph.direct)
  in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    for i = 0 to n - 1 do
      let node = g.Callgraph.nodes.(i) in
      let s =
        List.fold_left
          (fun acc (e : Callgraph.edge) ->
            match e.Callgraph.callee with
            | Callgraph.External _ -> acc
            | Callgraph.Internal j ->
                Effects.union acc (propagate node e summaries.(j)))
          node.Callgraph.direct node.Callgraph.edges
      in
      let s = finalize node s in
      if not (Effects.equal s summaries.(i)) then begin
        summaries.(i) <- s;
        changed := true
      end
    done
  done;
  { summaries; rounds = !rounds }
