(** Checked-in suppression list for lint diagnostics.

    One entry per line: [RULE FILE SYMBOL  # reason]

    - [RULE] is [L1]..[L9] or [*] for any rule;
    - [FILE] matches the diagnostic's source path exactly or as a
      path suffix at a ['/'] boundary ([*] for any file);
    - [SYMBOL] is the enclosing value / signature-item name the
      diagnostic reports, or [*];
    - everything after [#] is a human-readable justification (ignored
      but strongly encouraged).

    Blank lines and pure comment lines are skipped. *)

type entry = {
  rule : Diag.rule option;  (** [None] = any rule *)
  file : string;
  symbol : string;
  reason : string;
  lineno : int;  (** 1-based line in the source file, for pruning *)
}

type t = entry list

val empty : t
val parse : file:string -> string -> (t, string) result
val load : string -> (t, string) result
val matches : t -> Diag.t -> bool

val filter : t -> Diag.t list -> Diag.t list * Diag.t list
(** [(kept, suppressed)]. *)

val to_string : entry -> string
(** The entry in file syntax, for reporting. *)

val stale : t -> Diag.t list -> entry list
(** Entries matching none of the given diagnostics.  Pass the
    {e pre-suppression} list: an entry is live exactly when it
    suppresses something. *)

val prune : path:string -> entry list -> (int, string) result
(** Remove the given (stale) entries' lines from the checked-in file,
    keeping comments, blanks and live entries byte-identical; returns
    how many lines were dropped. *)
