(* Cross-module call graph over every loaded [.cmt]/[.cmti].

   Phase 1 of the interprocedural analysis: one walk over each typed
   AST produces

   - a node per structure-level binding ([Top]), per let-bound local
     function ([Local]) and per inline lambda ([Lambda], remembering
     which callee the lambda was handed to — its {e guard});
   - direct effects per node (see {!Effects});
   - call edges annotated with the exception-handler mask in force at
     the call site and with the classification of every argument, so
     {!Summary} can map a callee's parameter mutations back onto the
     caller's world;
   - every [Cisp_util.Pool] combinator call site together with the
     closure nodes handed to it (consumed by the L7 rule);
   - the set of names exported by some [.cmti] (consumed by L8).

   Naming: dune's wrapped-library mangling ([Cisp_util__Pool]) is
   expanded to source notation ([Cisp_util.Pool]), unit-local module
   aliases ([module Grid = Cisp_geo.Grid]) are chased, and the
   [Stdlib.] prefix is stripped, so one canonical spelling identifies
   a definition across compilation units. *)

open Typedtree
module SS = Effects.SS
module SM = Effects.SM

type callee = Internal of int | External of string
type nkind = Top | Local | Lambda of { guard : callee option }

type argc =
  | AGlobal of string  (* module-level state, canonical name *)
  | AParam of int  (* the caller's own parameter *)
  | AFreeLocal of string * string  (* captured from an enclosing scope *)
  | ALocal  (* bound inside the caller: mutation stays private *)
  | AOther  (* anything unclassifiable *)

type edge = {
  mutable callee : callee;
  e_mask : Effects.mask;
  args : argc array;
  call_site : Effects.site;
  e_held : SS.t;
      (* canonical mutex identities syntactically held at the call
         site (the caller's own acquisitions; the node's [entry_held]
         is added on top by the rules) *)
  mutable damp_mut : bool;
      (* the callee is a lambda whose guard takes a lock: its
         mutations are protected, do not fold them into the caller *)
  mutable boundary : bool;
      (* the callee runs on another domain (a closure handed to a
         [Pool] combinator or [Domain.spawn]): blocking and lock
         acquisitions do not fold into the caller — the pool-site
         checks own them instead *)
}

type node = {
  id : int;
  name : string;  (* canonical for [Top], dotted path otherwise *)
  symbol : string;  (* enclosing top-level value, for diagnostics *)
  unit_source : string;
  def_site : Effects.site;
  kind : nkind;
  is_fun : bool;
  mutable params_idx : int SM.t;  (* Ident.unique_name -> 0-based index *)
  mutable binders : SS.t;  (* Ident.unique_names bound inside *)
  mutable captures : bool;  (* references a free local of an enclosing scope *)
  mutable zero_alloc : bool;  (* [@cisp.zero_alloc] on the definition *)
  mutable alloc_ok : bool;  (* [@cisp.alloc_ok]: damp allocs at this node *)
  mutable entry_held : SS.t;
      (* locks syntactically held where a [Lambda] is created (a
         closure handed to [Mutex.protect] runs under that mutex);
         empty for named functions *)
  mutable lock_acqs : (SS.t * string * Effects.site) list;
      (* direct acquisition sites: (held set at the site, acquired
         mutex, site) — the raw material of the L13 order graph *)
  mutable blocked_sites : (string * SS.t * Effects.site) list;
      (* direct blocking calls made while a lock was held:
         (blocking kind, held set, site) — direct L14 witnesses *)
  mutable direct : Effects.t;
  mutable edges : edge list;
}

type pool_site = {
  ps_site : Effects.site;
  ps_combinator : string;
  ps_caller : int;
  mutable ps_targets : int list;  (* resolved closure / function nodes *)
}

type t = {
  nodes : node array;
  pool_sites : pool_site list;
  public : SS.t;
  intf_units : SS.t;
  by_name : int SM.t;
}

let pool_combinators =
  [
    "Cisp_util.Pool.parallel_for";
    "Cisp_util.Pool.parallel_for_default";
    "Cisp_util.Pool.parallel_map_array";
    "Cisp_util.Pool.reduce";
    "Cisp_util.Pool.fold_range";
  ]

(* ------------------------------------------------------------------ *)
(* Canonical names                                                     *)
(* ------------------------------------------------------------------ *)

(* "Cisp_util__Pool" -> ["Cisp_util"; "Pool"] (dune wrapping). *)
let split_mangled s =
  let n = String.length s in
  let rec go acc start i =
    if i + 1 < n && Char.equal s.[i] '_' && Char.equal s.[i + 1] '_' && i > start
    then go (String.sub s start (i - start) :: acc) (i + 2) (i + 2)
    else if i >= n then List.rev (String.sub s start (n - start) :: acc)
    else go acc start (i + 1)
  in
  if n = 0 then [ s ] else go [] 0 0

let canonical_of_modname m = String.concat "." (split_mangled m)

type builder = {
  mutable bnodes : node list;  (* newest first *)
  mutable bcount : int;
  mutable bpool : (pool_site * callee list) list;
  mutable bpublic : SS.t;
  mutable bintf : SS.t;
  mutable bnames : int SM.t;
}

type ctx = {
  b : builder;
  source : string;
  unit_canon : string;
  mutable aliases : string SM.t;  (* local module name -> canonical *)
  mutable globals : string SM.t;  (* unique_name -> canonical *)
  mutable stamp_nodes : int SM.t;  (* unique_name -> node id *)
  mutable cur : node;
  mutable mask : Effects.mask;
  mutable held : SS.t;  (* mutexes syntactically held at this point *)
  mutable mod_prefix : string list;  (* innermost first *)
}

let canonicalize ctx raw =
  let parts = String.split_on_char '.' raw |> List.concat_map split_mangled in
  let parts =
    match parts with
    | first :: rest -> (
        match SM.find_opt first ctx.aliases with
        | Some target -> String.split_on_char '.' target @ rest
        | None -> parts)
    | [] -> parts
  in
  match parts with
  | "Stdlib" :: (_ :: _ as rest) -> String.concat "." rest
  | parts -> String.concat "." parts

let canonical_of_path ctx p = canonicalize ctx (Path.name p)

let top_prefix ctx =
  String.concat "." (ctx.unit_canon :: List.rev ctx.mod_prefix)

(* ------------------------------------------------------------------ *)
(* Node plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let mk_node b ~source ~name ~symbol ~kind ~is_fun def_site =
  let n =
    {
      id = b.bcount;
      name;
      symbol;
      unit_source = source;
      def_site;
      kind;
      is_fun;
      params_idx = SM.empty;
      binders = SS.empty;
      captures = false;
      zero_alloc = false;
      alloc_ok = false;
      entry_held = SS.empty;
      lock_acqs = [];
      blocked_sites = [];
      direct = Effects.bottom;
      edges = [];
    }
  in
  b.bcount <- b.bcount + 1;
  b.bnodes <- n :: b.bnodes;
  n

let new_node ctx ~name ~symbol ~kind ~is_fun loc =
  mk_node ctx.b ~source:ctx.source ~name ~symbol ~kind ~is_fun
    (Effects.site_of_loc loc)

let add_edge n e = n.edges <- e :: n.edges

let min_w site = function
  | None -> Some site
  | Some s -> Some (Effects.min_site s site)

let add_raise ctx name site =
  if not (Effects.mask_catches ctx.mask name) then
    let d = ctx.cur.direct in
    ctx.cur.direct <-
      { d with Effects.raises = SM.update name (min_w site) d.Effects.raises }

let add_nondet ctx what site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    { d with Effects.nondet = Effects.RS.add (what, site) d.Effects.nondet }

let set_io ctx = ctx.cur.direct <- { ctx.cur.direct with Effects.io = true }
let set_locks ctx = ctx.cur.direct <- { ctx.cur.direct with Effects.locks = true }

let add_mut_global ctx name site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    {
      d with
      Effects.mut_global = SM.update name (min_w site) d.Effects.mut_global;
    }

let add_mut_param ctx i site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    {
      d with
      Effects.mut_param = Effects.IM.update i (min_w site) d.Effects.mut_param;
    }

let add_mut_free ctx key name site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    {
      d with
      Effects.mut_free =
        SM.update key
          (function
            | None -> Some (name, site)
            | Some (n, s) -> Some (n, Effects.min_site s site))
          d.Effects.mut_free;
    }

let add_alloc_n (n : node) kind site =
  let d = n.direct in
  n.direct <-
    { d with Effects.allocs = SM.update kind (min_w site) d.Effects.allocs }

let add_alloc ctx kind site = add_alloc_n ctx.cur kind site

let add_poly ctx what site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    { d with Effects.poly_cmp = Effects.RS.add (what, site) d.Effects.poly_cmp }

let add_acquire ctx l site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    { d with Effects.acquires = SM.update l (min_w site) d.Effects.acquires }

let add_block ctx kind site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    { d with Effects.blocks = SM.update kind (min_w site) d.Effects.blocks }

let add_float_merge ctx what site =
  let d = ctx.cur.direct in
  ctx.cur.direct <-
    {
      d with
      Effects.float_merges = Effects.RS.add (what, site) d.Effects.float_merges;
    }

(* [@cisp.zero_alloc] / [@cisp.alloc_ok "reason"] on a value binding.
   Namespaced attributes are exempt from warning 53, so annotating a
   kernel costs nothing under [-w +a -warn-error +a]. *)
let contract_of_attrs attrs =
  List.fold_left
    (fun (za, ok) (a : Parsetree.attribute) ->
      match a.Parsetree.attr_name.Asttypes.txt with
      | "cisp.zero_alloc" -> (true, ok)
      | "cisp.alloc_ok" -> (za, true)
      | _ -> (za, ok))
    (false, false) attrs

let apply_contract node attrs =
  let za, ok = contract_of_attrs attrs in
  if za then node.zero_alloc <- true;
  if ok then node.alloc_ok <- true

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(* The root identifier a mutation or argument expression hangs off:
   [x], [x.field], [x.a.b]. *)
let rec root_path (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (e, _, _) -> root_path e
  | _ -> None

let classify_path ctx p =
  match p with
  | Path.Pident id -> (
      let k = Ident.unique_name id in
      match SM.find_opt k ctx.cur.params_idx with
      | Some i -> AParam i
      | None -> (
          match SM.find_opt k ctx.globals with
          | Some canon -> AGlobal canon
          | None ->
              if SS.mem k ctx.cur.binders then ALocal
              else begin
                (* referencing an enclosing scope's local: this node,
                   if it is a closure, needs an environment — so its
                   creation is a heap allocation in the parent *)
                ctx.cur.captures <- true;
                AFreeLocal (k, Ident.name id)
              end))
  | _ -> AGlobal (canonical_of_path ctx p)

let classify_arg ctx (e : expression) =
  match root_path e with None -> AOther | Some p -> classify_path ctx p

(* A stable identity for the mutex expression of a [Mutex.lock/protect/
   unlock] call.  Record fields are keyed by the record TYPE, not the
   value ([pool.mutex : Pool.t] is one lock class however many pools
   exist — the order discipline is per class); module-level mutexes by
   their canonical name; locals by the enclosing top-level symbol. *)
let lock_name ctx (m : expression) =
  match m.exp_desc with
  | Texp_field (r, _, ld) ->
      let prefix =
        match Types.get_desc r.exp_type with
        | Types.Tconstr (p, _, _) ->
            let c = canonical_of_path ctx p in
            if String.contains c '.' then c else top_prefix ctx ^ "." ^ c
        | _ -> top_prefix ctx ^ "." ^ ctx.cur.symbol
      in
      prefix ^ "." ^ ld.Types.lbl_name
  | Texp_ident (p, _, _) -> (
      match classify_path ctx p with
      | AGlobal g -> g
      | _ -> ctx.unit_canon ^ "." ^ ctx.cur.symbol ^ ":" ^ Path.last p)
  | _ -> ctx.unit_canon ^ "." ^ ctx.cur.symbol ^ ":<anonymous mutex>"

let record_mut ctx site (target : expression) =
  match classify_arg ctx target with
  | AGlobal g -> add_mut_global ctx g site
  | AParam i -> add_mut_param ctx i site
  | AFreeLocal (k, n) -> add_mut_free ctx k n site
  | ALocal | AOther -> ()

(* A closure handed to one of these runs on other domains: effects
   that only matter on the executing domain (blocking, lock
   acquisition order) must not fold into the submitting caller. *)
let boundary_guard_name n =
  List.mem n pool_combinators || String.equal n "Domain.spawn"

(* ------------------------------------------------------------------ *)
(* Handler masks from patterns                                         *)
(* ------------------------------------------------------------------ *)

let rec mask_of_exn_pat (p : pattern) =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> Effects.Catch_all
  | Tpat_alias (p, _, _) -> mask_of_exn_pat p
  | Tpat_construct (_, cd, _, _) -> Effects.Catch (SS.singleton cd.Types.cstr_name)
  | Tpat_or (a, b, _) ->
      Effects.compose_mask (mask_of_exn_pat a) (mask_of_exn_pat b)
  | _ -> Effects.mask_none

let mask_of_value_cases cases =
  List.fold_left
    (fun m (c : value case) ->
      (* a [when] guard may decline the exception: not a reliable catch *)
      match c.c_guard with
      | Some _ -> m
      | None -> Effects.compose_mask m (mask_of_exn_pat c.c_lhs))
    Effects.mask_none cases

let mask_of_comp_cases cases =
  List.fold_left
    (fun m (c : computation case) ->
      match (c.c_guard, snd (split_pattern c.c_lhs)) with
      | None, Some p -> Effects.compose_mask m (mask_of_exn_pat p)
      | _ -> m)
    Effects.mask_none cases

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Type shapes (structural, no env expansion: a [type m = float]      *)
(* abbreviation is seen through links but a nominal record is opaque)  *)
(* ------------------------------------------------------------------ *)

let is_float_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let is_exn_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_exn
  | _ -> false

(* Does the type syntactically mention [float]?  Bounded depth keeps
   recursive types finite; [Coord.t]-style nominal records are opaque
   here, which under-approximates — acceptable for L12's site list. *)
let rec contains_float depth ty =
  depth > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      Path.same p Predef.path_float
      || List.exists (contains_float (depth - 1)) args
  | Types.Ttuple tys -> List.exists (contains_float (depth - 1)) tys
  | _ -> false

let contains_float ty = contains_float 4 ty

(* First argument type of an arrow, through optional-arg sugar. *)
let arrow_arg_ty ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, targ, _, _) -> Some targ
  | _ -> None

let is_tvar ty =
  match Types.get_desc ty with Types.Tvar _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let process_impl b (u : Loader.unit_) (str : structure) =
  let unit_canon = canonical_of_modname u.modname in
  (* structure-level evaluation ([let () = ...], [Tstr_eval]) needs a
     node to attribute effects to *)
  let init =
    mk_node b ~source:u.source
      ~name:(unit_canon ^ ".<init>")
      ~symbol:"" ~kind:Top ~is_fun:false
      { Effects.file = u.source; line = 0; col = 0 }
  in
  let ctx =
    {
      b;
      source = u.source;
      unit_canon;
      aliases = SM.empty;
      globals = SM.empty;
      stamp_nodes = SM.empty;
      cur = init;
      mask = Effects.mask_none;
      held = SS.empty;
      mod_prefix = [];
    }
  in
  let it = ref Tast_iterator.default_iterator in
  let walk e = (!it).Tast_iterator.expr !it e in
  let walk_case : 'k. 'k case -> unit =
   fun c -> (!it).Tast_iterator.case !it c
  in
  let add_binder id =
    ctx.cur.binders <- SS.add (Ident.unique_name id) ctx.cur.binders
  in
  let add_param node idx id =
    node.params_idx <- SM.add (Ident.unique_name id) idx node.params_idx
  in
  let with_mask m f =
    let saved = ctx.mask in
    ctx.mask <- m;
    f ();
    ctx.mask <- saved
  in
  let in_node ?(held = SS.empty) node f =
    let saved_cur = ctx.cur
    and saved_mask = ctx.mask
    and saved_held = ctx.held in
    ctx.cur <- node;
    ctx.mask <- Effects.mask_none;
    ctx.held <- held;
    f ();
    ctx.cur <- saved_cur;
    ctx.mask <- saved_mask;
    ctx.held <- saved_held
  in
  (* Register a multi-argument [fun x -> fun y -> ...] chain as one
     node: each layer's parameter (and its case-pattern bindings) gets
     the next index, then the innermost body is walked in the node. *)
  let rec walk_fn_body idx (e : expression) =
    match e.exp_desc with
    | Texp_function { param; cases; _ } -> (
        add_param ctx.cur idx param;
        List.iter
          (fun (c : value case) ->
            List.iter (add_param ctx.cur idx) (pat_bound_idents c.c_lhs))
          cases;
        match cases with
        | [ { c_guard = None; c_rhs; _ } ] -> walk_fn_body (idx + 1) c_rhs
        | cases ->
            List.iter
              (fun (c : value case) ->
                Option.iter walk c.c_guard;
                walk c.c_rhs)
              cases)
    | _ -> walk e
  in
  let lambda_node guard (e : expression) =
    let parent = ctx.cur in
    let line = e.exp_loc.Location.loc_start.Lexing.pos_lnum in
    let node =
      new_node ctx
        ~name:(Printf.sprintf "%s.<fun:%d>" parent.name line)
        ~symbol:parent.symbol ~kind:(Lambda { guard }) ~is_fun:true e.exp_loc
    in
    (* The closure is assumed to run where it is created, under the
       handler mask in force there; its own raises are recorded
       unmasked and filtered on this edge instead. *)
    node.entry_held <- ctx.held;
    add_edge parent
      {
        callee = Internal node.id;
        e_mask = ctx.mask;
        args = [||];
        call_site = Effects.site_of_loc e.exp_loc;
        e_held = ctx.held;
        damp_mut = false;
        boundary =
          (match guard with
          | Some (External n) -> boundary_guard_name n
          | _ -> false);
      };
    in_node ~held:ctx.held node (fun () -> walk_fn_body 0 e);
    (* A capturing lambda needs an environment block at every execution
       of the surrounding code; a captureless one is statically
       allocated.  Only per-call contexts are charged: a closure built
       once at module init is not an allocation on anyone's hot path. *)
    if node.captures && parent.is_fun then
      add_alloc_n parent "closure" (Effects.site_of_loc e.exp_loc);
    node
  in
  (* Resolve an identifier to a node known in this unit (same-file
     top-level value or local function). *)
  let resolve_local p =
    match p with
    | Path.Pident id -> SM.find_opt (Ident.unique_name id) ctx.stamp_nodes
    | _ -> None
  in
  let callee_of_path p =
    match resolve_local p with
    | Some id -> Internal id
    | None -> External (canonical_of_path ctx p)
  in
  (* Light-weight external effects for a named function passed as a
     value ([List.iter print_endline]): the consumer will run it. *)
  let ext_value_effects name site =
    (match Effects.ext_raises name with
    | Some exn -> add_raise ctx exn site
    | None -> ());
    (match Effects.ext_nondet name with
    | Some what -> add_nondet ctx what site
    | None -> ());
    if Effects.ext_io name then set_io ctx
  in
  (* A polymorphic compare/hash primitive escaping as a first-class
     value at a concrete instantiation: the consumer calls it through
     the generic runtime walker, never the specialized code the
     compiler emits for direct applications. *)
  let note_poly_value p ty site =
    match p with
    | Path.Pident _ -> ()
    | _ ->
        let name = canonical_of_path ctx p in
        if Effects.ext_poly_cmp name then
          match arrow_arg_ty ty with
          | Some t when not (is_tvar t) ->
              add_poly ctx
                (Printf.sprintf "polymorphic `%s' used as a first-class comparator" name)
                site
          | _ -> ()
  in
  (* Walk one argument; returns the callee to use as a closure target
     when the argument is function-valued. *)
  let walk_arg guard (a : expression) : callee option =
    match a.exp_desc with
    | Texp_function _ -> Some (Internal (lambda_node guard a).id)
    | Texp_ident (p, _, _) when is_arrow a.exp_type -> (
        ignore (classify_path ctx p);
        note_poly_value p a.exp_type (Effects.site_of_loc a.exp_loc);
        let site = Effects.site_of_loc a.exp_loc in
        let boundary =
          match guard with
          | Some (External n) -> boundary_guard_name n
          | _ -> false
        in
        match callee_of_path p with
        | Internal id as c ->
            (* a known function passed as a value: assume it runs *)
            add_edge ctx.cur
              {
                callee = c;
                e_mask = ctx.mask;
                args = [||];
                call_site = site;
                e_held = ctx.held;
                damp_mut = false;
                boundary;
              };
            Some (Internal id)
        | External name as c -> (
            match p with
            | Path.Pident _ -> None
            | _ ->
                ext_value_effects name site;
                add_edge ctx.cur
                  {
                    callee = c;
                    e_mask = ctx.mask;
                    args = [||];
                    call_site = site;
                    e_held = ctx.held;
                    damp_mut = false;
                    boundary;
                  };
                Some c))
    | Texp_ident (p, _, _) ->
        ignore (classify_path ctx p);
        None
    | Texp_apply _ ->
        walk a;
        (* partial application: target the head function's node *)
        let rec head (e : expression) =
          match e.exp_desc with
          | Texp_ident (p, _, _) -> Some p
          | Texp_apply (f, _) -> head f
          | _ -> None
        in
        Option.map callee_of_path (head a)
    | _ ->
        walk a;
        None
  in
  let handle_apply (e : expression) fn args =
    let site = Effects.site_of_loc e.exp_loc in
    let argexprs = List.filter_map snd args in
    match fn.exp_desc with
    | Texp_ident (p, _, _) ->
        ignore (classify_path ctx p);
        let callee = callee_of_path p in
        let name =
          match callee with
          | External n -> n
          | Internal _ -> canonical_of_path ctx p
        in
        let held_before = ctx.held in
        (* Lock bookkeeping happens in two halves: the acquisition is
           recorded (and, for [Mutex.protect], added to the held set)
           BEFORE the arguments are walked, so the closure handed to
           [protect] is analyzed under the mutex it runs under. *)
        let is_protect = String.equal name "Mutex.protect" in
        let lock_acq =
          match name with
          | "Mutex.lock" | "Mutex.try_lock" | "Mutex.protect" -> (
              match argexprs with m :: _ -> Some (lock_name ctx m) | [] -> None)
          | _ -> None
        in
        (match lock_acq with
        | Some l ->
            ctx.cur.lock_acqs <- (held_before, l, site) :: ctx.cur.lock_acqs;
            add_acquire ctx l site;
            if is_protect then ctx.held <- SS.add l ctx.held
        | None -> ());
        (* arguments first: lambda targets must exist before the pool
           site that references them is recorded *)
        let targets =
          List.map
            (fun a ->
              let t = walk_arg (Some callee) a in
              if is_arrow a.exp_type then t else None)
            argexprs
          |> List.filter_map Fun.id
        in
        let argcs = Array.of_list (List.map (classify_arg ctx) argexprs) in
        (match callee with
        | External _ ->
            (* effect tables; internal canonical names (always
               [Unit.something]) never collide with stdlib entries *)
            (match Effects.ext_raises name with
            | Some exn -> add_raise ctx exn site
            | None -> ());
            (match Effects.ext_mut_arg name with
            | Some i -> (
                match List.nth_opt argexprs i with
                | Some a -> record_mut ctx site a
                | None -> () (* partial application *))
            | None -> ());
            (match Effects.ext_nondet name with
            | Some what -> add_nondet ctx what site
            | None -> ());
            if Effects.ext_locks name then set_locks ctx;
            if Effects.ext_io name then set_io ctx;
            (match Effects.ext_alloc name with
            | Some kind -> add_alloc ctx kind site
            | None -> ());
            (match Effects.ext_boxes_float_arg name with
            | Some i -> (
                match List.nth_opt argexprs i with
                | Some a when is_float_ty a.exp_type ->
                    add_alloc ctx "boxed float" site
                | _ -> ())
            | None -> ());
            (* Direct application of a structural primitive at a
               float-bearing aggregate: the generic runtime comparator
               walks (and on flat float blocks, boxes) every element.
               Bare [float] arguments are excluded — the compiler
               specializes those. *)
            (if Effects.ext_poly_cmp name && not (is_arrow e.exp_type) then
               match argexprs with
               | a :: _
                 when contains_float a.exp_type && not (is_float_ty a.exp_type)
                 ->
                   add_poly ctx
                     (Printf.sprintf
                        "polymorphic `%s' on a float-bearing type" name)
                     site
               | _ -> ());
            (match name with
            | "Hashtbl.find" | "Hashtbl.find_opt" | "Hashtbl.mem"
            | "Hashtbl.add" | "Hashtbl.replace" | "Hashtbl.remove"
            | "Hashtbl.find_all" -> (
                match argexprs with
                | t :: _ -> (
                    match Types.get_desc t.exp_type with
                    | Types.Tconstr (_, [ k; _ ], _) when contains_float k ->
                        add_poly ctx
                          (Printf.sprintf
                             "%s on a float-keyed table (polymorphic \
                              hash/equality)"
                             name)
                          site
                    | _ -> ())
                | [] -> ())
            | _ -> ());
            (* L14 raw material: a call that may park this domain,
               recorded as a blocking kind; if a lock was already held
               here it is also a direct under-lock witness.  The one
               sanctioned shape is [Condition.wait c m] while holding
               exactly [m] — that IS the protocol. *)
            (match Effects.ext_blocking name with
            | Some kind when not (is_arrow e.exp_type) ->
                let kind =
                  match lock_acq with
                  | Some l -> Printf.sprintf "%s of `%s'" kind l
                  | None -> kind
                in
                add_block ctx kind site;
                let protocol_ok =
                  String.equal name "Condition.wait"
                  &&
                  match argexprs with
                  | [ _; m ] ->
                      SS.subset held_before (SS.singleton (lock_name ctx m))
                  | _ -> false
                in
                if (not (SS.is_empty held_before)) && not protocol_ok then
                  ctx.cur.blocked_sites <-
                    (kind, held_before, site) :: ctx.cur.blocked_sites
            | _ -> ());
            (* L15 raw material: float accumulation drawn from an
               unordered traversal, or merged across domains by hand. *)
            (match name with
            | "Hashtbl.fold"
              when (not (is_arrow e.exp_type)) && contains_float e.exp_type ->
                add_float_merge ctx
                  "float accumulation over `Hashtbl.fold' (unordered \
                   iteration)"
                  site
            | "Hashtbl.iter" | "Hashtbl.to_seq" | "Hashtbl.to_seq_keys"
            | "Hashtbl.to_seq_values" -> (
                let tbl_idx = if String.equal name "Hashtbl.iter" then 1 else 0 in
                match List.nth_opt argexprs tbl_idx with
                | Some t -> (
                    match Types.get_desc t.exp_type with
                    | Types.Tconstr (_, targs, _)
                      when List.exists contains_float targs ->
                        add_float_merge ctx
                          (Printf.sprintf
                             "float-bearing `%s' traversal (unordered \
                              iteration)"
                             name)
                          site
                    | _ -> ())
                | None -> ())
            | "Domain.join" when contains_float e.exp_type ->
                add_float_merge ctx
                  "cross-domain float merge via `Domain.join' (outside the \
                   pool's fixed pairwise tree)"
                  site
            | _ -> ())
        | Internal _ -> ());
        (* Second half of the lock bookkeeping: [lock]/[try_lock] hold
           from here to the matching [unlock]; [protect] releases on
           return (unless the same class was already held). *)
        (match lock_acq with
        | Some l ->
            if is_protect then begin
              if not (SS.mem l held_before) then ctx.held <- SS.remove l ctx.held
            end
            else ctx.held <- SS.add l ctx.held
        | None -> ());
        (if String.equal name "Mutex.unlock" then
           match argexprs with
           | m :: _ -> ctx.held <- SS.remove (lock_name ctx m) ctx.held
           | [] -> ());
        if is_arrow e.exp_type then add_alloc ctx "partial application" site;
        (match name with
        | "raise" | "raise_notrace" | "Printexc.raise_with_backtrace" -> (
            match argexprs with
            | { exp_desc = Texp_construct (_, cd, _); _ } :: _ ->
                add_raise ctx cd.Types.cstr_name site
            | _ ->
                (* re-raise of a caught variable: the origin was
                   already attributed where the exception was built *)
                ())
        | _ -> ());
        add_edge ctx.cur
          {
            callee;
            e_mask = ctx.mask;
            args = argcs;
            call_site = site;
            e_held = held_before;
            damp_mut = false;
            boundary = false;
          };
        if List.mem name pool_combinators then
          b.bpool <-
            ( {
                ps_site = site;
                ps_combinator = name;
                ps_caller = ctx.cur.id;
                ps_targets = [];
              },
              targets )
            :: b.bpool
    | _ ->
        walk fn;
        List.iter (fun a -> ignore (walk_arg None a)) argexprs;
        if is_arrow e.exp_type then add_alloc ctx "partial application" site
  in
  let expr sub (e : expression) =
    match e.exp_desc with
    | Texp_function _ -> ignore (lambda_node None e)
    | Texp_apply (fn, args) -> handle_apply e fn args
    | Texp_ident (p, _, _) ->
        ignore (classify_path ctx p);
        if is_arrow e.exp_type then
          note_poly_value p e.exp_type (Effects.site_of_loc e.exp_loc)
    | Texp_tuple es ->
        let site = Effects.site_of_loc e.exp_loc in
        add_alloc ctx "tuple" site;
        if List.exists (fun (x : expression) -> is_float_ty x.exp_type) es
        then add_alloc ctx "boxed float" site;
        List.iter walk es
    | Texp_construct (_, cd, args) when args <> [] && not (is_exn_ty e.exp_type)
      ->
        (* exception payloads live on the raise path, which zero-alloc
           contracts deliberately exempt *)
        let site = Effects.site_of_loc e.exp_loc in
        add_alloc ctx
          (if String.equal cd.Types.cstr_name "::" then "list"
           else "variant block")
          site;
        if List.exists (fun (x : expression) -> is_float_ty x.exp_type) args
        then add_alloc ctx "boxed float" site;
        List.iter walk args
    | Texp_record { fields; representation; extended_expression } ->
        let site = Effects.site_of_loc e.exp_loc in
        (match representation with
        | Types.Record_unboxed _ -> () (* erased at runtime *)
        | _ ->
            add_alloc ctx "record" site;
            (* mixed records box each float field; all-float records
               are flat, all-immediate ones have nothing to box *)
            let total = Array.length fields in
            let floats =
              Array.fold_left
                (fun acc ((ld : Types.label_description), _) ->
                  if is_float_ty ld.Types.lbl_arg then acc + 1 else acc)
                0 fields
            in
            if floats > 0 && floats < total then
              add_alloc ctx "boxed float" site);
        Option.iter walk extended_expression;
        Array.iter
          (fun (_, def) ->
            match def with Kept _ -> () | Overridden (_, x) -> walk x)
          fields
    | Texp_array es ->
        add_alloc ctx "array" (Effects.site_of_loc e.exp_loc);
        List.iter walk es
    | Texp_variant (_, Some x) ->
        add_alloc ctx "variant block" (Effects.site_of_loc e.exp_loc);
        walk x
    | Texp_lazy x ->
        add_alloc ctx "lazy" (Effects.site_of_loc e.exp_loc);
        walk x
    | Texp_setfield (target, _, _, rhs) ->
        record_mut ctx (Effects.site_of_loc e.exp_loc) target;
        walk target;
        walk rhs
    | Texp_try (body, cases) ->
        let m = mask_of_value_cases cases in
        with_mask (Effects.compose_mask ctx.mask m) (fun () -> walk body);
        List.iter walk_case cases
    | Texp_match (scrut, cases, _) ->
        let m = mask_of_comp_cases cases in
        with_mask (Effects.compose_mask ctx.mask m) (fun () -> walk scrut);
        List.iter walk_case cases
    | Texp_for (id, _, lo, hi, _, body) ->
        add_binder id;
        walk lo;
        walk hi;
        walk body
    | Texp_assert (cond, _) ->
        (* Assert_failure is deliberately untracked: L6 already
           polices validation asserts, and [assert false] markers
           would otherwise poison every caller's raise set. *)
        walk cond
    | _ -> Tast_iterator.default_iterator.Tast_iterator.expr sub e
  in
  let pat : 'k. Tast_iterator.iterator -> 'k general_pattern -> unit =
   fun sub p ->
    List.iter add_binder (pat_bound_idents p);
    Tast_iterator.default_iterator.Tast_iterator.pat sub p
  in
  (* Local [let]-bound functions become their own nodes; the whole
     binding group is pre-registered so [let rec f .. and g ..] bodies
     can resolve each other. *)
  let value_bindings sub ((_, vbs) : Asttypes.rec_flag * value_binding list) =
    let prepared =
      List.map
        (fun (vb : value_binding) ->
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var (id, _), Texp_function _ ->
              add_binder id;
              let node =
                new_node ctx
                  ~name:(ctx.cur.name ^ "." ^ Ident.name id)
                  ~symbol:ctx.cur.symbol ~kind:Local ~is_fun:true
                  vb.vb_expr.exp_loc
              in
              apply_contract node vb.vb_attributes;
              ctx.stamp_nodes <-
                SM.add (Ident.unique_name id) node.id ctx.stamp_nodes;
              (vb, Some node)
          | _ -> (vb, None))
        vbs
    in
    List.iter
      (fun ((vb : value_binding), node) ->
        match node with
        | Some node ->
            in_node node (fun () -> walk_fn_body 0 vb.vb_expr);
            (* a capturing local function costs its enclosing function
               one environment block per call; captureless ones are
               compiled to static closures *)
            if node.captures && ctx.cur.is_fun then
              add_alloc_n ctx.cur "closure" node.def_site
        | None ->
            Tast_iterator.default_iterator.Tast_iterator.value_binding sub vb)
      prepared
  in
  let rec walk_structure (s : structure) =
    List.iter walk_structure_item s.str_items
  and walk_structure_item (si : structure_item) =
    match si.str_desc with
    | Tstr_value (_, vbs) ->
        let prefix = top_prefix ctx in
        let prepared =
          List.map
            (fun (vb : value_binding) ->
              let ids = pat_bound_idents vb.vb_pat in
              let is_fun =
                match vb.vb_expr.exp_desc with
                | Texp_function _ -> true
                | _ -> false
              in
              let symbol =
                match ids with id :: _ -> Ident.name id | [] -> "_"
              in
              let canon = prefix ^ "." ^ symbol in
              let node =
                new_node ctx ~name:canon ~symbol ~kind:Top ~is_fun
                  vb.vb_expr.exp_loc
              in
              apply_contract node vb.vb_attributes;
              List.iter
                (fun id ->
                  let k = Ident.unique_name id in
                  ctx.globals <-
                    SM.add k (prefix ^ "." ^ Ident.name id) ctx.globals;
                  ctx.stamp_nodes <- SM.add k node.id ctx.stamp_nodes)
                ids;
              b.bnames <- SM.add canon node.id b.bnames;
              (vb, node, is_fun))
            vbs
        in
        List.iter
          (fun ((vb : value_binding), node, is_fun) ->
            in_node node (fun () ->
                if is_fun then walk_fn_body 0 vb.vb_expr else walk vb.vb_expr))
          prepared
    | Tstr_module mb -> walk_module_binding mb
    | Tstr_recmodule mbs ->
        (* register the names first so each body can canonicalize
           references to its siblings *)
        List.iter register_module_alias mbs;
        List.iter walk_module_binding mbs
    | _ -> Tast_iterator.default_iterator.Tast_iterator.structure_item !it si
  and unwrap_module (me : module_expr) =
    match me.mod_desc with
    | Tmod_constraint (me, _, _, _) -> unwrap_module me
    | _ -> me
  and register_module_alias (mb : module_binding) =
    match mb.mb_name.txt with
    | None -> ()
    | Some name -> (
        match (unwrap_module mb.mb_expr).mod_desc with
        | Tmod_ident (p, _) ->
            ctx.aliases <- SM.add name (canonical_of_path ctx p) ctx.aliases
        | _ ->
            ctx.aliases <- SM.add name (top_prefix ctx ^ "." ^ name) ctx.aliases
        )
  and walk_module_binding (mb : module_binding) =
    match mb.mb_name.txt with
    | None -> ()
    | Some name -> (
        register_module_alias mb;
        match (unwrap_module mb.mb_expr).mod_desc with
        | Tmod_ident _ -> ()
        | Tmod_structure str ->
            let saved = ctx.mod_prefix in
            ctx.mod_prefix <- name :: saved;
            walk_structure str;
            ctx.mod_prefix <- saved
        | _ -> (!it).Tast_iterator.module_expr !it mb.mb_expr)
  in
  let structure_item _sub (si : structure_item) = walk_structure_item si in
  it :=
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr;
      pat;
      value_bindings;
      structure_item;
    };
  walk_structure str

(* ------------------------------------------------------------------ *)
(* Interfaces: exported names                                          *)
(* ------------------------------------------------------------------ *)

let process_intf b (u : Loader.unit_) (sg : signature) =
  let canon = canonical_of_modname u.modname in
  b.bintf <- SS.add canon b.bintf;
  let rec items prefix sig_items = List.iter (item prefix) sig_items
  and item prefix (si : signature_item) =
    match si.sig_desc with
    | Tsig_value vd ->
        b.bpublic <- SS.add (prefix ^ "." ^ vd.val_name.txt) b.bpublic
    | Tsig_module md -> (
        match (md.md_name.txt, md.md_type.mty_desc) with
        | Some n, Tmty_signature s -> items (prefix ^ "." ^ n) s.sig_items
        | _ -> ())
    | _ -> ()
  in
  items canon sg.sig_items

(* ------------------------------------------------------------------ *)
(* Linking                                                             *)
(* ------------------------------------------------------------------ *)

let build (units : Loader.unit_ list) =
  let b =
    {
      bnodes = [];
      bcount = 0;
      bpool = [];
      bpublic = SS.empty;
      bintf = SS.empty;
      bnames = SM.empty;
    }
  in
  List.iter
    (fun (u : Loader.unit_) ->
      match u.kind with
      | Loader.Impl str -> process_impl b u str
      | Loader.Intf sg -> process_intf b u sg)
    units;
  let nodes = Array.of_list (List.rev b.bnodes) in
  let resolve = function
    | Internal _ as c -> c
    | External name as c -> (
        match SM.find_opt name b.bnames with
        | Some id -> Internal id
        | None -> c)
  in
  let locks_callee c =
    match resolve c with
    | Internal id -> nodes.(id).direct.Effects.locks
    | External name -> Effects.ext_locks name
  in
  let boundary_callee c =
    match resolve c with
    | Internal id -> boundary_guard_name nodes.(id).name
    | External name -> boundary_guard_name name
  in
  Array.iter
    (fun n ->
      List.iter
        (fun e ->
          e.callee <- resolve e.callee;
          (* a direct call to a pool combinator is itself a boundary:
             its internal lock/wait belongs to the submission protocol
             (L14 reports held-lock submissions separately) *)
          (match e.callee with
          | Internal id -> (
              if boundary_guard_name nodes.(id).name then e.boundary <- true;
              match nodes.(id).kind with
              | Lambda { guard = Some g } ->
                  if locks_callee g then e.damp_mut <- true;
                  if boundary_callee g then e.boundary <- true
              | _ -> ())
          | External name ->
              if boundary_guard_name name then e.boundary <- true))
        n.edges)
    nodes;
  let pool_sites =
    List.rev_map
      (fun (ps, targets) ->
        ps.ps_targets <-
          List.filter_map
            (fun t ->
              match resolve t with
              | Internal id when nodes.(id).is_fun -> Some id
              | _ -> None)
            targets;
        ps)
      b.bpool
    |> List.sort (fun a b -> Effects.compare_site a.ps_site b.ps_site)
  in
  {
    nodes;
    pool_sites;
    public = b.bpublic;
    intf_units = b.bintf;
    by_name = b.bnames;
  }

let find t name =
  match SM.find_opt name t.by_name with
  | Some id -> Some t.nodes.(id)
  | None -> None
