(** Effect vocabulary for the interprocedural passes: witness sites,
    exception-handler masks, the per-function effect lattice, and the
    tables describing what external (stdlib/unix) calls do.

    A summary is a point in a finite join-semilattice — maps only
    grow, witness sites only shrink towards the smallest
    (file, line, col), booleans only flip to [true] — so the fixpoint
    in {!Summary} terminates on any call graph, cyclic ones
    included. *)

module SS : Set.S with type elt = string
module SM : Map.S with type key = string
module IM : Map.S with type key = int

(** {2 Witness sites} *)

type site = { file : string; line : int; col : int }

val site_of_loc : Location.t -> site
val loc_of_site : site -> Location.t
(** A ghost-free single-point location, good enough for {!Diag.make}. *)

val compare_site : site -> site -> int
val min_site : site -> site -> site
val site_to_string : site -> string
(** ["file:line"]. *)

module RS : Set.S with type elt = string * site
(** Nondeterminism reads: (what is read, where). *)

(** {2 Exception-handler masks}

    What an enclosing [try]/[match ... with exception] context
    catches; applied to direct raises at their site and carried on
    call edges. *)

type mask =
  | Catch_all  (** a wildcard / variable handler pattern *)
  | Catch of SS.t  (** these constructor names only *)

val mask_none : mask
val compose_mask : mask -> mask -> mask
val mask_catches : mask -> string -> bool
val mask_raises : mask -> site SM.t -> site SM.t
(** Remove the raises the mask catches. *)

(** {2 The effect lattice} *)

type t = {
  raises : site SM.t;
      (** bare exception constructor name -> smallest witness *)
  nondet : RS.t;  (** ambient-nondeterminism read sites *)
  io : bool;
  locks : bool;
      (** takes a mutex {e directly}; never propagated through calls *)
  mut_global : site SM.t;
      (** canonical name of mutated module-level state -> witness *)
  mut_param : site IM.t;  (** mutated own-parameter index -> witness *)
  mut_free : (string * site) SM.t;
      (** mutated free local captured from an enclosing scope, keyed
          by [Ident.unique_name] -> (display name, witness) *)
  allocs : site SM.t;
      (** heap-allocation kind tag ("closure", "boxed float", "tuple",
          "record", ...) -> smallest witness site.  Models native-code
          behaviour; raise paths are exempt (see DESIGN.md §7d). *)
  poly_cmp : RS.t;
      (** polymorphic compare/hash uses with a monomorphic
          replacement: (description, site).  Consumed by L12. *)
  acquires : site SM.t;
      (** canonical mutex identity -> smallest acquisition site, direct
          or transitive.  Unlike [locks] this propagates through calls.
          Consumed by L13. *)
  blocks : site SM.t;
      (** blocking-call kind -> smallest witness site; propagates
          except through scheduling-boundary edges.  Consumed by
          L14. *)
  float_merges : RS.t;
      (** order-sensitive float accumulation over unordered sources:
          (description, site).  Consumed by L15. *)
}

val bottom : t
val union : t -> t -> t
val equal : t -> t -> bool
val has_mut : t -> bool
val drop_mut : t -> t
val drop_allocs : t -> t

(** {2 External effect tables}

    Keyed by canonical name ([Stdlib.] stripped, [Lib__Module]
    mangling expanded).  Unknown externals contribute nothing. *)

val ext_raises : string -> string option
val ext_mut_arg : string -> int option
(** Mutated positional argument index.  [Array.set]/[Bytes.set] are
    deliberately exempt: per-slot writes are the pool's documented
    index-ownership convention. *)

val ext_nondet : string -> string option
(** [Some description] when the call reads ambient nondeterminism. *)

val ext_locks : string -> bool
val ext_io : string -> bool

val ext_alloc : string -> string option
(** [Some kind] when the call heap-allocates on its success path in
    native code.  Float/Int64 register arithmetic, captureless
    closures, constants, and failure paths are deliberately absent. *)

val ext_boxes_float_arg : string -> int option
(** Positional argument that gets boxed when instantiated at [float]
    (stored into a non-flat heap slot). *)

val ext_poly_cmp : string -> bool
(** Polymorphic structural compare/hash primitives ([compare],
    [Hashtbl.hash], ...) that L12 flags when passed as first-class
    values or applied at float-heavy types. *)

val ext_blocking : string -> string option
(** [Some kind] when the call may park the calling domain ("mutex
    acquisition", "condition wait", "Domain.join", "io", "Unix system
    call").  [Mutex.try_lock] and the non-blocking [Unix] reads
    (clock, [getenv], [getpid]) are deliberately absent. *)
