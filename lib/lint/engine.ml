type report = {
  diagnostics : Diag.t list;
  suppressed : Diag.t list;
  errors : string list;
  units_checked : int;
}

let empty_report = { diagnostics = []; suppressed = []; errors = []; units_checked = 0 }

let merge a b =
  {
    diagnostics = a.diagnostics @ b.diagnostics;
    suppressed = a.suppressed @ b.suppressed;
    errors = a.errors @ b.errors;
    units_checked = a.units_checked + b.units_checked;
  }

let finalize ~allowlist diags =
  let diags = List.sort_uniq Diag.order diags in
  let kept, suppressed = Allowlist.filter allowlist diags in
  (kept, suppressed)

let check_units ~rules units =
  List.concat_map
    (fun (u : Loader.unit_) ->
      match u.kind with
      | Loader.Impl s -> Rules.check_impl ~rules ~source:u.source s
      | Loader.Intf s -> Rules.check_intf ~rules ~source:u.source s)
    units

let run ?(allowlist = Allowlist.empty) ~rules roots =
  let units, errors = Loader.load_roots roots in
  let diagnostics, suppressed = finalize ~allowlist (check_units ~rules units) in
  { diagnostics; suppressed; errors; units_checked = List.length units }

(* ---------------- repo policy ---------------- *)

let lib_rules = [ Diag.L1; Diag.L2; Diag.L3; Diag.L5; Diag.L6 ]
let exe_rules = [ Diag.L1; Diag.L3 ]

let unit_labelled_dirs =
  [ "lib/geo/"; "lib/rf/"; "lib/terrain/"; "lib/fiber/"; "lib/design/" ]

let in_unit_labelled_dir source =
  List.exists
    (fun d ->
      (* match anywhere in the path so it works from any build root *)
      let ld = String.length d and ls = String.length source in
      let rec at i = i + ld <= ls && (String.equal (String.sub source i ld) d || at (i + 1)) in
      at 0)
    unit_labelled_dirs

let run_repo ?(allowlist = Allowlist.empty) ~root () =
  let ( / ) = Filename.concat in
  let existing dirs = List.filter Sys.file_exists dirs in
  let lib_units, lib_errors = Loader.load_roots (existing [ root / "lib" ]) in
  let exe_units, exe_errors =
    Loader.load_roots (existing [ root / "bin"; root / "bench"; root / "examples" ])
  in
  let impl_diags = check_units ~rules:lib_rules lib_units in
  let l4_diags =
    check_units ~rules:[ Diag.L4 ]
      (List.filter (fun (u : Loader.unit_) -> in_unit_labelled_dir u.source) lib_units)
  in
  let exe_diags = check_units ~rules:exe_rules exe_units in
  let diagnostics, suppressed =
    finalize ~allowlist (impl_diags @ l4_diags @ exe_diags)
  in
  {
    diagnostics;
    suppressed;
    errors = lib_errors @ exe_errors;
    units_checked = List.length lib_units + List.length exe_units;
  }

let exit_code report =
  if report.diagnostics <> [] then 1
  else if report.errors <> [] then 2
  else 0
