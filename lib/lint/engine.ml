type report = {
  diagnostics : Diag.t list;
  suppressed : Diag.t list;
  stale : Allowlist.entry list;
  errors : string list;
  units_checked : int;
}

let empty_report =
  { diagnostics = []; suppressed = []; stale = []; errors = []; units_checked = 0 }

let merge a b =
  {
    diagnostics = List.sort_uniq Diag.order (a.diagnostics @ b.diagnostics);
    suppressed = List.sort_uniq Diag.order (a.suppressed @ b.suppressed);
    stale = a.stale @ b.stale;
    errors = a.errors @ b.errors;
    units_checked = a.units_checked + b.units_checked;
  }

(* ---------------- pass manager ---------------- *)

(* A lint run is a list of passes over one load of the tree:
   per-expression rules confined to a unit at a time (L1-L6), and the
   interprocedural pass (L7-L9) that needs the whole call graph at
   once.  Each expression pass carries its own unit filter so the
   repo policy can hold different parts of the tree to different
   rules; the interprocedural config carries its policy inside. *)
type pass =
  | Expr of { rules : Diag.rule list; select : Loader.unit_ -> bool }
  | Interprocedural of Effect_rules.config

let is_ipa_rule = function
  | Diag.L7 | Diag.L8 | Diag.L9 | Diag.L10 | Diag.L11 | Diag.L12 | Diag.L13
  | Diag.L14 | Diag.L15 ->
      true
  | _ -> false

let check_units ~rules units =
  List.concat_map
    (fun (u : Loader.unit_) ->
      match u.kind with
      | Loader.Impl s -> Rules.check_impl ~rules ~source:u.source s
      | Loader.Intf s -> Rules.check_intf ~rules ~source:u.source s)
    units

let run_pass ?on_graph units = function
  | Expr { rules = []; _ } -> []
  | Expr { rules; select } -> check_units ~rules (List.filter select units)
  | Interprocedural cfg
    when cfg.Effect_rules.l7 || cfg.Effect_rules.l8 || cfg.Effect_rules.l9
         || cfg.Effect_rules.l10 || cfg.Effect_rules.l11
         || cfg.Effect_rules.l12 || cfg.Effect_rules.l13
         || cfg.Effect_rules.l14 || cfg.Effect_rules.l15 ->
      let graph = Callgraph.build units in
      let summaries = Summary.compute graph in
      (match on_graph with
      | Some f -> f graph summaries.Summary.summaries
      | None -> ());
      Effect_rules.check cfg graph summaries
  | Interprocedural _ -> []

(* Diagnostics are sorted by (file, line, col, rule) and deduplicated
   before the allowlist partitions them, so output is byte-stable no
   matter in which order the [.cmt] files were discovered or the
   passes emitted. *)
let finalize ~allowlist diags =
  let diags = List.sort_uniq Diag.order diags in
  let kept, suppressed = Allowlist.filter allowlist diags in
  let stale = Allowlist.stale allowlist diags in
  (kept, suppressed, stale)

let run_passes ?on_graph ~allowlist units passes =
  let diagnostics, suppressed, stale =
    finalize ~allowlist (List.concat_map (run_pass ?on_graph units) passes)
  in
  (diagnostics, suppressed, stale)

(* [--lock-graph FILE]: dump the derived acquisition graph when the
   interprocedural pass runs; a write failure is a report error, not a
   crash. *)
let lock_dot_sink lock_dot errors =
  match lock_dot with
  | None -> None
  | Some path ->
      Some
        (fun graph sums ->
          try
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc (Effect_rules.lock_graph_dot graph sums))
          with Sys_error msg ->
            errors := Printf.sprintf "lock-graph: %s" msg :: !errors)

let run ?(allowlist = Allowlist.empty) ?(hotpaths = []) ?lock_dot ~rules roots
    =
  let units, errors = Loader.load_roots roots in
  let expr_rules = List.filter (fun r -> not (is_ipa_rule r)) rules in
  let on r = List.mem r rules in
  let cfg =
    {
      Effect_rules.generic with
      Effect_rules.l7 = on Diag.L7;
      l8 = on Diag.L8;
      l9 = on Diag.L9;
      l10 = on Diag.L10;
      l11 = on Diag.L11;
      l12 = on Diag.L12;
      l13 = on Diag.L13;
      l14 = on Diag.L14;
      l15 = on Diag.L15;
      l10_hotpaths = hotpaths;
    }
  in
  let passes =
    [
      Expr { rules = expr_rules; select = (fun _ -> true) };
      Interprocedural cfg;
    ]
  in
  let late_errors = ref [] in
  let diagnostics, suppressed, stale =
    run_passes
      ?on_graph:(lock_dot_sink lock_dot late_errors)
      ~allowlist units passes
  in
  {
    diagnostics;
    suppressed;
    stale;
    errors = errors @ List.rev !late_errors;
    units_checked = List.length units;
  }

(* ---------------- repo policy ---------------- *)

let lib_rules = [ Diag.L1; Diag.L2; Diag.L3; Diag.L5; Diag.L6 ]
let exe_rules = [ Diag.L1; Diag.L3 ]

(* match the directory anywhere in the path so it works from any
   build root *)
let in_dir d source =
  let ld = String.length d and ls = String.length source in
  let rec at i =
    i + ld <= ls && (String.equal (String.sub source i ld) d || at (i + 1))
  in
  at 0

let unit_labelled_dirs =
  [ "lib/geo/"; "lib/rf/"; "lib/terrain/"; "lib/fiber/"; "lib/design/" ]

let in_unit_labelled_dir source = List.exists (fun d -> in_dir d source) unit_labelled_dirs
let in_lib source = in_dir "lib/" source

(* L9 reachability is seeded at the design pipeline: everything the
   end-to-end topology/capacity/weather run can call must draw its
   randomness from the seeded [Cisp_util.Rng]. *)
let pipeline_prefixes =
  [
    "Cisp.";
    "Cisp_design.";
    "Cisp_towers.";
    "Cisp_graph.";
    "Cisp_weather.";
    "Cisp_fiber.";
  ]

(* The repo's canonical lock order, outermost first (DESIGN.md §7e):
   the pool registry lock wraps pool lifecycle (shutdown joins workers
   under it), a pool's own mutex is next, the DEM cache locks nest
   only under those, and the telemetry mutex is innermost — it guards
   cold read-outs and must never be held across anything else. *)
let canonical_lock_order =
  [
    "Cisp_util.Pool.default_lock";
    "Cisp_util.Pool.t.mutex";
    "Cisp_terrain.Dem_cache.store.reg_lock";
    "Cisp_terrain.Dem_cache.store.lock";
    "Cisp_util.Telemetry.state.mutex";
  ]

let repo_ipa_config ~hotpaths =
  {
    Effect_rules.l7 = true;
    l8 = true;
    l9 = true;
    l10 = true;
    l11 = true;
    l12 = true;
    l13 = true;
    l14 = true;
    l15 = true;
    (* hold library code to the conventions; executables may catch and
       report however they like *)
    l8_unit_ok = in_lib;
    l9_root =
      (fun (n : Callgraph.node) ->
        List.exists
          (fun p -> String.starts_with ~prefix:p n.Callgraph.name)
          pipeline_prefixes);
    l9_site_ok = in_lib;
    l9_exempt = Effect_rules.default_l9_exempt;
    l10_hotpaths = hotpaths;
    (* L12, like L9, polices library sources only: a bench harness
       sorting results with polymorphic compare is fine *)
    l12_site_ok = in_lib;
    l13_order = canonical_lock_order;
    (* L15, same scoping as L12 *)
    l15_site_ok = in_lib;
    l15_exempt = Effect_rules.default_l15_exempt;
  }

let run_repo ?(allowlist = Allowlist.empty) ?hotpaths ?lock_dot ~root () =
  let ( / ) = Filename.concat in
  let existing dirs = List.filter Sys.file_exists dirs in
  (* default registry: <root>/lint.hotpaths, when present *)
  let hotpaths, hp_errors =
    match hotpaths with
    | Some names -> (names, [])
    | None -> (
        let file = root / "lint.hotpaths" in
        if not (Sys.file_exists file) then ([], [])
        else
          match Hotpaths.load file with
          | Ok entries -> (List.map (fun e -> e.Hotpaths.name) entries, [])
          | Error msg -> ([], [ msg ]))
  in
  let units, errors =
    Loader.load_roots
      (existing [ root / "lib"; root / "bin"; root / "bench"; root / "examples" ])
  in
  let errors = hp_errors @ errors in
  let passes =
    [
      Expr { rules = lib_rules; select = (fun u -> in_lib u.Loader.source) };
      Expr
        {
          rules = [ Diag.L4 ];
          select = (fun u -> in_unit_labelled_dir u.Loader.source);
        };
      Expr
        { rules = exe_rules; select = (fun u -> not (in_lib u.Loader.source)) };
      (* the interprocedural pass sees the whole tree at once:
         executables feed closures to the same pool as the library *)
      Interprocedural (repo_ipa_config ~hotpaths);
    ]
  in
  let late_errors = ref [] in
  let diagnostics, suppressed, stale =
    run_passes
      ?on_graph:(lock_dot_sink lock_dot late_errors)
      ~allowlist units passes
  in
  {
    diagnostics;
    suppressed;
    stale;
    errors = errors @ List.rev !late_errors;
    units_checked = List.length units;
  }

let exit_code report =
  if report.diagnostics <> [] then 1
  else if report.errors <> [] then 2
  else 0
