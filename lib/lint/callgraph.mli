(** Phase 1 of the interprocedural analysis: a cross-module call
    graph with per-node direct effects, built in one walk over every
    loaded [.cmt]/[.cmti].

    Nodes are structure-level bindings ([Top]), let-bound local
    functions ([Local]) and inline lambdas ([Lambda]); a lambda
    remembers its {e guard} — the callee it was handed to — so
    {!Summary} can discount mutations protected by a lock-taking
    wrapper like [Mutex.protect] or [Telemetry.locked].

    Canonical naming: dune's wrapped-library mangling
    ([Cisp_util__Pool]) is expanded to [Cisp_util.Pool], unit-local
    module aliases are chased, and the [Stdlib.] prefix is stripped,
    so one spelling identifies a definition across compilation
    units. *)

module SS = Effects.SS
module SM = Effects.SM

type callee =
  | Internal of int  (** node id *)
  | External of string  (** canonical name, not in any loaded unit *)

type nkind = Top | Local | Lambda of { guard : callee option }

(** How a call-site argument relates to the caller's world; used to
    map a callee's parameter mutations back onto the caller. *)
type argc =
  | AGlobal of string  (** module-level state, canonical name *)
  | AParam of int  (** the caller's own parameter *)
  | AFreeLocal of string * string
      (** captured from an enclosing scope: (unique key, name) *)
  | ALocal  (** bound inside the caller: mutation stays private *)
  | AOther

type edge = {
  mutable callee : callee;
  e_mask : Effects.mask;  (** handler context at the call site *)
  args : argc array;
  call_site : Effects.site;
  e_held : SS.t;
      (** canonical mutex identities the caller syntactically holds at
          this call site (its own acquisitions only; add the node's
          [entry_held] for the full picture) *)
  mutable damp_mut : bool;
      (** callee is a lambda whose guard takes a lock: its mutations
          are protected, do not fold them into the caller *)
  mutable boundary : bool;
      (** callee runs on other domains (closure handed to a [Pool]
          combinator or [Domain.spawn]): {!Summary} drops blocking and
          lock acquisitions across this edge *)
}

type node = {
  id : int;
  name : string;  (** canonical for [Top], dotted path otherwise *)
  symbol : string;  (** enclosing top-level value, for diagnostics *)
  unit_source : string;
  def_site : Effects.site;
  kind : nkind;
  is_fun : bool;
  mutable params_idx : int SM.t;
  mutable binders : SS.t;
  mutable captures : bool;
      (** references a free local of an enclosing scope, so creating
          this node's closure heap-allocates an environment *)
  mutable zero_alloc : bool;  (** [@cisp.zero_alloc] on the definition *)
  mutable alloc_ok : bool;
      (** [@cisp.alloc_ok "reason"]: the summary drops allocations at
          this node — the justified cold-path escape hatch *)
  mutable entry_held : SS.t;
      (** locks syntactically held where a [Lambda] was created (a
          closure handed to [Mutex.protect] runs under that mutex);
          empty for named functions *)
  mutable lock_acqs : (SS.t * string * Effects.site) list;
      (** direct acquisitions: (held set at the site, mutex, site) —
          the raw material of the L13 order graph *)
  mutable blocked_sites : (string * SS.t * Effects.site) list;
      (** direct blocking calls under a held lock: (blocking kind,
          held set, site) — direct L14 witnesses.  The sanctioned
          [Condition.wait c m]-holding-exactly-[m] shape is already
          filtered out *)
  mutable direct : Effects.t;
  mutable edges : edge list;
}

type pool_site = {
  ps_site : Effects.site;
  ps_combinator : string;
  ps_caller : int;
  mutable ps_targets : int list;
}

type t = {
  nodes : node array;
  pool_sites : pool_site list;  (** sorted by site *)
  public : SS.t;  (** canonical names exported by some [.cmti] *)
  intf_units : SS.t;  (** canonical unit names that have an interface *)
  by_name : int SM.t;  (** canonical [Top] name -> node id *)
}

val pool_combinators : string list

val boundary_guard_name : string -> bool
(** Canonical names whose closures run on other domains (the pool
    combinators and [Domain.spawn]) — the scheduling boundaries across
    which blocking and lock acquisitions do not propagate. *)

val canonical_of_modname : string -> string

val build : Loader.unit_ list -> t
(** Deterministic in everything but the caller-supplied unit order;
    feed it {!Loader.load_roots} output (sorted by source) for
    byte-stable results. *)

val find : t -> string -> node option
(** Look up a [Top] node by canonical name. *)
