(* Effect vocabulary shared by the interprocedural passes.

   A summary is a point in a finite join-semilattice: maps only grow,
   witness sites only shrink (towards the smallest (file, line, col)),
   booleans only flip to [true] — so the fixpoint in {!Summary}
   terminates on any call graph, cyclic ones included. *)

module SS = Set.Make (String)
module SM = Map.Make (String)
module IM = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Witness sites                                                       *)
(* ------------------------------------------------------------------ *)

type site = { file : string; line : int; col : int }

let site_of_loc (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
  }

let loc_of_site s =
  let pos =
    {
      Lexing.pos_fname = s.file;
      pos_lnum = s.line;
      pos_bol = 0;
      pos_cnum = s.col;
    }
  in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = false }

let compare_site a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else Int.compare a.col b.col

let min_site a b = if compare_site a b <= 0 then a else b
let site_to_string s = Printf.sprintf "%s:%d" s.file s.line

module Read_site = struct
  type t = string * site (* what is read, where *)

  let compare (da, sa) (db, sb) =
    let c = compare_site sa sb in
    if c <> 0 then c else String.compare da db
end

module RS = Set.Make (Read_site)

(* ------------------------------------------------------------------ *)
(* Handler masks                                                       *)
(* ------------------------------------------------------------------ *)

type mask = Catch_all | Catch of SS.t

let mask_none = Catch SS.empty

let compose_mask a b =
  match (a, b) with
  | Catch_all, _ | _, Catch_all -> Catch_all
  | Catch x, Catch y -> Catch (SS.union x y)

let mask_catches mask name =
  match mask with Catch_all -> true | Catch names -> SS.mem name names

let mask_raises mask raises =
  match mask with
  | Catch_all -> SM.empty
  | Catch names -> SM.filter (fun n _ -> not (SS.mem n names)) raises

(* ------------------------------------------------------------------ *)
(* The effect lattice                                                  *)
(* ------------------------------------------------------------------ *)

type t = {
  raises : site SM.t;
      (* exception constructor name (bare, as handler patterns see it)
         -> smallest witness site *)
  nondet : RS.t; (* ambient-nondeterminism reads, each with its site *)
  io : bool;
  locks : bool; (* takes a mutex DIRECTLY — never propagated *)
  mut_global : site SM.t; (* canonical name of module-level state -> witness *)
  mut_param : site IM.t; (* 0-based own-parameter index -> witness *)
  mut_free : (string * site) SM.t;
      (* free local captured from an enclosing scope, keyed by
         [Ident.unique_name] -> (display name, witness) *)
  allocs : site SM.t;
      (* heap-allocation kind tag ("closure", "boxed float", "tuple",
         "list", ...) -> smallest witness site.  Models NATIVE-code
         behaviour: float/Int64 arithmetic held in registers, constants
         statically allocated, and raise paths are all exempt (see the
         tables below and DESIGN.md §7d). *)
  poly_cmp : RS.t;
      (* polymorphic compare/hash uses that have a monomorphic
         replacement: (description, site).  Consumed by L12 via
         pipeline reachability, like [nondet]/L9. *)
  acquires : site SM.t;
      (* canonical mutex identity -> smallest acquisition site, for
         every lock this function may take, directly or transitively.
         Unlike [locks] (a direct-only damping bit) this DOES
         propagate: a caller holding lock A that calls something which
         eventually takes lock B has established the order A -> B,
         however deep the call chain.  Consumed by L13. *)
  blocks : site SM.t;
      (* blocking-call kind ("mutex acquisition of `X'", "condition
         wait", "Domain.join", "io", ...) -> smallest witness site.
         Propagates, except through scheduling boundaries (edges into
         [Pool] combinators / [Domain.spawn] closures, see
         {!Callgraph}).  Consumed by L14. *)
  float_merges : RS.t;
      (* order-sensitive float accumulation over an unordered source
         (Hashtbl traversal, ad-hoc [Domain.join] merges):
         (description, site).  Consumed by L15 via pipeline
         reachability, like [nondet]/L9. *)
}

let bottom =
  {
    raises = SM.empty;
    nondet = RS.empty;
    io = false;
    locks = false;
    mut_global = SM.empty;
    mut_param = IM.empty;
    mut_free = SM.empty;
    allocs = SM.empty;
    poly_cmp = RS.empty;
    acquires = SM.empty;
    blocks = SM.empty;
    float_merges = RS.empty;
  }

let min_w _ a b = Some (min_site a b)

let union a b =
  {
    raises = SM.union min_w a.raises b.raises;
    nondet = RS.union a.nondet b.nondet;
    io = a.io || b.io;
    locks = a.locks || b.locks;
    mut_global = SM.union min_w a.mut_global b.mut_global;
    mut_param = IM.union min_w a.mut_param b.mut_param;
    mut_free =
      SM.union
        (fun _ (na, xa) (_, xb) -> Some (na, min_site xa xb))
        a.mut_free b.mut_free;
    allocs = SM.union min_w a.allocs b.allocs;
    poly_cmp = RS.union a.poly_cmp b.poly_cmp;
    acquires = SM.union min_w a.acquires b.acquires;
    blocks = SM.union min_w a.blocks b.blocks;
    float_merges = RS.union a.float_merges b.float_merges;
  }

let site_eq a b = compare_site a b = 0

let equal a b =
  SM.equal site_eq a.raises b.raises
  && RS.equal a.nondet b.nondet
  && Bool.equal a.io b.io && Bool.equal a.locks b.locks
  && SM.equal site_eq a.mut_global b.mut_global
  && IM.equal site_eq a.mut_param b.mut_param
  && SM.equal
       (fun (na, xa) (nb, xb) -> String.equal na nb && site_eq xa xb)
       a.mut_free b.mut_free
  && SM.equal site_eq a.allocs b.allocs
  && RS.equal a.poly_cmp b.poly_cmp
  && SM.equal site_eq a.acquires b.acquires
  && SM.equal site_eq a.blocks b.blocks
  && RS.equal a.float_merges b.float_merges

let has_mut t =
  not (SM.is_empty t.mut_global && IM.is_empty t.mut_param && SM.is_empty t.mut_free)

let drop_mut t =
  { t with mut_global = SM.empty; mut_param = IM.empty; mut_free = SM.empty }

let drop_allocs t = { t with allocs = SM.empty }

(* ------------------------------------------------------------------ *)
(* External effect tables                                              *)
(*                                                                     *)
(* Names are post-canonicalization: the [Stdlib.] prefix is stripped   *)
(* and dune's [Lib__Module] mangling is expanded to [Lib.Module], so   *)
(* the tables read like source code.  Unknown externals contribute     *)
(* nothing (the analysis is deliberately optimistic about code it      *)
(* cannot see; the repo's own code is all visible).                    *)
(* ------------------------------------------------------------------ *)

(* Partial stdlib functions and the (bare) exception they raise. *)
let ext_raises = function
  | "List.hd" | "List.tl" | "List.nth" | "int_of_string" | "float_of_string"
  | "failwith" ->
      Some "Failure"
  | "List.find" | "List.assoc" | "List.assq" | "Hashtbl.find" | "String.index"
  | "String.rindex" | "Sys.getenv" | "Unix.getenv" ->
      Some "Not_found"
  | "Option.get" | "bool_of_string" | "invalid_arg" | "Char.chr" ->
      Some "Invalid_argument"
  | "Stack.pop" | "Stack.top" | "Queue.pop" | "Queue.take" | "Queue.peek" ->
      Some "Empty"
  | _ -> None

(* Which positional argument an external call mutates.  [Array.set] /
   [Bytes.set] (and the [a.(i) <- v] sugar that compiles to them) are
   deliberately absent: writing a slot you own is the pool's documented
   per-index ownership convention, and flagging it would outlaw every
   legitimate [parallel_for] fill loop. *)
let ext_mut_arg name =
  if String.starts_with ~prefix:"Buffer.add" name then Some 0
  else
    match name with
    | ":=" | "incr" | "decr" | "Hashtbl.add" | "Hashtbl.replace"
    | "Hashtbl.remove" | "Hashtbl.reset" | "Hashtbl.clear" | "Array.fill"
    | "Bytes.fill" | "Queue.clear" | "Buffer.clear" | "Buffer.reset"
    | "Buffer.truncate" ->
        Some 0
    | "Hashtbl.filter_map_inplace" | "Queue.add" | "Queue.push" | "Stack.push"
    | "Array.sort" | "Array.stable_sort" | "Array.fast_sort" ->
        Some 1
    | "Array.blit" | "Bytes.blit" -> Some 2
    | _ -> None

(* Reads of ambient nondeterminism: wall clocks, PRNG singletons,
   environment, domain identity, and hash-table iteration order (the
   bucket layout depends on insertion history, so [iter]/[fold]/
   [to_seq] orders are not a function of the table's contents). *)
let ext_nondet name =
  if String.starts_with ~prefix:"Random." name then Some name
  else if String.starts_with ~prefix:"Hashtbl.to_seq" name then
    Some (name ^ " iteration order")
  else
    match name with
    | "Sys.time" | "Unix.time" | "Unix.gettimeofday" | "Sys.getenv"
    | "Sys.getenv_opt" | "Unix.getenv" | "Domain.self"
    | "Domain.recommended_domain_count" ->
        Some name
    | "Hashtbl.iter" | "Hashtbl.fold" -> Some (name ^ " iteration order")
    | _ -> None

let ext_locks = function
  | "Mutex.lock" | "Mutex.try_lock" | "Mutex.protect" -> true
  | _ -> false

(* Heap allocation performed by a stdlib call, as a short kind tag.
   Tuned for NATIVE code: float returns/arguments of direct calls stay
   in registers, Int64/Int32 intermediates in straight-line code stay
   unboxed, captureless closures and constants are statically
   allocated — so none of those appear here.  Failure paths
   ([failwith], [invalid_arg], [raise]) are deliberately exempt: a
   zero-alloc contract speaks about the non-raising path.  Unknown
   externals contribute nothing (optimistic, like the other tables). *)
let ends_with_opt name =
  String.length name > 4 && String.ends_with ~suffix:"_opt" name

let ext_alloc name =
  let pre p = String.starts_with ~prefix:p name in
  if
    pre "List.map" || pre "List.filter" || pre "List.concat"
    || pre "List.sort" || pre "List.rev" || pre "List.of_seq"
    || pre "List.init" || pre "List.append" || pre "List.split"
    || pre "List.combine" || pre "List.flatten" || pre "List.merge"
  then Some "list"
  else if
    pre "Array.make" || pre "Array.create" || pre "Array.init"
    || pre "Array.append" || pre "Array.concat" || pre "Array.sub"
    || pre "Array.copy" || pre "Array.of_" || pre "Array.to_list"
    || pre "Array.map" || pre "Array.split" || pre "Array.combine"
    || pre "Float.Array.create" || pre "Float.Array.make"
    || pre "Float.Array.init" || pre "Float.Array.append"
    || pre "Float.Array.concat" || pre "Float.Array.sub"
    || pre "Float.Array.copy" || pre "Float.Array.of_"
    || pre "Float.Array.map"
  then Some "array"
  else if
    pre "String.make" || pre "String.init" || pre "String.sub"
    || pre "String.concat" || pre "String.cat" || pre "String.map"
    || pre "String.split" || pre "String.trim" || pre "String.escaped"
    || pre "String.uppercase" || pre "String.lowercase"
    || pre "Bytes.make" || pre "Bytes.create" || pre "Bytes.sub"
    || pre "Bytes.copy" || pre "Bytes.of_" || pre "Bytes.to_"
    || pre "Printf.sprintf" || pre "Format.asprintf"
    || pre "string_of_" || pre "Buffer.contents" || pre "Buffer.sub"
    || pre "Buffer.to_bytes"
  then Some "string building"
  else if
    pre "Hashtbl.create" || pre "Hashtbl.copy" || pre "Hashtbl.of_seq"
    || pre "Hashtbl.add" || pre "Hashtbl.replace" || pre "Queue.create"
    || pre "Queue.copy" || pre "Queue.add" || pre "Queue.push"
    || pre "Stack.create" || pre "Stack.push" || pre "Buffer.create"
    || pre "Buffer.add" || pre "Atomic.make" || pre "Mutex.create"
    || pre "Condition.create" || pre "Semaphore." || pre "Domain.spawn"
    || pre "Dynarray."
  then Some "container"
  else if
    pre "Option.map" || pre "Option.bind" || pre "Option.some"
    || pre "Option.join" || pre "Option.to_list" || pre "Sys.getenv_opt"
    || pre "int_of_string_opt" || pre "float_of_string_opt"
    || pre "bool_of_string_opt"
    || (pre "List." && ends_with_opt name)
    || (pre "Array." && ends_with_opt name)
    || (pre "Hashtbl." && ends_with_opt name)
    || (pre "String." && ends_with_opt name)
    || (pre "Float.Array." && ends_with_opt name)
  then Some "option"
  else if name = "ref" then Some "ref"
  else if name = "^" then Some "string building"
  else if name = "@" then Some "list"
  else if pre "Seq." then Some "container"
  else None

(* Calls whose Nth argument gets boxed when instantiated at [float]
   (the argument is stored into a non-flat heap slot). *)
let ext_boxes_float_arg = function
  | "ref" | "Atomic.make" | "Option.some" -> Some 0
  | ":=" | "Atomic.set" | "Queue.add" | "Queue.push" | "Stack.push" -> Some 1
  | "Hashtbl.add" | "Hashtbl.replace" -> Some 2
  | _ -> None

(* Polymorphic structural comparison / hashing primitives.  Their
   *direct, fully-applied* uses at immediate types are specialized by
   the compiler; what L12 cares about is the primitive passed as a
   first-class value (e.g. to [List.sort]) or applied at a float-heavy
   type, where the runtime walks tags byte by byte. *)
let ext_poly_cmp = function
  | "compare" | "min" | "max" | "=" | "<>" | "<" | ">" | "<=" | ">="
  | "Hashtbl.hash" | "Hashtbl.seeded_hash" ->
      true
  | _ -> false

let ext_io name =
  String.starts_with ~prefix:"print_" name
  || String.starts_with ~prefix:"prerr_" name
  || String.starts_with ~prefix:"output" name
  || String.starts_with ~prefix:"In_channel." name
  || String.starts_with ~prefix:"Out_channel." name
  ||
  match name with
  | "Printf.printf" | "Printf.eprintf" | "Printf.fprintf" | "Format.printf"
  | "Format.eprintf" | "Format.fprintf" | "print_newline" | "read_line"
  | "read_int" | "read_int_opt" ->
      true
  | _ -> false

(* Calls that may park the calling domain, as a short kind tag for L14.
   [Mutex.try_lock] is absent on purpose (it fails instead of waiting),
   and so are the handful of [Unix] entry points that are plain reads
   of process state — the telemetry clock ([Unix.gettimeofday]) must
   stay callable under [state.mutex]. *)
let ext_blocking name =
  match name with
  | "Mutex.lock" | "Mutex.protect" -> Some "mutex acquisition"
  | "Condition.wait" -> Some "condition wait"
  | "Domain.join" -> Some "Domain.join"
  | "Unix.gettimeofday" | "Unix.time" | "Unix.getenv" | "Unix.getpid" -> None
  (* channel open/close/flush block on the filesystem but are not
     [ext_io] (L9 treats them as handles, not reads) *)
  | "open_out" | "open_out_bin" | "open_out_gen" | "open_in" | "open_in_bin"
  | "open_in_gen" | "close_out" | "close_out_noerr" | "close_in"
  | "close_in_noerr" | "flush" | "input_line" ->
      Some "io"
  | _ ->
      if ext_io name then Some "io"
      else if String.starts_with ~prefix:"Unix." name then
        Some "Unix system call"
      else None
