let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.equal (String.sub s (ls - lf) lf) suf

(* ------------------------------------------------------------------ *)
(* Identifier normalization                                            *)
(* ------------------------------------------------------------------ *)

(* The typer records stdlib identifiers either through the [Stdlib]
   module ("Stdlib.compare", "Stdlib.List.hd") or through the mangled
   unit name of a stdlib submodule ("Stdlib__List.hd"); normalize both
   spellings to the way a programmer writes them ("compare",
   "List.hd"). *)
let normalize_ident path =
  let s = Path.name path in
  let strip prefix s =
    if String.starts_with ~prefix s then
      Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
    else None
  in
  match strip "Stdlib__" s with
  | Some rest -> rest
  | None -> ( match strip "Stdlib." s with Some rest -> rest | None -> s)

(* ------------------------------------------------------------------ *)
(* Type inspection                                                     *)
(* ------------------------------------------------------------------ *)

let is_float ty = Path.same ty Predef.path_float

let rec contains_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> is_float p || List.exists contains_float args
  | Types.Ttuple ts -> List.exists contains_float ts
  | Types.Tpoly (t, _) -> contains_float t
  | _ -> false

let first_arrow_arg ty =
  let rec go ty =
    match Types.get_desc ty with
    | Types.Tarrow (_, a, _, _) -> Some a
    | Types.Tpoly (t, _) -> go t
    | _ -> None
  in
  go ty

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

(* ------------------------------------------------------------------ *)
(* L1: polymorphic compare / equality on float-bearing types           *)
(* ------------------------------------------------------------------ *)

let poly_compare_fns =
  [
    ("compare", "Float.compare (or a typed comparator)");
    ("min", "Float.min");
    ("max", "Float.max");
    ("=", "Float.equal (or a typed equality)");
    ("<>", "Float.equal (negated)");
  ]

(* ------------------------------------------------------------------ *)
(* L2: partial stdlib functions                                        *)
(* ------------------------------------------------------------------ *)

let partial_fns =
  [
    ("List.hd", "match on the list");
    ("List.tl", "match on the list");
    ("List.nth", "List.nth_opt or an array");
    ("Option.get", "match, Option.value, or Option.fold");
    ("Hashtbl.find", "Hashtbl.find_opt");
    ("Stack.pop", "Stack.pop_opt");
    ("Queue.pop", "Queue.take_opt");
    ("Queue.take", "Queue.take_opt");
  ]

(* ------------------------------------------------------------------ *)
(* L3: physical constants outside Cisp_util.Units                      *)
(* ------------------------------------------------------------------ *)

let protected_constants =
  [
    (299_792.458, "Units.c_vacuum_km_s");
    (299_792_458.0, "Units.c_vacuum_km_s (the paper uses km/s)");
    (299_792.458 *. 2.0 /. 3.0, "Units.c_fiber_km_s");
    (6371.0, "Units.earth_radius_km");
    (1.5, "Units.fiber_latency_factor / Units.towers_per_100k");
  ]

let protected_constant x =
  List.find_opt
    (fun (c, _) -> Float.abs (x -. c) <= 1e-9 *. Float.max 1.0 (Float.abs c))
    protected_constants

let is_units_source source =
  has_suffix source "util/units.ml" || has_suffix source "util/units.mli"

(* ------------------------------------------------------------------ *)
(* L4: unit vocabulary for float-valued public APIs                    *)
(* ------------------------------------------------------------------ *)

(* A name "carries a unit" when its last underscore segment names a
   unit or a recognized dimensionless quantity. *)
let unit_vocabulary =
  [
    (* lengths / distances *)
    "km"; "m"; "mm"; "cm";
    (* times *)
    "ms"; "s"; "us"; "ns"; "h"; "hours"; "days"; "years";
    (* frequencies / rates *)
    "ghz"; "mhz"; "khz"; "hz"; "gbps"; "mbps"; "kbps"; "bps";
    (* angles *)
    "deg"; "rad";
    (* RF *)
    "db"; "dbm"; "dbi"; "mm_h";
    (* money *)
    "usd"; "gb";
    (* coordinates *)
    "lat"; "lon";
    (* recognized dimensionless quantities *)
    "frac"; "fraction"; "factor"; "ratio"; "stretch"; "inflation";
    "rate"; "prob"; "probability"; "percentile"; "k";
  ]

let carries_unit name =
  let lower = String.lowercase_ascii name in
  (* "mm_h" is two segments; check the whole name and 2-segment tails
     first, then the last segment. *)
  let segs = String.split_on_char '_' lower in
  let last n =
    let len = List.length segs in
    let tail = List.filteri (fun i _ -> i >= len - n) segs in
    String.concat "_" tail
  in
  List.mem (last 2) unit_vocabulary || List.mem (last 1) unit_vocabulary

let strip_option ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [ arg ], _) when Path.same p Predef.path_option -> arg
  | _ -> ty

let arrow_args ty =
  let rec go acc ty =
    match Types.get_desc ty with
    | Types.Tarrow (lbl, a, b, _) -> go ((lbl, a) :: acc) b
    | Types.Tpoly (t, _) -> go acc t
    | _ -> List.rev acc
  in
  go [] ty

(* ------------------------------------------------------------------ *)
(* L5: stdout printing                                                 *)
(* ------------------------------------------------------------------ *)

let stdout_fns =
  [
    "print_endline"; "print_string"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes"; "stdout";
    "Printf.printf"; "Format.printf"; "Format.print_string";
    "Format.print_newline"; "Format.std_formatter"; "Fmt.pr"; "Fmt.stdout";
  ]

(* ------------------------------------------------------------------ *)
(* L6: assert as data validation                                       *)
(* ------------------------------------------------------------------ *)

(* [assert false] is the idiomatic unreachable marker (and keeps its
   exception under -noassert); only asserts over a real condition are
   validation in disguise. *)
let is_assert_false (e : Typedtree.expression) =
  match e.exp_desc with
  | Typedtree.Texp_construct (_, cd, _) -> String.equal cd.Types.cstr_name "false"
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Implementation walker: L1, L2, L3, L5, L6                           *)
(* ------------------------------------------------------------------ *)

let check_impl ~rules ~source structure =
  let diags = ref [] in
  let current = ref "" in
  let emit rule loc message =
    diags := Diag.make ~rule ~symbol:!current ~message loc :: !diags
  in
  let has r = List.mem r rules in
  let check_ident (e : Typedtree.expression) path =
    let name = normalize_ident path in
    (if has Diag.L1 then
       match List.assoc_opt name poly_compare_fns with
       | None -> ()
       | Some replacement -> (
           match first_arrow_arg e.exp_type with
           | Some arg when contains_float arg ->
               emit Diag.L1 e.exp_loc
                 (Printf.sprintf
                    "polymorphic `%s' instantiated at float-bearing type `%s'; use %s"
                    name (type_to_string arg) replacement)
           | _ -> ()));
    (if has Diag.L2 then
       match List.assoc_opt name partial_fns with
       | Some hint ->
           emit Diag.L2 e.exp_loc
             (Printf.sprintf "partial `%s' in library code; use %s" name hint)
       | None -> ());
    if has Diag.L5 && List.mem name stdout_fns then
      emit Diag.L5 e.exp_loc
        (Printf.sprintf "`%s' writes to stdout from library code; return data or take a formatter" name)
  in
  let check_constant (e : Typedtree.expression) lit =
    if has Diag.L3 && not (is_units_source source) then
      match float_of_string_opt lit with
      | None -> ()
      | Some x -> (
          match protected_constant x with
          | Some (_, home) ->
              emit Diag.L3 e.exp_loc
                (Printf.sprintf "literal %s duplicates a physical constant; use %s" lit home)
          | None -> ())
  in
  let default = Tast_iterator.default_iterator in
  let iter =
    {
      default with
      Tast_iterator.expr =
        (fun sub e ->
          (match e.exp_desc with
          | Typedtree.Texp_ident (path, _, _) -> check_ident e path
          | Typedtree.Texp_constant (Asttypes.Const_float lit) -> check_constant e lit
          | Typedtree.Texp_assert (cond, _) when has Diag.L6 && not (is_assert_false cond) ->
              emit Diag.L6 e.exp_loc
                "`assert' vanishes under -noassert; validate inputs with invalid_arg"
          | _ -> ());
          default.Tast_iterator.expr sub e);
      Tast_iterator.structure_item =
        (fun sub item ->
          match item.Typedtree.str_desc with
          | Typedtree.Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  let saved = !current in
                  (match vb.vb_pat.pat_desc with
                  | Typedtree.Tpat_var (id, _) -> current := Ident.name id
                  | _ -> ());
                  default.Tast_iterator.value_binding sub vb;
                  current := saved)
                vbs
          | _ -> default.Tast_iterator.structure_item sub item);
    }
  in
  iter.Tast_iterator.structure iter structure;
  !diags

(* ------------------------------------------------------------------ *)
(* Interface walker: L4                                                *)
(* ------------------------------------------------------------------ *)

let check_value_description (vd : Typedtree.value_description) emit =
  let name = vd.val_name.txt in
  let args = arrow_args vd.val_val.Types.val_type in
  let float_args =
    List.filteri (fun _ _ -> true) args
    |> List.mapi (fun i (lbl, ty) -> (i, lbl, ty))
    |> List.filter (fun (_, lbl, ty) ->
           let ty =
             match lbl with Asttypes.Optional _ -> strip_option ty | _ -> ty
           in
           match Types.get_desc ty with
           | Types.Tconstr (p, [], _) -> is_float p
           | _ -> false)
  in
  let offenders =
    List.filter
      (fun (_, lbl, _) ->
        match lbl with
        | Asttypes.Labelled l | Asttypes.Optional l -> not (carries_unit l)
        | Asttypes.Nolabel -> true)
      float_args
  in
  match offenders with
  | [] -> ()
  | [ _ ] when carries_unit name -> ()
  | _ ->
      List.iter
        (fun (i, lbl, _) ->
          let what =
            match lbl with
            | Asttypes.Labelled l | Asttypes.Optional l ->
                Printf.sprintf "float argument `~%s'" l
            | Asttypes.Nolabel -> Printf.sprintf "unlabelled float argument #%d" (i + 1)
          in
          emit ~symbol:name vd.val_loc
            (Printf.sprintf
               "%s of `%s' carries no unit; add a unit label or suffix (_km, _ms, _ghz, _gbps, _deg, ...)"
               what name))
        offenders

let check_intf ~rules ~source:_ signature =
  if not (List.mem Diag.L4 rules) then []
  else begin
    let diags = ref [] in
    let emit ~symbol loc message =
      diags := Diag.make ~rule:Diag.L4 ~symbol ~message loc :: !diags
    in
    let default = Tast_iterator.default_iterator in
    let iter =
      {
        default with
        Tast_iterator.signature_item =
          (fun sub item ->
            (match item.Typedtree.sig_desc with
            | Typedtree.Tsig_value vd -> check_value_description vd emit
            | _ -> ());
            default.Tast_iterator.signature_item sub item);
      }
    in
    iter.Tast_iterator.signature iter signature;
    !diags
  end
