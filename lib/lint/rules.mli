(** The five cISP lint rules over typed ASTs (see {!Diag.rule}).

    Detection is structural: L1 inspects the instantiated type of each
    reference to a polymorphic comparison primitive (so passing bare
    [compare] to [Array.sort] over floats is caught, not just direct
    application); float-bearing means the type syntactically contains
    [float] through tuples and type-constructor arguments (abstract
    types are not expanded).  L3 matches float literals against the
    protected constants within a 1e-9 relative tolerance. *)

val normalize_ident : Path.t -> string
(** "Stdlib__List.hd" / "Stdlib.List.hd" -> "List.hd". *)

val contains_float : Types.type_expr -> bool

val carries_unit : string -> bool
(** Whether a name's trailing underscore segment names a unit
    ([_km], [_ghz], ...) or recognized dimensionless quantity
    ([_frac], [_stretch], ...). *)

val protected_constant : float -> (float * string) option
(** The physical constant a literal duplicates, if any, and where it
    lives in [Cisp_util.Units]. *)

val is_units_source : string -> bool
(** True for [Cisp_util.Units] itself — the one home allowed to spell
    out physical constants. *)

val check_impl :
  rules:Diag.rule list -> source:string -> Typedtree.structure -> Diag.t list
(** Run the expression-level rules (L1, L2, L3, L5) requested in
    [rules] over an implementation. *)

val check_intf :
  rules:Diag.rule list -> source:string -> Typedtree.signature -> Diag.t list
(** Run L4 (if requested) over an interface. *)
