(* Phase 2: the three summary-consuming rules.

   - L7 domain-safety: every closure handed to a [Cisp_util.Pool]
     combinator must not transitively mutate shared state — neither
     module-level state nor a local captured from an enclosing scope
     (the lattice already discounts [Atomic] operations, per-slot
     [Array.set] writes and mutex-protected sections, see {!Effects}
     and {!Summary}).
   - L8 exception-escape: a function exported by a [.mli] must not
     (transitively) raise anything but the repo's documented
     [Invalid_argument] validation convention.  Blame lands at the
     origin: a public function is flagged only when the offending
     raise lives in its own compilation unit, so one deep raise does
     not indict the whole call chain above it.
   - L9 nondeterminism-taint: no ambient-nondeterminism read
     (wall clocks, [Random], environment, hash-table iteration order)
     may be reachable from the design pipeline outside the seeded
     [Cisp_util.Rng].
   - L10 zero-alloc contracts: a function carrying [@cisp.zero_alloc]
     (or registered in [lint.hotpaths]) must not reach any heap
     allocation in its transitive call graph; the diagnostic lands at
     the allocation's origin site, like L8's blame-at-origin.
   - L11 pool-body allocation: a closure handed to a [Cisp_util.Pool]
     combinator must not allocate a closure, box a float or build a
     partial application per call.
   - L12 polymorphic-comparison taint: no polymorphic compare/hash at
     a monomorphizable type reachable from the design pipeline; same
     BFS as L9. *)

module SM = Effects.SM
module SS = Effects.SS

type config = {
  l7 : bool;
  l8 : bool;
  l9 : bool;
  l10 : bool;
  l11 : bool;
  l12 : bool;
  l8_unit_ok : string -> bool;
      (* is this source file held to the public-raise convention? *)
  l9_root : Callgraph.node -> bool;
      (* pipeline entry points; L12 reachability uses the same roots *)
  l9_site_ok : string -> bool;  (* source files where L9 reads are flagged *)
  l9_exempt : string -> bool;  (* canonical node names allowed to read *)
  l10_hotpaths : string list;
      (* canonical names held to the zero-alloc contract without an
         attribute (the [lint.hotpaths] registry) *)
  l12_site_ok : string -> bool;  (* source files where L12 sites are flagged *)
}

let default_l9_exempt name =
  (* the repo's seeded, splittable PRNG is the one sanctioned
     randomness source *)
  String.starts_with ~prefix:"Cisp_util.Rng." name

let generic =
  {
    l7 = true;
    l8 = true;
    l9 = true;
    l10 = true;
    l11 = true;
    l12 = true;
    l8_unit_ok = (fun _ -> true);
    l9_root = (fun _ -> true);
    l9_site_ok = (fun _ -> true);
    l9_exempt = default_l9_exempt;
    l10_hotpaths = [];
    l12_site_ok = (fun _ -> true);
  }

(* ------------------------------------------------------------------ *)

let check_l7 (g : Callgraph.t) (sums : Effects.t array) =
  List.concat_map
    (fun (ps : Callgraph.pool_site) ->
      let caller = g.Callgraph.nodes.(ps.Callgraph.ps_caller) in
      let combinator =
        (* "Cisp_util.Pool.parallel_for" -> "Pool.parallel_for" *)
        match String.index_opt ps.Callgraph.ps_combinator '.' with
        | Some i ->
            String.sub ps.Callgraph.ps_combinator (i + 1)
              (String.length ps.Callgraph.ps_combinator - i - 1)
        | None -> ps.Callgraph.ps_combinator
      in
      List.concat_map
        (fun tid ->
          let s = sums.(tid) in
          let mk what site =
            Diag.make ~rule:Diag.L7 ~symbol:caller.Callgraph.symbol
              ~message:
                (Printf.sprintf
                   "closure passed to %s mutates shared %s (write at %s)"
                   combinator what
                   (Effects.site_to_string site))
              (Effects.loc_of_site ps.Callgraph.ps_site)
          in
          SM.fold
            (fun name site acc -> mk ("`" ^ name ^ "'") site :: acc)
            s.Effects.mut_global []
          @ SM.fold
              (fun _ (name, site) acc ->
                mk (Printf.sprintf "captured local `%s'" name) site :: acc)
              s.Effects.mut_free [])
        ps.Callgraph.ps_targets)
    g.Callgraph.pool_sites

let check_l8 cfg (g : Callgraph.t) (sums : Effects.t array) =
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         let is_public =
           (match node.Callgraph.kind with
           | Callgraph.Top -> true
           | _ -> false)
           && SS.mem node.Callgraph.name g.Callgraph.public
           (* under shadowing (e.g. an outer [solve] wrapping an inner
              one in a try) only the last binding of the name is the
              exported one; [by_name] keeps exactly that binding *)
           && SM.find_opt node.Callgraph.name g.Callgraph.by_name
              = Some node.Callgraph.id
           && cfg.l8_unit_ok node.Callgraph.unit_source
         in
         if not is_public then []
         else
           SM.fold
             (fun exn site acc ->
               if
                 String.equal exn "Invalid_argument"
                 (* blame at the origin: only flag raises born in this
                    function's own unit *)
                 || not (String.equal site.Effects.file node.Callgraph.unit_source)
               then acc
               else
                 Diag.make ~rule:Diag.L8 ~symbol:node.Callgraph.symbol
                   ~message:
                     (Printf.sprintf
                        "public `%s' can raise %s, outside the \
                         Invalid_argument convention"
                        node.Callgraph.name exn)
                   (Effects.loc_of_site site)
                 :: acc)
             sums.(node.Callgraph.id).Effects.raises [])

(* Multi-source BFS from the pipeline entry points, roots seeded in
   name order so the "reachable from" witness is deterministic.
   Shared by L9 and L12; [via.(i)] is the root that first reached
   node [i]. *)
let pipeline_reachability cfg (g : Callgraph.t) =
  let n = Array.length g.Callgraph.nodes in
  let via = Array.make n None in
  let q = Queue.create () in
  Array.to_list g.Callgraph.nodes
  |> List.filter cfg.l9_root
  |> List.sort (fun (a : Callgraph.node) b ->
         String.compare a.Callgraph.name b.Callgraph.name)
  |> List.iter (fun (r : Callgraph.node) ->
         if via.(r.Callgraph.id) = None then begin
           via.(r.Callgraph.id) <- Some r.Callgraph.name;
           Queue.add r.Callgraph.id q
         end);
  let rec drain () =
    match Queue.take_opt q with
    | None -> ()
    | Some i ->
        List.iter
          (fun (e : Callgraph.edge) ->
            match e.Callgraph.callee with
            | Callgraph.External _ -> ()
            | Callgraph.Internal j ->
                if via.(j) = None then begin
                  via.(j) <- via.(i);
                  Queue.add j q
                end)
          g.Callgraph.nodes.(i).Callgraph.edges;
        drain ()
  in
  drain ();
  via

let check_l9 cfg (g : Callgraph.t) =
  let via = pipeline_reachability cfg g in
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         match via.(node.Callgraph.id) with
         | None -> []
         | Some root ->
             if cfg.l9_exempt node.Callgraph.name then []
             else
               Effects.RS.elements node.Callgraph.direct.Effects.nondet
               |> List.filter_map (fun (what, site) ->
                      if not (cfg.l9_site_ok site.Effects.file) then None
                      else
                        Some
                          (Diag.make ~rule:Diag.L9 ~symbol:node.Callgraph.symbol
                             ~message:
                               (Printf.sprintf
                                  "reads ambient nondeterminism (%s); \
                                   reachable from pipeline entry `%s'"
                                  what root)
                             (Effects.loc_of_site site))))

(* The kinds of per-call garbage that serialize a parallel worker on
   the minor allocator: environment blocks, float boxes, and the
   closures [Texp_apply] builds for unsaturated calls.  Plain data
   allocation in a worker (filling an output list, say) is L7/L10
   territory, not L11's. *)
let l11_kinds = [ "closure"; "boxed float"; "partial application" ]

let check_l10 cfg (g : Callgraph.t) (sums : Effects.t array) =
  let registry = SS.of_list cfg.l10_hotpaths in
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         let contracted =
           node.Callgraph.zero_alloc
           || SS.mem node.Callgraph.name registry
              (* under shadowing only the last binding of the name is
                 the one callers see; [by_name] keeps exactly that *)
              && SM.find_opt node.Callgraph.name g.Callgraph.by_name
                 = Some node.Callgraph.id
         in
         if not contracted then []
         else
           SM.fold
             (fun kind site acc ->
               (* blame at the origin: the diagnostic lands on the
                  allocation site, wherever the call chain put it *)
               Diag.make ~rule:Diag.L10 ~symbol:node.Callgraph.symbol
                 ~message:
                   (Printf.sprintf
                      "zero-alloc contract on `%s' violated: %s allocation"
                      node.Callgraph.name kind)
                 (Effects.loc_of_site site)
               :: acc)
             sums.(node.Callgraph.id).Effects.allocs [])

let check_l11 (g : Callgraph.t) (sums : Effects.t array) =
  List.concat_map
    (fun (ps : Callgraph.pool_site) ->
      let caller = g.Callgraph.nodes.(ps.Callgraph.ps_caller) in
      let combinator =
        match String.index_opt ps.Callgraph.ps_combinator '.' with
        | Some i ->
            String.sub ps.Callgraph.ps_combinator (i + 1)
              (String.length ps.Callgraph.ps_combinator - i - 1)
        | None -> ps.Callgraph.ps_combinator
      in
      List.concat_map
        (fun tid ->
          SM.fold
            (fun kind site acc ->
              if not (List.mem kind l11_kinds) then acc
              else
                Diag.make ~rule:Diag.L11 ~symbol:caller.Callgraph.symbol
                  ~message:
                    (Printf.sprintf
                       "closure passed to %s allocates per call: %s at %s"
                       combinator kind
                       (Effects.site_to_string site))
                  (Effects.loc_of_site ps.Callgraph.ps_site)
                :: acc)
            sums.(tid).Effects.allocs [])
        ps.Callgraph.ps_targets)
    g.Callgraph.pool_sites

let check_l12 cfg (g : Callgraph.t) =
  let via = pipeline_reachability cfg g in
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         match via.(node.Callgraph.id) with
         | None -> []
         | Some root ->
             Effects.RS.elements node.Callgraph.direct.Effects.poly_cmp
             |> List.filter_map (fun (what, site) ->
                    if not (cfg.l12_site_ok site.Effects.file) then None
                    else
                      Some
                        (Diag.make ~rule:Diag.L12
                           ~symbol:node.Callgraph.symbol
                           ~message:
                             (Printf.sprintf
                                "%s; reachable from pipeline entry `%s' — \
                                 use a monomorphic comparison"
                                what root)
                           (Effects.loc_of_site site))))

let check cfg (g : Callgraph.t) (r : Summary.result) =
  let sums = r.Summary.summaries in
  (if cfg.l7 then check_l7 g sums else [])
  @ (if cfg.l8 then check_l8 cfg g sums else [])
  @ (if cfg.l9 then check_l9 cfg g else [])
  @ (if cfg.l10 then check_l10 cfg g sums else [])
  @ (if cfg.l11 then check_l11 g sums else [])
  @ if cfg.l12 then check_l12 cfg g else []
