(* Phase 2: the three summary-consuming rules.

   - L7 domain-safety: every closure handed to a [Cisp_util.Pool]
     combinator must not transitively mutate shared state — neither
     module-level state nor a local captured from an enclosing scope
     (the lattice already discounts [Atomic] operations, per-slot
     [Array.set] writes and mutex-protected sections, see {!Effects}
     and {!Summary}).
   - L8 exception-escape: a function exported by a [.mli] must not
     (transitively) raise anything but the repo's documented
     [Invalid_argument] validation convention.  Blame lands at the
     origin: a public function is flagged only when the offending
     raise lives in its own compilation unit, so one deep raise does
     not indict the whole call chain above it.
   - L9 nondeterminism-taint: no ambient-nondeterminism read
     (wall clocks, [Random], environment, hash-table iteration order)
     may be reachable from the design pipeline outside the seeded
     [Cisp_util.Rng]. *)

module SM = Effects.SM
module SS = Effects.SS

type config = {
  l7 : bool;
  l8 : bool;
  l9 : bool;
  l8_unit_ok : string -> bool;
      (* is this source file held to the public-raise convention? *)
  l9_root : Callgraph.node -> bool;  (* pipeline entry points *)
  l9_site_ok : string -> bool;  (* source files where L9 reads are flagged *)
  l9_exempt : string -> bool;  (* canonical node names allowed to read *)
}

let default_l9_exempt name =
  (* the repo's seeded, splittable PRNG is the one sanctioned
     randomness source *)
  String.starts_with ~prefix:"Cisp_util.Rng." name

let generic =
  {
    l7 = true;
    l8 = true;
    l9 = true;
    l8_unit_ok = (fun _ -> true);
    l9_root = (fun _ -> true);
    l9_site_ok = (fun _ -> true);
    l9_exempt = default_l9_exempt;
  }

(* ------------------------------------------------------------------ *)

let check_l7 (g : Callgraph.t) (sums : Effects.t array) =
  List.concat_map
    (fun (ps : Callgraph.pool_site) ->
      let caller = g.Callgraph.nodes.(ps.Callgraph.ps_caller) in
      let combinator =
        (* "Cisp_util.Pool.parallel_for" -> "Pool.parallel_for" *)
        match String.index_opt ps.Callgraph.ps_combinator '.' with
        | Some i ->
            String.sub ps.Callgraph.ps_combinator (i + 1)
              (String.length ps.Callgraph.ps_combinator - i - 1)
        | None -> ps.Callgraph.ps_combinator
      in
      List.concat_map
        (fun tid ->
          let s = sums.(tid) in
          let mk what site =
            Diag.make ~rule:Diag.L7 ~symbol:caller.Callgraph.symbol
              ~message:
                (Printf.sprintf
                   "closure passed to %s mutates shared %s (write at %s)"
                   combinator what
                   (Effects.site_to_string site))
              (Effects.loc_of_site ps.Callgraph.ps_site)
          in
          SM.fold
            (fun name site acc -> mk ("`" ^ name ^ "'") site :: acc)
            s.Effects.mut_global []
          @ SM.fold
              (fun _ (name, site) acc ->
                mk (Printf.sprintf "captured local `%s'" name) site :: acc)
              s.Effects.mut_free [])
        ps.Callgraph.ps_targets)
    g.Callgraph.pool_sites

let check_l8 cfg (g : Callgraph.t) (sums : Effects.t array) =
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         let is_public =
           (match node.Callgraph.kind with
           | Callgraph.Top -> true
           | _ -> false)
           && SS.mem node.Callgraph.name g.Callgraph.public
           (* under shadowing (e.g. an outer [solve] wrapping an inner
              one in a try) only the last binding of the name is the
              exported one; [by_name] keeps exactly that binding *)
           && SM.find_opt node.Callgraph.name g.Callgraph.by_name
              = Some node.Callgraph.id
           && cfg.l8_unit_ok node.Callgraph.unit_source
         in
         if not is_public then []
         else
           SM.fold
             (fun exn site acc ->
               if
                 String.equal exn "Invalid_argument"
                 (* blame at the origin: only flag raises born in this
                    function's own unit *)
                 || not (String.equal site.Effects.file node.Callgraph.unit_source)
               then acc
               else
                 Diag.make ~rule:Diag.L8 ~symbol:node.Callgraph.symbol
                   ~message:
                     (Printf.sprintf
                        "public `%s' can raise %s, outside the \
                         Invalid_argument convention"
                        node.Callgraph.name exn)
                   (Effects.loc_of_site site)
                 :: acc)
             sums.(node.Callgraph.id).Effects.raises [])

let check_l9 cfg (g : Callgraph.t) =
  let n = Array.length g.Callgraph.nodes in
  let via = Array.make n None in
  let q = Queue.create () in
  (* multi-source BFS, roots seeded in name order so the "reachable
     from" witness is deterministic *)
  Array.to_list g.Callgraph.nodes
  |> List.filter cfg.l9_root
  |> List.sort (fun (a : Callgraph.node) b ->
         String.compare a.Callgraph.name b.Callgraph.name)
  |> List.iter (fun (r : Callgraph.node) ->
         if via.(r.Callgraph.id) = None then begin
           via.(r.Callgraph.id) <- Some r.Callgraph.name;
           Queue.add r.Callgraph.id q
         end);
  let rec drain () =
    match Queue.take_opt q with
    | None -> ()
    | Some i ->
        List.iter
          (fun (e : Callgraph.edge) ->
            match e.Callgraph.callee with
            | Callgraph.External _ -> ()
            | Callgraph.Internal j ->
                if via.(j) = None then begin
                  via.(j) <- via.(i);
                  Queue.add j q
                end)
          g.Callgraph.nodes.(i).Callgraph.edges;
        drain ()
  in
  drain ();
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         match via.(node.Callgraph.id) with
         | None -> []
         | Some root ->
             if cfg.l9_exempt node.Callgraph.name then []
             else
               Effects.RS.elements node.Callgraph.direct.Effects.nondet
               |> List.filter_map (fun (what, site) ->
                      if not (cfg.l9_site_ok site.Effects.file) then None
                      else
                        Some
                          (Diag.make ~rule:Diag.L9 ~symbol:node.Callgraph.symbol
                             ~message:
                               (Printf.sprintf
                                  "reads ambient nondeterminism (%s); \
                                   reachable from pipeline entry `%s'"
                                  what root)
                             (Effects.loc_of_site site))))

let check cfg (g : Callgraph.t) (r : Summary.result) =
  let sums = r.Summary.summaries in
  (if cfg.l7 then check_l7 g sums else [])
  @ (if cfg.l8 then check_l8 cfg g sums else [])
  @ if cfg.l9 then check_l9 cfg g else []
