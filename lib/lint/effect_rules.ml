(* Phase 2: the three summary-consuming rules.

   - L7 domain-safety: every closure handed to a [Cisp_util.Pool]
     combinator must not transitively mutate shared state — neither
     module-level state nor a local captured from an enclosing scope
     (the lattice already discounts [Atomic] operations, per-slot
     [Array.set] writes and mutex-protected sections, see {!Effects}
     and {!Summary}).
   - L8 exception-escape: a function exported by a [.mli] must not
     (transitively) raise anything but the repo's documented
     [Invalid_argument] validation convention.  Blame lands at the
     origin: a public function is flagged only when the offending
     raise lives in its own compilation unit, so one deep raise does
     not indict the whole call chain above it.
   - L9 nondeterminism-taint: no ambient-nondeterminism read
     (wall clocks, [Random], environment, hash-table iteration order)
     may be reachable from the design pipeline outside the seeded
     [Cisp_util.Rng].
   - L10 zero-alloc contracts: a function carrying [@cisp.zero_alloc]
     (or registered in [lint.hotpaths]) must not reach any heap
     allocation in its transitive call graph; the diagnostic lands at
     the allocation's origin site, like L8's blame-at-origin.
   - L11 pool-body allocation: a closure handed to a [Cisp_util.Pool]
     combinator must not allocate a closure, box a float or build a
     partial application per call.
   - L12 polymorphic-comparison taint: no polymorphic compare/hash at
     a monomorphizable type reachable from the design pipeline; same
     BFS as L9.
   - L13 lock-order consistency: the global acquisition graph (lock
     held -> lock taken, direct or through any call chain) must be
     acyclic and agree with the canonical order of [l13_order].
   - L14 blocking-under-lock: no call that may park the domain (mutex
     acquisition, [Domain.join], [Condition.wait], IO, [Unix]) while
     a lock is held or inside a [Pool] combinator body; submitting a
     pool job while holding a lock is its own variant.
   - L15 float-merge determinism: no float accumulation over an
     unordered source reachable from the design pipeline; same BFS as
     L9/L12. *)

module SM = Effects.SM
module SS = Effects.SS

type config = {
  l7 : bool;
  l8 : bool;
  l9 : bool;
  l10 : bool;
  l11 : bool;
  l12 : bool;
  l13 : bool;
  l14 : bool;
  l15 : bool;
  l8_unit_ok : string -> bool;
      (* is this source file held to the public-raise convention? *)
  l9_root : Callgraph.node -> bool;
      (* pipeline entry points; L12/L15 reachability uses the same roots *)
  l9_site_ok : string -> bool;  (* source files where L9 reads are flagged *)
  l9_exempt : string -> bool;  (* canonical node names allowed to read *)
  l10_hotpaths : string list;
      (* canonical names held to the zero-alloc contract without an
         attribute (the [lint.hotpaths] registry) *)
  l12_site_ok : string -> bool;  (* source files where L12 sites are flagged *)
  l13_order : string list;
      (* canonical lock order, outermost first; acquisitions jumping
         backwards in this list are flagged even without a cycle *)
  l15_site_ok : string -> bool;  (* source files where L15 sites are flagged *)
  l15_exempt : string -> bool;
      (* canonical node names allowed to fold unordered containers *)
}

let default_l9_exempt name =
  (* the repo's seeded, splittable PRNG is the one sanctioned
     randomness source *)
  String.starts_with ~prefix:"Cisp_util.Rng." name

let default_l15_exempt name =
  (* [Cisp_util.Tbl] is the sorted-view shim: it folds the raw table
     precisely so nobody else has to *)
  String.starts_with ~prefix:"Cisp_util.Tbl." name

let generic =
  {
    l7 = true;
    l8 = true;
    l9 = true;
    l10 = true;
    l11 = true;
    l12 = true;
    l13 = true;
    l14 = true;
    l15 = true;
    l8_unit_ok = (fun _ -> true);
    l9_root = (fun _ -> true);
    l9_site_ok = (fun _ -> true);
    l9_exempt = default_l9_exempt;
    l10_hotpaths = [];
    l12_site_ok = (fun _ -> true);
    l13_order = [];
    l15_site_ok = (fun _ -> true);
    l15_exempt = default_l15_exempt;
  }

(* ------------------------------------------------------------------ *)

let check_l7 (g : Callgraph.t) (sums : Effects.t array) =
  List.concat_map
    (fun (ps : Callgraph.pool_site) ->
      let caller = g.Callgraph.nodes.(ps.Callgraph.ps_caller) in
      let combinator =
        (* "Cisp_util.Pool.parallel_for" -> "Pool.parallel_for" *)
        match String.index_opt ps.Callgraph.ps_combinator '.' with
        | Some i ->
            String.sub ps.Callgraph.ps_combinator (i + 1)
              (String.length ps.Callgraph.ps_combinator - i - 1)
        | None -> ps.Callgraph.ps_combinator
      in
      List.concat_map
        (fun tid ->
          let s = sums.(tid) in
          let mk what site =
            Diag.make ~rule:Diag.L7 ~symbol:caller.Callgraph.symbol
              ~message:
                (Printf.sprintf
                   "closure passed to %s mutates shared %s (write at %s)"
                   combinator what
                   (Effects.site_to_string site))
              (Effects.loc_of_site ps.Callgraph.ps_site)
          in
          SM.fold
            (fun name site acc -> mk ("`" ^ name ^ "'") site :: acc)
            s.Effects.mut_global []
          @ SM.fold
              (fun _ (name, site) acc ->
                mk (Printf.sprintf "captured local `%s'" name) site :: acc)
              s.Effects.mut_free [])
        ps.Callgraph.ps_targets)
    g.Callgraph.pool_sites

let check_l8 cfg (g : Callgraph.t) (sums : Effects.t array) =
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         let is_public =
           (match node.Callgraph.kind with
           | Callgraph.Top -> true
           | _ -> false)
           && SS.mem node.Callgraph.name g.Callgraph.public
           (* under shadowing (e.g. an outer [solve] wrapping an inner
              one in a try) only the last binding of the name is the
              exported one; [by_name] keeps exactly that binding *)
           && SM.find_opt node.Callgraph.name g.Callgraph.by_name
              = Some node.Callgraph.id
           && cfg.l8_unit_ok node.Callgraph.unit_source
         in
         if not is_public then []
         else
           SM.fold
             (fun exn site acc ->
               if
                 String.equal exn "Invalid_argument"
                 (* blame at the origin: only flag raises born in this
                    function's own unit *)
                 || not (String.equal site.Effects.file node.Callgraph.unit_source)
               then acc
               else
                 Diag.make ~rule:Diag.L8 ~symbol:node.Callgraph.symbol
                   ~message:
                     (Printf.sprintf
                        "public `%s' can raise %s, outside the \
                         Invalid_argument convention"
                        node.Callgraph.name exn)
                   (Effects.loc_of_site site)
                 :: acc)
             sums.(node.Callgraph.id).Effects.raises [])

(* Multi-source BFS from the pipeline entry points, roots seeded in
   name order so the "reachable from" witness is deterministic.
   Shared by L9 and L12; [via.(i)] is the root that first reached
   node [i]. *)
let pipeline_reachability cfg (g : Callgraph.t) =
  let n = Array.length g.Callgraph.nodes in
  let via = Array.make n None in
  let q = Queue.create () in
  Array.to_list g.Callgraph.nodes
  |> List.filter cfg.l9_root
  |> List.sort (fun (a : Callgraph.node) b ->
         String.compare a.Callgraph.name b.Callgraph.name)
  |> List.iter (fun (r : Callgraph.node) ->
         if via.(r.Callgraph.id) = None then begin
           via.(r.Callgraph.id) <- Some r.Callgraph.name;
           Queue.add r.Callgraph.id q
         end);
  let rec drain () =
    match Queue.take_opt q with
    | None -> ()
    | Some i ->
        List.iter
          (fun (e : Callgraph.edge) ->
            match e.Callgraph.callee with
            | Callgraph.External _ -> ()
            | Callgraph.Internal j ->
                if via.(j) = None then begin
                  via.(j) <- via.(i);
                  Queue.add j q
                end)
          g.Callgraph.nodes.(i).Callgraph.edges;
        drain ()
  in
  drain ();
  via

let check_l9 cfg (g : Callgraph.t) =
  let via = pipeline_reachability cfg g in
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         match via.(node.Callgraph.id) with
         | None -> []
         | Some root ->
             if cfg.l9_exempt node.Callgraph.name then []
             else
               Effects.RS.elements node.Callgraph.direct.Effects.nondet
               |> List.filter_map (fun (what, site) ->
                      if not (cfg.l9_site_ok site.Effects.file) then None
                      else
                        Some
                          (Diag.make ~rule:Diag.L9 ~symbol:node.Callgraph.symbol
                             ~message:
                               (Printf.sprintf
                                  "reads ambient nondeterminism (%s); \
                                   reachable from pipeline entry `%s'"
                                  what root)
                             (Effects.loc_of_site site))))

(* The kinds of per-call garbage that serialize a parallel worker on
   the minor allocator: environment blocks, float boxes, and the
   closures [Texp_apply] builds for unsaturated calls.  Plain data
   allocation in a worker (filling an output list, say) is L7/L10
   territory, not L11's. *)
let l11_kinds = [ "closure"; "boxed float"; "partial application" ]

let check_l10 cfg (g : Callgraph.t) (sums : Effects.t array) =
  let registry = SS.of_list cfg.l10_hotpaths in
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         let contracted =
           node.Callgraph.zero_alloc
           || SS.mem node.Callgraph.name registry
              (* under shadowing only the last binding of the name is
                 the one callers see; [by_name] keeps exactly that *)
              && SM.find_opt node.Callgraph.name g.Callgraph.by_name
                 = Some node.Callgraph.id
         in
         if not contracted then []
         else
           SM.fold
             (fun kind site acc ->
               (* blame at the origin: the diagnostic lands on the
                  allocation site, wherever the call chain put it *)
               Diag.make ~rule:Diag.L10 ~symbol:node.Callgraph.symbol
                 ~message:
                   (Printf.sprintf
                      "zero-alloc contract on `%s' violated: %s allocation"
                      node.Callgraph.name kind)
                 (Effects.loc_of_site site)
               :: acc)
             sums.(node.Callgraph.id).Effects.allocs [])

let check_l11 (g : Callgraph.t) (sums : Effects.t array) =
  List.concat_map
    (fun (ps : Callgraph.pool_site) ->
      let caller = g.Callgraph.nodes.(ps.Callgraph.ps_caller) in
      let combinator =
        match String.index_opt ps.Callgraph.ps_combinator '.' with
        | Some i ->
            String.sub ps.Callgraph.ps_combinator (i + 1)
              (String.length ps.Callgraph.ps_combinator - i - 1)
        | None -> ps.Callgraph.ps_combinator
      in
      List.concat_map
        (fun tid ->
          SM.fold
            (fun kind site acc ->
              if not (List.mem kind l11_kinds) then acc
              else
                Diag.make ~rule:Diag.L11 ~symbol:caller.Callgraph.symbol
                  ~message:
                    (Printf.sprintf
                       "closure passed to %s allocates per call: %s at %s"
                       combinator kind
                       (Effects.site_to_string site))
                  (Effects.loc_of_site ps.Callgraph.ps_site)
                :: acc)
            sums.(tid).Effects.allocs [])
        ps.Callgraph.ps_targets)
    g.Callgraph.pool_sites

let check_l12 cfg (g : Callgraph.t) =
  let via = pipeline_reachability cfg g in
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         match via.(node.Callgraph.id) with
         | None -> []
         | Some root ->
             Effects.RS.elements node.Callgraph.direct.Effects.poly_cmp
             |> List.filter_map (fun (what, site) ->
                    if not (cfg.l12_site_ok site.Effects.file) then None
                    else
                      Some
                        (Diag.make ~rule:Diag.L12
                           ~symbol:node.Callgraph.symbol
                           ~message:
                             (Printf.sprintf
                                "%s; reachable from pipeline entry `%s' — \
                                 use a monomorphic comparison"
                                what root)
                           (Effects.loc_of_site site))))

(* ------------------------------------------------------------------ *)
(* L13/L14: the lock world                                             *)
(* ------------------------------------------------------------------ *)

(* Locks a node's body runs under before it takes any itself: the
   syntactic snapshot taken at lambda creation, plus — for a lambda
   guarded by an internal lock-taking wrapper ([Telemetry.locked],
   whose [Mutex.protect] lives in its own body) — whatever the guard
   acquires directly.  Boundary guards (pool combinators,
   [Domain.spawn]) contribute nothing: their internal mutex is part of
   the submission protocol, not the body's environment. *)
let entry_held_full (g : Callgraph.t) (n : Callgraph.node) =
  let resolve = function
    | Callgraph.Internal id -> Some id
    | Callgraph.External name -> SM.find_opt name g.Callgraph.by_name
  in
  match n.Callgraph.kind with
  | Callgraph.Lambda { guard = Some gd } -> (
      match resolve gd with
      | Some gid
        when not (Callgraph.boundary_guard_name g.Callgraph.nodes.(gid).Callgraph.name)
        ->
          SM.fold
            (fun l _ acc -> SS.add l acc)
            g.Callgraph.nodes.(gid).Callgraph.direct.Effects.acquires
            n.Callgraph.entry_held
      | _ -> n.Callgraph.entry_held)
  | _ -> n.Callgraph.entry_held

(* The chain from [start] down its first (by call site) edge whose
   callee summary still carries the evidence, ending at the node that
   carries it DIRECTLY; each step "canonical name (file:line)".  This
   is what makes a CI finding actionable without re-running: the path
   from the flagged function to the deep lock/blocking site. *)
let witness_chain (g : Callgraph.t) ~direct_of ~sum_of start =
  let fmt (n : Callgraph.node) site =
    Printf.sprintf "%s (%s)" n.Callgraph.name (Effects.site_to_string site)
  in
  let rec go id depth acc =
    let n = g.Callgraph.nodes.(id) in
    match direct_of n with
    | Some site -> List.rev (fmt n site :: acc)
    | None when depth >= 32 -> List.rev acc
    | None -> (
        let next =
          List.filter_map
            (fun (e : Callgraph.edge) ->
              match e.Callgraph.callee with
              | Callgraph.Internal j
                when (not e.Callgraph.boundary) && sum_of j <> None ->
                  Some (e.Callgraph.call_site, j)
              | _ -> None)
            n.Callgraph.edges
          |> List.sort (fun (a, _) (b, _) -> Effects.compare_site a b)
        in
        match next with
        | (site, j) :: _ -> go j (depth + 1) (fmt n site :: acc)
        | [] -> List.rev acc)
  in
  go start 0 []

type lock_edge = {
  le_from : string;
  le_to : string;
  le_site : Effects.site;
  le_symbol : string;
  le_witness : string list;
}

(* The derived acquisition graph: an edge A -> B for every place the
   analysis sees lock B taken (directly, or anywhere down a
   non-boundary call chain) while lock A is held.  Deduplicated by
   (from, to) keeping the smallest witness site, so the result is
   byte-stable. *)
let lock_graph (g : Callgraph.t) (sums : Effects.t array) =
  let edges = ref [] in
  let push e = edges := e :: !edges in
  Array.iter
    (fun (n : Callgraph.node) ->
      let eh = entry_held_full g n in
      List.iter
        (fun (held, l, site) ->
          SS.iter
            (fun h ->
              push
                {
                  le_from = h;
                  le_to = l;
                  le_site = site;
                  le_symbol = n.Callgraph.symbol;
                  le_witness = [];
                })
            (SS.union held eh))
        n.Callgraph.lock_acqs;
      List.iter
        (fun (e : Callgraph.edge) ->
          match e.Callgraph.callee with
          | Callgraph.Internal j when not e.Callgraph.boundary ->
              let held = SS.union e.Callgraph.e_held eh in
              if not (SS.is_empty held) then
                SM.iter
                  (fun l _ ->
                    let wit =
                      witness_chain g
                        ~direct_of:(fun (m : Callgraph.node) ->
                          SM.find_opt l m.Callgraph.direct.Effects.acquires)
                        ~sum_of:(fun k ->
                          SM.find_opt l sums.(k).Effects.acquires)
                        j
                    in
                    SS.iter
                      (fun h ->
                        push
                          {
                            le_from = h;
                            le_to = l;
                            le_site = e.Callgraph.call_site;
                            le_symbol = n.Callgraph.symbol;
                            le_witness = wit;
                          })
                      held)
                  sums.(j).Effects.acquires
          | _ -> ())
        n.Callgraph.edges)
    g.Callgraph.nodes;
  List.sort
    (fun a b ->
      let c = String.compare a.le_from b.le_from in
      if c <> 0 then c
      else
        let c = String.compare a.le_to b.le_to in
        if c <> 0 then c else Effects.compare_site a.le_site b.le_site)
    !edges
  |> List.fold_left
       (fun acc e ->
         match acc with
         | prev :: _
           when String.equal prev.le_from e.le_from
                && String.equal prev.le_to e.le_to ->
             acc
         | _ -> e :: acc)
       []
  |> List.rev

(* Every lock class the walk saw acquired anywhere, held or not — the
   graph's vertex set (isolated vertices matter in the DOT output:
   they prove a lock never nests). *)
let lock_classes (g : Callgraph.t) =
  Array.fold_left
    (fun acc (n : Callgraph.node) ->
      List.fold_left
        (fun acc (_, l, _) -> SS.add l acc)
        acc n.Callgraph.lock_acqs)
    SS.empty g.Callgraph.nodes
  |> SS.elements

let lock_graph_dot (g : Callgraph.t) (sums : Effects.t array) =
  let edges = lock_graph g sums in
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph lock_order {\n";
  Buffer.add_string b "  rankdir=LR;\n";
  Buffer.add_string b "  node [shape=box fontname=\"monospace\"];\n";
  List.iter
    (fun l -> Buffer.add_string b (Printf.sprintf "  %S;\n" l))
    (lock_classes g);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %S -> %S [label=%S];\n" e.le_from e.le_to
           (Effects.site_to_string e.le_site)))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let check_l13 cfg (g : Callgraph.t) (sums : Effects.t array) =
  let edges = lock_graph g sums in
  let succs = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.add succs e.le_from e.le_to) edges;
  let reaches src dst =
    let seen = Hashtbl.create 8 in
    let rec go x =
      String.equal x dst
      || (not (Hashtbl.mem seen x))
         && begin
              Hashtbl.add seen x ();
              List.exists go (Hashtbl.find_all succs x)
            end
    in
    go src
  in
  let idx l =
    let rec go i = function
      | [] -> None
      | x :: _ when String.equal x l -> Some i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 cfg.l13_order
  in
  List.filter_map
    (fun e ->
      let why =
        if String.equal e.le_from e.le_to then
          Some "reacquires a lock class already held (self-deadlock)"
        else if reaches e.le_to e.le_from then
          Some "closes a cycle in the acquisition graph"
        else
          match (idx e.le_from, idx e.le_to) with
          | Some i, Some j when i > j ->
              Some "contradicts the canonical lock order (DESIGN.md §7e)"
          | _ -> None
      in
      Option.map
        (fun why ->
          Diag.make ~rule:Diag.L13 ~symbol:e.le_symbol ~witness:e.le_witness
            ~message:
              (Printf.sprintf "acquires `%s' while holding `%s' — %s" e.le_to
                 e.le_from why)
            (Effects.loc_of_site e.le_site))
        why)
    edges

let combinator_short name =
  match String.index_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let check_l14 (g : Callgraph.t) (sums : Effects.t array) =
  let held_str held =
    String.concat ", "
      (List.map (fun h -> "`" ^ h ^ "'") (SS.elements held))
  in
  let blocks_chain kind start =
    witness_chain g
      ~direct_of:(fun (m : Callgraph.node) ->
        SM.find_opt kind m.Callgraph.direct.Effects.blocks)
      ~sum_of:(fun k -> SM.find_opt kind sums.(k).Effects.blocks)
      start
  in
  let per_node =
    Array.to_list g.Callgraph.nodes
    |> List.concat_map (fun (n : Callgraph.node) ->
           (* direct blocking calls under a syntactically held lock *)
           let direct =
             List.map
               (fun (kind, held, site) ->
                 Diag.make ~rule:Diag.L14 ~symbol:n.Callgraph.symbol
                   ~message:
                     (Printf.sprintf "may block (%s) while holding %s" kind
                        (held_str held))
                   (Effects.loc_of_site site))
               n.Callgraph.blocked_sites
           in
           (* direct blocking sites in a body that runs under a
              guard's internally-taken lock ([locked (fun () -> ...)]) *)
           let guard_held =
             let extra =
               SS.diff (entry_held_full g n) n.Callgraph.entry_held
             in
             if SS.is_empty extra then []
             else
               SM.fold
                 (fun kind site acc ->
                   if
                     List.exists
                       (fun (_, _, s) -> Effects.compare_site s site = 0)
                       n.Callgraph.blocked_sites
                   then acc
                   else
                     Diag.make ~rule:Diag.L14 ~symbol:n.Callgraph.symbol
                       ~message:
                         (Printf.sprintf "may block (%s) while holding %s"
                            kind (held_str extra))
                       (Effects.loc_of_site site)
                     :: acc)
                 n.Callgraph.direct.Effects.blocks []
           in
           (* calls whose callee may block, made while holding *)
           let eh = entry_held_full g n in
           let transitive =
             List.concat_map
               (fun (e : Callgraph.edge) ->
                 let held = SS.union e.Callgraph.e_held eh in
                 if SS.is_empty held then []
                 else
                   match e.Callgraph.callee with
                   | Callgraph.Internal j when not e.Callgraph.boundary -> (
                       let callee = g.Callgraph.nodes.(j) in
                       match callee.Callgraph.kind with
                       | Callgraph.Lambda _ ->
                           (* the lambda's own walk already carries the
                              held set; flagging here would double-report *)
                           []
                       | _ ->
                           SM.fold
                             (fun kind _ acc ->
                               Diag.make ~rule:Diag.L14
                                 ~symbol:n.Callgraph.symbol
                                 ~witness:(blocks_chain kind j)
                                 ~message:
                                   (Printf.sprintf
                                      "calls `%s', which may block (%s), \
                                       while holding %s"
                                      callee.Callgraph.name kind
                                      (held_str held))
                                 (Effects.loc_of_site e.Callgraph.call_site)
                               :: acc)
                             sums.(j).Effects.blocks [])
                   | c ->
                       (* submitting a parallel job blocks until every
                          chunk completes — with the lock still held *)
                       let cname =
                         match c with
                         | Callgraph.Internal j ->
                             g.Callgraph.nodes.(j).Callgraph.name
                         | Callgraph.External s -> s
                       in
                       if List.mem cname Callgraph.pool_combinators then
                         [
                           Diag.make ~rule:Diag.L14 ~symbol:n.Callgraph.symbol
                             ~message:
                               (Printf.sprintf
                                  "submits a %s job (blocks until the pool \
                                   drains) while holding %s"
                                  (combinator_short cname) (held_str held))
                             (Effects.loc_of_site e.Callgraph.call_site);
                         ]
                       else [])
               n.Callgraph.edges
           in
           direct @ guard_held @ transitive)
  in
  (* a blocking call anywhere in a pool body stalls its whole chunk,
     and the submitter with it *)
  let pool_bodies =
    List.concat_map
      (fun (ps : Callgraph.pool_site) ->
        let caller = g.Callgraph.nodes.(ps.Callgraph.ps_caller) in
        List.concat_map
          (fun tid ->
            SM.fold
              (fun kind site acc ->
                Diag.make ~rule:Diag.L14 ~symbol:caller.Callgraph.symbol
                  ~witness:(blocks_chain kind tid)
                  ~message:
                    (Printf.sprintf
                       "closure passed to %s may block (%s at %s)"
                       (combinator_short ps.Callgraph.ps_combinator)
                       kind
                       (Effects.site_to_string site))
                  (Effects.loc_of_site ps.Callgraph.ps_site)
                :: acc)
              sums.(tid).Effects.blocks [])
          ps.Callgraph.ps_targets)
      g.Callgraph.pool_sites
  in
  per_node @ pool_bodies

let check_l15 cfg (g : Callgraph.t) =
  let via = pipeline_reachability cfg g in
  Array.to_list g.Callgraph.nodes
  |> List.concat_map (fun (node : Callgraph.node) ->
         match via.(node.Callgraph.id) with
         | None -> []
         | Some root ->
             if cfg.l15_exempt node.Callgraph.name then []
             else
               Effects.RS.elements node.Callgraph.direct.Effects.float_merges
               |> List.filter_map (fun (what, site) ->
                      if not (cfg.l15_site_ok site.Effects.file) then None
                      else
                        Some
                          (Diag.make ~rule:Diag.L15
                             ~symbol:node.Callgraph.symbol
                             ~message:
                               (Printf.sprintf
                                  "%s; reachable from pipeline entry `%s' — \
                                   fold a sorted view (Cisp_util.Tbl) or \
                                   merge through the pool's fixed reduction \
                                   tree"
                                  what root)
                             (Effects.loc_of_site site))))

let check cfg (g : Callgraph.t) (r : Summary.result) =
  let sums = r.Summary.summaries in
  (if cfg.l7 then check_l7 g sums else [])
  @ (if cfg.l8 then check_l8 cfg g sums else [])
  @ (if cfg.l9 then check_l9 cfg g else [])
  @ (if cfg.l10 then check_l10 cfg g sums else [])
  @ (if cfg.l11 then check_l11 g sums else [])
  @ (if cfg.l12 then check_l12 cfg g else [])
  @ (if cfg.l13 then check_l13 cfg g sums else [])
  @ (if cfg.l14 then check_l14 g sums else [])
  @ if cfg.l15 then check_l15 cfg g else []
