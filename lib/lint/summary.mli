(** Phase 1b: per-node effect summaries, propagated over the call
    graph to a fixpoint.

    Monotone round-robin sweeps over a finite lattice: terminates on
    any graph (cyclic call chains included) with an order-independent
    result.  Three documented damping conventions (DESIGN.md §7c-7d):
    a node that takes a mutex directly drops the mutations it
    performs or inherits ({e lock-owner damping}), a lambda handed to
    a lock-taking callee does not leak its mutations into the
    function that merely creates it ({e guard damping}), and a
    [@cisp.alloc_ok] node drops its allocation evidence so a
    justified cold path does not poison transitive zero-alloc
    contracts ({e allocation damping}). *)

type result = {
  summaries : Effects.t array;  (** indexed by {!Callgraph.node} id *)
  rounds : int;  (** sweeps until stable (>= 1); exposed for tests *)
}

val propagate : Callgraph.node -> Callgraph.edge -> Effects.t -> Effects.t
(** Effects the caller inherits from one callee summary through one
    edge: raises filtered by the edge's handler mask, parameter
    mutations translated through the argument classification, free
    captures kept only while they stay free.  Exposed for tests. *)

val compute : Callgraph.t -> result
