type entry = {
  rule : Diag.rule option;
  file : string;
  symbol : string;
  reason : string;
  lineno : int;
}

type t = entry list

let empty = []

let parse_line ~file:src ~lineno line =
  let line, reason =
    match String.index_opt line '#' with
    | Some i ->
        ( String.sub line 0 i,
          String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  let fields =
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> not (String.equal s ""))
  in
  match fields with
  | [] -> Ok None
  | [ rule_s; file; symbol ] ->
      let rule =
        if String.equal rule_s "*" then Ok None
        else
          match Diag.rule_of_string rule_s with
          | Some r -> Ok (Some r)
          | None -> Error (Printf.sprintf "%s:%d: unknown rule %S" src lineno rule_s)
      in
      Result.map (fun rule -> Some { rule; file; symbol; reason; lineno }) rule
  | _ ->
      Error
        (Printf.sprintf
           "%s:%d: expected `RULE FILE SYMBOL  # reason' (RULE and SYMBOL may be `*')"
           src lineno)

let parse ~file contents =
  let lines = String.split_on_char '\n' contents in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line ~file ~lineno line with
        | Ok None -> go acc (lineno + 1) rest
        | Ok (Some e) -> go (e :: acc) (lineno + 1) rest
        | Error _ as e -> e)
  in
  go [] 1 lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse ~file:path contents
  | exception Sys_error msg -> Error msg

(* [d.file] is whatever relative path the compiler was invoked with, so
   entries match on path suffix at a '/' boundary (or exactly). *)
let file_matches entry_file diag_file =
  String.equal entry_file "*"
  || String.equal entry_file diag_file
  ||
  let le = String.length entry_file and ld = String.length diag_file in
  ld > le
  && String.equal (String.sub diag_file (ld - le) le) entry_file
  && Char.equal diag_file.[ld - le - 1] '/'

let entry_matches e (d : Diag.t) =
  (match e.rule with None -> true | Some r -> r = d.rule)
  && file_matches e.file d.file
  && (String.equal e.symbol "*" || String.equal e.symbol d.symbol)

let matches t d = List.exists (fun e -> entry_matches e d) t

let filter t diags =
  List.partition (fun d -> not (matches t d)) diags

let to_string e =
  Printf.sprintf "%s %s %s%s"
    (match e.rule with Some r -> Diag.rule_id r | None -> "*")
    e.file e.symbol
    (if String.equal e.reason "" then "" else "  # " ^ e.reason)

(* Entries matching none of the diagnostics.  Pass the PRE-suppression
   diagnostic list: an entry is live exactly when it suppresses
   something. *)
let stale t diags =
  List.filter (fun e -> not (List.exists (entry_matches e) diags)) t

(* Drop the stale entries' lines from the checked-in file, keeping
   comments, blank lines and every live entry byte-identical. *)
let prune ~path stale_entries =
  if stale_entries = [] then Ok 0
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | contents ->
        let doomed =
          List.map (fun e -> e.lineno) stale_entries |> List.sort_uniq Int.compare
        in
        let lines = String.split_on_char '\n' contents in
        let kept =
          List.filteri (fun i _ -> not (List.mem (i + 1) doomed)) lines
        in
        let out = String.concat "\n" kept in
        (match Out_channel.with_open_text path (fun oc ->
             Out_channel.output_string oc out) with
        | () -> Ok (List.length doomed)
        | exception Sys_error msg -> Error msg)
