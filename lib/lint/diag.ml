type rule =
  | L1
  | L2
  | L3
  | L4
  | L5
  | L6
  | L7
  | L8
  | L9
  | L10
  | L11
  | L12
  | L13
  | L14
  | L15

let all_rules =
  [ L1; L2; L3; L4; L5; L6; L7; L8; L9; L10; L11; L12; L13; L14; L15 ]

let rule_id = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"
  | L7 -> "L7"
  | L8 -> "L8"
  | L9 -> "L9"
  | L10 -> "L10"
  | L11 -> "L11"
  | L12 -> "L12"
  | L13 -> "L13"
  | L14 -> "L14"
  | L15 -> "L15"

let rule_of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | "L6" -> Some L6
  | "L7" -> Some L7
  | "L8" -> Some L8
  | "L9" -> Some L9
  | "L10" -> Some L10
  | "L11" -> Some L11
  | "L12" -> Some L12
  | "L13" -> Some L13
  | "L14" -> Some L14
  | "L15" -> Some L15
  | _ -> None

let rule_doc = function
  | L1 -> "polymorphic compare/equality on a float-bearing type"
  | L2 -> "partial stdlib function in library code"
  | L3 -> "physical constant duplicated outside Cisp_util.Units"
  | L4 -> "bare float parameter without a unit label or suffix"
  | L5 -> "stdout printing from library code"
  | L6 -> "assert used for data validation in library code"
  | L7 -> "closure handed to the domain pool transitively mutates unsynchronized shared state"
  | L8 -> "public API can raise an exception outside the Invalid_argument convention"
  | L9 -> "ambient nondeterminism read reachable from the design pipeline"
  | L10 -> "allocation reachable from a [@cisp.zero_alloc] contract"
  | L11 -> "per-call allocation (closure/boxed float) inside a domain-pool worker body"
  | L12 -> "polymorphic compare/hash reachable from the design pipeline where a monomorphic comparison exists"
  | L13 -> "lock acquisition order contradicts the canonical order or forms a cycle"
  | L14 -> "call that may block while a lock is held or inside a domain-pool worker body"
  | L15 -> "float accumulation over an unordered container reachable from the design pipeline"

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  symbol : string;
  message : string;
  witness : string list;
      (* interprocedural chain from the flagged site to the deep
         evidence (L13/L14); empty for single-site findings *)
}

let make ?(witness = []) ~rule ~symbol ~message (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    symbol;
    message;
    witness;
  }

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare (rule_id a.rule) (rule_id b.rule) in
        if c <> 0 then c else String.compare a.message b.message

let to_string d =
  let where =
    if String.equal d.symbol "" then "" else Printf.sprintf " (in `%s')" d.symbol
  in
  Printf.sprintf "%s:%d:%d: [%s] %s%s" d.file d.line d.col (rule_id d.rule)
    d.message where

(* Minimal RFC 8259 string escaping; the linter library depends only
   on compiler-libs, so it cannot reuse Cisp_design.Export. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let base =
    Printf.sprintf
      {|{"file":"%s","line":%d,"col":%d,"rule":"%s","symbol":"%s","message":"%s"|}
      (json_escape d.file) d.line d.col (rule_id d.rule) (json_escape d.symbol)
      (json_escape d.message)
  in
  match d.witness with
  | [] -> base ^ "}"
  | ws ->
      Printf.sprintf {|%s,"witness":[%s]|} base
        (String.concat ","
           (List.map (fun w -> Printf.sprintf {|"%s"|} (json_escape w)) ws))
      ^ "}"
