type rule = L1 | L2 | L3 | L4 | L5 | L6

let all_rules = [ L1; L2; L3; L4; L5; L6 ]

let rule_id = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"

let rule_of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "L4" -> Some L4
  | "L5" -> Some L5
  | "L6" -> Some L6
  | _ -> None

let rule_doc = function
  | L1 -> "polymorphic compare/equality on a float-bearing type"
  | L2 -> "partial stdlib function in library code"
  | L3 -> "physical constant duplicated outside Cisp_util.Units"
  | L4 -> "bare float parameter without a unit label or suffix"
  | L5 -> "stdout printing from library code"
  | L6 -> "assert used for data validation in library code"

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  symbol : string;
  message : string;
}

let make ~rule ~symbol ~message (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    rule;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    symbol;
    message;
  }

let order a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare (rule_id a.rule) (rule_id b.rule) in
        if c <> 0 then c else String.compare a.message b.message

let to_string d =
  let where =
    if String.equal d.symbol "" then "" else Printf.sprintf " (in `%s')" d.symbol
  in
  Printf.sprintf "%s:%d:%d: [%s] %s%s" d.file d.line d.col (rule_id d.rule)
    d.message where
