(* The [lint.hotpaths] registry: canonical names held to the
   zero-alloc contract without touching their source — the escape
   hatch for entry points whose definition site should stay free of
   analyzer vocabulary (third-party-shaped code, generated code), or
   for pinning a contract from review rather than from the kernel
   author.

   Format, one entry per line, mirroring [lint.allowlist]:

     Cisp_geo.Geodesy.distance_km   # pure float math, LOS inner loop

   [#] starts a comment, blank lines are skipped.  A canonical name is
   the analyzer's spelling: wrapped-library mangling expanded
   ([Cisp_rf.Los.check], not [Cisp_rf__Los.check]).  Names that match
   no node are ignored by the rule — the registry may be written
   before the code it contracts — but [names] preserves them so a
   driver can warn if it wants to. *)

type entry = { name : string; line : int; reason : string }

let parse_line ~line s =
  let code, comment =
    match String.index_opt s '#' with
    | Some i ->
        ( String.sub s 0 i,
          String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, "")
  in
  let code = String.trim code in
  if String.equal code "" then Ok None
  else if String.contains code ' ' || String.contains code '\t' then
    Error
      (Printf.sprintf "lint.hotpaths:%d: one canonical name per line (got %S)"
         line code)
  else Ok (Some { name = code; line; reason = comment })

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let entries, errs, _ =
    List.fold_left
      (fun (acc, errs, n) l ->
        match parse_line ~line:n l with
        | Ok None -> (acc, errs, n + 1)
        | Ok (Some e) -> (e :: acc, errs, n + 1)
        | Error m -> (acc, m :: errs, n + 1))
      ([], [], 1) lines
  in
  match errs with
  | [] -> Ok (List.rev entries)
  | e :: _ -> Error e

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error msg

let names entries = List.map (fun e -> e.name) entries
