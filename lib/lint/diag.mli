(** Lint diagnostics: the six repo rules and [file:line:col] reports.

    - L1: no polymorphic compare / equality ([compare], [min], [max],
      [=], [<>]) instantiated at a float-bearing type.
    - L2: no partial stdlib calls ([List.hd], [List.tl], [List.nth],
      [Option.get], bare [Hashtbl.find], ...) in library code.
    - L3: no duplicated physical constants (299792.458, 6371.0, the
      1.5 glass factor, ...) outside [Cisp_util.Units].
    - L4: every public function of the unit-heavy libraries taking a
      bare [float] must carry the unit in a label or name suffix
      ([_km], [_ms], [_ghz], [_gbps], [_deg], ...).
    - L5: no stdout printing from library code.
    - L6: no [assert] for data validation in library code — asserts
      vanish under [-noassert], so inputs must be checked with
      [invalid_arg].  [assert false] (unreachable marker) is exempt.

    The last three rules consume the interprocedural effect analysis
    ({!Callgraph}, {!Effects}, {!Summary}):

    - L7: a closure handed to [Cisp_util.Pool.parallel_for] /
      [parallel_map_array] / [reduce] must not transitively mutate
      shared state that is neither [Atomic] nor mutex-protected.
    - L8: a function exported by a [.mli] must not (transitively)
      raise anything but the documented [Invalid_argument]
      convention; the diagnostic lands on the public function of the
      unit where the offending raise originates.
    - L9: no reads of ambient nondeterminism ([Random], [Sys.time],
      [Unix.gettimeofday], hash-table iteration order, environment
      variables) reachable from the design pipeline outside
      [Cisp_util.Rng].

    The allocation-discipline family (also interprocedural):

    - L10: a [@cisp.zero_alloc] contract (attribute, or an entry in
      the [lint.hotpaths] registry) must not reach any heap
      allocation in its transitive call graph; blamed at the
      allocation's origin site, like L8.
    - L11: a closure handed to a [Cisp_util.Pool] combinator must not
      allocate a closure, box a float, or build a partial application
      per call — the per-iteration garbage that kills multicore
      scaling.
    - L12: no polymorphic [compare]/[Hashtbl.hash] reachable from the
      design pipeline where a monomorphic float/int comparison
      exists.

    The concurrency-discipline family (also interprocedural):

    - L13: every pair of nested lock acquisitions must agree with the
      canonical lock order (DESIGN.md §7e); cycles and reacquisitions
      in the derived acquisition graph are deadlocks-in-waiting.
    - L14: no call that may block (mutex acquisition, [Domain.join],
      [Condition.wait], IO, [Unix] syscalls) while a lock is held or
      inside a [Cisp_util.Pool] combinator body.  The condition-wait
      protocol — waiting on the SAME mutex you hold — is exempt.
    - L15: no float accumulation over an unordered source (raw
      [Hashtbl.fold]/[iter] outside [Cisp_util.Tbl], hand-rolled
      [Domain.join] merges) reachable from the design pipeline — the
      bit-identity contract admits only ordered folds and the pool's
      fixed pairwise reduction tree. *)

type rule =
  | L1
  | L2
  | L3
  | L4
  | L5
  | L6
  | L7
  | L8
  | L9
  | L10
  | L11
  | L12
  | L13
  | L14
  | L15

val all_rules : rule list
val rule_id : rule -> string
val rule_of_string : string -> rule option
val rule_doc : rule -> string

type t = {
  rule : rule;
  file : string;  (** source path as recorded by the compiler *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based *)
  symbol : string;
      (** enclosing top-level value (expression rules) or signature
          item (L4); [""] when unknown *)
  message : string;
  witness : string list;
      (** interprocedural chain from the flagged site to the deep
          evidence (L13/L14); empty for single-site findings *)
}

val make :
  ?witness:string list ->
  rule:rule ->
  symbol:string ->
  message:string ->
  Location.t ->
  t
(** Diagnostic at the start of [loc]. *)

val order : t -> t -> int
(** Sort key: file, line, column, rule. *)

val to_string : t -> string
(** ["file:line:col: [L2] message (in `symbol')"]. *)

val to_json : t -> string
(** One JSON object: [{"file":..,"line":..,"col":..,"rule":..,
    "symbol":..,"message":..}] with RFC 8259 string escaping; a
    non-empty witness chain appends a ["witness":[..]] array. *)
