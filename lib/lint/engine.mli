(** Orchestration: load annotation files, run the pass list, apply
    the allowlist, decide the exit code.

    A run is a list of {!pass}es over one load of the tree: the
    per-expression rules L1-L6 (a unit at a time, each pass with its
    own unit filter) and the interprocedural pass L7-L15 (call graph +
    effect summaries over every loaded unit at once, see
    {!Callgraph}/{!Summary}/{!Effect_rules}). *)

type report = {
  diagnostics : Diag.t list;
      (** violations, sorted by (file, line, col, rule) and
          deduplicated — byte-stable regardless of [.cmt] discovery
          order — with the allowlist applied *)
  suppressed : Diag.t list;  (** matched by the allowlist *)
  stale : Allowlist.entry list;
      (** allowlist entries that matched no diagnostic this run *)
  errors : string list;  (** unreadable annotation files etc. *)
  units_checked : int;
}

val empty_report : report
val merge : report -> report -> report

type pass =
  | Expr of { rules : Diag.rule list; select : Loader.unit_ -> bool }
  | Interprocedural of Effect_rules.config

val run_pass :
  ?on_graph:(Callgraph.t -> Effects.t array -> unit) ->
  Loader.unit_ list ->
  pass ->
  Diag.t list
(** One pass, unsorted diagnostics; exposed for tests.  [on_graph] is
    invoked with the call graph and finalized summaries when the
    interprocedural pass actually runs (the [--lock-graph] hook). *)

val run :
  ?allowlist:Allowlist.t ->
  ?hotpaths:string list ->
  ?lock_dot:string ->
  rules:Diag.rule list ->
  string list ->
  report
(** [run ~rules roots] lints every [.cmt]/[.cmti] under [roots] with
    the given rules: expression rules on implementations, L4 on
    interfaces, and — when any of L7-L15 is requested — the
    interprocedural pass with the permissive {!Effect_rules.generic}
    policy (every node an L9/L12/L15 root, empty canonical lock
    order).  [hotpaths] adds canonical names to the L10 contract set
    (see {!Hotpaths}); [lock_dot] writes the derived lock-acquisition
    graph to that path in Graphviz DOT (a write failure lands in
    [errors]). *)

val run_repo :
  ?allowlist:Allowlist.t ->
  ?hotpaths:string list ->
  ?lock_dot:string ->
  root:string ->
  unit ->
  report
(** The checked-in repo policy, relative to [root]:
    L1/L2/L3/L5/L6 on [lib/] implementations; L4 on the interfaces of
    the unit-heavy sublibraries ([lib/geo], [lib/rf], [lib/terrain],
    [lib/fiber], [lib/design]); L1/L3 on [bin/], [bench/] and
    [examples/]; the interprocedural pass over the whole tree with
    L7/L10/L11/L13/L14 everywhere, L8 on library units, L9/L12/L15
    seeded at the design pipeline entry points with sites flagged in
    library sources, and L13 checked against the canonical lock order
    of DESIGN.md §7e.  When [hotpaths] is absent,
    [<root>/lint.hotpaths] is loaded if it exists (a load error is
    reported in [errors]); [lock_dot] as in {!run}. *)

val exit_code : report -> int
(** 0 clean, 1 violations, 2 no violations but load errors. *)
