(** Orchestration: load annotation files, run rules, apply the
    allowlist, decide the exit code. *)

type report = {
  diagnostics : Diag.t list;  (** violations, sorted, allowlist applied *)
  suppressed : Diag.t list;   (** matched by the allowlist *)
  errors : string list;       (** unreadable annotation files etc. *)
  units_checked : int;
}

val empty_report : report
val merge : report -> report -> report

val run :
  ?allowlist:Allowlist.t -> rules:Diag.rule list -> string list -> report
(** [run ~rules roots] lints every [.cmt]/[.cmti] under [roots] with
    the given rules (expression rules apply to implementations, L4 to
    interfaces). *)

val run_repo : ?allowlist:Allowlist.t -> root:string -> unit -> report
(** The checked-in repo policy, relative to [root]:
    L1/L2/L3/L5 on [lib/] implementations; L4 on the interfaces of the
    unit-heavy sublibraries ([lib/geo], [lib/rf], [lib/terrain],
    [lib/fiber], [lib/design]); L1/L3 on [bin/], [bench/] and
    [examples/] (executables may print and may use partial functions
    at the top level, but must not corrupt units or duplicate
    constants). *)

val exit_code : report -> int
(** 0 clean, 1 violations, 2 no violations but load errors. *)
