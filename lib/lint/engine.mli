(** Orchestration: load annotation files, run the pass list, apply
    the allowlist, decide the exit code.

    A run is a list of {!pass}es over one load of the tree: the
    per-expression rules L1-L6 (a unit at a time, each pass with its
    own unit filter) and the interprocedural pass L7-L12 (call graph +
    effect summaries over every loaded unit at once, see
    {!Callgraph}/{!Summary}/{!Effect_rules}). *)

type report = {
  diagnostics : Diag.t list;
      (** violations, sorted by (file, line, col, rule) and
          deduplicated — byte-stable regardless of [.cmt] discovery
          order — with the allowlist applied *)
  suppressed : Diag.t list;  (** matched by the allowlist *)
  stale : Allowlist.entry list;
      (** allowlist entries that matched no diagnostic this run *)
  errors : string list;  (** unreadable annotation files etc. *)
  units_checked : int;
}

val empty_report : report
val merge : report -> report -> report

type pass =
  | Expr of { rules : Diag.rule list; select : Loader.unit_ -> bool }
  | Interprocedural of Effect_rules.config

val run_pass : Loader.unit_ list -> pass -> Diag.t list
(** One pass, unsorted diagnostics; exposed for tests. *)

val run :
  ?allowlist:Allowlist.t ->
  ?hotpaths:string list ->
  rules:Diag.rule list ->
  string list ->
  report
(** [run ~rules roots] lints every [.cmt]/[.cmti] under [roots] with
    the given rules: expression rules on implementations, L4 on
    interfaces, and — when any of L7-L12 is requested — the
    interprocedural pass with the permissive {!Effect_rules.generic}
    policy (every node an L9/L12 root).  [hotpaths] adds canonical
    names to the L10 contract set (see {!Hotpaths}). *)

val run_repo :
  ?allowlist:Allowlist.t -> ?hotpaths:string list -> root:string -> unit -> report
(** The checked-in repo policy, relative to [root]:
    L1/L2/L3/L5/L6 on [lib/] implementations; L4 on the interfaces of
    the unit-heavy sublibraries ([lib/geo], [lib/rf], [lib/terrain],
    [lib/fiber], [lib/design]); L1/L3 on [bin/], [bench/] and
    [examples/]; the interprocedural pass over the whole tree with
    L7/L10/L11 everywhere, L8 on library units, and L9/L12 seeded at
    the design pipeline entry points with sites flagged in library
    sources.  When [hotpaths] is absent, [<root>/lint.hotpaths] is
    loaded if it exists (a load error is reported in [errors]). *)

val exit_code : report -> int
(** 0 clean, 1 violations, 2 no violations but load errors. *)
