(** The [lint.hotpaths] registry: canonical names held to the L10
    zero-alloc contract without a [@cisp.zero_alloc] attribute at the
    definition — the annotation channel for entry points whose source
    should stay free of analyzer vocabulary.

    One entry per line: a canonical name (analyzer spelling, mangling
    expanded), then an optional [# reason] comment.  Names matching no
    node are ignored by the rule, so the registry may lead the code it
    contracts. *)

type entry = {
  name : string;  (** canonical name, e.g. ["Cisp_rf.Los.check"] *)
  line : int;  (** 1-based, for driver messages *)
  reason : string;  (** text after [#], [""] if none *)
}

val parse_string : string -> (entry list, string) result
(** First malformed line wins the error; blank/comment lines skip. *)

val load : string -> (entry list, string) result

val names : entry list -> string list
