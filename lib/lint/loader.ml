type kind =
  | Impl of Typedtree.structure
  | Intf of Typedtree.signature

type unit_ = {
  source : string;
  cmt_path : string;
  modname : string;
  kind : kind;
}

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.equal (String.sub s (ls - lf) lf) suf

let rec scan_tree acc path =
  match Sys.is_directory path with
  | true ->
      Sys.readdir path |> Array.to_list
      |> List.fold_left (fun acc name -> scan_tree acc (Filename.concat path name)) acc
  | false ->
      if has_suffix path ".cmt" || has_suffix path ".cmti" then path :: acc else acc
  | exception Sys_error _ -> acc

(* Per-root, so a missing root or a root with nothing to lint (a source
   tree that was never built, a typo'd path) is reported instead of
   silently contributing zero units. *)
let find_cmt_files roots =
  let files, errors =
    List.fold_left
      (fun (files, errors) root ->
        if not (Sys.file_exists root) then
          (files, (root ^ ": no such file or directory") :: errors)
        else
          match scan_tree [] root with
          | [] ->
              ( files,
                (root ^ ": no .cmt/.cmti files found (is the tree built?)")
                :: errors )
          | fs -> (List.rev_append fs files, errors))
      ([], []) roots
  in
  (List.sort_uniq String.compare files, List.rev errors)

let load_file cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | infos -> (
      let source =
        match infos.Cmt_format.cmt_sourcefile with
        | Some s -> s
        | None -> cmt_path
      in
      let modname = infos.Cmt_format.cmt_modname in
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation s ->
          Ok (Some { source; cmt_path; modname; kind = Impl s })
      | Cmt_format.Interface s ->
          Ok (Some { source; cmt_path; modname; kind = Intf s })
      | _ -> Ok None)
  | exception Cmt_format.Error (Cmt_format.Not_a_typedtree msg) ->
      Error (Printf.sprintf "%s: not a typedtree: %s" cmt_path msg)
  | exception Sys_error msg -> Error msg
  | exception _ -> Error (Printf.sprintf "%s: unreadable cmt file" cmt_path)

let load_roots roots =
  let files, root_errors = find_cmt_files roots in
  List.fold_left
    (fun (units, errors) f ->
      match load_file f with
      | Ok (Some u) -> (u :: units, errors)
      | Ok None -> (units, errors)
      | Error e -> (units, e :: errors))
    ([], []) files
  |> fun (units, errors) ->
  ( List.sort (fun a b -> String.compare a.source b.source) units,
    root_errors @ List.rev errors )
