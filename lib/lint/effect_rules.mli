(** Phase 2: the summary-consuming rules L7 (domain-safety), L8
    (exception-escape) and L9 (nondeterminism-taint).

    Policies are injected through {!config}; {!generic} checks
    everything everywhere (the fixture/test mode), while
    {!Engine.run_repo} narrows L8/L9 to library sources and seeds L9
    reachability at the design-pipeline entry points. *)

type config = {
  l7 : bool;
  l8 : bool;
  l9 : bool;
  l8_unit_ok : string -> bool;
      (** is this source file held to the public-raise convention? *)
  l9_root : Callgraph.node -> bool;  (** pipeline entry points *)
  l9_site_ok : string -> bool;
      (** source files where L9 reads are flagged *)
  l9_exempt : string -> bool;
      (** canonical node names allowed to read nondeterminism *)
}

val default_l9_exempt : string -> bool
(** [Cisp_util.Rng] — the sanctioned, seeded randomness source. *)

val generic : config
(** All three rules, all nodes are L9 roots, only the default
    exemption. *)

val check : config -> Callgraph.t -> Summary.result -> Diag.t list
(** Unsorted; {!Engine} owns ordering and allowlisting. *)
