(** Phase 2: the summary-consuming rules L7 (domain-safety), L8
    (exception-escape), L9 (nondeterminism-taint), L10 (zero-alloc
    contracts), L11 (pool-body allocation) and L12
    (polymorphic-comparison taint).

    Policies are injected through {!config}; {!generic} checks
    everything everywhere (the fixture/test mode), while
    {!Engine.run_repo} narrows L8/L9/L12 to library sources and seeds
    reachability at the design-pipeline entry points. *)

type config = {
  l7 : bool;
  l8 : bool;
  l9 : bool;
  l10 : bool;
  l11 : bool;
  l12 : bool;
  l8_unit_ok : string -> bool;
      (** is this source file held to the public-raise convention? *)
  l9_root : Callgraph.node -> bool;
      (** pipeline entry points; L12 reachability uses the same roots *)
  l9_site_ok : string -> bool;
      (** source files where L9 reads are flagged *)
  l9_exempt : string -> bool;
      (** canonical node names allowed to read nondeterminism *)
  l10_hotpaths : string list;
      (** canonical names held to the zero-alloc contract without an
          attribute (the [lint.hotpaths] registry) *)
  l12_site_ok : string -> bool;
      (** source files where L12 sites are flagged *)
}

val default_l9_exempt : string -> bool
(** [Cisp_util.Rng] — the sanctioned, seeded randomness source. *)

val generic : config
(** All three rules, all nodes are L9 roots, only the default
    exemption. *)

val check : config -> Callgraph.t -> Summary.result -> Diag.t list
(** Unsorted; {!Engine} owns ordering and allowlisting. *)
