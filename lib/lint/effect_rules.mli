(** Phase 2: the summary-consuming rules L7 (domain-safety), L8
    (exception-escape), L9 (nondeterminism-taint), L10 (zero-alloc
    contracts), L11 (pool-body allocation), L12
    (polymorphic-comparison taint), L13 (lock-order consistency), L14
    (blocking-under-lock) and L15 (float-merge determinism).

    Policies are injected through {!config}; {!generic} checks
    everything everywhere (the fixture/test mode), while
    {!Engine.run_repo} narrows L8/L9/L12/L15 to library sources, seeds
    reachability at the design-pipeline entry points, and supplies the
    repo's canonical lock order. *)

type config = {
  l7 : bool;
  l8 : bool;
  l9 : bool;
  l10 : bool;
  l11 : bool;
  l12 : bool;
  l13 : bool;
  l14 : bool;
  l15 : bool;
  l8_unit_ok : string -> bool;
      (** is this source file held to the public-raise convention? *)
  l9_root : Callgraph.node -> bool;
      (** pipeline entry points; L12/L15 reachability uses the same
          roots *)
  l9_site_ok : string -> bool;
      (** source files where L9 reads are flagged *)
  l9_exempt : string -> bool;
      (** canonical node names allowed to read nondeterminism *)
  l10_hotpaths : string list;
      (** canonical names held to the zero-alloc contract without an
          attribute (the [lint.hotpaths] registry) *)
  l12_site_ok : string -> bool;
      (** source files where L12 sites are flagged *)
  l13_order : string list;
      (** canonical lock order, outermost first; acquisitions jumping
          backwards in this list are flagged even without a cycle *)
  l15_site_ok : string -> bool;
      (** source files where L15 sites are flagged *)
  l15_exempt : string -> bool;
      (** canonical node names allowed to fold unordered containers *)
}

val default_l9_exempt : string -> bool
(** [Cisp_util.Rng] — the sanctioned, seeded randomness source. *)

val default_l15_exempt : string -> bool
(** [Cisp_util.Tbl] — the sorted-view shim over [Hashtbl]. *)

val generic : config
(** Every rule on, all nodes are reachability roots, only the default
    exemptions, empty canonical lock order. *)

(** {2 The derived lock-acquisition graph} *)

type lock_edge = {
  le_from : string;  (** lock class held *)
  le_to : string;  (** lock class acquired under it *)
  le_site : Effects.site;  (** smallest witness site *)
  le_symbol : string;  (** enclosing top-level value at the witness *)
  le_witness : string list;
      (** call chain from the witness down to the deep acquisition,
          empty when the acquisition is direct *)
}

val lock_graph : Callgraph.t -> Effects.t array -> lock_edge list
(** One edge per (held, acquired) lock-class pair observed anywhere,
    deduplicated on the smallest witness site; byte-stable. *)

val lock_classes : Callgraph.t -> string list
(** Every lock class acquired anywhere (the graph's vertex set,
    isolated vertices included), sorted. *)

val lock_graph_dot : Callgraph.t -> Effects.t array -> string
(** The acquisition graph in Graphviz DOT, vertices and edges sorted
    (emitted by [cisp_lint --lock-graph], archived by CI). *)

val check : config -> Callgraph.t -> Summary.result -> Diag.t list
(** Unsorted; {!Engine} owns ordering and allowlisting. *)
