(** Discovery and decoding of [.cmt] / [.cmti] files.

    Dune compiles everything with [-bin-annot], so the typed ASTs of
    the whole tree are sitting in [_build] next to the object files;
    the lint pass walks those rather than re-typing sources. *)

type kind =
  | Impl of Typedtree.structure  (** from a [.cmt] *)
  | Intf of Typedtree.signature  (** from a [.cmti] *)

type unit_ = {
  source : string;    (** source path recorded at compile time *)
  cmt_path : string;
  modname : string;
      (** compilation-unit module name, already mangled by dune's
          wrapping ([Cisp_geo__Grid] for [lib/geo/grid.ml]) *)
  kind : kind;
}

val find_cmt_files : string list -> string list * string list
(** All [.cmt] / [.cmti] files under the given directories (files are
    accepted verbatim), sorted and deduplicated, plus one error per
    root that is missing or contains nothing to lint. *)

val load_file : string -> (unit_ option, string) result
(** [Ok None] for packed / partial cmt files. *)

val load_roots : string list -> unit_ list * string list
(** Load every annotation file under the roots; returns the decoded
    units (sorted by source path) and decode errors. *)
