module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy

type relief = {
  center : Coord.t;
  axis_bearing_deg : float;
  half_length_km : float;
  half_width_km : float;
  peak_m : float;
}

type region = Us_continental | Europe | Flat | Custom of relief list

(* A relief with its point-independent trigonometry evaluated once at
   construction.  [mountain_amp] runs on every DEM evaluation — tens of
   millions of times per LOS sweep — and recomputing cos/sin of the
   (fixed) range center there dominated its cost.  The cached values
   are bit-identical to what the inline computation produced, because
   cos/sin of the same double is the same double. *)
type frelief = {
  lat_c : float;
  lon_c : float;
  cphi1 : float;              (* cos (deg_to_rad lat_c) *)
  sphi1 : float;              (* sin (deg_to_rad lat_c) *)
  caxis : float;              (* cos (deg_to_rad axis_bearing_deg) *)
  saxis : float;              (* sin (deg_to_rad axis_bearing_deg) *)
  half_length_km : float;
  half_width_km : float;
  peak_m : float;
  cutoff_km : float;          (* 2.5 half_length + 2.5 half_width *)
}

type t = {
  seed : int;
  frs : frelief array;    (* fused reliefs, in declaration order *)
  base_amp_m : float;     (* rolling-hill noise amplitude outside ranges *)
  base_floor_m : float;   (* continental base elevation *)
  west_ramp : bool;       (* Great-Plains-style westward elevation ramp *)
}

let mk_relief lat lon axis_bearing_deg half_length_km half_width_km peak_m =
  { center = Coord.make ~lat ~lon; axis_bearing_deg; half_length_km; half_width_km; peak_m }

(* Idealized major ranges; positions are approximate but geographically
   sensible, which is all the synthetic substitution needs. *)
let us_reliefs =
  [
    (* Rocky Mountains: Montana down to New Mexico. *)
    mk_relief 43.0 (-107.5) 170.0 1100.0 260.0 1900.0;
    (* Sierra Nevada / Cascades along the west coast interior. *)
    mk_relief 41.5 (-120.8) 175.0 900.0 150.0 1700.0;
    (* Appalachians: Georgia up to Maine. *)
    mk_relief 38.5 (-79.5) 35.0 900.0 180.0 800.0;
    (* Ozarks. *)
    mk_relief 36.5 (-92.5) 90.0 250.0 150.0 350.0;
  ]

let eu_reliefs =
  [
    (* Alps. *)
    mk_relief 46.5 9.5 80.0 500.0 150.0 2500.0;
    (* Pyrenees. *)
    mk_relief 42.7 0.5 95.0 220.0 70.0 1800.0;
    (* Carpathians. *)
    mk_relief 47.5 24.0 120.0 500.0 130.0 1300.0;
    (* Scandinavian mountains. *)
    mk_relief 62.0 9.0 30.0 700.0 150.0 1200.0;
    (* Dinaric Alps / Balkans. *)
    mk_relief 43.8 18.5 135.0 350.0 120.0 1200.0;
  ]

let fuse rl =
  let phi1 = Cisp_util.Units.deg_to_rad (Coord.lat rl.center) in
  let axis = Cisp_util.Units.deg_to_rad rl.axis_bearing_deg in
  {
    lat_c = Coord.lat rl.center;
    lon_c = Coord.lon rl.center;
    cphi1 = cos phi1;
    sphi1 = sin phi1;
    caxis = cos axis;
    saxis = sin axis;
    half_length_km = rl.half_length_km;
    half_width_km = rl.half_width_km;
    peak_m = rl.peak_m;
    cutoff_km = (2.5 *. rl.half_length_km) +. (2.5 *. rl.half_width_km);
  }

let make ~seed ~reliefs ~base_amp_m ~base_floor_m ~west_ramp =
  { seed; frs = Array.of_list (List.map fuse reliefs); base_amp_m; base_floor_m; west_ramp }

let create ?(seed = 42) region =
  match region with
  | Us_continental ->
    make ~seed ~reliefs:us_reliefs ~base_amp_m:90.0 ~base_floor_m:150.0 ~west_ramp:true
  | Europe ->
    make ~seed ~reliefs:eu_reliefs ~base_amp_m:80.0 ~base_floor_m:100.0 ~west_ramp:false
  | Flat -> make ~seed ~reliefs:[] ~base_amp_m:15.0 ~base_floor_m:100.0 ~west_ramp:false
  | Custom reliefs -> make ~seed ~reliefs ~base_amp_m:60.0 ~base_floor_m:100.0 ~west_ramp:false

(* Sum of Gaussian relief memberships, 1 at a range core falling off
   along and across its axis: the haversine distance and initial
   bearing of [Geodesy], inlined so the relief-constant trigonometry
   comes from [frelief] and the point-dependent cos/sin(lat) is shared
   by every relief.  The bearing itself is never materialized: the
   Gaussian only consumes cos/sin of (bearing - axis), which come
   straight from the bearing's atan2 operands — cos(atan2 y x) is
   x/|(x,y)| — rotated by the precomputed axis angle.  That replaces
   atan2 plus two trig calls and two angle-unit round-trips per relief
   with one sqrt, at the cost of low-order-bit differences from the
   textbook formulation (the weight field is smooth; nothing downstream
   resolves ulps). *)
let mountain_amp t p =
  let nr = Array.length t.frs in
  if nr = 0 then 0.0
  else begin
    let rad = Cisp_util.Units.deg_to_rad in
    let r = Cisp_util.Units.earth_radius_km in
    let lat_p = Coord.lat p and lon_p = Coord.lon p in
    let phi2 = rad lat_p in
    let cphi2 = cos phi2 and sphi2 = sin phi2 in
    let acc = ref 0.0 in
    for i = 0 to nr - 1 do
      let fr = Array.unsafe_get t.frs i in
      let dphi = rad (lat_p -. fr.lat_c) in
      let dlam = rad (lon_p -. fr.lon_c) in
      let s1 = sin (dphi /. 2.0) and s2 = sin (dlam /. 2.0) in
      let h = (s1 *. s1) +. (fr.cphi1 *. cphi2 *. s2 *. s2) in
      let d = 2.0 *. r *. asin (Float.min 1.0 (sqrt h)) in
      if d <= fr.cutoff_km then begin
        (* Half-angle identities recover sin/cos of dlam from the s2
           already computed for the haversine — one libm call instead
           of two. *)
        let c2 = cos (dlam /. 2.0) in
        let sdlam = 2.0 *. s2 *. c2 in
        let cdlam = 1.0 -. (2.0 *. s2 *. s2) in
        let y = sdlam *. cphi2 in
        let x = (fr.cphi1 *. sphi2) -. (fr.sphi1 *. cphi2 *. cdlam) in
        let n = sqrt ((x *. x) +. (y *. y)) in
        (* (x, y) vanishes only at the center/antipode; the antipode is
           far outside every cutoff, and at the center d = 0 makes the
           direction irrelevant — any unit vector gives q = 0. *)
        let ct = if n > 0.0 then ((x *. fr.caxis) +. (y *. fr.saxis)) /. n else 1.0 in
        let st = if n > 0.0 then ((y *. fr.caxis) -. (x *. fr.saxis)) /. n else 0.0 in
        let along = d *. ct /. fr.half_length_km in
        let across = d *. st /. fr.half_width_km in
        let q = (along *. along) +. (across *. across) in
        acc := !acc +. (fr.peak_m *. exp (-.q))
      end
    done;
    !acc
  end

let ruggedness t p = t.base_amp_m +. mountain_amp t p

let elevation_m t p =
  let lat = Coord.lat p and lon = Coord.lon p in
  (* Feature scale: frequency 2/deg ~ 50 km rolling features. *)
  let base = Noise.fbm ~seed:t.seed ~octaves:5 ~lacunarity:2.1 ~gain:0.5 (lon *. 2.0) (lat *. 2.0) in
  let mountains =
    let amp = mountain_amp t p in
    if amp <= 1.0 then 0.0
    else amp *. Noise.ridged ~seed:(t.seed + 1000) ~octaves:4 (lon *. 3.0) (lat *. 3.0)
  in
  let ramp =
    if t.west_ramp then begin
      (* Great-Plains ramp: ~200 m near lon -95 rising to ~1600 m near -105. *)
      let x = (-95.0 -. lon) /. 10.0 in
      let x = Float.max 0.0 (Float.min 1.6 x) in
      x *. 900.0
    end
    else 0.0
  in
  Float.max 0.0 (t.base_floor_m +. ramp +. (t.base_amp_m *. base) +. mountains)

let clutter_m t p =
  let lat = Coord.lat p and lon = Coord.lon p in
  (* Canopy/building height: noisy 0-30 m field at ~20 km scale. *)
  let v = Noise.fbm ~seed:(t.seed + 2000) ~octaves:3 ~lacunarity:2.0 ~gain:0.5 (lon *. 5.0) (lat *. 5.0) in
  let h = 14.0 +. (14.0 *. v) in
  Float.max 0.0 h

let surface_m t p = elevation_m t p +. clutter_m t p

let profile t a b ~step_km =
  let pts = Geodesy.sample_path a b ~step_km in
  let total = Geodesy.distance_km a b in
  let n = Array.length pts in
  Array.mapi
    (fun i p ->
      let d = total *. float_of_int i /. float_of_int (n - 1) in
      (d, surface_m t p))
    pts
