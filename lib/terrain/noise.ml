(* Hash integer lattice coordinates and a seed to a float in [-1, 1].
   Uses the splitmix64 finalizer for good avalanche behaviour.  The
   Int64 steps look heavyweight but stay unboxed: the native compiler
   keeps boxed-number intermediates in registers within straight-line
   code (a 16-bit-limb reimplementation on native ints benchmarked
   ~40% slower than this). *)
let lattice ~seed ix iy =
  let h = Int64.of_int ((ix * 0x1F1F1F1F) lxor (iy * 0x5F356495) lxor (seed * 0x2545F491)) in
  let z = Int64.add h 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits = Int64.to_float (Int64.shift_right_logical z 11) in
  (bits /. 9007199254740992.0 *. 2.0) -. 1.0

let smoothstep t = t *. t *. (3.0 -. (2.0 *. t))

let value ~seed x y =
  let xf = Float.floor x and yf = Float.floor y in
  let x0 = int_of_float xf and y0 = int_of_float yf in
  let fx = x -. xf and fy = y -. yf in
  let sx = smoothstep fx and sy = smoothstep fy in
  let v00 = lattice ~seed x0 y0 in
  let v10 = lattice ~seed (x0 + 1) y0 in
  let v01 = lattice ~seed x0 (y0 + 1) in
  let v11 = lattice ~seed (x0 + 1) (y0 + 1) in
  let a = v00 +. (sx *. (v10 -. v00)) in
  let b = v01 +. (sx *. (v11 -. v01)) in
  a +. (sy *. (b -. a))

(* [fbm] is the innermost loop of every DEM evaluation — an LOS sweep
   runs it tens of millions of times — and without flambda each call
   boundary in the naive octave recursion boxes its float arguments
   and results (~400 words per terrain sample, gigabytes per sweep).
   So the octave loop below inlines {!value} and {!lattice} by hand
   into one function body, where every float intermediate is a
   let-bound local the compiler keeps unboxed, and carries the loop
   state in a 4-slot floatarray (unboxed storage, one small allocation
   per call).  The arithmetic — each expression and its operation
   order — is copied verbatim from {!value}/{!lattice}/{!smoothstep},
   so results are bit-identical to calling them; [value] remains the
   readable single-octave specification. *)

(* The 4-slot loop-state floatarray, once per domain instead of once
   per call: tens of millions of [fbm] calls per sweep made that "one
   small allocation per call" the dominant minor-heap source.  The
   state is dead outside a single call (written before every read), so
   domain-local reuse cannot couple calls or domains. *)
let fbm_state = Cisp_util.Pool.Scratch.create (fun () -> Float.Array.create 4)

let[@cisp.zero_alloc] fbm ~seed ~octaves ~lacunarity ~gain x y =
  if octaves <= 0 then invalid_arg "Noise.fbm: octaves <= 0";
  (* The splitmix64 finalizer of {!lattice}, except the seed term: the
     caller adds the per-corner coordinate products.  A local function
     is too large for the non-flambda inliner, and as a call it would
     box its float result at every one of the four corners — so the
     finalizer runs on the pre-mixed key directly. *)
  let[@inline] corner key =
    let h = Int64.of_int key in
    let z = Int64.add h 0x9E3779B97F4A7C15L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let bits = Int64.to_float (Int64.shift_right_logical z 11) in
    (bits /. 9007199254740992.0 *. 2.0) -. 1.0
  in
  (* freq, amp, sum, norm *)
  let st = Cisp_util.Pool.Scratch.get fbm_state in
  Float.Array.unsafe_set st 0 1.0;
  Float.Array.unsafe_set st 1 1.0;
  Float.Array.unsafe_set st 2 0.0;
  Float.Array.unsafe_set st 3 0.0;
  for i = 0 to octaves - 1 do
    let freq = Float.Array.unsafe_get st 0 in
    let amp = Float.Array.unsafe_get st 1 in
    let seed = seed + i in
    let x = x *. freq and y = y *. freq in
    let xf = Float.floor x and yf = Float.floor y in
    let x0 = int_of_float xf and y0 = int_of_float yf in
    let fx = x -. xf and fy = y -. yf in
    let sx = fx *. fx *. (3.0 -. (2.0 *. fx)) in
    let sy = fy *. fy *. (3.0 -. (2.0 *. fy)) in
    let ks = seed * 0x2545F491 in
    let kx0 = x0 * 0x1F1F1F1F and kx1 = (x0 + 1) * 0x1F1F1F1F in
    let ky0 = y0 * 0x5F356495 and ky1 = (y0 + 1) * 0x5F356495 in
    let v00 = corner (kx0 lxor ky0 lxor ks) in
    let v10 = corner (kx1 lxor ky0 lxor ks) in
    let v01 = corner (kx0 lxor ky1 lxor ks) in
    let v11 = corner (kx1 lxor ky1 lxor ks) in
    let a = v00 +. (sx *. (v10 -. v00)) in
    let b = v01 +. (sx *. (v11 -. v01)) in
    let v = a +. (sy *. (b -. a)) in
    Float.Array.unsafe_set st 2 (Float.Array.unsafe_get st 2 +. (amp *. v));
    Float.Array.unsafe_set st 3 (Float.Array.unsafe_get st 3 +. amp);
    Float.Array.unsafe_set st 0 (freq *. lacunarity);
    Float.Array.unsafe_set st 1 (amp *. gain)
  done;
  Float.Array.unsafe_get st 2 /. Float.Array.unsafe_get st 3

let ridged ~seed ~octaves x y =
  let v = fbm ~seed ~octaves ~lacunarity:2.0 ~gain:0.5 x y in
  let ridge = 1.0 -. Float.abs v in
  ridge *. ridge
