(* Hash integer lattice coordinates and a seed to a float in [-1, 1].
   Uses the splitmix64 finalizer for good avalanche behaviour. *)
let lattice ~seed ix iy =
  let h = Int64.of_int ((ix * 0x1F1F1F1F) lxor (iy * 0x5F356495) lxor (seed * 0x2545F491)) in
  let z = Int64.add h 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits = Int64.to_float (Int64.shift_right_logical z 11) in
  (bits /. 9007199254740992.0 *. 2.0) -. 1.0

let smoothstep t = t *. t *. (3.0 -. (2.0 *. t))

let value ~seed x y =
  let x0 = int_of_float (Float.floor x) and y0 = int_of_float (Float.floor y) in
  let fx = x -. Float.floor x and fy = y -. Float.floor y in
  let sx = smoothstep fx and sy = smoothstep fy in
  let v00 = lattice ~seed x0 y0 in
  let v10 = lattice ~seed (x0 + 1) y0 in
  let v01 = lattice ~seed x0 (y0 + 1) in
  let v11 = lattice ~seed (x0 + 1) (y0 + 1) in
  let a = v00 +. (sx *. (v10 -. v00)) in
  let b = v01 +. (sx *. (v11 -. v01)) in
  a +. (sy *. (b -. a))

let fbm ~seed ~octaves ~lacunarity ~gain x y =
  if octaves <= 0 then invalid_arg "Noise.fbm: octaves <= 0";
  let rec loop i freq amp sum norm =
    if i >= octaves then sum /. norm
    else begin
      let v = value ~seed:(seed + i) (x *. freq) (y *. freq) in
      loop (i + 1) (freq *. lacunarity) (amp *. gain) (sum +. (amp *. v)) (norm +. amp)
    end
  in
  loop 0 1.0 1.0 0.0 0.0

let ridged ~seed ~octaves x y =
  let v = fbm ~seed ~octaves ~lacunarity:2.0 ~gain:0.5 x y in
  let ridge = 1.0 -. Float.abs v in
  ridge *. ridge
