type t = {
  dem : Dem.t;
  lock : Mutex.t;
  surface : (int, float) Hashtbl.t;
  ground : (int, float) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create dem =
  {
    dem;
    lock = Mutex.create ();
    surface = Hashtbl.create 65536;
    ground = Hashtbl.create 65536;
    hits = 0;
    misses = 0;
  }

let dem t = t.dem

(* ~0.0036 degrees: about 400 m in latitude. *)
let quantum = 276.0

let quantize v = Float.round (v *. quantum)

let key p =
  let qi = int_of_float (quantize (Cisp_geo.Coord.lat p)) in
  let qj = int_of_float (quantize (Cisp_geo.Coord.lon p)) in
  (qi * 1_000_003) lxor qj

(* The cell's representative point.  The cached value must be a pure
   function of the cell — never of whichever query happened to touch
   the cell first — or parallel sweeps would make cache contents (and
   thus LOS verdicts) depend on domain scheduling. *)
let snap p =
  Cisp_geo.Coord.make
    ~lat:(quantize (Cisp_geo.Coord.lat p) /. quantum)
    ~lon:(quantize (Cisp_geo.Coord.lon p) /. quantum)

(* The LOS sweeps query this cache from every pool domain at once, so
   the tables are mutex-protected.  The heavy part (the DEM noise
   evaluation on a miss) runs outside the lock: a raced miss computes
   the same value twice, but both computations are at the snapped cell
   center of the pure DEM, so whichever write lands is identical. *)
let lookup t table compute p =
  let k = key p in
  Mutex.lock t.lock;
  match Hashtbl.find_opt table k with
  | Some v ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.lock;
    v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    let v = compute t.dem (snap p) in
    Mutex.lock t.lock;
    if not (Hashtbl.mem table k) then Hashtbl.add table k v;
    Mutex.unlock t.lock;
    v

let surface_m t p = lookup t t.surface Dem.surface_m p
let elevation_m t p = lookup t t.ground Dem.elevation_m p

let stats t =
  Mutex.lock t.lock;
  let s = (t.hits, t.misses) in
  Mutex.unlock t.lock;
  s
