module Coord = Cisp_geo.Coord

(* ~0.0036 degrees: about 400 m in latitude. *)
let quantum = 276.0

let[@inline] quantize v = Float.round (v *. quantum)

(* The cell's representative point.  The cached value must be a pure
   function of the cell — never of whichever query happened to touch
   the cell first — or parallel sweeps would make cache contents (and
   thus LOS verdicts) depend on domain scheduling. *)
let snap p =
  Coord.make
    ~lat:(quantize (Coord.lat p) /. quantum)
    ~lon:(quantize (Coord.lon p) /. quantum)

(* Cell keys pack the two quantized indices into one immediate int:
   |lat| <= 90 and |lon| <= 180 times [quantum] fit well inside the
   19/20-bit fields, and every key is non-negative. *)
let pack qi qj = ((qi + 0x40000) lsl 20) lor (qj + 0x80000)

(* A sentinel no real cell key can take. *)
let no_cell = -1

(* Per-domain L1 for one store: a direct-mapped cache of [1 lsl bits]
   slots held in two unboxed arrays.  Fixed-size by design — probing,
   filling and evicting are single array accesses, there is no growth
   or rehash, and the hit path allocates nothing.  Everything here is
   domain-private — reached only through [Domain.DLS] — so hits take
   no lock and dirty no shared cache line.  The counters are plain
   ints for the same reason; [stats] reads them cross-domain as
   monotone approximations. *)
type l1 = {
  mask : int;
  keys : int array;          (* [no_cell] marks an empty slot *)
  vals : Float.Array.t;
  mutable hits : int;
  mutable misses : int;
}

let fresh_l1 bits =
  {
    mask = (1 lsl bits) - 1;
    keys = Array.make (1 lsl bits) no_cell;
    vals = Float.Array.create (1 lsl bits);
    hits = 0;
    misses = 0;
  }

(* Fibonacci-style multiplicative mix, keeping the product's high bits
   (the well-mixed ones) so nearby cell keys spread over the slot
   space; pure, so per-domain placement is deterministic. *)
let[@inline] mix key = (key * 0x2545F4914F6CDD1D) land max_int

let[@inline] slot_of l1 key = (mix key lsr 42) land l1.mask

(* The shared level-2 store: linear-probing open addressing over two
   unboxed arrays, mutated and read ONLY under the store lock.  A
   full-scenario sweep inserts millions of cells; compared to a
   [Hashtbl] this allocates nothing per binding (no boxed floats, no
   bucket cons cells — the GC never sees the table fill up) and grows
   by array doubling with at most a handful of reinsertion passes. *)
type open_tbl = {
  mutable shift : int; (* 62 - log2 capacity: [mix key lsr shift] indexes *)
  mutable okeys : int array; (* [no_cell] marks an empty slot *)
  mutable ovals : Float.Array.t;
  mutable count : int;
}

let ot_create bits =
  {
    shift = 62 - bits;
    okeys = Array.make (1 lsl bits) no_cell;
    ovals = Float.Array.create (1 lsl bits);
    count = 0;
  }

(* Slot holding [key], or the empty slot where it would be inserted. *)
let ot_slot ot key =
  let mask = Array.length ot.okeys - 1 in
  let rec go i =
    let k = Array.unsafe_get ot.okeys i in
    if k = key || k = no_cell then i else go ((i + 1) land mask)
  in
  go (mix key lsr ot.shift)

let rec ot_add ot key v =
  if 4 * (ot.count + 1) > 3 * Array.length ot.okeys then begin
    let old_keys = ot.okeys and old_vals = ot.ovals in
    ot.shift <- ot.shift - 1;
    ot.okeys <- Array.make (2 * Array.length old_keys) no_cell;
    ot.ovals <- Float.Array.create (2 * Float.Array.length old_vals);
    ot.count <- 0;
    Array.iteri
      (fun i k -> if k <> no_cell then ot_add ot k (Float.Array.get old_vals i))
      old_keys
  end;
  let i = ot_slot ot key in
  Array.unsafe_set ot.okeys i key;
  Float.Array.unsafe_set ot.ovals i v;
  ot.count <- ot.count + 1

(* One two-level store: the shared exhaustive cell table (level 2,
   mutex on miss only) and the per-domain direct-mapped L1s.  The
   shared table holds every cell ever computed — exactly once, and
   with a value that is a pure function of (DEM, cell) — so its
   contents are bit-identical at any pool width.  L1 evictions are
   harmless: an evicted cell is re-fetched from level 2 under the
   lock, never recomputed twice by the same domain race-free path. *)
type store = {
  fn : Dem.t -> Coord.t -> float;
  lock : Mutex.t;
  cells : open_tbl; (* under [lock] *)
  l1_key : l1 Cisp_util.Pool.Scratch.t;
  reg_lock : Mutex.t;
  l1s : l1 list ref; (* under [reg_lock]; for [stats] *)
}

type t = { dem : Dem.t; surface : store; ground : store }

let make_store fn ~l1_bits ~l2_bits =
  let reg_lock = Mutex.create () in
  let l1s = ref [] in
  let l1_key =
    Cisp_util.Pool.Scratch.create (fun () ->
        let l1 = fresh_l1 l1_bits in
        Mutex.protect reg_lock (fun () -> l1s := l1 :: !l1s);
        l1)
  in
  {
    fn;
    lock = Mutex.create ();
    cells = ot_create l2_bits;
    l1_key;
    reg_lock;
    l1s;
  }

let create dem =
  {
    dem;
    (* A full-scenario LOS sweep touches millions of surface cells:
       size its L1 at 2^20 slots (16 MB/domain) and start the shared
       table large enough to skip the early doublings.  Ground cells
       are only queried at tower bases — keep that store small. *)
    surface = make_store Dem.surface_m ~l1_bits:20 ~l2_bits:21;
    ground = make_store Dem.elevation_m ~l1_bits:14 ~l2_bits:12;
  }

let dem t = t.dem

(* Cell value at the cell's own center: pure in (DEM, cell), identical
   whichever domain computes it. *)
let compute_cell dem store qi qj =
  let lat = Float.min 90.0 (Float.max (-90.0) (float_of_int qi /. quantum)) in
  let lon = float_of_int qj /. quantum in
  store.fn dem (Coord.make ~lat ~lon)

(* L1 miss: consult the shared store under its lock; if the cell is
   genuinely new, compute it OUTSIDE the lock (the DEM evaluation is
   the expensive part, and it is pure — a raced duplicate computes the
   identical value) and publish whichever insert lands first.  Either
   way the value is planted in this domain's L1 slot. *)
(* The critical sections use bare lock/unlock rather than
   [Mutex.protect]: this path runs once per L1 miss — millions of
   times per sweep — and each [protect] call allocates its closure and
   boxes its result.  Nothing inside the sections can raise (probe and
   insert are array arithmetic; the only alloc is table growth). *)
let[@cisp.alloc_ok "miss path: computes and publishes a new cell (table growth, DEM evaluation)"] slow_path
    dem store (l1 : l1) slot key qi qj =
  let ot = store.cells in
  Mutex.lock store.lock;
  let i = ot_slot ot key in
  let found = Array.unsafe_get ot.okeys i = key in
  let published = if found then Float.Array.unsafe_get ot.ovals i else 0.0 in
  Mutex.unlock store.lock;
  let v =
    if found then begin
      l1.hits <- l1.hits + 1;
      published
    end
    else begin
      let computed = compute_cell dem store qi qj in
      (* Re-probe: another domain may have published (or grown the
         table) while we computed.  Keep the winner — it is the
         identical pure value anyway. *)
      Mutex.lock store.lock;
      let i = ot_slot ot key in
      let dup = Array.unsafe_get ot.okeys i = key in
      let v = if dup then Float.Array.unsafe_get ot.ovals i else computed in
      if not dup then ot_add ot key computed;
      Mutex.unlock store.lock;
      if dup then l1.hits <- l1.hits + 1 else l1.misses <- l1.misses + 1;
      v
    end
  in
  Array.unsafe_set l1.keys slot key;
  Float.Array.unsafe_set l1.vals slot v;
  v

(* The L1-hit path is the zero-alloc contract: quantize, pack, probe,
   read — int and floatarray arithmetic only.  The [@cisp.alloc_ok] on
   [slow_path] scopes the contract to hits; a miss may allocate (table
   growth, the DEM evaluation itself). *)
let[@inline] [@cisp.zero_alloc] cell_value dem store (l1 : l1) ~lat ~lon =
  let qi = int_of_float (quantize lat) in
  let qj = int_of_float (quantize lon) in
  let key = pack qi qj in
  let slot = slot_of l1 key in
  if Array.unsafe_get l1.keys slot = key then begin
    l1.hits <- l1.hits + 1;
    Float.Array.unsafe_get l1.vals slot
  end
  else slow_path dem store l1 slot key qi qj

let surface_m_ll t ~lat ~lon =
  cell_value t.dem t.surface (Cisp_util.Pool.Scratch.get t.surface.l1_key) ~lat ~lon

let elevation_m_ll t ~lat ~lon =
  cell_value t.dem t.ground (Cisp_util.Pool.Scratch.get t.ground.l1_key) ~lat ~lon

let surface_m t p = surface_m_ll t ~lat:(Coord.lat p) ~lon:(Coord.lon p)
let elevation_m t p = elevation_m_ll t ~lat:(Coord.lat p) ~lon:(Coord.lon p)

let[@cisp.zero_alloc] surface_samples t ~lats ~lons ~out ~lo ~hi =
  if
    lo < 0 || hi >= Float.Array.length lats
    || hi >= Float.Array.length lons
    || hi >= Float.Array.length out
  then invalid_arg "Dem_cache.surface_samples: index range outside buffers";
  let dem = t.dem and store = t.surface in
  let l1 = Cisp_util.Pool.Scratch.get store.l1_key in
  (* The probe is {!cell_value} with the store sunk into each branch.
     Calling [cell_value] and storing its result would box the hit
     value: the [if] join with [slow_path]'s (boxed) return value
     forces the hit branch to materialize its float, one minor-heap
     block per sample (measured in the generated assembly).  Writing
     [out] inside the branch keeps the hit path a floatarray-to-
     floatarray move. *)
  for i = lo to hi do
    let lat = Float.Array.get lats i and lon = Float.Array.get lons i in
    let qi = int_of_float (quantize lat) in
    let qj = int_of_float (quantize lon) in
    let key = pack qi qj in
    let slot = slot_of l1 key in
    if Array.unsafe_get l1.keys slot = key then begin
      l1.hits <- l1.hits + 1;
      Float.Array.unsafe_set out i (Float.Array.unsafe_get l1.vals slot)
    end
    else Float.Array.unsafe_set out i (slow_path dem store l1 slot key qi qj)
  done

let store_stats store =
  let l1s = Mutex.protect store.reg_lock (fun () -> !(store.l1s)) in
  List.fold_left (fun (h, m) l1 -> (h + l1.hits, m + l1.misses)) (0, 0) l1s

let stats t =
  let sh, sm = store_stats t.surface in
  let gh, gm = store_stats t.ground in
  (sh + gh, sm + gm)

let store_cells store =
  Mutex.protect store.lock (fun () ->
      let ot = store.cells in
      let acc = ref [] in
      for i = Array.length ot.okeys - 1 downto 0 do
        let k = Array.unsafe_get ot.okeys i in
        if k <> no_cell then acc := (k, Float.Array.get ot.ovals i) :: !acc
      done;
      List.sort (fun (a, _) (b, _) -> Int.compare a b) !acc)

let surface_cells t = store_cells t.surface
let ground_cells t = store_cells t.ground
