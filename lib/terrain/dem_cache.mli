(** Quantized, two-level memoization layer over a {!Dem}.

    Line-of-sight screening samples millions of surface heights, most
    of them in dense tower clusters where paths overlap heavily.  This
    cache snaps queries to a ~400 m grid and memoizes heights per grid
    cell, trading negligible accuracy (the synthetic DEM's features
    are tens of km wide) for an order of magnitude in throughput.

    Level 2 is a shared, exhaustive cell table whose mutex is taken
    only on a per-domain miss; each pool domain keeps a private
    direct-mapped level-1 cache (fixed-size unboxed arrays) in
    domain-local storage, so the per-sample hit path is lock-free,
    allocation-free, and touches no shared cache line.  Every cell
    value is a pure function of (DEM, cell) — evaluated at the cell's
    own center — so the shared store's contents, and every height the
    cache ever returns, are bit-identical at any pool width. *)

type t

val create : Dem.t -> t

val dem : t -> Dem.t

val snap : Cisp_geo.Coord.t -> Cisp_geo.Coord.t
(** Center of the ~400 m cell containing the point: the position at
    which cached heights are evaluated.  Exposed for the cell-center
    purity tests. *)

val surface_m : t -> Cisp_geo.Coord.t -> float
(** Memoized [Dem.surface_m], evaluated at the center of the cell
    containing the point — a pure function of the cell, so results
    never depend on query order (or on which pool domain queried the
    cell first). *)

val elevation_m : t -> Cisp_geo.Coord.t -> float
(** Memoized ground elevation (no clutter), also at the cell center. *)

val surface_m_ll : t -> lat:float -> lon:float -> float
(** [surface_m] on raw coordinates: the allocation-free entry for
    callers that carry scalar lat/lon instead of a {!Cisp_geo.Coord.t}. *)

val elevation_m_ll : t -> lat:float -> lon:float -> float

val surface_samples :
  t -> lats:floatarray -> lons:floatarray -> out:floatarray -> lo:int -> hi:int -> unit
(** [surface_samples t ~lats ~lons ~out ~lo ~hi] writes
    [out.(i) <- surface_m_ll t ~lat:lats.(i) ~lon:lons.(i)] for
    [lo <= i <= hi].  One domain-local-storage access and bounds check
    for the whole batch: the profile-sampling hot path of
    {!Cisp_rf.Los}.  Raises [Invalid_argument] if the index range
    falls outside any buffer. *)

val stats : t -> int * int
(** (hits, misses) summed over all domains — for tests and tuning.  A
    miss is a query that had to compute a new cell; racing domains may
    classify a simultaneous first touch either way, so totals are
    exact only for quiescent (or single-domain) caches. *)

val surface_cells : t -> (int * float) list
(** Shared-store contents (packed cell key, height), in ascending key
    order: deterministic, for the width-invariance tests.  Keys are
    opaque. *)

val ground_cells : t -> (int * float) list
