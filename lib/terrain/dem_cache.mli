(** Quantized memoization layer over a {!Dem}.

    Line-of-sight screening samples millions of surface heights, most
    of them in dense tower clusters where paths overlap heavily.  This
    cache snaps queries to a ~400 m grid and memoizes the surface
    height per grid cell, trading negligible accuracy (the synthetic
    DEM's features are tens of km wide) for an order of magnitude in
    throughput. *)

type t

val create : Dem.t -> t

val dem : t -> Dem.t

val surface_m : t -> Cisp_geo.Coord.t -> float
(** Memoized [Dem.surface_m], evaluated at the center of the cell
    containing the point — a pure function of the cell, so results
    never depend on query order (or on which pool domain queried the
    cell first). *)

val elevation_m : t -> Cisp_geo.Coord.t -> float
(** Memoized ground elevation (no clutter), also at the cell center. *)

val stats : t -> int * int
(** (hits, misses) — for tests and tuning. *)
