(** GeoJSON export of designed networks.

    The paper ships map figures (Fig 3, Fig 8) and two animations: the
    hybrid network evolving from mostly-fiber to mostly-MW with budget
    [20], and a year of weather over the network [18].  This module
    produces the underlying geodata: drop the output into any GeoJSON
    viewer to reproduce the figures. *)

val json_escape : string -> string
(** RFC 8259 string escaping: double quote, backslash, and every
    control character below 0x20 (the named short escapes where they
    exist, [\u00XX] otherwise).  City names flow into GeoJSON through
    this. *)

val topology_geojson : Inputs.t -> Topology.t -> string
(** FeatureCollection: one point per site (name, population) and one
    LineString per built MW link, with properties [medium = "mw"],
    link length and stretch.  Site pairs that ride fiber are omitted
    (the paper draws only a few illustrative fiber paths). *)

val topology_with_plan_geojson : Inputs.t -> Topology.t -> Capacity.plan -> string
(** Like {!topology_geojson} with each link's provisioned parallel
    series count as a [series] property — the blue/green/red coloring
    of Fig 3. *)

val budget_evolution :
  Inputs.t -> budgets:int list -> design:(Inputs.t -> budget:int -> Topology.t) ->
  (int * Topology.t * string) list
(** The [20] animation: a topology and its GeoJSON per budget step. *)
