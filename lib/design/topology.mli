(** A designed topology: the set of built MW links plus evaluation.

    Evaluation uses the hybrid routing model of the paper: between any
    pair, traffic takes the shortest path over built MW links and the
    (always available) fiber mesh.  Distances here are
    latency-equivalent km (time = km / c). *)

module Iset : Set.S with type elt = int

type t = {
  inputs : Inputs.t;
  built : (int * int) list;      (** site index pairs, i < j *)
  index : Iset.t;
      (** packed-pair membership mirror of [built]; makes {!is_built}
          O(log built) while [built] keeps the construction order that
          {!distances}'s fold observes *)
  cost : int;                    (** total towers used *)
}

val empty : Inputs.t -> t
val of_links : Inputs.t -> (int * int) list -> t
(** Normalizes pairs to i < j, dedups, sums cost.  Raises
    [Invalid_argument] if a pair has no feasible MW link. *)

val is_built : t -> int -> int -> bool
val link_cost : Inputs.t -> int -> int -> int

val add : t -> int * int -> t
val remove : t -> int * int -> t

val distances : t -> float array array
(** All-pairs latency-equivalent distances over fiber + built links. *)

val distances_incremental : Inputs.t -> float array array -> int * int -> float array array
(** [distances_incremental inputs d (i, j)] is the exact metric after
    additionally building link (i,j), computed in O(n^2) from the
    current metric [d] (fresh matrix; [d] unchanged). *)

val fiber_baseline : Inputs.t -> float array array
(** Metric closure of the fiber mesh alone (the empty topology). *)

val mean_stretch : Inputs.t -> float array array -> float
(** Traffic-weighted mean stretch of a distance matrix: the paper's
    objective sum h_st * D_st / d_st (with h normalized).  Pairs with
    zero geodesic distance contribute stretch 1. *)

val stretch_of : t -> float
(** [mean_stretch] of [distances t]. *)

val pair_stretch : Inputs.t -> float array array -> int -> int -> float

val used_hop_count : t -> int
(** Total tower-tower hops across built links (where hop data exists). *)
