(** The paper's greedy design heuristic (§3.2, "Solution approach").

    Repeatedly add the city-city MW link that most decreases the
    traffic-weighted mean stretch, until the budget is exhausted.  The
    paper runs this with a 2x-inflated budget to produce a candidate
    set for the exact ILP; at full scale the candidate set instead
    feeds {!Local_search}.

    Uses lazy re-evaluation (the benefit of a link only shrinks as the
    network grows), which keeps the full 112-city design in seconds. *)

type rule =
  | Absolute   (** pick the largest stretch decrease (the paper's wording) *)
  | Per_cost   (** largest decrease per tower spent *)

val candidates : Inputs.t -> (int * int) list
(** Pairs whose direct MW link is strictly shorter than their fiber
    path — the only links that can ever carry their own pair's
    traffic. *)

val design : ?rule:rule -> Inputs.t -> budget:int -> Topology.t
(** Greedy selection within [budget] towers.  Default rule
    [Per_cost]. *)

val candidate_set : ?rule:rule -> Inputs.t -> budget:int -> inflation:float -> (int * int) list
(** The paper's pruning step: run greedy at [inflation x budget] and
    return every link it selected, as candidates for exact/local
    optimization. *)

(** {2 Internals shared with {!Local_search}} *)

val weight_matrix : Inputs.t -> float array array
(** w_st = h_st / d_st — the per-pair objective weights. *)

val benefit : Inputs.t -> float array array -> float array array -> int * int -> float
(** [benefit inputs w d (i, j)]: decrease of the un-normalized
    objective sum w_st D_st when link (i,j) is added to metric [d]. *)

val score_candidates :
  Inputs.t -> float array array -> float array array -> budget:int ->
  (int * int) array -> (int * float) option array
(** [score_candidates inputs w d ~budget cands]: per-candidate
    [(cost, benefit)] against metric [d] ([None] when unaffordable or
    useless), computed in parallel on the default {!Cisp_util.Pool} —
    one entry per candidate, in input order.  The round's hot loop,
    exposed for the [par] benchmark. *)

val design_ordered : ?rule:rule -> Inputs.t -> budget:int -> Topology.t * (int * int) list
(** Like {!design}, also returning the links in selection order — the
    order doubles as a quality ranking for seeding local search. *)
