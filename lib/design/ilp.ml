module Model = Cisp_lp.Model
module Milp = Cisp_lp.Milp

type stats = {
  commodities : int;
  flow_vars : int;
  constraints : int;
  nodes_explored : int;
  lp_solves : int;
  milp_status : [ `Optimal | `Feasible_gap of float | `Infeasible | `Unbounded | `No_solution ];
}

type arc = { u : int; v : int; len : float; link : int option (* candidate index, None = fiber *) }

type formulation = {
  model : Model.t;
  x : Model.var array;
  cands : (int * int) array;
  f_commodities : int;
  f_flow_vars : int;
}

let formulate ?(strong_linking = false) ?(oracle_pruning = true) (inputs : Inputs.t) ~budget ~candidates =
  let n = Inputs.n_sites inputs in
  let cands = Array.of_list (List.map (fun (i, j) -> if i < j then (i, j) else (j, i)) candidates) in
  let d = inputs.geodesic_km in
  let o = inputs.fiber_km in
  let m = Model.create () in
  let x = Array.mapi (fun l _ -> Model.binary m (Printf.sprintf "x%d" l)) cands in
  Model.add_constraint m
    (Array.to_list (Array.mapi (fun l (i, j) -> (float_of_int inputs.mw_cost.(i).(j), x.(l))) cands))
    Model.Le (float_of_int budget);
  let eps_rel = 1e-9 in
  let objective_terms = ref [] in
  let flow_vars = ref 0 in
  let commodities = ref 0 in
  let link_usage : (int, (float * Model.var) list ref) Hashtbl.t = Hashtbl.create 64 in
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      let h = inputs.traffic.(s).(t) +. inputs.traffic.(t).(s) in
      if h > 0.0 && d.(s).(t) > 0.0 then begin
        let fiber_direct = o.(s).(t) in
        (* Oracle pruning: an arc survives only if even a geodesic
           lower-bound path through it could beat direct fiber. *)
        let beats_fiber via_len du dv =
          (not oracle_pruning)
          || du +. via_len +. dv <= fiber_direct *. (1.0 +. eps_rel)
        in
        let mw_arcs = ref [] in
        Array.iteri
          (fun l (i, j) ->
            let len = inputs.mw_km.(i).(j) in
            if len < infinity then begin
              if beats_fiber len d.(s).(i) d.(j).(t) then
                mw_arcs := { u = i; v = j; len; link = Some l } :: !mw_arcs;
              if beats_fiber len d.(s).(j) d.(i).(t) then
                mw_arcs := { u = j; v = i; len; link = Some l } :: !mw_arcs
            end)
          cands;
        (* A commodity with no surviving MW arc rides direct fiber no
           matter what is built: a constant, dropped from the model. *)
        if !mw_arcs <> [] then begin
          incr commodities;
          let nodes = Hashtbl.create 16 in
          Hashtbl.replace nodes s ();
          Hashtbl.replace nodes t ();
          List.iter
            (fun a ->
              Hashtbl.replace nodes a.u ();
              Hashtbl.replace nodes a.v ())
            !mw_arcs;
          (* ascending node order: LP column order must not depend on
             table iteration order (degenerate ties in the solver) *)
          let node_list = Cisp_util.Tbl.sorted_keys ~compare:Int.compare nodes in
          let fiber_arcs = ref [] in
          List.iter
            (fun u ->
              List.iter
                (fun v ->
                  if u <> v && o.(u).(v) < infinity
                     && beats_fiber o.(u).(v) d.(s).(u) d.(v).(t)
                  then fiber_arcs := { u; v; len = o.(u).(v); link = None } :: !fiber_arcs)
                node_list)
            node_list;
          let arcs = Array.of_list (!mw_arcs @ !fiber_arcs) in
          (* No explicit upper bound: each bound would cost a tableau
             row, and minimization plus flow conservation already keeps
             optimal flows in [0, 1]. *)
          let fvar =
            Array.mapi (fun k _ -> Model.add_var m (Printf.sprintf "f_%d_%d_%d" s t k)) arcs
          in
          flow_vars := !flow_vars + Array.length fvar;
          let coeff = h /. d.(s).(t) in
          Array.iteri
            (fun k a -> objective_terms := (coeff *. a.len, fvar.(k)) :: !objective_terms)
            arcs;
          List.iter
            (fun node ->
              let rhs = if node = s then 1.0 else if node = t then -1.0 else 0.0 in
              let terms = ref [] in
              Array.iteri
                (fun k a ->
                  if a.u = node then terms := (1.0, fvar.(k)) :: !terms;
                  if a.v = node then terms := (-1.0, fvar.(k)) :: !terms)
                arcs;
              if (not (List.is_empty !terms)) || not (Float.equal rhs 0.0) then
                Model.add_constraint m !terms Model.Eq rhs)
            node_list;
          Array.iteri
            (fun k a ->
              match a.link with
              | None -> ()
              | Some l ->
                if strong_linking then
                  Model.add_constraint m [ (1.0, fvar.(k)); (-1.0, x.(l)) ] Model.Le 0.0
                else begin
                  let bucket =
                    match Hashtbl.find_opt link_usage l with
                    | Some b -> b
                    | None ->
                      let b = ref [] in
                      Hashtbl.add link_usage l b;
                      b
                  in
                  bucket := (1.0, fvar.(k)) :: !bucket
                end)
            arcs
        end
      end
    done
  done;
  if not strong_linking then
    (* ascending link order, for a stable constraint-row order *)
    Cisp_util.Tbl.iter_sorted ~compare:Int.compare
      (fun l bucket ->
        let count = float_of_int (List.length !bucket) in
        Model.add_constraint m ((-.count, x.(l)) :: !bucket) Model.Le 0.0)
      link_usage;
  Model.set_objective m !objective_terms;
  { model = m; x; cands; f_commodities = !commodities; f_flow_vars = !flow_vars }

let design ?(limits = Milp.default_limits) ?strong_linking ?oracle_pruning (inputs : Inputs.t)
    ~budget ~candidates =
  let f = formulate ?strong_linking ?oracle_pruning inputs ~budget ~candidates in
  let outcome = Milp.solve ~limits f.model in
  let built =
    match outcome.Milp.x with
    | None -> []
    | Some sol ->
      let acc = ref [] in
      Array.iteri (fun l v -> if Model.value sol v > 0.5 then acc := f.cands.(l) :: !acc) f.x;
      !acc
  in
  let topo = Topology.of_links inputs built in
  ( topo,
    {
      commodities = f.f_commodities;
      flow_vars = f.f_flow_vars;
      constraints = Model.n_vars f.model;
      nodes_explored = outcome.Milp.nodes_explored;
      lp_solves = outcome.Milp.lp_solves;
      milp_status = outcome.Milp.status;
    } )
