let buf_add = Buffer.add_string

(* Every control character below 0x20 must be escaped for the output
   to be valid JSON (RFC 8259 §7): the named short escapes where they
   exist, \u00XX for the rest. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let point_feature (c : Cisp_data.City.t) =
  Printf.sprintf
    {|{"type":"Feature","geometry":{"type":"Point","coordinates":[%.4f,%.4f]},"properties":{"name":"%s","population":%d}}|}
    (Cisp_geo.Coord.lon c.coord) (Cisp_geo.Coord.lat c.coord) (json_escape c.name) c.population

let link_feature (inputs : Inputs.t) ?series (i, j) =
  let a = inputs.sites.(i).Cisp_data.City.coord and b = inputs.sites.(j).Cisp_data.City.coord in
  let mw = inputs.mw_km.(i).(j) in
  let stretch = mw /. Float.max 1e-9 inputs.geodesic_km.(i).(j) in
  let series_prop = match series with None -> "" | Some k -> Printf.sprintf {|,"series":%d|} k in
  Printf.sprintf
    {|{"type":"Feature","geometry":{"type":"LineString","coordinates":[[%.4f,%.4f],[%.4f,%.4f]]},"properties":{"medium":"mw","length_km":%.1f,"stretch":%.3f%s}}|}
    (Cisp_geo.Coord.lon a) (Cisp_geo.Coord.lat a) (Cisp_geo.Coord.lon b) (Cisp_geo.Coord.lat b)
    mw stretch series_prop

let collection features =
  let b = Buffer.create 4096 in
  buf_add b {|{"type":"FeatureCollection","features":[|};
  List.iteri
    (fun k f ->
      if k > 0 then buf_add b ",";
      buf_add b f)
    features;
  buf_add b "]}";
  Buffer.contents b

let topology_geojson (inputs : Inputs.t) (topo : Topology.t) =
  let sites = Array.to_list (Array.map point_feature inputs.sites) in
  let links = List.map (fun l -> link_feature inputs l) topo.Topology.built in
  collection (sites @ links)

let topology_with_plan_geojson (inputs : Inputs.t) (topo : Topology.t) (plan : Capacity.plan) =
  let series_of =
    let table = Hashtbl.create 64 in
    List.iter
      (fun (lp : Capacity.link_plan) -> Hashtbl.replace table lp.Capacity.link lp.Capacity.series)
      plan.Capacity.links;
    fun pair -> Option.value (Hashtbl.find_opt table pair) ~default:1
  in
  let sites = Array.to_list (Array.map point_feature inputs.sites) in
  let links =
    List.map (fun pair -> link_feature inputs ~series:(series_of pair) pair) topo.Topology.built
  in
  collection (sites @ links)

let budget_evolution (inputs : Inputs.t) ~budgets ~design =
  List.map
    (fun budget ->
      let topo = design inputs ~budget in
      (budget, topo, topology_geojson inputs topo))
    budgets
