module Iset = Set.Make (Int)

type t = {
  inputs : Inputs.t;
  built : (int * int) list;
  index : Iset.t;
  cost : int;
}

let norm (i, j) = if i < j then (i, j) else (j, i)

(* Packed key of a normalized pair for the membership index.  Site
   counts are at most a few hundred; 20 bits each is comfortable. *)
let key (i, j) = (i lsl 20) lor j

(* Monomorphic lexicographic order on link pairs: same order as the
   polymorphic [compare] it replaces, without the runtime structural
   walk (L12). *)
let compare_pair (a, b) (c, d) =
  let c0 = Int.compare a c in
  if c0 <> 0 then c0 else Int.compare b d

let link_cost (inputs : Inputs.t) i j = inputs.mw_cost.(i).(j)

(* The membership index mirrors [built] exactly: a persistent set, so
   the functional [add]/[remove] share structure instead of copying.
   [built] keeps its construction order — [distances] folds over it
   and float relaxation order is observable — while every membership
   probe (greedy re-scoring, capacity routing) is O(log built) on the
   index instead of O(built) on the list. *)
let of_links inputs pairs =
  let pairs = List.sort_uniq compare_pair (List.map norm pairs) in
  List.iter
    (fun (i, j) ->
      if Float.equal inputs.Inputs.mw_km.(i).(j) infinity then
        invalid_arg (Printf.sprintf "Topology.of_links: no MW link %d-%d" i j))
    pairs;
  let cost = List.fold_left (fun acc (i, j) -> acc + link_cost inputs i j) 0 pairs in
  let index = List.fold_left (fun s pair -> Iset.add (key pair) s) Iset.empty pairs in
  { inputs; built = pairs; index; cost }

let empty inputs = { inputs; built = []; index = Iset.empty; cost = 0 }

let is_built t i j = Iset.mem (key (norm (i, j))) t.index

let add t pair =
  let pair = norm pair in
  if Iset.mem (key pair) t.index then t
  else begin
    let i, j = pair in
    {
      t with
      built = pair :: t.built;
      index = Iset.add (key pair) t.index;
      cost = t.cost + link_cost t.inputs i j;
    }
  end

let remove t pair =
  let pair = norm pair in
  if not (Iset.mem (key pair) t.index) then t
  else begin
    let i, j = pair in
    {
      t with
      built = List.filter (( <> ) pair) t.built;
      index = Iset.remove (key pair) t.index;
      cost = t.cost - link_cost t.inputs i j;
    }
  end

(* Below this size the per-pass synchronization of the pool costs more
   than the row updates it spreads out. *)
let par_threshold = 64

(* One row relaxation is ~n flops over contiguous floats — far cheaper
   than a claim of the pool's shared chunk counter.  Batch enough rows
   per claim that each costs on the order of a few thousand flops;
   small matrices fall back to sequential via the pool's short-circuit
   rather than spinning every worker on chunk = 1. *)
let row_chunk n = max 8 (4096 / max 1 n)

(* Metric closure of the complete fiber mesh.  Fiber route matrices
   are already shortest paths over the conduit graph, hence metric;
   one Floyd-Warshall pass guards against non-metric synthetic
   inputs.  For a fixed pivot [k] the row updates are independent
   (row [k] itself is a fixed point of pass [k]: the candidate
   d(k,k) + d(k,j) can never beat d(k,j) with non-negative
   distances), so each pass parallelizes over [i] without changing
   any comparison or store order within a row. *)
let fiber_baseline (inputs : Inputs.t) =
  let n = Inputs.n_sites inputs in
  let d = Array.map Array.copy inputs.fiber_km in
  let pass k i =
    let dik = d.(i).(k) in
    if dik < infinity then begin
      let row = d.(i) and pivot = d.(k) in
      for j = 0 to n - 1 do
        let alt = dik +. pivot.(j) in
        if alt < row.(j) then row.(j) <- alt
      done
    end
  in
  if n < par_threshold then
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        pass k i
      done
    done
  else begin
    let pool = Cisp_util.Pool.get () in
    let min_chunk = row_chunk n in
    for k = 0 to n - 1 do
      Cisp_util.Pool.parallel_for ~min_chunk pool ~n (pass k)
    done
  end;
  d

(* Exact closure after adding one extra edge (i,j,w) to a closed
   metric: any path uses the new edge at most once (positive weights),
   so new_d(s,t) = min(d(s,t), d(s,i)+w+d(j,t), d(s,j)+w+d(i,t)). *)
let distances_incremental (inputs : Inputs.t) d (i, j) =
  let n = Inputs.n_sites inputs in
  let w = inputs.mw_km.(i).(j) in
  if not (w < infinity) then invalid_arg "Topology.distances_incremental: non-finite link length";
  let out = Array.map Array.copy d in
  let relax s =
    let dsi = d.(s).(i) and dsj = d.(s).(j) in
    let row = out.(s) in
    for t = 0 to n - 1 do
      let via_ij = dsi +. w +. d.(j).(t) in
      let via_ji = dsj +. w +. d.(i).(t) in
      let alt = Float.min via_ij via_ji in
      if alt < row.(t) then row.(t) <- alt
    done
  in
  (* Rows of [out] are written independently; [d] is only read. *)
  if n < par_threshold then
    for s = 0 to n - 1 do
      relax s
    done
  else Cisp_util.Pool.parallel_for_default ~min_chunk:(row_chunk n) ~n relax;
  out

let distances t =
  List.fold_left
    (fun d pair -> distances_incremental t.inputs d pair)
    (fiber_baseline t.inputs) t.built

let mean_stretch (inputs : Inputs.t) d =
  let n = Inputs.n_sites inputs in
  let num = ref 0.0 and den = ref 0.0 in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t then begin
        let h = inputs.traffic.(s).(t) in
        if h > 0.0 then begin
          let g = inputs.geodesic_km.(s).(t) in
          let stretch = if g > 0.0 then d.(s).(t) /. g else 1.0 in
          num := !num +. (h *. stretch);
          den := !den +. h
        end
      end
    done
  done;
  if Float.equal !den 0.0 then 1.0 else !num /. !den

let stretch_of t = mean_stretch t.inputs (distances t)

let pair_stretch (inputs : Inputs.t) d s t =
  let g = inputs.geodesic_km.(s).(t) in
  if g > 0.0 then d.(s).(t) /. g else 1.0

let used_hop_count t =
  List.fold_left
    (fun acc (i, j) ->
      match t.inputs.Inputs.mw_links.(i).(j) with
      | Some l -> acc + (List.length l.Cisp_towers.Hops.node_path - 1)
      | None -> acc)
    0 t.built
