type rule = Absolute | Per_cost

let candidates (inputs : Inputs.t) =
  let n = Inputs.n_sites inputs in
  let base = Topology.fiber_baseline inputs in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if inputs.mw_km.(i).(j) < base.(i).(j) then acc := (i, j) :: !acc
    done
  done;
  List.rev !acc

(* Benefit of adding link (i,j) to the metric [d]: total decrease of
   the objective sum_st w_st * D_st where w_st = h_st / d_st. *)
let benefit (inputs : Inputs.t) w d (i, j) =
  let n = Inputs.n_sites inputs in
  let mw = inputs.mw_km.(i).(j) in
  let total = ref 0.0 in
  for s = 0 to n - 1 do
    let dsi = d.(s).(i) and dsj = d.(s).(j) in
    let ws = w.(s) and ds = d.(s) in
    for t = 0 to n - 1 do
      let wst = ws.(t) in
      if wst > 0.0 then begin
        let alt = Float.min (dsi +. mw +. d.(j).(t)) (dsj +. mw +. d.(i).(t)) in
        let cur = ds.(t) in
        if alt < cur then total := !total +. (wst *. (cur -. alt))
      end
    done
  done;
  !total

let weight_matrix (inputs : Inputs.t) =
  let n = Inputs.n_sites inputs in
  let w = Array.make_matrix n n 0.0 in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t && inputs.geodesic_km.(s).(t) > 0.0 then
        w.(s).(t) <- inputs.traffic.(s).(t) /. inputs.geodesic_km.(s).(t)
    done
  done;
  w

let score rule cost b = match rule with Absolute -> b | Per_cost -> b /. float_of_int (max 1 cost)

(* Initial scoring of every affordable candidate against the metric
   [d].  Each candidate's benefit is a self-contained O(n^2) scan, so
   the array computes in parallel; entry [idx] is [Some (cost, benefit)]
   for candidates worth pushing, in the same order as [cands]. *)
let score_candidates (inputs : Inputs.t) w d ~budget cands =
  Cisp_util.Telemetry.with_span "greedy.score" (fun () ->
      Cisp_util.Telemetry.add "greedy.candidates" (Array.length cands);
      Cisp_util.Pool.parallel_map_array (Cisp_util.Pool.get ())
        (fun (i, j) ->
          let c = Topology.link_cost inputs i j in
          if c > budget then None
          else begin
            let b = benefit inputs w d (i, j) in
            if b > 1e-15 then Some (c, b) else None
          end)
        cands)

let design_ordered ?(rule = Per_cost) (inputs : Inputs.t) ~budget =
  Cisp_util.Telemetry.with_span "greedy.design" (fun () ->
  let cands = Array.of_list (candidates inputs) in
  let w = weight_matrix inputs in
  let d = ref (Topology.fiber_baseline inputs) in
  let topo = ref (Topology.empty inputs) in
  (* Lazy greedy: heap keyed by negated (possibly stale) score.  The
     scores come from the parallel pass; pushing in candidate order
     keeps the heap bit-identical to a sequential build. *)
  let heap = Cisp_graph.Heap.create () in
  Array.iteri
    (fun idx scored ->
      match scored with
      | None -> ()
      | Some (c, b) ->
        let i, j = cands.(idx) in
        Cisp_graph.Heap.push heap (-.score rule c b) ((i, j), b))
    (score_candidates inputs w !d ~budget cands);
  let spent = ref 0 in
  let order = ref [] in
  let rec step () =
    match Cisp_graph.Heap.pop heap with
    | None -> ()
    | Some (neg_stale, ((i, j), _)) ->
      let c = Topology.link_cost inputs i j in
      if !spent + c > budget then step () (* cannot afford; try others *)
      else begin
        let b = benefit inputs w !d (i, j) in
        if b <= 1e-15 then step ()
        else begin
          let s = score rule c b in
          let next_best =
            match Cisp_graph.Heap.peek heap with Some (k, _) -> -.k | None -> neg_infinity
          in
          if s >= next_best -. 1e-15 then begin
            (* Fresh score still wins: take it. *)
            topo := Topology.add !topo (i, j);
            order := (i, j) :: !order;
            spent := !spent + c;
            d := Topology.distances_incremental inputs !d (i, j);
            step ()
          end
          else begin
            ignore neg_stale;
            Cisp_graph.Heap.push heap (-.s) ((i, j), b);
            step ()
          end
        end
      end
  in
  step ();
  if Cisp_util.Telemetry.enabled () then
    Cisp_util.Telemetry.add "greedy.links_built" (List.length !order);
  (!topo, List.rev !order))

let design ?rule inputs ~budget = fst (design_ordered ?rule inputs ~budget)

let candidate_set ?rule inputs ~budget ~inflation =
  let inflated = int_of_float (Float.ceil (float_of_int budget *. inflation)) in
  snd (design_ordered ?rule inputs ~budget:inflated)
