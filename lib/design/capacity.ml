module Hops = Cisp_towers.Hops
module Capacity_rf = Cisp_rf.Capacity
module Graph = Cisp_graph.Graph
module Query = Cisp_graph.Query

type link_plan = { link : int * int; load_gbps : float; series : int; hops : int }

type plan = {
  links : link_plan list;
  mw_carried_fraction : float;
  hops_total : int;
  hop_classes : (int * int) list;
  radios : int;
  new_towers : int;
  rented_towers : int;
}


(* Site-level routing graph: complete fiber mesh plus built MW links. *)
let routing_graph (inputs : Inputs.t) (topo : Topology.t) =
  let n = Inputs.n_sites inputs in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if inputs.fiber_km.(i).(j) < infinity then
        Graph.add_undirected g i j inputs.fiber_km.(i).(j)
    done
  done;
  List.iter
    (fun (i, j) -> Graph.add_undirected g i j inputs.mw_km.(i).(j))
    topo.Topology.built;
  g

(* Weight of the cheapest parallel edge u -> v — exactly the step a
   shortest path takes between consecutive nodes (relaxation keeps the
   minimum of parallel edges). *)
let min_edge_weight g u v =
  List.fold_left
    (fun best (e : Graph.edge) -> if e.Graph.dst = v then Float.min best e.Graph.weight else best)
    infinity (Graph.succ g u)

(* A path step u -> v rides the MW link iff the pair is built and the
   MW length is the (tolerance-matched) cheapest medium — same
   predicate the prev-tree walks used on [dist v -. dist u]. *)
let mw_step inputs (topo : Topology.t) g u v =
  Topology.is_built topo u v
  && Float.abs (min_edge_weight g u v -. inputs.Inputs.mw_km.(u).(v)) < 1e-6

(* Route every positive-demand commodity through the query facade (one
   many-to-many over the demand support: plain Dijkstra rows below the
   engine threshold, CH buckets above — identical paths either way)
   and hand each (s, t, demand, node path) to [f]. *)
let iter_demand_routes g ~demands ~f =
  let n = Array.length demands in
  let has_out = Array.make n false and has_in = Array.make n false in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if t <> s && demands.(s).(t) > 0.0 then begin
        has_out.(s) <- true;
        has_in.(t) <- true
      end
    done
  done;
  let collect flags = Array.of_list (List.filter (Array.get flags) (List.init n Fun.id)) in
  let sources = collect has_out and targets = collect has_in in
  let q = Query.prepare g in
  let routes = Query.many_to_many_paths q ~sources ~targets in
  Array.iteri
    (fun si s ->
      Array.iteri
        (fun ti t ->
          let h = demands.(s).(t) in
          if t <> s && h > 0.0 then begin
            match routes.(si).(ti) with None -> () | Some (_, path) -> f s t h path
          end)
        targets)
    sources

let rec iter_steps f = function
  | u :: (v :: _ as rest) ->
    f u v;
    iter_steps f rest
  | _ -> ()

let route_loads (inputs : Inputs.t) (topo : Topology.t) ~aggregate_gbps =
  let demands = Cisp_traffic.Matrix.scale_to_gbps inputs.traffic ~aggregate_gbps in
  let g = routing_graph inputs topo in
  (* Loads are tracked per direction: MW links are duplex, so the
     binding figure for capacity is the busier direction. *)
  let loads : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  iter_demand_routes g ~demands ~f:(fun _s _t h path ->
      iter_steps
        (fun u v ->
          if mw_step inputs topo g u v then
            Hashtbl.replace loads (u, v)
              (h +. Option.value (Hashtbl.find_opt loads (u, v)) ~default:0.0))
        path);
  let directional (i, j) =
    Float.max
      (Option.value (Hashtbl.find_opt loads (i, j)) ~default:0.0)
      (Option.value (Hashtbl.find_opt loads (j, i)) ~default:0.0)
  in
  List.map (fun pair -> (pair, directional pair)) topo.Topology.built

let mw_fraction (inputs : Inputs.t) (topo : Topology.t) =
  (* Fraction of (normalized) traffic whose shortest path uses >= 1 MW link. *)
  let g = routing_graph inputs topo in
  let mw = ref 0.0 and all = ref 0.0 in
  iter_demand_routes g ~demands:inputs.traffic ~f:(fun _s _t h path ->
      all := !all +. h;
      let used = ref false in
      iter_steps (fun u v -> if mw_step inputs topo g u v then used := true) path;
      if !used then mw := !mw +. h);
  if Float.equal !all 0.0 then 0.0 else !mw /. !all

let link_hops (inputs : Inputs.t) (i, j) =
  match inputs.Inputs.mw_links.(i).(j) with
  | Some l -> List.length l.Hops.node_path - 1
  | None ->
    (* Synthetic instances: assume a 60 km mean hop. *)
    max 1 (int_of_float (Float.ceil (inputs.mw_km.(i).(j) /. 60.0)))

let link_hop_pairs (inputs : Inputs.t) (i, j) =
  match inputs.Inputs.mw_links.(i).(j) with
  | Some l -> Hops.hops_of_link l
  | None -> List.init (link_hops inputs (i, j)) (fun k -> (-1 - k, -2 - k))

let spare_from_registry =
  (* Memoize one spatial index per registry shape. *)
  let grids : (int, int Cisp_geo.Grid.t) Hashtbl.t = Hashtbl.create 4 in
  fun (h : Hops.t) ->
    let key = Hashtbl.hash (Array.length h.Hops.towers, h.Hops.n_sites) in
    let grid =
      match Hashtbl.find_opt grids key with
      | Some g -> g
      | None ->
        let g = Cisp_geo.Grid.create ~cell_deg:0.25 in
        Array.iteri (fun k (tw : Cisp_towers.Tower.t) -> Cisp_geo.Grid.add g tw.position k) h.Hops.towers;
        Cisp_geo.Grid.freeze g;
        Hashtbl.add grids key g;
        g
    in
    fun u v ->
      let pos node =
        if node < h.Hops.n_sites then h.Hops.sites.(node).Cisp_data.City.coord
        else h.Hops.towers.(node - h.Hops.n_sites).Cisp_towers.Tower.position
      in
      if u < 0 || v < 0 then 0
      else begin
        let mid = Cisp_geo.Geodesy.midpoint (pos u) (pos v) in
        let count = ref 0 in
        Cisp_geo.Grid.iter_nearby grid mid ~radius_km:15.0 (fun _ _ -> incr count);
        (* Each extra series needs towers at both ends; assume half the
           nearby towers are usable and two are needed per series. *)
        min 8 (!count / 4)
      end

let plan ?spare_series_at_hop (inputs : Inputs.t) (topo : Topology.t) ~aggregate_gbps =
  Cisp_util.Telemetry.with_span "capacity.plan" (fun () ->
  let spare = match spare_series_at_hop with Some f -> f | None -> fun _ _ -> 0 in
  let loads = route_loads inputs topo ~aggregate_gbps in
  let links =
    List.map
      (fun ((i, j), load_gbps) ->
        let series = max 1 (Capacity_rf.series_for_gbps (Float.max load_gbps 1e-9)) in
        { link = (i, j); load_gbps; series; hops = link_hops inputs (i, j) })
      loads
  in
  let hop_classes = Hashtbl.create 8 in
  let radios = ref 0 in
  let new_towers = ref 0 in
  let rented = ref 0 in
  let hops_total = ref 0 in
  List.iter
    (fun lp ->
      let i, j = lp.link in
      radios := !radios + (lp.hops * lp.series);
      hops_total := !hops_total + lp.hops;
      (* Base series: interior towers along the link, rented. *)
      (match inputs.Inputs.mw_links.(i).(j) with
      | Some l -> rented := !rented + l.Hops.tower_count
      | None -> rented := !rented + lp.hops - 1);
      let extra = lp.series - 1 in
      List.iter
        (fun (u, v) ->
          let sp = spare u v in
          let reused = min extra sp in
          let new_per_end = max 0 (extra - sp) in
          rented := !rented + (2 * reused);
          new_towers := !new_towers + (2 * new_per_end);
          Hashtbl.replace hop_classes new_per_end
            (1 + Option.value (Hashtbl.find_opt hop_classes new_per_end) ~default:0))
        (link_hop_pairs inputs lp.link))
    links;
  let classes = Cisp_util.Tbl.sorted_bindings ~compare:Int.compare hop_classes in
  if Cisp_util.Telemetry.enabled () then begin
    Cisp_util.Telemetry.add "capacity.links" (List.length links);
    Cisp_util.Telemetry.add "capacity.radios" !radios
  end;
  {
    links;
    mw_carried_fraction = mw_fraction inputs topo;
    hops_total = !hops_total;
    hop_classes = classes;
    radios = !radios;
    new_towers = !new_towers;
    rented_towers = !rented + !new_towers (* new towers also incur upkeep ~ rent *);
  })

let total_cost_usd cost plan =
  Cost.total_usd cost ~radios:plan.radios ~new_towers:plan.new_towers
    ~rented_towers:plan.rented_towers

let cost_per_gb cost plan ~aggregate_gbps =
  Cost.cost_per_gb cost ~total_usd:(total_cost_usd cost plan) ~aggregate_gbps
