(* cISP command-line interface.

   Subcommands:
     design   - run the design pipeline and print the topology summary
     weather  - year-long weather sweep over a designed network
     econ     - the paper's cost-benefit table
     hft      - the Chicago-NJ HFT relay loss reconstruction *)

open Cmdliner
open Cisp

(* ---------- shared options ---------- *)

let region_conv =
  let parse = function
    | "us" -> Ok `Us
    | "europe" | "eu" -> Ok `Europe
    | s -> Error (`Msg (Printf.sprintf "unknown region %S (us | europe)" s))
  in
  let print ppf r = Format.pp_print_string ppf (match r with `Us -> "us" | `Europe -> "europe") in
  Arg.conv (parse, print)

let region_t =
  Arg.(value & opt region_conv `Us & info [ "region" ] ~docv:"REGION" ~doc:"us or europe")

let sites_t =
  Arg.(value & opt (some int) None & info [ "sites" ] ~docv:"N" ~doc:"Top-N population centers (default: all)")

let budget_t =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"TOWERS" ~doc:"Tower budget (default: 27 per site)")

let gbps_t =
  Arg.(value & opt float 100.0 & info [ "gbps" ] ~docv:"GBPS" ~doc:"Aggregate capacity to provision")

let range_t =
  Arg.(value & opt float 100.0 & info [ "range" ] ~docv:"KM" ~doc:"Max microwave hop range")

let height_t =
  Arg.(value & opt float 1.0 & info [ "height-fraction" ] ~docv:"F" ~doc:"Usable fraction of tower height")

let geojson_t =
  Arg.(value & opt (some string) None & info [ "geojson" ] ~docv:"FILE" ~doc:"Write the designed network as GeoJSON")

(* Pool width for the parallel hot paths (APSP, candidate scoring, LOS
   sweeps, weather trials).  Results are bit-identical at any width;
   default: $(b,CISP_JOBS) or the recommended domain count. *)
let jobs_t =
  let doc = "Worker domains for the parallel hot paths (default: CISP_JOBS or all cores). \
             Results are independent of this setting." in
  Term.(
    const (fun jobs -> Option.iter Util.Pool.set_default_jobs jobs)
    $ Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc))

(* Observability: --trace streams a Chrome-trace JSONL file at exit,
   --metrics prints the span/counter summary.  Neither changes any
   result (the telemetry layer only observes). *)
let telemetry_t =
  let trace_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome-trace-compatible JSONL event log to $(docv) \
                (also honored via $(b,CISP_TRACE))")
  in
  let metrics_t =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print a telemetry summary (span timings, counters, distributions) at exit")
  in
  Term.(
    const (fun trace metrics ->
        Util.Telemetry.init_from_env ();
        Option.iter Util.Telemetry.enable_trace trace;
        if metrics then Util.Telemetry.enable_metrics ())
    $ trace_t $ metrics_t)

let finish_telemetry () = Util.Telemetry.finish ~ppf:Format.std_formatter ()

let config_of region sites range height =
  let base =
    match region with
    | `Us -> Design.Scenario.default_config
    | `Europe -> Design.Scenario.europe_config
  in
  { base with Design.Scenario.n_sites = sites; max_range_km = range; height_fraction = height }

let effective_budget budget sites =
  match budget with Some b -> b | None -> 27 * Array.length sites

(* ---------- design ---------- *)

let design_cmd =
  let run () () region sites budget gbps range height geojson =
    let config = config_of region sites range height in
    Printf.printf "building artifacts...\n%!";
    let a = Design.Scenario.artifacts ~config () in
    let inputs = Design.Scenario.population_inputs a in
    let budget = effective_budget budget a.Design.Scenario.sites in
    Printf.printf "designing (%d sites, %d-tower budget)...\n%!"
      (Array.length a.Design.Scenario.sites) budget;
    let topo = Design.Scenario.design inputs ~budget in
    Printf.printf "links: %d   towers: %d   stretch: %.3f\n"
      (List.length topo.Design.Topology.built)
      topo.Design.Topology.cost
      (Design.Topology.stretch_of topo);
    let spare = Design.Capacity.spare_from_registry a.Design.Scenario.hops in
    let plan = Design.Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:gbps in
    Printf.printf "provisioned %.0f Gbps: %d hops, %d radios, %d new towers\n" gbps
      plan.Design.Capacity.hops_total plan.Design.Capacity.radios plan.Design.Capacity.new_towers;
    Printf.printf "cost per GB: $%.2f\n"
      (Design.Capacity.cost_per_gb Design.Cost.default plan ~aggregate_gbps:gbps);
    (match geojson with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Design.Export.topology_with_plan_geojson inputs topo plan);
      close_out oc;
      Printf.printf "wrote %s\n" file);
    finish_telemetry ()
  in
  Cmd.v
    (Cmd.info "design" ~doc:"Design a cISP topology (paper sections 3-4)")
    Term.(
      const run $ jobs_t $ telemetry_t $ region_t $ sites_t $ budget_t $ gbps_t $ range_t
      $ height_t $ geojson_t)

(* ---------- weather ---------- *)

let weather_cmd =
  let intervals_t =
    Arg.(value & opt int 365 & info [ "intervals" ] ~docv:"N" ~doc:"Weather intervals over the year")
  in
  let run () () region sites budget intervals =
    let config = config_of region sites 100.0 1.0 in
    let a = Design.Scenario.artifacts ~config () in
    let inputs = Design.Scenario.population_inputs a in
    let budget = effective_budget budget a.Design.Scenario.sites in
    let topo = Design.Scenario.design inputs ~budget in
    let climate =
      match region with
      | `Us -> Weather.Rainfield.us_climate
      | `Europe -> Weather.Rainfield.eu_climate
    in
    let r = Weather.Year.run ~intervals ~climate ~hops:a.Design.Scenario.hops inputs topo in
    Printf.printf "%d intervals, %.1f failed links per interval (of %d built)\n"
      r.Weather.Year.intervals r.Weather.Year.mean_failed_links
      (List.length topo.Design.Topology.built);
    let med f = Util.Stats.median (Array.map f r.Weather.Year.per_pair) in
    Printf.printf "median pair stretch: best %.3f | p99 %.3f | worst %.3f | fiber %.3f\n"
      (med (fun p -> p.Weather.Year.best))
      (med (fun p -> p.Weather.Year.p99))
      (med (fun p -> p.Weather.Year.worst))
      (med (fun p -> p.Weather.Year.fiber));
    finish_telemetry ()
  in
  Cmd.v
    (Cmd.info "weather" ~doc:"Year-long precipitation sweep (paper section 6.1)")
    Term.(const run $ jobs_t $ telemetry_t $ region_t $ sites_t $ budget_t $ intervals_t)

(* ---------- scenarios ---------- *)

let scenarios_cmd =
  let intervals_t =
    Arg.(value & opt int 8 & info [ "intervals" ] ~docv:"N" ~doc:"Trials per multi-interval scenario")
  in
  let k_t =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Disjoint paths per commodity for the multipath schemes")
  in
  let csv_t =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc:"Write the stretch/availability frontier as CSV")
  in
  let run () () region sites budget gbps intervals k csv =
    let config = config_of region sites 100.0 1.0 in
    let a = Design.Scenario.artifacts ~config () in
    let inputs = Design.Scenario.population_inputs a in
    let budget = effective_budget budget a.Design.Scenario.sites in
    let topo = Design.Scenario.design inputs ~budget in
    let spare = Design.Capacity.spare_from_registry a.Design.Scenario.hops in
    let plan = Design.Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:gbps in
    let model =
      { Sim.Routing.inputs; topology = topo;
        mw_gbps = Sim.Builder.provisioned_mw_gbps plan;
        fiber_gbps = Sim.Builder.default_config.Sim.Builder.fiber_gbps }
    in
    let demands =
      Traffic.Matrix.scale_to_gbps inputs.Design.Inputs.traffic ~aggregate_gbps:gbps
    in
    let climate =
      match region with
      | `Us -> Weather.Rainfield.us_climate
      | `Europe -> Weather.Rainfield.eu_climate
    in
    (* Aim the hurricane at the middle of the deployment. *)
    let hurricane_center =
      let n = Array.length a.Design.Scenario.sites in
      let lat = ref 0.0 and lon = ref 0.0 in
      Array.iter
        (fun c ->
          lat := !lat +. c.Data.City.coord.Geo.Coord.lat;
          lon := !lon +. c.Data.City.coord.Geo.Coord.lon)
        a.Design.Scenario.sites;
      Geo.Coord.make ~lat:(!lat /. float_of_int n) ~lon:(!lon /. float_of_int n)
    in
    let suite = Weather.Scenarios.standard_suite ~intervals ~climate ~hurricane_center () in
    let schemes = Weather.Scenarios.default_schemes ~k in
    let results =
      List.map
        (fun spec ->
          Weather.Scenarios.run ~schemes ~hops:a.Design.Scenario.hops ~model
            ~demands_gbps:demands spec)
        suite
    in
    Printf.printf "%-18s %-20s %-6s %-8s %-8s %-8s\n" "scenario" "scheme" "avail" "stretch" "p99" "worst";
    List.iter
      (fun r ->
        List.iter
          (fun s ->
            Printf.printf "%-18s %-20s %.4f %-8.3f %-8.3f %-8.3f\n" r.Weather.Scenarios.name
              s.Weather.Scenarios.scheme s.Weather.Scenarios.availability
              s.Weather.Scenarios.mean_stretch s.Weather.Scenarios.p99_stretch
              s.Weather.Scenarios.worst_stretch)
          r.Weather.Scenarios.schemes)
      results;
    (match csv with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Weather.Scenarios.frontier_csv results);
      close_out oc;
      Printf.printf "wrote %s\n" file);
    finish_telemetry ()
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:"Failure-scenario suite: stretch/availability frontier per routing scheme")
    Term.(
      const run $ jobs_t $ telemetry_t $ region_t $ sites_t $ budget_t $ gbps_t $ intervals_t
      $ k_t $ csv_t)

(* ---------- econ ---------- *)

let econ_cmd =
  let cost_t =
    Arg.(value & opt float 0.81 & info [ "cost-per-gb" ] ~docv:"USD" ~doc:"Network cost per GB")
  in
  let run cost_per_gb =
    Printf.printf "%-14s %-22s %s\n" "application" "value per GB" "exceeds cost?";
    List.iter
      (fun v ->
        Printf.printf "%-14s $%.2f - $%-14.2f %b\n" v.Apps.Econ.application
          v.Apps.Econ.value_per_gb.Apps.Econ.low v.Apps.Econ.value_per_gb.Apps.Econ.high
          v.Apps.Econ.exceeds_cost)
      (Apps.Econ.summary ~cost_per_gb)
  in
  Cmd.v (Cmd.info "econ" ~doc:"Cost-benefit table (paper section 8)") Term.(const run $ cost_t)

(* ---------- hft ---------- *)

let hft_cmd =
  let run () =
    let r = Weather.Hft.run () in
    Printf.printf "Chicago-NJ relay, %d trading minutes incl. a hurricane window:\n" r.Weather.Hft.minutes;
    Printf.printf "mean loss %.1f%%, median %.1f%% (paper: 16.1%% / 1.4%%)\n"
      (100.0 *. r.Weather.Hft.mean_loss) (100.0 *. r.Weather.Hft.median_loss);
    finish_telemetry ()
  in
  Cmd.v (Cmd.info "hft" ~doc:"HFT relay loss reconstruction (paper section 2)") Term.(const run $ telemetry_t)

let () =
  let doc = "cISP: a speed-of-light ISP designer (NSDI 2022 reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "cisp" ~doc) [ design_cmd; weather_cmd; scenarios_cmd; econ_cmd; hft_cmd ]))
