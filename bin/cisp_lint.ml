(* cisp_lint: typed-AST static analysis for the cISP tree.

   Walks the .cmt/.cmti files dune already produces and enforces the
   repo's unit-safety, partiality and effect rules (L1-L15, see
   lib/lint).  L1-L6 are per-expression; L7-L15 consume the
   interprocedural call graph and effect summaries.  Normally driven
   by `dune build @lint`, which runs it from the build root after
   everything is compiled. *)

module Diag = Cisp_linter.Diag
module Allowlist = Cisp_linter.Allowlist
module Engine = Cisp_linter.Engine
module Hotpaths = Cisp_linter.Hotpaths

let usage =
  "cisp_lint [options] [ROOT...]\n\n\
   With no ROOT arguments, lints the repo under the current directory\n\
   using the checked-in policy (lib/ strictly; bin/, bench/, examples/\n\
   for unit-safety only; pool closures, public raises and pipeline\n\
   determinism interprocedurally).  With ROOT arguments, applies\n\
   --rules to all .cmt/.cmti files found under the given directories.\n\n\
   Options:"

let () =
  let allowlist_path = ref "" in
  let hotpaths_path = ref "" in
  let rules_csv = ref "L1,L2,L3,L4,L5,L6,L7,L8,L9,L10,L11,L12,L13,L14,L15" in
  let lock_graph_path = ref "" in
  let verbose = ref false in
  let list_rules = ref false in
  let json = ref false in
  let check_stale = ref false in
  let prune_stale = ref false in
  let roots = ref [] in
  let spec =
    [
      ("--allowlist", Arg.Set_string allowlist_path, "FILE suppression list (RULE FILE SYMBOL per line)");
      ("--hotpaths", Arg.Set_string hotpaths_path, "FILE zero-alloc registry (canonical NAME per line); default: ./lint.hotpaths in repo mode");
      ("--rules", Arg.Set_string rules_csv, "CSV rules to apply in explicit-ROOT mode (default: all)");
      ("--verbose", Arg.Set verbose, " also report suppressed diagnostics");
      ("--json", Arg.Set json, " print diagnostics as JSON Lines (one object per finding)");
      ("--lock-graph", Arg.Set_string lock_graph_path, "FILE write the derived lock-acquisition graph as Graphviz DOT");
      ("--check-stale", Arg.Set check_stale, " fail when allowlist entries match no diagnostic");
      ("--prune-stale", Arg.Set prune_stale, " rewrite the allowlist dropping stale entries");
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  Arg.parse spec (fun r -> roots := r :: !roots) usage;
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%s  %s\n" (Diag.rule_id r) (Diag.rule_doc r))
      Diag.all_rules;
    exit 0
  end;
  let allowlist =
    if String.equal !allowlist_path "" then Allowlist.empty
    else
      match Allowlist.load !allowlist_path with
      | Ok t -> t
      | Error msg ->
          Printf.eprintf "cisp_lint: bad allowlist: %s\n" msg;
          exit 2
  in
  (* validated up front so a typo'd --rules errors in repo mode too,
     where the checked-in policy overrides the rule selection *)
  let rules =
    String.split_on_char ',' !rules_csv
    |> List.filter_map (fun s ->
           if String.equal (String.trim s) "" then None
           else
             match Diag.rule_of_string s with
             | Some r -> Some r
             | None ->
                 Printf.eprintf "cisp_lint: unknown rule %S\n" s;
                 exit 2)
  in
  let hotpaths =
    if String.equal !hotpaths_path "" then None
    else
      match Hotpaths.load !hotpaths_path with
      | Ok entries -> Some (Hotpaths.names entries)
      | Error msg ->
          Printf.eprintf "cisp_lint: bad hotpaths registry: %s\n" msg;
          exit 2
  in
  let lock_dot =
    if String.equal !lock_graph_path "" then None else Some !lock_graph_path
  in
  let report =
    match List.rev !roots with
    | [] ->
        if not (Sys.file_exists "lib") then begin
          Printf.eprintf
            "cisp_lint: no ROOT given and no lib/ here; run from the build root or pass directories\n";
          exit 2
        end;
        Engine.run_repo ~allowlist ?hotpaths ?lock_dot ~root:"." ()
    | roots -> Engine.run ~allowlist ?hotpaths ?lock_dot ~rules roots
  in
  List.iter (fun e -> Printf.eprintf "cisp_lint: warning: %s\n" e) report.Engine.errors;
  let emit = if !json then fun d -> print_endline (Diag.to_json d)
             else fun d -> print_endline (Diag.to_string d)
  in
  List.iter emit report.Engine.diagnostics;
  if !verbose && not !json then
    List.iter
      (fun d -> Printf.printf "suppressed: %s\n" (Diag.to_string d))
      report.Engine.suppressed;
  let stale = report.Engine.stale in
  if (!check_stale || !prune_stale) && stale <> [] then begin
    List.iter
      (fun (e : Allowlist.entry) ->
        Printf.eprintf
          "cisp_lint: stale allowlist entry (%s:%d matches nothing): %s\n"
          !allowlist_path e.Allowlist.lineno (Allowlist.to_string e))
      stale;
    if !prune_stale then
      match Allowlist.prune ~path:!allowlist_path stale with
      | Ok n -> Printf.eprintf "cisp_lint: pruned %d stale entr%s from %s\n" n (if n = 1 then "y" else "ies") !allowlist_path
      | Error msg ->
          Printf.eprintf "cisp_lint: could not prune: %s\n" msg;
          exit 2
  end;
  if not !json then
    Printf.printf "cisp_lint: %d unit(s) checked, %d violation(s), %d suppressed\n"
      report.Engine.units_checked
      (List.length report.Engine.diagnostics)
      (List.length report.Engine.suppressed);
  let code = Engine.exit_code report in
  (* stale entries fail a --check-stale run (lint debt), but a prune
     just fixed them *)
  let code =
    if code = 0 && !check_stale && (not !prune_stale) && stale <> [] then 1
    else code
  in
  exit code
