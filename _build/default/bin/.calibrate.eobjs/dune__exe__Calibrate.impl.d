bin/calibrate.ml: Array Cisp_data Cisp_geo Cisp_terrain Cisp_towers Cisp_util Format List Printf String Unix
