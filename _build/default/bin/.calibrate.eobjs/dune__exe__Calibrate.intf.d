bin/calibrate.mli:
