bin/design_probe.mli:
