(* Dev tool: exercise the design pipeline at small and medium scale. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let open Cisp_design in
  (* Small synthetic instance: 7 sites on a ring + center. *)
  let sites =
    Array.of_list
      (List.init 7 (fun i ->
           let angle = float_of_int i *. 51.4 in
           let c = Cisp_geo.Geodesy.destination
               (Cisp_geo.Coord.make ~lat:39.0 ~lon:(-95.0))
               ~bearing_deg:angle ~distance_km:(300.0 +. (100.0 *. float_of_int (i mod 3)))
           in
           Cisp_data.City.make (Printf.sprintf "S%d" i)
             ~lat:(Cisp_geo.Coord.lat c) ~lon:(Cisp_geo.Coord.lon c)
             ~population:(100_000 * (i + 1))))
  in
  let traffic = Cisp_traffic.Matrix.population_product sites in
  let inputs = Inputs.synthetic ~sites ~mw_stretch:1.02 ~mw_cost_per_km:0.02 ~fiber_stretch:1.9 ~traffic in
  let budget = 30 in
  let candidates = Greedy.candidates inputs in
  Printf.printf "synthetic n=7: %d candidates\n%!" (List.length candidates);
  let greedy, tg = time (fun () -> Greedy.design inputs ~budget) in
  Printf.printf "greedy: stretch=%.4f cost=%d links=%d (%.2fs)\n%!"
    (Topology.stretch_of greedy) greedy.Topology.cost (List.length greedy.Topology.built) tg;
  let ls, tl = time (fun () -> Local_search.improve inputs ~budget ~candidates greedy) in
  Printf.printf "greedy+ls: stretch=%.4f cost=%d (%.2fs)\n%!" (Topology.stretch_of ls) ls.Topology.cost tl;
  let (ilp, stats), ti = time (fun () -> Ilp.design inputs ~budget ~candidates) in
  Printf.printf "ilp: stretch=%.4f cost=%d links=%d nodes=%d lps=%d status=%s (%.2fs)\n%!"
    (Topology.stretch_of ilp) ilp.Topology.cost (List.length ilp.Topology.built)
    stats.Ilp.nodes_explored stats.Ilp.lp_solves
    (match stats.Ilp.milp_status with
     | `Optimal -> "optimal" | `Feasible_gap g -> Printf.sprintf "gap %.3f" g
     | `Infeasible -> "infeasible" | `Unbounded -> "unbounded" | `No_solution -> "none")
    ti;
  let rounded, tr = time (fun () -> Lp_rounding.design inputs ~budget ~candidates) in
  (match rounded with
  | Some r -> Printf.printf "lp-round: stretch=%.4f cost=%d (%.2fs)\n%!" (Topology.stretch_of r) r.Topology.cost tr
  | None -> Printf.printf "lp-round: infeasible\n%!");
  (* Medium real scenario. *)
  let config = { Scenario.default_config with n_sites = Some 20 } in
  let a, ta = time (fun () -> Scenario.artifacts ~config ()) in
  Printf.printf "\nus-20: %d towers, %d hops (%.1fs); fiber inflation=%.2f\n%!"
    (List.length a.Scenario.towers) a.Scenario.hops.Cisp_towers.Hops.feasible_hops ta
    (Cisp_fiber.Conduit.mean_latency_inflation a.Scenario.fiber);
  let inp = Scenario.population_inputs a in
  let topo, td = time (fun () -> Scenario.design inp ~budget:600) in
  Printf.printf "design(600): stretch=%.4f cost=%d links=%d (%.1fs)\n%!"
    (Topology.stretch_of topo) topo.Topology.cost (List.length topo.Topology.built) td;
  let spare = Capacity.spare_from_registry a.Scenario.hops in
  let plan = Capacity.plan ~spare_series_at_hop:spare inp topo ~aggregate_gbps:100.0 in
  Printf.printf "capacity: hops=%d radios=%d new_towers=%d rented=%d mw_frac=%.2f\n%!"
    plan.Capacity.hops_total plan.Capacity.radios plan.Capacity.new_towers
    plan.Capacity.rented_towers plan.Capacity.mw_carried_fraction;
  List.iter (fun (cls, count) -> Printf.printf "  class %d: %d hops\n" cls count) plan.Capacity.hop_classes;
  Printf.printf "cost/GB @100Gbps: $%.2f\n%!" (Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:100.0)

(* Full-scale probe, guarded by an env var so the default run stays fast. *)
let () =
  if Sys.getenv_opt "PROBE_FULL" <> None then begin
    let a, ta = time (fun () -> Cisp_design.Scenario.artifacts ()) in
    Printf.printf "\nus-full: %d sites, %d towers, %d hops (%.1fs); fiber inflation=%.2f\n%!"
      (Array.length a.Cisp_design.Scenario.sites)
      (List.length a.Cisp_design.Scenario.towers)
      a.Cisp_design.Scenario.hops.Cisp_towers.Hops.feasible_hops ta
      (Cisp_fiber.Conduit.mean_latency_inflation a.Cisp_design.Scenario.fiber);
    let inp, ti = time (fun () -> Cisp_design.Scenario.population_inputs a) in
    Printf.printf "inputs built (%.1fs)\n%!" ti;
    List.iter
      (fun budget ->
        let topo, td = time (fun () -> Cisp_design.Scenario.design inp ~budget) in
        Printf.printf "design(%d): stretch=%.4f cost=%d links=%d (%.1fs)\n%!" budget
          (Cisp_design.Topology.stretch_of topo) topo.Cisp_design.Topology.cost
          (List.length topo.Cisp_design.Topology.built) td;
        if budget = 3000 then begin
          let spare = Cisp_design.Capacity.spare_from_registry a.Cisp_design.Scenario.hops in
          let plan = Cisp_design.Capacity.plan ~spare_series_at_hop:spare inp topo ~aggregate_gbps:100.0 in
          Printf.printf "capacity@100G: hops=%d radios=%d new=%d rented=%d\n%!"
            plan.Cisp_design.Capacity.hops_total plan.Cisp_design.Capacity.radios
            plan.Cisp_design.Capacity.new_towers plan.Cisp_design.Capacity.rented_towers;
          List.iter (fun (c, n) -> Printf.printf "  class %d: %d hops\n" c n)
            plan.Cisp_design.Capacity.hop_classes;
          Printf.printf "cost/GB: $%.2f\n%!"
            (Cisp_design.Capacity.cost_per_gb Cisp_design.Cost.default plan ~aggregate_gbps:100.0)
        end)
      [ 1000; 3000; 6000 ]
  end

(* Probe: link utilizations at 120% load on the full design. *)
let () =
  if Sys.getenv_opt "PROBE_UTIL" <> None then begin
    let module D = Cisp_design in
    let module S = Cisp_sim in
    let a = D.Scenario.artifacts () in
    let inputs = D.Scenario.population_inputs a in
    let topo = D.Scenario.design inputs ~budget:3000 in
    let spare = D.Capacity.spare_from_registry a.D.Scenario.hops in
    let plan = D.Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:100.0 in
    let mw_gbps = S.Builder.provisioned_mw_gbps plan in
    let loads120 = D.Capacity.route_loads inputs topo ~aggregate_gbps:120.0 in
    let utils = List.map (fun (l, load) -> load /. mw_gbps l) loads120 in
    let arr = Array.of_list utils in
    Format.printf "offered util at 120%%: %a@." Cisp_util.Stats.pp_summary (Cisp_util.Stats.summarize arr);
    let over = List.length (List.filter (fun u -> u > 1.0) utils) in
    Printf.printf "links over capacity: %d of %d\n" over (List.length utils);
    (* now simulate and measure utilization *)
    let eng = S.Engine.create () in
    let net = S.Builder.build eng inputs topo ~mw_gbps in
    let model = { S.Routing.inputs; topology = topo; mw_gbps; fiber_gbps = 400.0 } in
    let demands = Cisp_traffic.Matrix.scale_to_gbps inputs.D.Inputs.traffic ~aggregate_gbps:120.0 in
    let paths = S.Routing.paths model S.Routing.Shortest_path ~demands_gbps:demands in
    S.Udp.poisson_commodities net ~paths ~demands_gbps:demands ~packet_bytes:500 ~start:0.0 ~stop:0.015;
    S.Engine.run eng ~until:0.215;
    Printf.printf "sim: events=%d mean_delay=%.3f loss=%.5f max_util=%.3f\n"
      (S.Engine.events_processed eng) (S.Net.mean_delay_ms net) (S.Net.loss_rate net)
      (S.Net.max_utilization net ~duration_s:0.015)
  end
