bin/cisp_cli.mli:
