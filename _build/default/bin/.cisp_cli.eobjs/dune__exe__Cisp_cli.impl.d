bin/cisp_cli.ml: Apps Arg Array Cisp Cmd Cmdliner Design Format List Printf Term Util Weather
