(* Dev tool: sanity-check the synthetic substrates at full scale. *)

let () =
  let t0 = Unix.gettimeofday () in
  let centers = Cisp_data.Sites.us_population_centers () in
  Printf.printf "US population centers: %d\n%!" (List.length centers);
  let top5 = Cisp_data.Sites.coalesce Cisp_data.Us_cities.all in
  (match top5 with
  | c :: _ -> Printf.printf "largest: %s pop=%d\n%!" c.Cisp_data.City.name c.population
  | [] -> ());
  let dem = Cisp_terrain.Dem.create Cisp_terrain.Dem.Us_continental in
  let cache = Cisp_terrain.Dem_cache.create dem in
  (* sample elevations *)
  let denver = Cisp_geo.Coord.make ~lat:39.74 ~lon:(-104.98) in
  let chicago = Cisp_geo.Coord.make ~lat:41.88 ~lon:(-87.63) in
  let rockies = Cisp_geo.Coord.make ~lat:39.5 ~lon:(-106.8) in
  Printf.printf "elev denver=%.0f chicago=%.0f rockies=%.0f\n%!"
    (Cisp_terrain.Dem.elevation_m dem denver)
    (Cisp_terrain.Dem.elevation_m dem chicago)
    (Cisp_terrain.Dem.elevation_m dem rockies);
  let towers = Cisp_towers.Synth.generate ~dem ~sites:centers () in
  Printf.printf "raw towers: %d (%.1fs)\n%!" (List.length towers) (Unix.gettimeofday () -. t0);
  let culled = Cisp_towers.Culling.apply towers in
  Printf.printf "culled towers: %d\n%!" (List.length culled);
  let t1 = Unix.gettimeofday () in
  let hops = Cisp_towers.Hops.build ~cache ~sites:centers ~towers:culled () in
  Printf.printf "feasible tower-tower hops: %d (%.1fs)\n%!" hops.feasible_hops
    (Unix.gettimeofday () -. t1);
  let hits, misses = Cisp_terrain.Dem_cache.stats cache in
  Printf.printf "dem cache: hits=%d misses=%d\n%!" hits misses;
  (* Pairwise link stats *)
  let t2 = Unix.gettimeofday () in
  let links = Cisp_towers.Hops.all_links hops in
  let n = hops.n_sites in
  let stretches = ref [] in
  let unreachable = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match links.(i).(j) with
      | Some l -> stretches := Cisp_towers.Hops.link_stretch l :: !stretches
      | None -> incr unreachable
    done
  done;
  let arr = Array.of_list !stretches in
  Printf.printf "links: %d reachable, %d unreachable (%.1fs)\n%!" (Array.length arr)
    !unreachable (Unix.gettimeofday () -. t2);
  if Array.length arr > 0 then begin
    let s = Cisp_util.Stats.summarize arr in
    Format.printf "link stretch: %a@." Cisp_util.Stats.pp_summary s
  end;
  (* A couple of named examples *)
  let centers_arr = Array.of_list centers in
  let find name =
    let rec go i =
      if i >= Array.length centers_arr then -1
      else if String.length centers_arr.(i).Cisp_data.City.name >= String.length name
              && String.sub centers_arr.(i).Cisp_data.City.name 0 (String.length name) = name
      then i
      else go (i + 1)
    in
    go 0
  in
  let show a b =
    let ia = find a and ib = find b in
    if ia >= 0 && ib >= 0 then begin
      match links.(ia).(ib) with
      | Some l ->
        Printf.printf "%s -> %s: mw=%.0fkm geo=%.0fkm stretch=%.3f towers=%d\n%!" a b
          l.distance_km l.geodesic_km (Cisp_towers.Hops.link_stretch l) l.tower_count
      | None -> Printf.printf "%s -> %s: UNREACHABLE\n%!" a b
    end
  in
  show "New York" "Chicago";
  show "Chicago" "San Francisco";
  show "Austin" "Killeen";
  Printf.printf "total %.1fs\n%!" (Unix.gettimeofday () -. t0)
