(** Umbrella namespace for the cISP reproduction.

    [Cisp.Design] is the paper's primary contribution (topology design,
    capacity planning, cost model); the other modules are the
    substrates it stands on.  See DESIGN.md for the system inventory
    and EXPERIMENTS.md for the paper-vs-measured record. *)

module Util = Cisp_util
module Geo = Cisp_geo
module Terrain = Cisp_terrain
module Rf = Cisp_rf
module Towers = Cisp_towers
module Fiber = Cisp_fiber
module Graph = Cisp_graph
module Lp = Cisp_lp
module Data = Cisp_data
module Traffic = Cisp_traffic
module Design = Cisp_design
module Sim = Cisp_sim
module Orbit = Cisp_orbit
module Weather = Cisp_weather
module Apps = Cisp_apps
