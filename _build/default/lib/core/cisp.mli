(** Umbrella namespace for the cISP reproduction.

    {!Design} is the paper's primary contribution — topology design
    (§3), capacity planning (§3.3), the cost model (§2), and the
    end-to-end {!Design.Scenario} driver.  The remaining modules are
    the substrates it stands on; each is an independent library that
    can be used on its own (e.g. {!Lp} is a general MILP solver,
    {!Sim} a general packet-level simulator).

    See DESIGN.md for the system inventory and the substitution table
    (what of the paper's proprietary inputs each substrate replaces),
    and EXPERIMENTS.md for the paper-vs-measured record. *)

module Util = Cisp_util
module Geo = Cisp_geo
module Terrain = Cisp_terrain
module Rf = Cisp_rf
module Towers = Cisp_towers
module Fiber = Cisp_fiber
module Graph = Cisp_graph
module Lp = Cisp_lp
module Data = Cisp_data
module Traffic = Cisp_traffic
module Design = Cisp_design
module Sim = Cisp_sim
module Orbit = Cisp_orbit
module Weather = Cisp_weather
module Apps = Cisp_apps
