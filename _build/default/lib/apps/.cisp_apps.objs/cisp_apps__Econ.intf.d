lib/apps/econ.mli:
