lib/apps/econ.ml: Cisp_util
