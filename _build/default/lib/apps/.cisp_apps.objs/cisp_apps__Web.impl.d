lib/apps/web.ml: Array Cisp_util Float Hashtbl List Option
