lib/apps/web.mli:
