lib/apps/gaming.mli: Cisp_util
