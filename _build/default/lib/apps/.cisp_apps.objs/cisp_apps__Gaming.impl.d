lib/apps/gaming.ml: Array Cisp_util List
