(** Cost-benefit estimates (paper §8).

    Quantitative lower bounds on cISP's value per GB in three
    application areas, reconstructed from the paper's cited published
    constants, to be compared against the network's cost per GB
    (~$0.81 at 100 Gbps). *)

type range = { low : float; high : float }

(** {2 Web search} *)

type search_params = {
  us_search_traffic_gbps : float;     (** 12 *)
  profit_gain_200ms_usd : float;      (** $87M / year *)
  profit_gain_400ms_usd : float;      (** $177M / year *)
}

val default_search : search_params

val search_value_per_gb : ?params:search_params -> speedup_ms:float -> unit -> float
(** Linear interpolation between the paper's two anchor speedups. *)

(** {2 E-commerce} *)

type ecommerce_params = {
  yearly_traffic_pb : float;          (** 483 PB *)
  yearly_profit_usd : float;          (** $7.9B *)
  conversion_per_100ms : range;       (** 1% .. 7% *)
  cisp_byte_fraction : float;         (** <10% of bytes ride cISP *)
}

val default_ecommerce : ecommerce_params

val ecommerce_value_per_gb : ?params:ecommerce_params -> speedup_ms:float -> unit -> range

(** {2 Gaming} *)

type gaming_params = {
  vpn_usd_per_month : float;          (** $4, cheap accelerated VPN *)
  hours_per_day : float;              (** 8, "full-time gaming" *)
  kbps_per_player : float;            (** 10 *)
}

val default_gaming : gaming_params

val gaming_value_per_gb : ?params:gaming_params -> unit -> float

val steam_us_aggregate_gbps :
  players:int -> us_share:float -> kbps_per_player:float -> float
(** §6.6: 16M players x 17% US x 10 Kbps ~ 27 Gbps. *)

(** {2 Summary} *)

type verdict = { application : string; value_per_gb : range; exceeds_cost : bool }

val summary : cost_per_gb:float -> verdict list
(** The paper's bottom line: every application's value per GB
    substantially exceeds the cost per GB. *)
