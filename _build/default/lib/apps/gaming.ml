type params = {
  server_tick_ms : float;
  render_ms : float;
  speculation_coverage : float;
  cisp_latency_factor : float;
}

let default_params =
  {
    server_tick_ms = 8.0;
    render_ms = 12.0;
    speculation_coverage = 1.0;  (* Pacman: all 4 directions speculated *)
    cisp_latency_factor = 1.0 /. 3.0;
  }

type mode = Thin_conventional | Thin_speculative_cisp | Fat_conventional | Fat_cisp

let frame_time_ms ?(params = default_params) mode ~one_way_ms =
  let proc = params.server_tick_ms +. params.render_ms in
  match mode with
  | Thin_conventional -> (2.0 *. one_way_ms) +. proc
  | Thin_speculative_cisp ->
    let fast = 2.0 *. one_way_ms *. params.cisp_latency_factor in
    let slow = 2.0 *. one_way_ms in
    (* Misses fall back to a conventional round trip for the frame. *)
    (params.speculation_coverage *. fast)
    +. ((1.0 -. params.speculation_coverage) *. slow)
    +. proc
  | Fat_conventional -> (2.0 *. one_way_ms) +. proc
  | Fat_cisp -> (2.0 *. one_way_ms *. params.cisp_latency_factor) +. proc

let sweep ?params mode ~one_way_ms_list =
  List.map (fun l -> (l, frame_time_ms ?params mode ~one_way_ms:l)) one_way_ms_list

let simulate_session ?(params = default_params) ?(seed = 5) mode ~one_way_ms ~inputs =
  let rng = Cisp_util.Rng.create seed in
  let samples =
    Array.init inputs (fun _ ->
        (* jitter on processing and network *)
        let jitter = Cisp_util.Rng.uniform rng 0.9 1.25 in
        let miss = Cisp_util.Rng.float rng 1.0 > params.speculation_coverage in
        let base =
          match mode with
          | Thin_speculative_cisp when miss ->
            frame_time_ms ~params Thin_conventional ~one_way_ms
          | m -> frame_time_ms ~params:{ params with speculation_coverage = 1.0 } m ~one_way_ms
        in
        base *. jitter)
  in
  Cisp_util.Stats.summarize samples
