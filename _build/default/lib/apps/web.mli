(** Web page-load model (paper §7.2, Fig 13).

    Substitute for the Mahimahi record-and-replay of 80 Alexa pages:
    a synthetic page corpus whose object counts, sizes, origin counts
    and dependency depths follow published page-statistics
    distributions, and an RTT-driven fetch model (connection setup,
    request-response rounds per dependency level over parallel
    connections, plus non-network server/render time).  As in the
    paper, no bandwidth limits are imposed, so latency scaling is the
    only variable.

    The model supports {e selective} RTT scaling: client-to-server
    and server-to-client delays scale independently, which is how the
    paper evaluates carrying only the 8.5% of (client-to-server)
    bytes over cISP. *)

type obj = {
  size_bytes : int;
  level : int;            (** dependency depth; 0 = root HTML *)
  origin : int;           (** which server it comes from *)
}

type page = {
  objects : obj list;
  base_rtt_ms : float;    (** recorded client-server RTT for this page *)
  server_ms : float;      (** per-request server think time *)
  render_ms : float;      (** client-side non-network time per level *)
}

val generate : ?seed:int -> count:int -> unit -> page list
(** A corpus like the paper's 80-site sample. *)

type scaling = {
  c2s : float;            (** multiplier on the client-to-server delay *)
  s2c : float;            (** multiplier on the server-to-client delay *)
}

val baseline : scaling

val cisp : scaling
(** Both directions at 0.33. *)

val cisp_selective : scaling
(** Only client-to-server at 0.33. *)

val plt_ms : page -> scaling -> float
(** Page load time under scaled latencies. *)

val object_load_times_ms : page -> scaling -> float list
(** Per-object fetch latencies (for Fig 13b). *)

val small_object_threshold_bytes : int
(** 1460 bytes, as in the paper. *)

val c2s_byte_fraction : page list -> float
(** Fraction of total bytes flowing client-to-server (requests) —
    the paper measures 8.5%. *)
