(** Online-gaming latency models (paper §7.1, Fig 12).

    Fat-client gaming sends low-volume actions/state over the
    low-latency network directly.  Thin-client gaming streams frames;
    the paper's speculative scheme pre-sends the frames for every
    possible input over fiber and flips between them with a tiny
    confirmation message over cISP, so the user-visible frame time
    tracks the cISP RTT instead of the fiber RTT. *)

type params = {
  server_tick_ms : float;     (** game-state update interval *)
  render_ms : float;          (** client decode + render *)
  speculation_coverage : float;  (** fraction of inputs pre-computed *)
  cisp_latency_factor : float;   (** cISP one-way vs conventional; 1/3 *)
}

val default_params : params

type mode =
  | Thin_conventional      (** input -> server -> frame over the Internet *)
  | Thin_speculative_cisp  (** speculative frames + cISP confirmations *)
  | Fat_conventional       (** actions and state over the Internet *)
  | Fat_cisp               (** actions and state over cISP *)

val frame_time_ms : ?params:params -> mode -> one_way_ms:float -> float
(** Expected frame time (input-to-display) when the conventional
    network's one-way latency is [one_way_ms]. *)

val sweep :
  ?params:params -> mode -> one_way_ms_list:float list -> (float * float) list
(** (one-way latency, frame time) series for Fig 12. *)

val simulate_session :
  ?params:params -> ?seed:int -> mode -> one_way_ms:float -> inputs:int ->
  Cisp_util.Stats.summary
(** Monte-Carlo session: per-input frame times including jitter and
    speculation misses. *)
