(** Registry culling, paper §4.

    "Towers from rental companies are typically suitable for use.  From
    the FCC database, we only use towers over 100 m height.  When
    tower-density exceeds 50 towers per 0.5 degree square grid cell, we
    randomly sample towers." *)

type config = {
  fcc_min_height_m : float;   (** 100 m *)
  cell_deg : float;           (** 0.5 degrees *)
  max_per_cell : int;         (** 50 *)
  sample_seed : int;
}

val default_config : config

val apply : ?config:config -> Tower.t list -> Tower.t list
(** Deterministic culled registry. *)
