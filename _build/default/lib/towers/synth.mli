(** Synthetic tower registry (substitute for FCC ASR + commercial
    tower databases, paper §4).

    Real tower infrastructure clusters around population and along
    transport corridors; ruggedness depresses density.  The generator
    reproduces those statistics deterministically:

    - per-city clusters whose size grows with population (every site
      "hosts enough towers to use as the starting point" — §3.1);
    - corridor towers scattered along the geodesics between nearby
      city pairs (real long-haul towers follow highways/railroads);
    - a uniform rural background over the bounding box.

    Heights follow the mix seen in the FCC data: most structures are
    50-150 m, with a tall tail up to ~300 m. *)

type config = {
  seed : int;
  city_towers_per_100k : float;  (** cluster size scaling *)
  city_radius_km : float;        (** cluster spread around the center *)
  corridor_spacing_km : float;   (** mean spacing of corridor towers *)
  corridor_max_km : float;       (** only corridors shorter than this *)
  corridor_jitter_km : float;    (** lateral scatter off the geodesic *)
  background_count : int;        (** uniform rural towers *)
  min_height_m : float;
  max_height_m : float;
}

val default_config : config

val generate :
  ?config:config -> dem:Cisp_terrain.Dem.t -> sites:Cisp_data.City.t list ->
  unit -> Tower.t list
(** Deterministic registry for the given sites. *)
