(** A registered antenna structure. *)

type source =
  | Fcc            (** FCC Antenna Structure Registration style entry *)
  | Rental         (** commercial tower company (American Towers, ...) *)
  | City           (** rooftop / urban structure near a site *)

type t = {
  id : int;
  position : Cisp_geo.Coord.t;
  height_m : float;      (** structure height above ground *)
  source : source;
}

val make : id:int -> position:Cisp_geo.Coord.t -> height_m:float -> source:source -> t
val pp : Format.formatter -> t -> unit

val usable_height_m : t -> fraction:float -> float
(** Antenna mounting height when only a [fraction] of the structure is
    available (paper §6.5 sweeps 1.0, 0.85, 0.65, 0.45). *)
