lib/towers/hops.ml: Array Cisp_data Cisp_geo Cisp_graph Cisp_rf Cisp_terrain List Tower
