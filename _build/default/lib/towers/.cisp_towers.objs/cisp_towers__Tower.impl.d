lib/towers/tower.ml: Cisp_geo Format
