lib/towers/culling.mli: Tower
