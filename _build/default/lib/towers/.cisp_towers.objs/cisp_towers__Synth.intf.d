lib/towers/synth.mli: Cisp_data Cisp_terrain Tower
