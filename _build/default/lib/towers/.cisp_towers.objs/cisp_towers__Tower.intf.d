lib/towers/tower.mli: Cisp_geo Format
