lib/towers/refine.ml: Array Cisp_data Cisp_geo Cisp_graph Cisp_rf Cisp_util Float Hashtbl Hops List Tower
