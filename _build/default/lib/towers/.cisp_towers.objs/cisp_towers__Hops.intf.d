lib/towers/hops.mli: Cisp_data Cisp_graph Cisp_rf Cisp_terrain Tower
