lib/towers/refine.mli: Hops Tower
