lib/towers/culling.ml: Array Cisp_geo Cisp_util Float Hashtbl Int List Tower
