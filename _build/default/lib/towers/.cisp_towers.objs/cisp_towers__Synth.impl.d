lib/towers/synth.ml: Array Cisp_data Cisp_geo Cisp_terrain Cisp_util Float Hashtbl List Tower
