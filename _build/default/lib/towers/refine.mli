(** Probabilistic route refinement (paper §6.5, last paragraph).

    "We assign each tower in a swathe connecting the sites an
    acquisition probability, which depends on a number of factors
    (e.g., tower type, ownership, location).  Further, for towers that
    can be acquired, we use a uniform distribution to model height at
    which space for antennae is available.  With this probabilistic
    model, we compute thousands of candidate MW paths between site
    pairs, with refinements as acquisitions and height availabilities
    are confirmed."

    A refinement session tracks per-tower knowledge (unknown /
    acquired with a height fraction / rejected), Monte-Carlo samples
    the unknowns to produce candidate path distributions, and sharpens
    as ground truth arrives. *)

type knowledge =
  | Unknown
  | Acquired of float   (** available height fraction in (0, 1] *)
  | Rejected

type model = {
  acquisition_prob : Tower.t -> float;
      (** prior probability that the tower can be rented *)
  height_lo : float;    (** available-height fraction lower bound *)
  height_hi : float;
  seed : int;
}

val default_model : model
(** Rental towers 0.85, city rooftops 0.7, FCC structures 0.6;
    height fraction U[0.4, 1]. *)

type t

val create : hops:Hops.t -> src:int -> dst:int -> model:model -> t
(** Session for one site pair ([src], [dst] are site indices). *)

val confirm : t -> tower:int -> knowledge -> unit
(** Record ground truth for tower index [tower] (index into the
    registry, not a graph node id). *)

val sample_paths : ?samples:int -> t -> (float * int list) list
(** Monte-Carlo over the unknowns (default 200 samples): each sample
    draws acquisitions and heights, keeps the hops whose endpoint
    towers are usable, and records the shortest viable tower path.
    Returns the distinct paths found with their lengths, sorted by
    length. *)

type stats = {
  viability : float;         (** fraction of samples with any path *)
  length_p50_km : float;
  length_p95_km : float;
  distinct_paths : int;
}

val stats : ?samples:int -> t -> stats

val committed_path : t -> (float * int list) option
(** The shortest path through towers already confirmed [Acquired]
    (and sites); [None] until enough towers are confirmed. *)
