(** Mixed-integer linear model builder.

    A thin, safe layer over {!Simplex}: named variables with bounds and
    integrality flags, linear constraints, and a minimization
    objective.  {!Milp.solve} consumes it. *)

type t
type var

val create : unit -> t

val add_var : t -> ?lb:float -> ?ub:float -> ?integer:bool -> string -> var
(** Defaults: lb = 0 (the only supported lower bound), ub = infinity,
    continuous.  Raises [Invalid_argument] on lb <> 0 or ub < 0. *)

val binary : t -> string -> var
(** Integer variable in \[0, 1\]. *)

val var_name : t -> var -> string
val var_index : var -> int
val n_vars : t -> int

type op = Le | Ge | Eq

val add_constraint : t -> (float * var) list -> op -> float -> unit

val set_objective : t -> (float * var) list -> unit
(** Minimized.  Terms on the same variable accumulate. *)

val objective_value : t -> float array -> float

val to_lp : t -> extra:Simplex.row list -> Simplex.problem
(** LP relaxation: integrality dropped, bounds materialized as rows,
    plus [extra] branching rows. *)

val integer_vars : t -> var list

val value : float array -> var -> float
(** Read a variable out of a solution vector. *)
