(** Branch-and-bound mixed-integer solver (the Gurobi substitute).

    Solves the model's LP relaxation with {!Simplex}, branches on the
    most fractional integer variable, explores nodes best-bound first,
    and prunes by incumbent.  Exact up to the numeric tolerance when it
    terminates with [Optimal]; budget-limited runs report the best
    incumbent and the residual gap. *)

type limits = {
  max_nodes : int;
  max_seconds : float;
  gap_tolerance : float;   (** relative gap at which to stop *)
}

val default_limits : limits

type outcome = {
  status : [ `Optimal | `Feasible_gap of float | `Infeasible | `Unbounded | `No_solution ];
  x : float array option;       (** best integral solution found *)
  objective : float option;
  nodes_explored : int;
  lp_solves : int;
}

val solve : ?limits:limits -> Model.t -> outcome

val solve_relaxation : Model.t -> Simplex.status
(** Just the root LP relaxation (used by the LP-rounding baseline). *)
