type op = Le | Ge | Eq
type row = { coeffs : (int * float) list; op : op; rhs : float }
type problem = { n_vars : int; objective : float array; rows : row list }
type solution = { x : float array; objective : float }
type status = Optimal of solution | Infeasible | Unbounded

let eps = 1e-9

(* Tableau layout: [m] rows by [total] columns, plus a reduced-cost row
   and an objective value cell.  Columns: structural vars, then slack /
   surplus vars, then artificial vars.  basis.(i) is the column basic
   in row i. *)
type tableau = {
  a : float array array;      (* m x total *)
  b : float array;            (* m *)
  cost : float array;         (* total: current reduced-cost row *)
  mutable z : float;          (* current objective value (negated sum) *)
  basis : int array;          (* m *)
  m : int;
  total : int;
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  assert (Float.abs p > eps);
  let inv = 1.0 /. p in
  for j = 0 to t.total - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  t.b.(row) <- t.b.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if Float.abs f > 0.0 then begin
        let r = t.a.(i) in
        for j = 0 to t.total - 1 do
          r.(j) <- r.(j) -. (f *. arow.(j))
        done;
        t.b.(i) <- t.b.(i) -. (f *. t.b.(row))
      end
    end
  done;
  let f = t.cost.(col) in
  if Float.abs f > 0.0 then begin
    for j = 0 to t.total - 1 do
      t.cost.(j) <- t.cost.(j) -. (f *. arow.(j))
    done;
    t.z <- t.z -. (f *. t.b.(row))
  end;
  t.basis.(row) <- col

(* Ratio test: minimum b_i / a_ic over a_ic > eps; Bland tie-break on
   smallest basis column to avoid cycling. *)
let leaving_row t ~col =
  let best = ref (-1) in
  let best_ratio = ref infinity in
  for i = 0 to t.m - 1 do
    let a = t.a.(i).(col) in
    if a > eps then begin
      let ratio = t.b.(i) /. a in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps && !best >= 0 && t.basis.(i) < t.basis.(!best))
      then begin
        best := i;
        best_ratio := ratio
      end
    end
  done;
  !best

(* Entering column: Dantzig rule normally; Bland (smallest index with
   negative reduced cost) when [bland] to guarantee termination. *)
let entering_col t ~allowed ~bland =
  if bland then begin
    let rec find j =
      if j >= t.total then -1
      else if allowed j && t.cost.(j) < -.eps then j
      else find (j + 1)
    in
    find 0
  end
  else begin
    let best = ref (-1) in
    let best_cost = ref (-.eps) in
    for j = 0 to t.total - 1 do
      if allowed j && t.cost.(j) < !best_cost then begin
        best := j;
        best_cost := t.cost.(j)
      end
    done;
    !best
  end

type phase_result = Phase_optimal | Phase_unbounded

let run_phase t ~allowed ~max_iters =
  let iters = ref 0 in
  let degenerate_streak = ref 0 in
  let rec loop () =
    incr iters;
    if !iters > max_iters then failwith "Simplex: iteration limit exceeded";
    let bland = !degenerate_streak > 2 * (t.m + t.total) in
    match entering_col t ~allowed ~bland with
    | -1 -> Phase_optimal
    | col ->
      (match leaving_row t ~col with
      | -1 -> Phase_unbounded
      | row ->
        if t.b.(row) < eps then incr degenerate_streak else degenerate_streak := 0;
        pivot t ~row ~col;
        loop ())
  in
  loop ()

let solve ?max_iters (p : problem) =
  let m = List.length p.rows in
  let n = p.n_vars in
  let rows = Array.of_list p.rows in
  (* Normalize rhs >= 0. *)
  let norm =
    Array.map
      (fun r ->
        if r.rhs < 0.0 then begin
          let coeffs = List.map (fun (j, v) -> (j, -.v)) r.coeffs in
          let op = match r.op with Le -> Ge | Ge -> Le | Eq -> Eq in
          { coeffs; op; rhs = -.r.rhs }
        end
        else r)
      rows
  in
  (* Count slack (Le), surplus (Ge) and artificial (Ge, Eq) columns. *)
  let n_slack = Array.fold_left (fun acc r -> match r.op with Le | Ge -> acc + 1 | Eq -> acc) 0 norm in
  let n_art = Array.fold_left (fun acc r -> match r.op with Ge | Eq -> acc + 1 | Le -> acc) 0 norm in
  let total = n + n_slack + n_art in
  let t =
    {
      a = Array.make_matrix m total 0.0;
      b = Array.make m 0.0;
      cost = Array.make total 0.0;
      z = 0.0;
      basis = Array.make m (-1);
      m;
      total;
    }
  in
  let art_start = n + n_slack in
  let slack_idx = ref n in
  let art_idx = ref art_start in
  Array.iteri
    (fun i r ->
      List.iter
        (fun (j, v) ->
          assert (j >= 0 && j < n);
          t.a.(i).(j) <- t.a.(i).(j) +. v)
        r.coeffs;
      t.b.(i) <- r.rhs;
      (match r.op with
      | Le ->
        t.a.(i).(!slack_idx) <- 1.0;
        t.basis.(i) <- !slack_idx;
        incr slack_idx
      | Ge ->
        t.a.(i).(!slack_idx) <- -1.0;
        incr slack_idx;
        t.a.(i).(!art_idx) <- 1.0;
        t.basis.(i) <- !art_idx;
        incr art_idx
      | Eq ->
        t.a.(i).(!art_idx) <- 1.0;
        t.basis.(i) <- !art_idx;
        incr art_idx))
    norm;
  let max_iters =
    match max_iters with Some k -> k | None -> 2000 + (200 * (m + total))
  in
  (* Phase 1: minimize sum of artificials.  Reduced costs = -(sum of
     rows with artificial basics). *)
  if n_art > 0 then begin
    for j = 0 to total - 1 do
      t.cost.(j) <- 0.0
    done;
    for i = 0 to m - 1 do
      if t.basis.(i) >= art_start then begin
        for j = 0 to total - 1 do
          t.cost.(j) <- t.cost.(j) -. t.a.(i).(j)
        done;
        t.z <- t.z -. t.b.(i)
      end
    done;
    (* Artificial columns themselves have cost 1; after pricing out the
       basics their reduced cost is 0, matching the tableau invariant. *)
    for j = art_start to total - 1 do
      t.cost.(j) <- t.cost.(j) +. 1.0
    done;
    (match run_phase t ~allowed:(fun _ -> true) ~max_iters with
    | Phase_unbounded -> assert false (* phase-1 objective bounded below by 0 *)
    | Phase_optimal -> ());
    if -.t.z > 1e-7 then raise Exit
  end;
  (* Drive remaining artificials out of the basis (degenerate rows). *)
  for i = 0 to m - 1 do
    if t.basis.(i) >= art_start then begin
      let rec find j =
        if j >= art_start then -1
        else if Float.abs t.a.(i).(j) > eps then j
        else find (j + 1)
      in
      match find 0 with
      | -1 -> () (* redundant row; stays with artificial at value 0 *)
      | j -> pivot t ~row:i ~col:j
    end
  done;
  (* Phase 2: restore the real objective, priced out over the basis. *)
  for j = 0 to total - 1 do
    t.cost.(j) <- (if j < n then p.objective.(j) else 0.0)
  done;
  t.z <- 0.0;
  for i = 0 to m - 1 do
    let bj = t.basis.(i) in
    if bj < total then begin
      let cb = if bj < n then p.objective.(bj) else 0.0 in
      if Float.abs cb > 0.0 then begin
        for j = 0 to total - 1 do
          t.cost.(j) <- t.cost.(j) -. (cb *. t.a.(i).(j))
        done;
        t.z <- t.z -. (cb *. t.b.(i))
      end
    end
  done;
  let allowed j = j < art_start in
  match run_phase t ~allowed ~max_iters with
  | Phase_unbounded -> Unbounded
  | Phase_optimal ->
    let x = Array.make n 0.0 in
    for i = 0 to m - 1 do
      if t.basis.(i) < n then x.(t.basis.(i)) <- t.b.(i)
    done;
    let objective = Array.fold_left ( +. ) 0.0 (Array.mapi (fun j v -> p.objective.(j) *. v) x) in
    Optimal { x; objective }

let solve ?max_iters p = try solve ?max_iters p with Exit -> Infeasible
