(** Two-phase primal simplex over a dense tableau.

    Solves: minimize c.x subject to linear constraints and x >= 0.
    This is the computational core of the MILP solver that stands in
    for Gurobi (paper §3.2).  Intended problem sizes are hundreds to a
    few thousand variables/rows — comfortably within dense-tableau
    territory. *)

type op = Le | Ge | Eq

type row = { coeffs : (int * float) list; op : op; rhs : float }
(** Sparse constraint: sum coeffs.x (op) rhs. *)

type problem = {
  n_vars : int;
  objective : float array;    (** length n_vars; minimized *)
  rows : row list;
}

type solution = { x : float array; objective : float }

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded

val solve : ?max_iters:int -> problem -> status
(** [max_iters] defaults to a generous bound scaled by problem size;
    exceeding it raises [Failure] (indicates cycling, which Bland's
    rule should prevent). *)
