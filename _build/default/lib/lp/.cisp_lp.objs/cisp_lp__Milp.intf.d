lib/lp/milp.mli: Model Simplex
