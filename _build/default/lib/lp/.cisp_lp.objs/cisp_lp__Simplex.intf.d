lib/lp/simplex.mli:
