lib/lp/milp.ml: Array Cisp_graph Float List Model Simplex Sys
