lib/data/datacenters.ml: City
