lib/data/us_cities.ml: City List
