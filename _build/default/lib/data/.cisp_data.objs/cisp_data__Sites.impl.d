lib/data/sites.ml: Array Cisp_geo City Eu_cities Hashtbl List Option Us_cities
