lib/data/us_cities.mli: City
