lib/data/eu_cities.ml: City List
