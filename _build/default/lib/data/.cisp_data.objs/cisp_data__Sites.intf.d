lib/data/sites.mli: City
