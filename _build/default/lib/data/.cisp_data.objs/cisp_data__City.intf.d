lib/data/city.mli: Cisp_geo Format
