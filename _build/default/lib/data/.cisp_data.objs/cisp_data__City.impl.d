lib/data/city.ml: Cisp_geo Format Int
