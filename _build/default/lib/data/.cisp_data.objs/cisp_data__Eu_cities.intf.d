lib/data/eu_cities.mli: City
