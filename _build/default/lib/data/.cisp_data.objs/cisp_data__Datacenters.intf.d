lib/data/datacenters.mli: City
