(** A named population point. *)

type t = {
  name : string;
  coord : Cisp_geo.Coord.t;
  population : int;
}

val make : string -> lat:float -> lon:float -> population:int -> t
val pp : Format.formatter -> t -> unit
val compare_population_desc : t -> t -> int
