(** The 200 most populous cities of the contiguous United States
    (2010-census city-proper populations, approximate coordinates).

    This is the site input of paper §4: "we connect only the 200 most
    populous cities in the contiguous United States", which are then
    coalesced (see {!Sites}) into ~120 population centers.  Honolulu
    and Anchorage are excluded as non-contiguous, exactly as in the
    paper. *)

val all : City.t list
(** All 200 cities, sorted by descending population. *)

val top : int -> City.t list
