(** The six publicly known US Google data-center locations used by the
    paper's inter-DC and DC-edge traffic models (§6.3). *)

val all : City.t list
(** Population field is 0 — these are capacity endpoints, not
    population centers. *)
