let all =
  [
    City.make "DC Berkeley County, SC" ~lat:33.19 ~lon:(-80.01) ~population:0;
    City.make "DC Council Bluffs, IA" ~lat:41.26 ~lon:(-95.86) ~population:0;
    City.make "DC Douglas County, GA" ~lat:33.75 ~lon:(-84.75) ~population:0;
    City.make "DC Lenoir, NC" ~lat:35.91 ~lon:(-81.54) ~population:0;
    City.make "DC Mayes County, OK" ~lat:36.30 ~lon:(-95.32) ~population:0;
    City.make "DC The Dalles, OR" ~lat:45.59 ~lon:(-121.18) ~population:0;
  ]
