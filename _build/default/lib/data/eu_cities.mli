(** European cities with population over 300,000 (paper §6.2).

    Contiguous Europe of a geographical scale similar to the
    contiguous US: EU + UK + Switzerland + Norway + the Balkans,
    excluding Russia / Ukraine / Belarus / Turkey and Atlantic islands.
    Populations are city-proper, approximate. *)

val all : City.t list
(** Sorted by descending population. *)

val top : int -> City.t list
