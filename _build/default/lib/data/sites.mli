(** Population-center construction (paper §4).

    "We coalesce suburbs and cities within 50 km of each other, ending
    up with 120 population centers."  Cities whose pairwise distance is
    under the threshold are merged transitively (union-find); each
    resulting center sits at the population-weighted centroid, carries
    the summed population, and is named after its largest member. *)

val coalesce : ?radius_km:float -> City.t list -> City.t list
(** Default radius 50 km.  Result sorted by descending population. *)

val us_population_centers : unit -> City.t list
(** The paper's ~120 contiguous-US population centers: top-200 cities
    coalesced at 50 km. *)

val eu_population_centers : unit -> City.t list
(** European centers: all >300k cities coalesced at 50 km. *)
