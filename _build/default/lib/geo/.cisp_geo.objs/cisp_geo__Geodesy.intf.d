lib/geo/geodesy.mli: Coord
