lib/geo/grid.ml: Cisp_util Coord Float Geodesy Hashtbl List
