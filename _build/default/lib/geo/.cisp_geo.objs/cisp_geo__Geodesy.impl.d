lib/geo/geodesy.ml: Array Cisp_util Coord Float
