lib/geo/coord.ml: Float Format List Printf
