lib/geo/grid.mli: Coord Hashtbl
