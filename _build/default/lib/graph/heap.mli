(** Binary min-heap keyed by float priority.

    The workhorse behind Dijkstra and the discrete-event simulator's
    event queue. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h priority v]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
