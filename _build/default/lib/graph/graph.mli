(** Weighted directed graph over dense integer node ids.

    Nodes are [0 .. node_count - 1]; edges carry a float weight and an
    optional integer tag (used by cISP to record which city-city link
    or physical hop an edge belongs to). *)

type edge = { dst : int; weight : float; tag : int }
type t

val create : int -> t
(** [create n] makes a graph with [n] nodes and no edges. *)

val node_count : t -> int
val edge_count : t -> int

val add_edge : ?tag:int -> t -> int -> int -> float -> unit
(** [add_edge g u v w] adds a directed edge.  Weights must be >= 0. *)

val add_undirected : ?tag:int -> t -> int -> int -> float -> unit
(** Both directions. *)

val succ : t -> int -> edge list
(** Successor edges of a node (in insertion order, reversed). *)

val iter_succ : t -> int -> (edge -> unit) -> unit

val remove_edges : t -> (int -> edge -> bool) -> unit
(** [remove_edges g keep] drops every edge (u, e) where
    [keep u e = false]. *)

val copy : t -> t

val of_edges : int -> (int * int * float) list -> t
(** Undirected construction convenience. *)
