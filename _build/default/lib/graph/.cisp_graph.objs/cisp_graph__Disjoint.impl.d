lib/graph/disjoint.ml: Array Dijkstra Graph List
