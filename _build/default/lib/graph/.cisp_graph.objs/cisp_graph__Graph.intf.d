lib/graph/graph.mli:
