lib/graph/kshortest.ml: Dijkstra Float Graph Hashtbl Int List
