lib/graph/disjoint.mli: Graph
