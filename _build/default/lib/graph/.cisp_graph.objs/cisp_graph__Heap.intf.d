lib/graph/heap.mli:
