lib/graph/kshortest.mli: Graph
