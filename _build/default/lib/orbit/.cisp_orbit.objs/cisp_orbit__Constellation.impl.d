lib/orbit/constellation.ml: Array Cisp_geo Cisp_graph Cisp_util Float List Option
