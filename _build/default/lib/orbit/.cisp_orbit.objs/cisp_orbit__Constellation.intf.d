lib/orbit/constellation.mli: Cisp_geo
