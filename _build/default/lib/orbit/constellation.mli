(** Low-Earth-orbit constellations (paper §2).

    The paper dismisses LEO satellites for c-latency service in one
    sentence: "their connectivity fundamentally varies over time,
    necessitating extremely high density to provide latencies similar
    to those achievable with a terrestrial MW network."  This module
    makes that claim checkable: a Walker-delta constellation with
    +grid inter-satellite laser links, ground-to-satellite access
    above a minimum elevation, and time-parameterized shortest-path
    latencies between ground sites.

    Geometry is kept deliberately simple (circular orbits, spherical
    Earth, ideal ISLs at c) — every simplification favors the
    satellites, making the measured stretch a lower bound. *)

type shell = {
  name : string;
  altitude_km : float;
  inclination_deg : float;
  n_planes : int;
  sats_per_plane : int;
  phase_factor : int;        (** Walker phasing offset between planes *)
}

val starlink_like : shell
(** 550 km, 53 degrees, 72 x 22 — the dense modern reference. *)

val sparse_shell : shell
(** 1150 km, 53 degrees, 24 x 12 — an early-constellation density. *)

type sat_position = {
  sat_id : int;
  position_ecef : float * float * float;   (** km, Earth-fixed frame *)
  subpoint : Cisp_geo.Coord.t;
}

val orbital_period : shell -> float
(** Seconds per revolution (Kepler, circular orbit). *)

val positions : shell -> t_s:float -> sat_position array
(** All satellite positions at time [t_s] seconds into the epoch. *)

val min_elevation_deg : float
(** Ground terminals track satellites above 25 degrees elevation. *)

val visible : sat_position -> Cisp_geo.Coord.t -> bool
(** Is the satellite above [min_elevation_deg] from this ground point? *)

val path_latency_ms :
  shell -> t_s:float -> Cisp_geo.Coord.t -> Cisp_geo.Coord.t -> float option
(** One-way latency at time [t_s]: best uplink + shortest +grid ISL
    route at c + best downlink.  [None] when either endpoint sees no
    satellite. *)

type pair_stats = {
  samples : int;
  coverage : float;           (** fraction of samples with a path *)
  stretch_p50 : float;
  stretch_p95 : float;
  stretch_max : float;
}

val pair_stretch_over_time :
  ?samples:int -> ?period_s:float -> shell ->
  Cisp_geo.Coord.t -> Cisp_geo.Coord.t -> pair_stats
(** Stretch (vs the geodesic at c) sampled across an orbital period
    (default 96 samples over 5,700 s). *)
