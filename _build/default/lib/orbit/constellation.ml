module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy
module Graph = Cisp_graph.Graph
module Dijkstra = Cisp_graph.Dijkstra

type shell = {
  name : string;
  altitude_km : float;
  inclination_deg : float;
  n_planes : int;
  sats_per_plane : int;
  phase_factor : int;
}

let starlink_like =
  {
    name = "dense 72x22 @550km";
    altitude_km = 550.0;
    inclination_deg = 53.0;
    n_planes = 72;
    sats_per_plane = 22;
    phase_factor = 11;
  }

let sparse_shell =
  {
    name = "sparse 24x12 @1150km";
    altitude_km = 1150.0;
    inclination_deg = 53.0;
    n_planes = 24;
    sats_per_plane = 12;
    phase_factor = 6;
  }

let earth_radius = Cisp_util.Units.earth_radius_km
let mu = 398_600.4418 (* km^3 / s^2 *)
let earth_rotation = 7.2921159e-5 (* rad / s *)

type sat_position = {
  sat_id : int;
  position_ecef : float * float * float;
  subpoint : Coord.t;
}

let orbital_period shell =
  let r = earth_radius +. shell.altitude_km in
  2.0 *. Float.pi *. sqrt (r *. r *. r /. mu)

let positions shell ~t_s =
  let r = earth_radius +. shell.altitude_km in
  let inc = Cisp_util.Units.deg_to_rad shell.inclination_deg in
  let n_mean = 2.0 *. Float.pi /. orbital_period shell in
  let p_total = shell.n_planes and s_total = shell.sats_per_plane in
  let rot = -.earth_rotation *. t_s in
  let cos_rot = cos rot and sin_rot = sin rot in
  Array.init (p_total * s_total) (fun sat_id ->
      let p = sat_id / s_total and s = sat_id mod s_total in
      let raan = 2.0 *. Float.pi *. float_of_int p /. float_of_int p_total in
      let u0 =
        (2.0 *. Float.pi *. float_of_int s /. float_of_int s_total)
        +. (2.0 *. Float.pi *. float_of_int (shell.phase_factor * p)
            /. float_of_int (p_total * s_total))
      in
      let u = u0 +. (n_mean *. t_s) in
      (* ECI position of a circular inclined orbit. *)
      let xi = r *. ((cos raan *. cos u) -. (sin raan *. sin u *. cos inc)) in
      let yi = r *. ((sin raan *. cos u) +. (cos raan *. sin u *. cos inc)) in
      let zi = r *. sin u *. sin inc in
      (* Earth-fixed frame: rotate by -omega_e * t around z. *)
      let x = (xi *. cos_rot) -. (yi *. sin_rot) in
      let y = (xi *. sin_rot) +. (yi *. cos_rot) in
      let z = zi in
      let lat = Cisp_util.Units.rad_to_deg (asin (z /. r)) in
      let lon = Cisp_util.Units.rad_to_deg (atan2 y x) in
      { sat_id; position_ecef = (x, y, z); subpoint = Coord.make ~lat ~lon })

let ecef_of_ground p =
  let lat = Cisp_util.Units.deg_to_rad (Coord.lat p) in
  let lon = Cisp_util.Units.deg_to_rad (Coord.lon p) in
  (earth_radius *. cos lat *. cos lon, earth_radius *. cos lat *. sin lon, earth_radius *. sin lat)

let dist3 (x1, y1, z1) (x2, y2, z2) =
  let dx = x1 -. x2 and dy = y1 -. y2 and dz = z1 -. z2 in
  sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz))

let min_elevation_deg = 25.0

let elevation_deg sat ground_ecef =
  let gx, gy, gz = ground_ecef in
  let sx, sy, sz = sat.position_ecef in
  let dx = sx -. gx and dy = sy -. gy and dz = sz -. gz in
  let d = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
  let g = sqrt ((gx *. gx) +. (gy *. gy) +. (gz *. gz)) in
  (* sin(elevation) = (d_vec . g_hat) / |d| *)
  let dot = ((dx *. gx) +. (dy *. gy) +. (dz *. gz)) /. g in
  Cisp_util.Units.rad_to_deg (asin (Float.max (-1.0) (Float.min 1.0 (dot /. d))))

let visible sat ground = elevation_deg sat (ecef_of_ground ground) >= min_elevation_deg

(* +grid ISLs: fore/aft in plane, left/right across adjacent planes. *)
let isl_neighbors shell sat_id =
  let s_total = shell.sats_per_plane and p_total = shell.n_planes in
  let p = sat_id / s_total and s = sat_id mod s_total in
  [
    (p * s_total) + ((s + 1) mod s_total);
    (p * s_total) + ((s + s_total - 1) mod s_total);
    (((p + 1) mod p_total) * s_total) + s;
    (((p + p_total - 1) mod p_total) * s_total) + s;
  ]

let path_latency_ms shell ~t_s a b =
  let sats = positions shell ~t_s in
  let n_sats = Array.length sats in
  let g = Graph.create (n_sats + 2) in
  let src = n_sats and dst = n_sats + 1 in
  Array.iter
    (fun sat ->
      List.iter
        (fun nb ->
          if nb > sat.sat_id then begin
            let d = dist3 sat.position_ecef sats.(nb).position_ecef in
            Graph.add_undirected g sat.sat_id nb d
          end)
        (isl_neighbors shell sat.sat_id))
    sats;
  let attach node ground =
    let ge = ecef_of_ground ground in
    let any = ref false in
    Array.iter
      (fun sat ->
        if elevation_deg sat ge >= min_elevation_deg then begin
          Graph.add_undirected g node sat.sat_id (dist3 sat.position_ecef ge);
          any := true
        end)
      sats;
    !any
  in
  if attach src a && attach dst b then
    Option.map (fun (d, _) -> Cisp_util.Units.ms_of_km_at_c d) (Dijkstra.shortest_path g ~src ~dst)
  else None

type pair_stats = {
  samples : int;
  coverage : float;
  stretch_p50 : float;
  stretch_p95 : float;
  stretch_max : float;
}

let pair_stretch_over_time ?(samples = 96) ?period_s shell a b =
  let period = match period_s with Some p -> p | None -> orbital_period shell in
  let geo_ms = Geodesy.c_latency_ms a b in
  let stretches = ref [] in
  let hits = ref 0 in
  for k = 0 to samples - 1 do
    let t_s = period *. float_of_int k /. float_of_int samples in
    match path_latency_ms shell ~t_s a b with
    | Some ms when geo_ms > 0.0 ->
      incr hits;
      stretches := (ms /. geo_ms) :: !stretches
    | Some _ | None -> ()
  done;
  let arr = Array.of_list !stretches in
  if Array.length arr = 0 then
    { samples; coverage = 0.0; stretch_p50 = nan; stretch_p95 = nan; stretch_max = nan }
  else begin
    let sorted = Array.copy arr in
    Array.sort Float.compare sorted;
    {
      samples;
      coverage = float_of_int !hits /. float_of_int samples;
      stretch_p50 = Cisp_util.Stats.percentile arr 50.0;
      stretch_p95 = Cisp_util.Stats.percentile arr 95.0;
      stretch_max = sorted.(Array.length sorted - 1);
    }
  end
