(** Deterministic 2-D value noise.

    Used to synthesize elevation fields.  The noise is a lattice of
    pseudo-random values hashed from integer coordinates and a seed,
    interpolated with a smoothstep kernel, and summed over octaves
    (fractional Brownian motion). *)

val value : seed:int -> float -> float -> float
(** [value ~seed x y] is single-octave noise in \[-1, 1\], continuous
    in (x, y), deterministic in [seed]. *)

val fbm : seed:int -> octaves:int -> lacunarity:float -> gain:float -> float -> float -> float
(** Fractional Brownian motion: [octaves] layers of [value], each layer
    with frequency multiplied by [lacunarity] and amplitude by [gain].
    Normalized to roughly \[-1, 1\]. *)

val ridged : seed:int -> octaves:int -> float -> float -> float
(** Ridged multifractal variant (1 - |noise|, squared), in \[0, 1\] —
    produces mountain-crest-like features. *)
