type t = {
  dem : Dem.t;
  surface : (int, float) Hashtbl.t;
  ground : (int, float) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create dem =
  { dem; surface = Hashtbl.create 65536; ground = Hashtbl.create 65536; hits = 0; misses = 0 }

let dem t = t.dem

(* ~0.0036 degrees: about 400 m in latitude. *)
let quantum = 276.0

let key p =
  let qi = int_of_float (Float.round (Cisp_geo.Coord.lat p *. quantum)) in
  let qj = int_of_float (Float.round (Cisp_geo.Coord.lon p *. quantum)) in
  (qi * 1_000_003) lxor qj

let lookup t table compute p =
  let k = key p in
  match Hashtbl.find_opt table k with
  | Some v ->
    t.hits <- t.hits + 1;
    v
  | None ->
    t.misses <- t.misses + 1;
    let v = compute t.dem p in
    Hashtbl.add table k v;
    v

let surface_m t p = lookup t t.surface Dem.surface_m p
let elevation_m t p = lookup t t.ground Dem.elevation_m p
let stats t = (t.hits, t.misses)
