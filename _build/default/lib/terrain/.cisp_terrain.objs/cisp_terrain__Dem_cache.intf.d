lib/terrain/dem_cache.mli: Cisp_geo Dem
