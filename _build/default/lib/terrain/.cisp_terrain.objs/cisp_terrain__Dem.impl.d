lib/terrain/dem.ml: Array Cisp_geo Cisp_util Float List Noise
