lib/terrain/dem_cache.ml: Cisp_geo Dem Float Hashtbl
