lib/terrain/dem.mli: Cisp_geo
