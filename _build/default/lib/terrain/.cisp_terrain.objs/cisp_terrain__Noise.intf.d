lib/terrain/noise.mli:
