lib/terrain/noise.ml: Float Int64
