(** Synthetic digital elevation model.

    Substitute for the NASA SRTM/NED terrain data used by the paper
    (§3.1).  The model is a deterministic function of geographic
    coordinates: a continental base surface plus noise whose amplitude
    is modulated by region (flat plains, rolling hills, mountain
    ranges), plus a ground-clutter term standing in for tree canopy and
    buildings.  Profiles sampled from it have realistic obstruction
    statistics for line-of-sight work, which is all the design
    algorithm consumes. *)

type region = Us_continental | Europe | Flat | Custom of relief list

and relief = {
  center : Cisp_geo.Coord.t;  (** range centerline anchor *)
  axis_bearing_deg : float;   (** orientation of the range *)
  half_length_km : float;     (** extent along the axis *)
  half_width_km : float;      (** extent across the axis *)
  peak_m : float;             (** added relief amplitude at the core *)
}

type t

val create : ?seed:int -> region -> t
(** [create region] builds the elevation model.  Default seed 42. *)

val elevation_m : t -> Cisp_geo.Coord.t -> float
(** Ground elevation above sea level, metres; >= 0. *)

val clutter_m : t -> Cisp_geo.Coord.t -> float
(** Height of trees / buildings above ground at this point, metres. *)

val surface_m : t -> Cisp_geo.Coord.t -> float
(** [elevation_m + clutter_m]: the height an unobstructed ray must
    clear. *)

val profile :
  t -> Cisp_geo.Coord.t -> Cisp_geo.Coord.t -> step_km:float ->
  (float * float) array
(** [profile t a b ~step_km] samples the surface along the great
    circle: (distance from [a] in km, surface height in m) pairs,
    endpoints included. *)

val ruggedness : t -> Cisp_geo.Coord.t -> float
(** Local relief amplitude in metres — proxy for how hard tower siting
    and line-of-sight are around this point (used to modulate synthetic
    tower density). *)
