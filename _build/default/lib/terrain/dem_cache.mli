(** Quantized memoization layer over a {!Dem}.

    Line-of-sight screening samples millions of surface heights, most
    of them in dense tower clusters where paths overlap heavily.  This
    cache snaps queries to a ~400 m grid and memoizes the surface
    height per grid cell, trading negligible accuracy (the synthetic
    DEM's features are tens of km wide) for an order of magnitude in
    throughput. *)

type t

val create : Dem.t -> t

val dem : t -> Dem.t

val surface_m : t -> Cisp_geo.Coord.t -> float
(** Memoized [Dem.surface_m] at the cell containing the point. *)

val elevation_m : t -> Cisp_geo.Coord.t -> float
(** Memoized ground elevation (no clutter). *)

val stats : t -> int * int
(** (hits, misses) — for tests and tuning. *)
