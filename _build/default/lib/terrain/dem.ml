module Coord = Cisp_geo.Coord
module Geodesy = Cisp_geo.Geodesy

type relief = {
  center : Coord.t;
  axis_bearing_deg : float;
  half_length_km : float;
  half_width_km : float;
  peak_m : float;
}

type region = Us_continental | Europe | Flat | Custom of relief list

type t = {
  seed : int;
  reliefs : relief list;
  base_amp_m : float;     (* rolling-hill noise amplitude outside ranges *)
  base_floor_m : float;   (* continental base elevation *)
  west_ramp : bool;       (* Great-Plains-style westward elevation ramp *)
}

let mk_relief lat lon axis_bearing_deg half_length_km half_width_km peak_m =
  { center = Coord.make ~lat ~lon; axis_bearing_deg; half_length_km; half_width_km; peak_m }

(* Idealized major ranges; positions are approximate but geographically
   sensible, which is all the synthetic substitution needs. *)
let us_reliefs =
  [
    (* Rocky Mountains: Montana down to New Mexico. *)
    mk_relief 43.0 (-107.5) 170.0 1100.0 260.0 1900.0;
    (* Sierra Nevada / Cascades along the west coast interior. *)
    mk_relief 41.5 (-120.8) 175.0 900.0 150.0 1700.0;
    (* Appalachians: Georgia up to Maine. *)
    mk_relief 38.5 (-79.5) 35.0 900.0 180.0 800.0;
    (* Ozarks. *)
    mk_relief 36.5 (-92.5) 90.0 250.0 150.0 350.0;
  ]

let eu_reliefs =
  [
    (* Alps. *)
    mk_relief 46.5 9.5 80.0 500.0 150.0 2500.0;
    (* Pyrenees. *)
    mk_relief 42.7 0.5 95.0 220.0 70.0 1800.0;
    (* Carpathians. *)
    mk_relief 47.5 24.0 120.0 500.0 130.0 1300.0;
    (* Scandinavian mountains. *)
    mk_relief 62.0 9.0 30.0 700.0 150.0 1200.0;
    (* Dinaric Alps / Balkans. *)
    mk_relief 43.8 18.5 135.0 350.0 120.0 1200.0;
  ]

let create ?(seed = 42) region =
  match region with
  | Us_continental ->
    { seed; reliefs = us_reliefs; base_amp_m = 90.0; base_floor_m = 150.0; west_ramp = true }
  | Europe ->
    { seed; reliefs = eu_reliefs; base_amp_m = 80.0; base_floor_m = 100.0; west_ramp = false }
  | Flat -> { seed; reliefs = []; base_amp_m = 15.0; base_floor_m = 100.0; west_ramp = false }
  | Custom reliefs ->
    { seed; reliefs; base_amp_m = 60.0; base_floor_m = 100.0; west_ramp = false }

(* Gaussian membership of [p] in the elongated relief footprint:
   1 at the core, falling off along and across the axis. *)
let relief_weight rl p =
  let d = Geodesy.distance_km rl.center p in
  if d > (2.5 *. rl.half_length_km) +. (2.5 *. rl.half_width_km) then 0.0
  else begin
    let theta = Cisp_util.Units.deg_to_rad (Geodesy.initial_bearing_deg rl.center p -. rl.axis_bearing_deg) in
    let along = d *. cos theta /. rl.half_length_km in
    let across = d *. sin theta /. rl.half_width_km in
    let q = (along *. along) +. (across *. across) in
    exp (-.q)
  end

let mountain_amp t p =
  List.fold_left (fun acc rl -> acc +. (rl.peak_m *. relief_weight rl p)) 0.0 t.reliefs

let ruggedness t p = t.base_amp_m +. mountain_amp t p

let elevation_m t p =
  let lat = Coord.lat p and lon = Coord.lon p in
  (* Feature scale: frequency 2/deg ~ 50 km rolling features. *)
  let base = Noise.fbm ~seed:t.seed ~octaves:5 ~lacunarity:2.1 ~gain:0.5 (lon *. 2.0) (lat *. 2.0) in
  let mountains =
    let amp = mountain_amp t p in
    if amp <= 1.0 then 0.0
    else amp *. Noise.ridged ~seed:(t.seed + 1000) ~octaves:4 (lon *. 3.0) (lat *. 3.0)
  in
  let ramp =
    if t.west_ramp then begin
      (* Great-Plains ramp: ~200 m near lon -95 rising to ~1600 m near -105. *)
      let x = (-95.0 -. lon) /. 10.0 in
      let x = Float.max 0.0 (Float.min 1.6 x) in
      x *. 900.0
    end
    else 0.0
  in
  Float.max 0.0 (t.base_floor_m +. ramp +. (t.base_amp_m *. base) +. mountains)

let clutter_m t p =
  let lat = Coord.lat p and lon = Coord.lon p in
  (* Canopy/building height: noisy 0-30 m field at ~20 km scale. *)
  let v = Noise.fbm ~seed:(t.seed + 2000) ~octaves:3 ~lacunarity:2.0 ~gain:0.5 (lon *. 5.0) (lat *. 5.0) in
  let h = 14.0 +. (14.0 *. v) in
  Float.max 0.0 h

let surface_m t p = elevation_m t p +. clutter_m t p

let profile t a b ~step_km =
  let pts = Geodesy.sample_path a b ~step_km in
  let total = Geodesy.distance_km a b in
  let n = Array.length pts in
  Array.mapi
    (fun i p ->
      let d = total *. float_of_int i /. float_of_int (n - 1) in
      (d, surface_m t p))
    pts
