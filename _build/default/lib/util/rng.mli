(** Deterministic pseudo-random number generation.

    All randomness in the cISP libraries flows through this module so
    that every scenario, test, and benchmark is reproducible
    bit-for-bit from a fixed seed.  The generator is splitmix64, which
    is fast, has a 64-bit state, and supports cheap stream splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in \[lo, hi). *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); mean [1. /. rate]. *)

val poisson : t -> float -> int
(** [poisson t mean] samples a Poisson variate (Knuth for small means,
    normal approximation above 50). *)

val lognormal : t -> float -> float -> float
(** [lognormal t mu sigma] is [exp (mu + sigma * gaussian)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> 'a array -> int -> 'a array
(** [sample t arr k] draws [k] distinct elements uniformly (k <= length). *)
