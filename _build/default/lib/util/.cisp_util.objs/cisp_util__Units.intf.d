lib/util/units.mli:
