lib/util/rng.mli:
