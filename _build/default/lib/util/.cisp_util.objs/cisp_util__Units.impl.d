lib/util/units.ml: Float
