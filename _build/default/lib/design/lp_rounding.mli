(** The naive LP-relaxation + rounding baseline the paper dismisses
    ("even the naive LP relaxation followed by rounding did not scale
    beyond 60 cities, and gave results worse than optimal").

    Solves the continuous relaxation of {!Ilp.formulate}, sorts build
    variables by fractional value, and greedily rounds up within the
    budget. *)

val design :
  Inputs.t -> budget:int -> candidates:(int * int) list -> Topology.t option
(** [None] if the relaxation is infeasible. *)
