module Model = Cisp_lp.Model
module Milp = Cisp_lp.Milp
module Simplex = Cisp_lp.Simplex

let design (inputs : Inputs.t) ~budget ~candidates =
  let f = Ilp.formulate inputs ~budget ~candidates in
  match Milp.solve_relaxation f.Ilp.model with
  | Simplex.Infeasible | Simplex.Unbounded -> None
  | Simplex.Optimal sol ->
    let scored =
      Array.to_list
        (Array.mapi (fun l v -> (Model.value sol.Simplex.x v, f.Ilp.cands.(l))) f.Ilp.x)
    in
    let sorted = List.sort (fun (a, _) (b, _) -> Float.compare b a) scored in
    let topo = ref (Topology.empty inputs) in
    List.iter
      (fun (value, (i, j)) ->
        if value > 1e-6 then begin
          let c = Topology.link_cost inputs i j in
          if !topo.Topology.cost + c <= budget then topo := Topology.add !topo (i, j)
        end)
      sorted;
    Some !topo
