(** Swap-based local improvement over a greedy topology.

    At the paper's full scale the exact ILP is out of reach for any
    solver in hours (that is Fig 2a's point); the paper hands the
    greedy candidate set to Gurobi.  Our substitution (documented in
    DESIGN.md) polishes the greedy solution with first-improvement
    swaps instead: repeatedly try removing one of the weakest built
    links and adding a better candidate within budget, verified
    optimal against the exact ILP at small scales (Fig 2b). *)

val improve :
  ?passes:int ->
  ?swap_pool:int ->
  Inputs.t ->
  budget:int ->
  candidates:(int * int) list ->
  Topology.t ->
  Topology.t
(** [improve inputs ~budget ~candidates topo] returns a topology with
    objective <= the input's.  [passes] (default 3) bounds sweep
    count; [swap_pool] (default 20) is how many weakest links are
    considered for removal each pass. *)
