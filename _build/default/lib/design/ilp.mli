(** Exact topology design: the paper's flow-based ILP (§3.2).

    Binary build variables x_l over candidate MW links; per-commodity
    flow variables over MW and fiber arc copies; objective
    sum_st (h_st / d_st) sum_arcs len * f; constraints: flow
    conservation, budget, and only built links carry flow.

    Two paper-faithful reductions keep the model tractable:

    - {b Oracle pruning} (optimality-preserving): an arc is dropped
      for a commodity when even a geodesic-lower-bound path through it
      cannot beat the commodity's direct fiber path, and a whole
      commodity is dropped when no MW arc survives for it (its flow
      is the constant direct-fiber term).
    - {b Relaxed flows}: with capacity out of the formulation (the
      paper provisions bandwidth in step 3), the flow polytope for
      fixed integral x is integral, so flow variables can be
      continuous and branching happens on x only — exactly the
      structure a commercial MILP solver exploits.

    The returned topology is exact for the candidate set given. *)

type stats = {
  commodities : int;         (** after pruning *)
  flow_vars : int;
  constraints : int;
  nodes_explored : int;
  lp_solves : int;
  milp_status : [ `Optimal | `Feasible_gap of float | `Infeasible | `Unbounded | `No_solution ];
}

val design :
  ?limits:Cisp_lp.Milp.limits ->
  ?strong_linking:bool ->
  ?oracle_pruning:bool ->
  Inputs.t ->
  budget:int ->
  candidates:(int * int) list ->
  Topology.t * stats
(** Exact (up to [limits]) selection among [candidates] within
    [budget].  [strong_linking] (default false) uses one linking row
    per commodity-link instead of one aggregated row per link:
    tighter LP bounds, bigger tableaux.  [oracle_pruning] (default
    true) can be disabled to measure how much the paper's
    variable-elimination observation buys (see the ablation bench). *)

(** {2 Shared formulation} *)

type formulation = {
  model : Cisp_lp.Model.t;
  x : Cisp_lp.Model.var array;   (** build variables, aligned with [cands] *)
  cands : (int * int) array;
  f_commodities : int;
  f_flow_vars : int;
}

val formulate :
  ?strong_linking:bool ->
  ?oracle_pruning:bool ->
  Inputs.t ->
  budget:int ->
  candidates:(int * int) list ->
  formulation
(** The MILP model itself — also consumed by {!Lp_rounding}. *)
