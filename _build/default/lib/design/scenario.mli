(** End-to-end scenario driver.

    Assembles the full cISP pipeline of the paper: synthetic terrain,
    tower registry, culling, hop feasibility (step 1), fiber network,
    traffic model, topology design (step 2), and capacity planning
    (step 3).  Heavy artifacts (the hop graph takes ~20 s at the
    112-center US scale) are memoized per configuration so benchmarks
    can share them. *)

type region =
  | Us
  | Europe
  | Custom of string * Cisp_data.City.t list
      (** arbitrary sites over the US terrain model; the string names
          the scenario for caching (e.g. "interdc") *)

type config = {
  region : region;
  n_sites : int option;        (** take only the top-k population centers *)
  max_range_km : float;        (** MW hop range (Fig 10 sweeps 60-100) *)
  height_fraction : float;     (** usable tower height (Fig 10) *)
  dem_seed : int;
  tower_seed : int;
}

val default_config : config
(** US, all centers, 100 km range, full tower height. *)

val europe_config : config

type artifacts = {
  config : config;
  dem : Cisp_terrain.Dem.t;
  cache : Cisp_terrain.Dem_cache.t;
  sites : Cisp_data.City.t array;
  towers : Cisp_towers.Tower.t list;    (** culled registry *)
  hops : Cisp_towers.Hops.t;
  fiber : Cisp_fiber.Conduit.t;
}

val artifacts : ?config:config -> unit -> artifacts
(** Build (or fetch memoized) artifacts for a configuration. *)

val clear_cache : unit -> unit

val inputs : artifacts -> traffic:Cisp_traffic.Matrix.t -> Inputs.t

val population_inputs : artifacts -> Inputs.t
(** Inputs with the population-product traffic model. *)

type method_ = Heuristic | Exact | Rounded

val design :
  ?method_:method_ -> ?limits:Cisp_lp.Milp.limits -> Inputs.t -> budget:int -> Topology.t
(** [Heuristic] (default): the paper's pipeline at scale — greedy with
    2x-inflated budget for candidates, then greedy at budget + swap
    local search.  [Exact]: greedy candidates handed to the ILP (only
    viable at small n).  [Rounded]: the LP-rounding baseline. *)

type report = {
  topology : Topology.t;
  stretch : float;
  plan : plan_or_nothing;
  cost_per_gb : float;
}
and plan_or_nothing = Capacity.plan option

val full_run :
  ?config:config -> ?cost:Cost.t -> budget:int -> aggregate_gbps:float -> unit -> report
(** The whole pipeline with the population traffic model: design at
    [budget] towers, provision [aggregate_gbps], cost it. *)
