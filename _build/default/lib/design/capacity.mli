(** Step 3: capacity augmentation (paper §3.3, §4).

    Routes the target aggregate demand over the designed topology's
    shortest paths, sizes every built MW link with parallel tower
    series (k series provide k^2 Gbps via the angular-separation
    trick), and accounts for new towers where the existing registry
    has no spares near a hop. *)

type link_plan = {
  link : int * int;              (** site pair *)
  load_gbps : float;
  series : int;                  (** parallel tower series, k *)
  hops : int;                    (** physical hops along the link *)
}

type plan = {
  links : link_plan list;
  mw_carried_fraction : float;   (** traffic fraction whose path uses MW *)
  hops_total : int;              (** hops across built links (1 series) *)
  hop_classes : (int * int) list;
      (** (new towers needed at each hop end, hop count), ascending;
          class 0 = augmentable with existing towers only *)
  radios : int;                  (** hop-series radio installations *)
  new_towers : int;
  rented_towers : int;           (** existing towers occupied, all series *)
}

val route_loads : Inputs.t -> Topology.t -> aggregate_gbps:float -> ((int * int) * float) list
(** Per-built-link carried load in Gbps under shortest-path routing
    of the scaled traffic matrix — the busier of the two directions,
    since links are duplex and capacity is per-direction. *)

val plan :
  ?spare_series_at_hop:(int -> int -> int) ->
  Inputs.t -> Topology.t -> aggregate_gbps:float -> plan
(** [spare_series_at_hop u v] tells how many additional parallel
    series can reuse existing towers around hop (u, v) (graph node
    ids); default comes from local tower density when hop data is
    available, else 0 (most conservative: every extra series charges
    new towers). *)

val spare_from_registry : Cisp_towers.Hops.t -> int -> int -> int
(** Density-based spare estimate: registry towers within a small
    radius of the hop, capped.  Builds a spatial index on first use
    per {!Cisp_towers.Hops.t}; prefer partially applying it. *)

val total_cost_usd : Cost.t -> plan -> float
val cost_per_gb : Cost.t -> plan -> aggregate_gbps:float -> float
