(** The paper's cost model (§2).

    "The cost of installing a bidirectional MW link, on existing
    towers, is approximately $75K ($150K) for 500 Mbps (1 Gbps)
    bandwidth.  The average cost for building a new tower is $100K...
    the dominant operational expense, by far, is tower rent: $25-50K
    per year per tower.  We estimate cost per GB by amortizing the sum
    of building costs and operational costs over 5 years." *)

type t = {
  radio_1gbps_usd : float;        (** per hop per series, installed *)
  radio_500mbps_usd : float;
  new_tower_usd : float;
  tower_rent_usd_per_year : float;
  amortization_years : float;
}

val default : t
(** $150K / $75K / $100K / $40K / 5 years. *)

val capex_usd : t -> radios:int -> new_towers:int -> float

val opex_usd : t -> rented_towers:int -> float
(** Rent over the amortization window. *)

val total_usd : t -> radios:int -> new_towers:int -> rented_towers:int -> float

val cost_per_gb : t -> total_usd:float -> aggregate_gbps:float -> float
(** Total cost divided by the GB delivered at [aggregate_gbps] over
    the amortization window. *)
