(** Inputs to the topology-design problem (paper §3.2).

    For [n] sites: geodesic distances d_ij, microwave link lengths
    m_ij and costs c_ij from step 1, fiber latency-equivalent
    distances o_ij (route length already multiplied by the 1.5 glass
    factor), and a normalized traffic matrix h_ij. *)

type t = {
  sites : Cisp_data.City.t array;
  geodesic_km : float array array;   (** d_ij *)
  mw_km : float array array;         (** m_ij; [infinity] if no MW link *)
  mw_cost : int array array;         (** c_ij in towers; 0 where infeasible *)
  mw_links : Cisp_towers.Hops.link option array array;
      (** detailed tower paths when built from real hop data *)
  fiber_km : float array array;      (** o_ij, latency-equivalent *)
  traffic : Cisp_traffic.Matrix.t;   (** h_ij, normalized *)
}

val n_sites : t -> int

val of_hops :
  hops:Cisp_towers.Hops.t ->
  fiber:Cisp_fiber.Conduit.t ->
  traffic:Cisp_traffic.Matrix.t ->
  t
(** Assemble from the step-1 artifacts. *)

val synthetic :
  sites:Cisp_data.City.t array ->
  mw_stretch:float ->
  mw_cost_per_km:float ->
  fiber_stretch:float ->
  traffic:Cisp_traffic.Matrix.t ->
  t
(** Idealized instance for tests and solver benchmarking: every pair
    has an MW option at [mw_stretch] x geodesic costing
    [mw_cost_per_km * geodesic] towers, and fiber at [fiber_stretch] x
    geodesic. *)

val validate : t -> (unit, string) result
(** Structural checks: square matrices, symmetry, nonnegativity,
    m <= o sanity is NOT required (MW may be worse than fiber). *)

val restrict : t -> indices:int array -> t
(** Sub-instance over the given site indices (traffic renormalized).
    Used by the Fig 2 scaling study, which runs the solvers on
    subsets of the full city set. *)
