lib/design/export.mli: Capacity Inputs Topology
