lib/design/capacity.ml: Array Cisp_data Cisp_geo Cisp_graph Cisp_rf Cisp_towers Cisp_traffic Cost Float Hashtbl Inputs Int List Option Topology
