lib/design/local_search.ml: Array Capacity Float Greedy Inputs List Topology
