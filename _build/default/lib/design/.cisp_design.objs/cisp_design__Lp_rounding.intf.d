lib/design/lp_rounding.mli: Inputs Topology
