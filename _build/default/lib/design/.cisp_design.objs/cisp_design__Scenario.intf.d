lib/design/scenario.mli: Capacity Cisp_data Cisp_fiber Cisp_lp Cisp_terrain Cisp_towers Cisp_traffic Cost Inputs Topology
