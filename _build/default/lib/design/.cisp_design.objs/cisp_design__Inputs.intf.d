lib/design/inputs.mli: Cisp_data Cisp_fiber Cisp_towers Cisp_traffic
