lib/design/greedy.ml: Array Cisp_graph Float Inputs List Topology
