lib/design/export.ml: Array Buffer Capacity Cisp_data Cisp_geo Float Hashtbl Inputs List Option Printf String Topology
