lib/design/inputs.ml: Array Cisp_data Cisp_fiber Cisp_geo Cisp_towers Cisp_traffic Float Option Result
