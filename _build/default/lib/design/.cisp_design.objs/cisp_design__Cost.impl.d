lib/design/cost.ml: Cisp_util
