lib/design/ilp.mli: Cisp_lp Inputs Topology
