lib/design/lp_rounding.ml: Array Cisp_lp Float Ilp Inputs List Topology
