lib/design/greedy.mli: Inputs Topology
