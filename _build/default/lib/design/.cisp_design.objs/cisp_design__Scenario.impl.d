lib/design/scenario.ml: Array Capacity Cisp_data Cisp_fiber Cisp_rf Cisp_terrain Cisp_towers Cisp_traffic Cost Greedy Hashtbl Ilp Inputs List Local_search Lp_rounding Topology
