lib/design/topology.ml: Array Cisp_towers Float Inputs List Printf
