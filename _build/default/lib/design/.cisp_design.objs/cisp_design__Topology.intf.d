lib/design/topology.mli: Inputs
