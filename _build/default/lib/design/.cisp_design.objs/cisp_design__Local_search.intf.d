lib/design/local_search.mli: Inputs Topology
