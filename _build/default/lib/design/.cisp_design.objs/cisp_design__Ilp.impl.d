lib/design/ilp.ml: Array Cisp_lp Hashtbl Inputs List Printf Topology
