lib/design/capacity.mli: Cisp_towers Cost Inputs Topology
