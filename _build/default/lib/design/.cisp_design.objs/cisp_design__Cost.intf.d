lib/design/cost.mli:
