module Geodesy = Cisp_geo.Geodesy
module Hops = Cisp_towers.Hops
module City = Cisp_data.City

type t = {
  sites : City.t array;
  geodesic_km : float array array;
  mw_km : float array array;
  mw_cost : int array array;
  mw_links : Hops.link option array array;
  fiber_km : float array array;
  traffic : Cisp_traffic.Matrix.t;
}

let n_sites t = Array.length t.sites

let geodesic_matrix sites =
  let n = Array.length sites in
  let d = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let g = Geodesy.distance_km sites.(i).City.coord sites.(j).City.coord in
      d.(i).(j) <- g;
      d.(j).(i) <- g
    done
  done;
  d

let of_hops ~hops ~fiber ~traffic =
  let sites = hops.Hops.sites in
  let n = Array.length sites in
  let links = Hops.all_links hops in
  let mw_km = Array.make_matrix n n infinity in
  let mw_cost = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      match links.(i).(j) with
      | Some l ->
        mw_km.(i).(j) <- l.Hops.distance_km;
        mw_cost.(i).(j) <- l.Hops.tower_count
      | None -> ()
    done
  done;
  {
    sites;
    geodesic_km = geodesic_matrix sites;
    mw_km;
    mw_cost;
    mw_links = links;
    fiber_km = Cisp_fiber.Conduit.latency_matrix fiber;
    traffic;
  }

let synthetic ~sites ~mw_stretch ~mw_cost_per_km ~fiber_stretch ~traffic =
  let n = Array.length sites in
  let geodesic_km = geodesic_matrix sites in
  let mw_km = Array.make_matrix n n infinity in
  let mw_cost = Array.make_matrix n n 0 in
  let fiber_km = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        mw_km.(i).(j) <- geodesic_km.(i).(j) *. mw_stretch;
        mw_cost.(i).(j) <- max 1 (int_of_float (Float.ceil (geodesic_km.(i).(j) *. mw_cost_per_km)));
        fiber_km.(i).(j) <- geodesic_km.(i).(j) *. fiber_stretch
      end
    done
  done;
  {
    sites;
    geodesic_km;
    mw_km;
    mw_cost;
    mw_links = Array.make_matrix n n None;
    fiber_km;
    traffic;
  }

let validate t =
  let n = Array.length t.sites in
  let check_square name (m : 'a array array) =
    if Array.length m <> n || Array.exists (fun r -> Array.length r <> n) m then
      Error (name ^ ": not square")
    else Ok ()
  in
  let ( >>= ) r f = Result.bind r (fun () -> f ()) in
  check_square "geodesic" t.geodesic_km
  >>= fun () -> check_square "mw" t.mw_km
  >>= fun () -> check_square "fiber" t.fiber_km
  >>= fun () -> check_square "traffic" t.traffic
  >>= fun () ->
  let sym_ok m =
    let ok = ref true in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if Float.abs (m.(i).(j) -. m.(j).(i)) > 1e-6 *. (1.0 +. Float.abs m.(i).(j)) then
          ok := false
      done
    done;
    !ok
  in
  if not (sym_ok t.geodesic_km) then Error "geodesic: asymmetric"
  else if not (sym_ok t.fiber_km) then Error "fiber: asymmetric"
  else if not (sym_ok t.traffic) then Error "traffic: asymmetric"
  else begin
    let neg = ref false in
    Array.iter (Array.iter (fun v -> if v < 0.0 then neg := true)) t.traffic;
    if !neg then Error "traffic: negative entry" else Ok ()
  end

let restrict t ~indices =
  let k = Array.length indices in
  let slice m = Array.init k (fun a -> Array.init k (fun b -> m.(indices.(a)).(indices.(b)))) in
  let slice_links =
    Array.init k (fun a ->
        Array.init k (fun b ->
            Option.map
              (fun l -> { l with Hops.src = a; dst = b })
              t.mw_links.(indices.(a)).(indices.(b))))
  in
  {
    sites = Array.map (fun i -> t.sites.(i)) indices;
    geodesic_km = slice t.geodesic_km;
    mw_km = slice t.mw_km;
    mw_cost = slice t.mw_cost;
    mw_links = slice_links;
    fiber_km = slice t.fiber_km;
    traffic = Cisp_traffic.Matrix.normalize (slice t.traffic);
  }
