let objective inputs topo = Topology.mean_stretch inputs (Topology.distances topo)

let traffic_total (inputs : Inputs.t) =
  let n = Inputs.n_sites inputs in
  let den = ref 0.0 in
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t then den := !den +. inputs.traffic.(s).(t)
    done
  done;
  Float.max 1e-300 !den

let improve ?(passes = 3) ?(swap_pool = 20) (inputs : Inputs.t) ~budget ~candidates topo =
  let w = Greedy.weight_matrix inputs in
  let den = traffic_total inputs in
  let current = ref topo in
  let current_obj = ref (objective inputs topo) in
  let try_additions () =
    (* Greedy fill of any remaining budget from the candidate pool. *)
    let d = ref (Topology.distances !current) in
    let improved = ref false in
    let rec fill () =
      let slack = budget - !current.Topology.cost in
      let best = ref None in
      List.iter
        (fun (i, j) ->
          if (not (Topology.is_built !current i j)) && Topology.link_cost inputs i j <= slack
          then begin
            let b = Greedy.benefit inputs w !d (i, j) in
            match !best with
            | Some (_, b') when b' >= b -> ()
            | _ -> if b > 1e-15 then best := Some ((i, j), b)
          end)
        candidates;
      match !best with
      | Some (pair, _) ->
        current := Topology.add !current pair;
        d := Topology.distances_incremental inputs !d pair;
        improved := true;
        fill ()
      | None -> ()
    in
    fill ();
    if !improved then current_obj := objective inputs !current;
    !improved
  in
  let try_swaps () =
    let built = !current.Topology.built in
    if built = [] then false
    else begin
      (* Cheap ranking: links carrying the least traffic per tower are
         the likeliest swap victims.  One routing pass instead of one
         all-pairs recomputation per built link. *)
      let loads = Capacity.route_loads inputs !current ~aggregate_gbps:1.0 in
      let ranked_pairs =
        List.map
          (fun (pair, load) ->
            let i, j = pair in
            (load /. float_of_int (max 1 (Topology.link_cost inputs i j)), pair))
          loads
        |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
        |> List.map snd
      in
      let rec take k = function
        | [] -> []
        | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
      in
      let pool =
        List.map
          (fun pair ->
            let without = Topology.remove !current pair in
            let obj = objective inputs without in
            (obj -. !current_obj, pair, without, obj))
          (take swap_pool ranked_pairs)
      in
      let improved = ref false in
      List.iter
        (fun (_, removed_pair, without, without_obj) ->
          if not !improved then begin
            let d_without = Topology.distances without in
            let slack = budget - without.Topology.cost in
            List.iter
              (fun (i, j) ->
                if
                  (not !improved)
                  && (i, j) <> removed_pair
                  && (not (Topology.is_built without i j))
                  && Topology.link_cost inputs i j <= slack
                then begin
                  let gain = Greedy.benefit inputs w d_without (i, j) /. den in
                  let new_obj = without_obj -. gain in
                  if new_obj < !current_obj -. 1e-12 then begin
                    current := Topology.add without (i, j);
                    current_obj := objective inputs !current;
                    improved := true
                  end
                end)
              candidates
          end)
        pool;
      !improved
    end
  in
  let rec sweep k =
    if k = 0 then ()
    else begin
      let a = try_additions () in
      let s = try_swaps () in
      if a || s then sweep (k - 1)
    end
  in
  sweep passes;
  !current
