type t = {
  radio_1gbps_usd : float;
  radio_500mbps_usd : float;
  new_tower_usd : float;
  tower_rent_usd_per_year : float;
  amortization_years : float;
}

let default =
  {
    radio_1gbps_usd = 150_000.0;
    radio_500mbps_usd = 75_000.0;
    new_tower_usd = 100_000.0;
    tower_rent_usd_per_year = 40_000.0;
    amortization_years = 5.0;
  }

let capex_usd t ~radios ~new_towers =
  (float_of_int radios *. t.radio_1gbps_usd) +. (float_of_int new_towers *. t.new_tower_usd)

let opex_usd t ~rented_towers =
  float_of_int rented_towers *. t.tower_rent_usd_per_year *. t.amortization_years

let total_usd t ~radios ~new_towers ~rented_towers =
  capex_usd t ~radios ~new_towers +. opex_usd t ~rented_towers

let cost_per_gb t ~total_usd ~aggregate_gbps =
  let seconds = t.amortization_years *. Cisp_util.Units.seconds_per_year in
  let gb = Cisp_util.Units.gb_of_gbps_over aggregate_gbps ~seconds in
  if gb <= 0.0 then infinity else total_usd /. gb
