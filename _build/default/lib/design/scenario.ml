module Dem = Cisp_terrain.Dem
module Dem_cache = Cisp_terrain.Dem_cache
module Hops = Cisp_towers.Hops
module Los = Cisp_rf.Los

type region = Us | Europe | Custom of string * Cisp_data.City.t list

type config = {
  region : region;
  n_sites : int option;
  max_range_km : float;
  height_fraction : float;
  dem_seed : int;
  tower_seed : int;
}

let default_config =
  {
    region = Us;
    n_sites = None;
    max_range_km = 100.0;
    height_fraction = 1.0;
    dem_seed = 42;
    tower_seed = 7;
  }

let europe_config = { default_config with region = Europe }

type artifacts = {
  config : config;
  dem : Dem.t;
  cache : Dem_cache.t;
  sites : Cisp_data.City.t array;
  towers : Cisp_towers.Tower.t list;
  hops : Hops.t;
  fiber : Cisp_fiber.Conduit.t;
}

let cache_table : (config, artifacts) Hashtbl.t = Hashtbl.create 4

let clear_cache () = Hashtbl.reset cache_table

let build_artifacts config =
  let region_dem =
    match config.region with
    | Us | Custom _ -> Dem.Us_continental
    | Europe -> Dem.Europe
  in
  let dem = Dem.create ~seed:config.dem_seed region_dem in
  let cache = Dem_cache.create dem in
  let centers =
    match config.region with
    | Us -> Cisp_data.Sites.us_population_centers ()
    | Europe -> Cisp_data.Sites.eu_population_centers ()
    | Custom (_, cities) -> cities
  in
  let centers =
    match config.n_sites with
    | None -> centers
    | Some k ->
      let sorted = List.sort Cisp_data.City.compare_population_desc centers in
      List.filteri (fun i _ -> i < k) sorted
  in
  let synth_config = { Cisp_towers.Synth.default_config with seed = config.tower_seed } in
  let towers = Cisp_towers.Synth.generate ~config:synth_config ~dem ~sites:centers () in
  let culled = Cisp_towers.Culling.apply towers in
  let hop_config =
    {
      Hops.default_config with
      los_params = { Los.default_params with max_range_km = config.max_range_km };
      height_fraction = config.height_fraction;
    }
  in
  let hops = Hops.build ~config:hop_config ~cache ~sites:centers ~towers:culled () in
  let fiber =
    match config.region with
    | Us | Custom _ -> Cisp_fiber.Conduit.build ~sites:centers ()
    | Europe ->
      (* Paper §6.2: no EU conduit data; assume the US-like 1.9x
         latency inflation over geodesics. *)
      Cisp_fiber.Conduit.build ~mode:(Cisp_fiber.Conduit.Assumed 1.93) ~sites:centers ()
  in
  { config; dem; cache; sites = Array.of_list centers; towers = culled; hops; fiber }

let artifacts ?(config = default_config) () =
  match Hashtbl.find_opt cache_table config with
  | Some a -> a
  | None ->
    let a = build_artifacts config in
    Hashtbl.replace cache_table config a;
    a

let inputs a ~traffic = Inputs.of_hops ~hops:a.hops ~fiber:a.fiber ~traffic

let population_inputs a =
  inputs a ~traffic:(Cisp_traffic.Matrix.population_product a.sites)

type method_ = Heuristic | Exact | Rounded

let design ?(method_ = Heuristic) ?limits (inputs : Inputs.t) ~budget =
  match method_ with
  | Heuristic ->
    (* One greedy run at the paper's 2x-inflated budget yields both the
       candidate set and (as its affordable prefix) the seed design. *)
    let _, order = Greedy.design_ordered inputs ~budget:(2 * budget) in
    let seed =
      List.fold_left
        (fun topo (i, j) ->
          if topo.Topology.cost + Topology.link_cost inputs i j <= budget then
            Topology.add topo (i, j)
          else topo)
        (Topology.empty inputs) order
    in
    Local_search.improve inputs ~budget ~candidates:order seed
  | Exact ->
    let candidates = Greedy.candidate_set inputs ~budget ~inflation:2.0 in
    let topo, _ = Ilp.design ?limits inputs ~budget ~candidates in
    topo
  | Rounded ->
    let candidates = Greedy.candidate_set inputs ~budget ~inflation:2.0 in
    (match Lp_rounding.design inputs ~budget ~candidates with
    | Some t -> t
    | None -> Topology.empty inputs)

type report = {
  topology : Topology.t;
  stretch : float;
  plan : plan_or_nothing;
  cost_per_gb : float;
}
and plan_or_nothing = Capacity.plan option

let full_run ?(config = default_config) ?(cost = Cost.default) ~budget ~aggregate_gbps () =
  let a = artifacts ~config () in
  let inp = population_inputs a in
  let topo = design inp ~budget in
  let stretch = Topology.stretch_of topo in
  let spare = Capacity.spare_from_registry a.hops in
  let plan = Capacity.plan ~spare_series_at_hop:spare inp topo ~aggregate_gbps in
  let cpg = Capacity.cost_per_gb cost plan ~aggregate_gbps in
  { topology = topo; stretch; plan = Some plan; cost_per_gb = cpg }
