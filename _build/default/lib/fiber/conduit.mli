(** Synthetic long-haul fiber conduit network (InterTubes substitute).

    The paper computes fiber distances as shortest paths over the
    InterTubes conduit dataset and finds that even latency-optimal use
    of all conduits leaves the network 1.93x away from c-latency
    (1.5x from the speed of light in glass, the rest from route
    circuitousness).

    This module builds a conduit graph over the sites: a Gabriel graph
    (a standard proximity-graph model of road/rail-following
    infrastructure) plus enough nearest-neighbour edges to keep the
    graph connected, with each conduit's length inflated over the
    geodesic by a deterministic per-edge circuitousness factor.  The
    resulting end-to-end shortest routes reproduce InterTubes'
    measured inflation statistics. *)

type mode =
  | Synthetic of { seed : int; circuitousness_lo : float; circuitousness_hi : float }
      (** conduit graph with per-edge route inflation drawn uniformly *)
  | Assumed of float
      (** no conduit data (paper §6.2, Europe): every pair's fiber
          route is [factor] x geodesic *)

val default_mode : mode
(** [Synthetic] tuned so that mean end-to-end latency inflation
    (including the 1.5x glass factor) is ~1.9x, matching InterTubes. *)

type t

val build : ?mode:mode -> sites:Cisp_data.City.t list -> unit -> t

val route_km : t -> int -> int -> float
(** Shortest conduit route between two site indices, km of fiber.
    [infinity] if unreachable (cannot happen with [default_mode]). *)

val latency_km : t -> int -> int -> float
(** The paper's o_ij: route length multiplied by the 1.5 latency
    factor, expressed in km-at-c so it is directly comparable with MW
    distances. *)

val latency_matrix : t -> float array array
(** All-pairs [latency_km]. *)

val mean_latency_inflation : t -> float
(** Mean over site pairs of [latency_km / geodesic] — should be ~1.9
    for the synthetic US network (paper: 1.93). *)

val edges : t -> (int * int * float) list
(** Conduit segments as (site, site, route km) — for visualization. *)
