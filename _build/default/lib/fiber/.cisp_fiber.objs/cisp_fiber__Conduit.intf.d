lib/fiber/conduit.mli: Cisp_data
