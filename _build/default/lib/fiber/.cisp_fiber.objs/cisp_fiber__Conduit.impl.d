lib/fiber/conduit.ml: Array Cisp_data Cisp_geo Cisp_graph Cisp_util Float List
