lib/sim/routing.mli: Cisp_design Cisp_traffic Hashtbl
