lib/sim/net.ml: Array Engine Float Hashtbl List Option
