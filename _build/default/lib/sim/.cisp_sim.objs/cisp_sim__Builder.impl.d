lib/sim/builder.ml: Array Cisp_design Cisp_rf Cisp_util Hashtbl List Net Option
