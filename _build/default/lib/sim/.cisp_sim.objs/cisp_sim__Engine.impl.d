lib/sim/engine.ml: Cisp_graph
