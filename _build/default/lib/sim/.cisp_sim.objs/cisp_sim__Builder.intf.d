lib/sim/builder.mli: Cisp_design Engine Net
