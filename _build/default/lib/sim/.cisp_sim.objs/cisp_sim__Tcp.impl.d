lib/sim/tcp.ml: Array Engine Float List Net
