lib/sim/engine.mli:
