lib/sim/udp.mli: Cisp_traffic Hashtbl Net
