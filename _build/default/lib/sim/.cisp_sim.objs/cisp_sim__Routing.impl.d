lib/sim/routing.ml: Array Cisp_design Cisp_graph Cisp_util Float Hashtbl Lazy List
