lib/sim/udp.ml: Array Cisp_util Engine Hashtbl Net
