lib/sim/tcp.mli: Net
