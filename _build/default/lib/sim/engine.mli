(** Discrete-event simulation core: a clock and a time-ordered event
    queue.  Substitute for the ns-3 scheduler (paper §5). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Enqueue an event at absolute time [at] (>= now). *)

val schedule_in : t -> after:float -> (unit -> unit) -> unit

val run : t -> until:float -> unit
(** Execute events in time order until the queue is empty or the
    clock passes [until]. *)

val events_processed : t -> int
