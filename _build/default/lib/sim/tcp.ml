type config = {
  mss_bytes : int;
  init_cwnd : int;
  ssthresh : int;
  pacing : bool;
  ack_delay_s : float;
  rto_s : float;
}

let default_config ~ack_delay_s =
  {
    mss_bytes = 1500;
    init_cwnd = 10;
    ssthresh = 64;
    pacing = false;
    ack_delay_s;
    rto_s = 0.25;
  }

type state = {
  cfg : config;
  net : Net.t;
  flow_id : int;
  route : int array;
  total_pkts : int;
  received : bool array;       (* receiver-side: which seqs have arrived *)
  mutable distinct : int;      (* how many distinct seqs arrived *)
  mutable next_seq : int;      (* next fresh packet to send *)
  mutable resend : int list;   (* lost packets queued for retransmission *)
  mutable cwnd : float;
  mutable ssthresh : int;
  mutable in_flight : int;
  mutable srtt : float;
  mutable progress_stamp : int; (* [distinct] at the last RTO check *)
  mutable done_ : bool;
  on_complete : float -> unit;
}

let send_packet st seq =
  st.in_flight <- st.in_flight + 1;
  Net.inject st.net
    {
      Net.flow_id = st.flow_id;
      size_bytes = st.cfg.mss_bytes;
      route = st.route;
      hop = 0;
      injected_at = 0.0;
      payload = seq;
    }

(* Next sequence number to put on the wire: retransmissions first. *)
let take_seq st =
  match st.resend with
  | seq :: rest ->
    st.resend <- rest;
    Some seq
  | [] ->
    if st.next_seq < st.total_pkts then begin
      let seq = st.next_seq in
      st.next_seq <- seq + 1;
      Some seq
    end
    else None

(* Send as much of the window as allowed.  With pacing the packets are
   spaced over the RTT estimate (at 2x, so pacing does not lengthen
   completion); without, they go out back to back. *)
let rec pump st =
  if (not st.done_) && float_of_int st.in_flight < st.cwnd then begin
    match take_seq st with
    | None -> ()
    | Some seq ->
      send_packet st seq;
      if st.cfg.pacing then begin
        let gap = st.srtt /. (2.0 *. Float.max 1.0 st.cwnd) in
        Engine.schedule_in (Net.engine st.net) ~after:gap (fun () -> pump st)
      end
      else pump st
  end

let handle_ack st seq delivered_at rtt_sample =
  if not st.done_ then begin
    st.in_flight <- max 0 (st.in_flight - 1);
    st.srtt <- (0.875 *. st.srtt) +. (0.125 *. rtt_sample);
    if not st.received.(seq) then begin
      st.received.(seq) <- true;
      st.distinct <- st.distinct + 1
    end;
    if st.cwnd < float_of_int st.ssthresh then st.cwnd <- st.cwnd +. 1.0
    else st.cwnd <- st.cwnd +. (1.0 /. st.cwnd);
    if st.distinct >= st.total_pkts then begin
      st.done_ <- true;
      st.on_complete delivered_at
    end
    else pump st
  end

(* Timeout recovery: if a whole RTO passes without any new data
   arriving, assume the window was lost — requeue every unreceived
   in-flight sequence, halve the threshold, and restart from a small
   window (go-back-N semantics). *)
let rec watchdog st =
  if not st.done_ then begin
    Engine.schedule_in (Net.engine st.net) ~after:st.cfg.rto_s (fun () ->
        if not st.done_ then begin
          if st.distinct = st.progress_stamp then begin
            let missing = ref [] in
            for seq = st.total_pkts - 1 downto 0 do
              if (not st.received.(seq)) && not (List.mem seq st.resend) && seq < st.next_seq
              then missing := seq :: !missing
            done;
            if !missing <> [] || st.in_flight > 0 then begin
              st.resend <- !missing @ st.resend;
              st.in_flight <- 0;
              st.ssthresh <- max 2 (int_of_float (st.cwnd /. 2.0));
              st.cwnd <- 1.0;
              pump st
            end
          end;
          st.progress_stamp <- st.distinct;
          watchdog st
        end)
  end

let start_flow net cfg ~flow_id ~route ~size_bytes ~at ~on_complete =
  let total_pkts = max 1 ((size_bytes + cfg.mss_bytes - 1) / cfg.mss_bytes) in
  let st =
    {
      cfg;
      net;
      flow_id;
      route;
      total_pkts;
      received = Array.make total_pkts false;
      distinct = 0;
      next_seq = 0;
      resend = [];
      cwnd = float_of_int cfg.init_cwnd;
      ssthresh = cfg.ssthresh;
      in_flight = 0;
      srtt = 2.0 *. cfg.ack_delay_s;
      progress_stamp = 0;
      done_ = false;
      on_complete;
    }
  in
  (* Ack path: when one of our packets is delivered, the ack arrives
     after the reverse-path delay and opens the window. *)
  Net.on_delivery net (fun pkt t ->
      if pkt.Net.flow_id = flow_id && not st.done_ then begin
        let send_time = pkt.Net.injected_at in
        let rtt = t +. cfg.ack_delay_s -. send_time in
        let seq = pkt.Net.payload in
        Engine.schedule (Net.engine net) ~at:(t +. cfg.ack_delay_s) (fun () ->
            handle_ack st seq (t +. cfg.ack_delay_s) rtt)
      end);
  Engine.schedule (Net.engine net) ~at (fun () ->
      pump st;
      watchdog st)
