let flow_id ~src ~dst ~n = (src * n) + dst

let poisson_commodities net ~paths ~demands_gbps ~packet_bytes ~start ~stop =
  let n = Array.length demands_gbps in
  let eng = Net.engine net in
  Hashtbl.iter
    (fun (s, t) route ->
      let gbps = demands_gbps.(s).(t) in
      if gbps > 0.0 then begin
        let pps = gbps *. 1e9 /. (float_of_int packet_bytes *. 8.0) in
        if pps > 1e-9 then begin
          let id = flow_id ~src:s ~dst:t ~n in
          (* Give each commodity its own stream for reproducibility
             independent of scheduling order. *)
          let stream = Cisp_util.Rng.create (Hashtbl.hash (s, t, 9176)) in
          let rec arrival at =
            if at < stop then
              Engine.schedule eng ~at (fun () ->
                  Net.inject net
                    {
                      Net.flow_id = id;
                      size_bytes = packet_bytes;
                      route;
                      hop = 0;
                      injected_at = 0.0;
                      payload = 0;
                    };
                  arrival (Engine.now eng +. Cisp_util.Rng.exponential stream pps))
          in
          arrival (start +. Cisp_util.Rng.exponential stream pps)
        end
      end)
    paths
