(** Build a packet-level network from a designed topology.

    Follows the paper's simulation setup: "we aggregate the bandwidth
    of parallel links and remove the individual tower hops to focus on
    network links between the routing sites" — each built MW link is
    one simulated link at its provisioned aggregate capacity; fiber
    edges get plentiful capacity. *)

type config = {
  fiber_gbps : float;          (** capacity of each fiber edge *)
  buffer_bytes : int;          (** drop-tail buffer per link *)
}

val default_config : config
(** 400 Gbps fiber edges; 50 kB buffers (ns-3's default 100-packet
    drop-tail queue at 500 B packets). *)

val build :
  ?config:config ->
  Engine.t ->
  Cisp_design.Inputs.t ->
  Cisp_design.Topology.t ->
  mw_gbps:((int * int) -> float) ->
  Net.t
(** One node per site; a duplex link per built MW link (capacity
    [mw_gbps]) and per fiber pair; propagation delay from the
    latency-equivalent distances. *)

val provisioned_mw_gbps :
  Cisp_design.Capacity.plan -> (int * int) -> float
(** Capacity function from a step-3 plan: k^2 Gbps per link. *)
