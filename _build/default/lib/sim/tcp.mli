(** A small TCP model for the speed-mismatch experiment (paper §5,
    Fig 6).

    Models a window-based sender: slow start from an initial window,
    additive increase past the threshold, acknowledgements returning
    over an uncongested reverse path.  With [pacing] the window's
    packets are spread over one RTT estimate instead of bursting at
    line rate.  Loss recovery is timeout-based go-back-N with
    multiplicative decrease: enough for the Fig 6 scenario (unbounded
    buffers, no loss) and for finite-buffer experiments where drops
    must not wedge a flow. *)

type config = {
  mss_bytes : int;
  init_cwnd : int;          (** packets *)
  ssthresh : int;           (** packets *)
  pacing : bool;
  ack_delay_s : float;      (** reverse-path one-way delay *)
  rto_s : float;            (** retransmission timeout *)
}

val default_config : ack_delay_s:float -> config
(** MSS 1500, IW 10, ssthresh 64, no pacing, RTO 250 ms. *)

val start_flow :
  Net.t ->
  config ->
  flow_id:int ->
  route:int array ->
  size_bytes:int ->
  at:float ->
  on_complete:(float -> unit) ->
  unit
(** Transfers [size_bytes]; [on_complete] fires with the completion
    time (flow completion time = that minus [at]). *)
