(** UDP workload generation (paper §5: uniform 500-byte packets,
    Poisson arrivals per commodity). *)

val flow_id : src:int -> dst:int -> n:int -> int
(** Stable flow identifier for a commodity. *)

val poisson_commodities :
  Net.t ->
  paths:((int * int), int array) Hashtbl.t ->
  demands_gbps:Cisp_traffic.Matrix.t ->
  packet_bytes:int ->
  start:float ->
  stop:float ->
  unit
(** For every commodity with a route and positive demand, schedule
    independent Poisson packet arrivals at the demanded rate between
    [start] and [stop]. *)
