(** Routing schemes over a designed topology (paper §5).

    Besides default shortest-path routing, the paper implements
    "throughput optimal routing, and routing that minimizes the
    maximum link utilization, a scheme commonly employed by ISPs".
    Both alternatives spread load at the cost of ~10% extra latency.

    Paths are source routes (node arrays) per commodity, computed
    sequentially in descending demand with congestion-aware edge
    costs — the standard greedy realization of these schemes for
    unsplittable flows. *)

type scheme =
  | Shortest_path
  | Min_max_utilization    (** sharp penalty on hot links *)
  | Throughput_optimal     (** congestion-proportional latency inflation *)
  | Bounded_stretch of float
      (** spread load like [Min_max_utilization] but never accept a
          route longer than the bound x the commodity's shortest
          latency — the direction the paper points to (Gvozdiev et
          al. [33]) for cutting over-provisioning at a modest,
          bounded latency cost *)

type network_model = {
  inputs : Cisp_design.Inputs.t;
  topology : Cisp_design.Topology.t;
  mw_gbps : (int * int) -> float;   (** capacity of a built link *)
  fiber_gbps : float;               (** capacity of each fiber edge *)
}

val paths :
  network_model -> scheme -> demands_gbps:Cisp_traffic.Matrix.t ->
  ((int * int), int array) Hashtbl.t
(** Source route for every commodity with positive demand (key (s,t)
    with s <> t, both directions present). *)

val mean_route_latency_ms :
  network_model -> ((int * int), int array) Hashtbl.t ->
  demands_gbps:Cisp_traffic.Matrix.t -> float
(** Demand-weighted mean propagation latency of the chosen routes —
    used to show the alternatives' latency penalty without running
    packets. *)
