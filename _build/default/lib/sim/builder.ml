module Inputs = Cisp_design.Inputs
module Topology = Cisp_design.Topology
module Capacity = Cisp_design.Capacity

type config = { fiber_gbps : float; buffer_bytes : int }

(* ns-3's default drop-tail queue is 100 packets; at the paper's
   500 B packets that is 50 kB — small enough that queuing delay stays
   sub-0.1 ms and overload shows up as loss, exactly Fig 5's regime. *)
let default_config = { fiber_gbps = 400.0; buffer_bytes = 50_000 }

(* One simulated link per site pair: the built MW link when it is the
   faster medium, else the fiber edge.  This mirrors the routing
   model (see {!Routing.edges_of_model}) and the paper's own
   simplification of aggregating parallel links between sites. *)
let build ?(config = default_config) eng (inputs : Inputs.t) (topo : Topology.t) ~mw_gbps =
  let n = Inputs.n_sites inputs in
  let net = Net.create eng ~n_nodes:n in
  let buffer_of _gbps = config.buffer_bytes in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let mw = inputs.mw_km.(i).(j) and fib = inputs.fiber_km.(i).(j) in
      let use_mw = Topology.is_built topo i j && mw < fib in
      if use_mw then begin
        let gbps = mw_gbps (i, j) in
        Net.add_duplex net i j ~gbps
          ~delay_ms:(Cisp_util.Units.ms_of_km_at_c mw)
          ~buffer_bytes:(buffer_of gbps)
      end
      else if fib < infinity then
        Net.add_duplex net i j ~gbps:config.fiber_gbps
          ~delay_ms:(Cisp_util.Units.ms_of_km_at_c fib)
          ~buffer_bytes:(buffer_of config.fiber_gbps)
    done
  done;
  net

let provisioned_mw_gbps (plan : Capacity.plan) =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (lp : Capacity.link_plan) ->
      Hashtbl.replace table lp.link (Cisp_rf.Capacity.gbps_of_series lp.series))
    plan.Capacity.links;
  fun pair ->
    let key = if fst pair < snd pair then pair else (snd pair, fst pair) in
    Option.value (Hashtbl.find_opt table key) ~default:Cisp_rf.Capacity.hop_gbps
