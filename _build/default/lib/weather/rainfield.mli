(** Synthetic precipitation fields (substitute for NASA TRMM/GPM data,
    paper §6.1).

    Each 30-minute interval gets a deterministic set of storm cells:
    Gaussian rain blobs with realistic radii (tens of km) and peak
    rates (up to ~100 mm/h for convective cores).  Storm frequency
    and intensity follow a coarse seasonal and regional climatology:
    summer convection is more intense, winter systems are wider and
    weaker, and a per-region wetness map concentrates events (e.g.
    over the US southeast). *)

type storm = {
  center : Cisp_geo.Coord.t;
  radius_km : float;
  peak_mm_h : float;
}

type t = { day : int; storms : storm list }

type climate = {
  bbox : Cisp_geo.Coord.bbox;
  mean_storms_per_interval : float;
  wetness : Cisp_geo.Coord.t -> float;
      (** relative storm likelihood at a location, ~1 average *)
}

val us_climate : climate
val eu_climate : climate
val uniform_climate : Cisp_geo.Coord.bbox -> climate

val sample : ?seed:int -> climate -> day:int -> t
(** The field for (an arbitrary 30-minute interval of) [day] in
    [0, 365). *)

val rain_at : t -> Cisp_geo.Coord.t -> float
(** Rain rate in mm/h (max over overlapping cells). *)

val hurricane : center:Cisp_geo.Coord.t -> t
(** A stationary, intense, wide system (for the §2 Hurricane-Sandy
    style stress test). *)
