lib/weather/year.mli: Cisp_design Cisp_towers Rainfield
