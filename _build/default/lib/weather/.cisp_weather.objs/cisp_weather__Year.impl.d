lib/weather/year.ml: Array Cisp_data Cisp_design Cisp_geo Cisp_towers Cisp_util Failure Float List Rainfield
