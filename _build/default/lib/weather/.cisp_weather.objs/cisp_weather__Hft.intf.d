lib/weather/hft.mli:
