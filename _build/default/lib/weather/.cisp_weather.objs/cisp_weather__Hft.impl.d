lib/weather/hft.ml: Array Cisp_geo Cisp_util Failure Float Rainfield
