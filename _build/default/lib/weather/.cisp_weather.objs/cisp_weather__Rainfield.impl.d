lib/weather/rainfield.ml: Cisp_geo Cisp_util Float List
