lib/weather/failure.mli: Cisp_geo Cisp_rf Cisp_towers Rainfield
