lib/weather/rainfield.mli: Cisp_geo
