lib/weather/failure.ml: Cisp_geo Cisp_rf Cisp_towers Float List Rainfield
