(** The §2 HFT-relay loss study.

    The paper reports packet loss for an FCC-licensed Chicago-to-New-
    Jersey MW relay over 2,743 one-minute intervals spanning
    2012-10-22 to 2012-11-01 — a window that includes Hurricane Sandy
    hitting New Jersey: mean loss 16.1%, median 1.4%.

    This module reconstructs that experiment synthetically: a ~20-hop
    relay along the Chicago-Carteret great circle, ordinary weather
    for most of the window, and a hurricane parked over the eastern
    end for four days. *)

type result = {
  minutes : int;
  mean_loss : float;
  median_loss : float;
  loss_series : float array;   (** per-minute loss rates *)
}

val run : ?seed:int -> ?hops:int -> ?minutes:int -> unit -> result
(** Defaults: 20 hops, 2743 minutes. *)
