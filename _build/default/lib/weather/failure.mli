(** Rain-induced link failures (paper §6.1).

    "If attenuation exceeds a threshold that would degrade bandwidth,
    we conservatively consider a link to have failed."  A hop's
    threshold is its clear-air fade margin (longer hops have less
    margin); a link fails when any of its hops does. *)

type params = {
  f_ghz : float;
  polarization : Cisp_rf.Attenuation.polarization;
  margin_floor_db : float;     (** minimum credible margin *)
  margin_cap_db : float;       (** cap (regulators limit TX power) *)
}

val default_params : params

val hop_margin_db : ?params:params -> d_km:float -> unit -> float

val hop_failed : ?params:params -> rain_mm_h:float -> d_km:float -> unit -> bool
(** Binary failure of a single hop under uniform rain. *)

val link_failed :
  ?params:params ->
  node_position:(int -> Cisp_geo.Coord.t) ->
  Rainfield.t ->
  Cisp_towers.Hops.link ->
  bool
(** Walks the link's physical hops, sampling rain at each hop
    midpoint. *)

val hop_loss_probability : ?params:params -> rain_mm_h:float -> d_km:float -> unit -> float
(** Smooth packet-loss model for the §2 HFT-relay study: negligible
    below margin, saturating above (a logistic in the attenuation
    margin deficit), plus a small multipath-fading floor. *)
