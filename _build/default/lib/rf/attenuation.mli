(** Rain attenuation, ITU-R P.838-3 power-law model (paper §6.1).

    Specific attenuation gamma = k * R^alpha dB/km, where R is the rain
    rate in mm/h and (k, alpha) depend on frequency and polarization.
    The effective path length correction of ITU-R P.530 accounts for
    rain cells being smaller than long hops. *)

type polarization = Horizontal | Vertical

val coefficients : f_ghz:float -> polarization -> float * float
(** [(k, alpha)] for the given frequency, log-interpolated between the
    tabulated P.838-3 anchor frequencies (4-20 GHz supported; clamped
    outside). *)

val specific_attenuation_db_per_km :
  f_ghz:float -> polarization -> rain_mm_h:float -> float
(** gamma = k R^alpha. *)

val effective_path_km : d_km:float -> rain_mm_h:float -> float
(** ITU-R P.530 distance factor: d_eff = d / (1 + d / d0) with
    d0 = 35 exp(-0.015 R) (R capped at 100 mm/h). *)

val path_attenuation_db :
  f_ghz:float -> polarization -> rain_mm_h:float -> d_km:float -> float
(** Total rain attenuation over a hop: gamma * d_eff. *)

val rain_rate_for_outage :
  f_ghz:float -> polarization -> d_km:float -> margin_db:float -> float
(** Smallest rain rate (mm/h) whose path attenuation exceeds
    [margin_db] — the hop's binary failure threshold in the paper's
    weather analysis.  Found by bisection. *)
