(** Simple microwave link budget.

    Used to derive per-hop fade margins (which the weather analysis
    turns into binary failure thresholds) and to sanity-check that the
    60-100 km range assumption is consistent with realistic equipment
    parameters. *)

type t = {
  tx_power_dbm : float;       (** transmitter output power *)
  antenna_gain_dbi : float;   (** per antenna (parabolic dish) *)
  rx_threshold_dbm : float;   (** receiver sensitivity at target BER *)
  misc_losses_db : float;     (** connectors, waveguide, alignment *)
}

val default : t
(** Typical long-haul 11 GHz licensed-band radio with ~1.8 m dishes. *)

val fspl_db : f_ghz:float -> d_km:float -> float
(** Free-space path loss: 92.45 + 20 log10(f) + 20 log10(d). *)

val fade_margin_db : ?budget:t -> f_ghz:float -> d_km:float -> unit -> float
(** Received-signal margin over threshold in clear air — the rain
    attenuation a hop can absorb before outage.  Longer hops have
    smaller margins, so they fail at lower rain rates. *)

val max_range_km : ?budget:t -> f_ghz:float -> min_margin_db:float -> unit -> float
(** Longest hop that still retains [min_margin_db] of fade margin. *)
