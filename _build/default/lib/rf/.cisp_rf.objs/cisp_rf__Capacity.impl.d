lib/rf/capacity.ml: Float
