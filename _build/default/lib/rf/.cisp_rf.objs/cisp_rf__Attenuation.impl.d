lib/rf/attenuation.ml: Array Float
