lib/rf/los.ml: Cisp_geo Cisp_terrain Float Fresnel
