lib/rf/medium.ml: Attenuation Capacity Float List
