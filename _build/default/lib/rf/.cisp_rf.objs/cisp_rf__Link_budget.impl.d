lib/rf/link_budget.ml:
