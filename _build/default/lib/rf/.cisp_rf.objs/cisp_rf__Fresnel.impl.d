lib/rf/fresnel.ml: Cisp_util
