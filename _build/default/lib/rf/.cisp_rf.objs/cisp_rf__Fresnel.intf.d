lib/rf/fresnel.mli:
