lib/rf/capacity.mli:
