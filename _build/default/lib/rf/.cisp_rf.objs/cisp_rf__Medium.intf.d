lib/rf/medium.mli:
