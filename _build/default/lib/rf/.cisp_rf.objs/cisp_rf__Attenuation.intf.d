lib/rf/attenuation.mli:
