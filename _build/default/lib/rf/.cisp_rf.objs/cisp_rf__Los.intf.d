lib/rf/los.mli: Cisp_geo Cisp_terrain
