lib/rf/link_budget.mli:
