(** Microwave channel capacity model (paper §2).

    With wide channels, high-order QAM and radio multiplexing, a single
    tower-to-tower link sustains about 1 Gbps; this module exposes that
    constant and the modulation arithmetic behind it so that capacity
    planning (§3.3) and cost modelling stay consistent. *)

val hop_gbps : float
(** Design data rate of one bidirectional MW hop: 1 Gbps. *)

val shannon_gbps : bandwidth_mhz:float -> snr_db:float -> float
(** Shannon bound for reference. *)

val qam_bits_per_symbol : int -> int
(** [qam_bits_per_symbol m] for m-QAM (m a power of 4): log2 m.
    Raises [Invalid_argument] if [m] < 4 or not a power of two. *)

val qam_gbps :
  bandwidth_mhz:float -> qam:int -> coding_rate:float -> channels:int -> float
(** Practical rate: symbol rate ~ bandwidth (Nyquist), times bits per
    symbol, coding rate, and multiplexed channel count. *)

val series_for_gbps : float -> int
(** Paper §3.3 k-squared augmentation: the number of parallel tower
    series needed for a target link bandwidth — k series yield k^2 Gbps
    (1 series up to 1 Gbps, 2 for (1,4], 3 for (4,9], ...). *)

val gbps_of_series : int -> float
(** Capacity provided by [k] parallel series: k^2 * [hop_gbps]. *)
