let default_k = 1.3
let default_f_ghz = 11.0

let earth_bulge_m ?(k = default_k) ~d1_km ~d2_km () =
  let r = Cisp_util.Units.earth_radius_km in
  (* d1*d2 / (2 k R) in km, converted to metres. *)
  d1_km *. d2_km /. (2.0 *. k *. r) *. 1000.0

let fresnel_radius_m ?(f_ghz = default_f_ghz) ~d1_km ~d2_km () =
  let d = d1_km +. d2_km in
  if d <= 0.0 then 0.0
  else begin
    let lambda_m = 299.792458 /. (f_ghz *. 1000.0) in
    sqrt (lambda_m *. (d1_km *. 1000.0) *. (d2_km *. 1000.0) /. (d *. 1000.0))
  end

let midpoint_bulge_m ?(k = default_k) ~d_km () =
  earth_bulge_m ~k ~d1_km:(d_km /. 2.0) ~d2_km:(d_km /. 2.0) ()

let midpoint_fresnel_m ?(f_ghz = default_f_ghz) ~d_km () =
  fresnel_radius_m ~f_ghz ~d1_km:(d_km /. 2.0) ~d2_km:(d_km /. 2.0) ()

let required_clearance_m ?(k = default_k) ?(f_ghz = default_f_ghz) ~d1_km ~d2_km () =
  earth_bulge_m ~k ~d1_km ~d2_km () +. fresnel_radius_m ~f_ghz ~d1_km ~d2_km ()
