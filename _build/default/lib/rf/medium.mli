(** Line-of-sight transmission media (paper §3.4, "Generality").

    "The above outlined approach applies broadly across other
    line-of-sight media, such as free-space optics and millimeter
    wave networking.  Multiple technologies ... can be easily
    incorporated into this framework."  And §4: at sufficiently high
    bandwidth "one could use the same number of towers to construct a
    single line of towers with shorter tower-tower distances.  This
    can make shorter-range, but higher-bandwidth technologies like
    MMW or free-space optics more cost-effective."

    This module captures the per-technology envelope the design
    pipeline needs: range, per-hop bandwidth, and weather response. *)

type technology = Microwave | Millimeter_wave | Free_space_optics

type t = {
  technology : technology;
  name : string;
  max_range_km : float;     (** practical hop length at high availability *)
  hop_gbps : float;         (** data rate of one hop *)
  f_ghz : float;            (** carrier (FSO: nominal ~193 THz, unused by P.838) *)
  radio_usd : float;        (** per hop, both ends, installed *)
  max_parallel_chains : int option;
      (** siting / angular-separation cap on parallel chains; the 6-degree
          separation and 10.6 km lateral spread bound MW's k-squared
          trick in practice *)
}

val microwave : t
(** 11 GHz, 100 km, 1 Gbps, $150K — the paper's baseline. *)

val millimeter_wave : t
(** E-band-style: ~80 GHz, 15 km hops, 10 Gbps. *)

val free_space_optics : t
(** ~3 km hops, 40 Gbps; rain-insensitive but fog-limited. *)

type weather = { rain_mm_h : float; fog_visibility_km : float }

val clear_weather : weather

val hop_attenuation_db : t -> weather -> d_km:float -> float
(** MW / MMW: ITU-R P.838 rain attenuation.  FSO: Kruse-model fog
    attenuation (rain barely matters at optical wavelengths compared
    to fog). *)

val hop_available : t -> weather -> d_km:float -> margin_db:float -> bool

(** {2 Link-level economics (the §4 observation)} *)

type chain_cost = {
  medium : t;
  hops : int;               (** hops to span the link at this range *)
  chains : int;             (** parallel chains for the target rate *)
  towers : int;             (** total tower positions *)
  radios : int;
  capex_usd : float;
}

val chain_for :
  t -> link_km:float -> target_gbps:float -> tower_usd:float -> chain_cost
(** Cost of serving [link_km] at [target_gbps] with this medium:
    MW uses the paper's k-squared parallel series; MMW / FSO use
    ceil(target / hop rate) parallel chains of short hops.  When the
    medium's chain cap cannot reach the target, [capex_usd] is
    [infinity]. *)

val cheapest_for :
  link_km:float -> target_gbps:float -> tower_usd:float -> chain_cost
(** The §4 crossover: pick the cheapest technology for a link at a
    bandwidth target (among the three media above). *)
