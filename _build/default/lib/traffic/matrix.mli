(** Traffic matrices (paper §3.2, §4, §6.3, §6.4).

    A matrix assigns a relative volume h_ij >= 0 to each ordered site
    pair; matrices here are symmetric with zero diagonals and are
    usually normalized so entries sum to 1. *)

type t = float array array

val size : t -> int

val normalize : t -> t
(** Scale so all entries sum to 1 (identity on the all-zero matrix). *)

val total : t -> float

val scale_to_gbps : t -> aggregate_gbps:float -> t
(** Demands in Gbps summing (over ordered pairs) to [aggregate_gbps]. *)

val population_product : Cisp_data.City.t array -> t
(** h_ij proportional to pop_i * pop_j (the paper's city-city model),
    normalized. *)

val uniform_pairs : int -> t
(** Equal volume between every pair (the paper's inter-DC model),
    normalized. *)

val dc_edge : cities:Cisp_data.City.t array -> n_total:int -> dc_of:(int -> int option) -> t
(** DC-to-edge model: each city index [i < Array.length cities] sends
    traffic proportional to its population to [dc_of i] (an index in
    [0, n_total)); normalized.  Entries for cities whose [dc_of] is
    [None] are zero. *)

val mix : (float * t) list -> t
(** Weighted combination, e.g. the paper's 4:3:3 city-city / DC-edge /
    inter-DC mix; each component is normalized first, result
    normalized. *)

val map_populations : Cisp_data.City.t array -> f:(int -> float) -> t
(** Population-product with per-city multiplier [f i] applied —
    the perturbation hook. *)
