(** Traffic-model perturbations (paper §5, Fig 5).

    "each city's population is re-weighted by a factor drawn from the
    uniform distribution U[1 - gamma, 1 + gamma]". *)

val population : Cisp_data.City.t array -> gamma:float -> seed:int -> Matrix.t
(** Perturbed population-product matrix; [gamma] in [0, 1]. *)

val factors : n:int -> gamma:float -> seed:int -> float array
(** The underlying per-city multipliers (exposed for tests). *)
