lib/traffic/perturb.ml: Array Cisp_util Matrix
