lib/traffic/matrix.ml: Array Cisp_data List
