lib/traffic/perturb.mli: Cisp_data Matrix
