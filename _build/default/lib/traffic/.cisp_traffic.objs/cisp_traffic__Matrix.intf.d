lib/traffic/matrix.mli: Cisp_data
