(* Gaming over cISP (paper §7.1 / Fig 12): what a 1/3-latency network
   does to thin-client and fat-client games:

     dune exec examples/gaming_latency.exe *)

open Cisp

let () =
  Printf.printf "thin-client frame time (ms) as network latency grows:\n";
  Printf.printf "%-14s %-14s %-14s\n" "one-way ms" "conventional" "speculative+cISP";
  List.iter
    (fun l ->
      Printf.printf "%-14.0f %-14.1f %-14.1f\n" l
        (Apps.Gaming.frame_time_ms Apps.Gaming.Thin_conventional ~one_way_ms:l)
        (Apps.Gaming.frame_time_ms Apps.Gaming.Thin_speculative_cisp ~one_way_ms:l))
    [ 10.0; 30.0; 60.0; 90.0; 120.0 ];
  (* Sessions with jitter and imperfect speculation. *)
  let params = { Apps.Gaming.default_params with Apps.Gaming.speculation_coverage = 0.9 } in
  let s =
    Apps.Gaming.simulate_session ~params Apps.Gaming.Thin_speculative_cisp ~one_way_ms:60.0
      ~inputs:20_000
  in
  Printf.printf "\n90%%-coverage speculation at 60 ms one-way: p50=%.0f ms, p95=%.0f ms, p99=%.0f ms\n"
    s.Util.Stats.p50 s.Util.Stats.p95 s.Util.Stats.p99;
  (* The economics (paper §8): what a gamer's dollar says. *)
  Printf.printf "a $4/month 'accelerated VPN' values low latency at $%.1f per GB;\n"
    (Apps.Econ.gaming_value_per_gb ());
  Printf.printf "cISP delivers it at well under $1 per GB.\n"
