(* The paper's Europe instantiation (Fig 8): same methodology, cities
   over 300k population, fiber assumed at the US-like 1.9x inflation:

     dune exec examples/europe_backbone.exe *)

open Cisp

let () =
  let config =
    { Design.Scenario.europe_config with Design.Scenario.n_sites = Some 40 }
  in
  let a = Design.Scenario.artifacts ~config () in
  Printf.printf "European sites: %d (towers %d)\n%!" (Array.length a.Design.Scenario.sites)
    (List.length a.Design.Scenario.towers);
  let inputs = Design.Scenario.population_inputs a in
  let topo = Design.Scenario.design inputs ~budget:1100 in
  Printf.printf "stretch %.3f with %d towers (paper: 1.04 with ~3k at full scale)\n"
    (Design.Topology.stretch_of topo) topo.Design.Topology.cost;
  (* A few emblematic pairs. *)
  let d = Design.Topology.distances topo in
  let name i = a.Design.Scenario.sites.(i).Data.City.name in
  let find prefix =
    let rec go i =
      if i >= Array.length a.Design.Scenario.sites then None
      else if String.length (name i) >= String.length prefix
              && String.sub (name i) 0 (String.length prefix) = prefix
      then Some i
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun (x, y) ->
      match (find x, find y) with
      | Some i, Some j ->
        Printf.printf "%-12s -> %-12s: %.1f ms one-way (c-latency %.1f ms, stretch %.2f)\n" x y
          (Util.Units.ms_of_km_at_c d.(i).(j))
          (Util.Units.ms_of_km_at_c inputs.Design.Inputs.geodesic_km.(i).(j))
          (Design.Topology.pair_stretch inputs d i j)
      | _ -> ())
    [ ("London", "Berlin"); ("Paris", "Madrid"); ("Amsterdam", "Rome"); ("Warsaw", "Paris") ]
