examples/interdc.ml: Array Cisp Data Design List Printf Traffic Util
