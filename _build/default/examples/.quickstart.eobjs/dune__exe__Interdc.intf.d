examples/interdc.mli:
