examples/quickstart.ml: Array Cisp Data Design Geo List Printf Traffic
