examples/weather_resilience.ml: Array Cisp Design List Printf Util Weather
