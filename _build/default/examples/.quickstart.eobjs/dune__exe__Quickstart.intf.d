examples/quickstart.mli:
