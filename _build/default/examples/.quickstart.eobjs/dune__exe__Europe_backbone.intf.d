examples/europe_backbone.mli:
