examples/us_backbone.ml: Array Cisp Data Design Fiber Float List Printf Sys Towers
