examples/weather_resilience.mli:
