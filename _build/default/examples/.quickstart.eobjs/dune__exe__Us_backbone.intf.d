examples/us_backbone.mli:
