examples/gaming_latency.ml: Apps Cisp List Printf Util
