examples/europe_backbone.ml: Array Cisp Data Design List Printf String Util
