examples/gaming_latency.mli:
