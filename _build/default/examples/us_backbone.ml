(* The paper's headline scenario: a ~1.05x-stretch backbone across the
   US population centers (Fig 3), on a reduced site count so the
   example runs in ~30 s:

     dune exec examples/us_backbone.exe            # 40 centers
     SITES=112 dune exec examples/us_backbone.exe  # full scale *)

open Cisp

let () =
  let n_sites =
    match Sys.getenv_opt "SITES" with Some s -> int_of_string s | None -> 40
  in
  let config = { Design.Scenario.default_config with n_sites = Some n_sites } in
  Printf.printf "building artifacts (terrain, %d-center tower registry, fiber)...\n%!" n_sites;
  let a = Design.Scenario.artifacts ~config () in
  Printf.printf "  towers: %d culled, %d feasible hops, fiber inflation %.2fx\n%!"
    (List.length a.Design.Scenario.towers)
    a.Design.Scenario.hops.Towers.Hops.feasible_hops
    (Fiber.Conduit.mean_latency_inflation a.Design.Scenario.fiber);
  let inputs = Design.Scenario.population_inputs a in
  let budget = 27 * n_sites in
  Printf.printf "designing at %d-tower budget...\n%!" budget;
  let topo = Design.Scenario.design inputs ~budget in
  Printf.printf "  %d links, stretch %.3f (paper: 1.05 at full scale)\n%!"
    (List.length topo.Design.Topology.built)
    (Design.Topology.stretch_of topo);
  let spare = Design.Capacity.spare_from_registry a.Design.Scenario.hops in
  let plan = Design.Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:100.0 in
  Printf.printf "provisioned for 100 Gbps: %d hops" plan.Design.Capacity.hops_total;
  List.iter
    (fun (cls, n) -> Printf.printf ", %d hops need %d new towers/end" n cls)
    plan.Design.Capacity.hop_classes;
  Printf.printf "\ncost per GB: $%.2f (paper: $0.81)\n"
    (Design.Capacity.cost_per_gb Design.Cost.default plan ~aggregate_gbps:100.0);
  (* Show the five busiest links. *)
  let loads = Design.Capacity.route_loads inputs topo ~aggregate_gbps:100.0 in
  let top =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) loads |> List.filteri (fun i _ -> i < 5)
  in
  Printf.printf "busiest links:\n";
  List.iter
    (fun ((i, j), gbps) ->
      Printf.printf "  %-24s <-> %-24s %.1f Gbps\n" inputs.Design.Inputs.sites.(i).Data.City.name
        inputs.Design.Inputs.sites.(j).Data.City.name gbps)
    top
