(* Quickstart: design a tiny speed-of-light network from scratch.

   Five cities, synthetic everything; shows the three design steps of
   the paper on a scale that runs in under a second:

     dune exec examples/quickstart.exe *)

open Cisp

let () =
  (* 1. Sites: five cities around a 400 km ring. *)
  let sites =
    Array.init 5 (fun i ->
        let c =
          Geo.Geodesy.destination
            (Geo.Coord.make ~lat:39.0 ~lon:(-95.0))
            ~bearing_deg:(float_of_int i *. 72.0) ~distance_km:400.0
        in
        Data.City.make (Printf.sprintf "City-%d" i) ~lat:(Geo.Coord.lat c)
          ~lon:(Geo.Coord.lon c)
          ~population:((i + 1) * 250_000))
  in
  (* 2. Inputs: microwave at 1.02x geodesic, fiber at 1.9x (the two
     empirical constants the whole paper revolves around), and
     population-product traffic. *)
  let inputs =
    Design.Inputs.synthetic ~sites ~mw_stretch:1.02 ~mw_cost_per_km:0.02 ~fiber_stretch:1.9
      ~traffic:(Traffic.Matrix.population_product sites)
  in
  Printf.printf "fiber-only mean stretch: %.3f\n"
    (Design.Topology.stretch_of (Design.Topology.empty inputs));
  (* 3. Design under a 60-tower budget (greedy + local search),
     cross-checked against the exact ILP. *)
  let budget = 60 in
  let topo = Design.Scenario.design inputs ~budget in
  Printf.printf "designed network: %d links, %d towers, stretch %.3f\n"
    (List.length topo.Design.Topology.built)
    topo.Design.Topology.cost
    (Design.Topology.stretch_of topo);
  let exact, stats = Design.Ilp.design inputs ~budget ~candidates:(Design.Greedy.candidates inputs) in
  Printf.printf "exact ILP (%d LP solves): stretch %.3f\n" stats.Design.Ilp.lp_solves
    (Design.Topology.stretch_of exact);
  (* 4. Provision 20 Gbps and price it. *)
  let plan = Design.Capacity.plan inputs topo ~aggregate_gbps:20.0 in
  Printf.printf "capacity plan: %d hops, %d radios, %d new towers\n"
    plan.Design.Capacity.hops_total plan.Design.Capacity.radios plan.Design.Capacity.new_towers;
  Printf.printf "cost: $%.2f per GB at 20 Gbps\n"
    (Design.Capacity.cost_per_gb Design.Cost.default plan ~aggregate_gbps:20.0);
  List.iter
    (fun (i, j) ->
      Printf.printf "  built: %s <-> %s (%.0f km MW vs %.0f km fiber)\n"
        sites.(i).Data.City.name sites.(j).Data.City.name
        inputs.Design.Inputs.mw_km.(i).(j) inputs.Design.Inputs.fiber_km.(i).(j))
    topo.Design.Topology.built
