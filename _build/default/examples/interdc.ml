(* An inter-datacenter cISP (paper §6.3): connect the six public US
   Google datacenter locations with equal pairwise capacity:

     dune exec examples/interdc.exe *)

open Cisp

let () =
  let dcs = Data.Datacenters.all in
  let config =
    {
      Design.Scenario.default_config with
      Design.Scenario.region = Design.Scenario.Custom ("interdc-example", dcs);
    }
  in
  let a = Design.Scenario.artifacts ~config () in
  let sites = a.Design.Scenario.sites in
  let traffic = Traffic.Matrix.uniform_pairs (Array.length sites) in
  let inputs = Design.Scenario.inputs a ~traffic in
  let topo = Design.Scenario.design inputs ~budget:450 in
  Printf.printf "inter-DC network: %d links, %d towers, stretch %.3f\n"
    (List.length topo.Design.Topology.built)
    topo.Design.Topology.cost
    (Design.Topology.stretch_of topo);
  let d = Design.Topology.distances topo in
  Printf.printf "%-28s %-28s %-10s %-10s\n" "from" "to" "ms" "stretch";
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun j _ ->
          if i < j then
            Printf.printf "%-28s %-28s %-10.2f %-10.2f\n" sites.(i).Data.City.name
              sites.(j).Data.City.name
              (Util.Units.ms_of_km_at_c d.(i).(j))
              (Design.Topology.pair_stretch inputs d i j))
        sites)
    sites;
  let spare = Design.Capacity.spare_from_registry a.Design.Scenario.hops in
  let plan = Design.Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:100.0 in
  Printf.printf "cost per GB at 100 Gbps: $%.2f (cheaper than the city-city model, as in Fig 9)\n"
    (Design.Capacity.cost_per_gb Design.Cost.default plan ~aggregate_gbps:100.0)
