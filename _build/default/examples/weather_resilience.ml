(* Weather resilience (paper §6.1 / Fig 7): design a regional network
   and sweep a synthetic year of precipitation over it:

     dune exec examples/weather_resilience.exe *)

open Cisp

let () =
  let config = { Design.Scenario.default_config with n_sites = Some 25 } in
  let a = Design.Scenario.artifacts ~config () in
  let inputs = Design.Scenario.population_inputs a in
  let topo = Design.Scenario.design inputs ~budget:700 in
  Printf.printf "network: %d links, fair-weather stretch %.3f\n%!"
    (List.length topo.Design.Topology.built)
    (Design.Topology.stretch_of topo);
  let r =
    Weather.Year.run ~intervals:120 ~climate:Weather.Rainfield.us_climate
      ~hops:a.Design.Scenario.hops inputs topo
  in
  Printf.printf "%d intervals, %.1f links down on average\n" r.Weather.Year.intervals
    r.Weather.Year.mean_failed_links;
  let med f = Util.Stats.median (Array.map f r.Weather.Year.per_pair) in
  Printf.printf "median across pairs:\n";
  Printf.printf "  fair-weather stretch : %.3f\n" (med (fun p -> p.Weather.Year.best));
  Printf.printf "  99th pct over a year : %.3f\n" (med (fun p -> p.Weather.Year.p99));
  Printf.printf "  worst over a year    : %.3f\n" (med (fun p -> p.Weather.Year.worst));
  Printf.printf "  fiber fallback       : %.3f\n" (med (fun p -> p.Weather.Year.fiber));
  Printf.printf "even the worst weather keeps the median pair %.1fx faster than fiber.\n"
    (med (fun p -> p.Weather.Year.fiber) /. med (fun p -> p.Weather.Year.worst))
