open Cisp_apps

let check_float eps = Alcotest.(check (float eps))

(* ---------- Web ---------- *)

let pages = Web.generate ~count:40 ()

let test_web_corpus_shape () =
  Alcotest.(check int) "count" 40 (List.length pages);
  List.iter
    (fun p ->
      Alcotest.(check bool) "objects" true (List.length p.Web.objects >= 5);
      Alcotest.(check bool) "rtt band" true (p.Web.base_rtt_ms >= 15.0 && p.Web.base_rtt_ms <= 300.0);
      (* first object is the root HTML at level 0 *)
      Alcotest.(check int) "root level" 0 (List.hd p.Web.objects).Web.level)
    pages

let test_web_deterministic () =
  let again = Web.generate ~count:40 () in
  let p1 = List.hd pages and p2 = List.hd again in
  check_float 0.0 "same rtt" p1.Web.base_rtt_ms p2.Web.base_rtt_ms;
  Alcotest.(check int) "same objects" (List.length p1.Web.objects) (List.length p2.Web.objects)

let test_web_plt_scaling_monotone () =
  List.iter
    (fun p ->
      let base = Web.plt_ms p Web.baseline in
      let fast = Web.plt_ms p Web.cisp in
      let sel = Web.plt_ms p Web.cisp_selective in
      Alcotest.(check bool) "cisp faster" true (fast < base);
      Alcotest.(check bool) "selective between" true (sel <= base +. 1e-9 && sel >= fast -. 1e-9))
    pages

let test_web_plt_sublinear_in_rtt () =
  (* Reducing RTT by 67% must reduce PLT by less than 67% (non-network
     time) — the paper's central observation. *)
  let p = List.hd pages in
  let base = Web.plt_ms p Web.baseline in
  let fast = Web.plt_ms p Web.cisp in
  Alcotest.(check bool) "reduction < RTT reduction" true ((base -. fast) /. base < 0.67)

let test_web_object_times () =
  let p = List.hd pages in
  let base = Web.object_load_times_ms p Web.baseline in
  let fast = Web.object_load_times_ms p Web.cisp in
  Alcotest.(check int) "one time per object" (List.length p.Web.objects) (List.length base);
  List.iter2
    (fun b f -> Alcotest.(check bool) "every object faster" true (f < b))
    base fast

let test_web_c2s_fraction_band () =
  let f = Web.c2s_byte_fraction pages in
  Alcotest.(check bool)
    (Printf.sprintf "c2s fraction %.3f in [0.03, 0.15]" f)
    true (f > 0.03 && f < 0.15)

(* ---------- Gaming ---------- *)

let test_gaming_speculative_wins () =
  List.iter
    (fun l ->
      let conv = Gaming.frame_time_ms Gaming.Thin_conventional ~one_way_ms:l in
      let spec = Gaming.frame_time_ms Gaming.Thin_speculative_cisp ~one_way_ms:l in
      Alcotest.(check bool) "speculative faster" true (spec < conv))
    [ 10.0; 50.0; 150.0 ]

let test_gaming_linear_in_latency () =
  let f l = Gaming.frame_time_ms Gaming.Thin_conventional ~one_way_ms:l in
  check_float 1e-9 "slope 2x one-way" 100.0 (f 100.0 -. f 50.0)

let test_gaming_coverage_zero_equals_conventional () =
  let params = { Gaming.default_params with Gaming.speculation_coverage = 0.0 } in
  check_float 1e-9 "no speculation = conventional"
    (Gaming.frame_time_ms Gaming.Thin_conventional ~one_way_ms:40.0)
    (Gaming.frame_time_ms ~params Gaming.Thin_speculative_cisp ~one_way_ms:40.0)

let test_gaming_fat_client_ratio () =
  (* Network part shrinks exactly by the cISP factor. *)
  let params = { Gaming.default_params with Gaming.server_tick_ms = 0.0; render_ms = 0.0 } in
  let conv = Gaming.frame_time_ms ~params Gaming.Fat_conventional ~one_way_ms:60.0 in
  let cisp = Gaming.frame_time_ms ~params Gaming.Fat_cisp ~one_way_ms:60.0 in
  check_float 1e-9 "3x reduction" 3.0 (conv /. cisp)

let test_gaming_session_stats () =
  let s = Gaming.simulate_session Gaming.Thin_speculative_cisp ~one_way_ms:50.0 ~inputs:5000 in
  Alcotest.(check int) "samples" 5000 s.Cisp_util.Stats.n;
  Alcotest.(check bool) "jitter ordering" true (s.Cisp_util.Stats.p99 >= s.Cisp_util.Stats.p50)

let test_gaming_sweep () =
  let series = Gaming.sweep Gaming.Thin_conventional ~one_way_ms_list:[ 10.0; 20.0 ] in
  Alcotest.(check int) "two points" 2 (List.length series)

(* ---------- Econ ---------- *)

let test_econ_search_anchors () =
  (* The paper's anchors: $1.84/GB at 200 ms, $3.74/GB at 400 ms. *)
  check_float 0.05 "200ms" 1.84 (Econ.search_value_per_gb ~speedup_ms:200.0 ());
  check_float 0.08 "400ms" 3.74 (Econ.search_value_per_gb ~speedup_ms:400.0 ());
  check_float 0.05 "100ms interpolates" 0.92 (Econ.search_value_per_gb ~speedup_ms:100.0 ())

let test_econ_ecommerce_band () =
  let r = Econ.ecommerce_value_per_gb ~speedup_ms:200.0 () in
  check_float 0.2 "low end" 3.26 r.Econ.low;
  check_float 1.2 "high end" 22.82 r.Econ.high

let test_econ_gaming () =
  check_float 0.2 "vpn pricing" 3.7 (Econ.gaming_value_per_gb ())

let test_econ_steam () =
  check_float 1.0 "steam aggregate" 27.0
    (Econ.steam_us_aggregate_gbps ~players:16_000_000 ~us_share:0.17 ~kbps_per_player:10.0)

let test_econ_summary_exceeds_cost () =
  List.iter
    (fun v -> Alcotest.(check bool) (v.Econ.application ^ " exceeds $0.81") true v.Econ.exceeds_cost)
    (Econ.summary ~cost_per_gb:0.81)

let suites =
  [
    ( "apps.web",
      [
        Alcotest.test_case "corpus shape" `Quick test_web_corpus_shape;
        Alcotest.test_case "deterministic" `Quick test_web_deterministic;
        Alcotest.test_case "scaling monotone" `Quick test_web_plt_scaling_monotone;
        Alcotest.test_case "sublinear in rtt" `Quick test_web_plt_sublinear_in_rtt;
        Alcotest.test_case "object times" `Quick test_web_object_times;
        Alcotest.test_case "c2s byte fraction" `Quick test_web_c2s_fraction_band;
      ] );
    ( "apps.gaming",
      [
        Alcotest.test_case "speculative wins" `Quick test_gaming_speculative_wins;
        Alcotest.test_case "linear in latency" `Quick test_gaming_linear_in_latency;
        Alcotest.test_case "zero coverage" `Quick test_gaming_coverage_zero_equals_conventional;
        Alcotest.test_case "fat client ratio" `Quick test_gaming_fat_client_ratio;
        Alcotest.test_case "session stats" `Quick test_gaming_session_stats;
        Alcotest.test_case "sweep" `Quick test_gaming_sweep;
      ] );
    ( "apps.econ",
      [
        Alcotest.test_case "search anchors" `Quick test_econ_search_anchors;
        Alcotest.test_case "ecommerce band" `Quick test_econ_ecommerce_band;
        Alcotest.test_case "gaming" `Quick test_econ_gaming;
        Alcotest.test_case "steam" `Quick test_econ_steam;
        Alcotest.test_case "summary" `Quick test_econ_summary_exceeds_cost;
      ] );
  ]
