open Cisp_orbit

let coord = Cisp_geo.Coord.make
let nyc = coord ~lat:40.71 ~lon:(-74.01)
let la = coord ~lat:34.05 ~lon:(-118.24)

let test_period () =
  (* 550 km circular orbit: ~95.6 minutes. *)
  let t = Constellation.orbital_period Constellation.starlink_like in
  Alcotest.(check bool) (Printf.sprintf "period %.0f s ~ 5740" t) true
    (t > 5_600.0 && t < 5_900.0);
  (* higher orbits are slower *)
  Alcotest.(check bool) "1150 km slower" true
    (Constellation.orbital_period Constellation.sparse_shell > t)

let test_positions_on_shell () =
  let shell = Constellation.starlink_like in
  let sats = Constellation.positions shell ~t_s:137.0 in
  Alcotest.(check int) "count" (shell.Constellation.n_planes * shell.Constellation.sats_per_plane)
    (Array.length sats);
  let r_expect = 6371.0 +. shell.Constellation.altitude_km in
  Array.iter
    (fun s ->
      let x, y, z = s.Constellation.position_ecef in
      let r = sqrt ((x *. x) +. (y *. y) +. (z *. z)) in
      Alcotest.(check (float 0.5)) "on the shell" r_expect r)
    sats

let test_positions_move () =
  let shell = Constellation.sparse_shell in
  let a = (Constellation.positions shell ~t_s:0.0).(0) in
  let b = (Constellation.positions shell ~t_s:60.0).(0) in
  let d =
    let x1, y1, z1 = a.Constellation.position_ecef in
    let x2, y2, z2 = b.Constellation.position_ecef in
    sqrt (((x1 -. x2) ** 2.0) +. ((y1 -. y2) ** 2.0) +. ((z1 -. z2) ** 2.0))
  in
  (* ~7.3 km/s orbital velocity: ~440 km in a minute. *)
  Alcotest.(check bool) (Printf.sprintf "moved %.0f km in 60s" d) true (d > 300.0 && d < 600.0)

let test_visibility_geometry () =
  let shell = Constellation.starlink_like in
  let sats = Constellation.positions shell ~t_s:0.0 in
  (* A satellite is visible from (nearly) its own subpoint and not from
     the antipode. *)
  let s = sats.(7) in
  let sub = s.Constellation.subpoint in
  Alcotest.(check bool) "visible from subpoint" true (Constellation.visible s sub);
  let anti =
    coord
      ~lat:(-.Cisp_geo.Coord.lat sub)
      ~lon:(Cisp_geo.Coord.lon sub +. 180.0)
  in
  Alcotest.(check bool) "not visible from antipode" false (Constellation.visible s anti)

let test_dense_path_exists () =
  match Constellation.path_latency_ms Constellation.starlink_like ~t_s:0.0 nyc la with
  | None -> Alcotest.fail "dense shell should connect NYC-LA"
  | Some ms ->
    let geo = Cisp_geo.Geodesy.c_latency_ms nyc la in
    let stretch = ms /. geo in
    Alcotest.(check bool)
      (Printf.sprintf "stretch %.2f in (1, 4)" stretch)
      true
      (stretch > 1.0 && stretch < 4.0)

let test_density_claim () =
  (* The paper's claim: matching terrestrial latency needs very high
     density.  The sparse shell must be worse in coverage or median. *)
  let dense = Constellation.pair_stretch_over_time ~samples:16 Constellation.starlink_like nyc la in
  let sparse = Constellation.pair_stretch_over_time ~samples:16 Constellation.sparse_shell nyc la in
  Alcotest.(check bool) "dense covers" true (dense.Constellation.coverage > 0.9);
  Alcotest.(check bool) "sparse degraded" true
    (sparse.Constellation.coverage < dense.Constellation.coverage
    || sparse.Constellation.stretch_p50 > dense.Constellation.stretch_p50);
  Alcotest.(check bool) "time variation exists" true
    (dense.Constellation.stretch_p95 >= dense.Constellation.stretch_p50)

let suites =
  [
    ( "orbit.constellation",
      [
        Alcotest.test_case "orbital period" `Quick test_period;
        Alcotest.test_case "positions on shell" `Quick test_positions_on_shell;
        Alcotest.test_case "positions move" `Quick test_positions_move;
        Alcotest.test_case "visibility geometry" `Quick test_visibility_geometry;
        Alcotest.test_case "dense path" `Quick test_dense_path_exists;
        Alcotest.test_case "density claim" `Quick test_density_claim;
      ] );
  ]
