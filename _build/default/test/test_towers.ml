open Cisp_towers

let coord = Cisp_geo.Coord.make

(* Small deterministic fixture: a flat region with a handful of sites. *)
let dem = Cisp_terrain.Dem.create ~seed:3 Cisp_terrain.Dem.Flat
let cache = Cisp_terrain.Dem_cache.create dem

let sites =
  [
    Cisp_data.City.make "Alpha" ~lat:40.0 ~lon:(-100.0) ~population:1_000_000;
    Cisp_data.City.make "Beta" ~lat:40.0 ~lon:(-97.0) ~population:600_000;
    Cisp_data.City.make "Gamma" ~lat:41.5 ~lon:(-98.5) ~population:400_000;
  ]

let towers = Synth.generate ~dem ~sites ()
let culled = Culling.apply towers

let test_synth_nonempty_deterministic () =
  Alcotest.(check bool) "generated towers" true (List.length towers > 50);
  let again = Synth.generate ~dem ~sites () in
  Alcotest.(check int) "deterministic count" (List.length towers) (List.length again);
  let ids = List.map (fun (t : Tower.t) -> t.id) towers in
  Alcotest.(check int) "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_synth_heights_in_range () =
  List.iter
    (fun (t : Tower.t) ->
      Alcotest.(check bool) "height in [50, 350]" true (t.height_m >= 50.0 && t.height_m <= 350.0))
    towers

let test_culling_fcc_height () =
  List.iter
    (fun (t : Tower.t) ->
      match t.source with
      | Tower.Fcc -> Alcotest.(check bool) "fcc over 100m" true (t.height_m >= 100.0)
      | Tower.Rental | Tower.City -> ())
    culled

let test_culling_cell_cap () =
  let cells = Hashtbl.create 64 in
  List.iter
    (fun (t : Tower.t) ->
      let key =
        ( int_of_float (Float.floor (Cisp_geo.Coord.lat t.position /. 0.5)),
          int_of_float (Float.floor (Cisp_geo.Coord.lon t.position /. 0.5)) )
      in
      Hashtbl.replace cells key (1 + Option.value (Hashtbl.find_opt cells key) ~default:0))
    culled;
  Hashtbl.iter
    (fun _ count -> Alcotest.(check bool) "cell under cap" true (count <= 50))
    cells

let test_culling_subset () =
  let ids = List.map (fun (t : Tower.t) -> t.id) towers in
  List.iter
    (fun (t : Tower.t) ->
      Alcotest.(check bool) "culled is subset" true (List.mem t.id ids))
    culled

let hops = Hops.build ~cache ~sites ~towers:culled ()

let test_hops_graph_shape () =
  Alcotest.(check int) "site nodes first" 3 hops.n_sites;
  Alcotest.(check bool) "has feasible hops" true (hops.feasible_hops > 0);
  Alcotest.(check int) "graph size" (3 + List.length culled)
    (Cisp_graph.Graph.node_count hops.graph)

let test_hops_link_properties () =
  match Hops.shortest_link hops ~src:0 ~dst:1 with
  | None -> Alcotest.fail "Alpha-Beta should connect (flat terrain, 255km)"
  | Some l ->
    Alcotest.(check bool) "positive distance" true (l.distance_km > 0.0);
    Alcotest.(check bool) "stretch >= 1" true (Hops.link_stretch l >= 1.0);
    Alcotest.(check bool) "reasonable stretch" true (Hops.link_stretch l < 1.6);
    Alcotest.(check bool) "has towers" true (l.tower_count > 0);
    (* path endpoints are the sites *)
    (match l.node_path with
    | first :: _ -> Alcotest.(check int) "starts at src" 0 first
    | [] -> Alcotest.fail "empty path");
    Alcotest.(check int) "ends at dst" 1 (List.nth l.node_path (List.length l.node_path - 1));
    (* every hop within LoS range *)
    List.iter
      (fun (_, _) -> ())
      (Hops.hops_of_link l);
    Alcotest.(check int) "hops = path - 1" (List.length l.node_path - 1)
      (List.length (Hops.hops_of_link l))

let test_hops_symmetry () =
  let l01 = Hops.shortest_link hops ~src:0 ~dst:1 in
  let l10 = Hops.shortest_link hops ~src:1 ~dst:0 in
  match (l01, l10) with
  | Some a, Some b ->
    Alcotest.(check (float 1e-6)) "symmetric distance" a.distance_km b.distance_km
  | _ -> Alcotest.fail "both directions should exist"

let test_all_links_matrix () =
  let m = Hops.all_links hops in
  Alcotest.(check bool) "diagonal none" true (m.(0).(0) = None);
  (match m.(0).(1) with
  | Some l -> Alcotest.(check int) "src recorded" 0 l.src
  | None -> Alcotest.fail "missing 0-1");
  match (m.(0).(2), m.(2).(0)) with
  | Some a, Some b -> Alcotest.(check (float 1e-6)) "matrix symmetric" a.distance_km b.distance_km
  | _ -> Alcotest.fail "missing 0-2"

let test_height_fraction_reduces_feasibility () =
  let restricted =
    Hops.build
      ~config:{ Hops.default_config with height_fraction = 0.45 }
      ~cache ~sites ~towers:culled ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer hops with 0.45 height (%d vs %d)" restricted.feasible_hops
       hops.feasible_hops)
    true
    (restricted.feasible_hops < hops.feasible_hops)

let test_shorter_range_reduces_feasibility () =
  let restricted =
    Hops.build
      ~config:
        {
          Hops.default_config with
          los_params = { Cisp_rf.Los.default_params with max_range_km = 60.0 };
        }
      ~cache ~sites ~towers:culled ()
  in
  Alcotest.(check bool) "fewer hops with 60km range" true
    (restricted.feasible_hops < hops.feasible_hops)

let test_usable_height () =
  let t = Tower.make ~id:0 ~position:(coord ~lat:40.0 ~lon:(-100.0)) ~height_m:200.0 ~source:Tower.Fcc in
  Alcotest.(check (float 1e-9)) "fraction" 130.0 (Tower.usable_height_m t ~fraction:0.65)

let suites =
  [
    ( "towers.synth",
      [
        Alcotest.test_case "nonempty deterministic" `Quick test_synth_nonempty_deterministic;
        Alcotest.test_case "heights in range" `Quick test_synth_heights_in_range;
      ] );
    ( "towers.culling",
      [
        Alcotest.test_case "fcc height filter" `Quick test_culling_fcc_height;
        Alcotest.test_case "cell cap" `Quick test_culling_cell_cap;
        Alcotest.test_case "subset" `Quick test_culling_subset;
      ] );
    ( "towers.hops",
      [
        Alcotest.test_case "graph shape" `Quick test_hops_graph_shape;
        Alcotest.test_case "link properties" `Quick test_hops_link_properties;
        Alcotest.test_case "symmetry" `Quick test_hops_symmetry;
        Alcotest.test_case "all links matrix" `Quick test_all_links_matrix;
        Alcotest.test_case "height fraction restricts" `Quick test_height_fraction_reduces_feasibility;
        Alcotest.test_case "range restricts" `Quick test_shorter_range_reduces_feasibility;
        Alcotest.test_case "usable height" `Quick test_usable_height;
      ] );
  ]

(* ---------- Refine (paper section 6.5) ---------- *)

let refine_session () =
  Refine.create ~hops ~src:0 ~dst:1 ~model:Refine.default_model

let test_refine_prior_viable () =
  let s = Refine.stats ~samples:60 (refine_session ()) in
  Alcotest.(check bool)
    (Printf.sprintf "viability %.2f > 0.5" s.Refine.viability)
    true (s.Refine.viability > 0.5);
  Alcotest.(check bool) "several distinct paths" true (s.Refine.distinct_paths >= 2);
  Alcotest.(check bool) "p95 >= p50" true (s.Refine.length_p95_km >= s.Refine.length_p50_km)

let test_refine_sample_paths_sorted () =
  let paths = Refine.sample_paths ~samples:60 (refine_session ()) in
  Alcotest.(check bool) "found paths" true (paths <> []);
  let ds = List.map fst paths in
  Alcotest.(check bool) "sorted" true (List.sort Float.compare ds = ds);
  (* Paths run site-to-site: first and last markers are the sites. *)
  List.iter
    (fun (_, p) ->
      Alcotest.(check int) "starts at src marker" (-1) (List.hd p);
      Alcotest.(check int) "ends at dst marker" (-2) (List.nth p (List.length p - 1)))
    paths

let test_refine_rejection_shrinks_viability () =
  let base = Refine.stats ~samples:60 (refine_session ()) in
  let s = refine_session () in
  (* Reject every tower used by the best prior path. *)
  (match Refine.sample_paths ~samples:60 s with
  | (_, best) :: _ ->
    List.iter (fun t -> if t >= 0 then Refine.confirm s ~tower:t Refine.Rejected) best
  | [] -> ());
  let after = Refine.stats ~samples:60 s in
  Alcotest.(check bool) "viability does not grow" true
    (after.Refine.viability <= base.Refine.viability +. 0.15)

let test_refine_committed_path () =
  let s = refine_session () in
  Alcotest.(check bool) "nothing committed initially" true (Refine.committed_path s = None);
  (match Refine.sample_paths ~samples:60 s with
  | (_, best) :: _ ->
    List.iter (fun t -> if t >= 0 then Refine.confirm s ~tower:t (Refine.Acquired 1.0)) best;
    (match Refine.committed_path s with
    | Some (d, _) -> Alcotest.(check bool) "committed has length" true (d > 0.0)
    | None -> Alcotest.fail "expected committed path after confirming")
  | [] -> Alcotest.fail "expected prior paths")

let test_refine_deterministic () =
  let a = Refine.sample_paths ~samples:40 (refine_session ()) in
  let b = Refine.sample_paths ~samples:40 (refine_session ()) in
  Alcotest.(check int) "same path count" (List.length a) (List.length b)

let refine_suite =
  ( "towers.refine",
    [
      Alcotest.test_case "prior viable" `Quick test_refine_prior_viable;
      Alcotest.test_case "sample paths sorted" `Quick test_refine_sample_paths_sorted;
      Alcotest.test_case "rejection shrinks viability" `Quick test_refine_rejection_shrinks_viability;
      Alcotest.test_case "committed path" `Quick test_refine_committed_path;
      Alcotest.test_case "deterministic" `Quick test_refine_deterministic;
    ] )

let suites = suites @ [ refine_suite ]
