open Cisp_fiber

let sites =
  [
    Cisp_data.City.make "A" ~lat:40.0 ~lon:(-100.0) ~population:500_000;
    Cisp_data.City.make "B" ~lat:41.0 ~lon:(-96.0) ~population:400_000;
    Cisp_data.City.make "C" ~lat:38.5 ~lon:(-97.5) ~population:300_000;
    Cisp_data.City.make "D" ~lat:42.5 ~lon:(-93.0) ~population:200_000;
    Cisp_data.City.make "E" ~lat:37.0 ~lon:(-94.0) ~population:100_000;
  ]

let net = Conduit.build ~sites ()

let test_connected () =
  let n = List.length sites in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        Alcotest.(check bool) "finite route" true (Conduit.route_km net i j < infinity)
    done
  done

let test_routes_exceed_geodesic () =
  let arr = Array.of_list sites in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      let geo = Cisp_geo.Geodesy.distance_km arr.(i).Cisp_data.City.coord arr.(j).Cisp_data.City.coord in
      Alcotest.(check bool) "route >= geodesic" true (Conduit.route_km net i j >= geo *. 0.999)
    done
  done

let test_latency_factor () =
  Alcotest.(check (float 1e-9)) "latency = 1.5x route"
    (Conduit.route_km net 0 1 *. 1.5)
    (Conduit.latency_km net 0 1)

let test_symmetric () =
  Alcotest.(check (float 1e-6)) "symmetric" (Conduit.route_km net 0 3) (Conduit.route_km net 3 0)

let test_matrix_agrees () =
  let m = Conduit.latency_matrix net in
  Alcotest.(check (float 1e-9)) "matrix entry" (Conduit.latency_km net 1 2) m.(1).(2);
  Alcotest.(check (float 1e-9)) "diagonal" 0.0 m.(0).(0)

let test_inflation_band () =
  (* The calibration target: latency inflation ~1.9x like InterTubes. *)
  let centers = Cisp_data.Sites.us_population_centers () in
  let us = Conduit.build ~sites:centers () in
  let infl = Conduit.mean_latency_inflation us in
  Alcotest.(check bool)
    (Printf.sprintf "US inflation %.2f in [1.75, 2.15]" infl)
    true
    (infl > 1.75 && infl < 2.15)

let test_assumed_mode () =
  let a = Conduit.build ~mode:(Conduit.Assumed 1.93) ~sites () in
  let arr = Array.of_list sites in
  let geo = Cisp_geo.Geodesy.distance_km arr.(0).Cisp_data.City.coord arr.(1).Cisp_data.City.coord in
  Alcotest.(check (float 0.01)) "assumed factor" (geo *. 1.93) (Conduit.latency_km a 0 1);
  Alcotest.(check (float 0.01)) "inflation is the factor" 1.93 (Conduit.mean_latency_inflation a)

let test_deterministic () =
  let again = Conduit.build ~sites () in
  Alcotest.(check (float 1e-9)) "same seed same routes" (Conduit.route_km net 0 4)
    (Conduit.route_km again 0 4)

let test_edges_exposed () =
  Alcotest.(check bool) "synthetic mode has edges" true (Conduit.edges net <> []);
  let a = Conduit.build ~mode:(Conduit.Assumed 1.9) ~sites () in
  Alcotest.(check (list (triple int int (float 0.0)))) "assumed mode has none" [] (Conduit.edges a)

let suites =
  [
    ( "fiber.conduit",
      [
        Alcotest.test_case "connected" `Quick test_connected;
        Alcotest.test_case "routes exceed geodesic" `Quick test_routes_exceed_geodesic;
        Alcotest.test_case "latency factor" `Quick test_latency_factor;
        Alcotest.test_case "symmetric" `Quick test_symmetric;
        Alcotest.test_case "matrix agrees" `Quick test_matrix_agrees;
        Alcotest.test_case "US inflation band" `Slow test_inflation_band;
        Alcotest.test_case "assumed mode" `Quick test_assumed_mode;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "edges exposed" `Quick test_edges_exposed;
      ] );
  ]
