(* End-to-end integration: the full real pipeline — synthetic terrain,
   tower registry, culling, hop feasibility, fiber network, design,
   capacity, cost, weather — on a small custom region. *)

open Cisp_design

let sites =
  [
    Cisp_data.City.make "Metro" ~lat:40.5 ~lon:(-98.0) ~population:2_000_000;
    Cisp_data.City.make "Port" ~lat:41.6 ~lon:(-94.5) ~population:900_000;
    Cisp_data.City.make "Forge" ~lat:38.8 ~lon:(-95.0) ~population:600_000;
    Cisp_data.City.make "Mills" ~lat:39.9 ~lon:(-91.8) ~population:400_000;
  ]

let config =
  { Scenario.default_config with Scenario.region = Scenario.Custom ("integration", sites) }

let artifacts = Scenario.artifacts ~config ()
let inputs = Scenario.population_inputs artifacts
let budget = 120
let topo = Scenario.design inputs ~budget

let test_artifacts_shape () =
  Alcotest.(check int) "four sites" 4 (Array.length artifacts.Scenario.sites);
  Alcotest.(check bool) "towers generated" true (List.length artifacts.Scenario.towers > 100);
  Alcotest.(check bool) "hops found" true
    (artifacts.Scenario.hops.Cisp_towers.Hops.feasible_hops > 100)

let test_inputs_consistent () =
  Alcotest.(check bool) "inputs valid" true (Inputs.validate inputs = Ok ());
  (* MW links exist between all pairs at this scale and are shorter
     than fiber but longer than geodesic. *)
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      let g = inputs.Inputs.geodesic_km.(i).(j) in
      let m = inputs.Inputs.mw_km.(i).(j) in
      let f = inputs.Inputs.fiber_km.(i).(j) in
      Alcotest.(check bool) "mw >= geodesic" true (m >= g);
      Alcotest.(check bool) "mw < fiber" true (m < f);
      Alcotest.(check bool) "fiber inflated" true (f > 1.5 *. g)
    done
  done

let test_design_quality () =
  let stretch = Topology.stretch_of topo in
  Alcotest.(check bool) "within budget" true (topo.Topology.cost <= budget);
  Alcotest.(check bool)
    (Printf.sprintf "stretch %.3f below 1.2" stretch)
    true (stretch < 1.2);
  Alcotest.(check bool) "beats fiber soundly" true
    (stretch < Topology.mean_stretch inputs (Topology.fiber_baseline inputs) /. 1.4)

let test_capacity_and_cost () =
  let spare = Capacity.spare_from_registry artifacts.Scenario.hops in
  let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:50.0 in
  Alcotest.(check bool) "positive hops" true (plan.Capacity.hops_total > 0);
  let cpg = Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:50.0 in
  Alcotest.(check bool) (Printf.sprintf "cost/GB %.2f sane" cpg) true (cpg > 0.01 && cpg < 20.0)

let test_weather_reroute () =
  let r =
    Cisp_weather.Year.run ~intervals:12 ~climate:Cisp_weather.Rainfield.us_climate
      ~hops:artifacts.Scenario.hops inputs topo
  in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "weather never beats fair weather" true
        (p.Cisp_weather.Year.worst >= p.Cisp_weather.Year.best -. 1e-9);
      Alcotest.(check bool) "fiber is the ceiling" true
        (p.Cisp_weather.Year.worst <= p.Cisp_weather.Year.fiber +. 1e-9))
    r.Cisp_weather.Year.per_pair

let test_packet_sim_on_designed_network () =
  let spare = Capacity.spare_from_registry artifacts.Scenario.hops in
  let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:50.0 in
  let eng = Cisp_sim.Engine.create () in
  let mw_gbps = Cisp_sim.Builder.provisioned_mw_gbps plan in
  let net = Cisp_sim.Builder.build eng inputs topo ~mw_gbps in
  let model =
    { Cisp_sim.Routing.inputs; topology = topo; mw_gbps;
      fiber_gbps = Cisp_sim.Builder.default_config.Cisp_sim.Builder.fiber_gbps }
  in
  let demands = Cisp_traffic.Matrix.scale_to_gbps inputs.Inputs.traffic ~aggregate_gbps:25.0 in
  let paths = Cisp_sim.Routing.paths model Cisp_sim.Routing.Shortest_path ~demands_gbps:demands in
  Cisp_sim.Udp.poisson_commodities net ~paths ~demands_gbps:demands ~packet_bytes:500
    ~start:0.0 ~stop:0.01;
  Cisp_sim.Engine.run eng ~until:0.2;
  (* At half load the designed network is loss-free and delay tracks
     propagation. *)
  Alcotest.(check (float 1e-6)) "no loss at 50% load" 0.0 (Cisp_sim.Net.loss_rate net);
  let delay = Cisp_sim.Net.mean_delay_ms net in
  Alcotest.(check bool) (Printf.sprintf "delay %.2f ms plausible" delay) true
    (delay > 0.3 && delay < 5.0)

let test_refinement_on_designed_link () =
  match topo.Topology.built with
  | [] -> Alcotest.fail "expected links"
  | (i, j) :: _ ->
    let s =
      Cisp_towers.Refine.create ~hops:artifacts.Scenario.hops ~src:i ~dst:j
        ~model:Cisp_towers.Refine.default_model
    in
    let stats = Cisp_towers.Refine.stats ~samples:30 s in
    Alcotest.(check bool) "viable link" true (stats.Cisp_towers.Refine.viability > 0.3)

let suites =
  [
    ( "integration.pipeline",
      [
        Alcotest.test_case "artifacts" `Slow test_artifacts_shape;
        Alcotest.test_case "inputs" `Slow test_inputs_consistent;
        Alcotest.test_case "design quality" `Slow test_design_quality;
        Alcotest.test_case "capacity and cost" `Slow test_capacity_and_cost;
        Alcotest.test_case "weather reroute" `Slow test_weather_reroute;
        Alcotest.test_case "packet sim" `Slow test_packet_sim_on_designed_network;
        Alcotest.test_case "refinement" `Slow test_refinement_on_designed_link;
      ] );
  ]
