open Cisp_data

let test_us_cities_count () =
  Alcotest.(check int) "200 cities" 200 (List.length Us_cities.all)

let test_us_cities_sorted () =
  let pops = List.map (fun c -> c.City.population) Us_cities.all in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> Int.compare b a) pops = pops)

let test_us_cities_contiguous () =
  List.iter
    (fun (c : City.t) ->
      let lat = Cisp_geo.Coord.lat c.coord and lon = Cisp_geo.Coord.lon c.coord in
      Alcotest.(check bool)
        (Printf.sprintf "%s in contiguous US" c.name)
        true
        (lat > 24.0 && lat < 50.0 && lon > -125.0 && lon < -66.0))
    Us_cities.all

let test_us_top () =
  let t3 = Us_cities.top 3 in
  Alcotest.(check int) "three" 3 (List.length t3);
  match t3 with
  | a :: b :: c :: [] ->
    Alcotest.(check string) "nyc first" "New York, NY" a.City.name;
    Alcotest.(check string) "la second" "Los Angeles, CA" b.City.name;
    Alcotest.(check string) "chicago third" "Chicago, IL" c.City.name
  | _ -> Alcotest.fail "expected 3"

let test_coalesce_count () =
  let centers = Sites.us_population_centers () in
  let n = List.length centers in
  (* Paper gets 120 from its exact data; ours should land nearby. *)
  Alcotest.(check bool) (Printf.sprintf "got %d centers" n) true (n >= 100 && n <= 130)

let test_coalesce_preserves_population () =
  let total_before = List.fold_left (fun a c -> a + c.City.population) 0 Us_cities.all in
  let centers = Sites.us_population_centers () in
  let total_after = List.fold_left (fun a c -> a + c.City.population) 0 centers in
  Alcotest.(check int) "population conserved" total_before total_after

let test_coalesce_merges_dfw () =
  (* Dallas, Fort Worth, Arlington, Plano, Garland, Irving are all
     within 50 km chains: exactly one center should carry "Dallas". *)
  let centers = Sites.us_population_centers () in
  let dallas =
    List.filter (fun c -> String.length c.City.name >= 6 && String.sub c.City.name 0 6 = "Dallas") centers
  in
  Alcotest.(check int) "one dallas center" 1 (List.length dallas);
  let d = List.hd dallas in
  Alcotest.(check bool) "metroplex population" true (d.City.population > 2_500_000);
  let fw = List.filter (fun c -> c.City.name = "Fort Worth, TX") centers in
  Alcotest.(check int) "fort worth absorbed" 0 (List.length fw)

let test_coalesce_idempotent_when_far () =
  let cities =
    [
      City.make "A" ~lat:30.0 ~lon:(-100.0) ~population:100;
      City.make "B" ~lat:40.0 ~lon:(-90.0) ~population:200;
    ]
  in
  let out = Sites.coalesce cities in
  Alcotest.(check int) "nothing merged" 2 (List.length out)

let test_coalesce_transitive () =
  (* A-B 40km, B-C 40km, A-C 80km: all three merge transitively. *)
  let a = City.make "A" ~lat:40.0 ~lon:(-100.0) ~population:300 in
  let b_coord = Cisp_geo.Geodesy.destination a.City.coord ~bearing_deg:90.0 ~distance_km:40.0 in
  let c_coord = Cisp_geo.Geodesy.destination a.City.coord ~bearing_deg:90.0 ~distance_km:80.0 in
  let b = City.make "B" ~lat:(Cisp_geo.Coord.lat b_coord) ~lon:(Cisp_geo.Coord.lon b_coord) ~population:200 in
  let c = City.make "C" ~lat:(Cisp_geo.Coord.lat c_coord) ~lon:(Cisp_geo.Coord.lon c_coord) ~population:100 in
  let out = Sites.coalesce [ a; b; c ] in
  Alcotest.(check int) "single center" 1 (List.length out);
  let m = List.hd out in
  Alcotest.(check string) "named after largest" "A" m.City.name;
  Alcotest.(check int) "summed population" 600 m.City.population

let test_eu_cities () =
  let n = List.length Eu_cities.all in
  Alcotest.(check bool) (Printf.sprintf "%d EU cities" n) true (n >= 100);
  List.iter
    (fun (c : City.t) ->
      let lat = Cisp_geo.Coord.lat c.coord and lon = Cisp_geo.Coord.lon c.coord in
      Alcotest.(check bool) (c.name ^ " in Europe") true
        (lat > 35.0 && lat < 65.0 && lon > -10.0 && lon < 30.0))
    Eu_cities.all

let test_datacenters () =
  Alcotest.(check int) "six DCs" 6 (List.length Datacenters.all);
  List.iter
    (fun (c : City.t) -> Alcotest.(check int) ("no population: " ^ c.name) 0 c.population)
    Datacenters.all

let suites =
  [
    ( "data.us_cities",
      [
        Alcotest.test_case "count" `Quick test_us_cities_count;
        Alcotest.test_case "sorted" `Quick test_us_cities_sorted;
        Alcotest.test_case "contiguous" `Quick test_us_cities_contiguous;
        Alcotest.test_case "top" `Quick test_us_top;
      ] );
    ( "data.sites",
      [
        Alcotest.test_case "center count" `Quick test_coalesce_count;
        Alcotest.test_case "population conserved" `Quick test_coalesce_preserves_population;
        Alcotest.test_case "dfw merged" `Quick test_coalesce_merges_dfw;
        Alcotest.test_case "far cities untouched" `Quick test_coalesce_idempotent_when_far;
        Alcotest.test_case "transitive merge" `Quick test_coalesce_transitive;
      ] );
    ("data.eu", [ Alcotest.test_case "eu cities" `Quick test_eu_cities ]);
    ("data.dc", [ Alcotest.test_case "datacenters" `Quick test_datacenters ]);
  ]
