open Cisp_lp

let check_float eps = Alcotest.(check (float eps))

(* ---------- Simplex ---------- *)

let solve_expect_optimal p =
  match Simplex.solve p with
  | Simplex.Optimal s -> s
  | Simplex.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_simplex_basic_le () =
  (* max x + y st x + 2y <= 4, 3x + y <= 6  => min -(x+y); optimum at
     intersection (8/5, 6/5), value 14/5. *)
  let p =
    {
      Simplex.n_vars = 2;
      objective = [| -1.0; -1.0 |];
      rows =
        [
          { Simplex.coeffs = [ (0, 1.0); (1, 2.0) ]; op = Simplex.Le; rhs = 4.0 };
          { Simplex.coeffs = [ (0, 3.0); (1, 1.0) ]; op = Simplex.Le; rhs = 6.0 };
        ];
    }
  in
  let s = solve_expect_optimal p in
  check_float 1e-7 "objective" (-.(14.0 /. 5.0)) s.objective;
  check_float 1e-7 "x" (8.0 /. 5.0) s.x.(0);
  check_float 1e-7 "y" (6.0 /. 5.0) s.x.(1)

let test_simplex_eq () =
  (* min x + y st x + y = 3, x - y = 1 -> x=2, y=1, obj 3. *)
  let p =
    {
      Simplex.n_vars = 2;
      objective = [| 1.0; 1.0 |];
      rows =
        [
          { Simplex.coeffs = [ (0, 1.0); (1, 1.0) ]; op = Simplex.Eq; rhs = 3.0 };
          { Simplex.coeffs = [ (0, 1.0); (1, -1.0) ]; op = Simplex.Eq; rhs = 1.0 };
        ];
    }
  in
  let s = solve_expect_optimal p in
  check_float 1e-7 "obj" 3.0 s.objective;
  check_float 1e-7 "x" 2.0 s.x.(0);
  check_float 1e-7 "y" 1.0 s.x.(1)

let test_simplex_ge () =
  (* min 2x + 3y st x + y >= 4, x >= 1 -> (4,0) obj 8. *)
  let p =
    {
      Simplex.n_vars = 2;
      objective = [| 2.0; 3.0 |];
      rows =
        [
          { Simplex.coeffs = [ (0, 1.0); (1, 1.0) ]; op = Simplex.Ge; rhs = 4.0 };
          { Simplex.coeffs = [ (0, 1.0) ]; op = Simplex.Ge; rhs = 1.0 };
        ];
    }
  in
  let s = solve_expect_optimal p in
  check_float 1e-7 "obj" 8.0 s.objective

let test_simplex_infeasible () =
  let p =
    {
      Simplex.n_vars = 1;
      objective = [| 1.0 |];
      rows =
        [
          { Simplex.coeffs = [ (0, 1.0) ]; op = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [ (0, 1.0) ]; op = Simplex.Ge; rhs = 2.0 };
        ];
    }
  in
  match Simplex.solve p with
  | Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_simplex_unbounded () =
  let p =
    {
      Simplex.n_vars = 1;
      objective = [| -1.0 |];
      rows = [ { Simplex.coeffs = [ (0, 1.0) ]; op = Simplex.Ge; rhs = 0.0 } ];
    }
  in
  match Simplex.solve p with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_negative_rhs () =
  (* min x st -x <= -5  (i.e. x >= 5). *)
  let p =
    {
      Simplex.n_vars = 1;
      objective = [| 1.0 |];
      rows = [ { Simplex.coeffs = [ (0, -1.0) ]; op = Simplex.Le; rhs = -5.0 } ];
    }
  in
  let s = solve_expect_optimal p in
  check_float 1e-7 "x" 5.0 s.x.(0)

let test_simplex_degenerate () =
  (* Classic degenerate vertex; must terminate and find optimum.
     min -x1 - x2 st x1 <= 1, x2 <= 1, x1 + x2 <= 2 (redundant). *)
  let p =
    {
      Simplex.n_vars = 2;
      objective = [| -1.0; -1.0 |];
      rows =
        [
          { Simplex.coeffs = [ (0, 1.0) ]; op = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [ (1, 1.0) ]; op = Simplex.Le; rhs = 1.0 };
          { Simplex.coeffs = [ (0, 1.0); (1, 1.0) ]; op = Simplex.Le; rhs = 2.0 };
        ];
    }
  in
  let s = solve_expect_optimal p in
  check_float 1e-7 "obj" (-2.0) s.objective

(* Brute-force LP check on random instances via vertex enumeration is
   overkill; instead verify feasibility and local optimality via weak
   duality on randomly generated bounded problems. *)
let prop_simplex_feasible_solution =
  QCheck.Test.make ~name:"simplex returns feasible point" ~count:150
    QCheck.(make Gen.(pair (int_range 1 5) (pair (int_range 1 6) small_int)))
    (fun (nv, (nr, seed)) ->
      let rng = Cisp_util.Rng.create seed in
      let coeff () = Cisp_util.Rng.uniform rng 0.1 3.0 in
      let rows =
        List.init nr (fun _ ->
            {
              Simplex.coeffs = List.init nv (fun j -> (j, coeff ()));
              op = Simplex.Le;
              rhs = Cisp_util.Rng.uniform rng 1.0 10.0;
            })
      in
      let objective = Array.init nv (fun _ -> -.coeff ()) in
      let p = { Simplex.n_vars = nv; objective; rows } in
      match Simplex.solve p with
      | Simplex.Optimal s ->
        List.for_all
          (fun (r : Simplex.row) ->
            let lhs = List.fold_left (fun acc (j, v) -> acc +. (v *. s.x.(j))) 0.0 r.coeffs in
            lhs <= r.rhs +. 1e-6)
          rows
        && Array.for_all (fun v -> v >= -1e-9) s.x
      | Simplex.Infeasible | Simplex.Unbounded -> false)

(* ---------- MILP ---------- *)

let test_milp_knapsack () =
  (* max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary.
     Best: a + c (weight 5, value 17) vs b + c (6, 20) -> b + c. *)
  let m = Model.create () in
  let a = Model.binary m "a" and b = Model.binary m "b" and c = Model.binary m "c" in
  Model.add_constraint m [ (3.0, a); (4.0, b); (2.0, c) ] Model.Le 6.0;
  Model.set_objective m [ (-10.0, a); (-13.0, b); (-7.0, c) ];
  let r = Milp.solve m in
  (match r.status with `Optimal -> () | _ -> Alcotest.fail "expected optimal");
  check_float 1e-6 "objective" (-20.0) (Option.get r.objective);
  let x = Option.get r.x in
  check_float 1e-6 "a" 0.0 (Model.value x a);
  check_float 1e-6 "b" 1.0 (Model.value x b);
  check_float 1e-6 "c" 1.0 (Model.value x c)

let test_milp_integer_rounding_matters () =
  (* max x st 2x <= 3, x integer -> x=1 (LP gives 1.5). *)
  let m = Model.create () in
  let x = Model.add_var m ~ub:10.0 ~integer:true "x" in
  Model.add_constraint m [ (2.0, x) ] Model.Le 3.0;
  Model.set_objective m [ (-1.0, x) ];
  let r = Milp.solve m in
  check_float 1e-6 "x integral" 1.0 (Model.value (Option.get r.x) x)

let test_milp_infeasible () =
  let m = Model.create () in
  let x = Model.binary m "x" in
  Model.add_constraint m [ (1.0, x) ] Model.Ge 2.0;
  Model.set_objective m [ (1.0, x) ];
  let r = Milp.solve m in
  match r.status with
  | `Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_milp_continuous_passthrough () =
  (* Pure LP through the MILP interface. *)
  let m = Model.create () in
  let x = Model.add_var m "x" and y = Model.add_var m "y" in
  Model.add_constraint m [ (1.0, x); (1.0, y) ] Model.Ge 2.0;
  Model.set_objective m [ (1.0, x); (2.0, y) ];
  let r = Milp.solve m in
  check_float 1e-6 "objective" 2.0 (Option.get r.objective)

(* Exhaustive cross-check: random small binary programs vs brute force. *)
let brute_force_binary nv rows_list obj =
  let best = ref infinity in
  for mask = 0 to (1 lsl nv) - 1 do
    let x = Array.init nv (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0) in
    let feasible =
      List.for_all
        (fun (coeffs, op, rhs) ->
          let lhs = List.fold_left (fun acc (j, v) -> acc +. (v *. x.(j))) 0.0 coeffs in
          match op with
          | Model.Le -> lhs <= rhs +. 1e-9
          | Model.Ge -> lhs >= rhs -. 1e-9
          | Model.Eq -> Float.abs (lhs -. rhs) < 1e-9)
        rows_list
    in
    if feasible then begin
      let v = List.fold_left (fun acc (c, j) -> acc +. (c *. x.(j))) 0.0 obj in
      if v < !best then best := v
    end
  done;
  !best

let prop_milp_matches_brute_force =
  QCheck.Test.make ~name:"B&B matches brute force on random binary programs" ~count:60
    QCheck.(make Gen.(pair (int_range 2 7) small_int))
    (fun (nv, seed) ->
      let rng = Cisp_util.Rng.create (seed + 1) in
      let nr = 1 + Cisp_util.Rng.int rng 4 in
      let rows_list =
        List.init nr (fun _ ->
            let coeffs =
              List.init nv (fun j -> (j, Cisp_util.Rng.uniform rng (-2.0) 4.0))
            in
            (coeffs, Model.Le, Cisp_util.Rng.uniform rng 1.0 6.0))
      in
      let obj = List.init nv (fun j -> (Cisp_util.Rng.uniform rng (-5.0) 5.0, j)) in
      let m = Model.create () in
      let vars = Array.init nv (fun j -> Model.binary m (Printf.sprintf "x%d" j)) in
      List.iter
        (fun (coeffs, op, rhs) ->
          Model.add_constraint m (List.map (fun (j, v) -> (v, vars.(j))) coeffs) op rhs)
        rows_list;
      Model.set_objective m (List.map (fun (c, j) -> (c, vars.(j))) obj);
      let r = Milp.solve m in
      let brute = brute_force_binary nv rows_list obj in
      match (r.status, r.objective) with
      | `Optimal, Some v -> Float.abs (v -. brute) < 1e-6
      | `Infeasible, None -> brute = infinity
      | _ -> false)

let suites =
  [
    ( "lp.simplex",
      [
        Alcotest.test_case "basic le" `Quick test_simplex_basic_le;
        Alcotest.test_case "equalities" `Quick test_simplex_eq;
        Alcotest.test_case "ge constraints" `Quick test_simplex_ge;
        Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
        Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
        Alcotest.test_case "negative rhs" `Quick test_simplex_negative_rhs;
        Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
        QCheck_alcotest.to_alcotest prop_simplex_feasible_solution;
      ] );
    ( "lp.milp",
      [
        Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
        Alcotest.test_case "rounding matters" `Quick test_milp_integer_rounding_matters;
        Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
        Alcotest.test_case "continuous passthrough" `Quick test_milp_continuous_passthrough;
        QCheck_alcotest.to_alcotest prop_milp_matches_brute_force;
      ] );
  ]

(* ---------- exact cross-check on 2-variable LPs ---------- *)

(* For 2 variables with Le rows, the optimum lies on a vertex:
   intersections of constraint-pair boundaries and the axes.  Enumerate
   them all and compare with the simplex result. *)
let brute_force_2var rows obj =
  let feasible (x, y) =
    x >= -1e-9 && y >= -1e-9
    && List.for_all
         (fun (a, b, c) -> (a *. x) +. (b *. y) <= c +. 1e-7)
         rows
  in
  let candidates = ref [ (0.0, 0.0) ] in
  let lines = (1.0, 0.0, 0.0) :: (0.0, 1.0, 0.0) :: rows in
  let rec pairs = function
    | [] -> ()
    | (a1, b1, c1) :: rest ->
      List.iter
        (fun (a2, b2, c2) ->
          let det = (a1 *. b2) -. (a2 *. b1) in
          if Float.abs det > 1e-9 then begin
            let x = ((c1 *. b2) -. (c2 *. b1)) /. det in
            let y = ((a1 *. c2) -. (a2 *. c1)) /. det in
            candidates := (x, y) :: !candidates
          end)
        rest;
      pairs rest
  in
  pairs lines;
  List.fold_left
    (fun best (x, y) ->
      if feasible (x, y) then begin
        let (ox, oy) = obj in
        Float.min best ((ox *. x) +. (oy *. y))
      end
      else best)
    infinity !candidates

let prop_simplex_matches_vertex_enumeration =
  QCheck.Test.make ~name:"simplex = vertex enumeration on 2-var LPs" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Cisp_util.Rng.create (seed + 77) in
      let nr = 2 + Cisp_util.Rng.int rng 4 in
      let rows =
        List.init nr (fun _ ->
            ( Cisp_util.Rng.uniform rng 0.2 3.0,
              Cisp_util.Rng.uniform rng 0.2 3.0,
              Cisp_util.Rng.uniform rng 1.0 8.0 ))
      in
      (* negative objective keeps the LP bounded by the Le rows *)
      let obj = (-.Cisp_util.Rng.uniform rng 0.1 4.0, -.Cisp_util.Rng.uniform rng 0.1 4.0) in
      let p =
        {
          Simplex.n_vars = 2;
          objective = [| fst obj; snd obj |];
          rows =
            List.map
              (fun (a, b, c) ->
                { Simplex.coeffs = [ (0, a); (1, b) ]; op = Simplex.Le; rhs = c })
              rows;
        }
      in
      match Simplex.solve p with
      | Simplex.Optimal s -> Float.abs (s.objective -. brute_force_2var rows obj) < 1e-6
      | Simplex.Infeasible | Simplex.Unbounded -> false)

let suites =
  suites
  @ [
      ( "lp.exactness",
        [ QCheck_alcotest.to_alcotest prop_simplex_matches_vertex_enumeration ] );
    ]

(* Budget-limited runs must still return a feasible incumbent (the
   rounding dive guarantees one whenever the problem is feasible). *)
let test_milp_budget_limited_has_incumbent () =
  let rng = Cisp_util.Rng.create 99 in
  let m = Model.create () in
  let n = 24 in
  let xs = Array.init n (fun i -> Model.binary m (Printf.sprintf "k%d" i)) in
  let weights = Array.init n (fun _ -> Cisp_util.Rng.uniform rng 1.0 9.0) in
  let values = Array.init n (fun _ -> Cisp_util.Rng.uniform rng 1.0 9.0) in
  Model.add_constraint m
    (Array.to_list (Array.mapi (fun i x -> (weights.(i), x)) xs))
    Model.Le 40.0;
  Model.set_objective m (Array.to_list (Array.mapi (fun i x -> (-.values.(i), x)) xs));
  let limits = { Milp.default_limits with Milp.max_nodes = 3 } in
  let r = Milp.solve ~limits m in
  (match r.Milp.x with
  | Some x ->
    (* incumbent is feasible and integral *)
    let w = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i v -> weights.(i) *. Model.value x v) xs) in
    Alcotest.(check bool) "feasible" true (w <= 40.0 +. 1e-6);
    Array.iter
      (fun v ->
        let xv = Model.value x v in
        Alcotest.(check bool) "integral" true (Float.abs (xv -. Float.round xv) < 1e-6))
      xs
  | None -> Alcotest.fail "budget-limited run returned no incumbent");
  match r.Milp.status with
  | `Optimal | `Feasible_gap _ -> ()
  | _ -> Alcotest.fail "expected optimal or gap"

let suites =
  suites
  @ [
      ( "lp.budget_limited",
        [ Alcotest.test_case "dive plants incumbent" `Quick test_milp_budget_limited_has_incumbent ] );
    ]
