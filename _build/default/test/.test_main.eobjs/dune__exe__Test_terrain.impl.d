test/test_terrain.ml: Alcotest Array Cisp_geo Cisp_terrain Cisp_util Dem Dem_cache Float Noise Printf
