test/test_data.ml: Alcotest Cisp_data Cisp_geo City Datacenters Eu_cities Int List Printf Sites String Us_cities
