test/test_apps.ml: Alcotest Cisp_apps Cisp_util Econ Gaming List Printf Web
