test/test_rf.ml: Alcotest Attenuation Capacity Cisp_geo Cisp_rf Cisp_terrain Float Fresnel Link_budget List Los Medium Printf QCheck QCheck_alcotest
