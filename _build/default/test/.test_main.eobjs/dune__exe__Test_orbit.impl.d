test/test_orbit.ml: Alcotest Array Cisp_geo Cisp_orbit Constellation Printf
