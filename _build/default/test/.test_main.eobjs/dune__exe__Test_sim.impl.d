test/test_sim.ml: Alcotest Array Builder Cisp_data Cisp_design Cisp_geo Cisp_rf Cisp_sim Cisp_traffic Engine Hashtbl List Net Printf Routing Tcp Udp
