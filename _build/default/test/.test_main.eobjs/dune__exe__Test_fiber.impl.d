test/test_fiber.ml: Alcotest Array Cisp_data Cisp_fiber Cisp_geo Conduit List Printf
