test/test_graph.ml: Alcotest Array Cisp_graph Cisp_util Dijkstra Disjoint Float Graph Heap Kshortest List QCheck QCheck_alcotest
