test/test_util.ml: Alcotest Array Cisp_util Float Gen List QCheck QCheck_alcotest Rng Stats Units
