test/test_geo.ml: Alcotest Array Cisp_geo Coord Float Geodesy Grid List QCheck QCheck_alcotest
