test/test_traffic.ml: Alcotest Array Cisp_data Cisp_traffic Cisp_util Float Matrix Perturb QCheck QCheck_alcotest
