test/test_weather.ml: Alcotest Array Cisp_data Cisp_design Cisp_geo Cisp_terrain Cisp_towers Cisp_traffic Cisp_util Cisp_weather Failure Hft List Printf Rainfield Year
