test/test_towers.ml: Alcotest Array Cisp_data Cisp_geo Cisp_graph Cisp_rf Cisp_terrain Cisp_towers Culling Float Hashtbl Hops List Option Printf Refine Synth Tower
