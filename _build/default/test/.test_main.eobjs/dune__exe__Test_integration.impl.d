test/test_integration.ml: Alcotest Array Capacity Cisp_data Cisp_design Cisp_sim Cisp_towers Cisp_traffic Cisp_weather Cost Inputs List Printf Scenario Topology
