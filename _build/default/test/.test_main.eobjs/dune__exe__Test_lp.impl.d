test/test_lp.ml: Alcotest Array Cisp_lp Cisp_util Float Gen List Milp Model Option Printf QCheck QCheck_alcotest Simplex
