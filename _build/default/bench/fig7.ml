(* Fig 7: stretch across all city pairs over a year of weather. *)

module Weather = Cisp_weather

let run ctx =
  Ctx.section "Fig 7: stretch over a year of precipitation";
  let inputs = Ctx.us_inputs ctx in
  let topo = Ctx.us_topology ctx in
  let a = Ctx.us_artifacts ctx in
  let intervals = if ctx.Ctx.quick then 40 else 365 in
  let result, secs =
    Ctx.time (fun () ->
        Weather.Year.run ~intervals ~climate:Weather.Rainfield.us_climate
          ~hops:a.Cisp_design.Scenario.hops inputs topo)
  in
  Printf.printf "intervals=%d  mean failed links per interval=%.1f of %d  (%.1fs)\n"
    result.Weather.Year.intervals result.Weather.Year.mean_failed_links
    (List.length topo.Cisp_design.Topology.built) secs;
  Printf.printf "%-10s %-10s %-10s %-10s %-10s\n" "curve" "p10" "p50" "p90" "mean";
  List.iter
    (fun (name, cdf) ->
      let values = Array.map fst cdf in
      Printf.printf "%-10s %-10.3f %-10.3f %-10.3f %-10.3f\n" name
        (Cisp_util.Stats.percentile values 10.0)
        (Cisp_util.Stats.percentile values 50.0)
        (Cisp_util.Stats.percentile values 90.0)
        (Cisp_util.Stats.mean values))
    (Weather.Year.stretch_cdfs result);
  (* Headline claims. *)
  let per = result.Weather.Year.per_pair in
  let med f = Cisp_util.Stats.median (Array.map f per) in
  let best = med (fun p -> p.Weather.Year.best) in
  let p99 = med (fun p -> p.Weather.Year.p99) in
  let worst = med (fun p -> p.Weather.Year.worst) in
  let fiber = med (fun p -> p.Weather.Year.fiber) in
  Printf.printf "median pair: best=%.3f p99=%.3f worst=%.3f fiber=%.3f (worst is %.2fx below fiber)\n%!"
    best p99 worst fiber (fiber /. worst);
  Ctx.note
    "paper: 99th-percentile stretch ~ fair-weather stretch; median worst-case over the year\n\
     is still 1.7x better than fiber."
