(* Fig 9: cost per GB under the three traffic models: city-city
   (population product), DC-to-edge, and inter-DC. *)

open Cisp_design
module Matrix = Cisp_traffic.Matrix

let closest_dc sites n_cities i =
  (* DCs occupy indices n_cities .. n-1. *)
  let n = Array.length sites in
  let best = ref None in
  for d = n_cities to n - 1 do
    let dist =
      Cisp_geo.Geodesy.distance_km sites.(i).Cisp_data.City.coord sites.(d).Cisp_data.City.coord
    in
    match !best with
    | Some (_, dist') when dist' <= dist -> ()
    | _ -> best := Some (d, dist)
  done;
  Option.map fst !best

let us_dc_artifacts ctx =
  let centers =
    match (Ctx.us_config ctx).Scenario.n_sites with
    | Some k -> Cisp_data.Us_cities.top k |> Cisp_data.Sites.coalesce
    | None -> Cisp_data.Sites.us_population_centers ()
  in
  let cities = centers in
  let sites = cities @ Cisp_data.Datacenters.all in
  let config =
    (* n_sites already applied to [cities]; None here so the
       zero-population DC sites survive. *)
    { (Ctx.us_config ctx) with
      Scenario.region = Scenario.Custom ("us+dc", sites);
      n_sites = None }
  in
  (Scenario.artifacts ~config (), List.length cities)

let dc_edge_traffic sites n_cities =
  let cities = Array.sub sites 0 n_cities in
  Matrix.dc_edge ~cities ~n_total:(Array.length sites) ~dc_of:(closest_dc sites n_cities)

let interdc_traffic sites n_cities =
  let n = Array.length sites in
  let m = Array.make_matrix n n 0.0 in
  for i = n_cities to n - 1 do
    for j = n_cities to n - 1 do
      if i <> j then m.(i).(j) <- 1.0
    done
  done;
  Matrix.normalize m

let run ctx =
  Ctx.section "Fig 9: cost per GB by traffic model (100 Gbps aggregate)";
  let a, n_cities = us_dc_artifacts ctx in
  let sites = a.Scenario.sites in
  let spare = Capacity.spare_from_registry a.Scenario.hops in
  let budget = Ctx.us_budget ctx in
  let models =
    [
      ("city-city", Matrix.population_product sites);
      ("dc-edge", dc_edge_traffic sites n_cities);
      ("inter-dc", interdc_traffic sites n_cities);
    ]
  in
  Printf.printf "%-12s %-10s %-8s %-12s %-10s\n" "model" "stretch" "links" "used towers" "cost/GB";
  List.iter
    (fun (name, traffic) ->
      let inputs = Scenario.inputs a ~traffic in
      (* Each model is designed within the same tower budget; sparser
         models simply stop early when no link helps. *)
      let topo = Scenario.design inputs ~budget in
      let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:Ctx.aggregate_gbps in
      Printf.printf "%-12s %-10.3f %-8d %-12d $%-10.2f\n%!" name (Topology.stretch_of topo)
        (List.length topo.Topology.built) topo.Topology.cost
        (Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:Ctx.aggregate_gbps))
    models;
  Ctx.note "paper: the city-city model is the most expensive; DC scenarios are cheaper."
