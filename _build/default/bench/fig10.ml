(* Fig 10: sensitivity to tower-space and range constraints.  Each
   combination of max hop range and usable tower-height fraction is a
   full re-run of hop feasibility + design; results are reported as
   percentage increases over the (100 km, full height) baseline.

   Runs on a reduced site set so the dozen artifact rebuilds stay
   affordable; the percentages, not the absolute values, are the
   result. *)

open Cisp_design

let run ctx =
  Ctx.section "Fig 10: impact of tower height and range restrictions";
  let n_sites = if ctx.Ctx.quick then 15 else 40 in
  let budget = 27 * n_sites in
  let combos =
    if ctx.Ctx.quick then [ (100.0, 1.0); (60.0, 0.45) ]
    else
      [
        (100.0, 1.0);
        (100.0, 0.85); (100.0, 0.65); (100.0, 0.45);
        (80.0, 0.85); (80.0, 0.65); (80.0, 0.45);
        (60.0, 0.85); (60.0, 0.65); (60.0, 0.45);
      ]
  in
  let evaluate (range, height) =
    let config =
      {
        Scenario.default_config with
        n_sites = Some n_sites;
        max_range_km = range;
        height_fraction = height;
      }
    in
    let a = Scenario.artifacts ~config () in
    let inputs = Scenario.population_inputs a in
    let topo = Scenario.design inputs ~budget in
    let spare = Capacity.spare_from_registry a.Scenario.hops in
    let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:Ctx.aggregate_gbps in
    let cpg = Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:Ctx.aggregate_gbps in
    (Topology.stretch_of topo, cpg)
  in
  let results = List.map (fun combo -> (combo, Ctx.time (fun () -> evaluate combo))) combos in
  let (_, ((base_stretch, base_cpg), _)) = List.hd results in
  Printf.printf "%-10s %-8s %-10s %-12s %-12s %-12s\n" "range km" "height" "stretch" "cost/GB"
    "stretch +%" "cost +%";
  List.iter
    (fun ((range, height), ((stretch, cpg), secs)) ->
      Printf.printf "%-10.0f %-8.2f %-10.3f $%-11.2f %-12.1f %-12.1f (%.0fs)\n%!" range height
        stretch cpg
        (100.0 *. (stretch -. base_stretch) /. base_stretch)
        (100.0 *. (cpg -. base_cpg) /. base_cpg)
        secs)
    results;
  Ctx.note "paper: worst case +10%% stretch and +11%% cost across these restrictions."
