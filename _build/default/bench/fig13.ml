(* Fig 13: web page and object load times when RTTs shrink to 0.33x,
   fully or selectively (client-to-server only). *)

module Web = Cisp_apps.Web

let median l = Cisp_util.Stats.median (Array.of_list l)

let run ctx =
  Ctx.section "Fig 13: web PLT and object load times under reduced RTTs";
  let count = if ctx.Ctx.quick then 40 else 80 in
  let pages = Web.generate ~count () in
  let plt scaling = List.map (fun p -> Web.plt_ms p scaling) pages in
  let base = plt Web.baseline in
  let cisp = plt Web.cisp in
  let selective = plt Web.cisp_selective in
  let m_base = median base and m_cisp = median cisp and m_sel = median selective in
  Printf.printf "median PLT: baseline=%.0f ms  cISP=%.0f ms (-%.0f%%, -%.0f ms)  selective=%.0f ms (-%.0f%%, -%.0f ms)\n"
    m_base m_cisp
    (100.0 *. (m_base -. m_cisp) /. m_base) (m_base -. m_cisp)
    m_sel
    (100.0 *. (m_base -. m_sel) /. m_base) (m_base -. m_sel);
  Printf.printf "(paper: -31%% / -302 ms full; -27%% / -265 ms selective)\n";
  (* Object-level. *)
  let olts scaling = List.concat_map (fun p -> Web.object_load_times_ms p scaling) pages in
  let o_base = olts Web.baseline and o_cisp = olts Web.cisp in
  let mo_base = median o_base and mo_cisp = median o_cisp in
  Printf.printf "median object load: %.0f ms -> %.0f ms (-%.0f%%)   (paper: -49%%)\n" mo_base mo_cisp
    (100.0 *. (mo_base -. mo_cisp) /. mo_base);
  (* Small objects. *)
  let small scaling =
    List.concat_map
      (fun p ->
        List.filteri
          (fun i _ ->
            let o = List.nth p.Web.objects i in
            o.Web.size_bytes < Web.small_object_threshold_bytes)
          (Web.object_load_times_ms p scaling))
      pages
  in
  let s_base = small Web.baseline and s_cisp = small Web.cisp in
  (match (s_base, s_cisp) with
  | [], _ | _, [] -> Printf.printf "no small objects in corpus\n"
  | _ ->
    let ms_base = median s_base and ms_cisp = median s_cisp in
    Printf.printf "median small-object load: %.0f ms -> %.0f ms (-%.0f%%)   (paper: -59%%)\n"
      ms_base ms_cisp
      (100.0 *. (ms_base -. ms_cisp) /. ms_base));
  Printf.printf "client-to-server byte fraction: %.1f%%   (paper: 8.5%%)\n%!"
    (100.0 *. Web.c2s_byte_fraction pages);
  (* CDF sketch for Fig 13(a). *)
  let cdf_points xs =
    let arr = Array.of_list xs in
    List.map (fun p -> Cisp_util.Stats.percentile arr p) [ 10.0; 25.0; 50.0; 75.0; 90.0 ]
  in
  let show name xs =
    Printf.printf "%-10s" name;
    List.iter (fun v -> Printf.printf "%8.0f" v) (cdf_points xs);
    Printf.printf "\n"
  in
  Printf.printf "PLT percentiles (ms):   p10     p25     p50     p75     p90\n";
  show "baseline" base;
  show "cisp" cisp;
  show "selective" selective;
  Printf.printf "%!"
