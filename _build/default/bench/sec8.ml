(* §8: cost-benefit analysis — value per GB by application vs the
   network's cost per GB. *)

module Econ = Cisp_apps.Econ

let run ctx =
  Ctx.section "Sec 8: value per GB vs cost per GB";
  let plan = Ctx.us_plan ctx in
  let cost_per_gb =
    Cisp_design.Capacity.cost_per_gb Cisp_design.Cost.default plan
      ~aggregate_gbps:Ctx.aggregate_gbps
  in
  Printf.printf "network cost per GB: $%.2f (paper: $0.81)\n" cost_per_gb;
  Printf.printf "%-14s %-20s %s\n" "application" "value per GB" "exceeds cost?";
  List.iter
    (fun v ->
      Printf.printf "%-14s $%.2f - $%-12.2f %b\n" v.Econ.application v.Econ.value_per_gb.Econ.low
        v.Econ.value_per_gb.Econ.high v.Econ.exceeds_cost)
    (Econ.summary ~cost_per_gb);
  Printf.printf "(paper: search $1.84-3.74, e-commerce $3.26-22.82, gaming >= $3.7)\n";
  Printf.printf "Steam US aggregate at 10 Kbps/player: %.0f Gbps (paper: ~27)\n%!"
    (Econ.steam_us_aggregate_gbps ~players:16_000_000 ~us_share:0.17 ~kbps_per_player:10.0)
