(* Fig 8: a cISP for Europe with the same aggregate capacity and a
   similar tower budget, using the paper's assumed 1.9x fiber
   inflation (no EU conduit data). *)

open Cisp_design

let run ctx =
  Ctx.section "Fig 8: European cISP (cities > 300k population)";
  let config =
    if ctx.Ctx.quick then { Scenario.europe_config with Scenario.n_sites = Some 30 }
    else Scenario.europe_config
  in
  let a, secs = Ctx.time (fun () -> Scenario.artifacts ~config ()) in
  Printf.printf "sites=%d towers=%d feasible hops=%d (%.1fs)\n"
    (Array.length a.Scenario.sites) (List.length a.Scenario.towers)
    a.Scenario.hops.Cisp_towers.Hops.feasible_hops secs;
  let inputs = Scenario.population_inputs a in
  let budget = Ctx.us_budget ctx in
  let topo, dsecs = Ctx.time (fun () -> Scenario.design inputs ~budget) in
  let spare = Capacity.spare_from_registry a.Scenario.hops in
  let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:Ctx.aggregate_gbps in
  Printf.printf "budget=%d towers  links=%d  stretch=%.3f  (design %.1fs)\n" budget
    (List.length topo.Topology.built) (Topology.stretch_of topo) dsecs;
  Printf.printf "cost per GB @ %.0f Gbps: $%.2f\n%!" Ctx.aggregate_gbps
    (Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:Ctx.aggregate_gbps);
  Ctx.note "paper: 1.04x stretch with ~3k towers at 100 Gbps, cost similar to the US design."
