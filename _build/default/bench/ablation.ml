(* Ablations of the design choices DESIGN.md calls out:

   1. the paper's oracle pruning (variable elimination) in the ILP;
   2. aggregated vs strong (per-commodity) linking rows;
   3. the greedy selection rule (absolute vs per-tower benefit);
   4. the local-search polish on top of greedy;
   5. the probabilistic tower-acquisition refinement (paper §6.5). *)

open Cisp_design

let run ctx =
  Ctx.section "Ablation 1: ILP oracle pruning (paper's variable elimination)";
  let inputs = Ctx.us_inputs ctx in
  let n = if ctx.Ctx.quick then 6 else 7 in
  let sub = Inputs.restrict inputs ~indices:(Array.init n (fun i -> i)) in
  let budget = 27 * n in
  let candidates = Greedy.candidates sub in
  Printf.printf "%-16s %-12s %-12s %-12s\n" "pruning" "flow vars" "time (s)" "stretch";
  List.iter
    (fun oracle_pruning ->
      let limits = { Cisp_lp.Milp.default_limits with max_seconds = 30.0 } in
      let (topo, stats), secs =
        Ctx.time (fun () -> Ilp.design ~limits ~oracle_pruning sub ~budget ~candidates)
      in
      Printf.printf "%-16b %-12d %-12.2f %-12.4f\n%!" oracle_pruning stats.Ilp.flow_vars secs
        (Topology.stretch_of topo))
    [ true; false ];

  Ctx.section "Ablation 2: aggregated vs strong linking rows";
  Printf.printf "%-16s %-12s %-12s %-12s\n" "linking" "lp solves" "time (s)" "stretch";
  List.iter
    (fun strong_linking ->
      let limits = { Cisp_lp.Milp.default_limits with max_seconds = 30.0 } in
      let (topo, stats), secs =
        Ctx.time (fun () -> Ilp.design ~limits ~strong_linking sub ~budget ~candidates)
      in
      Printf.printf "%-16s %-12d %-12.2f %-12.4f\n%!"
        (if strong_linking then "strong" else "aggregated")
        stats.Ilp.lp_solves secs (Topology.stretch_of topo))
    [ false; true ];

  Ctx.section "Ablation 3: greedy selection rule";
  let budget_full = Ctx.us_budget ctx in
  Printf.printf "%-16s %-12s %-10s\n" "rule" "stretch" "towers";
  List.iter
    (fun (name, rule) ->
      let topo = Greedy.design ~rule inputs ~budget:budget_full in
      Printf.printf "%-16s %-12.4f %-10d\n%!" name (Topology.stretch_of topo) topo.Topology.cost)
    [ ("per-cost", Greedy.Per_cost); ("absolute", Greedy.Absolute) ];

  Ctx.section "Ablation 4: local-search polish";
  let seed = Greedy.design inputs ~budget:budget_full in
  let polished =
    Local_search.improve inputs ~budget:budget_full
      ~candidates:(Greedy.candidate_set inputs ~budget:budget_full ~inflation:2.0)
      seed
  in
  Printf.printf "greedy alone      : %.4f\n" (Topology.stretch_of seed);
  Printf.printf "greedy + swaps    : %.4f\n%!" (Topology.stretch_of polished);

  Ctx.section "Ablation 5: probabilistic tower acquisition (paper sec 6.5)";
  let a = Ctx.us_artifacts ctx in
  let hops = a.Scenario.hops in
  (* Refine a representative medium-length link of the designed
     network (the paper's video shows per-route refinement; prior
     viability over transcontinental swathes is naturally tiny). *)
  let topo = Ctx.us_topology ctx in
  (match
     List.fold_left
       (fun acc (i, j) ->
         let d = inputs.Inputs.mw_km.(i).(j) in
         let score = Float.abs (d -. 500.0) in
         match acc with
         | Some (_, _, best) when Float.abs (best -. 500.0) <= score -> acc
         | _ -> Some (i, j, d))
       None topo.Topology.built
   with
  | None -> Ctx.note "no links built"
  | Some (i, j, d) ->
    Printf.printf "link %s <-> %s (%.0f km):\n"
      inputs.Inputs.sites.(i).Cisp_data.City.name inputs.Inputs.sites.(j).Cisp_data.City.name d;
    let session = Cisp_towers.Refine.create ~hops ~src:i ~dst:j ~model:Cisp_towers.Refine.default_model in
    let samples = if ctx.Ctx.quick then 40 else 150 in
    let s = Cisp_towers.Refine.stats ~samples session in
    Printf.printf "  prior: viability %.0f%%, %d distinct candidate paths, p50 %.0f km, p95 %.0f km\n%!"
      (100.0 *. s.Cisp_towers.Refine.viability) s.Cisp_towers.Refine.distinct_paths
      s.Cisp_towers.Refine.length_p50_km s.Cisp_towers.Refine.length_p95_km;
    (* Confirm the towers of the best prior path and re-evaluate. *)
    (match Cisp_towers.Refine.sample_paths ~samples session with
    | (_, best) :: _ ->
      List.iter
        (fun t -> if t >= 0 then Cisp_towers.Refine.confirm session ~tower:t (Cisp_towers.Refine.Acquired 0.9))
        best;
      (match Cisp_towers.Refine.committed_path session with
      | Some (len, path) ->
        Printf.printf "  after confirming %d towers: committed path of %.0f km (stretch %.3f)\n%!"
          (List.length (List.filter (fun t -> t >= 0) path))
          len
          (len /. inputs.Inputs.geodesic_km.(i).(j))
      | None -> Printf.printf "  committed path not yet viable\n%!")
    | [] -> Printf.printf "  no candidate paths sampled\n%!"))

(* Appended: the §3.4/§4 technology-generality analysis. *)
let run_media ctx =
  ignore ctx;
  Ctx.section "Ablation 6: per-link technology crossover (paper secs 3.4, 4)";
  Printf.printf "%-12s" "gbps \\ km";
  List.iter (fun km -> Printf.printf "%-14.0f" km) [ 50.0; 200.0; 500.0; 1500.0 ];
  Printf.printf "\n";
  List.iter
    (fun gbps ->
      Printf.printf "%-12.0f" gbps;
      List.iter
        (fun km ->
          let c = Cisp_rf.Medium.cheapest_for ~link_km:km ~target_gbps:gbps ~tower_usd:100_000.0 in
          let tag =
            match c.Cisp_rf.Medium.medium.Cisp_rf.Medium.technology with
            | Cisp_rf.Medium.Microwave -> "mw"
            | Cisp_rf.Medium.Millimeter_wave -> "mmw"
            | Cisp_rf.Medium.Free_space_optics -> "fso"
          in
          Printf.printf "%-14s" (Printf.sprintf "%s $%.1fM" tag (c.Cisp_rf.Medium.capex_usd /. 1e6)))
        [ 50.0; 200.0; 500.0; 1500.0 ];
      Printf.printf "\n%!")
    [ 1.0; 10.0; 64.0; 200.0; 1000.0 ];
  Ctx.note
    "paper sec 4: beyond the k-squared trick's siting limits, shorter-range higher-rate\n\
     technologies (MMW / FSO) become the cost-effective way to add bandwidth."

let run ctx =
  run ctx;
  run_media ctx
