(* Alternative infrastructures (paper §2): the technologies the paper
   weighs against MW relays and dispatches qualitatively —

   - hollow-core fiber: travels at ~c but inherits the conduits'
     circuitousness ("it would still suffer from the circuitousness of
     today's fiber conduits");
   - LEO satellites: "their connectivity fundamentally varies over
     time, necessitating extremely high density to provide latencies
     similar to those achievable with a terrestrial MW network."

   This experiment quantifies both against the designed cISP. *)

open Cisp_design
module Orbit = Cisp_orbit.Constellation

let pairs ctx =
  let inputs = Ctx.us_inputs ctx in
  let sites = inputs.Inputs.sites in
  let find prefix =
    let n = String.length prefix in
    let rec go i =
      if i >= Array.length sites then None
      else if String.length sites.(i).Cisp_data.City.name >= n
              && String.sub sites.(i).Cisp_data.City.name 0 n = prefix
      then Some i
      else go (i + 1)
    in
    go 0
  in
  List.filter_map
    (fun (a, b) ->
      match (find a, find b) with Some i, Some j -> Some (a, b, i, j) | _ -> None)
    [
      ("New York", "Los Angeles");
      ("New York", "Chicago");
      ("Miami", "Seattle");
      ("Austin", "Boston");
    ]

let run ctx =
  Ctx.section "Alternatives (paper sec 2): cISP vs fiber, hollow-core fiber, LEO";
  let inputs = Ctx.us_inputs ctx in
  let topo = Ctx.us_topology ctx in
  let d = Topology.distances topo in
  let samples = if ctx.Ctx.quick then 16 else 64 in
  Printf.printf "%-28s %-8s %-8s %-8s %-22s %-22s\n" "pair" "cISP" "fiber" "hollow"
    "LEO dense p50/p95" "LEO sparse p50/p95 (cov)";
  List.iter
    (fun (a, b, i, j) ->
      let geo = inputs.Inputs.geodesic_km.(i).(j) in
      let cisp = d.(i).(j) /. geo in
      let fiber = inputs.Inputs.fiber_km.(i).(j) /. geo in
      (* Hollow-core: same conduits, light at ~c: the 1.5x glass factor
         disappears but the route inflation stays. *)
      let hollow = fiber /. Cisp_util.Units.fiber_latency_factor in
      let ca = inputs.Inputs.sites.(i).Cisp_data.City.coord in
      let cb = inputs.Inputs.sites.(j).Cisp_data.City.coord in
      let dense = Orbit.pair_stretch_over_time ~samples Orbit.starlink_like ca cb in
      let sparse = Orbit.pair_stretch_over_time ~samples Orbit.sparse_shell ca cb in
      Printf.printf "%-28s %-8.3f %-8.3f %-8.3f %6.2f /%6.2f        %6.2f /%6.2f (%.0f%%)\n%!"
        (Printf.sprintf "%s - %s" a b) cisp fiber hollow dense.Orbit.stretch_p50
        dense.Orbit.stretch_p95 sparse.Orbit.stretch_p50 sparse.Orbit.stretch_p95
        (100.0 *. sparse.Orbit.coverage))
    (pairs ctx);
  Ctx.note
    "paper sec 2's qualitative claims, quantified: hollow-core is capped by conduit\n\
     circuitousness (~1.3x); a dense LEO shell reaches cISP-like medians but with a\n\
     time-varying tail, and a sparse shell is both slower and patchier — 'extremely\n\
     high density' is indeed required."
