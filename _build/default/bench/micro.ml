(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   timing the computational kernel that experiment leans on.  The full
   experiment harnesses (fig*.ml) regenerate the tables themselves;
   these quantify the kernels' costs. *)

open Bechamel
open Toolkit

let make_tests ctx =
  let inputs = Ctx.us_inputs ctx in
  let topo = Ctx.us_topology ctx in
  let a = Ctx.us_artifacts ctx in
  let small = Cisp_design.Inputs.restrict inputs ~indices:(Array.init 8 (fun i -> i)) in
  let w = Cisp_design.Greedy.weight_matrix inputs in
  let base = Cisp_design.Topology.fiber_baseline inputs in
  let dem = a.Cisp_design.Scenario.dem in
  let p1 = Cisp_geo.Coord.make ~lat:40.0 ~lon:(-100.0) in
  let p2 = Cisp_geo.Coord.make ~lat:40.3 ~lon:(-99.5) in
  let ep p = Cisp_rf.Los.endpoint_of_tower ~dem p ~antenna_m:120.0 in
  let e1 = ep p1 and e2 = ep p2 in
  let surface = Cisp_terrain.Dem.surface_m dem in
  let field = Cisp_weather.Rainfield.sample Cisp_weather.Rainfield.us_climate ~day:42 in
  let pages = Cisp_apps.Web.generate ~count:10 () in
  [
    Test.make ~name:"sec2_hop_loss" (Staged.stage (fun () ->
        Cisp_weather.Failure.hop_loss_probability ~rain_mm_h:25.0 ~d_km:60.0 ()));
    Test.make ~name:"fig2_ilp_formulate" (Staged.stage (fun () ->
        Cisp_design.Ilp.formulate small ~budget:200
          ~candidates:(Cisp_design.Greedy.candidates small)));
    Test.make ~name:"fig3_greedy_benefit" (Staged.stage (fun () ->
        Cisp_design.Greedy.benefit inputs w base (0, 1)));
    Test.make ~name:"fig4_dijkstra_tower_graph" (Staged.stage (fun () ->
        Cisp_graph.Dijkstra.run_to a.Cisp_design.Scenario.hops.Cisp_towers.Hops.graph ~src:0 ~dst:1));
    Test.make ~name:"fig5_event_loop_10k" (Staged.stage (fun () ->
        let eng = Cisp_sim.Engine.create () in
        for i = 1 to 10_000 do
          Cisp_sim.Engine.schedule eng ~at:(float_of_int i) (fun () -> ())
        done;
        Cisp_sim.Engine.run eng ~until:20_000.0));
    Test.make ~name:"fig6_tcp_flow" (Staged.stage (fun () ->
        let eng = Cisp_sim.Engine.create () in
        let net = Cisp_sim.Net.create eng ~n_nodes:3 in
        Cisp_sim.Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:1.0 ~buffer_bytes:max_int;
        Cisp_sim.Net.add_duplex net 1 2 ~gbps:0.1 ~delay_ms:1.0 ~buffer_bytes:max_int;
        Cisp_sim.Tcp.start_flow net (Cisp_sim.Tcp.default_config ~ack_delay_s:0.002)
          ~flow_id:1 ~route:[| 0; 1; 2 |] ~size_bytes:50_000 ~at:0.0 ~on_complete:(fun _ -> ());
        Cisp_sim.Engine.run eng ~until:10.0));
    Test.make ~name:"fig7_rain_field_sample" (Staged.stage (fun () ->
        Cisp_weather.Rainfield.rain_at field p1));
    Test.make ~name:"fig8_geodesic" (Staged.stage (fun () -> Cisp_geo.Geodesy.distance_km p1 p2));
    Test.make ~name:"fig9_traffic_matrix" (Staged.stage (fun () ->
        Cisp_traffic.Matrix.population_product inputs.Cisp_design.Inputs.sites));
    Test.make ~name:"fig10_los_check" (Staged.stage (fun () ->
        Cisp_rf.Los.check ~surface e1 e2));
    Test.make ~name:"fig11_incremental_metric" (Staged.stage (fun () ->
        Cisp_design.Topology.distances_incremental inputs base
          (List.hd topo.Cisp_design.Topology.built)));
    Test.make ~name:"fig12_frame_time" (Staged.stage (fun () ->
        Cisp_apps.Gaming.frame_time_ms Cisp_apps.Gaming.Thin_speculative_cisp ~one_way_ms:50.0));
    Test.make ~name:"fig13_plt" (Staged.stage (fun () ->
        List.map (fun p -> Cisp_apps.Web.plt_ms p Cisp_apps.Web.cisp) pages));
  ]

let run ctx =
  Ctx.section "Bechamel micro-benchmarks (per-figure kernels, ns/run)";
  let tests = make_tests ctx in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let quota = if ctx.Ctx.quick then Time.second 0.2 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:300 ~quota ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"cisp" tests in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ t ] -> Printf.printf "%-32s %12.0f ns/run\n" name t
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    (List.sort compare rows);
  Printf.printf "%!"
