(* Fig 3: the 100 Gbps, ~1.05x-stretch US network at a 3000-tower
   budget, with its bandwidth-augmentation classes. *)

open Cisp_design

let run ctx =
  Ctx.section "Fig 3: US backbone at the 3000-tower budget, 100 Gbps";
  let inputs = Ctx.us_inputs ctx in
  let topo, design_secs = Ctx.time (fun () -> Ctx.us_topology ctx) in
  let plan = Ctx.us_plan ctx in
  let stretch = Topology.stretch_of topo in
  Printf.printf "sites=%d  budget=%d towers (used %d)  links built=%d  (design %.1fs)\n"
    (Inputs.n_sites inputs) (Ctx.us_budget ctx) topo.Topology.cost
    (List.length topo.Topology.built) design_secs;
  Printf.printf "mean stretch          : %.3f   (paper: 1.05)\n" stretch;
  Printf.printf "MW-carried traffic    : %.1f%%\n" (100.0 *. plan.Capacity.mw_carried_fraction);
  Printf.printf "tower-tower hops      : %d\n" plan.Capacity.hops_total;
  Printf.printf "hop augmentation classes (new towers per hop end):\n";
  List.iter
    (fun (cls, count) ->
      let label =
        match cls with
        | 0 -> "existing towers only (blue)"
        | 1 -> "1 new tower each end (green)"
        | 2 -> "2 new towers each end (red)"
        | k -> Printf.sprintf "%d new towers each end" k
      in
      Printf.printf "  %-32s %d hops\n" label count)
    plan.Capacity.hop_classes;
  Printf.printf "  (paper: 1660 existing / 552 one-new / 86 two-new)\n";
  let cpg = Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:Ctx.aggregate_gbps in
  Printf.printf "cost per GB @ %.0f Gbps : $%.2f   (paper: $0.81)\n%!" Ctx.aggregate_gbps cpg;
  (* Longest built link, for Fig 4(b). *)
  (match
     List.fold_left
       (fun acc (i, j) ->
         let d = inputs.Inputs.mw_km.(i).(j) in
         match acc with Some (_, _, d') when d' >= d -> acc | _ -> Some (i, j, d))
       None topo.Topology.built
   with
  | Some (i, j, d) ->
    Printf.printf "longest MW link: %s <-> %s, %.0f km\n%!"
      inputs.Inputs.sites.(i).Cisp_data.City.name inputs.Inputs.sites.(j).Cisp_data.City.name d
  | None -> ())
