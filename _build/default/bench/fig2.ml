(* Fig 2: (a) the exact ILP does not scale while the heuristic handles
   the full problem; (b) at small scales the heuristic matches the ILP
   optimum. *)

open Cisp_design

let budget_per_site = 27 (* ~3000 towers at 112 sites, like 6000 at 120 *)

let subset_inputs ctx n =
  let inputs = Ctx.us_inputs ctx in
  Inputs.restrict inputs ~indices:(Array.init n (fun i -> i))

let status_string = function
  | `Optimal -> "optimal"
  | `Feasible_gap g -> Printf.sprintf "gap %.1f%%" (100.0 *. g)
  | `Infeasible -> "infeasible"
  | `Unbounded -> "unbounded"
  | `No_solution -> "no solution"

let run ctx =
  Ctx.section "Fig 2(a): solver runtime scaling (seconds)";
  let ilp_cap = if ctx.Ctx.quick then 10.0 else 45.0 in
  let ilp_sizes = if ctx.Ctx.quick then [ 4; 6 ] else [ 4; 5; 6; 7; 8; 9; 10 ] in
  Printf.printf "%-8s %-12s %-14s %s\n" "cities" "ilp time" "ilp status" "(budget = 27/city)";
  let ilp_results = ref [] in
  List.iter
    (fun n ->
      let inputs = subset_inputs ctx n in
      let budget = budget_per_site * n in
      let candidates = Greedy.candidate_set inputs ~budget ~inflation:2.0 in
      let limits = { Cisp_lp.Milp.default_limits with max_seconds = ilp_cap } in
      let (topo, stats), secs = Ctx.time (fun () -> Ilp.design ~limits inputs ~budget ~candidates) in
      ilp_results := (n, topo, stats) :: !ilp_results;
      Printf.printf "%-8d %-12.2f %-14s (commodities=%d flows=%d nodes=%d)\n%!" n secs
        (status_string stats.Ilp.milp_status)
        stats.Ilp.commodities stats.Ilp.flow_vars stats.Ilp.nodes_explored)
    ilp_sizes;
  let heur_sizes =
    let full = Array.length (Ctx.us_inputs ctx).Inputs.sites in
    if ctx.Ctx.quick then [ 10; full ] else [ 10; 28; 56; 84; full ]
  in
  Printf.printf "%-8s %-12s\n" "cities" "heuristic time";
  List.iter
    (fun n ->
      let inputs = subset_inputs ctx n in
      let budget = budget_per_site * n in
      let _, secs = Ctx.time (fun () -> Scenario.design inputs ~budget) in
      Printf.printf "%-8d %-12.2f\n%!" n secs)
    heur_sizes;
  Ctx.note "paper: ILP fails beyond ~50 cities after 2 days; heuristic solves 120 cities in hours.";

  Ctx.section "Fig 2(b): heuristic vs exact stretch";
  Printf.printf "%-8s %-12s %-12s %-12s\n" "cities" "ilp" "heuristic" "lp-rounding";
  List.iter
    (fun (n, ilp_topo, stats) ->
      if stats.Ilp.milp_status = `Optimal then begin
        let inputs = subset_inputs ctx n in
        let budget = budget_per_site * n in
        let heur = Scenario.design inputs ~budget in
        let rounded = Scenario.design ~method_:Scenario.Rounded inputs ~budget in
        Printf.printf "%-8d %-12.4f %-12.4f %-12.4f\n%!" n
          (Topology.stretch_of ilp_topo) (Topology.stretch_of heur)
          (Topology.stretch_of rounded)
      end)
    (List.rev !ilp_results);
  Ctx.note "paper: heuristic matches the ILP to two decimal places; LP rounding is worse."
