(* Fig 12: thin-client gaming frame time, conventional vs speculative
   execution over a cISP augmentation. *)

module Gaming = Cisp_apps.Gaming

let run ctx =
  Ctx.section "Fig 12: gaming frame time vs network latency";
  let latencies = [ 5.0; 10.0; 25.0; 50.0; 75.0; 100.0; 150.0 ] in
  Printf.printf "%-16s %-18s %-22s %-10s\n" "one-way ms" "conventional ms" "speculative+cISP ms" "savings";
  List.iter
    (fun l ->
      let conv = Gaming.frame_time_ms Gaming.Thin_conventional ~one_way_ms:l in
      let spec = Gaming.frame_time_ms Gaming.Thin_speculative_cisp ~one_way_ms:l in
      Printf.printf "%-16.0f %-18.1f %-22.1f %.0f%%\n" l conv spec
        (100.0 *. (conv -. spec) /. conv))
    latencies;
  (* Monte-Carlo session with jitter at a representative latency. *)
  let runs = if ctx.Ctx.quick then 2_000 else 20_000 in
  let conv = Gaming.simulate_session Gaming.Thin_conventional ~one_way_ms:50.0 ~inputs:runs in
  let spec = Gaming.simulate_session Gaming.Thin_speculative_cisp ~one_way_ms:50.0 ~inputs:runs in
  Printf.printf "session @50ms one-way: conventional p50=%.1f p99=%.1f; speculative p50=%.1f p99=%.1f\n%!"
    conv.Cisp_util.Stats.p50 conv.Cisp_util.Stats.p99 spec.Cisp_util.Stats.p50
    spec.Cisp_util.Stats.p99;
  (* Fat-client improvement (§7.1's 3-4x claim). *)
  let fat_conv = Gaming.frame_time_ms Gaming.Fat_conventional ~one_way_ms:40.0 in
  let fat_cisp = Gaming.frame_time_ms Gaming.Fat_cisp ~one_way_ms:40.0 in
  Printf.printf "fat client @40ms: %.1f ms -> %.1f ms over cISP\n%!" fat_conv fat_cisp;
  Ctx.note "paper: speculation over a 1/3-latency network substantially cuts frame time."
