(* Shared benchmark context: the expensive artifacts (tower graph,
   fiber net, designed topologies) are built once and reused across
   experiments, mirroring how the paper's figures all derive from one
   design pipeline. *)

module Scenario = Cisp_design.Scenario
module Inputs = Cisp_design.Inputs
module Topology = Cisp_design.Topology

type t = {
  quick : bool;   (* trimmed sweeps for smoke-testing the harness *)
  mutable inputs_cache : (string * Inputs.t) list;
  mutable topo_cache : (string * Topology.t) list;
}

let create ~quick = { quick; inputs_cache = []; topo_cache = [] }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let section name =
  Printf.printf "\n==================================================================\n";
  Printf.printf "%s\n" name;
  Printf.printf "==================================================================\n%!"

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* ---------- US baseline ---------- *)

let us_config t =
  if t.quick then { Scenario.default_config with n_sites = Some 30 }
  else Scenario.default_config

let us_budget t = if t.quick then 900 else 3000

let us_artifacts t = Scenario.artifacts ~config:(us_config t) ()

let memo_inputs t key build =
  match List.assoc_opt key t.inputs_cache with
  | Some i -> i
  | None ->
    let i = build () in
    t.inputs_cache <- (key, i) :: t.inputs_cache;
    i

let memo_topo t key build =
  match List.assoc_opt key t.topo_cache with
  | Some x -> x
  | None ->
    let x = build () in
    t.topo_cache <- (key, x) :: t.topo_cache;
    x

let us_inputs t =
  memo_inputs t "us" (fun () -> Scenario.population_inputs (us_artifacts t))

let us_topology t =
  memo_topo t "us" (fun () ->
      Scenario.design (us_inputs t) ~budget:(us_budget t))

let aggregate_gbps = 100.0

let us_plan t =
  let a = us_artifacts t in
  let spare = Cisp_design.Capacity.spare_from_registry a.Scenario.hops in
  Cisp_design.Capacity.plan ~spare_series_at_hop:spare (us_inputs t) (us_topology t)
    ~aggregate_gbps
