bench/main.ml: Ablation Alt Array Ctx Fig10 Fig11 Fig12 Fig13 Fig2 Fig3 Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 List Micro Printf Sec2 Sec8 String Sys Unix
