bench/ctx.ml: Cisp_design List Printf Unix
