bench/sec2.ml: Array Cisp_weather Ctx Printf
