bench/fig12.ml: Cisp_apps Cisp_util Ctx List Printf
