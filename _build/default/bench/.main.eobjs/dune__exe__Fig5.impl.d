bench/fig5.ml: Cisp_design Cisp_sim Cisp_traffic Ctx Inputs List Printf
