bench/fig2.ml: Array Cisp_design Cisp_lp Ctx Greedy Ilp Inputs List Printf Scenario Topology
