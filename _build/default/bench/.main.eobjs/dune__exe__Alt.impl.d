bench/alt.ml: Array Cisp_data Cisp_design Cisp_orbit Cisp_util Ctx Inputs List Printf String Topology
