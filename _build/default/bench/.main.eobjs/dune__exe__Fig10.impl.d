bench/fig10.ml: Capacity Cisp_design Cost Ctx List Printf Scenario Topology
