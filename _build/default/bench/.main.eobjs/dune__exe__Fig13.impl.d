bench/fig13.ml: Array Cisp_apps Cisp_util Ctx List Printf
