bench/fig8.ml: Array Capacity Cisp_design Cisp_towers Cost Ctx List Printf Scenario Topology
