bench/main.mli:
