bench/sec8.ml: Cisp_apps Cisp_design Ctx List Printf
