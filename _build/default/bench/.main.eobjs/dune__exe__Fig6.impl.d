bench/fig6.ml: Array Cisp_sim Cisp_util Ctx List Printf
