bench/fig7.ml: Array Cisp_design Cisp_util Cisp_weather Ctx List Printf
