bench/fig3.ml: Array Capacity Cisp_data Cisp_design Cost Ctx Inputs List Printf Topology
