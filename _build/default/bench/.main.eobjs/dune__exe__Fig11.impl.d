bench/fig11.ml: Array Capacity Cisp_design Cisp_sim Cisp_traffic Ctx Fig9 List Printf Scenario
