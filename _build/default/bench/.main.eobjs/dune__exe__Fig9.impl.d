bench/fig9.ml: Array Capacity Cisp_data Cisp_design Cisp_geo Cisp_traffic Cost Ctx List Option Printf Scenario Topology
