bench/ablation.ml: Array Cisp_data Cisp_design Cisp_lp Cisp_rf Cisp_towers Ctx Float Greedy Ilp Inputs List Local_search Printf Scenario Topology
