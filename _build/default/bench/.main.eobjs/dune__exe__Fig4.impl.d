bench/fig4.ml: Array Capacity Cisp_data Cisp_design Cisp_graph Cisp_towers Cost Ctx Inputs List Printf Scenario Topology
