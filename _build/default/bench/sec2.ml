(* §2 "Packet loss": the Chicago-New Jersey HFT relay through a
   Hurricane-Sandy-like window. *)

module Hft = Cisp_weather.Hft

let run ctx =
  Ctx.section "Sec 2: HFT relay loss across a hurricane window";
  let minutes = if ctx.Ctx.quick then 600 else 2743 in
  let r = Hft.run ~minutes () in
  Printf.printf "minutes=%d  mean loss=%.1f%%  median loss=%.1f%%\n" r.Hft.minutes
    (100.0 *. r.Hft.mean_loss) (100.0 *. r.Hft.median_loss);
  let fail_minutes =
    Array.fold_left (fun acc l -> if l > 0.5 then acc + 1 else acc) 0 r.Hft.loss_series
  in
  Printf.printf "minutes in near-outage (>50%% loss): %d (%.1f%%)\n%!" fail_minutes
    (100.0 *. float_of_int fail_minutes /. float_of_int r.Hft.minutes);
  Ctx.note "paper: mean 16.1%%, median 1.4%% over the same window (hurricane driving the mean)."
