open Cisp_graph

let check_float eps = Alcotest.(check (float eps))

(* ---------- Heap ---------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _) ->
      out := k :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 0.0))) "sorted" [ 5.0; 4.0; 3.0; 2.0; 1.0 ] !out

let test_heap_peek_clear () =
  let h = Heap.create ~capacity:1 () in
  Heap.push h 2.0 "b";
  Heap.push h 1.0 "a";
  (match Heap.peek h with
  | Some (k, v) ->
    check_float 0.0 "peek key" 1.0 k;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check int) "length" 2 (Heap.length h);
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_range 0.0 1000.0))
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        match Heap.pop h with Some (k, ()) -> drain (k :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort Float.compare keys)

(* ---------- Graph / Dijkstra ---------- *)

(*   0 --1-- 1 --1-- 2
     |               |
     +------10-------+   *)
let diamond () =
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 1.0;
  Graph.add_undirected g 1 2 1.0;
  Graph.add_undirected g 0 2 10.0;
  g

let test_dijkstra_basic () =
  let g = diamond () in
  let r = Dijkstra.run g ~src:0 in
  check_float 1e-9 "dist 0->2" 2.0 r.dist.(2);
  Alcotest.(check (list int)) "path" [ 0; 1; 2 ] (Dijkstra.path r ~dst:2)

let test_dijkstra_unreachable () =
  let g = Graph.create 3 in
  Graph.add_undirected g 0 1 1.0;
  let r = Dijkstra.run g ~src:0 in
  Alcotest.(check bool) "unreachable" true (r.dist.(2) = infinity);
  Alcotest.(check (list int)) "no path" [] (Dijkstra.path r ~dst:2);
  Alcotest.(check bool) "distance none" true (Dijkstra.distance g ~src:0 ~dst:2 = None)

let test_dijkstra_early_exit () =
  let g = diamond () in
  match Dijkstra.shortest_path g ~src:0 ~dst:2 with
  | Some (d, path) ->
    check_float 1e-9 "dist" 2.0 d;
    Alcotest.(check (list int)) "path" [ 0; 1; 2 ] path
  | None -> Alcotest.fail "expected path"

let test_all_pairs () =
  let g = diamond () in
  let d = Dijkstra.all_pairs g in
  check_float 1e-9 "0->2" 2.0 d.(0).(2);
  check_float 1e-9 "2->0" 2.0 d.(2).(0);
  check_float 1e-9 "diag" 0.0 d.(1).(1)

let test_graph_remove_edges () =
  let g = diamond () in
  Graph.remove_edges g (fun u e -> not ((u = 0 && e.Graph.dst = 1) || (u = 1 && e.Graph.dst = 0)));
  let r = Dijkstra.run g ~src:0 in
  check_float 1e-9 "reroutes over long edge" 10.0 r.dist.(2)

let test_graph_tags () =
  let g = Graph.create 2 in
  Graph.add_edge ~tag:42 g 0 1 1.0;
  match Graph.succ g 0 with
  | [ e ] -> Alcotest.(check int) "tag" 42 e.Graph.tag
  | _ -> Alcotest.fail "expected one edge"

(* Random graph: dijkstra distance <= length of any sampled random walk. *)
let prop_dijkstra_lower_bound =
  QCheck.Test.make ~name:"dijkstra is a lower bound over random walks" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Cisp_util.Rng.create seed in
      let n = 12 in
      let g = Graph.create n in
      for _ = 1 to 30 do
        let u = Cisp_util.Rng.int rng n and v = Cisp_util.Rng.int rng n in
        if u <> v then Graph.add_undirected g u v (Cisp_util.Rng.uniform rng 1.0 10.0)
      done;
      let r = Dijkstra.run g ~src:0 in
      (* random walk from 0 of up to 8 steps *)
      let rec walk u len steps =
        if steps = 0 then true
        else begin
          match Graph.succ g u with
          | [] -> true
          | edges ->
            let e = List.nth edges (Cisp_util.Rng.int rng (List.length edges)) in
            let len = len +. e.Graph.weight in
            r.dist.(e.Graph.dst) <= len +. 1e-9 && walk e.Graph.dst len (steps - 1)
        end
      in
      walk 0 0.0 8)

(* ---------- K-shortest ---------- *)

let test_yen_basic () =
  let g = diamond () in
  let paths = Kshortest.yen g ~src:0 ~dst:2 ~k:3 in
  Alcotest.(check int) "two distinct paths" 2 (List.length paths);
  (match paths with
  | (d1, p1) :: (d2, p2) :: _ ->
    check_float 1e-9 "first" 2.0 d1;
    Alcotest.(check (list int)) "first path" [ 0; 1; 2 ] p1;
    check_float 1e-9 "second" 10.0 d2;
    Alcotest.(check (list int)) "second path" [ 0; 2 ] p2
  | _ -> Alcotest.fail "expected 2 paths");
  ()

let test_yen_sorted_distinct () =
  let g = Graph.create 5 in
  Graph.add_undirected g 0 1 1.0;
  Graph.add_undirected g 1 4 1.0;
  Graph.add_undirected g 0 2 1.5;
  Graph.add_undirected g 2 4 1.5;
  Graph.add_undirected g 0 3 2.0;
  Graph.add_undirected g 3 4 2.5;
  let paths = Kshortest.yen g ~src:0 ~dst:4 ~k:5 in
  let ds = List.map fst paths in
  Alcotest.(check bool) "sorted" true (List.sort Float.compare ds = ds);
  let ps = List.map snd paths in
  Alcotest.(check int) "distinct" (List.length ps)
    (List.length (List.sort_uniq compare ps))

(* ---------- Disjoint ---------- *)

let test_disjoint_successive () =
  (* Two parallel 2-hop routes plus one direct expensive edge. *)
  let g = Graph.create 6 in
  Graph.add_undirected g 0 1 1.0;
  Graph.add_undirected g 1 5 1.0;
  Graph.add_undirected g 0 2 2.0;
  Graph.add_undirected g 2 5 2.0;
  Graph.add_undirected g 0 5 10.0;
  let rounds = Disjoint.successive g ~src:0 ~dst:5 ~rounds:5 ~protected:(fun _ -> false) in
  Alcotest.(check int) "three rounds" 3 (List.length rounds);
  let ds = List.map fst rounds in
  Alcotest.(check (list (float 1e-9))) "lengths grow" [ 2.0; 4.0; 10.0 ] ds

let test_disjoint_protected () =
  let g = Graph.create 4 in
  Graph.add_undirected g 0 1 1.0;
  Graph.add_undirected g 1 3 1.0;
  Graph.add_undirected g 0 2 5.0;
  Graph.add_undirected g 2 3 5.0;
  (* protecting node 1 keeps the cheap route available forever *)
  let rounds = Disjoint.successive g ~src:0 ~dst:3 ~rounds:3 ~protected:(fun v -> v = 1) in
  Alcotest.(check int) "all rounds available" 3 (List.length rounds);
  List.iter (fun (d, _) -> check_float 1e-9 "always cheap" 2.0 d) rounds

let test_disjoint_preserves_input () =
  let g = diamond () in
  let before = Graph.edge_count g in
  ignore (Disjoint.successive g ~src:0 ~dst:2 ~rounds:3 ~protected:(fun _ -> false));
  Alcotest.(check int) "input untouched" before (Graph.edge_count g)

let suites =
  [
    ( "graph.heap",
      [
        Alcotest.test_case "pop order" `Quick test_heap_order;
        Alcotest.test_case "peek and clear" `Quick test_heap_peek_clear;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
      ] );
    ( "graph.dijkstra",
      [
        Alcotest.test_case "basic" `Quick test_dijkstra_basic;
        Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
        Alcotest.test_case "early exit" `Quick test_dijkstra_early_exit;
        Alcotest.test_case "all pairs" `Quick test_all_pairs;
        Alcotest.test_case "remove edges" `Quick test_graph_remove_edges;
        Alcotest.test_case "edge tags" `Quick test_graph_tags;
        QCheck_alcotest.to_alcotest prop_dijkstra_lower_bound;
      ] );
    ( "graph.kshortest",
      [
        Alcotest.test_case "diamond" `Quick test_yen_basic;
        Alcotest.test_case "sorted distinct" `Quick test_yen_sorted_distinct;
      ] );
    ( "graph.disjoint",
      [
        Alcotest.test_case "successive removal" `Quick test_disjoint_successive;
        Alcotest.test_case "protected nodes" `Quick test_disjoint_protected;
        Alcotest.test_case "input preserved" `Quick test_disjoint_preserves_input;
      ] );
  ]

(* ---------- deeper properties ---------- *)

let random_graph seed ~n ~edges =
  let rng = Cisp_util.Rng.create seed in
  let g = Graph.create n in
  for _ = 1 to edges do
    let u = Cisp_util.Rng.int rng n and v = Cisp_util.Rng.int rng n in
    if u <> v then Graph.add_undirected g u v (Cisp_util.Rng.uniform rng 1.0 10.0)
  done;
  g

let path_length g path =
  let rec loop acc = function
    | u :: (v :: _ as rest) ->
      let w =
        List.fold_left
          (fun best (e : Graph.edge) -> if e.dst = v then Float.min best e.weight else best)
          infinity (Graph.succ g u)
      in
      loop (acc +. w) rest
    | _ -> acc
  in
  loop 0.0 path

let prop_yen_first_is_shortest =
  QCheck.Test.make ~name:"yen's first path is the shortest path" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_graph seed ~n:8 ~edges:16 in
      match (Kshortest.yen g ~src:0 ~dst:7 ~k:3, Dijkstra.shortest_path g ~src:0 ~dst:7) with
      | [], None -> true
      | (d, _) :: _, Some (d', _) -> Float.abs (d -. d') < 1e-9
      | _ -> false)

let prop_yen_paths_valid =
  QCheck.Test.make ~name:"yen paths are valid and correctly priced" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 1000) ~n:8 ~edges:18 in
      List.for_all
        (fun (d, p) ->
          List.hd p = 0
          && List.nth p (List.length p - 1) = 7
          && Float.abs (path_length g p -. d) < 1e-9
          (* loopless *)
          && List.length p = List.length (List.sort_uniq compare p))
        (Kshortest.yen g ~src:0 ~dst:7 ~k:4))

let prop_yen_sorted =
  QCheck.Test.make ~name:"yen path lengths are nondecreasing" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 3000) ~n:9 ~edges:20 in
      let ds = List.map fst (Kshortest.yen g ~src:0 ~dst:8 ~k:5) in
      List.sort Float.compare ds = ds)

let prop_disjoint_lengths_nondecreasing =
  QCheck.Test.make ~name:"successive disjoint paths never get shorter" ~count:100
    QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 2000) ~n:10 ~edges:24 in
      let rounds = Disjoint.successive g ~src:0 ~dst:9 ~rounds:6 ~protected:(fun _ -> false) in
      let ds = List.map fst rounds in
      List.sort Float.compare ds = ds)

let is_simple p = List.length p = List.length (List.sort_uniq compare p)

let interior p =
  match p with [] | [ _ ] -> [] | _ :: rest -> List.filter ((<>) (List.nth p (List.length p - 1))) rest

let prop_disjoint_paths_simple =
  QCheck.Test.make ~name:"successive disjoint paths are simple" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 4000) ~n:10 ~edges:24 in
      let rounds = Disjoint.successive g ~src:0 ~dst:9 ~rounds:6 ~protected:(fun _ -> false) in
      List.for_all (fun (_, p) -> is_simple p) rounds)

let prop_disjoint_interiors_disjoint =
  QCheck.Test.make ~name:"successive paths share no interior node" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 5000) ~n:10 ~edges:24 in
      let rounds = Disjoint.successive g ~src:0 ~dst:9 ~rounds:6 ~protected:(fun _ -> false) in
      let interiors = List.map (fun (_, p) -> interior p) rounds in
      let rec pairwise = function
        | [] -> true
        | i :: rest ->
          List.for_all (fun j -> List.for_all (fun v -> not (List.mem v j)) i) rest
          && pairwise rest
      in
      pairwise interiors)

let prop_searches_preserve_input =
  QCheck.Test.make ~name:"yen/disjoint/multipath leave the input graph unmodified" ~count:100
    QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 6000) ~n:9 ~edges:20 in
      let snapshot g =
        List.init 9 (fun u ->
            List.map (fun (e : Graph.edge) -> (e.dst, e.weight, e.tag)) (Graph.succ g u))
      in
      let before = snapshot g in
      ignore (Kshortest.yen g ~src:0 ~dst:8 ~k:4);
      ignore (Disjoint.successive g ~src:0 ~dst:8 ~rounds:4 ~protected:(fun _ -> false));
      ignore (Multipath.k_disjoint g ~src:0 ~dst:8 ~k:4);
      ignore (Multipath.k_paths ~disjointness:Multipath.Node_disjoint g ~src:0 ~dst:8 ~k:4);
      snapshot g = before)

let deep_suite =
  ( "graph.properties",
    [
      QCheck_alcotest.to_alcotest prop_yen_first_is_shortest;
      QCheck_alcotest.to_alcotest prop_yen_paths_valid;
      QCheck_alcotest.to_alcotest prop_yen_sorted;
      QCheck_alcotest.to_alcotest prop_disjoint_lengths_nondecreasing;
      QCheck_alcotest.to_alcotest prop_disjoint_paths_simple;
      QCheck_alcotest.to_alcotest prop_disjoint_interiors_disjoint;
      QCheck_alcotest.to_alcotest prop_searches_preserve_input;
    ] )

(* ---------- Multipath ---------- *)

(* src 0, dst 4: a 2-hop primary through node 1, an edge-disjoint
   detour that reuses node 1 over fresh edges, and an expensive direct
   edge.  Distinguishes the two disjointness modes. *)
let multipath_graph () =
  let g = Graph.create 5 in
  Graph.add_undirected g 0 1 1.0;
  Graph.add_undirected g 1 4 1.0;
  Graph.add_undirected g 0 2 1.0;
  Graph.add_undirected g 2 1 0.5;
  Graph.add_undirected g 1 3 0.5;
  Graph.add_undirected g 3 4 1.0;
  Graph.add_undirected g 0 4 10.0;
  g

let test_multipath_edge_disjoint () =
  let g = multipath_graph () in
  let paths = Multipath.k_disjoint g ~src:0 ~dst:4 ~k:5 in
  Alcotest.(check (list (float 1e-9))) "edge-disjoint lengths" [ 2.0; 3.0; 10.0 ]
    (List.map fst paths);
  match paths with
  | (_, p1) :: (_, p2) :: _ ->
    Alcotest.(check (list int)) "primary" [ 0; 1; 4 ] p1;
    Alcotest.(check (list int)) "detour reuses node 1" [ 0; 2; 1; 3; 4 ] p2
  | _ -> Alcotest.fail "expected 3 paths"

let test_multipath_node_disjoint () =
  let g = multipath_graph () in
  let paths = Multipath.k_disjoint ~disjointness:Multipath.Node_disjoint g ~src:0 ~dst:4 ~k:5 in
  Alcotest.(check (list (float 1e-9))) "node-disjoint lengths" [ 2.0; 10.0 ]
    (List.map fst paths)

let test_multipath_k_paths_top_up () =
  let g = multipath_graph () in
  let paths = Multipath.k_paths ~disjointness:Multipath.Node_disjoint g ~src:0 ~dst:4 ~k:3 in
  (* Two node-disjoint routes exist; Yen tops the set up to three.  The
     result is priority-ordered, not length-sorted. *)
  Alcotest.(check int) "topped up" 3 (List.length paths);
  Alcotest.(check (list (float 1e-9))) "priority order" [ 2.0; 10.0; 2.5 ] (List.map fst paths)

let test_multipath_invalid_k () =
  Alcotest.check_raises "negative k" (Invalid_argument "Multipath.successive: k < 0") (fun () ->
      ignore (Multipath.k_disjoint (diamond ()) ~src:0 ~dst:2 ~k:(-1)))

let undirected_pairs p =
  List.map (fun (u, v) -> (min u v, max u v))
    (let rec pairs = function u :: (v :: _ as rest) -> (u, v) :: pairs rest | _ -> [] in
     pairs p)

let prop_multipath_edge_disjointness =
  QCheck.Test.make ~name:"k_disjoint paths share no undirected edge" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 7000) ~n:10 ~edges:26 in
      let paths = Multipath.k_disjoint g ~src:0 ~dst:9 ~k:5 in
      let rec pairwise = function
        | [] -> true
        | (_, p) :: rest ->
          let mine = undirected_pairs p in
          List.for_all
            (fun (_, q) ->
              List.for_all (fun e -> not (List.mem e (undirected_pairs q))) mine)
            rest
          && pairwise rest
      in
      pairwise paths)

let prop_multipath_primary_is_shortest =
  QCheck.Test.make ~name:"k_disjoint primary equals dijkstra" ~count:100 QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 8000) ~n:10 ~edges:22 in
      match (Multipath.k_disjoint g ~src:0 ~dst:9 ~k:3, Dijkstra.shortest_path g ~src:0 ~dst:9) with
      | [], None -> true
      | (d, _) :: _, Some (d', _) -> Float.abs (d -. d') < 1e-9
      | _ -> false)

let prop_multipath_simple_and_monotone =
  QCheck.Test.make ~name:"k_disjoint paths are simple with monotone lengths" ~count:100
    QCheck.small_int
    (fun seed ->
      let g = random_graph (seed + 9000) ~n:10 ~edges:24 in
      let paths = Multipath.k_disjoint g ~src:0 ~dst:9 ~k:5 in
      let ds = List.map fst paths in
      List.for_all (fun (_, p) -> is_simple p) paths && List.sort Float.compare ds = ds)

let multipath_suite =
  ( "graph.multipath",
    [
      Alcotest.test_case "edge-disjoint modes" `Quick test_multipath_edge_disjoint;
      Alcotest.test_case "node-disjoint modes" `Quick test_multipath_node_disjoint;
      Alcotest.test_case "k_paths top-up" `Quick test_multipath_k_paths_top_up;
      Alcotest.test_case "invalid k" `Quick test_multipath_invalid_k;
      QCheck_alcotest.to_alcotest prop_multipath_edge_disjointness;
      QCheck_alcotest.to_alcotest prop_multipath_primary_is_shortest;
      QCheck_alcotest.to_alcotest prop_multipath_simple_and_monotone;
    ] )

let suites = suites @ [ deep_suite; multipath_suite ]
