open Cisp_graph

(* Equivalence suite for the hierarchical shortest-path engines: CH
   and ALT must agree with plain Dijkstra bit-for-bit — distances via
   Float.equal, not a tolerance — on random geometric multigraphs,
   including parallel edges and disconnected pairs. *)

(* Random geometric multigraph: nodes scattered in the unit square,
   edges between nearby pairs weighted by euclidean distance (so ties
   between distinct node sequences have measure zero), plus a sprinkle
   of parallel edges (heavier duplicates that must never change a
   shortest path, same-weight duplicates that must not confuse the
   collapse). *)
let geometric_graph seed ~n ~radius =
  let rng = Cisp_util.Rng.create seed in
  let xs = Array.init n (fun _ -> Cisp_util.Rng.uniform rng 0.0 1.0) in
  let ys = Array.init n (fun _ -> Cisp_util.Rng.uniform rng 0.0 1.0) in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      if d <= radius then begin
        Graph.add_undirected g u v d;
        (* parallel heavier edge on some pairs, exact duplicate on a
           few others *)
        let roll = Cisp_util.Rng.int rng 10 in
        if roll = 0 then Graph.add_undirected g u v (d *. 1.5)
        else if roll = 1 then Graph.add_undirected g u v d
      end
    done
  done;
  g

let node_pairs rng n count =
  Array.init count (fun _ -> (Cisp_util.Rng.int rng n, Cisp_util.Rng.int rng n))

(* Bitwise agreement of one engine answer with Dijkstra's, distances
   AND node paths (unique shortest paths make the path comparable). *)
let agrees dijkstra engine =
  match (dijkstra, engine) with
  | None, None -> true
  | Some (d, p), Some (d', p') -> Float.equal d d' && p = p'
  | _ -> false

let prop_ch_matches_dijkstra =
  QCheck.Test.make ~name:"ch distances and paths bitwise-equal dijkstra" ~count:40
    QCheck.small_int
    (fun seed ->
      let n = 40 in
      let g = geometric_graph (seed + 1000) ~n ~radius:0.3 in
      let ch = Ch.build g in
      let rng = Cisp_util.Rng.create (seed + 2000) in
      Array.for_all
        (fun (src, dst) ->
          agrees (Dijkstra.shortest_path g ~src ~dst) (Ch.shortest_path ch ~src ~dst)
          &&
          match (Dijkstra.distance g ~src ~dst, Ch.distance ch ~src ~dst) with
          | None, None -> true
          | Some d, Some d' -> Float.equal d d'
          | _ -> false)
        (node_pairs rng n 30))

let prop_ch_disconnected =
  QCheck.Test.make ~name:"ch agrees on sparse graphs with disconnected pairs" ~count:40
    QCheck.small_int
    (fun seed ->
      let n = 50 in
      (* radius small enough that several components appear *)
      let g = geometric_graph (seed + 3000) ~n ~radius:0.12 in
      let ch = Ch.build g in
      let rng = Cisp_util.Rng.create (seed + 4000) in
      Array.for_all
        (fun (src, dst) ->
          agrees (Dijkstra.shortest_path g ~src ~dst) (Ch.shortest_path ch ~src ~dst))
        (node_pairs rng n 30))

let prop_ch_many_to_many =
  QCheck.Test.make ~name:"ch many_to_many bitwise-equal per-source dijkstra" ~count:25
    QCheck.small_int
    (fun seed ->
      let n = 35 in
      let g = geometric_graph (seed + 5000) ~n ~radius:0.25 in
      let ch = Ch.build g in
      let rng = Cisp_util.Rng.create (seed + 6000) in
      let sources = Array.init 6 (fun _ -> Cisp_util.Rng.int rng n) in
      let targets = Array.init 7 (fun _ -> Cisp_util.Rng.int rng n) in
      let m = Ch.many_to_many ch ~sources ~targets in
      let mp = Ch.many_to_many_paths ch ~sources ~targets in
      let ok = ref true in
      Array.iteri
        (fun si src ->
          let r = Dijkstra.run g ~src in
          Array.iteri
            (fun ti dst ->
              let want = r.Dijkstra.dist.(dst) in
              if not (Float.equal m.(si).(ti) want) then ok := false;
              match mp.(si).(ti) with
              | None -> if want < infinity then ok := false
              | Some (d, p) ->
                if not (Float.equal d want && p = Dijkstra.path r ~dst) then ok := false)
            targets)
        sources;
      !ok)

let test_ch_tiny_cases () =
  (* hand cases: single node, self query, two components *)
  let g1 = Graph.create 1 in
  let ch1 = Ch.build g1 in
  (match Ch.shortest_path ch1 ~src:0 ~dst:0 with
  | Some (d, p) ->
    Alcotest.(check (float 0.0)) "self dist" 0.0 d;
    Alcotest.(check (list int)) "self path" [ 0 ] p
  | None -> Alcotest.fail "self query");
  let g2 = Graph.create 4 in
  Graph.add_undirected g2 0 1 2.0;
  Graph.add_undirected g2 2 3 1.0;
  let ch2 = Ch.build g2 in
  Alcotest.(check bool) "disconnected" true (Ch.distance ch2 ~src:0 ~dst:3 = None);
  (match Ch.shortest_path ch2 ~src:0 ~dst:1 with
  | Some (d, p) ->
    Alcotest.(check (float 0.0)) "edge dist" 2.0 d;
    Alcotest.(check (list int)) "edge path" [ 0; 1 ] p
  | None -> Alcotest.fail "edge query")

let test_ch_rejects_directed () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 1.0;
  Alcotest.check_raises "asymmetric graph rejected"
    (Invalid_argument "Ch.build: graph is not symmetric (undirected graphs only)")
    (fun () -> ignore (Ch.build g))

let prop_alt_matches_dijkstra =
  QCheck.Test.make ~name:"alt distances bitwise-equal dijkstra" ~count:40 QCheck.small_int
    (fun seed ->
      let n = 45 in
      let g = geometric_graph (seed + 7000) ~n ~radius:0.25 in
      let alt = Landmarks.build ~count:4 g in
      let rng = Cisp_util.Rng.create (seed + 8000) in
      Array.for_all
        (fun (src, dst) ->
          agrees (Dijkstra.shortest_path g ~src ~dst) (Landmarks.shortest_path alt ~src ~dst)
          &&
          match (Dijkstra.distance g ~src ~dst, Landmarks.distance alt ~src ~dst) with
          | None, None -> true
          | Some d, Some d' -> Float.equal d d'
          | _ -> false)
        (node_pairs rng n 30))

let prop_alt_disconnected =
  QCheck.Test.make ~name:"alt agrees across components" ~count:30 QCheck.small_int
    (fun seed ->
      let n = 50 in
      let g = geometric_graph (seed + 9000) ~n ~radius:0.12 in
      let alt = Landmarks.build ~count:6 g in
      let rng = Cisp_util.Rng.create (seed + 10000) in
      Array.for_all
        (fun (src, dst) ->
          match (Dijkstra.distance g ~src ~dst, Landmarks.distance alt ~src ~dst) with
          | None, None -> true
          | Some d, Some d' -> Float.equal d d'
          | _ -> false)
        (node_pairs rng n 30))

let test_alt_landmark_selection () =
  let g = geometric_graph 42 ~n:40 ~radius:0.3 in
  let alt = Landmarks.build ~count:5 g in
  Alcotest.(check int) "count" 5 (Landmarks.count alt);
  let nodes = Landmarks.nodes alt in
  let sorted = Array.copy nodes in
  Array.sort Int.compare sorted;
  let distinct = ref true in
  Array.iteri (fun i v -> if i > 0 && sorted.(i - 1) = v then distinct := false) sorted;
  Alcotest.(check bool) "landmarks distinct" true !distinct;
  (* same (graph, seed, count) -> same landmarks *)
  let alt' = Landmarks.build ~count:5 g in
  Alcotest.(check (array int)) "selection deterministic" nodes (Landmarks.nodes alt')

(* The facade must give the same bits whatever engine it picked. *)
let prop_query_engine_agnostic =
  QCheck.Test.make ~name:"query facade identical across engines" ~count:25 QCheck.small_int
    (fun seed ->
      let n = 40 in
      let g = geometric_graph (seed + 11000) ~n ~radius:0.28 in
      (* threshold 0 forces CH under Auto; n < 512 forces plain *)
      let q_plain = Query.prepare ~mode:Force_plain g in
      let q_auto_small = Query.prepare g in
      let q_ch = Query.prepare ~threshold:0 g in
      let q_alt = Query.prepare ~mode:Force_alt g in
      let rng = Cisp_util.Rng.create (seed + 12000) in
      let pairs = node_pairs rng n 15 in
      let same_p2p =
        Array.for_all
          (fun (src, dst) ->
            let base = Query.shortest_path q_plain ~src ~dst in
            agrees base (Query.shortest_path q_auto_small ~src ~dst)
            && agrees base (Query.shortest_path q_ch ~src ~dst)
            && agrees base (Query.shortest_path q_alt ~src ~dst)
            && Query.shortest_path_graph g ~src ~dst = base)
          pairs
      in
      let sources = Array.init 5 (fun _ -> Cisp_util.Rng.int rng n) in
      let targets = Array.init 5 (fun _ -> Cisp_util.Rng.int rng n) in
      let m_plain = Query.many_to_many q_plain ~sources ~targets in
      let m_ch = Query.many_to_many q_ch ~sources ~targets in
      let same_m2m =
        Array.for_all2
          (fun r r' -> Array.for_all2 (fun a b -> Float.equal a b) r r')
          m_plain m_ch
      in
      same_p2p && same_m2m)

let test_query_all_pairs () =
  let g = geometric_graph 7 ~n:30 ~radius:0.3 in
  let want = Dijkstra.all_pairs g in
  let got_plain = Query.all_pairs (Query.prepare ~mode:Force_plain g) in
  let got_ch = Query.all_pairs (Query.prepare ~threshold:0 g) in
  let check name got =
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j d ->
            if not (Float.equal d want.(i).(j)) then
              Alcotest.failf "%s: mismatch at (%d,%d): %h vs %h" name i j d want.(i).(j))
          row)
      got
  in
  check "plain" got_plain;
  check "ch" got_ch

let suites =
  [
    ( "graph.ch",
      [
        Alcotest.test_case "tiny cases" `Quick test_ch_tiny_cases;
        Alcotest.test_case "rejects directed" `Quick test_ch_rejects_directed;
        QCheck_alcotest.to_alcotest prop_ch_matches_dijkstra;
        QCheck_alcotest.to_alcotest prop_ch_disconnected;
        QCheck_alcotest.to_alcotest prop_ch_many_to_many;
      ] );
    ( "graph.alt",
      [
        Alcotest.test_case "landmark selection" `Quick test_alt_landmark_selection;
        QCheck_alcotest.to_alcotest prop_alt_matches_dijkstra;
        QCheck_alcotest.to_alcotest prop_alt_disconnected;
      ] );
    ( "graph.query",
      [
        Alcotest.test_case "all_pairs replacement" `Quick test_query_all_pairs;
        QCheck_alcotest.to_alcotest prop_query_engine_agnostic;
      ] );
  ]
