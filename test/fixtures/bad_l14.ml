(* L14: calls that may block while a lock is held or inside a pool
   worker body.  [ok_after_unlock] blocks only after releasing and
   must stay silent. *)

let lock = Mutex.create ()

(* file IO under a mutex *)
let io_under_lock path =
  Mutex.protect lock (fun () ->
      let oc = open_out path in
      close_out oc)

(* joining a domain while holding a lock: the join can wait on work
   that needs the same lock *)
let join_under_lock d =
  Mutex.lock lock;
  Domain.join d;
  Mutex.unlock lock

(* mutex acquisition inside a pool body funnels every worker through
   one lock *)
let lock_in_pool pool (out : float array) =
  Cisp_util.Pool.parallel_for pool ~n:8 (fun i ->
      Mutex.protect lock (fun () -> out.(i) <- float_of_int i))

(* blocking after the unlock is fine *)
let ok_after_unlock path =
  Mutex.lock lock;
  Mutex.unlock lock;
  let oc = open_out path in
  close_out oc

(* interprocedural: the blocking call sits one frame below the lock *)
let deep_block path =
  let oc = open_out path in
  close_out oc

let via path = Mutex.protect lock (fun () -> deep_block path)
