(* Clean fixture: total functions, typed comparisons, units everywhere. *)

let distance_km ~a_km ~b_km = a_km +. b_km
let latency_ms d_km = d_km /. 200_000.0
let nth_or_zero xs n = Option.value (List.nth_opt xs n) ~default:0
