(* Seeded L4 violations: unit-less float parameters in a public API. *)
val scale : float -> float -> float
val speed : v:float -> float
