(* L11: per-call allocation inside pool worker bodies.  The workers
   deliberately keep their hands off shared state so these fixtures
   exercise L11 alone, not L7. *)

(* closure allocated on every iteration *)
let per_iter_closure pool (arr : float array) (out : float array) =
  Cisp_util.Pool.parallel_for pool ~n:(Array.length arr) (fun i ->
      let f j = arr.(j) +. float_of_int i in
      out.(i) <- f i)

(* a float ref boxes its contents on every store *)
let boxes pool (out : float array) =
  Cisp_util.Pool.parallel_for pool ~n:8 (fun i ->
      let acc = ref 0.0 in
      for j = 0 to i do
        acc := !acc +. float_of_int j
      done;
      out.(i) <- !acc)

(* allocation-free worker: scalar state, per-slot writes *)
let clean pool (out : float array) =
  Cisp_util.Pool.parallel_for pool ~n:8 (fun i ->
      out.(i) <- (float_of_int i *. 2.0) +. 1.0)
