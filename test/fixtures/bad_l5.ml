(* Seeded L5 violations: stdout printing from library code. *)
let shout msg = print_endline msg
let report n = Printf.printf "%d\n" n
