(* Cross-module leg of the bad_l7 fixture. *)
let hits = ref 0
let record n = hits := !hits + n
