(* Seeded L3 violations: physical constants duplicated outside Units. *)
let c_km_s = 299792.458
let earth_km = 6371.0
let glass_factor = 1.5

(* Negative case: unprotected literals are fine. *)
let unrelated = 42.75
