(* Seeded L1 violations: polymorphic comparison at float-bearing types. *)
let sort_by_distance (dists : (float * int) array) = Array.sort compare dists
let same_speed (a : float) b = a = b

(* Negative case: polymorphic compare at a non-float type is allowed. *)
let cmp_ids (a : int) b = compare a b
