(* L8: public functions may raise only Invalid_argument. *)
let lookup tbl k = List.assoc k tbl
let boom () = if true then failwith "boom" else 0
let checked n = if n < 0 then invalid_arg "checked" else n
let caught tbl k = try List.assoc k tbl with Not_found -> 0
