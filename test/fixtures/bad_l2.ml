(* Seeded L2 violations: partial stdlib calls in library code. *)
let first (xs : int list) = List.hd xs
let pick (xs : int list) n = List.nth xs n
let force (o : int option) = Option.get o
let lookup (h : (string, int) Hashtbl.t) k = Hashtbl.find h k
