(* Seeded L6 violations: data-validation asserts in library code. *)
let checked_sqrt x =
  assert (x >= 0.0);
  sqrt x

let scale (xs : float array) k =
  assert (Array.length xs > 0);
  Array.map (fun x -> x *. k) xs

(* assert false marks unreachable code and must NOT fire. *)
let absurd (o : int option) = match o with Some v -> v | None -> assert false
