(* L9: ambient nondeterminism reads, one per class. *)
let wall_clock () = Unix.gettimeofday ()
let entropy () = Random.bits ()
let from_env () = Sys.getenv_opt "CISP_FIXTURE"
let table_order tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
let pure x = x + 1
