let scale a b = a *. b
let speed ~v = v
