(* L12: polymorphic compare/hash where a monomorphic comparison
   exists. *)

(* the classic: a first-class [compare] instantiated at float *)
let sort_floats (xs : float list) = List.sort compare xs

(* generic hash walking a float-bearing tuple *)
let hash_pair (p : float * int) = Hashtbl.hash p

(* float-keyed table: every probe hashes and compares structurally *)
let float_key (tbl : (float, int) Hashtbl.t) k = Hashtbl.find_opt tbl k

(* direct application at a float-bearing aggregate *)
let cmp_pairs (a : float * float) b = compare a b

(* monomorphic comparator: not flagged *)
let ok_ints (xs : int list) = List.sort Int.compare xs
