(* L7: closures handed to the pool must not mutate shared state. *)
let total = ref 0

let direct pool =
  Cisp_util.Pool.parallel_for pool ~n:8 (fun i -> total := !total + i)

let indirect pool =
  Cisp_util.Pool.parallel_for pool ~n:8 (fun i -> Bad_l7_helper.record i)

let captured pool =
  let acc = ref 0 in
  Cisp_util.Pool.parallel_for pool ~n:8 (fun i -> acc := !acc + i);
  !acc

let clean pool arr =
  Cisp_util.Pool.parallel_map_array pool (fun x -> (x * 2 : int)) arr
