(* L13: lock-order violations.  Two globals acquired in both orders
   form a cycle in the acquisition graph; [self_deadlock] re-enters a
   lock it already holds.  [nested_ok] nests consistently and must
   stay silent. *)

let lock_a = Mutex.create ()
let lock_b = Mutex.create ()

(* a before b ... *)
let ab () =
  Mutex.protect lock_a (fun () -> Mutex.protect lock_b (fun () -> ()))

(* ... and b before a: either edge closes the cycle *)
let ba () =
  Mutex.protect lock_b (fun () -> Mutex.protect lock_a (fun () -> ()))

(* re-acquiring a held lock deadlocks (OCaml mutexes are not
   recursive) *)
let self_deadlock () =
  Mutex.protect lock_a (fun () -> Mutex.lock lock_a)

let lock_c = Mutex.create ()

(* one-way nesting only: acyclic, so no L13 cycle finding (L14 still
   notes the nested acquisition, and a canonical order listing c
   before a turns this edge into an order contradiction) *)
let nested_ok () =
  Mutex.protect lock_a (fun () -> Mutex.protect lock_c (fun () -> ()))
