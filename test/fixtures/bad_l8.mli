val lookup : (string * int) list -> string -> int
val boom : unit -> int
val checked : int -> int
val caught : (string * int) list -> string -> int
