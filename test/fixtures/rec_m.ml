(* Call-graph shape fixture: mutually recursive modules and a
   let-rec cycle, exercised by the fixpoint tests. *)
module rec Even : sig
  val check : int -> bool
end = struct
  let check n = if n = 0 then true else Odd.check (n - 1)
end

and Odd : sig
  val check : int -> bool
end = struct
  let check n = if n = 0 then failwith "odd zero" else Even.check (n - 1)
end

let rec ping n = if n <= 0 then 0 else pong (n - 1)
and pong n = if n <= 0 then 1 else ping (n - 1)
