(* L10: zero-alloc contracts, attribute and registry flavours. *)

(* direct violation: the tuple result boxes both floats *)
let[@cisp.zero_alloc] pair x y = (x +. y, x -. y)

(* the violation originates in the helper unit: blame lands there *)
let[@cisp.zero_alloc] deep a b = Bad_l10_helper.boxed a b

(* honest contract: register float math only *)
let[@cisp.zero_alloc] clean x y = (x *. y) +. 1.0

(* no attribute here; the tests contract it via the hotpaths registry *)
let registry_entry x = [ x; x + 1 ]

(* [@cisp.alloc_ok] stops allocation evidence at a justified cold path *)
let[@cisp.alloc_ok "cold: error formatting"] cold x = string_of_int x
let[@cisp.zero_alloc] damped x = String.length (cold x)
