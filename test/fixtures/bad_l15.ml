(* L15: float accumulation over unordered containers.  Hashtbl
   iteration order depends on hash seeding and insertion history, so
   summing floats out of one is not reproducible; merging per-domain
   float results via bare Domain.join inherits scheduling order.
   [ok_ints] folds ints — order-sensitive only for floats — and must
   stay silent. *)

(* float sum straight out of Hashtbl.fold *)
let sum_table (tbl : (string, float) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> acc +. v) tbl 0.0

(* same accumulation spelled with iter into a ref *)
let iter_acc (tbl : (string, float) Hashtbl.t) =
  let acc = ref 0.0 in
  Hashtbl.iter (fun _ v -> acc := !acc +. v) tbl;
  !acc

(* merging domain results in completion order *)
let join_merge (ds : float Domain.t list) =
  List.fold_left (fun acc d -> acc +. Domain.join d) 0.0 ds

(* integer folds are order-insensitive *)
let ok_ints (tbl : (string, int) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
