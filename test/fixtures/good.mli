(* Clean fixture: every rule holds. *)

val distance_km : a_km:float -> b_km:float -> float
(* Unit-suffixed labels. *)

val latency_ms : float -> float
(* A single bare float may ride on the function name's unit suffix. *)

val nth_or_zero : int list -> int -> int
