(* Callee unit for bad_l10's cross-module blame-at-origin case. *)
let boxed a b = Some (a +. b)
