let () =
  Alcotest.run "cisp"
    (List.concat
       [
         Test_util.suites;
         Test_telemetry.suites;
         Test_pool.suites;
         Test_geo.suites;
         Test_terrain.suites;
         Test_rf.suites;
         Test_graph.suites;
         Test_query.suites;
         Test_lp.suites;
         Test_data.suites;
         Test_towers.suites;
         Test_fiber.suites;
         Test_traffic.suites;
         Test_design.suites;
         Test_sim.suites;
         Test_weather.suites;
         Test_apps.suites;
         Test_integration.suites;
         Test_determinism.suites;
         Test_orbit.suites;
         Test_lint.suites;
       ])
