(* The lint pass (lib/lint) against the seeded fixtures in
   test/fixtures: every rule L1-L5 must fire on its bad_l*.ml at the
   expected file:line, and must stay silent on good.ml/good.mli. *)

module Diag = Cisp_linter.Diag
module Allowlist = Cisp_linter.Allowlist
module Engine = Cisp_linter.Engine
module Rules = Cisp_linter.Rules

(* Under `dune runtest` the cwd is _build/default/test, under
   `dune exec` it is wherever the user ran it from; find the fixture
   tree (and its .objs directory full of .cmt files) from either. *)
let fixtures_root =
  let candidates =
    [ "fixtures"; "_build/default/test/fixtures"; "test/fixtures" ]
  in
  let is_dir p = Sys.file_exists p && Sys.is_directory p in
  match List.find_opt is_dir candidates with
  | Some p -> p
  | None -> "fixtures"

let report =
  lazy (Engine.run ~rules:Diag.all_rules [ fixtures_root ])

let diags () = (Lazy.force report).Engine.diagnostics

let in_file file (d : Diag.t) = String.equal (Filename.basename d.file) file

let count ~rule ~file =
  List.length (List.filter (fun (d : Diag.t) -> d.rule = rule && in_file file d) (diags ()))

let check_hit ~rule ~file ~line =
  let hit =
    List.exists
      (fun (d : Diag.t) -> d.rule = rule && in_file file d && d.line = line)
      (diags ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires at %s:%d" (Diag.rule_id rule) file line)
    true hit

let test_loader () =
  let r = Lazy.force report in
  Alcotest.(check bool) "decodes the fixture units" true (r.Engine.units_checked >= 8);
  Alcotest.(check (list string)) "no decode errors" [] r.Engine.errors

let test_l1_positive () =
  check_hit ~rule:Diag.L1 ~file:"bad_l1.ml" ~line:2;
  check_hit ~rule:Diag.L1 ~file:"bad_l1.ml" ~line:3

let test_l1_negative () =
  (* compare at int (line 6) must not fire; exactly the two seeded hits. *)
  Alcotest.(check int) "two L1 hits" 2 (count ~rule:Diag.L1 ~file:"bad_l1.ml")

let test_l2_positive () =
  List.iter (fun line -> check_hit ~rule:Diag.L2 ~file:"bad_l2.ml" ~line) [ 2; 3; 4; 5 ]

let test_l2_negative () =
  (* good.ml uses List.nth_opt / Option.value: total, silent. *)
  Alcotest.(check int) "no L2 in good.ml" 0 (count ~rule:Diag.L2 ~file:"good.ml")

let test_l3_positive () =
  List.iter (fun line -> check_hit ~rule:Diag.L3 ~file:"bad_l3.ml" ~line) [ 2; 3; 4 ]

let test_l3_negative () =
  (* the unprotected 42.75 literal must not fire *)
  Alcotest.(check int) "three L3 hits" 3 (count ~rule:Diag.L3 ~file:"bad_l3.ml")

let test_l4_positive () =
  (* `scale` has two unit-less floats, `speed` one unit-less label. *)
  check_hit ~rule:Diag.L4 ~file:"bad_l4.mli" ~line:2;
  check_hit ~rule:Diag.L4 ~file:"bad_l4.mli" ~line:3;
  Alcotest.(check int) "three L4 hits" 3 (count ~rule:Diag.L4 ~file:"bad_l4.mli")

let test_l4_negative () =
  (* unit-suffixed labels and name-suffix riding are accepted *)
  Alcotest.(check int) "no L4 in good.mli" 0 (count ~rule:Diag.L4 ~file:"good.mli")

let test_l5_positive () =
  check_hit ~rule:Diag.L5 ~file:"bad_l5.ml" ~line:2;
  check_hit ~rule:Diag.L5 ~file:"bad_l5.ml" ~line:3

let test_l5_negative () =
  Alcotest.(check int) "no L5 in good.ml" 0 (count ~rule:Diag.L5 ~file:"good.ml")

let test_l6_positive () =
  check_hit ~rule:Diag.L6 ~file:"bad_l6.ml" ~line:3;
  check_hit ~rule:Diag.L6 ~file:"bad_l6.ml" ~line:7

let test_l6_negative () =
  (* `assert false' (line 11) is the unreachable marker: exempt. *)
  Alcotest.(check int) "two L6 hits" 2 (count ~rule:Diag.L6 ~file:"bad_l6.ml")

let test_good_is_clean () =
  let bad = List.filter (fun d -> in_file "good.ml" d || in_file "good.mli" d) (diags ()) in
  Alcotest.(check (list string)) "good fixtures are clean" []
    (List.map Diag.to_string bad)

let test_symbols () =
  let sym rule file line =
    match
      List.find_opt
        (fun (d : Diag.t) -> d.rule = rule && in_file file d && d.line = line)
        (diags ())
    with
    | Some d -> d.Diag.symbol
    | None -> "<missing>"
  in
  Alcotest.(check string) "L1 symbol" "sort_by_distance" (sym Diag.L1 "bad_l1.ml" 2);
  Alcotest.(check string) "L5 symbol" "shout" (sym Diag.L5 "bad_l5.ml" 2);
  Alcotest.(check string) "L4 symbol" "scale" (sym Diag.L4 "bad_l4.mli" 2)

let test_diag_format () =
  match List.find_opt (fun d -> in_file "bad_l2.ml" d) (diags ()) with
  | None -> Alcotest.fail "expected a bad_l2.ml diagnostic"
  | Some d ->
      let s = Diag.to_string d in
      let has_sub sub =
        let ls = String.length s and lu = String.length sub in
        let rec at i = i + lu <= ls && (String.equal (String.sub s i lu) sub || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "has file:line" true (has_sub "bad_l2.ml:2:");
      Alcotest.(check bool) "has rule tag" true (has_sub "[L2]")

let parse_allowlist text =
  match Allowlist.parse ~file:"<test>" text with
  | Ok t -> t
  | Error e -> Alcotest.fail e

let test_allowlist_wildcard () =
  let allowlist = parse_allowlist "L2 bad_l2.ml *  # suppress the whole file\n" in
  let r = Engine.run ~allowlist ~rules:Diag.all_rules [ fixtures_root ] in
  let l2 =
    List.filter (fun (d : Diag.t) -> d.rule = Diag.L2) r.Engine.diagnostics
  in
  Alcotest.(check int) "L2 suppressed" 0 (List.length l2);
  Alcotest.(check int) "four suppressions recorded" 4 (List.length r.Engine.suppressed);
  Alcotest.(check bool) "other rules still fire" true (r.Engine.diagnostics <> [])

let test_allowlist_symbol () =
  let allowlist = parse_allowlist "L5 bad_l5.ml shout  # only this value\n" in
  let r = Engine.run ~allowlist ~rules:Diag.all_rules [ fixtures_root ] in
  let l5 =
    List.filter (fun (d : Diag.t) -> d.rule = Diag.L5) r.Engine.diagnostics
  in
  Alcotest.(check int) "one L5 left" 1 (List.length l5);
  Alcotest.(check int) "one suppression" 1 (List.length r.Engine.suppressed)

let test_allowlist_reject () =
  match Allowlist.parse ~file:"<test>" "LX foo.ml *\n" with
  | Ok _ -> Alcotest.fail "expected a parse error for rule LX"
  | Error _ -> ()

let test_exit_codes () =
  Alcotest.(check int) "violations exit 1" 1 (Engine.exit_code (Lazy.force report));
  Alcotest.(check int) "clean exit 0" 0 (Engine.exit_code Engine.empty_report)

let test_vocabulary () =
  let yes = [ "distance_km"; "rain_mm_h"; "bearing_deg"; "coding_rate"; "lat" ] in
  let no = [ "value"; "interpolate"; "x" ] in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " carries a unit") true (Rules.carries_unit n))
    yes;
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " carries no unit") false (Rules.carries_unit n))
    no

let test_protected_constants () =
  let protected x = Option.is_some (Rules.protected_constant x) in
  Alcotest.(check bool) "c is protected" true (protected 299792.458);
  Alcotest.(check bool) "earth radius is protected" true (protected 6371.0);
  Alcotest.(check bool) "1.5 is protected" true (protected 1.5);
  Alcotest.(check bool) "other literals pass" false (protected 300000.0);
  Alcotest.(check bool) "units.ml is exempt" true (Rules.is_units_source "lib/util/units.ml")

(* ---------------- interprocedural: L7-L9 ---------------- *)

module Callgraph = Cisp_linter.Callgraph
module Summary = Cisp_linter.Summary
module Effects = Cisp_linter.Effects
module Loader = Cisp_linter.Loader
module Hotpaths = Cisp_linter.Hotpaths

let contains s sub =
  let ls = String.length s and lu = String.length sub in
  let rec at i =
    i + lu <= ls && (String.equal (String.sub s i lu) sub || at (i + 1))
  in
  at 0

let message ~rule ~file ~line =
  match
    List.find_opt
      (fun (d : Diag.t) -> d.rule = rule && in_file file d && d.line = line)
      (diags ())
  with
  | Some d -> d.Diag.message
  | None -> "<missing>"

let test_l7_positive () =
  (* direct global, cross-module global, captured local *)
  check_hit ~rule:Diag.L7 ~file:"bad_l7.ml" ~line:5;
  check_hit ~rule:Diag.L7 ~file:"bad_l7.ml" ~line:8;
  check_hit ~rule:Diag.L7 ~file:"bad_l7.ml" ~line:12;
  (* the indirect case must name the helper's state and its write
     site: one level of cross-module indirection *)
  let m = message ~rule:Diag.L7 ~file:"bad_l7.ml" ~line:8 in
  Alcotest.(check bool) "names the helper ref" true
    (contains m "Bad_l7_helper.hits");
  Alcotest.(check bool) "points at the write site" true
    (contains m "bad_l7_helper.ml:3");
  let m' = message ~rule:Diag.L7 ~file:"bad_l7.ml" ~line:12 in
  Alcotest.(check bool) "captured local named" true (contains m' "acc")

let test_l7_negative () =
  Alcotest.(check int) "exactly the three seeded hits" 3
    (count ~rule:Diag.L7 ~file:"bad_l7.ml");
  Alcotest.(check int) "pure map closure is silent" 0
    (count ~rule:Diag.L7 ~file:"good.ml")

let test_l8_positive () =
  check_hit ~rule:Diag.L8 ~file:"bad_l8.ml" ~line:2;
  check_hit ~rule:Diag.L8 ~file:"bad_l8.ml" ~line:3;
  Alcotest.(check bool) "names the escaping exception" true
    (contains (message ~rule:Diag.L8 ~file:"bad_l8.ml" ~line:2) "Not_found")

let test_l8_negative () =
  (* [checked] raises Invalid_argument (the sanctioned convention) and
     [caught] handles its Not_found: both silent *)
  Alcotest.(check int) "two L8 hits" 2 (count ~rule:Diag.L8 ~file:"bad_l8.ml");
  (* bad_l2.ml has no interface, so nothing there is public *)
  Alcotest.(check int) "no-mli unit is exempt" 0
    (count ~rule:Diag.L8 ~file:"bad_l2.ml")

let test_l9_positive () =
  List.iter
    (fun line -> check_hit ~rule:Diag.L9 ~file:"bad_l9.ml" ~line)
    [ 2; 3; 4; 5 ]

let test_l9_negative () =
  Alcotest.(check int) "four L9 hits" 4 (count ~rule:Diag.L9 ~file:"bad_l9.ml");
  Alcotest.(check int) "no L9 in good.ml" 0 (count ~rule:Diag.L9 ~file:"good.ml")

let graph_and_sums =
  lazy
    (let units, _errors = Loader.load_roots [ fixtures_root ] in
     let g = Callgraph.build units in
     (g, Summary.compute g))

let node_exn g name =
  match Callgraph.find g name with
  | Some n -> n
  | None -> Alcotest.fail ("missing call-graph node " ^ name)

let calls (a : Callgraph.node) (b : Callgraph.node) =
  List.exists
    (fun (e : Callgraph.edge) ->
      e.Callgraph.callee = Callgraph.Internal b.Callgraph.id)
    a.Callgraph.edges

let test_callgraph_recursive () =
  let g, _ = Lazy.force graph_and_sums in
  (* mutually recursive modules: sibling references resolve *)
  let even = node_exn g "Lint_fixtures.Rec_m.Even.check" in
  let odd = node_exn g "Lint_fixtures.Rec_m.Odd.check" in
  Alcotest.(check bool) "Even.check -> Odd.check" true (calls even odd);
  Alcotest.(check bool) "Odd.check -> Even.check" true (calls odd even);
  (* and a plain let-rec cycle *)
  let ping = node_exn g "Lint_fixtures.Rec_m.ping" in
  let pong = node_exn g "Lint_fixtures.Rec_m.pong" in
  Alcotest.(check bool) "ping -> pong" true (calls ping pong);
  Alcotest.(check bool) "pong -> ping" true (calls pong ping)

let test_fixpoint_convergence () =
  let g, r = Lazy.force graph_and_sums in
  (* the cyclic graph converged (compute returned) and needed more
     than the initial sweep to do it *)
  Alcotest.(check bool) "second sweep required" true (r.Summary.rounds >= 2);
  (* Odd.check's failwith propagates around the module cycle *)
  let even = node_exn g "Lint_fixtures.Rec_m.Even.check" in
  Alcotest.(check bool) "Failure reaches Even.check" true
    (Effects.SM.mem "Failure"
       r.Summary.summaries.(even.Callgraph.id).Effects.raises)

(* ---------------- allocation discipline: L10-L12 ---------------- *)

let test_l10_positive () =
  (* direct violation: the tuple in [pair] boxes both floats *)
  check_hit ~rule:Diag.L10 ~file:"bad_l10.ml" ~line:4;
  (* blame-at-origin: [deep]'s violation lands in the helper unit *)
  check_hit ~rule:Diag.L10 ~file:"bad_l10_helper.ml" ~line:2;
  let m = message ~rule:Diag.L10 ~file:"bad_l10_helper.ml" ~line:2 in
  Alcotest.(check bool) "contract holder named at the origin" true
    (contains m "Bad_l10.deep")

let test_l10_negative () =
  (* [clean] holds its contract, [damped]'s callee is [@cisp.alloc_ok],
     and [registry_entry] is unflagged without the registry: only the
     two kinds at [pair]'s line remain *)
  Alcotest.(check int) "two L10 hits in bad_l10.ml" 2
    (count ~rule:Diag.L10 ~file:"bad_l10.ml");
  Alcotest.(check int) "two L10 hits at the helper origin" 2
    (count ~rule:Diag.L10 ~file:"bad_l10_helper.ml");
  Alcotest.(check int) "no L10 in good.ml" 0 (count ~rule:Diag.L10 ~file:"good.ml")

let test_l10_registry () =
  let r =
    Engine.run
      ~hotpaths:[ "Lint_fixtures.Bad_l10.registry_entry" ]
      ~rules:Diag.all_rules [ fixtures_root ]
  in
  let hits =
    List.filter
      (fun (d : Diag.t) ->
        d.rule = Diag.L10 && in_file "bad_l10.ml" d && d.line = 13)
      r.Engine.diagnostics
  in
  Alcotest.(check bool) "registry contracts fire without an attribute" true
    (hits <> []);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check bool) "names the registered entry" true
        (contains d.Diag.message "registry_entry"))
    hits

let test_hotpaths_parse () =
  (match
     Hotpaths.parse_string
       "# registry header\nCisp_rf.Los.check  # LOS walk\n\nCisp_geo.Geodesy.distance_km\n"
   with
  | Error e -> Alcotest.fail e
  | Ok entries -> (
      Alcotest.(check (list string))
        "names in file order"
        [ "Cisp_rf.Los.check"; "Cisp_geo.Geodesy.distance_km" ]
        (Hotpaths.names entries);
      match entries with
      | e :: _ ->
          Alcotest.(check int) "line tracked" 2 e.Hotpaths.line;
          Alcotest.(check string) "reason tracked" "LOS walk" e.Hotpaths.reason
      | [] -> Alcotest.fail "no entries"));
  match Hotpaths.parse_string "Cisp_rf.Los.check extra_token\n" with
  | Ok _ -> Alcotest.fail "expected a parse error for two tokens"
  | Error e -> Alcotest.(check bool) "error cites the line" true (contains e ":1:")

let test_l11_positive () =
  check_hit ~rule:Diag.L11 ~file:"bad_l11.ml" ~line:7;
  check_hit ~rule:Diag.L11 ~file:"bad_l11.ml" ~line:13;
  let m = message ~rule:Diag.L11 ~file:"bad_l11.ml" ~line:7 in
  Alcotest.(check bool) "names the kind and the allocation site" true
    (contains m "closure at" && contains m "bad_l11.ml:8")

let test_l11_negative () =
  (* [clean]'s scalar worker is silent; bad_l7's int workers mutate
     but never allocate, so L7 and L11 partition cleanly *)
  Alcotest.(check int) "two L11 hits" 2 (count ~rule:Diag.L11 ~file:"bad_l11.ml");
  Alcotest.(check int) "no L11 in bad_l7.ml" 0 (count ~rule:Diag.L11 ~file:"bad_l7.ml");
  Alcotest.(check int) "no L11 in good.ml" 0 (count ~rule:Diag.L11 ~file:"good.ml")

let test_l12_positive () =
  List.iter
    (fun line -> check_hit ~rule:Diag.L12 ~file:"bad_l12.ml" ~line)
    [ 5; 8; 11; 14 ]

let test_l12_negative () =
  (* [ok_ints] uses Int.compare: silent *)
  Alcotest.(check int) "four L12 hits" 4 (count ~rule:Diag.L12 ~file:"bad_l12.ml");
  Alcotest.(check int) "no L12 in good.ml" 0 (count ~rule:Diag.L12 ~file:"good.ml")

let test_alloc_summaries () =
  let g, r = Lazy.force graph_and_sums in
  (* interprocedural propagation keeps the origin site: the helper's
     allocation appears in [deep]'s summary with its own file *)
  let deep = node_exn g "Lint_fixtures.Bad_l10.deep" in
  (match
     Effects.SM.find_opt "boxed float"
       r.Summary.summaries.(deep.Callgraph.id).Effects.allocs
   with
  | Some site ->
      Alcotest.(check bool) "witness is the helper's site" true
        (contains site.Effects.file "bad_l10_helper.ml")
  | None -> Alcotest.fail "boxed float missing from deep's summary");
  (* [@cisp.alloc_ok] damping stops the evidence at the cold path *)
  let damped = node_exn g "Lint_fixtures.Bad_l10.damped" in
  Alcotest.(check bool) "alloc_ok damps the callee's evidence" true
    (Effects.SM.is_empty
       r.Summary.summaries.(damped.Callgraph.id).Effects.allocs);
  let clean = node_exn g "Lint_fixtures.Bad_l10.clean" in
  Alcotest.(check bool) "register float math is allocation-free" true
    (Effects.SM.is_empty r.Summary.summaries.(clean.Callgraph.id).Effects.allocs)

let test_alloc_allowlist_and_json () =
  let allowlist =
    parse_allowlist "L10 bad_l10.ml pair  # fixture\nL11 bad_l11.ml *  # fixture\n"
  in
  let r = Engine.run ~allowlist ~rules:Diag.all_rules [ fixtures_root ] in
  let left rule file =
    List.length
      (List.filter
         (fun (d : Diag.t) -> d.rule = rule && in_file file d)
         r.Engine.diagnostics)
  in
  Alcotest.(check int) "L10 pair suppressed" 0 (left Diag.L10 "bad_l10.ml");
  Alcotest.(check int) "helper origin not covered by the entry" 2
    (left Diag.L10 "bad_l10_helper.ml");
  Alcotest.(check int) "L11 wildcard suppressed" 0 (left Diag.L11 "bad_l11.ml");
  Alcotest.(check bool) "both entries matched something" true (r.Engine.stale = []);
  match
    List.find_opt (fun (d : Diag.t) -> d.rule = Diag.L12) r.Engine.diagnostics
  with
  | None -> Alcotest.fail "expected an L12 diagnostic"
  | Some d ->
      Alcotest.(check bool) "JSON carries the new rule tag" true
        (contains (Diag.to_json d) {|"rule":"L12"|})

let test_ordering_stable () =
  let strings (r : Engine.report) = List.map Diag.to_string r.Engine.diagnostics in
  let r1 = Engine.run ~rules:Diag.all_rules [ fixtures_root ] in
  let r2 = Engine.run ~rules:Diag.all_rules [ fixtures_root ] in
  Alcotest.(check (list string)) "two runs byte-identical" (strings r1) (strings r2);
  Alcotest.(check (list string)) "sorted by (file, line, col, rule)"
    (List.map Diag.to_string (List.sort Diag.order r1.Engine.diagnostics))
    (strings r1)

let test_json_format () =
  let d =
    Diag.make ~rule:Diag.L9 ~symbol:"f" ~message:"says \"hi\"\there"
      (Effects.loc_of_site { Effects.file = "a.ml"; line = 3; col = 7 })
  in
  Alcotest.(check string) "escaped single-line object"
    {|{"file":"a.ml","line":3,"col":7,"rule":"L9","symbol":"f","message":"says \"hi\"\there"}|}
    (Diag.to_json d)

let test_allowlist_stale () =
  let allowlist =
    parse_allowlist "L2 bad_l2.ml *  # live\nL5 no_such_file.ml *  # stale\n"
  in
  let r = Engine.run ~allowlist ~rules:Diag.all_rules [ fixtures_root ] in
  match r.Engine.stale with
  | [ e ] ->
      Alcotest.(check string) "stale file" "no_such_file.ml" e.Allowlist.file;
      Alcotest.(check int) "stale lineno" 2 e.Allowlist.lineno
  | l -> Alcotest.fail (Printf.sprintf "expected 1 stale entry, got %d" (List.length l))

let test_allowlist_prune () =
  let path = "cisp_lint_prune_test.allowlist" in
  let text =
    "# header comment\nL2 bad_l2.ml *  # live\n\nL5 no_such_file.ml *  # stale\n"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
  let allowlist =
    match Allowlist.load path with Ok t -> t | Error e -> Alcotest.fail e
  in
  let r = Engine.run ~allowlist ~rules:Diag.all_rules [ fixtures_root ] in
  (match Allowlist.prune ~path r.Engine.stale with
  | Ok n -> Alcotest.(check int) "one line pruned" 1 n
  | Error e -> Alcotest.fail e);
  let kept = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check string) "live entries and comments survive"
    "# header comment\nL2 bad_l2.ml *  # live\n\n" kept

(* ---------------- concurrency discipline: L13-L15 ---------------- *)

module Effect_rules = Cisp_linter.Effect_rules

let test_l13_positive () =
  (* both directions of the a/b cycle, plus the re-entrant acquisition *)
  List.iter
    (fun line -> check_hit ~rule:Diag.L13 ~file:"bad_l13.ml" ~line)
    [ 11; 15; 20 ];
  Alcotest.(check bool) "self-deadlock named" true
    (contains (message ~rule:Diag.L13 ~file:"bad_l13.ml" ~line:20) "self-deadlock");
  Alcotest.(check bool) "cycle named" true
    (contains (message ~rule:Diag.L13 ~file:"bad_l13.ml" ~line:11) "cycle")

let test_l13_negative () =
  (* [nested_ok]'s one-way nesting is acyclic: no L13 there *)
  Alcotest.(check int) "three L13 hits" 3 (count ~rule:Diag.L13 ~file:"bad_l13.ml");
  Alcotest.(check int) "single-lock unit has no L13" 0
    (count ~rule:Diag.L13 ~file:"bad_l14.ml")

let test_l13_canonical_order () =
  (* a canonical order listing c before a turns [nested_ok]'s acyclic
     a -> c edge into an order contradiction *)
  let units, _errors = Loader.load_roots [ fixtures_root ] in
  let cfg =
    {
      Effect_rules.generic with
      Effect_rules.l7 = false;
      l8 = false;
      l9 = false;
      l10 = false;
      l11 = false;
      l12 = false;
      l14 = false;
      l15 = false;
      l13_order =
        [ "Lint_fixtures.Bad_l13.lock_c"; "Lint_fixtures.Bad_l13.lock_a" ];
    }
  in
  let diags = Engine.run_pass units (Engine.Interprocedural cfg) in
  match
    List.filter (fun (d : Diag.t) -> contains d.Diag.message "contradicts") diags
  with
  | [ d ] ->
      Alcotest.(check string) "flagged in nested_ok" "nested_ok" d.Diag.symbol;
      Alcotest.(check bool) "cites the canonical-order doc" true
        (contains d.Diag.message "DESIGN.md")
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 order contradiction, got %d" (List.length l))

let test_l14_positive () =
  (* direct io x2, Domain.join, pool body, transitive *)
  List.iter
    (fun line -> check_hit ~rule:Diag.L14 ~file:"bad_l14.ml" ~line)
    [ 10; 11; 17; 23; 38 ];
  Alcotest.(check bool) "pool-body finding names the combinator" true
    (contains (message ~rule:Diag.L14 ~file:"bad_l14.ml" ~line:23)
       "Pool.parallel_for");
  Alcotest.(check bool) "transitive finding names the callee" true
    (contains (message ~rule:Diag.L14 ~file:"bad_l14.ml" ~line:38) "deep_block")

let test_l14_negative () =
  (* [ok_after_unlock] releases before blocking: exactly the five seeded *)
  Alcotest.(check int) "five L14 hits" 5 (count ~rule:Diag.L14 ~file:"bad_l14.ml");
  (* nested acquisition is itself blocking-under-lock, even when the
     nesting is order-consistent: the three protect pairs + nested_ok *)
  Alcotest.(check int) "four L14 hits in bad_l13.ml" 4
    (count ~rule:Diag.L14 ~file:"bad_l13.ml");
  Alcotest.(check int) "no L14 in good.ml" 0 (count ~rule:Diag.L14 ~file:"good.ml")

let test_l15_positive () =
  List.iter
    (fun line -> check_hit ~rule:Diag.L15 ~file:"bad_l15.ml" ~line)
    [ 10; 15; 20 ];
  Alcotest.(check bool) "suggests the sorted view" true
    (contains (message ~rule:Diag.L15 ~file:"bad_l15.ml" ~line:10) "Cisp_util.Tbl")

let test_l15_negative () =
  (* [ok_ints] folds ints: order-insensitive, silent *)
  Alcotest.(check int) "three L15 hits" 3 (count ~rule:Diag.L15 ~file:"bad_l15.ml");
  Alcotest.(check int) "no L15 in good.ml" 0 (count ~rule:Diag.L15 ~file:"good.ml")

let test_lock_graph () =
  let g, r = Lazy.force graph_and_sums in
  let edges = Effect_rules.lock_graph g r.Summary.summaries in
  let has from to_ =
    List.exists
      (fun (e : Effect_rules.lock_edge) ->
        String.equal e.Effect_rules.le_from from
        && String.equal e.Effect_rules.le_to to_)
      edges
  in
  Alcotest.(check bool) "a -> b" true
    (has "Lint_fixtures.Bad_l13.lock_a" "Lint_fixtures.Bad_l13.lock_b");
  Alcotest.(check bool) "b -> a" true
    (has "Lint_fixtures.Bad_l13.lock_b" "Lint_fixtures.Bad_l13.lock_a");
  Alcotest.(check bool) "a -> c" true
    (has "Lint_fixtures.Bad_l13.lock_a" "Lint_fixtures.Bad_l13.lock_c");
  let classes = Effect_rules.lock_classes g in
  Alcotest.(check bool) "vertex set contains every fixture lock" true
    (List.mem "Lint_fixtures.Bad_l13.lock_c" classes
    && List.mem "Lint_fixtures.Bad_l14.lock" classes);
  Alcotest.(check bool) "vertex set sorted" true
    (List.sort String.compare classes = classes);
  let dot = Effect_rules.lock_graph_dot g r.Summary.summaries in
  Alcotest.(check bool) "dot header" true (contains dot "digraph lock_order");
  Alcotest.(check bool) "dot edge rendered" true
    (contains dot
       "\"Lint_fixtures.Bad_l13.lock_a\" -> \"Lint_fixtures.Bad_l13.lock_b\"")

let test_witness_json () =
  match
    List.find_opt
      (fun (d : Diag.t) ->
        d.rule = Diag.L14 && in_file "bad_l14.ml" d && d.line = 38)
      (diags ())
  with
  | None -> Alcotest.fail "expected the transitive L14 diagnostic"
  | Some d ->
      let j = Diag.to_json d in
      Alcotest.(check bool) "witness array present" true
        (contains j {|"witness":["|});
      Alcotest.(check bool) "chain step carries callee and site" true
        (contains j "Lint_fixtures.Bad_l14.deep_block (")
      ;
      Alcotest.(check bool) "chain step cites the definition line" true
        (contains j "bad_l14.ml:35)")

let test_block_summaries () =
  let g, r = Lazy.force graph_and_sums in
  (* blocking propagates caller-ward: [via] inherits its callee's io *)
  let via = node_exn g "Lint_fixtures.Bad_l14.via" in
  Alcotest.(check bool) "io reaches via's summary" true
    (Effects.SM.mem "io" r.Summary.summaries.(via.Callgraph.id).Effects.blocks);
  (* ...but not across the scheduling boundary: a pool body's blocking
     never leaks into the submitter's own summary *)
  let lp = node_exn g "Lint_fixtures.Bad_l14.lock_in_pool" in
  Alcotest.(check bool) "pool-body blocking stays behind the boundary" true
    (not
       (Effects.SM.exists
          (fun k _ -> contains k "mutex acquisition")
          r.Summary.summaries.(lp.Callgraph.id).Effects.blocks))

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "loader decodes fixtures" `Quick test_loader;
        Alcotest.test_case "L1 positive" `Quick test_l1_positive;
        Alcotest.test_case "L1 negative" `Quick test_l1_negative;
        Alcotest.test_case "L2 positive" `Quick test_l2_positive;
        Alcotest.test_case "L2 negative" `Quick test_l2_negative;
        Alcotest.test_case "L3 positive" `Quick test_l3_positive;
        Alcotest.test_case "L3 negative" `Quick test_l3_negative;
        Alcotest.test_case "L4 positive" `Quick test_l4_positive;
        Alcotest.test_case "L4 negative" `Quick test_l4_negative;
        Alcotest.test_case "L5 positive" `Quick test_l5_positive;
        Alcotest.test_case "L5 negative" `Quick test_l5_negative;
        Alcotest.test_case "L6 positive" `Quick test_l6_positive;
        Alcotest.test_case "L6 negative" `Quick test_l6_negative;
        Alcotest.test_case "good fixtures are clean" `Quick test_good_is_clean;
        Alcotest.test_case "symbols tracked" `Quick test_symbols;
        Alcotest.test_case "diagnostic format" `Quick test_diag_format;
      ] );
    ( "lint.allowlist",
      [
        Alcotest.test_case "wildcard entry" `Quick test_allowlist_wildcard;
        Alcotest.test_case "symbol entry" `Quick test_allowlist_symbol;
        Alcotest.test_case "bad entry rejected" `Quick test_allowlist_reject;
        Alcotest.test_case "exit codes" `Quick test_exit_codes;
      ] );
    ( "lint.effects",
      [
        Alcotest.test_case "L7 positive" `Quick test_l7_positive;
        Alcotest.test_case "L7 negative" `Quick test_l7_negative;
        Alcotest.test_case "L8 positive" `Quick test_l8_positive;
        Alcotest.test_case "L8 negative" `Quick test_l8_negative;
        Alcotest.test_case "L9 positive" `Quick test_l9_positive;
        Alcotest.test_case "L9 negative" `Quick test_l9_negative;
        Alcotest.test_case "recursive call graph" `Quick test_callgraph_recursive;
        Alcotest.test_case "fixpoint converges" `Quick test_fixpoint_convergence;
        Alcotest.test_case "stable ordering" `Quick test_ordering_stable;
        Alcotest.test_case "JSON output" `Quick test_json_format;
        Alcotest.test_case "stale allowlist entries" `Quick test_allowlist_stale;
        Alcotest.test_case "allowlist pruning" `Quick test_allowlist_prune;
      ] );
    ( "lint.alloc",
      [
        Alcotest.test_case "L10 positive" `Quick test_l10_positive;
        Alcotest.test_case "L10 negative" `Quick test_l10_negative;
        Alcotest.test_case "L10 hotpaths registry" `Quick test_l10_registry;
        Alcotest.test_case "hotpaths parsing" `Quick test_hotpaths_parse;
        Alcotest.test_case "L11 positive" `Quick test_l11_positive;
        Alcotest.test_case "L11 negative" `Quick test_l11_negative;
        Alcotest.test_case "L12 positive" `Quick test_l12_positive;
        Alcotest.test_case "L12 negative" `Quick test_l12_negative;
        Alcotest.test_case "allocation summaries" `Quick test_alloc_summaries;
        Alcotest.test_case "allowlist and JSON for L10-L12" `Quick
          test_alloc_allowlist_and_json;
      ] );
    ( "lint.concurrency",
      [
        Alcotest.test_case "L13 positive" `Quick test_l13_positive;
        Alcotest.test_case "L13 negative" `Quick test_l13_negative;
        Alcotest.test_case "L13 canonical order" `Quick test_l13_canonical_order;
        Alcotest.test_case "L14 positive" `Quick test_l14_positive;
        Alcotest.test_case "L14 negative" `Quick test_l14_negative;
        Alcotest.test_case "L15 positive" `Quick test_l15_positive;
        Alcotest.test_case "L15 negative" `Quick test_l15_negative;
        Alcotest.test_case "lock graph" `Quick test_lock_graph;
        Alcotest.test_case "witness JSON" `Quick test_witness_json;
        Alcotest.test_case "blocking summaries" `Quick test_block_summaries;
      ] );
    ( "lint.vocabulary",
      [
        Alcotest.test_case "unit vocabulary" `Quick test_vocabulary;
        Alcotest.test_case "protected constants" `Quick test_protected_constants;
      ] );
  ]
