open Cisp_weather

let check_float eps = Alcotest.(check (float eps))
let coord = Cisp_geo.Coord.make

(* ---------- Rainfield ---------- *)

let test_field_deterministic () =
  let a = Rainfield.sample Rainfield.us_climate ~day:100 in
  let b = Rainfield.sample Rainfield.us_climate ~day:100 in
  let p = coord ~lat:35.0 ~lon:(-90.0) in
  check_float 0.0 "same day same rain" (Rainfield.rain_at a p) (Rainfield.rain_at b p)

let test_field_day_variation () =
  let p = coord ~lat:33.0 ~lon:(-88.0) in
  let rains = List.init 60 (fun d -> Rainfield.rain_at (Rainfield.sample Rainfield.us_climate ~day:d) p) in
  Alcotest.(check bool) "some dry, some wet" true
    (List.exists (fun r -> r < 0.1) rains && List.exists (fun r -> r > 1.0) rains)

let test_rain_nonnegative_and_decay () =
  let f = Rainfield.sample Rainfield.us_climate ~day:10 in
  let rng = Cisp_util.Rng.create 3 in
  for _ = 1 to 200 do
    let p =
      coord
        ~lat:(Cisp_util.Rng.uniform rng 25.0 49.0)
        ~lon:(Cisp_util.Rng.uniform rng (-125.0) (-66.0))
    in
    Alcotest.(check bool) "nonnegative" true (Rainfield.rain_at f p >= 0.0)
  done;
  (* Rain decays away from a storm center. *)
  match f.Rainfield.storms with
  | [] -> () (* possible on a calm day; nothing to check *)
  | s :: _ ->
    let near = Rainfield.rain_at { f with Rainfield.storms = [ s ] } s.Rainfield.center in
    let far_p =
      Cisp_geo.Geodesy.destination s.Rainfield.center ~bearing_deg:0.0
        ~distance_km:(s.Rainfield.radius_km *. 4.0)
    in
    let far = Rainfield.rain_at { f with Rainfield.storms = [ s ] } far_p in
    Alcotest.(check bool) "decays with distance" true (far < near)

let test_hurricane_intense () =
  let c = coord ~lat:40.0 ~lon:(-74.0) in
  let h = Rainfield.hurricane ~center:c in
  Alcotest.(check bool) "core rain heavy" true (Rainfield.rain_at h c > 80.0)

(* ---------- Failure ---------- *)

let test_hop_margin_band () =
  let m = Failure.hop_margin_db ~d_km:60.0 () in
  Alcotest.(check bool) "within [10, 38]" true (m >= 10.0 && m <= 38.0);
  Alcotest.(check bool) "longer hops have less margin" true
    (Failure.hop_margin_db ~d_km:90.0 () <= Failure.hop_margin_db ~d_km:40.0 ())

let test_hop_failure_threshold () =
  Alcotest.(check bool) "dry hop survives" false (Failure.hop_failed ~rain_mm_h:0.0 ~d_km:60.0 ());
  Alcotest.(check bool) "deluge kills hop" true (Failure.hop_failed ~rain_mm_h:200.0 ~d_km:60.0 ());
  (* Monotone in rain. *)
  let failed_at r = Failure.hop_failed ~rain_mm_h:r ~d_km:80.0 () in
  let rec first_failure r = if r > 500.0 then r else if failed_at r then r else first_failure (r +. 5.0) in
  let threshold = first_failure 5.0 in
  Alcotest.(check bool) "threshold exists" true (threshold < 500.0);
  Alcotest.(check bool) "below threshold ok" false (failed_at (threshold -. 5.0))

let test_loss_probability_shape () =
  let p r = Failure.hop_loss_probability ~rain_mm_h:r ~d_km:60.0 () in
  Alcotest.(check bool) "floor when dry" true (p 0.0 < 0.005);
  Alcotest.(check bool) "saturates" true (p 300.0 > 0.95);
  Alcotest.(check bool) "monotone" true (p 10.0 <= p 50.0 && p 50.0 <= p 150.0)

(* ---------- Year sweep (synthetic inputs) ---------- *)

let year_fixture () =
  let sites =
    Array.init 5 (fun i ->
        let c =
          Cisp_geo.Geodesy.destination
            (coord ~lat:33.0 ~lon:(-88.0))
            ~bearing_deg:(float_of_int i *. 72.0) ~distance_km:300.0
        in
        Cisp_data.City.make (Printf.sprintf "W%d" i) ~lat:(Cisp_geo.Coord.lat c)
          ~lon:(Cisp_geo.Coord.lon c) ~population:((i + 1) * 200_000))
  in
  let inputs =
    Cisp_design.Inputs.synthetic ~sites ~mw_stretch:1.03 ~mw_cost_per_km:0.02
      ~fiber_stretch:1.9
      ~traffic:(Cisp_traffic.Matrix.population_product sites)
  in
  let topo = Cisp_design.Greedy.design inputs ~budget:60 in
  (inputs, topo)

(* A hops structure is needed for positions; reuse the towers fixture
   approach with a flat DEM. *)
let dem = Cisp_terrain.Dem.create ~seed:5 Cisp_terrain.Dem.Flat
let cache = Cisp_terrain.Dem_cache.create dem

let hops_fixture sites =
  let towers = Cisp_towers.Culling.apply (Cisp_towers.Synth.generate ~dem ~sites ()) in
  Cisp_towers.Hops.build ~cache ~sites ~towers ()

let test_year_bounds () =
  let inputs, topo = year_fixture () in
  let hops = hops_fixture (Array.to_list inputs.Cisp_design.Inputs.sites) in
  let r = Year.run ~intervals:20 ~climate:Rainfield.us_climate ~hops inputs topo in
  Alcotest.(check int) "intervals" 20 r.Year.intervals;
  Array.iter
    (fun p ->
      Alcotest.(check bool) "best <= median" true (p.Year.best <= p.Year.median +. 1e-9);
      Alcotest.(check bool) "median <= p99" true (p.Year.median <= p.Year.p99 +. 1e-9);
      Alcotest.(check bool) "p99 <= worst" true (p.Year.p99 <= p.Year.worst +. 1e-9);
      Alcotest.(check bool) "worst <= fiber" true (p.Year.worst <= p.Year.fiber +. 1e-9);
      Alcotest.(check bool) "best >= 1" true (p.Year.best >= 1.0 -. 1e-9))
    r.Year.per_pair

let test_year_cdfs_shape () =
  let inputs, topo = year_fixture () in
  let hops = hops_fixture (Array.to_list inputs.Cisp_design.Inputs.sites) in
  let r = Year.run ~intervals:10 ~climate:Rainfield.us_climate ~hops inputs topo in
  let cdfs = Year.stretch_cdfs r in
  Alcotest.(check int) "five curves" 5 (List.length cdfs);
  List.iter
    (fun (_, cdf) ->
      Alcotest.(check int) "one point per pair" (Array.length r.Year.per_pair) (Array.length cdf))
    cdfs

(* ---------- HFT relay ---------- *)

let test_hft_shape () =
  let r = Hft.run ~minutes:2743 () in
  Alcotest.(check int) "minutes" 2743 (Array.length r.Hft.loss_series);
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f >> median %.3f (hurricane-driven)" r.Hft.mean_loss r.Hft.median_loss)
    true
    (r.Hft.mean_loss > 3.0 *. r.Hft.median_loss);
  Alcotest.(check bool) "median small" true (r.Hft.median_loss < 0.05);
  Alcotest.(check bool) "mean substantial" true (r.Hft.mean_loss > 0.05);
  Array.iter
    (fun l -> Alcotest.(check bool) "loss in [0,1]" true (l >= 0.0 && l <= 1.0))
    r.Hft.loss_series

(* ---------- zero-length hops (degenerate co-located endpoints) ---------- *)

let test_zero_hop_link_cannot_fail () =
  (* Both endpoints at the hurricane eye: without the zero-length
     guard the undefined midpoint would sample 100+ mm/h over a
     "hop" of no length and kill the link. *)
  let p = coord ~lat:40.0 ~lon:(-74.0) in
  let link =
    { Cisp_towers.Hops.src = 0; dst = 1; distance_km = 0.0; geodesic_km = 0.0;
      node_path = [ 0; 1 ]; tower_count = 0 }
  in
  let field = Rainfield.hurricane ~center:p in
  Alcotest.(check bool) "zero-length hop cannot fail" false
    (Failure.link_failed ~node_position:(fun _ -> p) field link)

let test_zero_hop_does_not_shadow_real_hops () =
  (* A real 80 km hop whose midpoint sits on the eye, followed by a
     degenerate zero-length hop: the guard must skip only the latter. *)
  let p = coord ~lat:40.0 ~lon:(-74.0) in
  let a = Cisp_geo.Geodesy.destination p ~bearing_deg:270.0 ~distance_km:40.0 in
  let b = Cisp_geo.Geodesy.destination p ~bearing_deg:90.0 ~distance_km:40.0 in
  let link =
    { Cisp_towers.Hops.src = 0; dst = 1; distance_km = 80.0; geodesic_km = 80.0;
      node_path = [ 0; 2; 1 ]; tower_count = 1 }
  in
  let node_position n = if n = 0 then a else b in
  let field = Rainfield.hurricane ~center:p in
  Alcotest.(check bool) "wet real hop still fails" true
    (Failure.link_failed ~node_position field link)

(* ---------- failure-scenario engine ---------- *)

let scenario_fixture () =
  let inputs, topo = year_fixture () in
  let hops = hops_fixture (Array.to_list inputs.Cisp_design.Inputs.sites) in
  let model =
    { Cisp_sim.Routing.inputs; topology = topo; mw_gbps = (fun _ -> 10.0); fiber_gbps = 100.0 }
  in
  let demands =
    Cisp_traffic.Matrix.scale_to_gbps inputs.Cisp_design.Inputs.traffic ~aggregate_gbps:5.0
  in
  (hops, model, demands)

let test_scenarios_dry_full_availability () =
  let hops, model, demands = scenario_fixture () in
  let schemes = Scenarios.default_schemes ~k:2 in
  let r =
    Scenarios.run ~schemes ~hops ~model ~demands_gbps:demands
      (Scenarios.Uniform_rain { mm_h = 0.0 })
  in
  Alcotest.(check string) "name" "uniform-rain" r.Scenarios.name;
  Alcotest.(check int) "single interval" 1 r.Scenarios.intervals;
  check_float 1e-12 "dry: nothing fails" 0.0 r.Scenarios.mean_failed_links;
  Alcotest.(check int) "one summary per scheme" 3 (List.length r.Scenarios.schemes);
  List.iter
    (fun s ->
      check_float 1e-12 (s.Scenarios.scheme ^ " fully available") 1.0 s.Scenarios.availability;
      Alcotest.(check bool) (s.Scenarios.scheme ^ " stretch >= 1") true
        (s.Scenarios.mean_stretch >= 1.0 -. 1e-9);
      Alcotest.(check bool) (s.Scenarios.scheme ^ " p99 >= mean order sane") true
        (s.Scenarios.worst_stretch >= s.Scenarios.p99_stretch -. 1e-9))
    r.Scenarios.schemes

let test_scenarios_deluge_recompute_rides_fiber () =
  let hops, model, demands = scenario_fixture () in
  let schemes = Scenarios.default_schemes ~k:3 in
  let dry =
    Scenarios.run ~schemes ~hops ~model ~demands_gbps:demands
      (Scenarios.Uniform_rain { mm_h = 0.0 })
  in
  let wet =
    Scenarios.run ~schemes ~hops ~model ~demands_gbps:demands
      (Scenarios.Uniform_rain { mm_h = 400.0 })
  in
  Alcotest.(check bool) "deluge kills links" true (wet.Scenarios.mean_failed_links > 0.0);
  let by_name r = List.map (fun s -> (s.Scenarios.scheme, s)) r.Scenarios.schemes in
  let recompute = List.assoc "shortest-recompute" (by_name wet) in
  let failover = List.assoc "failover-k3" (by_name wet) in
  (* Global recompute falls back to fiber: never unavailable, but the
     mean stretch degrades versus fair weather. *)
  check_float 1e-12 "recompute availability" 1.0 recompute.Scenarios.availability;
  let dry_recompute = List.assoc "shortest-recompute" (by_name dry) in
  Alcotest.(check bool) "recompute stretch degrades in the deluge" true
    (recompute.Scenarios.mean_stretch >= dry_recompute.Scenarios.mean_stretch -. 1e-9);
  (* Precomputed failover can do no better than global recompute. *)
  Alcotest.(check bool) "failover availability <= recompute" true
    (failover.Scenarios.availability <= recompute.Scenarios.availability +. 1e-12)

let test_scenarios_correlated_and_csv () =
  let hops, model, demands = scenario_fixture () in
  let schemes = Scenarios.default_schemes ~k:2 in
  let run spec = Scenarios.run ~schemes ~hops ~model ~demands_gbps:demands spec in
  let towers =
    run (Scenarios.Correlated_towers { blobs = 2; radius_km = 150.0; intervals = 5 })
  in
  let hurricane =
    run
      (Scenarios.Hurricane
         { center = model.Cisp_sim.Routing.inputs.Cisp_design.Inputs.sites.(0).Cisp_data.City.coord;
           track_bearing_deg = 90.0; step_km = 80.0; intervals = 5 })
  in
  Alcotest.(check int) "intervals" 5 towers.Scenarios.intervals;
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s availability in [0,1]" r.Scenarios.name s.Scenarios.scheme)
            true
            (s.Scenarios.availability >= 0.0 && s.Scenarios.availability <= 1.0))
        r.Scenarios.schemes)
    [ towers; hurricane ];
  let csv = Scenarios.frontier_csv [ towers; hurricane ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + one row per (scenario, scheme)" 7 (List.length lines);
  Alcotest.(check string) "header"
    "scenario,scheme,availability,mean_stretch,p99_stretch,worst_stretch,mean_failed_links"
    (List.hd lines)

let test_scenarios_validation () =
  let hops, model, demands = scenario_fixture () in
  let schemes = Scenarios.default_schemes ~k:2 in
  Alcotest.check_raises "zero intervals rejected"
    (Invalid_argument "Scenarios.run: intervals <= 0") (fun () ->
      ignore
        (Scenarios.run ~schemes ~hops ~model ~demands_gbps:demands
           (Scenarios.Rain_replay { climate = Rainfield.us_climate; intervals = 0 })));
  Alcotest.check_raises "empty scheme list rejected"
    (Invalid_argument "Scenarios.run: no schemes") (fun () ->
      ignore
        (Scenarios.run ~schemes:[] ~hops ~model ~demands_gbps:demands
           (Scenarios.Uniform_rain { mm_h = 0.0 })))

let suites =
  [
    ( "weather.rainfield",
      [
        Alcotest.test_case "deterministic" `Quick test_field_deterministic;
        Alcotest.test_case "day variation" `Quick test_field_day_variation;
        Alcotest.test_case "nonnegative and decay" `Quick test_rain_nonnegative_and_decay;
        Alcotest.test_case "hurricane" `Quick test_hurricane_intense;
      ] );
    ( "weather.failure",
      [
        Alcotest.test_case "margin band" `Quick test_hop_margin_band;
        Alcotest.test_case "failure threshold" `Quick test_hop_failure_threshold;
        Alcotest.test_case "loss probability" `Quick test_loss_probability_shape;
        Alcotest.test_case "zero-length hop cannot fail" `Quick test_zero_hop_link_cannot_fail;
        Alcotest.test_case "zero-length hop does not shadow" `Quick
          test_zero_hop_does_not_shadow_real_hops;
      ] );
    ( "weather.scenarios",
      [
        Alcotest.test_case "dry run fully available" `Slow test_scenarios_dry_full_availability;
        Alcotest.test_case "deluge rides fiber" `Slow test_scenarios_deluge_recompute_rides_fiber;
        Alcotest.test_case "correlated towers and csv" `Slow test_scenarios_correlated_and_csv;
        Alcotest.test_case "validation" `Quick test_scenarios_validation;
      ] );
    ( "weather.year",
      [
        Alcotest.test_case "bounds" `Slow test_year_bounds;
        Alcotest.test_case "cdf shape" `Slow test_year_cdfs_shape;
      ] );
    ("weather.hft", [ Alcotest.test_case "hurricane-driven loss" `Quick test_hft_shape ]);
  ]
