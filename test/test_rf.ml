open Cisp_rf

let check_float eps = Alcotest.(check (float eps))

(* ---------- Fresnel / bulge geometry ---------- *)

let test_fresnel_midpoint_matches_paper () =
  (* Paper: h_Fres ~ 8.7 m sqrt(D/1km) / sqrt(f/1GHz). *)
  let approx d f = 8.7 *. sqrt (d /. f) in
  List.iter
    (fun (d, f) ->
      let exact = Fresnel.midpoint_fresnel_m ~f_ghz:f ~d_km:d () in
      check_float 0.5 (Printf.sprintf "D=%.0f f=%.0f" d f) (approx d f) exact)
    [ (10.0, 11.0); (50.0, 11.0); (100.0, 11.0); (100.0, 6.0); (60.0, 18.0) ]

let test_bulge_midpoint_matches_paper () =
  (* Paper: h_Earth ~ (1/50K)(D/1km)^2 metres.  The 1/50 is itself an
     approximation of 1000/(8 R_km) = 1/50.97, so allow ~2.5%. *)
  List.iter
    (fun d ->
      let exact = Fresnel.midpoint_bulge_m ~k:1.3 ~d_km:d () in
      let approx = d *. d /. (50.0 *. 1.3) in
      check_float ((0.025 *. approx) +. 0.1) (Printf.sprintf "D=%.0f" d) approx exact)
    [ 10.0; 50.0; 100.0 ]

let test_bulge_100km_value () =
  (* D=100 km, K=1.3, R=6371 km: D^2/(2KR) = 150.9 m. *)
  check_float 1.0 "100km bulge" 150.9 (Fresnel.midpoint_bulge_m ~d_km:100.0 ())

let test_fresnel_symmetric_and_zero_at_ends () =
  let r1 = Fresnel.fresnel_radius_m ~d1_km:20.0 ~d2_km:80.0 () in
  let r2 = Fresnel.fresnel_radius_m ~d1_km:80.0 ~d2_km:20.0 () in
  check_float 1e-9 "symmetric" r1 r2;
  check_float 1e-9 "zero at endpoint" 0.0 (Fresnel.fresnel_radius_m ~d1_km:0.0 ~d2_km:100.0 ())

let test_clearance_monotone_in_distance () =
  let c d = Fresnel.required_clearance_m ~d1_km:(d /. 2.) ~d2_km:(d /. 2.) () in
  Alcotest.(check bool) "monotone" true (c 20.0 < c 50.0 && c 50.0 < c 100.0)

let test_pair_coeffs_match_clearance () =
  (* The hoisted per-pair form [bulge_c u + fresnel_c sqrt u] is the
     same algebra as the pointwise clearance; agreement to float
     rounding across distances and positions. *)
  List.iter
    (fun d_km ->
      let bulge_c, fres_c = Fresnel.pair_coeffs ~d_km () in
      for i = 0 to 20 do
        let t = float_of_int i /. 20.0 in
        let u = t *. (1.0 -. t) in
        let hoisted = (bulge_c *. u) +. (fres_c *. sqrt u) in
        let pointwise =
          Fresnel.required_clearance_m ~d1_km:(t *. d_km) ~d2_km:((1.0 -. t) *. d_km) ()
        in
        check_float (1e-9 *. (1.0 +. pointwise))
          (Printf.sprintf "D=%.0f t=%.2f" d_km t)
          pointwise hoisted
      done)
    [ 1.0; 30.0; 100.0 ]

(* ---------- Line of sight ---------- *)

let flat_dem = Cisp_terrain.Dem.create ~seed:1 Cisp_terrain.Dem.Flat

let ep lat lon h =
  Los.endpoint_of_tower ~dem:flat_dem (Cisp_geo.Coord.make ~lat ~lon) ~antenna_m:h

let test_los_clear_short_hop () =
  (* 30 km hop with 100 m towers over flat terrain: bulge ~13.8m +
     fresnel ~14.3m << 100m - clutter(~30m). *)
  let a = ep 40.0 (-100.0) 100.0 and b = ep 40.0 (-99.65) 100.0 in
  match Los.check_dem ~dem:flat_dem a b with
  | Los.Clear margin -> Alcotest.(check bool) "positive margin" true (margin > 0.0)
  | _ -> Alcotest.fail "expected clear"

let test_los_blocked_long_low () =
  (* 100 km hop with 40 m towers: midpoint bulge alone is ~154 m. *)
  let a = ep 40.0 (-100.0) 40.0 and b = ep 40.0 (-98.83) 40.0 in
  match Los.check_dem ~dem:flat_dem a b with
  | Los.Blocked _ -> ()
  | Los.Clear _ -> Alcotest.fail "expected blocked"
  | Los.Out_of_range -> Alcotest.fail "unexpected out of range"

let test_los_out_of_range () =
  let a = ep 40.0 (-100.0) 300.0 and b = ep 40.0 (-98.0) 300.0 in
  (* ~170 km apart *)
  match Los.check_dem ~dem:flat_dem a b with
  | Los.Out_of_range -> ()
  | _ -> Alcotest.fail "expected out of range"

let test_los_min_range () =
  let a = ep 40.0 (-100.0) 100.0 and b = ep 40.0 (-100.001) 100.0 in
  match Los.check_dem ~dem:flat_dem a b with
  | Los.Out_of_range -> ()
  | _ -> Alcotest.fail "expected below min range"

let test_los_taller_towers_help () =
  (* Find a marginal distance where 60 m fails but 180 m clears. *)
  let a h = ep 40.0 (-100.0) h and b h = ep 40.0 (-99.2) h in
  let short = Los.feasible ~surface:(Cisp_terrain.Dem.surface_m flat_dem) (a 60.0) (b 60.0) in
  let tall = Los.feasible ~surface:(Cisp_terrain.Dem.surface_m flat_dem) (a 180.0) (b 180.0) in
  Alcotest.(check bool) "tall clears" true tall;
  Alcotest.(check bool) "short blocked" false short

let test_los_mountain_blocks () =
  (* Custom single peak between the endpoints. *)
  let peak =
    {
      Cisp_terrain.Dem.center = Cisp_geo.Coord.make ~lat:40.0 ~lon:(-99.5);
      axis_bearing_deg = 0.0;
      half_length_km = 40.0;
      half_width_km = 40.0;
      peak_m = 2500.0;
    }
  in
  let dem = Cisp_terrain.Dem.create ~seed:2 (Cisp_terrain.Dem.Custom [ peak ]) in
  let a = Los.endpoint_of_tower ~dem (Cisp_geo.Coord.make ~lat:40.0 ~lon:(-100.0)) ~antenna_m:150.0 in
  let b = Los.endpoint_of_tower ~dem (Cisp_geo.Coord.make ~lat:40.0 ~lon:(-99.0)) ~antenna_m:150.0 in
  match Los.check_dem ~dem a b with
  | Los.Blocked { at_km; deficit_m } ->
    Alcotest.(check bool) "blocked mid-path" true (at_km > 10.0 && at_km < 80.0);
    Alcotest.(check bool) "large deficit" true (deficit_m > 100.0)
  | _ -> Alcotest.fail "expected blocked by mountain"

let test_check_cached_matches_check () =
  (* The cached entry point and the closure-based one share the
     profile engine; sampling the same memoized surface they must
     produce bit-identical verdicts, floats included. *)
  let dem = Cisp_terrain.Dem.create Cisp_terrain.Dem.Us_continental in
  let cache = Cisp_terrain.Dem_cache.create dem in
  let rng = Cisp_util.Rng.create 41 in
  let verdict = function
    | Los.Clear m -> ("clear", Int64.bits_of_float m, 0L)
    | Los.Out_of_range -> ("oor", 0L, 0L)
    | Los.Blocked { at_km; deficit_m } ->
      ("blocked", Int64.bits_of_float at_km, Int64.bits_of_float deficit_m)
  in
  for _ = 1 to 100 do
    let lat = Cisp_util.Rng.uniform rng 32.0 44.0 in
    let lon = Cisp_util.Rng.uniform rng (-108.0) (-82.0) in
    let lat2 = lat +. Cisp_util.Rng.uniform rng (-0.8) 0.8 in
    let lon2 = lon +. Cisp_util.Rng.uniform rng (-0.8) 0.8 in
    let a =
      Los.endpoint_of_tower ~dem (Cisp_geo.Coord.make ~lat ~lon) ~antenna_m:60.0
    in
    let b =
      Los.endpoint_of_tower ~dem (Cisp_geo.Coord.make ~lat:lat2 ~lon:lon2) ~antenna_m:60.0
    in
    let via_closure = Los.check ~surface:(Cisp_terrain.Dem_cache.surface_m cache) a b in
    let via_cache = Los.check_cached ~cache a b in
    Alcotest.(check (triple string int64 int64))
      "identical verdict" (verdict via_closure) (verdict via_cache)
  done

let test_cached_check_allocates_nothing () =
  (* Runtime cross-check of the static [@cisp.zero_alloc] contracts
     (L10): once the DEM cache and the domain-local scratch are warm,
     a batch of cached feasibility checks must allocate nothing at
     all.  Native-only — bytecode boxes floats the native compiler
     keeps in registers, so the contract is a native-code property. *)
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> Alcotest.skip ()
  | Sys.Native ->
    (* Sentinel for cross-module inlining: dune's dev profile compiles
       with -opaque, which disables all cmx-based inlining — every
       cross-module float call then boxes its result and the contract
       cannot hold.  [Geodesy.distance_km] is [@inline] and
       allocation-free when inlining works, so any allocation here
       means this is a build the contract is not promised for.  CI
       exercises the assertion with a release-profile run. *)
    let ca = Cisp_geo.Coord.make ~lat:40.0 ~lon:(-100.0) in
    let cb = Cisp_geo.Coord.make ~lat:41.0 ~lon:(-99.0) in
    let sink = Float.Array.create 1 in
    Float.Array.set sink 0 (Cisp_geo.Geodesy.distance_km ca cb);
    let s0 = Gc.allocated_bytes () in
    let s1 = Gc.allocated_bytes () in
    let b = Gc.allocated_bytes () in
    for _ = 1 to 8 do
      Float.Array.set sink 0 (Float.Array.get sink 0 +. Cisp_geo.Geodesy.distance_km ca cb)
    done;
    let inline_alloc = Gc.allocated_bytes () -. b -. (s1 -. s0) in
    if inline_alloc > 0.0 then Alcotest.skip ();
    let dem = Cisp_terrain.Dem.create Cisp_terrain.Dem.Us_continental in
    let cache = Cisp_terrain.Dem_cache.create dem in
    let rng = Cisp_util.Rng.create 43 in
    let pairs =
      Array.init 24 (fun _ ->
          let lat = Cisp_util.Rng.uniform rng 34.0 42.0 in
          let lon = Cisp_util.Rng.uniform rng (-104.0) (-90.0) in
          let a =
            Los.endpoint_of_tower ~dem (Cisp_geo.Coord.make ~lat ~lon) ~antenna_m:60.0
          in
          let b =
            Los.endpoint_of_tower ~dem
              (Cisp_geo.Coord.make
                 ~lat:(lat +. Cisp_util.Rng.uniform rng (-0.3) 0.3)
                 ~lon:(lon +. Cisp_util.Rng.uniform rng (-0.3) 0.3))
              ~antenna_m:60.0
          in
          (a, b))
    in
    let hits = ref 0 in
    let run_batch () =
      for i = 0 to Array.length pairs - 1 do
        let a, b = pairs.(i) in
        if Los.feasible_cached ~cache a b then incr hits
      done
    in
    (* Warm: fills the per-domain DEM L1s, publishes every profile
       cell in the shared store, and grows the Los scratch buffers to
       this batch's maximum sample count. *)
    run_batch ();
    (* [Gc.allocated_bytes] itself allocates (it returns a boxed
       float); measure that self-overhead with an empty section and
       subtract it from the measured section. *)
    let o0 = Gc.allocated_bytes () in
    let o1 = Gc.allocated_bytes () in
    let overhead = o1 -. o0 in
    let b0 = Gc.allocated_bytes () in
    run_batch ();
    let b1 = Gc.allocated_bytes () in
    let delta = b1 -. b0 -. overhead in
    Alcotest.(check (float 0.0)) "warm cached checks allocate zero bytes" 0.0 delta

let test_blocked_midpoint_samples_once () =
  (* A path whose midpoint is obstructed must be rejected after a
     single terrain sample (regression: the blocked branch used to
     evaluate the midpoint margin twice). *)
  let calls = ref 0 in
  let wall p =
    incr calls;
    (* Sheer obstacle everywhere except the endpoints' cells. *)
    if Float.abs (Cisp_geo.Coord.lon p +. 99.5) < 0.4 then 10_000.0 else 0.0
  in
  let a = { Los.position = Cisp_geo.Coord.make ~lat:40.0 ~lon:(-100.0); ground_m = 0.0; antenna_m = 100.0 } in
  let b = { Los.position = Cisp_geo.Coord.make ~lat:40.0 ~lon:(-99.0); ground_m = 0.0; antenna_m = 100.0 } in
  (match Los.check ~surface:wall a b with
  | Los.Blocked { deficit_m; _ } ->
    Alcotest.(check bool) "deficit reflects the wall" true (deficit_m > 9000.0)
  | _ -> Alcotest.fail "expected blocked");
  Alcotest.(check int) "one terrain sample" 1 !calls

(* ---------- Attenuation (ITU-R P.838) ---------- *)

let test_p838_coefficients_11ghz () =
  let k, alpha = Attenuation.coefficients ~f_ghz:11.0 Attenuation.Horizontal in
  (* Published P.838-3 values at 11 GHz H-pol: k~0.0177, alpha~1.21. *)
  check_float 0.004 "k" 0.0177 k;
  check_float 0.05 "alpha" 1.21 alpha

let test_p838_interpolation_continuity () =
  let g f = Attenuation.specific_attenuation_db_per_km ~f_ghz:f Attenuation.Horizontal ~rain_mm_h:30.0 in
  (* Continuity across an anchor frequency. *)
  check_float 0.05 "continuous at 10GHz" (g 9.999) (g 10.001)

let test_attenuation_monotone_in_rain () =
  let a r = Attenuation.path_attenuation_db ~f_ghz:11.0 Attenuation.Horizontal ~rain_mm_h:r ~d_km:50.0 in
  Alcotest.(check bool) "monotone" true (a 5.0 < a 20.0 && a 20.0 < a 80.0);
  check_float 1e-9 "zero rain" 0.0 (a 0.0)

let test_effective_path_shorter () =
  let d_eff = Attenuation.effective_path_km ~d_km:100.0 ~rain_mm_h:50.0 in
  Alcotest.(check bool) "shorter than physical" true (d_eff < 100.0 && d_eff > 0.0)

let test_outage_rain_rate_inverse () =
  let margin = 35.0 in
  let r = Attenuation.rain_rate_for_outage ~f_ghz:11.0 Attenuation.Horizontal ~d_km:60.0 ~margin_db:margin in
  Alcotest.(check bool) "finite" true (Float.is_finite r);
  let att = Attenuation.path_attenuation_db ~f_ghz:11.0 Attenuation.Horizontal ~rain_mm_h:r ~d_km:60.0 in
  check_float 0.1 "attenuation at threshold = margin" margin att;
  (* Longer hops fail at lower rain rates. *)
  let r_long = Attenuation.rain_rate_for_outage ~f_ghz:11.0 Attenuation.Horizontal ~d_km:100.0 ~margin_db:margin in
  Alcotest.(check bool) "longer fails sooner" true (r_long < r)

(* ---------- Link budget ---------- *)

let test_fspl_known () =
  (* FSPL at 11 GHz, 50 km: 92.45 + 20log10(11) + 20log10(50) ~ 147.3 dB *)
  check_float 0.1 "fspl" 147.27 (Link_budget.fspl_db ~f_ghz:11.0 ~d_km:50.0)

let test_fade_margin_decreasing () =
  let m d = Link_budget.fade_margin_db ~f_ghz:11.0 ~d_km:d () in
  Alcotest.(check bool) "decreasing" true (m 20.0 > m 50.0 && m 50.0 > m 100.0)

let test_max_range_consistent () =
  let margin = 30.0 in
  let d = Link_budget.max_range_km ~f_ghz:11.0 ~min_margin_db:margin () in
  check_float 0.5 "margin at max range" margin (Link_budget.fade_margin_db ~f_ghz:11.0 ~d_km:d ())

(* ---------- Capacity ---------- *)

let test_qam_bits () =
  Alcotest.(check int) "256qam" 8 (Capacity.qam_bits_per_symbol 256);
  Alcotest.(check int) "4qam" 2 (Capacity.qam_bits_per_symbol 4);
  Alcotest.check_raises "non power of two"
    (Invalid_argument "qam_bits_per_symbol: not a power of two") (fun () ->
      ignore (Capacity.qam_bits_per_symbol 12))

let test_qam_rate_about_1gbps () =
  (* 56 MHz channel, 256-QAM, 0.9 coding, 2 channels ~ 0.8 Gbps:
     the paper's "about 1 Gbps" with wide channels and multiplexing. *)
  let r = Capacity.qam_gbps ~bandwidth_mhz:56.0 ~qam:256 ~coding_rate:0.9 ~channels:2 in
  Alcotest.(check bool) "order of 1 Gbps" true (r > 0.5 && r < 2.0)

let test_series_for_gbps () =
  Alcotest.(check int) "0.5 -> 1" 1 (Capacity.series_for_gbps 0.5);
  Alcotest.(check int) "1.0 -> 1" 1 (Capacity.series_for_gbps 1.0);
  Alcotest.(check int) "1.1 -> 2" 2 (Capacity.series_for_gbps 1.1);
  Alcotest.(check int) "4.0 -> 2" 2 (Capacity.series_for_gbps 4.0);
  Alcotest.(check int) "4.1 -> 3" 3 (Capacity.series_for_gbps 4.1);
  Alcotest.(check int) "9 -> 3" 3 (Capacity.series_for_gbps 9.0);
  Alcotest.(check int) "zero" 0 (Capacity.series_for_gbps 0.0)

let prop_series_capacity_sufficient =
  QCheck.Test.make ~name:"k series provide the demanded bandwidth" ~count:300
    QCheck.(float_range 0.01 100.0)
    (fun gbps ->
      let k = Capacity.series_for_gbps gbps in
      Capacity.gbps_of_series k >= gbps -. 1e-9
      && (k = 1 || Capacity.gbps_of_series (k - 1) < gbps))

let test_shannon_sanity () =
  let r = Capacity.shannon_gbps ~bandwidth_mhz:56.0 ~snr_db:30.0 in
  Alcotest.(check bool) "plausible bound" true (r > 0.4 && r < 1.0)

let suites =
  [
    ( "rf.fresnel",
      [
        Alcotest.test_case "paper midpoint fresnel" `Quick test_fresnel_midpoint_matches_paper;
        Alcotest.test_case "paper midpoint bulge" `Quick test_bulge_midpoint_matches_paper;
        Alcotest.test_case "100km bulge" `Quick test_bulge_100km_value;
        Alcotest.test_case "symmetry and endpoints" `Quick test_fresnel_symmetric_and_zero_at_ends;
        Alcotest.test_case "clearance monotone" `Quick test_clearance_monotone_in_distance;
        Alcotest.test_case "pair coeffs match clearance" `Quick test_pair_coeffs_match_clearance;
      ] );
    ( "rf.los",
      [
        Alcotest.test_case "clear short hop" `Quick test_los_clear_short_hop;
        Alcotest.test_case "blocked long low" `Quick test_los_blocked_long_low;
        Alcotest.test_case "out of range" `Quick test_los_out_of_range;
        Alcotest.test_case "min range" `Quick test_los_min_range;
        Alcotest.test_case "taller towers help" `Quick test_los_taller_towers_help;
        Alcotest.test_case "mountain blocks" `Quick test_los_mountain_blocks;
        Alcotest.test_case "cached matches closure" `Quick test_check_cached_matches_check;
        Alcotest.test_case "warm cached check allocates nothing" `Quick
          test_cached_check_allocates_nothing;
        Alcotest.test_case "blocked midpoint samples once" `Quick test_blocked_midpoint_samples_once;
      ] );
    ( "rf.attenuation",
      [
        Alcotest.test_case "p838 coefficients 11GHz" `Quick test_p838_coefficients_11ghz;
        Alcotest.test_case "interpolation continuity" `Quick test_p838_interpolation_continuity;
        Alcotest.test_case "monotone in rain" `Quick test_attenuation_monotone_in_rain;
        Alcotest.test_case "effective path" `Quick test_effective_path_shorter;
        Alcotest.test_case "outage threshold inverse" `Quick test_outage_rain_rate_inverse;
      ] );
    ( "rf.link_budget",
      [
        Alcotest.test_case "fspl" `Quick test_fspl_known;
        Alcotest.test_case "fade margin decreasing" `Quick test_fade_margin_decreasing;
        Alcotest.test_case "max range consistent" `Quick test_max_range_consistent;
      ] );
    ( "rf.capacity",
      [
        Alcotest.test_case "qam bits" `Quick test_qam_bits;
        Alcotest.test_case "1 gbps per hop" `Quick test_qam_rate_about_1gbps;
        Alcotest.test_case "series for gbps" `Quick test_series_for_gbps;
        Alcotest.test_case "shannon sanity" `Quick test_shannon_sanity;
        QCheck_alcotest.to_alcotest prop_series_capacity_sufficient;
      ] );
  ]

(* ---------- Medium (paper section 3.4) ---------- *)

let test_media_envelopes () =
  Alcotest.(check bool) "mw longest range" true
    (Medium.microwave.Medium.max_range_km > Medium.millimeter_wave.Medium.max_range_km);
  Alcotest.(check bool) "mmw outranges fso" true
    (Medium.millimeter_wave.Medium.max_range_km > Medium.free_space_optics.Medium.max_range_km);
  Alcotest.(check bool) "bandwidth inverts range" true
    (Medium.free_space_optics.Medium.hop_gbps > Medium.millimeter_wave.Medium.hop_gbps
    && Medium.millimeter_wave.Medium.hop_gbps > Medium.microwave.Medium.hop_gbps)

let test_media_weather_response () =
  let rain = { Medium.rain_mm_h = 40.0; fog_visibility_km = 20.0 } in
  let fog = { Medium.rain_mm_h = 0.0; fog_visibility_km = 0.2 } in
  (* Rain hits radio links, not optics. *)
  let mw_rain = Medium.hop_attenuation_db Medium.microwave rain ~d_km:30.0 in
  let fso_rain = Medium.hop_attenuation_db Medium.free_space_optics rain ~d_km:2.0 in
  Alcotest.(check bool) "rain hurts mw" true (mw_rain > 5.0);
  Alcotest.(check bool) "rain spares fso" true (fso_rain < 3.0);
  (* Fog hits optics, not radio. *)
  let mw_fog = Medium.hop_attenuation_db Medium.microwave fog ~d_km:30.0 in
  let fso_fog = Medium.hop_attenuation_db Medium.free_space_optics fog ~d_km:2.0 in
  Alcotest.(check bool) "fog spares mw" true (mw_fog < 1.0);
  Alcotest.(check bool) "fog kills fso" true (fso_fog > 30.0);
  Alcotest.(check bool) "clear weather fine for both" true
    (Medium.hop_available Medium.microwave Medium.clear_weather ~d_km:50.0 ~margin_db:30.0
    && Medium.hop_available Medium.free_space_optics Medium.clear_weather ~d_km:2.0 ~margin_db:10.0)

let test_media_crossover () =
  (* The section-4 observation: at low bandwidth long-range MW wins;
     at very high bandwidth on the same link, denser high-rate chains
     take over. *)
  let tower_usd = 100_000.0 in
  let low = Medium.cheapest_for ~link_km:500.0 ~target_gbps:1.0 ~tower_usd in
  Alcotest.(check bool) "mw wins at 1 Gbps" true
    (low.Medium.medium.Medium.technology = Medium.Microwave);
  let high = Medium.cheapest_for ~link_km:500.0 ~target_gbps:400.0 ~tower_usd in
  Alcotest.(check bool) "a denser technology wins at 400 Gbps" true
    (high.Medium.medium.Medium.technology <> Medium.Microwave);
  (* Sanity of the chain arithmetic. *)
  let c = Medium.chain_for Medium.microwave ~link_km:250.0 ~target_gbps:5.0 ~tower_usd in
  Alcotest.(check int) "k = ceil sqrt 5" 3 c.Medium.chains;
  Alcotest.(check int) "hops at max range" 3 c.Medium.hops

let media_suite =
  ( "rf.medium",
    [
      Alcotest.test_case "envelopes" `Quick test_media_envelopes;
      Alcotest.test_case "weather response" `Quick test_media_weather_response;
      Alcotest.test_case "bandwidth crossover" `Quick test_media_crossover;
    ] )

let suites = suites @ [ media_suite ]
