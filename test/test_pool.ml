open Cisp_util

(* The machine running the tests may have a single core; Pool.create
   still spawns real domains, so every parallel path is exercised
   regardless of [Domain.recommended_domain_count]. *)

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------- parallel_for ---------- *)

let test_for_empty () =
  with_pool 4 (fun pool ->
      let calls = Atomic.make 0 in
      Pool.parallel_for pool ~n:0 (fun _ -> Atomic.incr calls);
      Pool.parallel_for pool ~n:(-5) (fun _ -> Atomic.incr calls);
      Alcotest.(check int) "no calls on empty range" 0 (Atomic.get calls))

let test_for_singleton () =
  with_pool 4 (fun pool ->
      let seen = ref (-1) in
      Pool.parallel_for pool ~n:1 (fun i -> seen := i);
      Alcotest.(check int) "index 0 ran" 0 !seen)

let test_for_each_index_once () =
  with_pool 4 (fun pool ->
      let n = 100_000 in
      (* Each slot is written only by the worker owning that index, so
         plain int cells are race-free. *)
      let counts = Array.make n 0 in
      Pool.parallel_for pool ~n (fun i -> counts.(i) <- counts.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (fun c -> c = 1) counts))

let test_for_stress_rounds () =
  (* Many back-to-back jobs on one pool: exercises the generation
     counter and worker re-arming. *)
  with_pool 4 (fun pool ->
      let total = Atomic.make 0 in
      for _ = 1 to 50 do
        Pool.parallel_for pool ~n:997 (fun _ -> Atomic.incr total)
      done;
      Alcotest.(check int) "all rounds complete" (50 * 997) (Atomic.get total))

exception Boom of int

let test_for_exception_propagates () =
  with_pool 4 (fun pool ->
      (try
         Pool.parallel_for pool ~n:10_000 (fun i -> if i = 1234 then raise (Boom i));
         Alcotest.fail "expected Boom to escape parallel_for"
       with Boom i -> Alcotest.(check int) "the worker's exception" 1234 i);
      (* The failed job must not wedge the pool. *)
      let hits = Atomic.make 0 in
      Pool.parallel_for pool ~n:64 (fun _ -> Atomic.incr hits);
      Alcotest.(check int) "pool reusable after a failed job" 64 (Atomic.get hits))

let test_for_nested () =
  (* A parallel_for issued from inside a worker task must degrade to
     sequential instead of deadlocking on the busy pool. *)
  with_pool 4 (fun pool ->
      let total = Atomic.make 0 in
      Pool.parallel_for pool ~n:8 (fun _ ->
          Pool.parallel_for pool ~n:8 (fun _ -> Atomic.incr total));
      Alcotest.(check int) "inner loops all ran" 64 (Atomic.get total))

let test_for_after_shutdown () =
  let pool = Pool.create ~jobs:4 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  let hits = ref 0 in
  Pool.parallel_for pool ~n:10 (fun _ -> incr hits);
  Alcotest.(check int) "sequential fallback after shutdown" 10 !hits

(* ---------- parallel_map_array ---------- *)

let test_map_array () =
  with_pool 4 (fun pool ->
      let arr = Array.init 1_000 (fun i -> i - 500) in
      let expect = Array.map (fun x -> (x * x) + 1) arr in
      let got = Pool.parallel_map_array pool (fun x -> (x * x) + 1) arr in
      Alcotest.(check (array int)) "matches Array.map" expect got;
      Alcotest.(check (array int)) "empty array" [||]
        (Pool.parallel_map_array pool (fun x -> x) [||]))

(* ---------- reduce ---------- *)

let reduce_sum jobs xs =
  Pool.with_default_jobs jobs (fun () ->
      Pool.reduce (Pool.get ()) ~map:Fun.id ~merge:( +. ) ~init:0.0 xs)

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let test_reduce_edge_cases () =
  with_pool 4 (fun pool ->
      Alcotest.(check (float 0.0)) "empty returns init" 7.5
        (Pool.reduce pool ~map:Fun.id ~merge:( +. ) ~init:7.5 [||]);
      Alcotest.(check (float 0.0)) "singleton is merge init (map x)" 5.0
        (Pool.reduce pool ~map:(fun x -> x *. 2.0) ~merge:( +. ) ~init:1.0 [| 2.0 |]))

let test_reduce_bit_identical_across_widths () =
  (* Float addition is not associative, so this only holds because the
     merge tree's shape is a pure function of the input length. *)
  let rng = Rng.create 42 in
  let xs = Array.init 10_001 (fun _ -> Rng.float rng 2.0 -. 1.0) in
  let s1 = reduce_sum 1 xs in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=1 vs jobs=%d bitwise" jobs)
        true
        (bits_equal s1 (reduce_sum jobs xs)))
    [ 2; 3; 8 ]

(* ---------- fold_range ---------- *)

let test_fold_range_edge_cases () =
  with_pool 4 (fun pool ->
      let sum ?min_chunk n =
        Pool.fold_range ?min_chunk pool ~n
          ~map:(fun ~lo ~hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
          ~merge:( + ) ~init:0
      in
      Alcotest.(check int) "empty range returns init" 0 (sum 0);
      Alcotest.(check int) "negative range returns init" 0 (sum (-3));
      Alcotest.(check int) "single chunk (min_chunk > n)" 45 (sum ~min_chunk:64 10);
      Alcotest.(check int) "exact chunk multiple" 66 (sum ~min_chunk:4 12);
      Alcotest.(check int) "ragged last chunk" 45 (sum ~min_chunk:4 10))

let test_fold_range_chunk_boundaries () =
  (* Chunk boundaries are a pure function of (n, min_chunk): observe
     them through a list-concat merge (associative, so the fixed tree
     flattens back to chunk order). *)
  with_pool 4 (fun pool ->
      let spans n min_chunk =
        Pool.fold_range ~min_chunk pool ~n
          ~map:(fun ~lo ~hi -> [ (lo, hi) ])
          ~merge:( @ ) ~init:[]
      in
      Alcotest.(check (list (pair int int)))
        "grain 4 over 10" [ (0, 4); (4, 8); (8, 10) ] (spans 10 4);
      Alcotest.(check (list (pair int int)))
        "grain 1 over 3" [ (0, 1); (1, 2); (2, 3) ] (spans 3 1);
      (* Same n, same grain, different width: identical boundaries. *)
      let at_width jobs =
        Pool.with_default_jobs jobs (fun () ->
            Pool.fold_range ~min_chunk:3 (Pool.get ()) ~n:17
              ~map:(fun ~lo ~hi -> [ (lo, hi) ])
              ~merge:( @ ) ~init:[])
      in
      let b1 = at_width 1 in
      List.iter
        (fun jobs ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "boundaries at jobs=%d" jobs)
            b1 (at_width jobs))
        [ 2; 4; 8 ])

let fold_sum ~min_chunk jobs xs =
  Pool.with_default_jobs jobs (fun () ->
      Pool.fold_range ~min_chunk (Pool.get ()) ~n:(Array.length xs)
        ~map:(fun ~lo ~hi ->
          let s = ref 0.0 in
          for i = lo to hi - 1 do
            s := !s +. xs.(i)
          done;
          !s)
        ~merge:( +. ) ~init:0.0)

(* QCheck: per-chunk accumulation reduces to the same bits whatever
   interleaving of chunk claims the pool width produces — float
   addition is not associative, so this only holds because both the
   chunk boundaries and the collapse tree depend on (n, min_chunk)
   alone. *)
let prop_fold_range_width_invariant =
  QCheck.Test.make ~name:"fold_range independent of pool width" ~count:50
    QCheck.(
      triple
        (array_of_size Gen.(int_range 0 400) (float_range (-1e3) 1e3))
        (int_range 1 64) (int_range 2 8))
    (fun (xs, min_chunk, jobs) ->
      let s1 = fold_sum ~min_chunk 1 xs in
      List.for_all
        (fun w -> bits_equal s1 (fold_sum ~min_chunk w xs))
        [ 2; 4; jobs ])

(* ---------- short-circuit vs parallel telemetry ---------- *)

let test_short_circuit_telemetry () =
  (* The small-[n] short-circuit must record the same counter family
     as a real parallel job — one job, all indices run — so scheduling
     telemetry stays coherent whichever path a loop takes. *)
  let observe f =
    Telemetry.reset ();
    Telemetry.enable_metrics ();
    let hits = Atomic.make 0 in
    f hits;
    let stats =
      ( Atomic.get hits,
        Telemetry.counter "pool.jobs",
        Telemetry.counter "pool.jobs.seq",
        Telemetry.counter "pool.chunks" )
    in
    Telemetry.reset ();
    stats
  in
  with_pool 4 (fun pool ->
      (* min_chunk covers the whole range: short-circuits on the caller. *)
      let seq_hits, seq_par_jobs, seq_seq_jobs, seq_chunks =
        observe (fun hits ->
            Pool.parallel_for ~min_chunk:64 pool ~n:32 (fun _ -> Atomic.incr hits))
      in
      (* Same range through the parallel path (chunk = 1 at width 4). *)
      let par_hits, par_par_jobs, par_seq_jobs, par_chunks =
        observe (fun hits ->
            Pool.parallel_for ~min_chunk:1 pool ~n:32 (fun _ -> Atomic.incr hits))
      in
      Alcotest.(check int) "short-circuit runs every index" 32 seq_hits;
      Alcotest.(check int) "parallel runs every index" 32 par_hits;
      Alcotest.(check int) "short-circuit: one sequential job" 1 seq_seq_jobs;
      Alcotest.(check int) "short-circuit: no parallel job" 0 seq_par_jobs;
      Alcotest.(check int) "short-circuit: one chunk spans the range" 1 seq_chunks;
      Alcotest.(check int) "parallel: one parallel job" 1 par_par_jobs;
      Alcotest.(check int) "parallel: no sequential job" 0 par_seq_jobs;
      Alcotest.(check int) "parallel: one chunk per index" 32 par_chunks)

let test_with_default_jobs_restores () =
  let before = Pool.default_jobs () in
  let inside = Pool.with_default_jobs 3 Pool.default_jobs in
  Alcotest.(check int) "forced inside" 3 inside;
  Alcotest.(check int) "restored" before (Pool.default_jobs ());
  (try Pool.with_default_jobs 2 (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "restored after an exception" before (Pool.default_jobs ())

(* ---------- Scratch ---------- *)

let test_scratch_per_domain () =
  let counter = Atomic.make 0 in
  let key = Pool.Scratch.create (fun () -> Atomic.fetch_and_add counter 1) in
  let a = Pool.Scratch.get key in
  Alcotest.(check int) "same domain reuses its instance" a (Pool.Scratch.get key);
  with_pool 3 (fun pool ->
      let n = 64 in
      let tags = Array.make n (-1) in
      let doms = Array.make n (-1) in
      Pool.parallel_for pool ~n (fun i ->
          tags.(i) <- Pool.Scratch.get key;
          doms.(i) <- (Domain.self () :> int));
      (* Within a domain the instance is stable... *)
      let by_dom = Hashtbl.create 8 in
      Array.iteri
        (fun i d ->
          match Hashtbl.find_opt by_dom d with
          | None -> Hashtbl.add by_dom d tags.(i)
          | Some t -> Alcotest.(check int) "stable within a domain" t tags.(i))
        doms;
      (* ...and no two domains share one (init ran once per domain). *)
      let distinct =
        List.sort_uniq Int.compare (Hashtbl.fold (fun _ t acc -> t :: acc) by_dom [])
      in
      Alcotest.(check int) "one instance per domain"
        (Hashtbl.length by_dom) (List.length distinct))

let test_scratch_keys_independent () =
  let k1 = Pool.Scratch.create (fun () -> ref 1) in
  let k2 = Pool.Scratch.create (fun () -> ref 2) in
  Alcotest.(check bool) "separate slots" true (Pool.Scratch.get k1 != Pool.Scratch.get k2);
  Pool.Scratch.get k1 := 10;
  Alcotest.(check int) "no cross-talk" 2 !(Pool.Scratch.get k2)

(* QCheck: width-invariance of the float-sum reduce over random input
   sizes (covers the odd-element carry in the pairwise collapse). *)
let prop_reduce_width_invariant =
  QCheck.Test.make ~name:"reduce independent of pool width" ~count:50
    QCheck.(
      pair
        (array_of_size Gen.(int_range 0 300) (float_range (-1e3) 1e3))
        (int_range 2 8))
    (fun (xs, jobs) -> bits_equal (reduce_sum 1 xs) (reduce_sum jobs xs))

let suites =
  [
    ( "util.pool",
      [
        Alcotest.test_case "for: empty range" `Quick test_for_empty;
        Alcotest.test_case "for: singleton range" `Quick test_for_singleton;
        Alcotest.test_case "for: each index once" `Quick test_for_each_index_once;
        Alcotest.test_case "for: stress rounds" `Quick test_for_stress_rounds;
        Alcotest.test_case "for: exception propagates" `Quick test_for_exception_propagates;
        Alcotest.test_case "for: nested use is safe" `Quick test_for_nested;
        Alcotest.test_case "for: after shutdown" `Quick test_for_after_shutdown;
        Alcotest.test_case "map_array" `Quick test_map_array;
        Alcotest.test_case "reduce: edge cases" `Quick test_reduce_edge_cases;
        Alcotest.test_case "reduce: bit-identical across widths" `Quick
          test_reduce_bit_identical_across_widths;
        Alcotest.test_case "fold_range: edge cases" `Quick test_fold_range_edge_cases;
        Alcotest.test_case "fold_range: chunk boundaries width-independent" `Quick
          test_fold_range_chunk_boundaries;
        Alcotest.test_case "short-circuit vs parallel telemetry" `Quick
          test_short_circuit_telemetry;
        Alcotest.test_case "with_default_jobs restores" `Quick test_with_default_jobs_restores;
        Alcotest.test_case "scratch: one instance per domain" `Quick test_scratch_per_domain;
        Alcotest.test_case "scratch: keys independent" `Quick test_scratch_keys_independent;
        QCheck_alcotest.to_alcotest prop_reduce_width_invariant;
        QCheck_alcotest.to_alcotest prop_fold_range_width_invariant;
      ] );
  ]
